"""Color conversion (Algorithm 2) and chroma resampling (Algorithm 1)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.errors import JpegError
from repro.jpeg.color import (
    rgb_to_ycbcr_float,
    ycbcr_to_rgb_float,
    ycbcr_to_rgb_int,
)
from repro.jpeg.sampling import (
    downsample_h2v1,
    downsample_h2v2,
    downsample_plane,
    sampling_factors,
    upsample_h2v1_fancy,
    upsample_h2v1_simple,
    upsample_h2v2_fancy,
    upsample_plane,
)

U8 = st.integers(min_value=0, max_value=255)


class TestColorConversion:
    def test_neutral_gray(self):
        y = np.array([[128]], dtype=np.uint8)
        c = np.array([[128]], dtype=np.uint8)
        rgb = ycbcr_to_rgb_float(y, c, c)
        assert rgb.reshape(-1).tolist() == [128, 128, 128]

    def test_algorithm2_reference_values(self):
        """Spot-check Algorithm 2 against hand-computed values."""
        y = np.array([[100]], dtype=np.uint8)
        cb = np.array([[90]], dtype=np.uint8)
        cr = np.array([[200]], dtype=np.uint8)
        r, g, b = ycbcr_to_rgb_float(y, cb, cr).reshape(-1)
        assert r == round(100 + 1.402 * 72)          # 201
        assert g == round(100 - 0.34414 * -38 - 0.71414 * 72)  # 62
        assert b == max(0, round(100 + 1.772 * -38))  # 33

    def test_clipping(self):
        y = np.array([[255]], dtype=np.uint8)
        cb = np.array([[255]], dtype=np.uint8)
        cr = np.array([[255]], dtype=np.uint8)
        rgb = ycbcr_to_rgb_float(y, cb, cr)
        assert rgb.max() <= 255

    def test_int_path_close_to_float(self):
        rng = np.random.default_rng(0)
        y, cb, cr = (rng.integers(0, 256, (32, 32)).astype(np.uint8)
                     for _ in range(3))
        a = ycbcr_to_rgb_float(y, cb, cr).astype(int)
        b = ycbcr_to_rgb_int(y, cb, cr).astype(int)
        assert np.abs(a - b).max() <= 1

    @settings(max_examples=30, deadline=None)
    @given(arrays(np.uint8, (4, 4, 3), elements=U8))
    def test_forward_backward_roundtrip(self, rgb):
        """RGB -> YCbCr -> RGB is near-identity (rounding only)."""
        y, cb, cr = rgb_to_ycbcr_float(rgb)
        back = ycbcr_to_rgb_float(y, cb, cr)
        assert np.abs(back.astype(int) - rgb.astype(int)).max() <= 3

    def test_output_shape_appends_channel_axis(self):
        y = np.zeros((5, 7), dtype=np.uint8)
        assert ycbcr_to_rgb_float(y, y, y).shape == (5, 7, 3)


class TestUpsampling422:
    def test_paper_algorithm1_exact(self):
        """Check every output of Algorithm 1 on one 8-pixel row."""
        row = np.array([[10, 50, 90, 130, 170, 210, 250, 30]], dtype=np.uint8)
        out = upsample_h2v1_fancy(row)[0].astype(int)
        inp = row[0].astype(int)
        expected = [
            inp[0],
            (inp[0] * 3 + inp[1] + 2) // 4,
            (inp[1] * 3 + inp[0] + 1) // 4,
            (inp[1] * 3 + inp[2] + 2) // 4,
            (inp[2] * 3 + inp[1] + 1) // 4,
            (inp[2] * 3 + inp[3] + 2) // 4,
            (inp[3] * 3 + inp[2] + 1) // 4,
            (inp[3] * 3 + inp[4] + 2) // 4,
            (inp[4] * 3 + inp[3] + 1) // 4,
            (inp[4] * 3 + inp[5] + 2) // 4,
            (inp[5] * 3 + inp[4] + 1) // 4,
            (inp[5] * 3 + inp[6] + 2) // 4,
            (inp[6] * 3 + inp[5] + 1) // 4,
            (inp[6] * 3 + inp[7] + 2) // 4,
            (inp[7] * 3 + inp[6] + 1) // 4,
            inp[7],
        ]
        assert out.tolist() == expected

    def test_doubles_width(self):
        plane = np.arange(24, dtype=np.uint8).reshape(3, 8)
        assert upsample_h2v1_fancy(plane).shape == (3, 16)

    @settings(max_examples=30, deadline=None)
    @given(arrays(np.uint8, (2, 8), elements=U8))
    def test_constant_preserved(self, plane):
        """A constant row upsamples to the same constant."""
        const = np.full_like(plane, plane[0, 0])
        out = upsample_h2v1_fancy(const)
        assert (out == plane[0, 0]).all()

    @settings(max_examples=30, deadline=None)
    @given(arrays(np.uint8, (3, 16), elements=U8))
    def test_range_preserved(self, plane):
        """Fancy upsampling never overshoots the input range."""
        out = upsample_h2v1_fancy(plane)
        assert out.min() >= plane.min()
        assert out.max() <= plane.max()

    def test_simple_replication(self):
        row = np.array([[1, 2, 3]], dtype=np.uint8)
        assert upsample_h2v1_simple(row)[0].tolist() == [1, 1, 2, 2, 3, 3]


class TestUpsampling420:
    def test_shape_doubles_both(self):
        plane = np.arange(32, dtype=np.uint8).reshape(4, 8)
        assert upsample_h2v2_fancy(plane).shape == (8, 16)

    def test_constant_preserved(self):
        plane = np.full((4, 8), 77, dtype=np.uint8)
        assert (upsample_h2v2_fancy(plane) == 77).all()


class TestDownsampling:
    def test_h2v1_averages_pairs(self):
        plane = np.array([[10, 20, 30, 50]], dtype=np.uint8)
        assert downsample_h2v1(plane)[0].tolist() == [15, 40]

    def test_h2v1_odd_width_replicates_edge(self):
        plane = np.array([[10, 20, 30]], dtype=np.uint8)
        assert downsample_h2v1(plane)[0].tolist() == [15, 30]

    def test_h2v2_averages_quads(self):
        plane = np.array([[0, 4], [8, 12]], dtype=np.uint8)
        assert downsample_h2v2(plane)[0].tolist() == [6]

    def test_h2v2_odd_dims(self):
        plane = np.arange(9, dtype=np.uint8).reshape(3, 3)
        assert downsample_h2v2(plane).shape == (2, 2)


class TestModeDispatch:
    def test_sampling_factors(self):
        assert sampling_factors("4:4:4") == (1, 1)
        assert sampling_factors("4:2:2") == (2, 1)
        assert sampling_factors("4:2:0") == (2, 2)

    def test_unknown_mode_raises(self):
        with pytest.raises(JpegError):
            sampling_factors("4:9:9")
        with pytest.raises(JpegError):
            upsample_plane(np.zeros((8, 8)), "4:9:9")
        with pytest.raises(JpegError):
            downsample_plane(np.zeros((8, 8)), "4:9:9")

    def test_444_passthrough(self):
        plane = np.arange(16, dtype=np.uint8).reshape(4, 4)
        assert upsample_plane(plane, "4:4:4") is not None
        assert (downsample_plane(plane, "4:4:4") == plane).all()

    def test_down_up_is_lossless_for_constant(self):
        plane = np.full((8, 8), 42, dtype=np.uint8)
        for mode in ("4:2:2", "4:2:0"):
            down = downsample_plane(plane, mode)
            up = upsample_plane(down, mode)
            assert (up == 42).all()
