"""HeterogeneousDecoder facade: model caching, auto mode, guard rails."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import JpegUnsupportedError
from repro.core import (
    DecodeMode,
    HeterogeneousDecoder,
    PreparedImage,
    clear_model_cache,
)
from repro.data import synthetic_photo
from repro.jpeg import EncoderSettings, decode_jpeg, encode_jpeg
from repro.evaluation import platforms


class TestFacade:
    def test_decode_from_bytes(self, gtx560_decoder, jpeg_422, ref_rgb_422):
        res = gtx560_decoder.decode(jpeg_422, DecodeMode.SIMD)
        assert np.array_equal(res.rgb, ref_rgb_422)
        assert res.info is not None

    def test_model_cached_across_decoders(self, jpeg_422):
        d1 = HeterogeneousDecoder.for_platform(platforms.GTX560)
        m1 = d1.model_for("4:2:2")
        d2 = HeterogeneousDecoder.for_platform(platforms.GTX560)
        assert d2.model_for("4:2:2") is m1

    def test_auto_picks_reasonable_mode(self, gtx560_decoder, jpeg_422):
        prep = gtx560_decoder.prepare(jpeg_422)
        auto = gtx560_decoder.decode(prep, "auto")
        # auto must not be slower than the worst explicit mode
        worst = max(
            gtx560_decoder.decode(prep, m).total_us for m in DecodeMode)
        assert auto.total_us <= worst

    def test_auto_on_weak_gpu_avoids_pure_gpu(self, gt430_decoder):
        prep = PreparedImage.virtual(1600, 1200, "4:2:2", 0.2)
        mode = gt430_decoder.choose_mode(prep)
        assert mode != DecodeMode.GPU

    def test_420_falls_back_to_cpu_paths(self, gtx560_decoder):
        rgb = synthetic_photo(48, 64, seed=8)
        data = encode_jpeg(rgb, EncoderSettings(subsampling="4:2:0"))
        prep = gtx560_decoder.prepare(data)
        assert gtx560_decoder.choose_mode(prep) == DecodeMode.SIMD
        res = gtx560_decoder.decode(prep, "auto")
        assert np.array_equal(res.rgb, decode_jpeg(data).rgb)
        with pytest.raises(JpegUnsupportedError):
            gtx560_decoder.decode(prep, DecodeMode.PPS)

    def test_decode_all_modes_shares_prepare(self, gtx560_decoder, jpeg_422,
                                             ref_rgb_422):
        results = gtx560_decoder.decode_all_modes(jpeg_422)
        assert set(results) == set(DecodeMode)
        for res in results.values():
            assert np.array_equal(res.rgb, ref_rgb_422)

    def test_workgroup_from_model_applied(self, gtx560_decoder, jpeg_422):
        prep = gtx560_decoder.prepare(jpeg_422)
        cfg = gtx560_decoder._config(prep)
        assert (cfg.gpu_options.workgroup_blocks
                == gtx560_decoder.model_for("4:2:2").workgroup_blocks)

    def test_clear_model_cache(self):
        d = HeterogeneousDecoder.for_platform(platforms.GTX560)
        m1 = d.model_for("4:2:2")
        clear_model_cache()
        d2 = HeterogeneousDecoder.for_platform(platforms.GTX560)
        m2 = d2.model_for("4:2:2")
        assert m2 is not m1
        # refit should be equivalent
        assert m2.p_cpu(512, 512) == pytest.approx(m1.p_cpu(512, 512))


class TestRepr:
    def test_platform_str(self):
        s = str(platforms.GTX560)
        assert "GTX 560" in s and "i7-2600K" in s

    def test_table1_rows(self):
        rows = platforms.table1_rows()
        assert len(rows) == 3
        assert rows[2]["GPU model"] == "NVIDIA GTX 680"
        assert rows[0]["No. of GPU cores"] == "96"
