"""Sharded serving (PR 9): the length-prefixed wire protocol, the TCP
worker host, remote lane pools with bounded in-flight depth, the
sharded front tier's bit-identity / failover / breaker-canary
contracts (including a SIGKILL'd subprocess host), priority-class
weighted shedding and backlog-scaled ``Retry-After``."""

from __future__ import annotations

import json
import os
import re
import signal
import socket
import struct
import subprocess
import sys
import threading
import time
import urllib.error
import urllib.request
from contextlib import contextmanager
from pathlib import Path

import numpy as np
import pytest

from repro.errors import (
    QueueFullError,
    RemoteHostError,
    RemoteProtocolError,
    ServiceClosedError,
    ServiceError,
    WorkerCrashError,
)
from repro.jpeg import EncoderSettings, decode_jpeg, encode_jpeg
from repro.service import (
    PRIORITY_HIGH,
    PRIORITY_LOW,
    PRIORITY_NORMAL,
    DecodeHTTPServer,
    DecodeSession,
    DecodeWorkerHost,
    FaultDirective,
    ImageRequest,
    LaneBreakerBoard,
    RemoteLanePool,
    ShardedDecodeSession,
    parse_hosts,
    parse_priority,
    remote_executors,
)
from repro.service.batch import ImageResult, decode_image_task
from repro.service.remote import (
    MAX_HEADER_BYTES,
    decode_request,
    decode_result,
    encode_request,
    encode_result,
    frame_nbytes,
    recv_frame,
    send_frame,
)
from repro.service.stats import WorkSpan

REPO_ROOT = Path(__file__).resolve().parent.parent


def shm_files(prefix: str = "repro-") -> list[str]:
    """Residual /dev/shm entries created by this subsystem."""
    try:
        return sorted(f for f in os.listdir("/dev/shm")
                      if f.startswith(prefix))
    except FileNotFoundError:  # non-Linux: nothing to check
        return []


@contextmanager
def running_host(port: int = 0, **session_kwargs):
    """An in-process :class:`DecodeWorkerHost` with its accept loop
    running on a daemon thread."""
    session_kwargs.setdefault("backend", "serial")
    host = DecodeWorkerHost(port=port, **session_kwargs)
    thread = threading.Thread(target=host.serve_forever, daemon=True)
    thread.start()
    try:
        yield host
    finally:
        host.close()
        thread.join(timeout=10)


@pytest.fixture(scope="module")
def blob(small_rgb):
    return encode_jpeg(small_rgb, EncoderSettings(
        quality=85, subsampling="4:2:2"))


@pytest.fixture(scope="module")
def oracle(blob):
    return decode_jpeg(blob).rgb


# ---------------------------------------------------------------------------
# Wire framing.
# ---------------------------------------------------------------------------

class TestFraming:
    def test_roundtrip_and_exact_byte_accounting(self):
        a, b = socket.socketpair()
        try:
            header = {"op": "decode", "n": 7}
            blobs = [b"\x00\x01\x02", b"", b"payload"]
            sent = send_frame(a, header, blobs)
            assert sent == frame_nbytes(header, blobs)
            got_header, got_blobs = recv_frame(b)
            assert got_header == header
            assert got_blobs == blobs
        finally:
            a.close()
            b.close()

    def test_clean_eof_returns_none(self):
        a, b = socket.socketpair()
        a.close()
        try:
            assert recv_frame(b) is None
        finally:
            b.close()

    def test_truncated_frame_raises_protocol_error(self):
        a, b = socket.socketpair()
        try:
            payload = json.dumps({"op": "ping"}).encode()
            a.sendall(struct.pack(">I", len(payload)) + payload[:3])
            a.close()
            with pytest.raises(RemoteProtocolError):
                recv_frame(b)
        finally:
            b.close()

    def test_oversized_header_rejected(self):
        a, b = socket.socketpair()
        try:
            a.sendall(struct.pack(">I", MAX_HEADER_BYTES + 1))
            with pytest.raises(RemoteProtocolError):
                recv_frame(b)
        finally:
            a.close()
            b.close()


# ---------------------------------------------------------------------------
# Request / result codecs.
# ---------------------------------------------------------------------------

class TestCodecs:
    def test_request_roundtrip(self, blob):
        req = ImageRequest(data=blob, request_id="img-1", salvage=True,
                           priority=PRIORITY_HIGH, entropy_engine="fast")
        rebuilt = decode_request(*encode_request(req))
        assert bytes(rebuilt.data) == bytes(blob)
        assert rebuilt.request_id == "img-1"
        assert rebuilt.salvage is True
        assert rebuilt.priority == PRIORITY_HIGH
        assert rebuilt.entropy_engine == "fast"

    def test_non_scalar_request_id_stringified(self, blob):
        req = ImageRequest(data=blob, request_id=("batch", 3))
        rebuilt = decode_request(*encode_request(req))
        assert rebuilt.request_id == str(("batch", 3))

    def test_request_without_blob_rejected(self):
        with pytest.raises(RemoteProtocolError):
            decode_request({"op": "decode", "request": {}}, [])

    def test_ok_result_roundtrip_bit_identical(self, oracle):
        result = ImageResult(
            request_id=5, ok=True, rgb=oracle.copy(),
            width=oracle.shape[1], height=oracle.shape[0],
            wall_us=1234.5, attempts=1)
        result.spans = [WorkSpan(worker="w0", started=0.5, finished=1.5)]
        rebuilt = decode_result(*encode_result(result))
        assert rebuilt.ok
        assert np.array_equal(rebuilt.rgb, oracle)
        assert rebuilt.wall_us == 1234.5
        assert rebuilt.spans == result.spans

    def test_error_result_roundtrip(self):
        result = ImageResult(request_id="bad", ok=False,
                             error_type="CorruptBitstreamError",
                             error="truncated scan", attempts=3,
                             infra_failure=False)
        rebuilt = decode_result(*encode_result(result))
        assert not rebuilt.ok
        assert rebuilt.rgb is None
        assert rebuilt.error_type == "CorruptBitstreamError"
        assert rebuilt.error == "truncated scan"
        assert rebuilt.attempts == 3

    def test_salvage_error_regions_roundtrip(self, oracle):
        regions = np.zeros(oracle.shape[:2], dtype=bool)
        regions[4:, :] = True
        result = ImageResult(request_id=0, ok=True, rgb=oracle.copy(),
                             salvaged=True)
        result.error_regions = regions
        result.salvage_errors = ["marker lost at MCU 12"]
        rebuilt = decode_result(*encode_result(result))
        assert rebuilt.salvaged
        assert np.array_equal(rebuilt.error_regions, regions)
        assert rebuilt.salvage_errors == ["marker lost at MCU 12"]


# ---------------------------------------------------------------------------
# Host endpoint parsing.
# ---------------------------------------------------------------------------

class TestParseHosts:
    def test_string_and_pairs(self):
        assert parse_hosts("a:1, b:2,") == [("a", 1), ("b", 2)]
        assert parse_hosts([("a", 1), "b:2"]) == [("a", 1), ("b", 2)]

    def test_invalid(self):
        with pytest.raises(ServiceError):
            parse_hosts("")
        with pytest.raises(ServiceError):
            parse_hosts("nocolon")
        with pytest.raises(ServiceError):
            parse_hosts("a:notaport")

    def test_duplicate_hosts_rejected(self):
        with pytest.raises(ServiceError):
            remote_executors("a:1,a:1")


# ---------------------------------------------------------------------------
# The worker host, spoken to over a raw socket.
# ---------------------------------------------------------------------------

@pytest.fixture()
def worker_host():
    with running_host() as host:
        yield host


def _connect(host: DecodeWorkerHost) -> socket.socket:
    return socket.create_connection((host.host, host.port), timeout=10)


class TestDecodeWorkerHost:
    def test_ping_and_stats_ops(self, worker_host):
        with _connect(worker_host) as sock:
            send_frame(sock, {"op": "ping"})
            reply, _ = recv_frame(sock)
            assert reply["op"] == "pong"
            send_frame(sock, {"op": "stats"})
            reply, _ = recv_frame(sock)
            assert reply["op"] == "stats"
            assert "batches" in reply["stats"]

    def test_decode_bit_identical(self, worker_host, blob, oracle):
        with _connect(worker_host) as sock:
            req = ImageRequest(data=blob, request_id=1)
            send_frame(sock, *encode_request(req))
            reply, blobs = recv_frame(sock)
            result = decode_result(reply, blobs)
        assert result.ok
        assert np.array_equal(result.rgb, oracle)
        assert worker_host.requests == 1
        assert worker_host.bytes_rx > len(blob)
        assert worker_host.bytes_tx > oracle.nbytes

    def test_unknown_op_answers_error_and_connection_survives(
            self, worker_host):
        with _connect(worker_host) as sock:
            send_frame(sock, {"op": "bogus"})
            reply, _ = recv_frame(sock)
            assert reply["op"] == "error"
            assert "bogus" in reply["error"]
            send_frame(sock, {"op": "ping"})
            reply, _ = recv_frame(sock)
            assert reply["op"] == "pong"

    def test_decode_error_travels_as_result(self, worker_host):
        with _connect(worker_host) as sock:
            req = ImageRequest(data=b"not a jpeg", request_id=9)
            send_frame(sock, *encode_request(req))
            reply, blobs = recv_frame(sock)
            result = decode_result(reply, blobs)
        assert not result.ok
        assert result.error_type
        assert result.request_id == 9


# ---------------------------------------------------------------------------
# Remote lane pools.
# ---------------------------------------------------------------------------

class TestRemoteLanePool:
    def test_submit_roundtrip_and_counters(self, worker_host, blob, oracle):
        with RemoteLanePool(worker_host.host, worker_host.port,
                            depth=2) as pool:
            future = pool.submit(decode_image_task,
                                 ImageRequest(data=blob, request_id=0),
                                 None, None)
            result = future.result(timeout=60)
            assert result.ok
            assert np.array_equal(result.rgb, oracle)
            assert result.spans, "host spans must survive the wire"
            assert all(s.worker.startswith(pool.endpoint)
                       for s in result.spans)
            snap = pool.snapshot()
            assert snap["requests"] == 1
            assert snap["failures"] == 0
            assert snap["in_flight"] == 0
            assert snap["bytes_tx"] > len(blob)
            assert snap["bytes_rx"] > oracle.nbytes

    def test_rejects_foreign_task_functions(self, blob):
        pool = RemoteLanePool("127.0.0.1", 1, depth=1)
        try:
            with pytest.raises(ServiceError):
                pool.submit(len, ImageRequest(data=blob), None, None)
            with pytest.raises(ServiceError):
                pool.submit(decode_image_task, ImageRequest(data=blob),
                            "slot-0", None)
        finally:
            pool.close()

    def test_connection_refused_is_remote_host_error(self, blob):
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()  # nothing listens here now
        with RemoteLanePool("127.0.0.1", port, depth=1,
                            connect_timeout_s=2.0) as pool:
            future = pool.submit(decode_image_task,
                                 ImageRequest(data=blob), None, None)
            with pytest.raises(RemoteHostError):
                future.result(timeout=30)
            assert pool.snapshot()["failures"] == 1

    def test_client_side_fault_injection(self, worker_host, blob):
        with RemoteLanePool(worker_host.host, worker_host.port,
                            depth=1) as pool:
            kill = pool.submit(decode_image_task, ImageRequest(data=blob),
                               None, FaultDirective(kind="kill"))
            with pytest.raises(WorkerCrashError):
                kill.result(timeout=30)
            boom = pool.submit(
                decode_image_task, ImageRequest(data=blob, request_id=4),
                None, FaultDirective(kind="exception", message="chaos"))
            result = boom.result(timeout=30)
            assert not result.ok
            assert result.error_type == "RuntimeError"
            assert result.error == "chaos"

    def test_closed_pool_refuses_submits(self, blob):
        pool = RemoteLanePool("127.0.0.1", 1, depth=1)
        pool.close()
        with pytest.raises(ServiceClosedError):
            pool.submit(decode_image_task, ImageRequest(data=blob),
                        None, None)


# ---------------------------------------------------------------------------
# The sharded front tier.
# ---------------------------------------------------------------------------

class TestShardedSession:
    def test_two_hosts_bit_identical_and_both_served(self, blob, oracle):
        with running_host() as h1, running_host() as h2:
            session = ShardedDecodeSession(
                hosts=[(h1.host, h1.port), (h2.host, h2.port)],
                policy="roundrobin", max_batch=8, pump=False)
            try:
                handles = [session.submit(blob) for _ in range(8)]
                session.run_once()
                for handle in handles:
                    result = handle.result(timeout=60)
                    assert result.ok
                    assert np.array_equal(result.rgb, oracle)
                assert h1.requests > 0 and h2.requests > 0
                assert h1.requests + h2.requests == 8
            finally:
                session.close(drain=False)

    def test_per_host_stats_section(self, blob):
        with running_host() as host:
            session = ShardedDecodeSession(
                hosts=[(host.host, host.port)],
                breakers=LaneBreakerBoard(), pump=False)
            try:
                session.submit(blob)
                session.run_once()
                snapshot = session.stats_snapshot()
            finally:
                session.close(drain=False)
        (entry,) = snapshot["per_host"].values()
        assert entry["endpoint"] == f"{host.host}:{host.port}"
        assert entry["requests"] == 1
        assert entry["breaker"] == "closed"
        assert entry["bytes_tx"] > 0

    def test_dead_host_fails_over_and_trips_breaker(self, blob, oracle):
        dead = DecodeWorkerHost(port=0, backend="serial")
        dead_port = dead.port
        dead.close()  # breaker target: nothing listens here
        with running_host() as alive:
            breakers = LaneBreakerBoard(threshold=2, cooldown_s=60.0)
            session = ShardedDecodeSession(
                hosts=[(alive.host, alive.port), ("127.0.0.1", dead_port)],
                policy="roundrobin", breakers=breakers,
                connect_timeout_s=2.0, max_batch=8, pump=False)
            try:
                handles = [session.submit(blob) for _ in range(8)]
                batch = session.run_once()
                results = [h.result(timeout=60) for h in handles]
                assert all(r.ok for r in results)
                assert all(np.array_equal(r.rgb, oracle) for r in results)
                assert any(r.failed_over for r in results)
                dead_lane = f"remote-127.0.0.1:{dead_port}"
                assert batch.lane_failures.get(dead_lane, 0) > 0
                assert breakers.state(dead_lane) == "open"
                per_host = session.stats_snapshot()["per_host"]
                assert per_host[dead_lane]["failures"] > 0
                assert per_host[dead_lane]["breaker"] == "open"
            finally:
                session.close(drain=False)

    def test_half_open_canary_readmits_restarted_host(self, blob, oracle):
        victim = DecodeWorkerHost(port=0, backend="serial")
        port = victim.port
        victim.close()
        with running_host() as alive:
            breakers = LaneBreakerBoard(threshold=1, cooldown_s=0.2)
            session = ShardedDecodeSession(
                hosts=[(alive.host, alive.port), ("127.0.0.1", port)],
                policy="roundrobin", breakers=breakers,
                connect_timeout_s=2.0, max_batch=4, pump=False)
            try:
                handles = [session.submit(blob) for _ in range(4)]
                session.run_once()
                assert all(h.result(timeout=60).ok for h in handles)
                lane = f"remote-127.0.0.1:{port}"
                assert breakers.state(lane) == "open"

                with running_host(port=port) as revived:
                    time.sleep(0.3)  # past the cooldown: probe half-opens
                    for _ in range(3):
                        handles = [session.submit(blob) for _ in range(4)]
                        session.run_once()
                        assert all(h.result(timeout=60).ok
                                   for h in handles)
                    assert breakers.state(lane) == "closed"
                    assert revived.requests > 0
            finally:
                session.close(drain=False)


# ---------------------------------------------------------------------------
# Kill a real host process mid-batch.
# ---------------------------------------------------------------------------

def _spawn_worker(port: int = 0) -> tuple[subprocess.Popen, int]:
    """Start ``repro serve-worker`` as a subprocess; return it and the
    bound port parsed from its startup line."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve-worker", "--port", str(port),
         "--backend", "serial"],
        env=env, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        text=True)
    line = proc.stdout.readline()
    match = re.search(r"listening on [\d.]+:(\d+)", line)
    assert match, f"no listening line from serve-worker: {line!r}"
    return proc, int(match.group(1))


class TestKillHostMidBatch:
    def test_sigkill_recovery_and_canary_readmission(self, blob, oracle):
        victim, victim_port = _spawn_worker()
        survivor, survivor_port = _spawn_worker()
        breakers = LaneBreakerBoard(threshold=1, cooldown_s=0.2)
        session = ShardedDecodeSession(
            hosts=f"127.0.0.1:{victim_port},127.0.0.1:{survivor_port}",
            policy="roundrobin", breakers=breakers,
            connect_timeout_s=2.0, request_timeout_s=30.0,
            max_batch=8, pump=False)
        restarted = None
        victim_lane = f"remote-127.0.0.1:{victim_port}"
        try:
            handles = [session.submit(blob) for _ in range(8)]
            # SIGKILL the victim mid-batch: whether the kill lands
            # before or during its dispatches, every image must still
            # come back ok (failover onto the survivor) and the
            # victim's breaker must trip.
            victim.send_signal(signal.SIGKILL)
            victim.wait(timeout=10)
            batch = session.run_once()
            results = [h.result(timeout=60) for h in handles]
            assert all(r.ok for r in results)
            assert all(np.array_equal(r.rgb, oracle) for r in results)
            assert breakers.state(victim_lane) == "open"
            assert batch.lane_failures.get(victim_lane, 0) > 0

            # Restart on the same port; the half-open canary re-admits.
            restarted, _ = _spawn_worker(port=victim_port)
            time.sleep(0.3)
            for _ in range(3):
                handles = [session.submit(blob) for _ in range(4)]
                session.run_once()
                assert all(h.result(timeout=60).ok for h in handles)
            assert breakers.state(victim_lane) == "closed"
        finally:
            session.close(drain=False)
            for proc in (victim, survivor, restarted):
                if proc is None:
                    continue
                if proc.poll() is None:
                    proc.terminate()
                try:
                    proc.wait(timeout=10)
                except subprocess.TimeoutExpired:
                    proc.kill()
                    proc.wait(timeout=10)
                proc.stdout.close()
        assert shm_files() == []


# ---------------------------------------------------------------------------
# Priority classes and weighted shedding.
# ---------------------------------------------------------------------------

class TestPriority:
    def test_parse_priority(self):
        assert parse_priority("low") == PRIORITY_LOW
        assert parse_priority("NORMAL") == PRIORITY_NORMAL
        assert parse_priority("high") == PRIORITY_HIGH
        assert parse_priority("2") == 2
        assert parse_priority(7) == 7
        for bad in ("urgent", "-1", -1, 1.5, True, None):
            with pytest.raises(ServiceError):
                parse_priority(bad)

    def test_weighted_shedding_by_class(self, blob):
        session = DecodeSession(queue_capacity=10, pump=False)
        try:
            def fill(priority: int) -> int:
                admitted = 0
                while True:
                    try:
                        session.submit(ImageRequest(data=blob,
                                                    priority=priority))
                    except QueueFullError:
                        return admitted
                    admitted += 1

            # Low sees half the queue, normal 90%, high all of it.
            assert fill(PRIORITY_LOW) == 5
            assert fill(PRIORITY_NORMAL) == 4   # up to 9 total
            assert fill(PRIORITY_HIGH) == 1     # up to 10 total
            shed = session.stats_snapshot()["faults"]["shed_by_priority"]
            assert shed == {"0": 1, "1": 1, "2": 1}
        finally:
            session.close(drain=False)

    def test_high_priority_dispatches_first(self, blob):
        session = DecodeSession(max_batch=3, pump=False)
        try:
            session.submit(ImageRequest(data=blob, request_id="low",
                                        priority=PRIORITY_LOW))
            session.submit(ImageRequest(data=blob, request_id="high",
                                        priority=PRIORITY_HIGH))
            session.submit(ImageRequest(data=blob, request_id="normal",
                                        priority=PRIORITY_NORMAL))
            batch = session.run_once()
            order = [r.request_id for r in batch.results]
            assert order == ["high", "normal", "low"]
        finally:
            session.close(drain=False)

    def test_invalid_priority_rejected_at_submit(self, blob):
        with DecodeSession(pump=False) as session:
            with pytest.raises(ServiceError):
                session.submit(ImageRequest(data=blob, priority=-2))
            with pytest.raises(ServiceError):
                session.submit(ImageRequest(data=blob, priority=True))


# ---------------------------------------------------------------------------
# HTTP: X-Priority and backlog-scaled Retry-After.
# ---------------------------------------------------------------------------

@contextmanager
def serving(server: DecodeHTTPServer):
    """Run *server*'s accept loop on a daemon thread for the block."""
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield server
    finally:
        server.shutdown()
        thread.join(timeout=30)
        server.close()


class TestHTTPPriorityAndRetryAfter:
    def test_x_priority_accepted_and_invalid_rejected(self, blob):
        with serving(DecodeHTTPServer(port=0, backend="serial")) as server:
            req = urllib.request.Request(
                server.url + "/decode", data=blob,
                headers={"X-Priority": "high"})
            with urllib.request.urlopen(req, timeout=30) as resp:
                assert resp.status == 200
            bad = urllib.request.Request(
                server.url + "/decode", data=blob,
                headers={"X-Priority": "urgent"})
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(bad, timeout=30)
            assert excinfo.value.code == 400
            assert "X-Priority" in json.loads(
                excinfo.value.read())["error"]

    def test_retry_after_scales_with_backlog(self, blob):
        session = DecodeSession(queue_capacity=4, max_batch=2, pump=False)
        try:
            assert session.retry_after_s() == 1  # empty: floor
            with serving(DecodeHTTPServer(session=session,
                                          port=0)) as server:
                for _ in range(4):
                    session.submit(ImageRequest(data=blob,
                                                priority=PRIORITY_HIGH))
                req = urllib.request.Request(server.url + "/decode",
                                             data=blob)
                with pytest.raises(urllib.error.HTTPError) as excinfo:
                    urllib.request.urlopen(req, timeout=30)
                assert excinfo.value.code == 429
                retry_after = int(excinfo.value.headers["Retry-After"])
                assert 1 <= retry_after <= 30
                # 4 pending at a nominal max_batch=2 img/s floor: the
                # hint must exceed the empty-queue floor.
                assert retry_after >= 2
        finally:
            session.close(drain=False)


class TestTraceStitching:
    """PR 10 satellite: remote-host spans must land on the client's
    clock — offsets estimated from the request/response pair — so the
    stitched timeline is monotonic and never shows negative waits."""

    def test_remote_spans_are_client_clock_mapped(self, blob):
        with running_host() as host:
            session = ShardedDecodeSession(
                hosts=[(host.host, host.port)], tracing="on", pump=False)
            try:
                handle = session.submit(blob)
                session.run_once()
                result = handle.result(timeout=60)
            finally:
                session.close(drain=False)
        assert result.ok
        spans = result.trace_spans
        assert spans
        assert len({s.trace_id for s in spans}) == 1
        by_name: dict[str, list] = {}
        for span in spans:
            by_name.setdefault(span.name, []).append(span)
        # The client-side skeleton plus the host-side decode stages all
        # stitch into one trace.
        for name in ("request", "queue", "attempt", "remote_roundtrip",
                     "parse", "entropy", "idct", "upsample", "color"):
            assert name in by_name, sorted(by_name)
        endpoint = f"{host.host}:{host.port}"
        remote = [s for s in spans if s.resource.startswith(endpoint)]
        assert remote, "no spans attributed to the remote host"
        # Every span — local or clock-mapped remote — has non-negative
        # duration and stays inside the client's root request window.
        roots = [s for s in spans if s.parent_id is None]
        assert len(roots) == 1
        root = roots[0]
        assert root.name == "request"
        for span in spans:
            assert span.end >= span.start, span.name
            assert span.start >= root.start - 1e-6, span.name
            assert span.end <= root.end + 1e-6, span.name
        # Host-side spans sit inside the client's measured round-trip.
        (trip,) = by_name["remote_roundtrip"]
        for span in remote:
            assert span.start >= trip.start - 1e-6, span.name
            assert span.end <= trip.end + 1e-6, span.name
        # No negative queue waits anywhere in the stitched trace: each
        # queue span starts at/after its submission parent started.
        ids = {s.span_id: s for s in spans}
        for queue_span in by_name["queue"]:
            assert queue_span.duration_s >= 0.0
            parent = ids[queue_span.parent_id]
            assert queue_span.start >= parent.start - 1e-6

    def test_remote_spans_ride_result_and_land_in_client_store(self, blob):
        with running_host() as host:
            session = ShardedDecodeSession(
                hosts=[(host.host, host.port)], tracing="on", pump=False)
            try:
                handle = session.submit(blob)
                session.run_once()
                result = handle.result(timeout=60)
                trace_id = result.trace_spans[0].trace_id
                stored = session.obs.store.get(trace_id)
            finally:
                session.close(drain=False)
        assert {s.span_id for s in stored} == {
            s.span_id for s in result.trace_spans}
        trip = next(s for s in stored if s.name == "remote_roundtrip")
        assert trip.attrs["bytes_tx"] > 0
        assert trip.attrs["bytes_rx"] > 0
