"""Shared fixtures: small deterministic images, encoded corpora and
profiled decoders, cached per session to keep the suite fast."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import HeterogeneousDecoder
from repro.data import synthetic_photo, synthetic_smooth
from repro.jpeg import EncoderSettings, decode_jpeg, encode_jpeg
from repro.evaluation import platforms


@pytest.fixture(scope="session")
def small_rgb() -> np.ndarray:
    """A 96x144 photo-like image (not block-aligned on purpose)."""
    return synthetic_photo(96, 144, seed=42, detail=0.6)


@pytest.fixture(scope="session")
def tiny_rgb() -> np.ndarray:
    """A 24x40 image for the cheapest end-to-end paths."""
    return synthetic_photo(24, 40, seed=1, detail=0.4)


@pytest.fixture(scope="session")
def smooth_rgb() -> np.ndarray:
    return synthetic_smooth(64, 64, seed=3)


@pytest.fixture(scope="session", params=["4:4:4", "4:2:2"])
def subsampling(request) -> str:
    """The two modes the paper evaluates."""
    return request.param


@pytest.fixture(scope="session")
def jpeg_422(small_rgb) -> bytes:
    return encode_jpeg(small_rgb, EncoderSettings(quality=85, subsampling="4:2:2"))


@pytest.fixture(scope="session")
def jpeg_444(small_rgb) -> bytes:
    return encode_jpeg(small_rgb, EncoderSettings(quality=85, subsampling="4:4:4"))


@pytest.fixture(scope="session")
def ref_rgb_422(jpeg_422) -> np.ndarray:
    return decode_jpeg(jpeg_422).rgb


@pytest.fixture(scope="session")
def ref_rgb_444(jpeg_444) -> np.ndarray:
    return decode_jpeg(jpeg_444).rgb


@pytest.fixture(scope="session")
def gtx560_decoder() -> HeterogeneousDecoder:
    """A profiled decoder on the mid-range platform (models cached
    process-wide, so this is cheap after first use)."""
    return HeterogeneousDecoder.for_platform(platforms.GTX560)


@pytest.fixture(scope="session")
def gt430_decoder() -> HeterogeneousDecoder:
    return HeterogeneousDecoder.for_platform(platforms.GT430)


@pytest.fixture(scope="session")
def gtx680_decoder() -> HeterogeneousDecoder:
    return HeterogeneousDecoder.for_platform(platforms.GTX680)
