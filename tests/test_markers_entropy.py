"""Marker parsing/serialization and scan entropy coding."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import EntropyError, JpegFormatError, JpegUnsupportedError
from repro.jpeg import EncoderSettings, encode_jpeg, parse_jpeg
from repro.jpeg import constants as C
from repro.jpeg.blocks import ImageGeometry
from repro.jpeg.entropy import (
    CoefficientBuffers,
    ComponentTables,
    EntropyDecoder,
    EntropyEncoder,
)
from repro.jpeg.huffman import HuffmanSpec
from repro.jpeg.markers import (
    build_dht,
    build_dqt,
    build_sos,
    parse_dht_payload,
    parse_sof0_payload,
    parse_sos_payload,
)
from repro.data import synthetic_photo


def std_tables() -> list[ComponentTables]:
    dc_l = HuffmanSpec(C.STD_DC_LUMINANCE_BITS, C.STD_DC_LUMINANCE_VALUES)
    ac_l = HuffmanSpec(C.STD_AC_LUMINANCE_BITS, C.STD_AC_LUMINANCE_VALUES)
    dc_c = HuffmanSpec(C.STD_DC_CHROMINANCE_BITS, C.STD_DC_CHROMINANCE_VALUES)
    ac_c = HuffmanSpec(C.STD_AC_CHROMINANCE_BITS, C.STD_AC_CHROMINANCE_VALUES)
    return [ComponentTables(dc_l, ac_l), ComponentTables(dc_c, ac_c),
            ComponentTables(dc_c, ac_c)]


def random_coefficients(geo: ImageGeometry, seed: int,
                        spread: int = 60) -> CoefficientBuffers:
    rng = np.random.default_rng(seed)
    coeffs = CoefficientBuffers.empty(geo)
    for plane in coeffs.planes:
        # sparse, JPEG-like blocks: a DC plus a few low-frequency ACs
        plane[:, 0, 0] = rng.integers(-spread, spread, plane.shape[0])
        mask = rng.random(plane.shape) < 0.08
        vals = rng.integers(-30, 31, plane.shape).astype(np.int16)
        plane += (mask * vals).astype(np.int16)
    return coeffs


class TestMarkerParsing:
    def test_parse_roundtrip_via_encoder(self, small_rgb):
        data = encode_jpeg(small_rgb, EncoderSettings(quality=80,
                                                      subsampling="4:2:2"))
        info = parse_jpeg(data)
        assert (info.width, info.height) == (144, 96)
        assert info.subsampling_mode == "4:2:2"
        assert info.file_size == len(data)
        assert len(info.entropy_data) > 100
        assert set(info.quant_tables) == {0, 1}
        assert set(info.dc_tables) == {0, 1}
        assert 0 < info.file_density < 3

    def test_missing_soi(self):
        with pytest.raises(JpegFormatError):
            parse_jpeg(b"\x00\x00\x00\x00")

    def test_truncated_file(self, jpeg_422):
        with pytest.raises(JpegFormatError):
            parse_jpeg(jpeg_422[:40])

    def test_arithmetic_coding_rejected(self, jpeg_422):
        # flip the SOF0 marker byte to SOF9 (arithmetic sequential)
        idx = jpeg_422.find(bytes([0xFF, C.SOF0]))
        corrupted = bytearray(jpeg_422)
        corrupted[idx + 1] = C.SOF9
        with pytest.raises(JpegUnsupportedError, match="arithmetic coding"):
            parse_jpeg(bytes(corrupted))

    def test_comment_preserved(self, small_rgb):
        data = encode_jpeg(small_rgb, EncoderSettings(comment=b"hello paper"))
        info = parse_jpeg(data)
        assert info.comments == [b"hello paper"]

    def test_restart_interval_parsed(self, small_rgb):
        data = encode_jpeg(small_rgb, EncoderSettings(restart_interval=4))
        assert parse_jpeg(data).restart_interval == 4

    def test_sof0_validations(self):
        with pytest.raises(JpegFormatError):
            parse_sof0_payload(b"\x08")
        # 12-bit precision
        import struct
        payload = struct.pack(">BHHB", 12, 8, 8, 1) + bytes([1, 0x11, 0])
        with pytest.raises(JpegUnsupportedError):
            parse_sof0_payload(payload)
        payload = struct.pack(">BHHB", 8, 0, 8, 1) + bytes([1, 0x11, 0])
        with pytest.raises(JpegFormatError):
            parse_sof0_payload(payload)

    def test_sos_non_baseline_rejected(self):
        payload = bytes([1, 1, 0x00, 1, 63, 0])  # Ss=1: spectral selection
        with pytest.raises(JpegUnsupportedError):
            parse_sos_payload(payload)

    def test_dht_roundtrip(self):
        spec = HuffmanSpec(C.STD_DC_LUMINANCE_BITS, C.STD_DC_LUMINANCE_VALUES)
        from repro.jpeg.markers import HuffmanTableDef
        seg = build_dht([HuffmanTableDef(0, 1, spec)])
        parsed = parse_dht_payload(seg[4:])
        assert parsed[0].table_class == 0
        assert parsed[0].table_id == 1
        assert parsed[0].spec == spec

    def test_dht_truncated(self):
        with pytest.raises(JpegFormatError):
            parse_dht_payload(b"\x00\x01")


class TestEntropyRoundtrip:
    @pytest.mark.parametrize("mode", ["4:4:4", "4:2:2", "4:2:0"])
    def test_encode_decode_identity(self, mode):
        geo = ImageGeometry(48, 40, mode)
        coeffs = random_coefficients(geo, seed=9)
        enc = EntropyEncoder(geo, std_tables())
        data = enc.encode(coeffs)
        dec = EntropyDecoder(geo, std_tables())
        out = dec.decode_all(data)
        for a, b in zip(coeffs.planes, out.planes):
            assert (a == b).all()

    def test_restart_interval_roundtrip(self):
        geo = ImageGeometry(64, 48, "4:2:2")
        coeffs = random_coefficients(geo, seed=10)
        enc = EntropyEncoder(geo, std_tables(), restart_interval=3)
        data = enc.encode(coeffs)
        assert b"\xff\xd0" in data  # RST0 present
        dec = EntropyDecoder(geo, std_tables(), restart_interval=3)
        out = dec.decode_all(data)
        for a, b in zip(coeffs.planes, out.planes):
            assert (a == b).all()

    def test_wrong_restart_sequence_detected(self):
        geo = ImageGeometry(64, 48, "4:2:2")
        coeffs = random_coefficients(geo, seed=11)
        data = EntropyEncoder(geo, std_tables(), restart_interval=2).encode(coeffs)
        # corrupt the first restart marker's index
        mutated = bytearray(data)
        idx = mutated.find(b"\xff\xd0")
        mutated[idx + 1] = 0xD5
        dec = EntropyDecoder(geo, std_tables(), restart_interval=2)
        with pytest.raises(EntropyError):
            dec.decode_all(bytes(mutated))

    def test_incremental_equals_full(self):
        geo = ImageGeometry(48, 64, "4:2:2")
        coeffs = random_coefficients(geo, seed=12)
        data = EntropyEncoder(geo, std_tables()).encode(coeffs)
        full = EntropyDecoder(geo, std_tables())
        full.decode_all(data)
        step = EntropyDecoder(geo, std_tables())
        step.start(data)
        while not step.finished:
            step.decode_mcu_rows(2)
        for a, b in zip(full.coefficients.planes, step.coefficients.planes):
            assert (a == b).all()

    def test_row_byte_offsets_monotone(self):
        geo = ImageGeometry(48, 64, "4:2:2")
        coeffs = random_coefficients(geo, seed=13)
        data = EntropyEncoder(geo, std_tables()).encode(coeffs)
        dec = EntropyDecoder(geo, std_tables())
        dec.decode_all(data)
        offs = dec.row_byte_offsets
        assert len(offs) == geo.mcu_rows + 1
        assert offs[0] == 0
        assert all(b >= a for a, b in zip(offs, offs[1:]))
        assert offs[-1] <= len(data)

    def test_decode_without_start_raises(self):
        geo = ImageGeometry(16, 16, "4:4:4")
        dec = EntropyDecoder(geo, std_tables())
        with pytest.raises(EntropyError):
            dec.decode_mcu_rows(1)

    def test_table_count_mismatch(self):
        geo = ImageGeometry(16, 16, "4:4:4")
        with pytest.raises(EntropyError):
            EntropyDecoder(geo, std_tables()[:2])

    def test_truncated_scan_raises(self):
        geo = ImageGeometry(48, 48, "4:2:2")
        coeffs = random_coefficients(geo, seed=14)
        data = EntropyEncoder(geo, std_tables()).encode(coeffs)
        dec = EntropyDecoder(geo, std_tables())
        dec.start(data[: len(data) // 4])
        with pytest.raises(Exception):  # Bitstream/Huffman/EntropyError
            dec.decode_mcu_rows(geo.mcu_rows)

    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=0, max_value=2**31 - 1))
    def test_roundtrip_property_random_blocks(self, seed):
        geo = ImageGeometry(32, 24, "4:4:4")
        coeffs = random_coefficients(geo, seed=seed, spread=200)
        data = EntropyEncoder(geo, std_tables()).encode(coeffs)
        out = EntropyDecoder(geo, std_tables()).decode_all(data)
        for a, b in zip(coeffs.planes, out.planes):
            assert (a == b).all()


class TestCoefficientBuffers:
    def test_rows_slice_is_view(self):
        geo = ImageGeometry(32, 32, "4:2:2")
        buf = CoefficientBuffers.empty(geo)
        sub = buf.rows_slice(1, 3)
        sub.planes[0][:] = 7
        assert (buf.planes[0][geo.components[0].blocks_wide:] == 7).any()

    def test_slice_shapes(self):
        geo = ImageGeometry(64, 48, "4:2:2")  # 4 mcus/row, 6 rows
        buf = CoefficientBuffers.empty(geo)
        sub = buf.rows_slice(2, 5)
        y, cb, cr = sub.planes
        assert y.shape[0] == 3 * geo.components[0].blocks_wide
        assert cb.shape[0] == 3 * geo.components[1].blocks_wide
