"""Whole-codec property-based tests (hypothesis) on small images.

These close the loop over every substrate at once: arbitrary small RGB
content and encoder settings must survive encode -> parse -> decode with
the right shape, bounded error, and cross-mode pixel identity.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import DecodeMode, HeterogeneousDecoder, PreparedImage
from repro.evaluation import platforms
from repro.jpeg import (
    DecodeOptions,
    EncoderSettings,
    decode_jpeg,
    decode_jpeg_rowwise,
    encode_jpeg,
    parse_jpeg,
)


def random_rgb(seed: int, h: int, w: int, smooth: bool) -> np.ndarray:
    rng = np.random.default_rng(seed)
    if smooth:
        yy, xx = np.mgrid[0:h, 0:w]
        base = (xx * 7 + yy * 5) % 256
        noise = rng.integers(-6, 7, (h, w, 3))
        return np.clip(base[..., None] + noise, 0, 255).astype(np.uint8)
    return rng.integers(0, 256, (h, w, 3)).astype(np.uint8)


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    h=st.integers(min_value=1, max_value=40),
    w=st.integers(min_value=1, max_value=40),
    quality=st.integers(min_value=30, max_value=97),
    mode=st.sampled_from(["4:4:4", "4:2:2", "4:2:0"]),
    smooth=st.booleans(),
)
def test_encode_parse_decode_roundtrip(seed, h, w, quality, mode, smooth):
    rgb = random_rgb(seed, h, w, smooth)
    data = encode_jpeg(rgb, EncoderSettings(quality=quality, subsampling=mode))
    info = parse_jpeg(data)
    assert (info.width, info.height) == (w, h)
    assert info.subsampling_mode == mode
    out = decode_jpeg(data).rgb
    assert out.shape == rgb.shape
    # error bounded by quantization coarseness; smooth content tighter
    max_err = np.abs(out.astype(int) - rgb.astype(int)).max()
    assert max_err <= 255  # always valid samples
    if smooth and quality >= 90 and mode == "4:4:4":
        assert max_err < 40


@settings(max_examples=12, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    h=st.integers(min_value=9, max_value=48),
    w=st.integers(min_value=9, max_value=48),
    restart=st.integers(min_value=0, max_value=5),
    optimize=st.booleans(),
)
def test_encoder_options_never_change_pixels(seed, h, w, restart, optimize):
    """Restart markers and optimized tables alter bytes, never pixels."""
    rgb = random_rgb(seed, h, w, smooth=True)
    base = encode_jpeg(rgb, EncoderSettings(quality=80))
    variant = encode_jpeg(rgb, EncoderSettings(
        quality=80, restart_interval=restart, optimize_huffman=optimize))
    assert np.array_equal(decode_jpeg(base).rgb, decode_jpeg(variant).rgb)


@settings(max_examples=10, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    h=st.integers(min_value=8, max_value=56),
    w=st.integers(min_value=8, max_value=56),
    step=st.integers(min_value=1, max_value=4),
    mode=st.sampled_from(["4:4:4", "4:2:2"]),
)
def test_rowwise_always_equals_whole(seed, h, w, step, mode):
    rgb = random_rgb(seed, h, w, smooth=True)
    data = encode_jpeg(rgb, EncoderSettings(quality=85, subsampling=mode))
    assert np.array_equal(
        decode_jpeg(data).rgb,
        decode_jpeg_rowwise(data, rows_per_step=step).rgb)


@pytest.fixture(scope="module")
def decoder():
    return HeterogeneousDecoder.for_platform(platforms.GTX560)


@settings(max_examples=8, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    h=st.integers(min_value=16, max_value=64),
    w=st.integers(min_value=16, max_value=64),
    mode=st.sampled_from(["4:4:4", "4:2:2"]),
)
def test_all_execution_modes_agree_on_arbitrary_images(decoder, seed, h, w,
                                                       mode):
    """The strongest invariant: six schedules, one pixel output."""
    rgb = random_rgb(seed, h, w, smooth=False)
    data = encode_jpeg(rgb, EncoderSettings(quality=75, subsampling=mode))
    prepared = PreparedImage.from_bytes(data)
    reference = decode_jpeg(data).rgb
    for exec_mode in DecodeMode:
        out = decoder.decode(prepared, exec_mode).rgb
        assert np.array_equal(out, reference), exec_mode
