"""GPU kernels: math equivalence against the CPU primitives, launch
geometry per the paper, and the cost orderings the design claims."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import JpegUnsupportedError, KernelError
from repro.gpusim import GTX560TI, CommandQueue, kernel_time_us
from repro.jpeg.blocks import ImageGeometry
from repro.jpeg.color import ycbcr_to_rgb_float
from repro.jpeg.idct import idct_2d_aan, samples_from_idct
from repro.jpeg.quantization import dequantize_blocks, luminance_table
from repro.jpeg.sampling import upsample_h2v1_fancy
from repro.kernels import (
    ColorConvertKernel,
    GpuDecodeProgram,
    GpuProgramOptions,
    IdctKernel,
    MergedAllKernel,
    MergedIdctColorKernel,
    MergedUpsampleColorKernel,
    PlanarBlockLayout,
    UpsampleKernel,
    deinterleave_rgb_vectors,
    interleave_rgb_vectors,
)

RNG = np.random.default_rng(7)
QUANT = luminance_table(80)


def rand_coeffs(n):
    return (RNG.random((n, 8, 8)) * 60 - 30).astype(np.int16)


class TestIdctKernel:
    def test_math_matches_cpu_path(self):
        k = IdctKernel()
        coeffs = rand_coeffs(12)
        expected = samples_from_idct(idct_2d_aan(dequantize_blocks(coeffs, QUANT)))
        assert np.array_equal(k.execute(coeffs=coeffs, quant=QUANT), expected)

    def test_eight_items_per_block(self):
        k = IdctKernel(workgroup_blocks=8)
        launch = k.describe_launch(coeffs=rand_coeffs(64), quant=QUANT)
        assert launch.ndrange.global_size == 64 * 8
        assert launch.ndrange.local_size == 8 * 8

    def test_workgroup_must_be_multiple_of_4(self):
        with pytest.raises(KernelError):
            IdctKernel(workgroup_blocks=6)

    def test_empty_launch_rejected(self):
        with pytest.raises(KernelError):
            IdctKernel().describe_launch(coeffs=rand_coeffs(0), quant=QUANT)

    def test_vectorized_fewer_write_transactions(self):
        coeffs = rand_coeffs(64)
        vec = IdctKernel(vectorized=True).describe_launch(coeffs=coeffs, quant=QUANT)
        sca = IdctKernel(vectorized=False).describe_launch(coeffs=coeffs, quant=QUANT)
        assert sca.traffic.write_transactions == 4 * vec.traffic.write_transactions

    def test_local_memory_scales_with_workgroup(self):
        coeffs = rand_coeffs(256)
        small = IdctKernel(workgroup_blocks=4).describe_launch(coeffs=coeffs, quant=QUANT)
        large = IdctKernel(workgroup_blocks=32).describe_launch(coeffs=coeffs, quant=QUANT)
        assert (large.traffic.local_bytes_per_group
                > small.traffic.local_bytes_per_group)


class TestUpsampleKernel:
    def test_math_is_algorithm1(self):
        k = UpsampleKernel()
        plane = RNG.integers(0, 256, (16, 24)).astype(np.uint8)
        assert np.array_equal(k.execute(plane=plane), upsample_h2v1_fancy(plane))

    def test_sixteen_items_per_block(self):
        k = UpsampleKernel(workgroup_blocks=2)
        plane = np.zeros((16, 16), dtype=np.uint8)  # 4 blocks
        launch = k.describe_launch(plane=plane)
        assert launch.ndrange.global_size == 4 * 16

    def test_divergent_variant_slower(self):
        plane = np.zeros((64, 64), dtype=np.uint8)
        good = UpsampleKernel(divergence_free=True).describe_launch(plane=plane)
        bad = UpsampleKernel(divergence_free=False).describe_launch(plane=plane)
        assert bad.divergence_factor > good.divergence_factor
        assert (kernel_time_us(bad, GTX560TI)
                >= kernel_time_us(good, GTX560TI))

    def test_unaligned_plane_rejected(self):
        with pytest.raises(KernelError):
            UpsampleKernel().describe_launch(plane=np.zeros((10, 16)))


class TestColorKernel:
    def test_math_is_algorithm2(self):
        k = ColorConvertKernel()
        y, cb, cr = (RNG.integers(0, 256, (24, 32)).astype(np.uint8)
                     for _ in range(3))
        assert np.array_equal(k.execute(y=y, cb=cb, cr=cr),
                              ycbcr_to_rgb_float(y, cb, cr))

    def test_vec4_stores_quarter_transactions(self):
        y = np.zeros((64, 64), dtype=np.uint8)
        vec = ColorConvertKernel(vectorized=True).describe_launch(y=y, cb=y, cr=y)
        sca = ColorConvertKernel(vectorized=False).describe_launch(y=y, cb=y, cr=y)
        assert sca.traffic.write_transactions == 4 * vec.traffic.write_transactions

    def test_shape_mismatch_rejected(self):
        y = np.zeros((16, 16), dtype=np.uint8)
        with pytest.raises(KernelError):
            ColorConvertKernel().describe_launch(y=y, cb=y[:8], cr=y)

    def test_non_warp_workgroup_rejected(self):
        with pytest.raises(KernelError):
            ColorConvertKernel(workgroup_items=100)


class TestMergedKernels:
    def test_idct_color_math(self):
        k = MergedIdctColorKernel()
        quants = [QUANT, QUANT, QUANT]
        comps = [rand_coeffs(6) for _ in range(3)]
        out = k.execute(y_coeffs=comps[0], cb_coeffs=comps[1],
                        cr_coeffs=comps[2], quants=quants)
        planes = [samples_from_idct(idct_2d_aan(dequantize_blocks(c, QUANT)))
                  for c in comps]
        expected = ycbcr_to_rgb_float(planes[0], planes[1], planes[2])
        assert np.array_equal(out, expected)

    def test_upsample_color_math(self):
        k = MergedUpsampleColorKernel()
        cb = RNG.integers(0, 256, (16, 16)).astype(np.uint8)
        cr = RNG.integers(0, 256, (16, 16)).astype(np.uint8)
        y = RNG.integers(0, 256, (16, 32)).astype(np.uint8)
        out = k.execute(y_plane=y, cb_plane=cb, cr_plane=cr)
        expected = ycbcr_to_rgb_float(
            y, upsample_h2v1_fancy(cb), upsample_h2v1_fancy(cr))
        assert np.array_equal(out, expected)

    def test_merged_cheaper_than_separate_444(self):
        """Section 4.4: merging saves the intermediate global round trip."""
        comps = [rand_coeffs(4096) for _ in range(3)]
        quants = [QUANT] * 3
        merged = MergedIdctColorKernel().describe_launch(
            y_coeffs=comps[0], cb_coeffs=comps[1], cr_coeffs=comps[2],
            quants=quants)
        t_merged = kernel_time_us(merged, GTX560TI)
        idct = IdctKernel()
        t_separate = sum(
            kernel_time_us(idct.describe_launch(coeffs=c, quant=QUANT), GTX560TI)
            for c in comps)
        y = np.zeros((512, 512), dtype=np.uint8)
        t_separate += kernel_time_us(
            ColorConvertKernel().describe_launch(y=y, cb=y, cr=y), GTX560TI)
        assert t_merged < t_separate

    def test_wrong_chroma_width_rejected(self):
        k = MergedUpsampleColorKernel()
        bad_y = np.zeros((16, 16), dtype=np.uint8)
        c = np.zeros((16, 16), dtype=np.uint8)
        with pytest.raises(KernelError):
            k.describe_launch(y_plane=bad_y, cb_plane=c, cr_plane=c)

    def test_all_merged_kernel_loses_occupancy(self):
        """The fusion the paper rejects: register pressure must show."""
        comps = [rand_coeffs(4096) for _ in range(3)]
        launch = MergedAllKernel().describe_launch(
            y_coeffs=comps[0], cb_coeffs=comps[1], cr_coeffs=comps[2],
            quants=[QUANT] * 3)
        from repro.gpusim import occupancy
        occ_all = occupancy(launch.ndrange, GTX560TI,
                            launch.registers_per_item,
                            launch.traffic.local_bytes_per_group)
        two_stage = MergedIdctColorKernel().describe_launch(
            y_coeffs=comps[0], cb_coeffs=comps[1], cr_coeffs=comps[2],
            quants=[QUANT] * 3)
        occ_two = occupancy(two_stage.ndrange, GTX560TI,
                            two_stage.registers_per_item,
                            two_stage.traffic.local_bytes_per_group)
        assert occ_all < occ_two

    def test_all_merged_execute_is_ablation_only(self):
        with pytest.raises(NotImplementedError):
            MergedAllKernel().execute(y_coeffs=None, cb_coeffs=None,
                                      cr_coeffs=None, quants=None)


class TestLayout:
    def test_block_counts_422(self):
        geo = ImageGeometry(64, 48, "4:2:2")
        layout = PlanarBlockLayout(geo, 0, geo.mcu_rows)
        y, cb, cr = layout.component_block_counts()
        assert y == 2 * cb == 2 * cr
        assert layout.coefficient_nbytes == layout.total_samples * 2

    def test_rgb_bytes_cropped_to_image(self):
        geo = ImageGeometry(30, 20, "4:2:2")  # padded grid is 32x24
        layout = PlanarBlockLayout(geo, 0, geo.mcu_rows)
        assert layout.rgb_nbytes == 30 * 20 * 3

    def test_span_pixels_bottom_clamped(self):
        geo = ImageGeometry(32, 20, "4:2:2")  # 3 MCU rows, image 20 px high
        bottom = PlanarBlockLayout(geo, 2, 3)
        assert bottom.output_pixels() == 32 * 4

    def test_rgb_vector_grouping_bijective(self):
        rows = RNG.integers(0, 256, (5, 8, 3)).astype(np.uint8)
        vecs = interleave_rgb_vectors(rows)
        assert vecs.shape == (5, 6, 4)
        assert np.array_equal(deinterleave_rgb_vectors(vecs), rows)


class TestProgram:
    def test_420_rejected(self):
        geo = ImageGeometry(32, 32, "4:2:0")
        with pytest.raises(JpegUnsupportedError):
            GpuDecodeProgram(CommandQueue(GTX560TI), geo, [QUANT] * 3)

    def test_price_span_matches_run_span_timing(self, jpeg_422):
        from repro.core import PreparedImage
        prep = PreparedImage.from_bytes(jpeg_422)
        geo = prep.geometry
        q1 = CommandQueue(GTX560TI)
        p1 = GpuDecodeProgram(q1, geo, prep.quants)
        _, res = p1.run_span(prep.coefficients, 0, geo.mcu_rows, 0.0)
        q2 = CommandQueue(GTX560TI)
        p2 = GpuDecodeProgram(q2, geo, prep.quants)
        _, events = p2.price_span(0, geo.mcu_rows, 0.0)
        assert len(events) == len(res.events)
        for a, b in zip(res.events, events):
            assert a.start == pytest.approx(b.start)
            assert a.end == pytest.approx(b.end)

    def test_price_span_444_unmerged(self):
        geo = ImageGeometry(64, 64, "4:4:4")
        q = CommandQueue(GTX560TI)
        p = GpuDecodeProgram(q, geo, [QUANT] * 3,
                             GpuProgramOptions(merge_kernels=False))
        _, events = p.price_span(0, geo.mcu_rows, 0.0)
        kinds = [e.kind for e in events]
        assert kinds[0] == "write" and kinds[-1] == "read"
        assert kinds.count("kernel") == 4  # 3x IDCT + color

    def test_price_span_422_unmerged(self):
        geo = ImageGeometry(64, 64, "4:2:2")
        q = CommandQueue(GTX560TI)
        p = GpuDecodeProgram(q, geo, [QUANT] * 3,
                             GpuProgramOptions(merge_kernels=False))
        _, events = p.price_span(0, geo.mcu_rows, 0.0)
        assert [e.kind for e in events].count("kernel") == 6
