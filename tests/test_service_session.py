"""Futures-based decode sessions: handle resolution and bit-identity
across engines/backends/schedulers, lifecycle edges (cancel on
``close(drain=False)``, result timeouts, exactly-once callbacks,
idempotent close), and the N-producer stress contract of the bounded
submission queue."""

from __future__ import annotations

import threading
from concurrent.futures import CancelledError

import numpy as np
import pytest

from repro.errors import QueueFullError, ServiceClosedError
from repro.jpeg import EncoderSettings, decode_jpeg, encode_jpeg
from repro.service import (
    DecodeHandle,
    DecodeService,
    DecodeSession,
    ImageRequest,
    SubmissionQueue,
)


@pytest.fixture(scope="module")
def corpus(small_rgb, tiny_rgb):
    """Mixed-subsampling corpus, with and without restart markers."""
    return [
        encode_jpeg(small_rgb, EncoderSettings(
            quality=85, subsampling="4:2:2")),
        encode_jpeg(small_rgb, EncoderSettings(
            quality=85, subsampling="4:4:4", restart_interval=4)),
        encode_jpeg(tiny_rgb, EncoderSettings(
            quality=75, subsampling="4:2:0", restart_interval=2)),
        encode_jpeg(tiny_rgb, EncoderSettings(
            quality=90, subsampling="4:2:2")),
    ]


@pytest.fixture(scope="module")
def sequential_rgbs(corpus):
    """Oracle: single-image sequential decodes of the corpus."""
    return [decode_jpeg(b).rgb for b in corpus]


class TestHandleBitIdentity:
    """The acceptance matrix: a pumped session's handles resolve to
    results bit-identical to decode_jpeg for every engine/backend/
    scheduler combination."""

    @pytest.mark.parametrize("scheduler", [None, "model", "roundrobin"])
    @pytest.mark.parametrize("backend", ["serial", "thread"])
    @pytest.mark.parametrize("engine", ["fast", "reference"])
    def test_matrix(self, corpus, sequential_rgbs, engine, backend,
                    scheduler):
        reqs = [ImageRequest(data=b, entropy_engine=engine) for b in corpus]
        with DecodeSession(max_batch=4, max_delay_ms=20.0, workers=2,
                           backend=backend, scheduler=scheduler) as sess:
            handles = [sess.submit(r) for r in reqs]
            results = [h.result(timeout=60) for h in handles]
        for res, oracle in zip(results, sequential_rgbs):
            assert res.ok, f"{res.error_type}: {res.error}"
            assert np.array_equal(res.rgb, oracle)
        assert all(h.done() and not h.cancelled() for h in handles)

    def test_process_backend(self, corpus, sequential_rgbs):
        with DecodeSession(max_batch=4, workers=2,
                           backend="process") as sess:
            handles = [sess.submit(b) for b in corpus]
            results = [h.result(timeout=120) for h in handles]
        for res, oracle in zip(results, sequential_rgbs):
            assert res.ok
            assert np.array_equal(res.rgb, oracle)

    def test_age_deadline_dispatches_partial_batch(self, corpus,
                                                   sequential_rgbs):
        """A lone request must not wait for max_batch to fill: the
        max_delay_ms deadline dispatches it."""
        with DecodeSession(max_batch=64, max_delay_ms=10.0,
                           backend="thread", workers=1) as sess:
            res = sess.submit(corpus[0]).result(timeout=30)
        assert res.ok
        assert np.array_equal(res.rgb, sequential_rgbs[0])

    def test_size_trigger_fills_batches(self, corpus):
        """With a huge age deadline, dispatch happens on batch size."""
        with DecodeSession(max_batch=2, max_delay_ms=60_000,
                           backend="thread", workers=2) as sess:
            handles = [sess.submit(corpus[3]) for _ in range(4)]
            results = [h.result(timeout=60) for h in handles]
            assert all(r.ok for r in results)
            assert sess.stats.batches >= 2

    def test_error_isolation_resolves_not_raises(self, corpus,
                                                 sequential_rgbs):
        """A corrupt image resolves its own handle with ok=False; the
        good neighbor's handle is untouched."""
        with DecodeSession(max_batch=2, backend="thread",
                           workers=2) as sess:
            good = sess.submit(corpus[0])
            bad = sess.submit(b"not a jpeg at all")
            bad_res = bad.result(timeout=30)
            good_res = good.result(timeout=30)
        assert good_res.ok
        assert np.array_equal(good_res.rgb, sequential_rgbs[0])
        assert not bad_res.ok
        assert bad.exception(timeout=0) is None     # resolved, not raised
        assert bad_res.error_type and bad_res.error

    def test_latency_measured_from_submit(self, corpus):
        """Session latency covers queue wait, not just batch wall."""
        with DecodeSession(max_batch=8, max_delay_ms=50.0,
                           backend="serial") as sess:
            res = sess.submit(corpus[3]).result(timeout=30)
        # The pump waited ~50ms for the batch to fill before decoding.
        assert res.latency_s >= 0.045


class TestHandleApi:
    def test_request_ids_monotonic_and_echoed(self, corpus):
        with DecodeSession(max_batch=4, backend="serial") as sess:
            handles = [sess.submit(corpus[3]) for _ in range(3)]
            assert [h.request_id for h in handles] == [0, 1, 2]
            results = [h.result(timeout=30) for h in handles]
        assert [r.request_id for r in results] == [0, 1, 2]

    def test_explicit_request_id_preserved(self, corpus):
        req = ImageRequest(data=corpus[3], request_id="user-7")
        with DecodeSession(backend="serial") as sess:
            handle = sess.submit(req)
            assert handle.request_id == "user-7"
            assert handle.result(timeout=30).request_id == "user-7"

    def test_result_timeout_raises_timeouterror(self, corpus):
        """result(timeout) on a never-dispatched handle raises
        TimeoutError (pump-less session, nothing drains the queue)."""
        sess = DecodeSession(backend="serial", pump=False)
        try:
            handle = sess.submit(corpus[3])
            assert not handle.done()
            with pytest.raises(TimeoutError):
                handle.result(timeout=0.05)
        finally:
            sess.close(drain=True)
        assert handle.result(timeout=0).ok   # drain resolved it after all

    def test_callbacks_fire_exactly_once(self, corpus):
        calls: list[DecodeHandle] = []
        with DecodeSession(max_batch=2, backend="thread",
                           workers=2) as sess:
            h = sess.submit(corpus[3])
            h.add_done_callback(calls.append)
            h.result(timeout=30)
        # Registering after completion fires immediately, still once.
        h.add_done_callback(calls.append)
        assert calls == [h, h]
        assert all(c is h for c in calls)

    def test_callback_exception_does_not_kill_pump(self, corpus):
        with DecodeSession(max_batch=1, backend="serial") as sess:
            h1 = sess.submit(corpus[3])
            h1.add_done_callback(
                lambda _h: (_ for _ in ()).throw(RuntimeError("boom")))
            h1.result(timeout=30)
            # The pump survived the callback: a second submit resolves.
            assert sess.submit(corpus[3]).result(timeout=30).ok


class TestSessionLifecycle:
    def test_close_drain_false_cancels_pending(self, corpus):
        """Pending handles are cancelled, not decoded: the pump is held
        idle by a huge batch-fill deadline, so nothing dispatched yet."""
        sess = DecodeSession(max_batch=64, max_delay_ms=60_000,
                             backend="serial")
        handles = [sess.submit(corpus[3]) for _ in range(3)]
        sess.close(drain=False)
        for h in handles:
            assert h.cancelled()
            with pytest.raises(CancelledError):
                h.result(timeout=1)

    def test_close_drain_true_completes_pending(self, corpus,
                                                sequential_rgbs):
        sess = DecodeSession(max_batch=64, max_delay_ms=60_000,
                             backend="serial")
        handles = [sess.submit(corpus[3]) for _ in range(3)]
        sess.close(drain=True)
        for h in handles:
            assert np.array_equal(h.result(timeout=0).rgb,
                                  sequential_rgbs[3])

    def test_submit_after_close_raises(self, corpus):
        sess = DecodeSession(backend="serial")
        sess.close()
        assert sess.closed
        with pytest.raises(ServiceClosedError):
            sess.submit(corpus[3])

    def test_double_close_is_idempotent(self, corpus):
        sess = DecodeSession(backend="serial")
        sess.submit(corpus[3])
        sess.close(drain=True)
        sess.close(drain=True)      # second close: no-op, no error
        sess.close(drain=False)     # mixed-mode close after close: no-op
        assert sess.closed

    def test_cancelled_callback_fires(self, corpus):
        sess = DecodeSession(max_batch=64, max_delay_ms=60_000,
                             backend="serial")
        seen = []
        h = sess.submit(corpus[3])
        h.add_done_callback(lambda hh: seen.append(hh.cancelled()))
        sess.close(drain=False)
        assert seen == [True]

    def test_invalid_knobs_rejected(self):
        with pytest.raises(ValueError):
            DecodeSession(max_batch=0, backend="serial")
        with pytest.raises(ValueError):
            DecodeSession(max_delay_ms=-1, backend="serial")

    def test_stats_snapshot_shape(self, corpus):
        with DecodeSession(max_batch=2, backend="serial",
                           scheduler="model") as sess:
            sess.submit(corpus[0]).result(timeout=60)
            snap = sess.stats_snapshot()
        assert snap["images_ok"] == 1
        assert snap["pending"] == 0
        assert snap["queue_capacity"] == 32
        assert snap["queue_space"] == 32
        assert snap["latency_ms"]["p50"] > 0
        assert snap["scheduler"]["policy"] == "model"
        assert "scales" in snap["scheduler"]["feedback"]
        import json
        json.dumps(snap)   # must be JSON-serializable end to end


class TestFacadeCompat:
    """DecodeService is now a facade over a pump-less session; spot-check
    the delegation the PR-2/PR-3 suites rely on (those suites still run
    unchanged in test_service_batch.py / test_scheduler.py)."""

    def test_facade_exposes_session(self, corpus, sequential_rgbs):
        with DecodeService(batch_size=2, backend="serial") as svc:
            assert isinstance(svc.session, DecodeSession)
            assert svc.batch_size == 2
            rid = svc.submit(corpus[0])
            assert rid == 0
            batch = svc.run_once()
        assert np.array_equal(batch.results[0].rgb, sequential_rgbs[0])
        assert svc.stats.batches == 1

    def test_facade_close_does_not_decode_leftovers(self, corpus):
        svc = DecodeService(batch_size=2, backend="serial")
        svc.submit(corpus[0])
        svc.close()
        assert svc.stats.batches == 0


class TestQueueStress:
    """The satellite contract: N producer threads racing the pump lose
    and duplicate nothing; QueueFullError only exists in fail-fast mode."""

    N_PRODUCERS = 8
    PER_PRODUCER = 50

    def _run_producers(self, queue: SubmissionQueue, timeout,
                       errors: list) -> list[threading.Thread]:
        def produce(pid: int) -> None:
            for k in range(self.PER_PRODUCER):
                try:
                    queue.put((pid, k), timeout=timeout)
                except QueueFullError:
                    errors.append((pid, k))
        threads = [threading.Thread(target=produce, args=(pid,))
                   for pid in range(self.N_PRODUCERS)]
        for t in threads:
            t.start()
        return threads

    def test_blocking_producers_lose_nothing(self):
        queue = SubmissionQueue(capacity=4)
        drained: list = []
        stop = threading.Event()

        def pump() -> None:
            while not stop.is_set() or len(queue):
                drained.extend(queue.get_batch(3, timeout=0.01))

        consumer = threading.Thread(target=pump)
        consumer.start()
        errors: list = []
        producers = self._run_producers(queue, timeout=None, errors=errors)
        for t in producers:
            t.join()
        stop.set()
        consumer.join()
        assert errors == []      # blocking mode never raises QueueFullError
        expected = {(pid, k) for pid in range(self.N_PRODUCERS)
                    for k in range(self.PER_PRODUCER)}
        assert len(drained) == len(expected)      # nothing lost...
        assert set(drained) == expected           # ...nothing duplicated
        # FIFO per producer: each producer's items drained in order.
        for pid in range(self.N_PRODUCERS):
            ks = [k for p, k in drained if p == pid]
            assert ks == sorted(ks)

    def test_failfast_producers_see_queuefull_only(self):
        """With timeout=0 and a slow consumer, some puts are rejected —
        but every accepted item still comes out exactly once."""
        queue = SubmissionQueue(capacity=2)
        drained: list = []
        stop = threading.Event()

        def pump() -> None:
            while not stop.is_set() or len(queue):
                drained.extend(queue.get_batch(1, timeout=0.001))

        consumer = threading.Thread(target=pump)
        consumer.start()
        errors: list = []
        producers = self._run_producers(queue, timeout=0, errors=errors)
        for t in producers:
            t.join()
        stop.set()
        consumer.join()
        expected = {(pid, k) for pid in range(self.N_PRODUCERS)
                    for k in range(self.PER_PRODUCER)}
        assert set(drained) | set(errors) == expected
        assert len(drained) + len(errors) == len(expected)
        assert not set(drained) & set(errors)

    def test_session_under_concurrent_producers(self, corpus,
                                                sequential_rgbs):
        """End-to-end stress: producer threads submit real JPEGs with
        blocking backpressure against a live pump; every handle resolves
        bit-identically and ids are unique."""
        n_producers, per_producer = 4, 3
        all_handles: list[list[DecodeHandle]] = [[] for _ in
                                                 range(n_producers)]
        with DecodeSession(max_batch=4, max_delay_ms=1.0,
                           queue_capacity=4, backend="thread",
                           workers=2) as sess:
            def produce(pid: int) -> None:
                for _ in range(per_producer):
                    all_handles[pid].append(
                        sess.submit(corpus[3], timeout=None))

            threads = [threading.Thread(target=produce, args=(pid,))
                       for pid in range(n_producers)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            flat = [h for per in all_handles for h in per]
            results = [h.result(timeout=120) for h in flat]
        assert len({h.request_id for h in flat}) == len(flat)
        for res in results:
            assert res.ok
            assert np.array_equal(res.rgb, sequential_rgbs[3])
        assert sess.stats.images_ok == n_producers * per_producer
