"""Batched decode service: bit-identity with sequential decodes,
backpressure/queue-full behavior, and per-image error isolation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import (
    QueueFullError,
    ServiceClosedError,
    ServiceError,
)
from repro.jpeg import DecodeOptions, EncoderSettings, decode_jpeg, encode_jpeg
from repro.service import (
    BatchDecoder,
    DecodeService,
    ImageRequest,
    SubmissionQueue,
    WorkerPool,
    percentile,
)


@pytest.fixture(scope="module")
def corpus(small_rgb, tiny_rgb):
    """Mixed-subsampling corpus, with and without restart markers."""
    return [
        encode_jpeg(small_rgb, EncoderSettings(
            quality=85, subsampling="4:2:2")),
        encode_jpeg(small_rgb, EncoderSettings(
            quality=85, subsampling="4:4:4", restart_interval=4)),
        encode_jpeg(tiny_rgb, EncoderSettings(
            quality=75, subsampling="4:2:0", restart_interval=2)),
        encode_jpeg(tiny_rgb, EncoderSettings(
            quality=90, subsampling="4:2:2")),
    ]


@pytest.fixture(scope="module")
def sequential_rgbs(corpus):
    """Oracle: single-image sequential decodes of the corpus."""
    return [decode_jpeg(b).rgb for b in corpus]


class TestBatchBitIdentity:
    @pytest.mark.parametrize("engine", ["fast", "reference"])
    @pytest.mark.parametrize("backend", ["serial", "thread"])
    def test_matches_sequential(self, corpus, sequential_rgbs,
                                engine, backend):
        reqs = [ImageRequest(data=b, entropy_engine=engine) for b in corpus]
        with BatchDecoder(workers=2, backend=backend) as dec:
            batch = dec.decode_batch(reqs)
        assert batch.ok
        assert len(batch) == len(corpus)
        for res, oracle in zip(batch, sequential_rgbs):
            assert res.ok
            assert np.array_equal(res.rgb, oracle)

    def test_engine_honored_per_image(self, corpus, sequential_rgbs):
        """A mixed-engine batch still matches the oracle image-by-image."""
        engines = ["fast", "reference", "fast", "reference"]
        reqs = [ImageRequest(data=b, entropy_engine=e)
                for b, e in zip(corpus, engines)]
        with BatchDecoder(backend="serial") as dec:
            batch = dec.decode_batch(reqs)
        for res, oracle in zip(batch, sequential_rgbs):
            assert np.array_equal(res.rgb, oracle)

    @pytest.mark.parametrize("engine", ["fast", "reference"])
    def test_split_segments_bit_identical(self, corpus, sequential_rgbs,
                                          engine):
        """Forced restart-segment fan-out must not change a single bit."""
        reqs = [ImageRequest(data=b, entropy_engine=engine,
                             split_segments=True) for b in corpus]
        with BatchDecoder(workers=3, backend="thread") as dec:
            batch = dec.decode_batch(reqs)
        assert batch.ok
        split_counts = [r.segments for r in batch]
        # Corpus images 1 and 2 carry DRI; they must actually have split.
        assert split_counts[1] > 1 and split_counts[2] > 1
        assert split_counts[0] == 1 and split_counts[3] == 1
        for res, oracle in zip(batch, sequential_rgbs):
            assert np.array_equal(res.rgb, oracle)

    def test_process_backend_matches_sequential(self, corpus,
                                                sequential_rgbs):
        with BatchDecoder(workers=2, backend="process") as dec:
            batch = dec.decode_batch(corpus)
        assert batch.ok
        for res, oracle in zip(batch, sequential_rgbs):
            assert np.array_equal(res.rgb, oracle)

    def test_executor_mode_decodes(self, corpus, sequential_rgbs):
        """Executor modes ride the simulated platform but keep real pixels."""
        req = ImageRequest(data=corpus[0], mode="simd")
        with BatchDecoder(backend="serial") as dec:
            res = dec.decode_batch([req]).results[0]
        assert res.ok
        assert res.simulated_us is not None and res.simulated_us > 0
        assert np.array_equal(res.rgb, sequential_rgbs[0])

    def test_custom_idct_matches_options(self, corpus):
        req = ImageRequest(data=corpus[0], idct_method="islow")
        with BatchDecoder(backend="serial") as dec:
            res = dec.decode_batch([req]).results[0]
        oracle = decode_jpeg(corpus[0],
                             DecodeOptions(idct_method="islow")).rgb
        assert np.array_equal(res.rgb, oracle)


class TestErrorIsolation:
    def test_corrupt_image_fails_alone(self, corpus, sequential_rgbs):
        bad = corpus[0][:len(corpus[0]) // 2]   # truncated scan
        items = [corpus[0], bad, corpus[3], b"not a jpeg at all"]
        with BatchDecoder(workers=2, backend="thread") as dec:
            batch = dec.decode_batch(items)
        oks = [r.ok for r in batch]
        assert oks == [True, False, True, False]
        assert np.array_equal(batch.results[0].rgb, sequential_rgbs[0])
        assert np.array_equal(batch.results[2].rgb, sequential_rgbs[3])
        for res in (batch.results[1], batch.results[3]):
            assert res.rgb is None
            assert res.error_type and res.error
        assert batch.stats.ok == 2 and batch.stats.failed == 2

    def test_corrupt_segment_fails_only_its_image(self, corpus,
                                                  sequential_rgbs):
        """A truncated DRI image under forced splitting fails in
        isolation — the marker-structure validation refuses to fan out
        a scan whose RSTn count no longer matches the DRI interval."""
        dri = corpus[1]
        # Truncate the scan but keep the EOI so headers still parse.
        bad = dri[: len(dri) // 2] + dri[-2:]
        reqs = [ImageRequest(data=dri, split_segments=True),
                ImageRequest(data=bad, split_segments=True),
                ImageRequest(data=corpus[0])]
        with BatchDecoder(workers=2, backend="thread") as dec:
            batch = dec.decode_batch(reqs)
        assert [r.ok for r in batch] == [True, False, True]
        assert batch.results[1].error_type == "EntropyError"
        assert "segments" in batch.results[1].error
        assert np.array_equal(batch.results[0].rgb, sequential_rgbs[1])

    def test_segment_worker_failure_is_captured(self, corpus):
        """decode_segment_task reports failures on its return tuple
        instead of raising (the contract the batch loop relies on)."""
        from repro.jpeg import parse_jpeg
        from repro.jpeg.decoder import component_tables_from_info
        from repro.jpeg.parallel_huffman import RestartSegment
        from repro.service.batch import decode_segment_task

        info = parse_jpeg(corpus[1])
        seg = RestartSegment(index=0, byte_start=0, byte_stop=1,
                             mcu_start=0,
                             mcu_count=info.restart_interval)
        # Invalid geometry makes the task fail before any bit is read.
        seg_out, planes, err_type, err, span = decode_segment_task(
            seg, b"\x00", (0, 16, "4:2:2"),
            component_tables_from_info(info), "fast")
        assert seg_out is seg
        assert planes is None
        assert err_type == "JpegError"
        assert "invalid image dimensions" in err
        assert span.duration_s >= 0

    def test_unknown_platform_reported(self, corpus):
        req = ImageRequest(data=corpus[0], mode="simd", platform="RTX 9999")
        with BatchDecoder(backend="serial") as dec:
            res = dec.decode_batch([req]).results[0]
        assert not res.ok
        assert "RTX 9999" in res.error


class TestQueueBackpressure:
    def test_nonblocking_put_raises_when_full(self):
        q = SubmissionQueue(capacity=2)
        q.put("a", timeout=0)
        q.put("b", timeout=0)
        with pytest.raises(QueueFullError):
            q.put("c", timeout=0)
        assert len(q) == 2

    def test_timed_put_raises_after_deadline(self):
        q = SubmissionQueue(capacity=1)
        q.put("a")
        with pytest.raises(QueueFullError, match="timed out"):
            q.put("b", timeout=0.05)

    def test_put_unblocks_after_drain(self):
        q = SubmissionQueue(capacity=1)
        q.put("a", timeout=0)
        assert q.get_batch(1) == ["a"]
        q.put("b", timeout=0)   # space freed: accepted again
        assert q.get_batch(8) == ["b"]
        assert q.get_batch(8) == []

    def test_closed_queue_rejects_puts_but_drains(self):
        q = SubmissionQueue(capacity=4)
        q.put("a")
        q.close()
        with pytest.raises(ServiceClosedError):
            q.put("b")
        assert q.get_batch(4) == ["a"]

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            SubmissionQueue(capacity=0)

    def test_service_backpressure_and_drain(self, corpus, sequential_rgbs):
        with DecodeService(batch_size=2, queue_capacity=2,
                           backend="serial") as svc:
            svc.submit(corpus[0])
            svc.submit(corpus[1])
            with pytest.raises(QueueFullError):
                svc.submit(corpus[2])     # full: backpressure surfaces
            assert svc.pending == 2
            first = svc.run_once()        # drain one batch ...
            assert first is not None and first.ok
            svc.submit(corpus[2])         # ... and submission succeeds
            batches = svc.drain()
            assert svc.run_once() is None
        results = list(first) + [r for b in batches for r in b]
        # Ids are unique and monotonic; the rejected submission's id (2)
        # is skipped, never reissued.
        assert [r.request_id for r in results] == [0, 1, 3]
        for res, oracle in zip(results, sequential_rgbs):
            assert np.array_equal(res.rgb, oracle)
        assert svc.stats.batches == 2
        assert svc.stats.images_ok == 3

    def test_closed_service_rejects_submissions(self, corpus):
        svc = DecodeService(backend="serial")
        svc.close()
        with pytest.raises(ServiceClosedError):
            svc.submit(corpus[0])


class TestStats:
    def test_batch_stats_populated(self, corpus):
        with BatchDecoder(workers=2, backend="thread") as dec:
            stats = dec.decode_batch(corpus).stats
        assert stats.batch_size == len(corpus)
        assert stats.images_per_sec > 0
        assert 0 < stats.latency_p50_ms <= stats.latency_p99_ms
        assert 0 < stats.worker_utilization <= 1
        assert stats.per_worker_busy_s
        assert "img/s" in stats.format()

    def test_percentile_interpolates(self):
        assert percentile([1.0, 2.0, 3.0, 4.0], 50) == pytest.approx(2.5)
        assert percentile([5.0], 99) == 5.0
        with pytest.raises(ValueError):
            percentile([], 50)


class TestWorkerPool:
    def test_unknown_backend_rejected(self):
        with pytest.raises(ServiceError):
            WorkerPool(backend="gpu-cluster")

    def test_zero_workers_rejected(self):
        with pytest.raises(ServiceError):
            WorkerPool(workers=0, backend="thread")

    def test_serial_submit_resolves_inline(self):
        with WorkerPool(backend="serial") as pool:
            assert pool.submit(lambda x: x + 1, 41).result() == 42

    def test_closed_pool_rejects_submissions(self):
        pool = WorkerPool(backend="serial")
        pool.close()
        with pytest.raises(ServiceClosedError):
            pool.submit(lambda: None)
