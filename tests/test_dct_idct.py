"""DCT/IDCT: reference vs AAN vs matrix agreement, round trips, scaling."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.jpeg.dct import dct_matrix, fdct_2d_blocks, fdct_2d_reference
from repro.jpeg.idct import (
    aan_scale_factors,
    idct_2d_aan,
    idct_2d_blocks,
    idct_2d_reference,
    samples_from_idct,
)


class TestDctMatrix:
    def test_orthonormal(self):
        c = dct_matrix()
        assert np.allclose(c @ c.T, np.eye(8), atol=1e-12)

    def test_first_row_constant(self):
        c = dct_matrix()
        assert np.allclose(c[0], 1 / np.sqrt(8))


class TestForward:
    def test_reference_matches_matrix_path(self):
        rng = np.random.default_rng(0)
        blocks = rng.integers(0, 256, (5, 8, 8)).astype(np.float64)
        batch = fdct_2d_blocks(blocks)
        for i in range(5):
            assert np.allclose(batch[i], fdct_2d_reference(blocks[i]), atol=1e-9)

    def test_constant_block_is_dc_only(self):
        blocks = np.full((1, 8, 8), 200.0)
        out = fdct_2d_blocks(blocks)
        assert abs(out[0, 0, 0] - (200 - 128) * 8) < 1e-9
        rest = out[0].copy()
        rest[0, 0] = 0
        assert np.allclose(rest, 0, atol=1e-9)


class TestInverseAgreement:
    def test_aan_matches_matrix(self):
        rng = np.random.default_rng(1)
        coeffs = rng.normal(0, 100, (64, 8, 8))
        assert np.allclose(idct_2d_aan(coeffs), idct_2d_blocks(coeffs), atol=1e-6)

    def test_matrix_matches_paper_equations(self):
        """Eq (1) column pass then Eq (2) row pass == separable matrix IDCT."""
        rng = np.random.default_rng(2)
        block = rng.normal(0, 50, (8, 8))
        assert np.allclose(
            idct_2d_reference(block), idct_2d_blocks(block[None])[0], atol=1e-9
        )

    def test_dc_only_block_is_flat(self):
        coeffs = np.zeros((1, 8, 8))
        coeffs[0, 0, 0] = 80.0
        out = idct_2d_aan(coeffs)
        assert np.allclose(out, out[0, 0, 0], atol=1e-9)
        assert abs(out[0, 0, 0] - 10.0) < 1e-9  # 80 / 8

    def test_linearity(self):
        rng = np.random.default_rng(3)
        a = rng.normal(0, 30, (4, 8, 8))
        b = rng.normal(0, 30, (4, 8, 8))
        assert np.allclose(
            idct_2d_aan(a + b), idct_2d_aan(a) + idct_2d_aan(b), atol=1e-8
        )


class TestRoundTrip:
    def test_fdct_then_idct_identity(self):
        rng = np.random.default_rng(4)
        blocks = rng.integers(0, 256, (16, 8, 8)).astype(np.float64)
        coeffs = fdct_2d_blocks(blocks)
        back = idct_2d_aan(coeffs) + 128.0
        assert np.allclose(back, blocks, atol=1e-6)

    @settings(max_examples=25, deadline=None)
    @given(arrays(np.float64, (2, 8, 8),
                  elements=st.floats(min_value=0, max_value=255)))
    def test_roundtrip_property(self, blocks):
        coeffs = fdct_2d_blocks(blocks)
        back = idct_2d_blocks(coeffs) + 128.0
        assert np.allclose(back, blocks, atol=1e-6)


class TestAanScale:
    def test_corner_value(self):
        s = aan_scale_factors()
        assert abs(s[0, 0] - 1 / 8) < 1e-12

    def test_symmetric(self):
        s = aan_scale_factors()
        assert np.allclose(s, s.T)


class TestSamples:
    def test_level_shift_and_clamp(self):
        spatial = np.array([[[-300.0, 0.0], [100.0, 300.0]]])
        out = samples_from_idct(spatial)
        assert out.dtype == np.uint8
        assert out.reshape(-1).tolist() == [0, 128, 228, 255]

    def test_rounding_is_nearest(self):
        spatial = np.array([[[0.4, 0.6]]])
        out = samples_from_idct(spatial)
        assert out.reshape(-1).tolist() == [128, 129]
