"""Synthetic image generators and corpus builders."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ReproError
from repro.data import (
    CorpusSpec,
    build_corpus,
    size_sweep_corpus,
    synthetic_detail,
    synthetic_photo,
    synthetic_skewed,
    synthetic_smooth,
    training_corpus,
)
from repro.data import test_corpus as make_test_corpus
from repro.jpeg import parse_jpeg


class TestGenerators:
    def test_deterministic(self):
        a = synthetic_photo(32, 48, seed=5)
        b = synthetic_photo(32, 48, seed=5)
        assert np.array_equal(a, b)

    def test_seed_changes_content(self):
        a = synthetic_photo(32, 48, seed=5)
        b = synthetic_photo(32, 48, seed=6)
        assert not np.array_equal(a, b)

    def test_shapes_and_dtype(self):
        for gen in (synthetic_photo, synthetic_smooth, synthetic_detail,
                    synthetic_skewed):
            img = gen(33, 47, seed=1)
            assert img.shape == (33, 47, 3)
            assert img.dtype == np.uint8

    def test_invalid_args(self):
        with pytest.raises(ReproError):
            synthetic_photo(0, 10)
        with pytest.raises(ReproError):
            synthetic_photo(10, 10, detail=1.5)
        with pytest.raises(ReproError):
            synthetic_skewed(10, 10, dense_fraction=0.0)

    def test_entropy_ordering(self):
        """smooth < photo < detail in compressed density."""
        from repro.jpeg import EncoderSettings, encode_jpeg
        s = EncoderSettings(quality=85, subsampling="4:2:2")
        h = w = 128
        sizes = [len(encode_jpeg(g(h, w, seed=2), s))
                 for g in (synthetic_smooth, synthetic_photo, synthetic_detail)]
        assert sizes[0] < sizes[1] < sizes[2]

    def test_detail_knob_monotone(self):
        from repro.jpeg import EncoderSettings, encode_jpeg
        s = EncoderSettings(quality=85)
        low = len(encode_jpeg(synthetic_photo(96, 96, seed=3, detail=0.1), s))
        high = len(encode_jpeg(synthetic_photo(96, 96, seed=3, detail=0.9), s))
        assert low < high

    def test_skewed_is_denser_at_bottom(self):
        """Bottom-half entropy must exceed top-half entropy — the PPS
        re-partitioning scenario."""
        from repro.core import PreparedImage
        from repro.jpeg import EncoderSettings, encode_jpeg
        img = synthetic_skewed(160, 160, seed=4, dense_fraction=0.5)
        data = encode_jpeg(img, EncoderSettings(quality=85,
                                                subsampling="4:2:2"))
        prep = PreparedImage.from_bytes(data)
        offs = prep.row_byte_offsets
        mid = len(offs) // 2
        top = offs[mid] - offs[0]
        bottom = offs[-1] - offs[mid]
        assert bottom > 1.5 * top


class TestCorpora:
    def test_build_matches_spec(self):
        spec = CorpusSpec(sizes=((64, 48), (96, 64)), seeds=(1, 2),
                          detail_levels=(0.5,))
        corpus = build_corpus(spec)
        assert len(corpus) == 4
        assert {(c.width, c.height) for c in corpus} == {(64, 48), (96, 64)}

    def test_images_are_valid_jpegs(self):
        spec = CorpusSpec(sizes=((64, 48),), seeds=(1,))
        for img in build_corpus(spec):
            info = parse_jpeg(img.data)
            assert (info.width, info.height) == (img.width, img.height)
            assert info.subsampling_mode == img.subsampling

    def test_caching_returns_same_objects(self):
        spec = CorpusSpec(sizes=((64, 48),), seeds=(1,))
        a = build_corpus(spec)
        b = build_corpus(spec)
        assert a[0].data is b[0].data

    def test_training_and_test_disjoint_seeds(self):
        tr = {c.seed for c in training_corpus()}
        te = {c.seed for c in make_test_corpus()}
        assert not (tr & te)

    def test_size_sweep_ascending_unique(self):
        corpus = size_sweep_corpus(max_side=512)
        keys = [(c.width, c.height) for c in corpus]
        assert len(set(keys)) == len(keys)
        assert max(c.width for c in corpus) <= 512

    def test_density_property(self):
        spec = CorpusSpec(sizes=((64, 64),), seeds=(1,))
        img = build_corpus(spec)[0]
        assert img.density == pytest.approx(len(img.data) / (64 * 64))
