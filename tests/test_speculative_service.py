"""Speculative chunk fan-out through the batch service: bit-identity
across backends and transports, the policy knob and per-request
override, scheduler routing of dominant marker-free images, fault
injection, and hostile-input error identity."""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.data.synth import GENERATORS, marker_free_corpus
from repro.jpeg import (
    DecodeOptions,
    EncoderSettings,
    decode_jpeg,
    encode_jpeg,
    parse_jpeg,
)
from repro.service import (
    BatchDecoder,
    FaultPlan,
    ImageRequest,
    LaneBreakerBoard,
    ModelScheduler,
    shm_available,
)
from repro.service.scheduler import price_images


def encode(rgb, sub="4:2:0", quality=85, dri=0) -> bytes:
    return encode_jpeg(rgb, EncoderSettings(
        quality=quality, subsampling=sub, restart_interval=dri))


def shm_files(prefix: str = "repro-") -> list[str]:
    try:
        return sorted(f for f in os.listdir("/dev/shm")
                      if f.startswith(prefix))
    except FileNotFoundError:
        return []


@pytest.fixture(scope="module")
def blobs():
    """Marker-free images: the speculative path's targets."""
    return [data for _, data in marker_free_corpus(
        sizes=((96, 80), (160, 120)), kinds=("photo", "smooth"))]


@pytest.fixture(scope="module")
def oracles(blobs):
    return [decode_jpeg(b).rgb for b in blobs]


class TestSpeculativeBatches:
    def test_thread_backend_identity(self, blobs, oracles):
        with BatchDecoder(workers=4, backend="thread",
                          speculative="on") as dec:
            batch = dec.decode_batch(
                [ImageRequest(data=b) for b in blobs])
        assert batch.ok
        for res, want in zip(batch.results, oracles):
            assert res.ok, (res.error_type, res.error)
            assert res.segments > 1, "speculative fan-out never engaged"
            assert res.speculative or res.misspeculated >= 0
            assert np.array_equal(res.rgb, want)

    def test_serial_backend_never_speculates(self, blobs, oracles):
        # Serial pools gain nothing from chunking; policy "on" must not
        # override physics.
        with BatchDecoder(backend="serial", speculative="on") as dec:
            batch = dec.decode_batch([ImageRequest(data=blobs[0])])
        res = batch.results[0]
        assert res.ok and res.segments == 1 and not res.speculative
        assert np.array_equal(res.rgb, oracles[0])

    def test_request_override_forbids(self, blobs, oracles):
        with BatchDecoder(workers=4, backend="thread",
                          speculative="on") as dec:
            batch = dec.decode_batch(
                [ImageRequest(data=blobs[0], speculative=False)])
        res = batch.results[0]
        assert res.ok and res.segments == 1 and not res.speculative
        assert np.array_equal(res.rgb, oracles[0])

    def test_request_override_forces_despite_off_policy(self, blobs,
                                                        oracles):
        with BatchDecoder(workers=4, backend="thread",
                          speculative="off") as dec:
            batch = dec.decode_batch(
                [ImageRequest(data=blobs[0], speculative=True)])
        res = batch.results[0]
        assert res.ok and res.segments > 1
        assert np.array_equal(res.rgb, oracles[0])

    def test_auto_policy_defers_to_batch_pressure(self, blobs):
        # A batch that already fills the pool keeps whole-image tasks;
        # a lone image fans out.
        with BatchDecoder(workers=2, backend="thread",
                          speculative="auto") as dec:
            full = dec.decode_batch(
                [ImageRequest(data=b) for b in blobs[:4]])
            lone = dec.decode_batch([ImageRequest(data=blobs[0])])
        assert all(r.segments == 1 for r in full.results)
        assert lone.results[0].segments > 1

    def test_chunk_count_knob(self, blobs, oracles):
        with BatchDecoder(workers=2, backend="thread", speculative="on",
                          speculative_chunks=5) as dec:
            batch = dec.decode_batch([ImageRequest(data=blobs[1])])
        res = batch.results[0]
        assert res.ok and res.segments == 5
        assert np.array_equal(res.rgb, oracles[1])

    def test_dri_image_not_speculated(self, small_rgb):
        data = encode(small_rgb, dri=4)
        with BatchDecoder(workers=4, backend="thread",
                          speculative="on") as dec:
            batch = dec.decode_batch([ImageRequest(
                data=data, speculative=True, split_segments=False)])
        res = batch.results[0]
        assert res.ok and not res.speculative
        assert np.array_equal(res.rgb, decode_jpeg(data).rgb)

    def test_invalid_policy_rejected(self):
        from repro.errors import ServiceError

        with pytest.raises(ServiceError):
            BatchDecoder(speculative="sometimes")
        with pytest.raises(ServiceError):
            BatchDecoder(speculative_chunks=0)


@pytest.mark.skipif(not shm_available(),
                    reason="POSIX shared memory unavailable")
class TestSpeculativeShm:
    def test_process_shm_identity_and_no_leak(self, blobs, oracles):
        before = shm_files()
        with BatchDecoder(workers=2, backend="process", transport="shm",
                          shm_min_bytes=0, speculative="on") as dec:
            batch = dec.decode_batch(
                [ImageRequest(data=b) for b in blobs[:2]])
            assert batch.ok
            assert batch.stats.bytes_shm > 0, \
                "chunk planes never rode shared memory"
            for res, want in zip(batch.results, oracles):
                assert res.segments > 1
                assert np.array_equal(res.rgb, want)
        assert shm_files() == before, "leaked /dev/shm segments"


class TestSpeculativeFaults:
    def test_killed_chunk_is_retried(self, blobs, oracles):
        plan = FaultPlan(kill_at={1})
        with BatchDecoder(workers=4, backend="thread", speculative="on",
                          retry_backoff_s=0.0, faults=plan) as dec:
            batch = dec.decode_batch([ImageRequest(data=blobs[0])])
        res = batch.results[0]
        assert res.ok and batch.retries >= 1
        assert np.array_equal(res.rgb, oracles[0])

    def test_lost_chunk_heals_as_misspeculation(self, blobs, oracles):
        # Past the retry budget a dead chunk is one more misspeculated
        # boundary: the stitch repairs it, the image never fails.
        plan = FaultPlan(kill_at={1, 2})
        with BatchDecoder(workers=4, backend="thread", speculative="on",
                          retry_budget=0, retry_backoff_s=0.0,
                          faults=plan) as dec:
            batch = dec.decode_batch([ImageRequest(data=blobs[0])])
        res = batch.results[0]
        assert res.ok, (res.error_type, res.error)
        assert res.misspeculated >= 1
        assert np.array_equal(res.rgb, oracles[0])

    def test_decode_exception_in_chunk_heals(self, blobs, oracles):
        plan = FaultPlan(exception_at={2})
        with BatchDecoder(workers=4, backend="thread", speculative="on",
                          retry_backoff_s=0.0, faults=plan) as dec:
            batch = dec.decode_batch([ImageRequest(data=blobs[0])])
        res = batch.results[0]
        assert res.ok
        assert np.array_equal(res.rgb, oracles[0])
        assert plan.injected["exception"] == 1

    def test_total_chunk_loss_is_infra_failure(self, blobs):
        plan = FaultPlan(kill_every=1)
        with BatchDecoder(workers=2, backend="thread", speculative="on",
                          retry_budget=0, retry_backoff_s=0.0,
                          faults=plan) as dec:
            batch = dec.decode_batch([ImageRequest(data=blobs[0])])
        res = batch.results[0]
        assert not res.ok and res.infra_failure
        assert res.error_type == "WorkerCrashError"


class TestHostileThroughService:
    def _hostile(self):
        base = encode(GENERATORS["photo"](64, 80, seed=11), quality=80)
        info = parse_jpeg(base)
        from repro.jpeg.fast_entropy import destuff_scan

        scan = destuff_scan(info.entropy_data)
        hostile = scan.payload[:len(scan.payload) // 2] + b"\xff\xd9"
        return base.replace(info.entropy_data, hostile)

    def test_corrupt_scan_reports_oracle_error(self):
        blob = self._hostile()
        try:
            decode_jpeg(blob, DecodeOptions(entropy_engine="fast"))
            want = None
        except Exception as exc:
            want = (type(exc).__name__, str(exc))
        assert want is not None, "fixture failed to corrupt the scan"
        with BatchDecoder(workers=4, backend="thread",
                          speculative="on") as dec:
            batch = dec.decode_batch([ImageRequest(data=blob)])
        res = batch.results[0]
        assert not res.ok and not res.infra_failure
        assert (res.error_type, res.error) == want


class TestSchedulerRouting:
    def test_dominant_marker_free_image_speculates(self):
        """The scheduler satellite, end to end: a dominant DRI=0 image
        is no longer serialized — LPT marks it split, apply() routes it
        speculative, and the decode fans out bit-identically."""
        big = encode(GENERATORS["photo"](480, 640, seed=6), quality=90)
        small = encode(GENERATORS["smooth"](64, 64, seed=7))
        assert parse_jpeg(big).restart_interval == 0
        with BatchDecoder(workers=2, backend="thread",
                          scheduler="model") as dec:
            batch = dec.decode_batch([big, small])
        assert batch.schedule.split_count == 1
        res = batch.results[0]
        assert res.ok and res.segments > 1 and res.speculative
        assert np.array_equal(res.rgb, decode_jpeg(big).rgb)

    def test_scheduler_speculative_off_serializes_again(self):
        big = encode(GENERATORS["photo"](480, 640, seed=6), quality=90)
        small = encode(GENERATORS["smooth"](64, 64, seed=7))
        sched = ModelScheduler(policy="model", speculative=False)
        with BatchDecoder(workers=2, backend="thread",
                          scheduler=sched) as dec:
            batch = dec.decode_batch([big, small])
        assert batch.schedule.split_count == 0
        res = batch.results[0]
        assert res.ok and res.segments == 1
        assert np.array_equal(res.rgb, decode_jpeg(big).rgb)

    def test_pricing_marks_marker_free_splittable(self):
        sched = ModelScheduler(policy="model")
        free = encode(GENERATORS["photo"](96, 96, seed=1))
        dri = encode(GENERATORS["photo"](96, 96, seed=1), dri=4)
        infos = [(0, parse_jpeg(free)), (1, parse_jpeg(dri))]
        with_spec = price_images(infos, sched.executors,
                                 sched._model_for, speculative=True)
        without = price_images(infos, sched.executors,
                               sched._model_for, speculative=False)
        assert [p.splittable for p in with_spec] == [True, True]
        assert [p.splittable for p in without] == [False, True]
        assert [p.has_restarts for p in with_spec] == [False, True]

    def test_breaker_limits_survive_with_speculation(self):
        # LaneBreakerBoard caps still constrain placement when every
        # image prices splittable.
        board = LaneBreakerBoard(threshold=1, cooldown_s=3600.0)
        sched = ModelScheduler(policy="model", breakers=board)
        lane_names = [ln.name for ln in sched.executors]
        for name in lane_names:
            board.record(name, ok=False)
        limits = board.limits(lane_names)
        assert all(v == 0 for v in limits.values())
        blob = encode(GENERATORS["photo"](96, 96, seed=2))
        schedule = sched.plan([ImageRequest(data=blob)])
        (a,) = schedule.assignments
        assert a.executor is None and not a.split
