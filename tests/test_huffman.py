"""Canonical Huffman tables: construction, coding, magnitude categories."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import HuffmanError
from repro.jpeg import constants as C
from repro.jpeg.bitstream import BitReader, BitWriter
from repro.jpeg.huffman import (
    HuffmanDecoder,
    HuffmanEncoder,
    HuffmanSpec,
    encode_magnitude,
    extend,
    magnitude_category,
    spec_from_frequencies,
)

STD_SPECS = [
    HuffmanSpec(C.STD_DC_LUMINANCE_BITS, C.STD_DC_LUMINANCE_VALUES),
    HuffmanSpec(C.STD_DC_CHROMINANCE_BITS, C.STD_DC_CHROMINANCE_VALUES),
    HuffmanSpec(C.STD_AC_LUMINANCE_BITS, C.STD_AC_LUMINANCE_VALUES),
    HuffmanSpec(C.STD_AC_CHROMINANCE_BITS, C.STD_AC_CHROMINANCE_VALUES),
]


class TestHuffmanSpec:
    def test_bits_must_have_16_entries(self):
        with pytest.raises(HuffmanError):
            HuffmanSpec(bits=(1,), values=(0,))

    def test_bits_values_count_mismatch(self):
        bits = (2,) + (0,) * 15
        with pytest.raises(HuffmanError):
            HuffmanSpec(bits=bits, values=(1, 2, 3))

    def test_empty_table_rejected(self):
        with pytest.raises(HuffmanError):
            HuffmanSpec(bits=(0,) * 16, values=())

    def test_duplicate_symbols_rejected(self):
        bits = (2,) + (0,) * 15
        with pytest.raises(HuffmanError):
            HuffmanSpec(bits=bits, values=(7, 7))

    def test_overfull_code_rejected(self):
        # 3 codes of length 1 violate Kraft
        bits = (3,) + (0,) * 15
        with pytest.raises(HuffmanError):
            HuffmanSpec(bits=bits, values=(0, 1, 2))

    @pytest.mark.parametrize("spec", STD_SPECS)
    def test_standard_tables_are_valid(self, spec):
        assert sum(spec.bits) == len(spec.values)


class TestCanonicalCodes:
    def test_code_lengths_follow_bits(self):
        spec = STD_SPECS[0]
        enc = HuffmanEncoder(spec)
        lengths = sorted(enc.code_length(s) for s in enc.symbols)
        expected = sorted(
            length
            for length, count in enumerate(spec.bits, start=1)
            for _ in range(count)
        )
        assert lengths == expected

    def test_codes_are_prefix_free(self):
        for spec in STD_SPECS:
            enc = HuffmanEncoder(spec)
            codes = [enc.code_for(s) for s in enc.symbols]
            as_bits = [format(c, f"0{n}b") for c, n in codes]
            for i, a in enumerate(as_bits):
                for j, b in enumerate(as_bits):
                    if i != j:
                        assert not b.startswith(a)

    def test_unknown_symbol_raises(self):
        enc = HuffmanEncoder(STD_SPECS[0])
        with pytest.raises(HuffmanError):
            enc.code_for(0xEE)

    def test_dc_luminance_known_code(self):
        # Annex K: DC luma category 0 codes as 00 (2 bits)
        enc = HuffmanEncoder(STD_SPECS[0])
        assert enc.code_for(0) == (0b00, 2)


class TestDecode:
    @pytest.mark.parametrize("spec", STD_SPECS)
    def test_roundtrip_all_symbols(self, spec):
        enc = HuffmanEncoder(spec)
        dec = HuffmanDecoder(spec)
        w = BitWriter()
        symbols = list(enc.symbols) * 3
        for s in symbols:
            enc.encode(w, s)
        w.flush()
        r = BitReader(w.getvalue())
        assert [dec.decode(r) for _ in symbols] == symbols

    def test_long_codes_use_slow_path(self):
        spec = STD_SPECS[2]  # AC luminance has 16-bit codes
        enc = HuffmanEncoder(spec)
        long_syms = [s for s in enc.symbols if enc.code_length(s) > 8]
        assert long_syms, "AC luma table should have >8-bit codes"
        dec = HuffmanDecoder(spec)
        w = BitWriter()
        for s in long_syms:
            enc.encode(w, s)
        w.flush()
        r = BitReader(w.getvalue())
        assert [dec.decode(r) for _ in long_syms] == long_syms

    def test_garbage_raises(self):
        # a one-symbol table: only '0' is valid; all-ones input after it
        spec = HuffmanSpec(bits=(1,) + (0,) * 15, values=(5,))
        dec = HuffmanDecoder(spec)
        r = BitReader(b"\xff\x00\xff\x00\xff\x00")
        with pytest.raises(HuffmanError):
            dec.decode(r)


class TestSpecFromFrequencies:
    def test_rejects_empty(self):
        with pytest.raises(HuffmanError):
            spec_from_frequencies({})

    def test_rejects_nonpositive(self):
        with pytest.raises(HuffmanError):
            spec_from_frequencies({1: 0})

    def test_rejects_out_of_range_symbol(self):
        with pytest.raises(HuffmanError):
            spec_from_frequencies({300: 1})

    def test_single_symbol(self):
        spec = spec_from_frequencies({9: 100})
        assert spec.values == (9,)
        enc = HuffmanEncoder(spec)
        assert enc.code_length(9) >= 1

    def test_frequent_symbols_get_short_codes(self):
        freqs = {0: 1000, 1: 500, 2: 100, 3: 10, 4: 1}
        enc = HuffmanEncoder(spec_from_frequencies(freqs))
        assert enc.code_length(0) <= enc.code_length(4)

    @settings(max_examples=40, deadline=None)
    @given(st.dictionaries(
        st.integers(min_value=0, max_value=255),
        st.integers(min_value=1, max_value=10_000),
        min_size=1, max_size=80,
    ))
    def test_generated_specs_roundtrip(self, freqs):
        spec = spec_from_frequencies(freqs)
        assert set(spec.values) == set(freqs)
        assert max(
            (length for length, n in enumerate(spec.bits, 1) if n), default=0
        ) <= 16
        enc = HuffmanEncoder(spec)
        dec = HuffmanDecoder(spec)
        w = BitWriter()
        syms = sorted(freqs)
        for s in syms:
            enc.encode(w, s)
        w.flush()
        r = BitReader(w.getvalue())
        assert [dec.decode(r) for _ in syms] == syms


class TestMagnitude:
    @pytest.mark.parametrize("value,cat", [
        (0, 0), (1, 1), (-1, 1), (2, 2), (3, 2), (-3, 2), (4, 3),
        (255, 8), (-255, 8), (1023, 10), (-1024, 11), (2047, 11),
    ])
    def test_category(self, value, cat):
        assert magnitude_category(value) == cat

    @settings(max_examples=100, deadline=None)
    @given(st.integers(min_value=-2047, max_value=2047))
    def test_extend_inverts_encode(self, value):
        cat, bits, nbits = encode_magnitude(value)
        assert extend(bits, cat) == value
        assert nbits == cat == magnitude_category(value)

    def test_zero_has_no_bits(self):
        assert encode_magnitude(0) == (0, 0, 0)
