"""Execution modes: pixel identity, schedule semantics, pricing parity."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import JpegUnsupportedError
from repro.core import DecodeMode, HeterogeneousDecoder, PreparedImage
from repro.core.executors import ExecutionConfig, cpu_parallel_span
from repro.data import synthetic_photo, synthetic_skewed
from repro.jpeg import EncoderSettings, decode_jpeg, encode_jpeg
from repro.evaluation import platforms

ALL_MODES = tuple(DecodeMode)


@pytest.fixture(scope="module")
def prep422(jpeg_422):
    return PreparedImage.from_bytes(jpeg_422)


@pytest.fixture(scope="module")
def prep444(jpeg_444):
    return PreparedImage.from_bytes(jpeg_444)


class TestPixelIdentity:
    @pytest.mark.parametrize("mode", ALL_MODES)
    def test_all_modes_match_reference_422(self, gtx560_decoder, prep422,
                                           ref_rgb_422, mode):
        result = gtx560_decoder.decode(prep422, mode)
        assert np.array_equal(result.rgb, ref_rgb_422)

    @pytest.mark.parametrize("mode", ALL_MODES)
    def test_all_modes_match_reference_444(self, gtx560_decoder, prep444,
                                           ref_rgb_444, mode):
        result = gtx560_decoder.decode(prep444, mode)
        assert np.array_equal(result.rgb, ref_rgb_444)

    @pytest.mark.parametrize("mode", (DecodeMode.SPS, DecodeMode.PPS))
    def test_partitioned_modes_on_weak_gpu(self, gt430_decoder, prep422,
                                           ref_rgb_422, mode):
        result = gt430_decoder.decode(prep422, mode)
        assert np.array_equal(result.rgb, ref_rgb_422)

    def test_skewed_image_pps_pixels_correct(self, gtx680_decoder):
        rgb = synthetic_skewed(128, 160, seed=5)
        data = encode_jpeg(rgb, EncoderSettings(quality=85, subsampling="4:2:2"))
        ref = decode_jpeg(data).rgb
        res = gtx680_decoder.decode(data, DecodeMode.PPS)
        assert np.array_equal(res.rgb, ref)


class TestScheduleSemantics:
    def test_huffman_always_first_and_sequential(self, gtx560_decoder, prep422):
        res = gtx560_decoder.decode(prep422, DecodeMode.PPS)
        huff = sorted((s for s in res.timeline.spans if s.kind == "huffman"),
                      key=lambda s: s.start)
        assert huff[0].start == 0.0
        for a, b in zip(huff, huff[1:]):
            assert b.start >= a.end - 1e-9  # strictly sequential on the CPU

    def test_gpu_events_in_order(self, gtx560_decoder, prep422):
        res = gtx560_decoder.decode(prep422, DecodeMode.PIPELINE)
        gpu = [s for s in res.timeline.spans if s.resource == "gpu"]
        for a, b in zip(gpu, gpu[1:]):
            assert b.start >= a.end - 1e-9

    def test_pipeline_overlaps_huffman_with_gpu(self, gtx560_decoder, prep422):
        # force chunks smaller than the image so the pipeline has >1 stage
        from repro.core.executors import execute_pipeline
        cfg = ExecutionConfig(platform=platforms.GTX560,
                              model=gtx560_decoder.model_for("4:2:2"),
                              chunk_mcu_rows=2)
        res = execute_pipeline(cfg, prep422)
        gpu_spans = [s for s in res.timeline.spans if s.resource == "gpu"]
        huff_end = max(s.end for s in res.timeline.spans if s.kind == "huffman")
        assert min(s.start for s in gpu_spans) < huff_end

    def test_gpu_mode_starts_after_full_huffman(self, gtx560_decoder, prep422):
        res = gtx560_decoder.decode(prep422, DecodeMode.GPU)
        huff_end = max(s.end for s in res.timeline.spans if s.kind == "huffman")
        gpu_start = min(s.start for s in res.timeline.spans
                        if s.resource == "gpu")
        assert gpu_start >= huff_end

    def test_total_is_makespan(self, gtx560_decoder, prep422):
        for mode in ALL_MODES:
            res = gtx560_decoder.decode(prep422, mode)
            assert res.total_us == pytest.approx(res.timeline.makespan)

    def test_breakdown_sums_to_busy_time(self, gtx560_decoder, prep422):
        res = gtx560_decoder.decode(prep422, DecodeMode.SIMD)
        assert sum(res.breakdown.values()) == pytest.approx(
            sum(s.duration for s in res.timeline.spans))

    def test_partition_rows_cover_image(self, gt430_decoder, prep422):
        for mode in (DecodeMode.SPS, DecodeMode.PPS):
            res = gt430_decoder.decode(prep422, mode)
            assert res.partition is not None
            assert (res.partition.cpu_rows + res.partition.gpu_rows
                    == prep422.geometry.height)


class TestPricingParity:
    @pytest.mark.parametrize("mode", ALL_MODES)
    def test_virtual_replay_times_match(self, gtx560_decoder, prep422, mode):
        """as_virtual() replays produce identical simulated times with no
        pixel math — the benchmark harness depends on this."""
        real = gtx560_decoder.decode(prep422, mode)
        virt = gtx560_decoder.decode(prep422.as_virtual(), mode)
        assert virt.rgb is None
        assert virt.total_us == pytest.approx(real.total_us, rel=1e-9)

    def test_virtual_image_runs_all_modes(self, gtx560_decoder):
        prep = PreparedImage.virtual(512, 384, "4:2:2", 0.2)
        for mode in ALL_MODES:
            res = gtx560_decoder.decode(prep, mode)
            assert res.total_us > 0 and res.rgb is None


class TestPerformanceShapes:
    def test_simd_faster_than_sequential(self, gtx560_decoder, prep422):
        seq = gtx560_decoder.decode(prep422, DecodeMode.SEQUENTIAL)
        simd = gtx560_decoder.decode(prep422, DecodeMode.SIMD)
        assert 1.5 < seq.total_us / simd.total_us < 3.0

    def test_pps_at_least_as_fast_as_pipeline(self, gtx560_decoder, prep422):
        pps = gtx560_decoder.decode(prep422, DecodeMode.PPS)
        pipe = gtx560_decoder.decode(prep422, DecodeMode.PIPELINE)
        assert pps.total_us <= pipe.total_us * 1.02

    def test_pipeline_not_slower_than_gpu(self, gtx560_decoder, prep422):
        pipe = gtx560_decoder.decode(prep422, DecodeMode.PIPELINE)
        gpu = gtx560_decoder.decode(prep422, DecodeMode.GPU)
        assert pipe.total_us <= gpu.total_us * 1.02

    def test_heterogeneous_beats_simd_on_weak_gpu(self, gt430_decoder):
        """The paper's headline claim for GT 430: SPS/PPS still beat SIMD
        even though GPU-only mode loses to it (at representative sizes —
        tiny images drown in fixed PCIe/launch overhead, Figure 10)."""
        prep = PreparedImage.virtual(1600, 1200, "4:2:2", 0.20)
        simd = gt430_decoder.decode(prep, DecodeMode.SIMD)
        gpu = gt430_decoder.decode(prep, DecodeMode.GPU)
        pps = gt430_decoder.decode(prep, DecodeMode.PPS)
        assert gpu.total_us > simd.total_us          # GPU-only loses
        assert pps.total_us < simd.total_us          # PPS still wins

    def test_repartition_helps_on_skewed_images(self, gtx560_decoder):
        """A6: on back-loaded entropy, re-partitioning must not hurt."""
        rgb = synthetic_skewed(256, 256, seed=9, dense_fraction=0.5)
        data = encode_jpeg(rgb, EncoderSettings(quality=85,
                                                subsampling="4:2:2"))
        prep = PreparedImage.from_bytes(data).as_virtual()
        model = gtx560_decoder.model_for("4:2:2")
        from repro.core.executors import execute_pps
        on = execute_pps(ExecutionConfig(platform=platforms.GTX560,
                                         model=model, repartition=True), prep)
        off = execute_pps(ExecutionConfig(platform=platforms.GTX560,
                                          model=model, repartition=False), prep)
        assert on.total_us <= off.total_us * 1.05


class TestCpuParallelSpan:
    def test_partial_420_rejected(self):
        rgb = synthetic_photo(64, 64, seed=3)
        data = encode_jpeg(rgb, EncoderSettings(subsampling="4:2:0"))
        prep = PreparedImage.from_bytes(data)
        with pytest.raises(JpegUnsupportedError):
            cpu_parallel_span(prep.geometry, prep.coefficients, prep.quants,
                              0, 1)

    def test_whole_420_supported(self):
        rgb = synthetic_photo(64, 64, seed=3)
        data = encode_jpeg(rgb, EncoderSettings(subsampling="4:2:0"))
        prep = PreparedImage.from_bytes(data)
        ref = decode_jpeg(data).rgb
        out = cpu_parallel_span(prep.geometry, prep.coefficients, prep.quants,
                                0, prep.geometry.mcu_rows)
        assert np.array_equal(out, ref)

    def test_spans_stitch_to_whole(self, prep422, ref_rgb_422):
        geo = prep422.geometry
        mid = geo.mcu_rows // 2
        top = cpu_parallel_span(geo, prep422.coefficients, prep422.quants,
                                0, mid)
        bottom = cpu_parallel_span(geo, prep422.coefficients, prep422.quants,
                                   mid, geo.mcu_rows)
        assert np.array_equal(np.vstack([top, bottom]), ref_rgb_422)
