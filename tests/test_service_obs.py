"""Observability layer (PR 10): trace contexts and span records,
the worker span ring, the deterministic sampler, Prometheus rendering
(validated by ``tools/check_prom_format.py``), end-to-end traced
decodes through a session, trace propagation under injected faults
(retry attempts, breaker-excluded lanes), the JSON-lines trace log,
the ``repro trace`` / ``repro timeline`` CLI, and ``GET /metrics`` /
``X-Trace`` over a live HTTP server."""

from __future__ import annotations

import json
import sys
import threading
import urllib.request
from pathlib import Path

import pytest

from repro.jpeg import EncoderSettings, encode_jpeg
from repro.service import (
    BatchDecoder,
    DecodeHTTPServer,
    DecodeSession,
    FaultPlan,
    ImageRequest,
    LaneBreakerBoard,
    ModelScheduler,
    ObsHub,
    SpanRecord,
    SpanRing,
    TraceContext,
    format_trace,
    read_trace_log,
    render_prometheus,
    spans_to_timeline,
)
from repro.errors import ServiceError
from repro.service.obs import (
    Histogram,
    child_span,
    make_span,
    map_remote_spans,
    trace_overhead_budget,
)

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "tools"))

import check_prom_format  # noqa: E402


@pytest.fixture(scope="module")
def blob(small_rgb):
    return encode_jpeg(small_rgb, EncoderSettings(
        quality=85, subsampling="4:2:2"))


def _span(ctx, name="work", start=1.0, end=2.0, **attrs):
    return child_span(ctx, name, "res", "cpu-parallel", start, end, **attrs)


# ---------------------------------------------------------------------------
# TraceContext / SpanRecord primitives.
# ---------------------------------------------------------------------------


class TestTraceContext:
    def test_new_roots_are_unique(self):
        a, b = TraceContext.new_root(), TraceContext.new_root()
        assert a.trace_id != b.trace_id
        assert a.span_id != b.span_id
        assert a.parent_id is None

    def test_child_keeps_trace_and_parents_on_span(self):
        root = TraceContext.new_root()
        kid = root.child()
        assert kid.trace_id == root.trace_id
        assert kid.parent_id == root.span_id
        assert kid.span_id != root.span_id

    def test_wire_roundtrip(self):
        ctx = TraceContext.new_root().child()
        back = TraceContext.from_dict(ctx.to_dict())
        assert back == ctx
        assert json.loads(json.dumps(ctx.to_dict())) == ctx.to_dict()

    def test_make_span_uses_own_identity_child_span_forks(self):
        ctx = TraceContext.new_root()
        own = make_span(ctx, "attempt", "lane", "cpu-parallel", 0.0, 1.0)
        assert own.span_id == ctx.span_id
        assert own.parent_id == ctx.parent_id
        kid = child_span(ctx, "stage", "lane", "kernel", 0.0, 1.0)
        assert kid.parent_id == ctx.span_id
        assert kid.span_id != ctx.span_id


class TestSpanRecord:
    def test_roundtrip_preserves_attrs(self):
        ctx = TraceContext.new_root()
        span = _span(ctx, attempt=2, outcome="ok")
        back = SpanRecord.from_dict(json.loads(json.dumps(span.to_dict())))
        assert back == span
        assert back.attrs == {"attempt": 2, "outcome": "ok"}
        assert back.duration_s == pytest.approx(1.0)


class TestSpanRing:
    def test_drop_oldest_at_capacity(self):
        ring = SpanRing(capacity=3)
        ctx = TraceContext.new_root()
        for i in range(5):
            ring.record(_span(ctx, name=f"s{i}"))
        assert len(ring) == 3
        assert ring.dropped == 2
        names = [s.name for s in ring.drain()]
        assert names == ["s2", "s3", "s4"]
        assert len(ring) == 0

    def test_drain_trace_filters_other_traces(self):
        ring = SpanRing(capacity=16)
        mine, other = TraceContext.new_root(), TraceContext.new_root()
        ring.record(_span(mine, name="keep"))
        ring.record(_span(other, name="skip"))
        got = ring.drain_trace(mine.trace_id)
        assert [s.name for s in got] == ["keep"]
        # The other trace's span is still in the ring.
        assert [s.name for s in ring.drain()] == ["skip"]


class TestHistogram:
    def test_buckets_are_cumulative_with_inf(self):
        hist = Histogram(buckets=(0.01, 0.1, 1.0))
        for value in (0.005, 0.05, 0.5, 5.0):
            hist.observe(value)
        snap = hist.snapshot()
        counts = [count for _, count in snap["buckets"]]
        assert counts == [1, 2, 3, 4]
        assert snap["buckets"][-1][0] == "+Inf"
        assert snap["count"] == 4
        assert snap["sum"] == pytest.approx(5.555)


# ---------------------------------------------------------------------------
# ObsHub: mode gate, deterministic sampler, counters.
# ---------------------------------------------------------------------------


class TestObsHub:
    def test_off_never_starts(self):
        hub = ObsHub(mode="off")
        assert all(hub.maybe_start_trace() is None for _ in range(20))
        assert hub.counters()["traces_started"] == 0

    def test_on_always_starts(self):
        hub = ObsHub(mode="on")
        assert all(hub.maybe_start_trace() is not None for _ in range(5))
        assert hub.counters()["traces_started"] == 5

    def test_sampler_is_deterministic_1_in_n(self):
        hub = ObsHub(mode="sample", sample_rate=0.25)
        hits = [hub.maybe_start_trace() is not None for _ in range(12)]
        assert hits == [i % 4 == 0 for i in range(12)]
        assert hub.counters()["traces_started"] == 3

    def test_bad_inputs_raise(self):
        with pytest.raises(ServiceError):
            ObsHub(mode="loud")
        with pytest.raises(ServiceError):
            ObsHub(mode="sample", sample_rate=0.0)

    def test_overhead_budget_env_floor(self, monkeypatch):
        monkeypatch.delenv("TRACE_OVERHEAD_MAX_RATIO", raising=False)
        assert trace_overhead_budget() == pytest.approx(0.03)
        monkeypatch.setenv("TRACE_OVERHEAD_MAX_RATIO", "0.5")
        assert trace_overhead_budget() == pytest.approx(0.5)


class TestMapRemoteSpans:
    def test_offset_clamps_into_client_window(self):
        ctx = TraceContext.new_root()
        # Host clock runs 100 s ahead of the client's.
        host = [_span(ctx, name="decode", start=1100.0, end=1100.5)]
        mapped = map_remote_spans(host, "h:1", t0=1.0, t1=2.0,
                                  host_recv=1100.0, host_send=1100.6)
        (span,) = mapped
        assert span.resource == "h:1/res"
        assert 1.0 - 1e-6 <= span.start <= span.end <= 2.0 + 1e-6
        assert span.duration_s == pytest.approx(0.5, abs=1e-6)


# ---------------------------------------------------------------------------
# Prometheus rendering, validated by the in-repo parser.
# ---------------------------------------------------------------------------


class TestPrometheus:
    def test_live_session_render_is_valid_exposition(self, blob):
        session = DecodeSession(backend="serial", scheduler="model",
                                tracing="on", pump=False)
        try:
            handles = [session.submit(blob) for _ in range(3)]
            session.run_once()
            for handle in handles:
                assert handle.result(timeout=60).ok
            text = render_prometheus(session.stats_snapshot(), session.obs)
        finally:
            session.close(drain=False)
        violations = check_prom_format.validate(text)
        assert violations == []
        samples, _ = check_prom_format.parse_samples(text)
        names = {s.name for s in samples}
        assert "repro_images_total" in names
        assert "repro_queue_depth" in names
        assert "repro_decode_latency_seconds_bucket" in names
        assert "repro_traces_started_total" in names
        by_key = {(s.name, tuple(sorted(s.labels.items()))): s.value
                  for s in samples}
        assert by_key[("repro_images_total",
                       (("outcome", "ok"),))] == 3

    def test_checker_rejects_bad_documents(self):
        assert check_prom_format.validate(
            "# TYPE a counter\na 1\n")  # counter w/o _total
        assert check_prom_format.validate(
            "# TYPE h histogram\nh_bucket{le=\"1\"} 1\n")  # no +Inf
        assert check_prom_format.validate(
            "x 1\ny 2\nx 3\n")  # family reopened
        assert check_prom_format.validate("foo{bar=baz} 1\n")


# ---------------------------------------------------------------------------
# End-to-end traced decode through a session.
# ---------------------------------------------------------------------------


def _trace_of(result):
    spans = result.trace_spans
    assert spans, "traced result carries no spans"
    trace_ids = {s.trace_id for s in spans}
    assert len(trace_ids) == 1
    return spans


class TestEndToEndTrace:
    def test_reference_decode_emits_stage_hierarchy(self, blob):
        session = DecodeSession(backend="serial", tracing="on", pump=False)
        try:
            handle = session.submit(ImageRequest(data=blob,
                                                 mode="reference"))
            session.run_once()
            result = handle.result(timeout=60)
        finally:
            session.close(drain=False)
        assert result.ok
        spans = _trace_of(result)
        names = {s.name for s in spans}
        assert {"request", "queue", "attempt", "parse", "entropy",
                "idct", "upsample", "color"} <= names
        by_name = {s.name: s for s in spans}
        root = by_name["request"]
        assert root.parent_id is None
        # Every non-root span parents onto a span in the same trace.
        ids = {s.span_id for s in spans}
        for span in spans:
            assert span.end >= span.start
            if span is not root:
                assert span.parent_id in ids
        # Queue wait precedes the attempt; nothing outruns the root.
        assert by_name["queue"].start <= by_name["attempt"].start + 1e-9
        for span in spans:
            assert span.start >= root.start - 1e-6
            assert span.end <= root.end + 1e-6

    def test_trace_lands_in_store_and_renders(self, blob):
        session = DecodeSession(backend="serial", tracing="on", pump=False)
        try:
            handle = session.submit(blob)
            session.run_once()
            result = handle.result(timeout=60)
            trace_id = result.trace_spans[0].trace_id
            stored = session.obs.store.get(trace_id)
        finally:
            session.close(drain=False)
        assert stored
        text = format_trace(trace_id, stored)
        assert trace_id in text
        assert "request" in text and "attempt" in text
        timeline = spans_to_timeline(stored)
        assert timeline.render()

    def test_untraced_requests_carry_no_spans(self, blob):
        session = DecodeSession(backend="serial", tracing="off", pump=False)
        try:
            handle = session.submit(blob)
            session.run_once()
            result = handle.result(timeout=60)
        finally:
            session.close(drain=False)
        assert result.ok
        assert result.trace_spans == []


# ---------------------------------------------------------------------------
# Satellite 3: trace propagation under faults.
# ---------------------------------------------------------------------------


class TestTraceUnderFaults:
    def test_killed_dispatch_yields_sibling_attempt_spans(self, blob):
        """A FaultPlan kill on attempt 1 must surface as two ``attempt``
        child spans of the same request trace, attempt=1 crashed and
        attempt=2 ok."""
        plan = FaultPlan(kill_at={0})
        ctx = TraceContext.new_root()
        with BatchDecoder(workers=2, backend="thread",
                          retry_backoff_s=0.0, faults=plan,
                          speculative="off") as dec:
            batch = dec.decode_batch(
                [ImageRequest(data=blob, trace=ctx)])
        (result,) = batch.results
        assert result.ok and result.attempts == 2
        attempts = sorted(
            (s for s in result.trace_spans if s.name == "attempt"),
            key=lambda s: s.attrs["attempt"])
        assert [s.attrs["attempt"] for s in attempts] == [1, 2]
        assert [s.attrs["outcome"] for s in attempts] == ["crashed", "ok"]
        # Siblings: both parent directly on the request context.
        assert {s.parent_id for s in attempts} == {ctx.span_id}
        assert attempts[0].trace_id == attempts[1].trace_id == ctx.trace_id
        assert attempts[1].start >= attempts[0].start

    def test_breaker_open_lane_emits_lane_excluded_event(self, blob):
        """An open circuit breaker excludes its lane from the plan and
        the traced batch records a zero-length ``lane_excluded`` event
        naming it."""
        board = LaneBreakerBoard(threshold=1, cooldown_s=60.0)
        sched = ModelScheduler(policy="model", breakers=board)
        victim = sched.executors[0].name
        board.record(victim, ok=False)
        assert board.state(victim) == "open"
        ctx = TraceContext.new_root()
        with BatchDecoder(backend="serial", scheduler=sched) as dec:
            batch = dec.decode_batch([ImageRequest(data=blob, trace=ctx)])
        (result,) = batch.results
        assert result.ok
        excluded = [s for s in result.trace_spans
                    if s.name == "lane_excluded"]
        assert excluded, [s.name for s in result.trace_spans]
        (event,) = excluded
        assert event.resource == victim
        assert event.attrs["reason"] == "breaker_open"
        assert event.duration_s == 0.0
        # And no attempt ran on the excluded lane.
        lanes = [s.resource for s in result.trace_spans
                 if s.name == "attempt"]
        assert victim not in lanes


# ---------------------------------------------------------------------------
# Trace log file + CLI reconstruction.
# ---------------------------------------------------------------------------


class TestTraceLogAndCLI:
    def _decode_with_log(self, blob, path, n=2):
        session = DecodeSession(backend="serial", tracing="on",
                                trace_log=str(path), pump=False)
        try:
            handles = [session.submit(blob) for _ in range(n)]
            session.run_once()
            return [h.result(timeout=60) for h in handles]
        finally:
            session.close(drain=False)

    def test_log_is_one_json_object_per_span(self, blob, tmp_path):
        path = tmp_path / "traces.jsonl"
        results = self._decode_with_log(blob, path)
        lines = path.read_text().splitlines()
        assert lines
        for line in lines:
            payload = json.loads(line)
            assert {"trace_id", "span_id", "name", "start",
                    "end"} <= payload.keys()
        total = sum(len(r.trace_spans) for r in results)
        assert len(lines) == total

    def test_read_trace_log_groups_by_trace(self, blob, tmp_path):
        path = tmp_path / "traces.jsonl"
        results = self._decode_with_log(blob, path)
        traces = read_trace_log(path)
        assert len(traces) == len(results)
        for result in results:
            trace_id = result.trace_spans[0].trace_id
            assert trace_id in traces

    def test_cli_trace_and_timeline(self, blob, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "traces.jsonl"
        results = self._decode_with_log(blob, path)
        trace_id = results[0].trace_spans[0].trace_id
        assert main(["trace", trace_id, "--trace-log", str(path)]) == 0
        out = capsys.readouterr().out
        assert trace_id in out and "attempt" in out
        # Unique-prefix match resolves too.
        assert main(["trace", trace_id[:8],
                     "--trace-log", str(path)]) == 0
        capsys.readouterr()
        assert main(["timeline", "--last", "2",
                     "--trace-log", str(path)]) == 0
        out = capsys.readouterr().out
        for result in results:
            assert result.trace_spans[0].trace_id in out

    def test_cli_trace_unknown_id_fails(self, blob, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "traces.jsonl"
        self._decode_with_log(blob, path, n=1)
        assert main(["trace", "ffffffffffffffff",
                     "--trace-log", str(path)]) == 2
        assert main(["trace", "deadbeef",
                     "--trace-log", str(tmp_path / "absent.jsonl")]) == 2


# ---------------------------------------------------------------------------
# /metrics and X-Trace over a live HTTP server.
# ---------------------------------------------------------------------------


class TestHTTPObservability:
    @pytest.fixture()
    def server(self):
        srv = DecodeHTTPServer(port=0, backend="thread", workers=2,
                               max_batch=4, max_delay_ms=1.0,
                               tracing="off")
        thread = threading.Thread(target=srv.serve_forever, daemon=True)
        thread.start()
        yield srv
        srv.shutdown()
        thread.join(timeout=30)
        srv.close()

    def test_metrics_endpoint_is_valid_prometheus(self, server, blob):
        req = urllib.request.Request(server.url + "/decode", data=blob,
                                     method="POST")
        with urllib.request.urlopen(req, timeout=60) as resp:
            assert resp.status == 200
        with urllib.request.urlopen(server.url + "/metrics",
                                    timeout=30) as resp:
            assert resp.status == 200
            ctype = resp.headers["Content-Type"]
            body = resp.read().decode()
        assert ctype.startswith("text/plain")
        assert "version=0.0.4" in ctype
        assert check_prom_format.validate(body) == []
        samples, _ = check_prom_format.parse_samples(body)
        by_key = {(s.name, tuple(sorted(s.labels.items()))): s.value
                  for s in samples}
        assert by_key[("repro_images_total",
                       (("outcome", "ok"),))] >= 1

    def test_x_trace_header_forces_a_trace(self, server, blob):
        req = urllib.request.Request(
            server.url + "/decode", data=blob, method="POST",
            headers={"X-Trace": "1"})
        with urllib.request.urlopen(req, timeout=60) as resp:
            assert resp.status == 200
            trace_id = resp.headers["X-Trace-Id"]
        assert trace_id
        spans = server.session.obs.store.get(trace_id)
        assert {"request", "queue", "attempt"} <= {s.name for s in spans}

    def test_untraced_decode_has_no_trace_header(self, server, blob):
        req = urllib.request.Request(server.url + "/decode", data=blob,
                                     method="POST")
        with urllib.request.urlopen(req, timeout=60) as resp:
            assert resp.status == 200
            assert resp.headers.get("X-Trace-Id") is None
