"""Newton solver and the SPS/PPS partitioning equations."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import PartitionError
from repro.core import profile_platform
from repro.core.newton import newton_solve, round_rows_to_mcu
from repro.core.partition import (
    corrected_density,
    partition_pps,
    partition_sps,
    repartition_pps,
)
from repro.evaluation import platforms


@pytest.fixture(scope="module")
def model560():
    from repro.core.decoder import HeterogeneousDecoder
    return HeterogeneousDecoder.for_platform(platforms.GTX560).model_for("4:2:2")


@pytest.fixture(scope="module")
def model430():
    from repro.core.decoder import HeterogeneousDecoder
    return HeterogeneousDecoder.for_platform(platforms.GT430).model_for("4:2:2")


class TestNewton:
    def test_linear_root(self):
        res = newton_solve(lambda x: 2 * x - 10, 0, 100)
        assert res.converged
        assert res.x == pytest.approx(5.0, abs=1e-3)

    def test_quadratic_root(self):
        res = newton_solve(lambda x: x * x - 49, 0, 100)
        assert res.x == pytest.approx(7.0, abs=1e-2)

    def test_root_at_endpoint(self):
        res = newton_solve(lambda x: x, 0, 10)
        assert res.x == 0.0 and res.converged

    def test_no_sign_change_clamps_to_cheaper_end(self):
        # f always positive, smaller near lo -> pick lo
        res = newton_solve(lambda x: x + 1, 0, 10)
        assert res.x == 0.0 and not res.converged

    def test_no_sign_change_other_side(self):
        res = newton_solve(lambda x: -x - 1, 0, 10)
        assert res.x == 0.0 and not res.converged

    def test_empty_interval_rejected(self):
        with pytest.raises(PartitionError):
            newton_solve(lambda x: x, 5, 5)

    def test_nonmonotone_falls_back_to_bisection(self):
        # derivative vanishes at the initial midpoint; must still converge
        f = lambda x: (x - 5.0) ** 3
        res = newton_solve(f, 0, 10, x0=5.0 + 1e-9)
        assert res.x == pytest.approx(5.0, abs=0.05)

    @settings(max_examples=40, deadline=None)
    @given(st.floats(min_value=0.5, max_value=99.5))
    def test_finds_planted_root(self, root):
        res = newton_solve(lambda x: np.tanh(x - root), 0, 100)
        assert res.x == pytest.approx(root, abs=0.01)


class TestMcuRounding:
    def test_rounds_to_nearest(self):
        assert round_rows_to_mcu(11.0, 8, 64) == 8
        assert round_rows_to_mcu(13.0, 8, 64) == 16

    def test_clamps(self):
        assert round_rows_to_mcu(-5.0, 8, 64) == 0
        assert round_rows_to_mcu(1000.0, 8, 64) == 64

    def test_invalid_mcu(self):
        with pytest.raises(PartitionError):
            round_rows_to_mcu(1.0, 0, 64)

    @settings(max_examples=50, deadline=None)
    @given(st.floats(min_value=-10, max_value=300),
           st.sampled_from([8, 16]),
           st.integers(min_value=16, max_value=256))
    def test_always_aligned_and_bounded(self, x, mcu, total):
        total = (total // mcu) * mcu
        if total == 0:
            total = mcu
        out = round_rows_to_mcu(x, mcu, total)
        assert 0 <= out <= total
        assert out % mcu == 0 or out == total


class TestSps:
    def test_rows_partition_the_image(self, model560):
        dec = partition_sps(model560, 1024, 768, 8)
        assert dec.cpu_rows + dec.gpu_rows == 768
        assert dec.cpu_rows % 8 == 0 or dec.cpu_rows == 768
        assert dec.cpu_rows >= 0 and dec.gpu_rows >= 0

    def test_balanced_prediction(self, model560):
        """At the solved split, predicted CPU and GPU times are close."""
        dec = partition_sps(model560, 2048, 2048, 8)
        if 0 < dec.cpu_rows < 2048:  # interior root -> balance holds
            assert dec.predicted_cpu_us == pytest.approx(
                dec.predicted_gpu_us, rel=0.15)

    def test_weak_gpu_gets_less(self, model560, model430):
        strong = partition_sps(model560, 1024, 1024, 8)
        weak = partition_sps(model430, 1024, 1024, 8)
        assert weak.cpu_rows > strong.cpu_rows

    def test_image_too_short_rejected(self, model560):
        with pytest.raises(PartitionError):
            partition_sps(model560, 64, 4, 8)


class TestPps:
    def test_rows_partition_the_image(self, model560):
        dec = partition_pps(model560, 1024, 768, 0.15, 64, 8)
        assert dec.cpu_rows + dec.gpu_rows == 768

    def test_pps_gives_gpu_more_than_sps(self, model430):
        """The Huffman term in Eq 15 shifts work toward the GPU relative
        to Eq 10 (the GPU's time is partially hidden)."""
        sps = partition_sps(model430, 1024, 1024, 8)
        pps = partition_pps(model430, 1024, 1024, 0.2, 64, 8)
        assert pps.gpu_rows >= sps.gpu_rows

    def test_denser_images_shift_to_gpu(self, model430):
        sparse = partition_pps(model430, 1024, 1024, 0.05, 64, 8)
        dense = partition_pps(model430, 1024, 1024, 0.45, 64, 8)
        assert dense.gpu_rows >= sparse.gpu_rows


class TestCorrectedDensity:
    def test_uniform_progress_keeps_density(self):
        # consumed half the predicted time, half the image remains
        d = corrected_density(100.0, 50.0, 500, 1000, 0.2)
        assert d == pytest.approx(0.2)

    def test_backloaded_detail_raises_density(self):
        # consumed only 30% of predicted time but 50% of the image
        d = corrected_density(100.0, 30.0, 500, 1000, 0.2)
        assert d > 0.2

    def test_frontloaded_detail_lowers_density(self):
        d = corrected_density(100.0, 80.0, 500, 1000, 0.2)
        assert d < 0.2

    def test_overconsumed_clamps_to_zero(self):
        d = corrected_density(100.0, 150.0, 500, 1000, 0.2)
        assert d == 0.0

    def test_degenerate_rejected(self):
        with pytest.raises(PartitionError):
            corrected_density(0.0, 0.0, 10, 100, 0.2)


class TestRepartition:
    def test_backlog_shifts_work_to_cpu(self, model560):
        free = repartition_pps(model560, 1024, 512, 0.2, 0.0, 8)
        busy = repartition_pps(model560, 1024, 512, 0.2, 50_000.0, 8)
        assert busy.cpu_rows >= free.cpu_rows

    def test_rows_cover_remaining(self, model560):
        dec = repartition_pps(model560, 1024, 512, 0.2, 100.0, 8)
        assert dec.cpu_rows + dec.gpu_rows == 512

    def test_empty_remainder_rejected(self, model560):
        with pytest.raises(PartitionError):
            repartition_pps(model560, 1024, 0, 0.2, 0.0, 8)
