"""Simulated-GPU substrate: devices, NDRange/occupancy, cost model, queue."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import DeviceError, GpuSimError, KernelError, QueueError
from repro.gpusim import (
    DISPATCH_OVERHEAD_US,
    GT430,
    GTX560TI,
    GTX680,
    INTEL_I7_2600K,
    CommandQueue,
    CPUDeviceSpec,
    DeviceBuffer,
    GPUDeviceSpec,
    KernelLaunch,
    MemoryTraffic,
    NDRange,
    SimKernel,
    kernel_time_us,
    occupancy,
)


class TestDeviceSpecs:
    def test_table1_presets(self):
        assert GT430.cores == 96 and GT430.core_clock_mhz == 700
        assert GTX560TI.cores == 384 and GTX560TI.core_clock_mhz == 822
        assert GTX680.cores == 1536 and GTX680.core_clock_mhz == 1006
        assert GT430.compute_capability == (2, 1)
        assert GTX680.compute_capability == (3, 0)
        assert GTX680.memory_mb == 2048

    def test_validation(self):
        with pytest.raises(DeviceError):
            GPUDeviceSpec(name="x", cores=0, core_clock_mhz=1, sm_count=1,
                          memory_mb=1, compute_capability=(2, 0),
                          mem_bandwidth_gbps=1, pcie_bandwidth_gbps=1)
        with pytest.raises(DeviceError):
            GPUDeviceSpec(name="x", cores=10, core_clock_mhz=1, sm_count=3,
                          memory_mb=1, compute_capability=(2, 0),
                          mem_bandwidth_gbps=1, pcie_bandwidth_gbps=1)
        with pytest.raises(DeviceError):
            CPUDeviceSpec(name="x", cores=0, clock_ghz=3.0)

    def test_transfer_time_scales_with_bytes(self):
        t1 = GTX560TI.transfer_time_us(1 << 20)
        t2 = GTX560TI.transfer_time_us(2 << 20)
        assert t2 > t1
        assert t1 > GTX560TI.pcie_latency_us

    def test_pinned_faster_than_pageable(self):
        n = 8 << 20
        assert (GTX560TI.transfer_time_us(n, pinned=True)
                < GTX560TI.transfer_time_us(n, pinned=False))

    def test_negative_transfer_rejected(self):
        with pytest.raises(DeviceError):
            GTX560TI.transfer_time_us(-1)

    def test_effective_throughputs(self):
        assert GTX560TI.effective_gflops < GTX560TI.peak_gflops
        assert GTX560TI.effective_bandwidth_gbps < GTX560TI.mem_bandwidth_gbps


class TestNDRange:
    def test_group_math(self):
        nd = NDRange(global_size=1024, local_size=128)
        assert nd.num_groups == 8
        assert nd.warps_per_group(32) == 4
        assert nd.total_warps(32) == 32

    def test_indivisible_rejected(self):
        with pytest.raises(KernelError):
            NDRange(global_size=100, local_size=32)

    def test_nonpositive_rejected(self):
        with pytest.raises(KernelError):
            NDRange(global_size=0, local_size=1)

    def test_occupancy_full_machine(self):
        nd = NDRange(global_size=1 << 20, local_size=128)
        occ = occupancy(nd, GTX560TI, registers_per_item=16,
                        local_bytes_per_group=4096)
        assert 0.5 < occ <= 1.0

    def test_occupancy_tail_limited(self):
        nd = NDRange(global_size=128, local_size=128)  # one group
        occ = occupancy(nd, GTX560TI, registers_per_item=16,
                        local_bytes_per_group=0)
        assert occ < 0.2

    def test_occupancy_register_pressure(self):
        nd = NDRange(global_size=1 << 20, local_size=128)
        hi = occupancy(nd, GTX560TI, registers_per_item=16,
                       local_bytes_per_group=0)
        lo = occupancy(nd, GTX560TI, registers_per_item=63,
                       local_bytes_per_group=0)
        assert lo < hi

    def test_occupancy_local_memory_pressure(self):
        nd = NDRange(global_size=1 << 20, local_size=128)
        hi = occupancy(nd, GTX560TI, 16, local_bytes_per_group=1024)
        lo = occupancy(nd, GTX560TI, 16, local_bytes_per_group=24 * 1024)
        assert lo < hi

    def test_workgroup_too_large(self):
        nd = NDRange(global_size=2048, local_size=2048)
        with pytest.raises(KernelError):
            occupancy(nd, GTX560TI, 16, 0)

    def test_resource_exhaustion_raises(self):
        nd = NDRange(global_size=1024, local_size=1024)
        with pytest.raises(KernelError):
            occupancy(nd, GTX560TI, 16, local_bytes_per_group=200 * 1024)


def make_launch(items=1 << 16, flops=100.0, read=1 << 20, write=1 << 20,
                regs=16, div=1.0, coalesced=True, local=128):
    return KernelLaunch(
        ndrange=NDRange(global_size=items, local_size=128),
        flops_per_item=flops,
        traffic=MemoryTraffic(global_read_bytes=read, global_write_bytes=write,
                              local_bytes_per_group=local, coalesced=coalesced),
        registers_per_item=regs,
        divergence_factor=div,
    )


class TestCostModel:
    def test_more_flops_more_time(self):
        assert (kernel_time_us(make_launch(flops=1000), GTX560TI)
                > kernel_time_us(make_launch(flops=10), GTX560TI))

    def test_more_traffic_more_time(self):
        assert (kernel_time_us(make_launch(flops=1, read=64 << 20), GTX560TI)
                > kernel_time_us(make_launch(flops=1, read=1 << 20), GTX560TI))

    def test_divergence_slows_compute(self):
        assert (kernel_time_us(make_launch(flops=500, div=2.0), GTX560TI)
                > kernel_time_us(make_launch(flops=500, div=1.0), GTX560TI))

    def test_uncoalesced_slower(self):
        fast = kernel_time_us(make_launch(flops=1, read=32 << 20), GTX560TI)
        slow = kernel_time_us(make_launch(flops=1, read=32 << 20,
                                          coalesced=False), GTX560TI)
        assert slow > 2 * fast

    def test_launch_overhead_floor(self):
        t = kernel_time_us(make_launch(items=128, flops=0.001, read=1, write=1),
                           GTX560TI)
        assert t >= GTX560TI.kernel_launch_us

    def test_faster_device_is_faster(self):
        launch = make_launch(flops=2000)
        assert (kernel_time_us(launch, GTX680)
                < kernel_time_us(launch, GT430))

    def test_invalid_launch_params(self):
        with pytest.raises(KernelError):
            make_launch(flops=-1)
        with pytest.raises(KernelError):
            make_launch(div=0.5)

    @settings(max_examples=25, deadline=None)
    @given(st.floats(min_value=1, max_value=1e4),
           st.integers(min_value=1, max_value=1 << 24))
    def test_time_positive_and_finite(self, flops, nbytes):
        t = kernel_time_us(make_launch(flops=flops, read=nbytes), GTX560TI)
        assert np.isfinite(t) and t > 0


class _NoopKernel(SimKernel):
    name = "noop"

    def describe_launch(self, **args):
        return make_launch(items=args.get("items", 1024))

    def execute(self, **args):
        return args.get("items", 1024)


class TestCommandQueue:
    def test_in_order_execution(self):
        q = CommandQueue(GTX560TI)
        _, e1 = q.enqueue_write("w1", 1 << 20, 0.0)
        _, e2 = q.enqueue_write("w2", 1 << 20, 0.0)
        assert e2.start >= e1.end

    def test_async_host_advances_only_dispatch(self):
        q = CommandQueue(GTX560TI)
        host, ev = q.enqueue_write("w", 64 << 20, 10.0)
        assert host == 10.0 + DISPATCH_OVERHEAD_US
        assert ev.end > host  # device still busy after host returns

    def test_device_waits_for_host(self):
        q = CommandQueue(GTX560TI)
        _, e1 = q.enqueue_write("w1", 1024, 0.0)
        _, e2 = q.enqueue_write("w2", 1024, 1e6)  # enqueued much later
        assert e2.start >= 1e6

    def test_kernel_executes_math(self):
        q = CommandQueue(GTX560TI)
        host, ev, result = q.enqueue_kernel(_NoopKernel(), 0.0, items=2048)
        assert result == 2048
        assert ev.kind == "kernel"

    def test_kernel_execute_false_skips_math(self):
        q = CommandQueue(GTX560TI)
        _, _, result = q.enqueue_kernel(_NoopKernel(), 0.0, execute=False,
                                        items=2048)
        assert result is None

    def test_finish_joins_timelines(self):
        q = CommandQueue(GTX560TI)
        host, ev = q.enqueue_write("w", 32 << 20, 0.0)
        assert q.finish(host) == ev.end
        assert q.finish(ev.end + 5) == ev.end + 5

    def test_busy_accounting(self):
        q = CommandQueue(GTX560TI)
        q.enqueue_write("a", 1 << 20, 0.0)
        q.enqueue_read("b", 1 << 20, 0.0)
        assert q.total_busy_us() == pytest.approx(
            sum(e.duration for e in q.events))
        assert q.busy_between(0, 1e9) == pytest.approx(q.total_busy_us())
        assert q.busy_between(-10, 0) == 0.0

    def test_event_timestamps_ordered(self):
        q = CommandQueue(GTX560TI)
        host, ev, _ = q.enqueue_kernel(_NoopKernel(), 3.0)
        assert ev.queued_at <= ev.start <= ev.end
        assert ev.duration > 0


class TestDeviceBuffer:
    def test_write_read_roundtrip(self):
        buf = DeviceBuffer("x")
        data = np.arange(10)
        buf.write(data)
        out = buf.read()
        assert (out == data).all()
        data[0] = 99  # original mutation must not leak into the device copy
        assert buf.read()[0] == 0

    def test_read_unwritten_raises(self):
        with pytest.raises(GpuSimError):
            DeviceBuffer("y").read()

    def test_nbytes_tracks_array(self):
        buf = DeviceBuffer("z", array=np.zeros(16, dtype=np.float64))
        assert buf.nbytes == 128
