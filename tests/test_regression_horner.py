"""Polynomial regression + AIC selection + Horner-form evaluation."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ModelError
from repro.core.horner import (
    HornerPolynomial,
    OpCount,
    horner_mult_count,
    naive_evaluate,
    naive_mult_count,
)
from repro.core.regression import (
    PolynomialModel,
    aic_score,
    design_matrix,
    fit_best_polynomial,
    fit_polynomial,
    monomial_exponents,
)


class TestMonomials:
    def test_counts(self):
        # degree-d polynomial in k vars has C(k+d, d) terms
        assert len(monomial_exponents(1, 3)) == 4
        assert len(monomial_exponents(2, 2)) == 6
        assert len(monomial_exponents(3, 2)) == 10

    def test_constant_first(self):
        assert monomial_exponents(2, 2)[0] == (0, 0)

    def test_invalid_args(self):
        with pytest.raises(ModelError):
            monomial_exponents(0, 2)
        with pytest.raises(ModelError):
            monomial_exponents(2, -1)

    def test_design_matrix_values(self):
        exps = [(0, 0), (1, 0), (0, 1), (1, 1)]
        x = np.array([[2.0, 3.0]])
        a = design_matrix(x, exps)
        assert a.tolist() == [[1.0, 2.0, 3.0, 6.0]]


class TestFitting:
    def test_recovers_exact_polynomial(self):
        rng = np.random.default_rng(0)
        x = rng.uniform(0, 10, (60, 2))
        y = 3.0 + 2.0 * x[:, 0] - 0.5 * x[:, 1] + 0.25 * x[:, 0] * x[:, 1]
        model = fit_polynomial(x, y, degree=2)
        assert model.rss < 1e-12
        assert model.predict_one(4.0, 6.0) == pytest.approx(
            3 + 8 - 3 + 0.25 * 24, rel=1e-9)

    def test_aic_selects_true_degree(self):
        rng = np.random.default_rng(1)
        x = rng.uniform(0.01, 0.5, (120, 1))
        y = 0.5 + 13.0 * x[:, 0] + rng.normal(0, 1e-4, 120)
        model = fit_best_polynomial(x, y, max_degree=7)
        assert model.degree <= 2  # linear truth; AICc must not pick 7

    def test_degree_needs_enough_samples(self):
        x = np.arange(4, dtype=float).reshape(-1, 1)
        with pytest.raises(ModelError):
            fit_polynomial(x, np.ones(4), degree=7)

    def test_best_fit_skips_infeasible_degrees(self):
        x = np.arange(5, dtype=float).reshape(-1, 1)
        y = 2 * x[:, 0] + 1
        model = fit_best_polynomial(x, y, max_degree=7)
        assert model.n_params <= 5

    def test_no_feasible_degree_raises(self):
        x = np.ones((1, 3))
        with pytest.raises(ModelError):
            fit_best_polynomial(x, np.ones(1), min_degree=2, max_degree=3)

    def test_sample_count_mismatch(self):
        with pytest.raises(ModelError):
            fit_polynomial(np.ones((3, 1)), np.ones(4), degree=1)

    def test_predict_batch_shape(self):
        x = np.arange(20, dtype=float).reshape(-1, 1)
        model = fit_polynomial(x, x[:, 0] ** 2, degree=2)
        out = model.predict(np.array([[1.0], [2.0], [3.0]]))
        assert out.shape == (3,)
        assert out == pytest.approx([1, 4, 9], abs=1e-6)

    def test_serialization_roundtrip(self):
        x = np.arange(30, dtype=float).reshape(-1, 1)
        model = fit_polynomial(x, 5 * x[:, 0] + 2, degree=1)
        clone = PolynomialModel.from_dict(model.to_dict())
        assert clone.predict_one(17.0) == pytest.approx(model.predict_one(17.0))

    def test_large_scale_inputs_stable(self):
        """Pixel-scale inputs (w, h in thousands) at degree 7 must not
        blow up numerically — the scale normalization handles it."""
        rng = np.random.default_rng(2)
        x = rng.uniform(100, 4000, (200, 2))
        y = 1e-3 * x[:, 0] * x[:, 1]
        model = fit_polynomial(x, y, degree=7)
        pred = model.predict_one(2048.0, 2048.0)
        assert pred == pytest.approx(1e-3 * 2048 * 2048, rel=1e-3)


class TestAic:
    def test_penalizes_parameters(self):
        assert aic_score(1.0, 100, 3) < aic_score(1.0, 100, 10)

    def test_rewards_fit(self):
        assert aic_score(0.1, 100, 3) < aic_score(10.0, 100, 3)

    def test_zero_rss_guarded(self):
        assert np.isfinite(aic_score(0.0, 10, 2))

    def test_invalid_n(self):
        with pytest.raises(ModelError):
            aic_score(1.0, 0, 1)


class TestHorner:
    def _random_model(self, seed, n_vars, degree):
        rng = np.random.default_rng(seed)
        exps = monomial_exponents(n_vars, degree)
        return PolynomialModel(
            n_vars=n_vars, degree=degree, exponents=exps,
            coefficients=rng.normal(0, 1, len(exps)),
            scale=np.ones(n_vars),
        )

    @settings(max_examples=40, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000),
           st.integers(min_value=1, max_value=3),
           st.integers(min_value=1, max_value=5),
           st.lists(st.floats(min_value=-3, max_value=3), min_size=3, max_size=3))
    def test_horner_equals_naive(self, seed, n_vars, degree, point):
        model = self._random_model(seed, n_vars, degree)
        h = HornerPolynomial(model)
        args = point[:n_vars]
        assert h.evaluate(*args) == pytest.approx(
            naive_evaluate(model, *args), rel=1e-9, abs=1e-9)

    def test_horner_equals_lstsq_predict(self):
        rng = np.random.default_rng(3)
        x = rng.uniform(0, 5, (50, 2))
        y = 1 + x[:, 0] ** 2 + 3 * x[:, 1]
        model = fit_polynomial(x, y, degree=3)
        h = HornerPolynomial(model)
        for pt in x[:5]:
            assert h.evaluate(*pt) == pytest.approx(
                float(model.predict(pt[None])[0]), rel=1e-6)

    def test_fewer_multiplications_than_naive(self):
        model = self._random_model(4, 2, 7)
        h = HornerPolynomial(model)
        assert horner_mult_count(h) < naive_mult_count(model)

    def test_univariate_degree_n_uses_n_mults(self):
        model = self._random_model(5, 1, 7)
        assert horner_mult_count(HornerPolynomial(model)) == 7

    def test_wrong_arity_raises(self):
        model = self._random_model(6, 2, 2)
        with pytest.raises(ModelError):
            HornerPolynomial(model).evaluate(1.0)
        with pytest.raises(ModelError):
            naive_evaluate(model, 1.0)

    def test_op_counting(self):
        model = self._random_model(7, 1, 3)
        count = OpCount()
        HornerPolynomial(model).evaluate(2.0, count=count)
        assert count.mults == 3 and count.adds == 3
