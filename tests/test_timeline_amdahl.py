"""Timeline bookkeeping and the Amdahl bound helpers."""

from __future__ import annotations

import pytest

from repro.errors import ModelError
from repro.core import Timeline, max_speedup, parallel_fraction, percent_of_max
from repro.gpusim.queue import Event


class TestTimeline:
    def test_makespan(self):
        t = Timeline()
        t.add("cpu", "a", "huffman", 0, 10)
        t.add("gpu", "b", "kernel", 5, 25)
        assert t.makespan == 25

    def test_empty_makespan(self):
        assert Timeline().makespan == 0.0

    def test_invalid_span_rejected(self):
        with pytest.raises(ValueError):
            Timeline().add("cpu", "x", "huffman", 10, 5)

    def test_busy_filters_by_kind(self):
        t = Timeline()
        t.add("cpu", "h", "huffman", 0, 10)
        t.add("cpu", "s", "cpu-parallel", 10, 18)
        assert t.busy("cpu") == 18
        assert t.busy("cpu", kinds=("huffman",)) == 10

    def test_stage_breakdown(self):
        t = Timeline()
        t.add("cpu", "h1", "huffman", 0, 4)
        t.add("cpu", "h2", "huffman", 4, 10)
        t.add("gpu", "k", "kernel", 2, 9)
        bd = t.stage_breakdown()
        assert bd["huffman"] == 10
        assert bd["kernel"] == 7

    def test_parallel_exec_times_excludes_huffman(self):
        t = Timeline()
        t.add("cpu", "h", "huffman", 0, 10)
        t.add("cpu", "s", "cpu-parallel", 10, 16)
        t.add("gpu", "w", "write", 10, 12)
        t.add("gpu", "k", "kernel", 12, 15)
        cpu, gpu = t.parallel_exec_times()
        assert cpu == 6 and gpu == 5

    def test_add_events(self):
        t = Timeline()
        t.add_events([Event("k", "kernel", 0, 1, 5)])
        assert t.busy("gpu") == 4

    def test_render_contains_resources(self):
        t = Timeline()
        t.add("cpu", "h", "huffman", 0, 50)
        t.add("gpu", "k", "kernel", 25, 100)
        art = t.render(width=40)
        assert "cpu" in art and "gpu" in art
        assert "H" in art and "K" in art

    def test_render_empty(self):
        assert "empty" in Timeline().render()


class TestAmdahl:
    def test_eq19(self):
        assert max_speedup(100.0, 25.0) == 4.0

    def test_parallel_fraction(self):
        assert parallel_fraction(100.0, 25.0) == 0.75

    def test_percent_of_max(self):
        assert percent_of_max(2.0, 100.0, 25.0) == 50.0

    def test_validations(self):
        with pytest.raises(ModelError):
            max_speedup(0.0, 1.0)
        with pytest.raises(ModelError):
            max_speedup(10.0, 0.0)
        with pytest.raises(ModelError):
            max_speedup(10.0, 20.0)
        with pytest.raises(ModelError):
            percent_of_max(-1.0, 10.0, 5.0)
