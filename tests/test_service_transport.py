"""Shared-memory plane transport: arena lifecycle, leak accounting
(including a killed worker mid-batch), bit-identity of ``transport=shm``
across engines x schedulers x lane-pool layouts, and the N-producer
session stress with shm enabled."""

from __future__ import annotations

import os
import signal
import threading
import time

import numpy as np
import pytest

from repro.errors import ServiceError
from repro.jpeg import EncoderSettings, decode_jpeg, encode_jpeg
from repro.jpeg.markers import parse_jpeg
from repro.service import (
    BatchDecoder,
    DecodeSession,
    ExecutorRegistry,
    ImageRequest,
    ModelScheduler,
    PlaneArena,
    WorkerPool,
    resolve_transport,
    shm_available,
)
from repro.service.transport import (
    PlaneRef,
    packed_nbytes,
    peek_dimensions,
    publish_plane,
    publish_planes,
)

pytestmark = pytest.mark.skipif(
    not shm_available(), reason="POSIX shared memory unavailable")


def shm_files(prefix: str = "repro-") -> list[str]:
    """Residual /dev/shm entries created by this subsystem."""
    try:
        return sorted(f for f in os.listdir("/dev/shm")
                      if f.startswith(prefix))
    except FileNotFoundError:  # non-Linux: nothing to check
        return []


@pytest.fixture(scope="module")
def corpus(small_rgb, tiny_rgb):
    """Mixed corpus: subsampling modes, a DRI image, a tiny image."""
    return [
        encode_jpeg(small_rgb, EncoderSettings(
            quality=85, subsampling="4:2:2")),
        encode_jpeg(small_rgb, EncoderSettings(
            quality=85, subsampling="4:4:4", restart_interval=4)),
        encode_jpeg(tiny_rgb, EncoderSettings(
            quality=75, subsampling="4:2:0")),
    ]


@pytest.fixture(scope="module")
def sequential_rgbs(corpus):
    """Oracle: single-image sequential decodes of the corpus."""
    return [decode_jpeg(b).rgb for b in corpus]


class TestPlaneArena:
    def test_lease_release_reuse(self):
        with PlaneArena() as arena:
            slot = arena.lease(1000)
            assert slot.capacity >= 1000
            assert arena.leaked() == [slot.name]
            arena.release(slot)
            assert arena.leaked() == []
            again = arena.lease(500)
            assert again.name == slot.name  # ring reuse, not a new segment
            assert arena.created == 1 and arena.reused == 1

    def test_discard_quarantines_instead_of_recycling(self):
        """Discarded slots are unlinked, never returned to the ring —
        the aborted-batch path where a stale worker may still write."""
        with PlaneArena() as arena:
            slot = arena.lease(1024)
            arena.discard(slot)
            assert arena.leaked() == []
            assert slot.name not in shm_files()
            arena.discard(slot)  # idempotent
            fresh = arena.lease(1024)
            assert fresh.name != slot.name  # the name was not reused

    def test_release_is_idempotent(self):
        with PlaneArena() as arena:
            slot = arena.lease(10)
            arena.release(slot)
            arena.release(slot)          # no-op
            arena.release("no-such-segment")
            assert arena.leaked() == []

    def test_close_unlinks_everything_even_leased(self):
        arena = PlaneArena()
        leased = arena.lease(1024)
        freed = arena.lease(1024)
        arena.release(freed)
        names = {leased.name, freed.name}
        assert set(shm_files()) & names == names
        arena.close()
        assert set(shm_files()) & names == set()
        arena.close()  # idempotent
        with pytest.raises(ServiceError):
            arena.lease(1)

    def test_max_free_bounds_the_ring(self):
        with PlaneArena(max_free=1) as arena:
            slots = [arena.lease(10) for _ in range(3)]
            for slot in slots:
                arena.release(slot)
            # one parked segment, the surplus unlinked immediately
            assert arena.segments == 1

    def test_publish_and_resolve_roundtrip(self):
        rng = np.random.default_rng(7)
        arr = rng.integers(0, 255, size=(40, 30, 3), dtype=np.uint8)
        with PlaneArena() as arena:
            slot = arena.lease(arr.nbytes)
            ref = publish_plane(slot, arr)
            assert ref.nbytes == arr.nbytes
            copy = arena.resolve(ref)
            view = arena.resolve(ref, copy=False)
            assert np.array_equal(copy, arr)
            assert np.array_equal(view, arr)
            # the copy is independent of the segment, the view is not
            view[0, 0, 0] ^= 0xFF
            assert not np.array_equal(arena.resolve(ref), copy) or \
                copy[0, 0, 0] == arr[0, 0, 0]

    def test_publish_planes_packs_with_alignment(self):
        planes = [np.full((5, 8, 8), i, dtype=np.int16) for i in range(3)]
        nbytes = packed_nbytes(p.nbytes for p in planes)
        with PlaneArena() as arena:
            slot = arena.lease(nbytes)
            refs = publish_planes(slot, planes)
            assert all(r.offset % 64 == 0 for r in refs)
            for ref, plane in zip(refs, planes):
                assert np.array_equal(arena.resolve(ref), plane)

    def test_publish_overflow_raises(self):
        with PlaneArena(granularity=4096) as arena:
            slot = arena.lease(16)
            with pytest.raises(ServiceError):
                publish_plane(slot, np.zeros(slot.capacity + 1,
                                             dtype=np.uint8))

    def test_resolve_unknown_segment_raises(self):
        with PlaneArena() as arena:
            ref = PlaneRef(segment="repro-nope", offset=0,
                           shape=(1,), dtype="|u1")
            with pytest.raises(ServiceError):
                arena.resolve(ref)


class TestTransportResolution:
    def test_pickle_always_allowed(self):
        assert resolve_transport("pickle", {"process"}) == "pickle"

    def test_auto_uses_shm_only_with_process_pools(self):
        assert resolve_transport("auto", {"process"}) == "shm"
        assert resolve_transport("auto", {"thread"}) == "pickle"
        assert resolve_transport("auto", {"serial"}) == "pickle"
        assert resolve_transport("shm", {"serial", "process"}) == "shm"
        assert resolve_transport("shm", {"thread"}) == "pickle"

    def test_unknown_transport_rejected(self):
        with pytest.raises(ServiceError):
            resolve_transport("carrier-pigeon", {"process"})

    def test_bad_config_spawns_no_pools(self):
        """Constructor validation fires before any pool exists, so a
        misconfigured decoder cannot leak worker processes."""
        with pytest.raises(ServiceError):
            BatchDecoder(backend="process", transport="carrier-pigeon")
        with pytest.raises(ServiceError):
            BatchDecoder(backend="process", lane_pools="auto")  # no scheduler


class TestPeekDimensions:
    def test_matches_full_parse(self, corpus):
        for blob in corpus:
            info = parse_jpeg(blob)
            assert peek_dimensions(blob) == (info.width, info.height)

    def test_garbage_returns_none(self, corpus):
        assert peek_dimensions(b"") is None
        assert peek_dimensions(b"\x00" * 64) is None
        assert peek_dimensions(corpus[0][:8]) is None
        # SOI followed by immediate EOI: no frame header
        assert peek_dimensions(b"\xff\xd8\xff\xd9") is None


# ---------------------------------------------------------------------------
# Leak accounting under worker death.
# ---------------------------------------------------------------------------

def _sigkill_self(slot=None):
    """Module-level task: die exactly like a crashed/OOM-killed worker."""
    os.kill(os.getpid(), signal.SIGKILL)


class TestCrashSafety:
    def test_killed_worker_slot_is_reclaimed_and_unlinked(self):
        """A worker that dies holding a leased slot must not leak its
        segment: the pool breaks, the caller releases, close unlinks."""
        arena = PlaneArena()
        pool = WorkerPool(workers=1, backend="process")
        slot = arena.lease(4096)
        fut = pool.submit(_sigkill_self, slot)
        with pytest.raises(BaseException):
            fut.result(timeout=60)
        assert arena.leaked() == [slot.name]  # accounting sees the loss
        arena.release(slot)                   # the error-path reclaim
        assert arena.leaked() == []
        name = slot.name
        arena.close()
        pool.close()
        assert name not in shm_files()

    def test_worker_killed_mid_batch_heals_and_leaves_no_segments(
            self, corpus, sequential_rgbs):
        """Kill the pool's worker while it decodes a shm-transported
        batch: the decoder quarantines the dead worker's slots, rebuilds
        the pool in place and redispatches, so the batch still succeeds
        bit-identically — and every segment is released, with close()
        unlinking the arena without residue."""
        dec = BatchDecoder(workers=1, backend="process", transport="shm",
                           shm_min_bytes=0)
        # Warm the pool and the ring with a healthy batch first.
        batch = dec.decode_batch([corpus[0]])
        assert batch.ok
        assert np.array_equal(batch.results[0].rgb, sequential_rgbs[0])
        assert dec.arena.leaked() == []
        pid = dec.pool.submit(os.getpid).result(timeout=60)

        killer = threading.Timer(0.05, os.kill, (pid, signal.SIGKILL))
        killer.start()
        try:
            result = dec.decode_batch([corpus[0], corpus[1]])
        finally:
            killer.cancel()
        # Self-healing (PR 6): whether the kill landed mid-decode or
        # between batches, every request resolves successfully — a
        # crash shows up as retries/pool rebuilds, never as a failed
        # result or a leaked segment.
        assert result.ok, [(r.error_type, r.error) for r in result]
        for res, want in zip(result, sequential_rgbs[:2]):
            assert np.array_equal(res.rgb, want)
        assert dec.arena.leaked() == []
        dec.close()
        assert dec.arena.leaked() == []
        assert not shm_files()

    def test_batch_completion_releases_every_slot(self, corpus):
        """After any successful shm batch the ring holds zero leases."""
        with BatchDecoder(workers=2, backend="process", transport="shm",
                          shm_min_bytes=0) as dec:
            reqs = [ImageRequest(data=corpus[1], split_segments=True),
                    ImageRequest(data=corpus[0])]
            batch = dec.decode_batch(reqs)
            assert batch.ok
            assert dec.arena.leaked() == []
        assert not shm_files()


# ---------------------------------------------------------------------------
# Bit-identity matrix: engines x schedulers x lane-pool layouts.
# ---------------------------------------------------------------------------

def _identity_requests(corpus, engine):
    """The corpus as requests, including a forced DRI fan-out image."""
    reqs = [ImageRequest(data=b, entropy_engine=engine) for b in corpus]
    reqs.append(ImageRequest(data=corpus[1], entropy_engine=engine,
                             split_segments=True))
    return reqs


class TestShmBitIdentity:
    @pytest.mark.parametrize("engine", ["fast", "reference"])
    def test_unscheduled(self, corpus, sequential_rgbs, engine):
        oracle = sequential_rgbs + [sequential_rgbs[1]]
        with BatchDecoder(workers=2, backend="process", transport="shm",
                          shm_min_bytes=0) as dec:
            assert dec.transport == "shm"
            batch = dec.decode_batch(_identity_requests(corpus, engine))
            assert batch.ok, [(r.error_type, r.error) for r in batch]
            assert batch.results[-1].segments > 1  # DRI fan-out ran
            assert batch.stats.bytes_shm > 0
            for res, want in zip(batch, oracle):
                assert np.array_equal(res.rgb, want)
            assert dec.arena.leaked() == []

    @pytest.mark.parametrize("policy", ["model", "roundrobin"])
    @pytest.mark.parametrize("layout", [None, "gpu=process:1,cpu=process:1"])
    def test_scheduled_lane_layouts(self, corpus, sequential_rgbs,
                                    policy, layout):
        """Scheduled batches stay bit-identical with shm transport, with
        and without lane-bound pools."""
        scheduler = ModelScheduler(policy=policy)
        lane_pools = None if layout is None else ExecutorRegistry(
            scheduler.executors, layout=layout)
        try:
            with BatchDecoder(workers=2, backend="process", transport="shm",
                              shm_min_bytes=0, scheduler=scheduler,
                              lane_pools=lane_pools) as dec:
                batch = dec.decode_batch(corpus)
                assert batch.ok, [(r.error_type, r.error) for r in batch]
                assert batch.schedule is not None
                assert batch.schedule.wall_time == (lane_pools is not None)
                for res, want in zip(batch, sequential_rgbs):
                    assert np.array_equal(res.rgb, want)
                assert dec.arena.leaked() == []
        finally:
            if lane_pools is not None:  # caller-owned: decoder leaves open
                lane_pools.close()
        assert not shm_files()


# ---------------------------------------------------------------------------
# Transport stats plumbing.
# ---------------------------------------------------------------------------

class TestTransportStats:
    def test_bytes_moved_counters(self, corpus):
        # Whole-image accounting: pin speculative fan-out off so the
        # counters see exactly one image's pixel planes.
        with BatchDecoder(workers=2, backend="process",
                          transport="shm", shm_min_bytes=0,
                          speculative="off") as dec:
            shm_batch = dec.decode_batch([corpus[0]])
        with BatchDecoder(workers=2, backend="process",
                          transport="pickle", speculative="off") as dec:
            pickle_batch = dec.decode_batch([corpus[0]])
        rgb_bytes = decode_jpeg(corpus[0]).rgb.nbytes
        assert shm_batch.stats.bytes_shm == rgb_bytes
        assert shm_batch.stats.bytes_pickle == 0
        assert pickle_batch.stats.bytes_pickle == rgb_bytes
        assert pickle_batch.stats.bytes_shm == 0

    def test_session_snapshot_has_transport_and_lane_detail(self, corpus):
        scheduler = ModelScheduler(policy="model")
        with ExecutorRegistry(scheduler.executors,
                              layout="gpu=thread:1,cpu=thread:1") as registry, \
                DecodeSession(max_batch=4, backend="serial", pump=False,
                              scheduler=scheduler, lane_pools=registry) as s:
            for blob in corpus:
                s.submit(blob)
            while s.run_once() is not None:
                pass
            snap = s.stats_snapshot()
        assert snap["transport"]["mode"] == "pickle"  # serial default pool
        assert set(snap["lane_pools"]) == {ln.name
                                           for ln in scheduler.executors}
        lanes = snap["per_executor"]
        assert lanes, "scheduled batch must report lane usage"
        for entry in lanes.values():
            assert {"busy_s", "pool", "utilization"} <= set(entry)

    def test_http_stats_surface_transport(self, corpus):
        """GET /stats (repro serve) carries the new transport keys."""
        import json
        from urllib.request import urlopen

        from repro.service import DecodeHTTPServer

        with DecodeHTTPServer(port=0, backend="serial", max_batch=2,
                              pump=True) as server:
            thread = threading.Thread(target=server.serve_forever,
                                      kwargs={"max_requests": 1},
                                      daemon=True)
            thread.start()
            with urlopen(f"{server.url}/stats", timeout=30) as resp:
                snap = json.loads(resp.read())
            thread.join(timeout=30)
        assert "transport" in snap
        assert {"mode", "shm_bytes", "pickle_bytes"} <= set(snap["transport"])


# ---------------------------------------------------------------------------
# N-producer session stress with shm transport enabled.
# ---------------------------------------------------------------------------

class TestSessionStressShm:
    def test_many_producers_blocking_mode(self, corpus, sequential_rgbs):
        """Concurrent producers over a small queue, process pool + shm:
        nothing lost, nothing duplicated, everything bit-identical."""
        producers, per_producer = 4, 6
        session = DecodeSession(max_batch=4, max_delay_ms=1.0,
                                queue_capacity=8, workers=2,
                                backend="process", transport="shm",
                                shm_min_bytes=0)
        assert session.decoder.transport == "shm"
        handles: dict[int, list] = {i: [] for i in range(producers)}

        def produce(k: int) -> None:
            for j in range(per_producer):
                blob = corpus[(k + j) % len(corpus)]
                handles[k].append(
                    (session.submit(blob, timeout=None), (k + j) % len(corpus)))

        threads = [threading.Thread(target=produce, args=(k,))
                   for k in range(producers)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        seen = set()
        for k in range(producers):
            assert len(handles[k]) == per_producer
            for handle, oracle_idx in handles[k]:
                result = handle.result(timeout=120)
                assert result.ok, (result.error_type, result.error)
                assert np.array_equal(result.rgb, sequential_rgbs[oracle_idx])
                assert result.request_id not in seen
                seen.add(result.request_id)
        assert len(seen) == producers * per_producer
        assert session.stats.bytes_shm > 0
        session.close()
        assert session.decoder.arena.leaked() == []
        # allow the ring unlinks to settle, then check the filesystem
        time.sleep(0.05)
        assert not shm_files()
