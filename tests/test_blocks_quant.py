"""MCU geometry, block packing and quantization tables."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import JpegError, JpegFormatError
from repro.jpeg.blocks import (
    ImageGeometry,
    blocks_to_plane,
    ceil_div,
    mcu_interleave_order,
    plane_to_blocks,
)
from repro.jpeg.quantization import (
    QuantTable,
    chrominance_table,
    dequantize_blocks,
    luminance_table,
    parse_dqt_payload,
    quantize_blocks,
    scale_quant_table,
)
from repro.jpeg.constants import STD_LUMINANCE_QUANT


class TestGeometry:
    def test_444_mcu_is_8x8(self):
        geo = ImageGeometry(100, 60, "4:4:4")
        assert (geo.mcu_width, geo.mcu_height) == (8, 8)
        assert geo.mcus_per_row == 13
        assert geo.mcu_rows == 8

    def test_422_mcu_is_16x8(self):
        geo = ImageGeometry(100, 60, "4:2:2")
        assert (geo.mcu_width, geo.mcu_height) == (16, 8)
        assert geo.mcus_per_row == 7

    def test_420_mcu_is_16x16(self):
        geo = ImageGeometry(100, 60, "4:2:0")
        assert (geo.mcu_width, geo.mcu_height) == (16, 16)
        assert geo.mcu_rows == 4

    def test_blocks_per_mcu(self):
        assert ImageGeometry(64, 64, "4:4:4").blocks_per_mcu == 3
        assert ImageGeometry(64, 64, "4:2:2").blocks_per_mcu == 4
        assert ImageGeometry(64, 64, "4:2:0").blocks_per_mcu == 6

    def test_chroma_dimensions_422(self):
        geo = ImageGeometry(100, 60, "4:2:2")
        _, cb, cr = geo.components
        assert (cb.width, cb.height) == (50, 60)
        assert cb.blocks_wide == geo.mcus_per_row

    def test_luma_covers_padded_grid(self):
        geo = ImageGeometry(100, 60, "4:2:2")
        y = geo.components[0]
        assert y.padded_width >= geo.width
        assert y.padded_height >= geo.height
        assert y.blocks_per_mcu == 2

    def test_invalid_dimensions(self):
        with pytest.raises(JpegError):
            ImageGeometry(0, 10, "4:4:4")
        with pytest.raises(JpegError):
            ImageGeometry(10, -1, "4:4:4")

    def test_invalid_mode(self):
        with pytest.raises(JpegError):
            ImageGeometry(10, 10, "4:9:9")

    def test_mcu_row_pixel_span_clamps_bottom(self):
        geo = ImageGeometry(32, 20, "4:2:2")  # 3 MCU rows of 8, image 20 high
        assert geo.mcu_row_to_pixel_rows(0) == (0, 8)
        assert geo.mcu_row_to_pixel_rows(2) == (16, 20)

    def test_pixel_rows_to_mcu_rows(self):
        geo = ImageGeometry(32, 64, "4:2:2")
        assert geo.pixel_rows_to_mcu_rows(1) == 1
        assert geo.pixel_rows_to_mcu_rows(8) == 1
        assert geo.pixel_rows_to_mcu_rows(9) == 2

    def test_interleave_order_422(self):
        geo = ImageGeometry(32, 16, "4:2:2")
        order = mcu_interleave_order(geo)
        assert order == [(0, 0), (0, 1), (1, 0), (2, 0)]

    @settings(max_examples=50, deadline=None)
    @given(st.integers(min_value=1, max_value=500),
           st.integers(min_value=1, max_value=500),
           st.sampled_from(["4:4:4", "4:2:2", "4:2:0"]))
    def test_grid_covers_image(self, w, h, mode):
        geo = ImageGeometry(w, h, mode)
        assert geo.mcus_per_row * geo.mcu_width >= w
        assert geo.mcu_rows * geo.mcu_height >= h
        # grid is minimal
        assert (geo.mcus_per_row - 1) * geo.mcu_width < w
        assert (geo.mcu_rows - 1) * geo.mcu_height < h


class TestBlockPacking:
    def test_roundtrip_exact_fit(self):
        plane = np.arange(16 * 24, dtype=np.int16).reshape(16, 24)
        blocks = plane_to_blocks(plane, 3, 2)
        assert blocks.shape == (6, 8, 8)
        back = blocks_to_plane(blocks, 3, 2)
        assert (back == plane).all()

    def test_padding_replicates_edges(self):
        plane = np.full((5, 5), 9, dtype=np.uint8)
        blocks = plane_to_blocks(plane, 1, 1)
        assert (blocks == 9).all()

    def test_crop_on_reassembly(self):
        plane = np.arange(5 * 7, dtype=np.uint8).reshape(5, 7)
        blocks = plane_to_blocks(plane, 1, 1)
        back = blocks_to_plane(blocks, 1, 1, width=7, height=5)
        assert (back == plane).all()

    def test_block_order_is_row_major(self):
        plane = np.zeros((8, 16), dtype=np.uint8)
        plane[:, 8:] = 1
        blocks = plane_to_blocks(plane, 2, 1)
        assert (blocks[0] == 0).all()
        assert (blocks[1] == 1).all()

    def test_oversize_plane_rejected(self):
        with pytest.raises(JpegError):
            plane_to_blocks(np.zeros((9, 8)), 1, 1)

    def test_wrong_block_count_rejected(self):
        with pytest.raises(JpegError):
            blocks_to_plane(np.zeros((3, 8, 8)), 2, 2)

    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=1, max_value=40),
           st.integers(min_value=1, max_value=40))
    def test_roundtrip_property(self, w, h):
        rng = np.random.default_rng(w * 100 + h)
        plane = rng.integers(0, 255, (h, w)).astype(np.uint8)
        bw, bh = ceil_div(w, 8), ceil_div(h, 8)
        back = blocks_to_plane(plane_to_blocks(plane, bw, bh), bw, bh,
                               width=w, height=h)
        assert (back == plane).all()


class TestQuantization:
    def test_quality_50_is_base_table(self):
        assert (scale_quant_table(STD_LUMINANCE_QUANT, 50)
                == STD_LUMINANCE_QUANT).all()

    def test_quality_100_is_all_ones(self):
        assert (scale_quant_table(STD_LUMINANCE_QUANT, 100) == 1).all()

    def test_lower_quality_coarser(self):
        q20 = luminance_table(20).astype(int)
        q80 = luminance_table(80).astype(int)
        assert (q20 >= q80).all() and (q20 > q80).any()

    def test_quality_range_enforced(self):
        with pytest.raises(ValueError):
            luminance_table(0)
        with pytest.raises(ValueError):
            chrominance_table(101)

    def test_quantize_dequantize_bounded_error(self):
        rng = np.random.default_rng(5)
        coeffs = rng.normal(0, 200, (10, 8, 8))
        table = luminance_table(75)
        q = quantize_blocks(coeffs, table)
        dq = dequantize_blocks(q, table)
        assert np.abs(dq - coeffs).max() <= table.astype(float).max() / 2 + 1e-9

    def test_dqt_payload_roundtrip(self):
        t = QuantTable(2, luminance_table(60))
        parsed = parse_dqt_payload(t.to_dqt_payload())
        assert len(parsed) == 1
        assert parsed[0].table_id == 2
        assert (parsed[0].values == t.values).all()

    def test_dqt_16bit_parse(self):
        values = np.full(64, 300, dtype=np.uint16)
        from repro.jpeg.constants import NATURAL_TO_ZIGZAG, ZIGZAG_ORDER
        zz = values[ZIGZAG_ORDER]
        payload = bytes([0x10]) + zz.astype(">u2").tobytes()
        parsed = parse_dqt_payload(payload)
        assert (parsed[0].values == 300).all()

    def test_dqt_truncated_rejected(self):
        with pytest.raises(JpegFormatError):
            parse_dqt_payload(bytes([0]) + b"\x01" * 10)

    def test_bad_table_id_rejected(self):
        with pytest.raises(JpegFormatError):
            QuantTable(7, luminance_table(50))

    def test_zero_step_rejected(self):
        bad = luminance_table(50).copy()
        bad[0, 0] = 0
        with pytest.raises(JpegFormatError):
            QuantTable(0, bad)
