"""Lane-bound executor pools: layout parsing, registry construction,
per-lane dispatch, and the real wall-clock feedback loop."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ServiceError
from repro.evaluation import platforms
from repro.jpeg import EncoderSettings, decode_jpeg, encode_jpeg
from repro.service import (
    BatchDecoder,
    DecodeService,
    ExecutorRegistry,
    ModelScheduler,
    default_executors,
    parse_lane_pools,
)


@pytest.fixture(scope="module")
def corpus(small_rgb, tiny_rgb):
    """Two schedulable images (4:2:2 + 4:4:4, both GPU-eligible)."""
    return [
        encode_jpeg(small_rgb, EncoderSettings(
            quality=85, subsampling="4:2:2")),
        encode_jpeg(tiny_rgb, EncoderSettings(
            quality=85, subsampling="4:4:4")),
    ]


@pytest.fixture(scope="module")
def sequential_rgbs(corpus):
    """Oracle decodes of the corpus."""
    return [decode_jpeg(b).rgb for b in corpus]


class TestParseLanePools:
    def test_empty_and_auto_mean_default_layout(self):
        assert parse_lane_pools("") == {}
        assert parse_lane_pools("auto") == {}

    def test_workers_only(self):
        assert parse_lane_pools("gpu=1,simd=3") == {
            "gpu": (None, 1), "simd": (None, 3)}

    def test_backend_and_workers(self):
        assert parse_lane_pools("gpu=process:1,cpu=thread:2") == {
            "gpu": ("process", 1), "cpu": ("thread", 2)}

    @pytest.mark.parametrize("bad", [
        "turbo=1",              # unknown kind
        "gpu",                  # missing =workers
        "gpu=fast:1",           # unknown backend
        "gpu=zero",             # non-integer workers
        "gpu=0",                # non-positive workers
        "gpu=1,gpu=2",          # duplicate kind
    ])
    def test_rejects_malformed_specs(self, bad):
        with pytest.raises(ServiceError):
            parse_lane_pools(bad)


class TestExecutorRegistry:
    def test_default_layout_binds_gpu_alone(self):
        lanes = default_executors(platforms.GTX560)
        with ExecutorRegistry(lanes, backend="thread") as reg:
            gpu = next(ln for ln in lanes if ln.kind == "gpu")
            simd = next(ln for ln in lanes if ln.kind == "simd")
            assert reg.pool_for(gpu.name) is not reg.pool_for(simd.name)
            assert reg.pool_for(gpu.name).workers == 1
            assert reg.pool_for("unknown-lane") is None
            desc = reg.describe()
            assert desc[gpu.name]["pool"] == gpu.name
            assert desc[simd.name]["pool"] == "cpu"
            assert reg.total_workers == sum(
                p.workers for p in reg.pools.values())
            assert reg.backends == {"thread"}

    def test_layout_spec_sizes_pools(self):
        lanes = default_executors(platforms.GTX560)
        with ExecutorRegistry(lanes, layout="gpu=thread:1,cpu=thread:3") as reg:
            assert reg.pools["cpu"].workers == 3
            assert reg.pools["cpu"].backend == "thread"

    def test_cpu_lanes_share_one_pool(self):
        lanes = (*default_executors(platforms.GTX560),
                 *default_executors(platforms.GTX680))
        with ExecutorRegistry(lanes, backend="thread") as reg:
            cpu_lanes = [ln for ln in lanes if ln.kind != "gpu"]
            pools = {reg.pool_for(ln.name) for ln in cpu_lanes}
            assert len(pools) == 1
            gpu_lanes = [ln for ln in lanes if ln.kind == "gpu"]
            assert len({id(reg.pool_for(ln.name))
                        for ln in gpu_lanes}) == len(gpu_lanes)

    def test_empty_lane_set_rejected(self):
        with pytest.raises(ServiceError):
            ExecutorRegistry(())

    def test_conflicting_cpu_kinds_rejected(self):
        """Naming two CPU kinds would silently drop one (all CPU lanes
        share a single pool) — the registry must refuse instead."""
        lanes = default_executors(platforms.GTX560)
        with pytest.raises(ServiceError):
            ExecutorRegistry(lanes, layout="cpu=2,simd=8")


class TestLaneBoundDispatch:
    def test_lane_pools_require_scheduler(self):
        with pytest.raises(ServiceError):
            BatchDecoder(backend="serial", lane_pools="auto")

    def test_placed_images_run_on_their_lane_pool(self, corpus,
                                                  sequential_rgbs):
        """Thread-named pools prove each placement executed on the pool
        bound to its lane (worker names carry the pool prefix)."""
        scheduler = ModelScheduler(policy="model")
        with ExecutorRegistry(scheduler.executors,
                              layout="gpu=thread:1,cpu=thread:2") as registry, \
                BatchDecoder(backend="serial", scheduler=scheduler,
                             lane_pools=registry) as dec:
            batch = dec.decode_batch(corpus)
        assert batch.ok
        assert batch.schedule.wall_time
        by_index = {a.index: a for a in batch.schedule.assignments}
        pool_of_lane = {name: entry["pool"]
                        for name, entry in batch.lane_pools.items()}
        for i, result in enumerate(batch.results):
            assert np.array_equal(result.rgb, sequential_rgbs[i])
            a = by_index[i]
            if a.executor is None:
                continue
            expected_prefix = f"{pool_of_lane[a.executor.name]}-worker"
            assert all(s.worker.startswith(expected_prefix)
                       for s in result.spans), (
                f"image {i} on lane {a.executor.name} ran on "
                f"{[s.worker for s in result.spans]}")

    def test_wall_clock_feedback_reaches_scheduler(self, corpus):
        """Through the service loop, lane-bound batches feed *wall*
        observations: the EWMA scale becomes observed-wall/predicted-sim,
        which is far from the 1.0 a fresh feedback starts at."""
        scheduler = ModelScheduler(policy="model")
        with ExecutorRegistry(scheduler.executors,
                              layout="gpu=thread:1,cpu=thread:1") as registry, \
                DecodeService(batch_size=4, backend="serial",
                              scheduler=scheduler, lane_pools=registry) as svc:
            for blob in corpus:
                svc.submit(blob)
            results = svc.drain()
            assert all(b.ok for b in results)
            assert svc.stats.per_executor, "lane usage must be recorded"
            for usage in svc.stats.per_executor.values():
                assert usage.busy_s > 0
                assert usage.pool_workers >= 1
        assert scheduler.feedback.observations > 0
        scales = scheduler.feedback.scales()
        assert scales and all(s > 0 for s in scales.values())

    def test_wall_us_populated_only_with_results(self, corpus):
        """Every decoded result carries its real worker busy time."""
        with BatchDecoder(backend="thread", workers=2) as dec:
            batch = dec.decode_batch(corpus)
        for result in batch:
            assert result.wall_us is not None and result.wall_us > 0

    def test_default_layout_via_string(self, corpus, sequential_rgbs):
        """`lane_pools="auto"` builds the default registry in place."""
        with BatchDecoder(backend="serial", scheduler="model",
                          lane_pools="auto") as dec:
            assert dec.registry is not None
            batch = dec.decode_batch(corpus)
        assert batch.ok
        for result, want in zip(batch, sequential_rgbs):
            assert np.array_equal(result.rgb, want)
