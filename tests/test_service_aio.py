"""Asyncio front end: async submit, future resolution on the loop,
completion streaming, backpressure off the event loop, lifecycle."""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro.errors import QueueFullError, ServiceError
from repro.jpeg import EncoderSettings, decode_jpeg, encode_jpeg
from repro.service import AsyncDecodeSession, ImageRequest


@pytest.fixture(scope="module")
def corpus(small_rgb, tiny_rgb):
    """Mixed-subsampling corpus (one DRI image for the split path)."""
    return [
        encode_jpeg(small_rgb, EncoderSettings(
            quality=85, subsampling="4:2:2")),
        encode_jpeg(tiny_rgb, EncoderSettings(
            quality=75, subsampling="4:2:0", restart_interval=2)),
        encode_jpeg(tiny_rgb, EncoderSettings(
            quality=90, subsampling="4:4:4")),
    ]


@pytest.fixture(scope="module")
def sequential_rgbs(corpus):
    """Oracle: single-image sequential decodes of the corpus."""
    return [decode_jpeg(b).rgb for b in corpus]


def test_async_submit_resolves_bit_identical(corpus, sequential_rgbs):
    async def main():
        async with AsyncDecodeSession(max_batch=2, max_delay_ms=1.0,
                                      backend="thread", workers=2) as sess:
            futures = [await sess.submit(b) for b in corpus]
            return await asyncio.gather(*futures)

    results = asyncio.run(main())
    for res, oracle in zip(results, sequential_rgbs):
        assert res.ok
        assert np.array_equal(res.rgb, oracle)


def test_completion_stream_overlaps_producer(corpus, sequential_rgbs):
    """An asyncio producer submits while the consumer iterates the
    completion stream — the overlap DecodeService could never offer."""
    total = 2 * len(corpus)

    async def main():
        async with AsyncDecodeSession(max_batch=2, max_delay_ms=1.0,
                                      backend="thread", workers=2) as sess:
            async def produce():
                for blob in 2 * corpus:
                    await sess.submit(blob)
                    await asyncio.sleep(0.002)

            producer = asyncio.create_task(produce())
            got = [res async for res in sess.completed(count=total)]
            await producer
            return got

    got = asyncio.run(main())
    assert len(got) == total
    # Ids are assigned in submission order; completion order is
    # arbitrary, so map each result back to its oracle by id.
    for res in got:
        assert res.ok
        oracle = sequential_rgbs[res.request_id % len(corpus)]
        assert np.array_equal(res.rgb, oracle)


def test_unbounded_stream_ends_when_idle(corpus):
    async def main():
        async with AsyncDecodeSession(max_batch=4, max_delay_ms=1.0,
                                      backend="thread", workers=2) as sess:
            for blob in corpus:
                await sess.submit(blob)
            return [res async for res in sess]

    results = asyncio.run(main())
    assert len(results) == len(corpus)
    assert all(r.ok for r in results)


def test_decode_failure_resolves_future(corpus):
    async def main():
        async with AsyncDecodeSession(max_batch=2, max_delay_ms=1.0,
                                      backend="serial") as sess:
            fut = await sess.submit(b"definitely not a jpeg")
            return await fut

    res = asyncio.run(main())
    assert not res.ok
    assert res.error_type and res.error


def test_failfast_submit_raises_queuefull(corpus):
    """timeout=0 surfaces QueueFullError directly on the awaiting
    coroutine once the bounded queue fills (pump starved by a huge
    batch deadline so nothing drains)."""
    async def main():
        sess = AsyncDecodeSession(max_batch=64, max_delay_ms=60_000,
                                  queue_capacity=2, backend="serial")
        try:
            await sess.submit(corpus[0], timeout=0)
            await sess.submit(corpus[0], timeout=0)
            with pytest.raises(QueueFullError):
                await sess.submit(corpus[0], timeout=0)
        finally:
            await sess.close(drain=False)

    asyncio.run(main())


def test_close_drain_false_cancels_futures(corpus):
    async def main():
        sess = AsyncDecodeSession(max_batch=64, max_delay_ms=60_000,
                                  backend="serial")
        futures = [await sess.submit(corpus[0]) for _ in range(3)]
        await sess.close(drain=False)
        # Give call_soon_threadsafe deliveries a tick to land.
        await asyncio.sleep(0.05)
        return futures

    futures = asyncio.run(main())
    assert all(f.cancelled() for f in futures)


def test_second_loop_rejected(corpus):
    sess_holder = []

    async def first():
        sess = AsyncDecodeSession(backend="serial")
        sess_holder.append(sess)
        await sess.submit(corpus[2])

    async def second():
        with pytest.raises(ServiceError, match="different event loop"):
            await sess_holder[0].submit(corpus[2])
        await asyncio.get_running_loop().run_in_executor(
            None, sess_holder[0]._session.close)

    asyncio.run(first())
    asyncio.run(second())


def test_image_request_passthrough(corpus, sequential_rgbs):
    async def main():
        async with AsyncDecodeSession(max_batch=2, max_delay_ms=1.0,
                                      backend="serial") as sess:
            fut = await sess.submit(ImageRequest(
                data=corpus[0], request_id="tagged",
                entropy_engine="reference"))
            return await fut

    res = asyncio.run(main())
    assert res.request_id == "tagged"
    assert np.array_equal(res.rgb, sequential_rgbs[0])


def test_stats_snapshot_reachable(corpus):
    async def main():
        async with AsyncDecodeSession(max_batch=2, max_delay_ms=1.0,
                                      backend="serial") as sess:
            await (await sess.submit(corpus[2]))
            assert sess.pending == 0
            assert not sess.closed
            return sess.stats_snapshot()

    snap = asyncio.run(main())
    assert snap["images_ok"] == 1
