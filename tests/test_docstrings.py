"""Docstring (D1) lint over the scoped modules, run as a tier-1 test.

The scope is the ISSUE-2 satellite contract, widened by ISSUEs 3-5:
``repro.jpeg.fast_entropy``, ``repro.jpeg.parallel_huffman``,
every module of ``repro.service`` (the scheduler, the serving front
ends ``session``/``aio``/``http``, and the ISSUE-5 lane-pool
``executors``/shared-memory ``transport`` modules included), and the
partitioning core ``repro.core.partition``/``repro.core.perfmodel``
must document their module, every public class and every public
function/method.  The
checker itself is ``tools/check_docstrings.py`` (stdlib ``ast``;
pydocstyle/ruff are not available offline).
"""

from __future__ import annotations

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "tools"))

import check_docstrings  # noqa: E402


def test_scoped_modules_fully_documented(capsys):
    assert check_docstrings.main([]) == 0, capsys.readouterr().out


def test_scope_includes_serving_front_ends():
    """The ISSUE-4 widening: the default targets must sweep in the new
    session/aio/http serving modules (via the service directory)."""
    files = check_docstrings.collect(list(check_docstrings.DEFAULT_TARGETS))
    names = {f.name for f in files if "service" in str(f)}
    assert {"session.py", "aio.py", "http.py"} <= names


def test_scope_includes_executors_and_transport():
    """The ISSUE-5 widening: the lane-pool executors and the
    shared-memory transport modules must stay fully documented."""
    files = check_docstrings.collect(list(check_docstrings.DEFAULT_TARGETS))
    names = {f.name for f in files if "service" in str(f)}
    assert {"executors.py", "transport.py"} <= names


def test_scope_includes_fault_injection():
    """The ISSUE-6 widening: the fault-injection module rides the same
    service-directory sweep and must stay fully documented."""
    files = check_docstrings.collect(list(check_docstrings.DEFAULT_TARGETS))
    names = {f.name for f in files if "service" in str(f)}
    assert "faults.py" in names


def test_checker_flags_missing_docstrings(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text(
        "def public():\n    pass\n\n\n"
        "class Thing:\n    def method(self):\n        pass\n"
    )
    problems = check_docstrings.check_file(bad)
    codes = {p.split()[1] for p in problems}
    assert codes == {"D100", "D101", "D102", "D103"}


def test_checker_ignores_private_and_nested(tmp_path):
    ok = tmp_path / "ok.py"
    ok.write_text(
        '"""Module docstring."""\n\n\n'
        "def _private():\n    pass\n\n\n"
        "def public():\n"
        '    """Doc."""\n'
        "    def nested():\n        pass\n"
    )
    assert check_docstrings.check_file(ok) == []
