"""Extensions: integer islow IDCT and restart-marker parallel Huffman."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import EntropyError
from repro.data import synthetic_photo
from repro.jpeg import DecodeOptions, EncoderSettings, decode_jpeg, encode_jpeg, parse_jpeg
from repro.jpeg.decoder import component_tables_from_info
from repro.jpeg.idct import idct_2d_blocks
from repro.jpeg.idct_int import idct_2d_islow, samples_from_idct_islow
from repro.jpeg.parallel_huffman import (
    ParallelEntropyDecoder,
    split_restart_segments,
)


class TestIslowIdct:
    def test_close_to_float_reference(self):
        rng = np.random.default_rng(0)
        coeffs = rng.integers(-500, 500, (64, 8, 8)).astype(np.int32)
        a = idct_2d_islow(coeffs)
        b = idct_2d_blocks(coeffs)
        assert np.abs(a - b).max() < 1.0

    def test_samples_within_one_level_of_float(self):
        rng = np.random.default_rng(1)
        coeffs = rng.integers(-300, 300, (32, 8, 8)).astype(np.int32)
        ints = samples_from_idct_islow(idct_2d_islow(coeffs))
        floats = np.clip(np.rint(idct_2d_blocks(coeffs) + 128), 0,
                         255).astype(np.uint8)
        assert np.abs(ints.astype(int) - floats.astype(int)).max() <= 1

    def test_dc_only_flat(self):
        coeffs = np.zeros((1, 8, 8), dtype=np.int32)
        coeffs[0, 0, 0] = 64
        out = idct_2d_islow(coeffs)
        assert np.all(out == out[0, 0, 0])

    def test_decoder_accepts_islow_method(self, jpeg_422, ref_rgb_422):
        out = decode_jpeg(jpeg_422, DecodeOptions(idct_method="islow")).rgb
        # islow vs aan: at most 1 level per sample pre-color-conversion;
        # color conversion can amplify slightly
        assert np.abs(out.astype(int) - ref_rgb_422.astype(int)).max() <= 3
        assert (out != ref_rgb_422).mean() < 0.20


@pytest.fixture(scope="module")
def restart_jpeg():
    rgb = synthetic_photo(80, 112, seed=17, detail=0.6)
    data = encode_jpeg(rgb, EncoderSettings(quality=85, subsampling="4:2:2",
                                            restart_interval=3))
    return data


class TestSplitSegments:
    def test_segments_cover_all_mcus(self, restart_jpeg):
        info = parse_jpeg(restart_jpeg)
        geo = info.geometry
        segs = split_restart_segments(info.entropy_data, geo.total_mcus,
                                      info.restart_interval)
        assert sum(s.mcu_count for s in segs) == geo.total_mcus
        assert segs[0].byte_start == 0
        assert segs[-1].byte_stop == len(info.entropy_data)
        for a, b in zip(segs, segs[1:]):
            assert b.byte_start >= a.byte_stop + 2  # the RSTn marker gap
            assert b.mcu_start == a.mcu_start + a.mcu_count

    def test_interval_mcu_counts(self, restart_jpeg):
        info = parse_jpeg(restart_jpeg)
        segs = split_restart_segments(info.entropy_data,
                                      info.geometry.total_mcus, 3)
        assert all(s.mcu_count == 3 for s in segs[:-1])
        assert 1 <= segs[-1].mcu_count <= 3

    def test_requires_interval(self, restart_jpeg):
        info = parse_jpeg(restart_jpeg)
        with pytest.raises(EntropyError):
            split_restart_segments(info.entropy_data, 10, 0)


class TestParallelEntropyDecoder:
    @pytest.mark.parametrize("mode", ["4:4:4", "4:2:2", "4:2:0"])
    def test_bit_identical_to_sequential(self, mode):
        rgb = synthetic_photo(72, 104, seed=23, detail=0.7)
        data = encode_jpeg(rgb, EncoderSettings(quality=80, subsampling=mode,
                                                restart_interval=4))
        info = parse_jpeg(data)
        geo = info.geometry
        tables = component_tables_from_info(info)

        from repro.jpeg.entropy import EntropyDecoder
        seq = EntropyDecoder(geo, tables, info.restart_interval)
        seq.decode_all(info.entropy_data)

        par = ParallelEntropyDecoder(geo, tables, info.restart_interval)
        result = par.decode(info.entropy_data, cores=4)
        for a, b in zip(seq.coefficients.planes, result.coefficients.planes):
            assert (a == b).all()

    def test_multicore_speedup_modeled(self, restart_jpeg):
        info = parse_jpeg(restart_jpeg)
        par = ParallelEntropyDecoder(info.geometry,
                                     component_tables_from_info(info),
                                     info.restart_interval)
        r1 = par.decode(info.entropy_data, cores=1)
        r4 = par.decode(info.entropy_data, cores=4)
        assert r1.speedup == pytest.approx(1.0)
        assert 1.5 < r4.speedup <= 4.0
        assert r4.parallel_us < r1.parallel_us

    def test_requires_interval(self, restart_jpeg):
        info = parse_jpeg(restart_jpeg)
        with pytest.raises(EntropyError):
            ParallelEntropyDecoder(info.geometry,
                                   component_tables_from_info(info), 0)

    def test_full_decode_pixels_match(self, restart_jpeg):
        """Parallel entropy decode + parallel phase == reference decode."""
        info = parse_jpeg(restart_jpeg)
        ref = decode_jpeg(restart_jpeg)
        par = ParallelEntropyDecoder(info.geometry,
                                     component_tables_from_info(info),
                                     info.restart_interval)
        result = par.decode(info.entropy_data, cores=4)
        from repro.core.executors import cpu_parallel_span
        from repro.jpeg.decoder import quant_tables_from_info
        rgb = cpu_parallel_span(info.geometry, result.coefficients,
                                quant_tables_from_info(info),
                                0, info.geometry.mcu_rows)
        assert np.array_equal(rgb, ref.rgb)
