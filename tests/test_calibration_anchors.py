"""Calibration anchors: the stage-ratio facts the paper reports must hold
on the simulated platform (DESIGN.md §2's substitution contract).

All checks run on the paper's reference workload: a 2048x2048 4:2:2
image at a typical entropy density, in pricing mode (no pixel math).
"""

from __future__ import annotations

import pytest

from repro.core import DecodeMode, HeterogeneousDecoder, PreparedImage
from repro.gpusim import calibrate
from repro.evaluation import platforms

W = H = 2048
DENSITY = 0.22  # mid-range of Figure 7's x-axis


@pytest.fixture(scope="module")
def results():
    """All-mode results for the reference image on all three machines."""
    prep = PreparedImage.virtual(W, H, "4:2:2", DENSITY)
    out = {}
    for plat in platforms.ALL_PLATFORMS:
        dec = HeterogeneousDecoder.for_platform(plat)
        out[plat.name] = {m: dec.decode(prep, m) for m in DecodeMode}
    return out


class TestCpuAnchors:
    def test_simd_twice_as_fast_as_sequential(self, results):
        """Section 1: 'the SIMD-version decodes an image twice as fast as
        the sequential version on an Intel i7'."""
        r = results["GTX 560"]
        ratio = (r[DecodeMode.SEQUENTIAL].total_us
                 / r[DecodeMode.SIMD].total_us)
        assert 1.7 < ratio < 2.4

    def test_huffman_is_large_fraction_of_simd(self, results):
        """Section 4.5: Huffman ~ half the SIMD decode time (density-
        dependent; 35-55% across the Figure 7 range)."""
        r = results["GTX 560"][DecodeMode.SIMD]
        frac = r.breakdown["huffman"] / r.total_us
        assert 0.35 < frac < 0.55

    def test_huffman_rate_in_figure7_range(self):
        """Figure 7: 1-6 ns/pixel over densities 0.05-0.45."""
        for d in (0.05, 0.45):
            us = calibrate.huffman_time_us(W * H, int(d * W * H),
                                           platforms.GTX560.cpu)
            ns_per_px = us * 1e3 / (W * H)
            assert 0.8 < ns_per_px < 7.0


class TestGpuAnchors:
    def test_kernels_much_faster_than_simd_parallel_phase(self, results):
        """Section 6.1: kernel-only ~10x SIMD on GTX 560, ~13.7x on
        GTX 680 (we accept 6-20x: the shape is 'order of magnitude')."""
        for name, lo in (("GTX 560", 5.0), ("GTX 680", 7.0)):
            r = results[name]
            simd_par = (r[DecodeMode.SIMD].total_us
                        - r[DecodeMode.SIMD].breakdown["huffman"])
            kernels = r[DecodeMode.GPU].breakdown.get("kernel", 0.0)
            assert simd_par / kernels > lo

    def test_transfers_erode_gpu_advantage(self, results):
        """Section 6.1: with transfers the advantage drops to ~2.6x
        (GTX 560) / ~4.3x (GTX 680)."""
        for name, lo, hi in (("GTX 560", 1.8, 4.5), ("GTX 680", 2.5, 6.5)):
            r = results[name]
            simd_par = (r[DecodeMode.SIMD].total_us
                        - r[DecodeMode.SIMD].breakdown["huffman"])
            b = r[DecodeMode.GPU].breakdown
            gpu_par = (b.get("kernel", 0) + b.get("write", 0)
                       + b.get("read", 0))
            assert lo < simd_par / gpu_par < hi

    def test_gt430_gpu_mode_slower_than_simd(self, results):
        """Section 6.1: 23% slow-down on GT 430 (we accept 10-50%)."""
        r = results["GT 430"]
        ratio = r[DecodeMode.GPU].total_us / r[DecodeMode.SIMD].total_us
        assert 1.10 < ratio < 1.55


class TestModeOrdering:
    def test_pps_best_everywhere(self, results):
        """Section 6.2: 'PPS achieves the highest performance on all
        machines'."""
        for name, modes in results.items():
            best = min(modes.values(), key=lambda r: r.total_us)
            assert modes[DecodeMode.PPS].total_us <= best.total_us * 1.02, name

    def test_pipeline_beats_plain_gpu(self, results):
        """Section 6.2: 'pipelined execution is always faster than a
        single large GPU kernel invocation'."""
        for name, modes in results.items():
            assert (modes[DecodeMode.PIPELINE].total_us
                    <= modes[DecodeMode.GPU].total_us * 1.001), name

    def test_partitioning_beats_simd_on_all_machines(self, results):
        """Figure 10 / Tables 2-3: SPS and PPS > 1x over SIMD even on
        the weak GT 430."""
        for name, modes in results.items():
            simd = modes[DecodeMode.SIMD].total_us
            assert modes[DecodeMode.SPS].total_us < simd, name
            assert modes[DecodeMode.PPS].total_us < simd, name

    def test_speedups_in_paper_band(self, results):
        """Table 2 at the reference size: PPS ~1.5x / ~2.3x / ~2.5x on
        GT 430 / GTX 560 / GTX 680 (wide bands: single image, not the
        corpus mean)."""
        bands = {"GT 430": (1.1, 2.0), "GTX 560": (1.8, 2.9),
                 "GTX 680": (1.9, 3.2)}
        for name, (lo, hi) in bands.items():
            modes = results[name]
            speedup = (modes[DecodeMode.SIMD].total_us
                       / modes[DecodeMode.PPS].total_us)
            assert lo < speedup < hi, f"{name}: {speedup:.2f}"

    def test_gtx680_fastest_gtx430_slowest(self, results):
        pps = {n: r[DecodeMode.PPS].total_us for n, r in results.items()}
        assert pps["GTX 680"] < pps["GTX 560"] < pps["GT 430"]


class TestAmdahlAnchor:
    def test_pps_near_theoretical_bound(self, results):
        """Figure 11: PPS reaches ~88% of Ttotal/THuff on GTX 680 at
        large sizes (we accept >70%)."""
        r = results["GTX 680"]
        simd = r[DecodeMode.SIMD]
        bound = simd.total_us / simd.breakdown["huffman"]
        achieved = simd.total_us / r[DecodeMode.PPS].total_us
        assert achieved / bound > 0.70
        assert achieved / bound <= 1.0 + 1e-9
