"""Fault tolerance (PR 6): fault-injection plans, self-healing worker
pools with bounded retry, lane circuit breakers, per-request deadlines
with EDF batch forming, and the end-to-end recovery contracts through
:class:`~repro.service.session.DecodeSession`, the HTTP front end and
the ``repro serve`` CLI's graceful SIGTERM drain."""

from __future__ import annotations

import json
import os
import re
import signal
import subprocess
import sys
import threading
import time
import urllib.error
import urllib.request
from pathlib import Path

import numpy as np
import pytest

from repro.errors import (
    DeadlineExceededError,
    ServiceError,
    WorkerCrashError,
)
from repro.jpeg import EncoderSettings, decode_jpeg, encode_jpeg
from repro.service import (
    BatchDecoder,
    DecodeHTTPServer,
    DecodeService,
    DecodeSession,
    FaultDirective,
    FaultPlan,
    ImageRequest,
    LaneBreakerBoard,
    ModelScheduler,
    apply_dispatch_fault,
    schedule_lpt,
    schedule_roundrobin,
    shm_available,
)
from repro.service.batch import ImageResult

REPO_ROOT = Path(__file__).resolve().parent.parent


def shm_files(prefix: str = "repro-") -> list[str]:
    """Residual /dev/shm entries created by this subsystem."""
    try:
        return sorted(f for f in os.listdir("/dev/shm")
                      if f.startswith(prefix))
    except FileNotFoundError:  # non-Linux: nothing to check
        return []


@pytest.fixture(scope="module")
def blob(small_rgb):
    return encode_jpeg(small_rgb, EncoderSettings(
        quality=85, subsampling="4:2:2"))


@pytest.fixture(scope="module")
def oracle(blob):
    return decode_jpeg(blob).rgb


# ---------------------------------------------------------------------------
# FaultPlan: the parent-side decision table.
# ---------------------------------------------------------------------------

class TestFaultPlan:
    def test_validation(self):
        with pytest.raises(ServiceError):
            FaultPlan(kill_every=0)
        with pytest.raises(ServiceError):
            FaultPlan(exception_every=-3)
        with pytest.raises(ServiceError):
            FaultPlan(kill_rate=1.5)

    def test_at_ordinals_fire_exactly_once(self):
        plan = FaultPlan(kill_at={1}, exception_at={3})
        kinds = [getattr(plan.next_directive(), "kind", None)
                 for _ in range(5)]
        assert kinds == [None, "kill", None, "exception", None]
        assert plan.dispatches == 5
        assert plan.injected["kill"] == 1
        assert plan.injected["exception"] == 1

    def test_every_period(self):
        plan = FaultPlan(shm_fail_every=3)
        kinds = [getattr(plan.next_directive(), "kind", None)
                 for _ in range(9)]
        assert kinds == [None, None, "shm_fail"] * 3

    def test_severity_order_kill_wins(self):
        plan = FaultPlan(kill_at={0}, exception_at={0}, shm_fail_at={0})
        assert plan.next_directive().kind == "kill"

    def test_lane_delay_needs_a_lane(self):
        plan = FaultPlan(delay_lanes={"gtx560-gpu": 0.25})
        assert plan.next_directive() is None
        assert plan.next_directive(lane="gtx560-simd") is None
        directive = plan.next_directive(lane="gtx560-gpu")
        assert directive.kind == "delay"
        assert directive.delay_s == 0.25

    def test_kill_rate_is_seed_deterministic(self):
        draw = lambda seed: [  # noqa: E731 - tiny local helper
            getattr(FaultPlan(kill_rate=0.3, seed=seed).next_directive(),
                    "kind", None)]
        runs = [[getattr(p.next_directive(), "kind", None)
                 for _ in range(50)]
                for p in (FaultPlan(kill_rate=0.3, seed=7),
                          FaultPlan(kill_rate=0.3, seed=7))]
        assert runs[0] == runs[1]
        assert "kill" in runs[0]
        assert draw(0) is not None  # exercise the helper; lint appeasement

    def test_snapshot(self):
        plan = FaultPlan(kill_at={0})
        plan.next_directive()
        snap = plan.snapshot()
        assert snap["dispatches"] == 1
        assert snap["injected"]["kill"] == 1

    def test_apply_in_main_process_raises_crash_error(self):
        """Thread/serial backends simulate the kill as an exception on
        the future's infrastructure path, never a real SIGKILL."""
        with pytest.raises(WorkerCrashError):
            apply_dispatch_fault(FaultDirective(kind="kill"))
        apply_dispatch_fault(None)  # no directive, no effect
        apply_dispatch_fault(FaultDirective(kind="exception"))  # deeper scope


# ---------------------------------------------------------------------------
# LaneBreakerBoard: the three-state machine, on a fake clock.
# ---------------------------------------------------------------------------

class FakeClock:
    """Steppable monotonic clock for deterministic cooldown tests."""

    def __init__(self):
        self.now = 100.0

    def __call__(self):
        return self.now


class TestLaneBreakerBoard:
    def test_validation(self):
        with pytest.raises(ServiceError):
            LaneBreakerBoard(threshold=0)
        with pytest.raises(ServiceError):
            LaneBreakerBoard(cooldown_s=-1)

    def test_trip_after_threshold_consecutive_failures(self):
        board = LaneBreakerBoard(threshold=3, clock=FakeClock())
        assert board.record("gpu", ok=False) is False
        assert board.record("gpu", ok=False) is False
        assert board.record("gpu", ok=True) is False   # success resets
        assert board.record("gpu", ok=False) is False
        assert board.record("gpu", ok=False) is False
        assert board.record("gpu", ok=False) is True   # the trip edge
        assert board.state("gpu") == "open"
        assert board.limit("gpu") == 0
        assert board.trips() == 1

    def test_cooldown_half_open_canary_and_recovery(self):
        clock = FakeClock()
        board = LaneBreakerBoard(threshold=1, cooldown_s=5.0, clock=clock)
        assert board.record("gpu", ok=False) is True
        assert board.limit("gpu") == 0            # still cooling
        clock.now += 5.0
        assert board.limit("gpu") == 1            # half-open probe
        assert board.state("gpu") == "half_open"
        board.record("gpu", ok=True)              # canary succeeds
        assert board.state("gpu") == "closed"
        assert board.limit("gpu") is None
        assert board.snapshot()["gpu"]["recoveries"] == 1

    def test_half_open_failure_retrips(self):
        clock = FakeClock()
        board = LaneBreakerBoard(threshold=1, cooldown_s=5.0, clock=clock)
        board.record("gpu", ok=False)
        clock.now += 5.0
        assert board.limit("gpu") == 1
        assert board.record("gpu", ok=False) is True   # canary dies
        assert board.state("gpu") == "open"
        assert board.limit("gpu") == 0                 # fresh cooldown
        assert board.trips() == 2

    def test_untracked_lane_is_closed_and_unlimited(self):
        board = LaneBreakerBoard()
        assert board.state("never-seen") == "closed"
        assert board.limit("never-seen") is None
        assert board.limits(["a", "b"]) == {"a": None, "b": None}

    def test_snapshot_shows_cooldown_remaining(self):
        clock = FakeClock()
        board = LaneBreakerBoard(threshold=1, cooldown_s=10.0, clock=clock)
        board.record("gpu", ok=False)
        clock.now += 4.0
        snap = board.snapshot()["gpu"]
        assert snap["state"] == "open"
        assert snap["cooldown_remaining_s"] == pytest.approx(6.0)


# ---------------------------------------------------------------------------
# Breaker caps inside the placement policies.
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def scheduler_and_pricings(small_rgb):
    """A model scheduler plus priced images for placement tests."""
    sched = ModelScheduler(policy="model")
    blobs = [encode_jpeg(small_rgb, EncoderSettings(
        quality=q, subsampling="4:2:2")) for q in (70, 80, 90)]
    return sched, sched.price(blobs)


class TestBreakerAwarePlacement:
    def test_open_lane_excluded_from_lpt(self, scheduler_and_pricings):
        sched, pricings = scheduler_and_pricings
        gpu = next(l.name for l in sched.executors if l.kind == "gpu")
        simd = next(l.name for l in sched.executors if l.kind == "simd")
        schedule = schedule_lpt(pricings, sched.executors,
                                lane_limits={gpu: 0})
        placed = [a.executor.name for a in schedule.assignments
                  if a.executor is not None]
        assert placed and all(name == simd for name in placed)
        assert schedule.lane_limits == {gpu: 0}

    def test_half_open_lane_gets_exactly_one_canary(
            self, scheduler_and_pricings):
        sched, pricings = scheduler_and_pricings
        gpu = next(l.name for l in sched.executors if l.kind == "gpu")
        schedule = schedule_lpt(pricings, sched.executors,
                                lane_limits={gpu: 1})
        on_gpu = [a for a in schedule.assignments
                  if a.executor is not None and a.executor.name == gpu]
        assert len(on_gpu) <= 1
        assert len([a for a in schedule.assignments
                    if a.executor is not None]) == len(pricings)

    def test_all_lanes_open_degrades_to_unassigned(
            self, scheduler_and_pricings):
        sched, pricings = scheduler_and_pricings
        limits = {l.name: 0 for l in sched.executors}
        schedule = schedule_lpt(pricings, sched.executors,
                                lane_limits=limits)
        assert all(a.executor is None and not a.split
                   for a in schedule.assignments)

    def test_roundrobin_skips_capped_lanes(self, scheduler_and_pricings):
        sched, pricings = scheduler_and_pricings
        gpu = next(l.name for l in sched.executors if l.kind == "gpu")
        schedule = schedule_roundrobin(pricings, sched.executors,
                                       lane_limits={gpu: 0})
        placed = [a.executor.name for a in schedule.assignments
                  if a.executor is not None]
        assert placed and gpu not in placed

    def test_observe_trips_breaker_and_resets_feedback(self, small_rgb):
        """Consecutive infra failures on one lane trip its breaker via
        ModelScheduler.observe, which also wipes the lane's EWMA scale;
        completed decode *errors* never count against the lane."""
        clock = FakeClock()
        sched = ModelScheduler(
            policy="model",
            breakers=LaneBreakerBoard(threshold=2, cooldown_s=5.0,
                                      clock=clock))
        blobs = [encode_jpeg(small_rgb, EncoderSettings(
            quality=q, subsampling="4:2:2")) for q in (70, 90)]
        schedule = sched.plan([ImageRequest(data=b) for b in blobs])
        lanes = [a.executor.name for a in schedule.assignments
                 if a.executor is not None]
        assert lanes
        victim = lanes[0]
        sched.feedback.observe(victim, 100.0, 150.0)  # learned scale
        crash = [ImageResult(request_id=i, ok=False,
                             error_type="WorkerCrashError",
                             error="boom", infra_failure=True)
                 for i in range(len(blobs))]
        # A plain decode error keeps the breaker closed.
        bad_bytes = [ImageResult(request_id=i, ok=False,
                                 error_type="JpegError", error="corrupt")
                     for i in range(len(blobs))]
        sched.observe(schedule, bad_bytes)
        assert sched.breakers.state(victim) == "closed"
        # Infra failures trip it and reset the learned scale.
        rounds = 0
        while sched.breakers.state(victim) != "open":
            sched.observe(schedule, crash)
            rounds += 1
            assert rounds <= 4
        assert sched.feedback.scale(victim) == 1.0
        assert sched.snapshot()["breakers"][victim]["state"] == "open"
        # Next plan excludes the tripped lane entirely.
        replanned = sched.plan([ImageRequest(data=b) for b in blobs])
        assert victim not in [a.executor.name
                              for a in replanned.assignments
                              if a.executor is not None]
        assert replanned.lane_limits[victim] == 0
        # After the cooldown the lane is probed again (half-open cap 1).
        clock.now += 5.0
        probed = sched.plan([ImageRequest(data=b) for b in blobs])
        assert probed.lane_limits[victim] == 1


# ---------------------------------------------------------------------------
# Self-healing + retry through BatchDecoder.
# ---------------------------------------------------------------------------

class TestSelfHealingRetry:
    def test_validation(self):
        with pytest.raises(ServiceError):
            BatchDecoder(backend="serial", retry_budget=-1)
        with pytest.raises(ServiceError):
            BatchDecoder(backend="serial", retry_backoff_s=-0.1)

    def test_injected_kill_is_retried_and_healed(self, blob, oracle):
        """A kill on the first dispatch surfaces as an infrastructure
        failure; the retry decodes bit-identically on attempt 2."""
        plan = FaultPlan(kill_at={0})
        with BatchDecoder(workers=2, backend="thread",
                          retry_backoff_s=0.0, faults=plan) as dec:
            batch = dec.decode_batch([blob, blob])
        assert batch.ok, [(r.error_type, r.error) for r in batch]
        assert batch.retries >= 1
        assert dec.retries_total == batch.retries
        assert plan.injected["kill"] == 1
        attempts = sorted(r.attempts for r in batch.results)
        assert attempts[-1] == 2
        for r in batch.results:
            assert np.array_equal(r.rgb, oracle)

    def test_process_pool_is_rebuilt_in_place(self, blob, oracle):
        """A real SIGKILL breaks the whole process pool; the decoder
        rebuilds it and the batch still completes without a restart."""
        plan = FaultPlan(kill_at={0})
        with BatchDecoder(workers=1, backend="process",
                          retry_backoff_s=0.0, faults=plan) as dec:
            batch = dec.decode_batch([blob])
            assert batch.ok, [(r.error_type, r.error) for r in batch]
            assert dec.rebuilds >= 1
            assert np.array_equal(batch.results[0].rgb, oracle)
            # The healed pool keeps serving: a fault-free second batch.
            again = dec.decode_batch([blob])
            assert again.ok
            assert np.array_equal(again.results[0].rgb, oracle)

    def test_budget_exhaustion_is_a_terminal_infra_failure(self, blob):
        """With no retry budget a crashed dispatch resolves ok=False /
        infra_failure=True — it never raises out of decode_batch and
        never masquerades as a decode error."""
        plan = FaultPlan(kill_every=1)  # every dispatch dies
        with BatchDecoder(workers=2, backend="thread", retry_budget=0,
                          retry_backoff_s=0.0, faults=plan) as dec:
            batch = dec.decode_batch([blob])
        result = batch.results[0]
        assert not result.ok
        assert result.infra_failure
        assert result.error_type == "WorkerCrashError"
        assert batch.retries == 0

    def test_decode_exceptions_are_isolated_and_never_retried(self, blob,
                                                              oracle):
        """An arbitrary exception inside the decode stays on that
        image's result (broadened catch) and consumes no retry budget —
        decode errors are properties of the bytes."""
        plan = FaultPlan(exception_at={0})
        with BatchDecoder(workers=2, backend="thread",
                          retry_backoff_s=0.0, faults=plan) as dec:
            batch = dec.decode_batch([blob, blob])
        failed = [r for r in batch.results if not r.ok]
        assert len(failed) == 1
        assert failed[0].error_type == "RuntimeError"
        assert not failed[0].infra_failure
        assert batch.retries == 0
        survivor = next(r for r in batch.results if r.ok)
        assert np.array_equal(survivor.rgb, oracle)

    def test_garbage_bytes_resolve_not_raise(self):
        """The broadened catch: any input, however hostile, resolves as
        an ok=False result with the failure's type recorded."""
        with BatchDecoder(workers=2, backend="thread") as dec:
            batch = dec.decode_batch(
                [b"", b"\x00" * 64, b"\xff\xd8\xff\xd9"])
        assert all(not r.ok for r in batch.results)
        assert all(r.error_type for r in batch.results)
        assert all(not r.infra_failure for r in batch.results)

    @pytest.mark.skipif(not shm_available(),
                        reason="POSIX shared memory unavailable")
    def test_shm_publish_failure_falls_back_to_pickle(self, blob, oracle):
        """A failing shared-memory publish must not fail the decode:
        the worker falls back to the pickle pipe and the arena stays
        leak-free."""
        plan = FaultPlan(shm_fail_every=1)
        with BatchDecoder(workers=2, backend="process", transport="shm",
                          shm_min_bytes=0, faults=plan) as dec:
            batch = dec.decode_batch([blob, blob])
            assert batch.ok, [(r.error_type, r.error) for r in batch]
            assert batch.stats.bytes_pickle > 0
            for r in batch.results:
                assert np.array_equal(r.rgb, oracle)
            assert dec.arena.leaked() == []
        assert not shm_files()


# ---------------------------------------------------------------------------
# Deadlines: validation, shedding, EDF ordering.
# ---------------------------------------------------------------------------

class TestDeadlines:
    def test_validation(self):
        with pytest.raises(ServiceError):
            DecodeSession(backend="serial", default_deadline_ms=0,
                          pump=False)
        with DecodeService(backend="serial") as svc:
            with pytest.raises(ServiceError):
                svc.submit(ImageRequest(data=b"x", deadline_ms=-5))

    def test_expired_request_is_shed_with_deadline_error(self, blob,
                                                         oracle):
        """A request whose deadline passes before batch forming resolves
        with DeadlineExceededError; fresh requests still decode."""
        with DecodeSession(backend="serial", pump=False) as session:
            doomed = session.submit(ImageRequest(data=blob, deadline_ms=5))
            fresh = session.submit(blob)
            time.sleep(0.03)
            batch = session.run_once()
            assert batch is not None
            with pytest.raises(DeadlineExceededError):
                doomed.result(timeout=0)
            result = fresh.result(timeout=0)
            assert result.ok
            assert np.array_equal(result.rgb, oracle)
            snap = session.stats_snapshot()
            assert snap["faults"]["deadline_expired"] == 1

    def test_default_deadline_applies_to_bare_bytes(self, blob):
        with DecodeSession(backend="serial", default_deadline_ms=5,
                           pump=False) as session:
            handle = session.submit(blob)
            time.sleep(0.03)
            assert session.run_once() is None  # everything was shed
            with pytest.raises(DeadlineExceededError):
                handle.result(timeout=0)

    def test_batches_form_earliest_deadline_first(self, blob):
        """Tightest deadline decodes first; deadline-free requests keep
        FIFO order after every deadlined one."""
        with DecodeSession(backend="serial", max_batch=8,
                           pump=False) as session:
            loose = session.submit(
                ImageRequest(data=blob, deadline_ms=60_000))
            bare = session.submit(blob)
            tight = session.submit(
                ImageRequest(data=blob, deadline_ms=5_000))
            batch = session.run_once()
            assert [r.request_id for r in batch.results] == [
                tight.request_id, loose.request_id, bare.request_id]
            assert all(r.ok for r in batch.results)


# ---------------------------------------------------------------------------
# End-to-end recovery through the session and HTTP front ends.
# ---------------------------------------------------------------------------

class TestEndToEndRecovery:
    @pytest.mark.skipif(not shm_available(),
                        reason="POSIX shared memory unavailable")
    def test_killed_worker_mid_batch_all_handles_resolve_once(self, blob,
                                                              oracle):
        """The chaos regression contract: kill a process worker
        mid-batch through the pumped session — every handle resolves
        exactly once with a successful, bit-identical result, the pool
        is rebuilt without a service restart, and /dev/shm is clean."""
        plan = FaultPlan(kill_at={1})
        resolved: dict[int, int] = {}
        lock = threading.Lock()

        def count(handle):
            with lock:
                resolved[handle.request_id] = \
                    resolved.get(handle.request_id, 0) + 1

        with DecodeSession(max_batch=4, max_delay_ms=50.0,
                           workers=2, backend="process", transport="shm",
                           shm_min_bytes=0, retry_backoff_s=0.0,
                           faults=plan) as session:
            handles = [session.submit(blob) for _ in range(4)]
            for h in handles:
                h.add_done_callback(count)
            results = [h.result(timeout=120) for h in handles]
            for r in results:
                assert r.ok, (r.error_type, r.error)
                assert np.array_equal(r.rgb, oracle)
            assert session.decoder.rebuilds >= 1
            snap = session.stats_snapshot()
            assert snap["faults"]["retries"] >= 1
            assert snap["faults"]["pool_rebuilds"] >= 1
            assert snap["faults"]["infra_failures"] == 0
            # The healed pool serves the next batch bit-identically.
            again = session.submit(blob).result(timeout=120)
            assert again.ok and np.array_equal(again.rgb, oracle)
            assert session.decoder.arena.leaked() == []
        time.sleep(0.05)  # done callbacks ran on resolution; settle
        assert sorted(resolved) == sorted(h.request_id for h in handles)
        assert all(n == 1 for n in resolved.values())
        assert not shm_files()

    def test_http_recovers_from_killed_worker(self, blob, oracle):
        """The same contract over a socket: the response of a request
        whose first dispatch died is still 200 and bit-identical."""
        plan = FaultPlan(kill_at={0})
        srv = DecodeHTTPServer(port=0, backend="process", workers=1,
                               max_batch=2, max_delay_ms=1.0,
                               retry_backoff_s=0.0, faults=plan)
        thread = threading.Thread(target=srv.serve_forever, daemon=True)
        thread.start()
        try:
            req = urllib.request.Request(srv.url + "/decode", data=blob,
                                         method="POST")
            with urllib.request.urlopen(req, timeout=120) as resp:
                assert resp.status == 200
                body = resp.read()
            magic, dims, maxval, pixels = body.split(b"\n", 3)
            h, w = oracle.shape[:2]
            assert dims == b"%d %d" % (w, h)
            assert np.array_equal(
                np.frombuffer(pixels, dtype=np.uint8).reshape(h, w, 3),
                oracle)
            with urllib.request.urlopen(srv.url + "/stats",
                                        timeout=30) as resp:
                stats = json.load(resp)
            assert stats["faults"]["retries"] >= 1
            assert stats["faults"]["pool_rebuilds"] >= 1
            assert stats["retry_budget"] >= 1
        finally:
            srv.shutdown()
            thread.join(timeout=30)
            srv.close()

    def test_http_deadline_maps_to_504(self, blob):
        """X-Deadline-Ms: an already-expired deadline answers 504 with
        Retry-After; an invalid header answers 400."""
        srv = DecodeHTTPServer(port=0, backend="thread", workers=2,
                               max_batch=4, max_delay_ms=1.0)
        thread = threading.Thread(target=srv.serve_forever, daemon=True)
        thread.start()
        try:
            req = urllib.request.Request(
                srv.url + "/decode", data=blob, method="POST",
                headers={"X-Deadline-Ms": "0.0001"})
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(req, timeout=60)
            assert excinfo.value.code == 504
            assert excinfo.value.headers["Retry-After"] == "1"
            body = json.load(excinfo.value)
            assert "deadline" in body["error"]

            bad = urllib.request.Request(
                srv.url + "/decode", data=blob, method="POST",
                headers={"X-Deadline-Ms": "soon"})
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(bad, timeout=60)
            assert excinfo.value.code == 400

            ok = urllib.request.Request(
                srv.url + "/decode?format=json", data=blob, method="POST",
                headers={"X-Deadline-Ms": "60000"})
            with urllib.request.urlopen(ok, timeout=60) as resp:
                assert resp.status == 200
                assert json.load(resp)["ok"] is True
        finally:
            srv.shutdown()
            thread.join(timeout=30)
            srv.close()


# ---------------------------------------------------------------------------
# Graceful drain of the serve CLI.
# ---------------------------------------------------------------------------

class TestServeGracefulDrain:
    @pytest.mark.parametrize("sig", [signal.SIGTERM, signal.SIGINT])
    def test_signal_drains_and_exits_zero(self, blob, sig):
        """SIGTERM/SIGINT stop the accept loop, drain accepted work and
        exit 0 with the summary printed."""
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src")
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "serve", "--port", "0",
             "--backend", "thread", "--workers", "2"],
            env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE,
            text=True)
        try:
            banner = proc.stdout.readline()
            match = re.search(r"http://127\.0\.0\.1:(\d+)", banner)
            assert match, banner
            url = f"http://127.0.0.1:{match.group(1)}"
            proc.stdout.readline()  # endpoints line
            req = urllib.request.Request(url + "/decode", data=blob,
                                         method="POST")
            with urllib.request.urlopen(req, timeout=60) as resp:
                assert resp.status == 200
            proc.send_signal(sig)
            rc = proc.wait(timeout=60)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=30)
        out, err = proc.stdout.read(), proc.stderr.read()
        assert rc == 0, (rc, out, err)
        assert "draining" in err
        assert "summary:" in out
