"""Performance model fitting, persistence and prediction accuracy."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ModelError, ProfilingError
from repro.core import PerformanceModel, profile_platform
from repro.core.profiling import (
    TrainingImage,
    default_training_grid,
    ProfilingReport,
)
from repro.gpusim import calibrate
from repro.evaluation import platforms


@pytest.fixture(scope="module")
def report560() -> ProfilingReport:
    return profile_platform(platforms.GTX560, "4:2:2", full_report=True)


@pytest.fixture(scope="module")
def model560(report560) -> PerformanceModel:
    return report560.model


class TestTrainingGrid:
    def test_grid_covers_space(self):
        grid = default_training_grid()
        assert len(grid) >= 50
        widths = {t.width for t in grid}
        densities = {t.density for t in grid}
        assert len(widths) >= 5 and len(densities) >= 5

    def test_empty_corpus_rejected(self):
        with pytest.raises(ProfilingError):
            profile_platform(platforms.GTX560, "4:2:2", training=[])

    def test_unsupported_subsampling_rejected(self):
        with pytest.raises(ProfilingError):
            profile_platform(platforms.GTX560, "4:2:0")


class TestFittedModel:
    def test_huff_rate_matches_calibration(self, model560):
        """Eq 4 fit must reproduce the simulator's Huffman times."""
        for d in (0.05, 0.15, 0.3, 0.45):
            w = h = 1024
            expected = calibrate.huffman_time_us(
                w * h, int(d * w * h), platforms.GTX560.cpu)
            assert model560.t_huff(w, h, d) == pytest.approx(expected, rel=0.05)

    def test_p_cpu_matches_calibration(self, model560):
        for (w, h) in ((512, 512), (1024, 768), (2048, 1536)):
            expected = calibrate.cpu_parallel_time_us(
                w, h, "4:2:2", platforms.GTX560.cpu, simd=True)
            assert model560.p_cpu(w, h) == pytest.approx(expected, rel=0.05)

    def test_p_cpu_seq_slower_than_simd(self, model560):
        assert (model560.p_cpu(1024, 1024, simd=False)
                > 2 * model560.p_cpu(1024, 1024, simd=True))

    def test_p_gpu_positive_and_monotone(self, model560):
        small = model560.p_gpu(512, 256)
        large = model560.p_gpu(2048, 2048)
        assert 0 < small < large

    def test_zero_rows_cost_nothing(self, model560):
        assert model560.p_cpu(1024, 0) == 0.0
        assert model560.p_gpu(1024, 0) == 0.0
        assert model560.t_dispatch(1024, 0) == 0.0
        assert model560.t_huff(1024, 0, 0.3) == 0.0

    def test_totals_are_sums(self, model560):
        w, h, d = 800, 600, 0.2
        assert model560.total_cpu(w, h, d) == pytest.approx(
            model560.t_huff(w, h, d) + model560.p_cpu(w, h))
        assert model560.total_gpu(w, h, d) == pytest.approx(
            model560.t_huff(w, h, d) + model560.p_gpu(w, h))

    def test_huff_linear_in_pixels(self, model560):
        """THuff = rate(d) * w * h exactly (Eq 4 structure)."""
        d = 0.2
        t1 = model560.t_huff(1000, 500, d)
        t2 = model560.t_huff(1000, 1000, d)
        assert t2 == pytest.approx(2 * t1, rel=1e-9)


class TestPersistence:
    def test_save_load_roundtrip(self, model560, tmp_path):
        path = tmp_path / "model.json"
        model560.save(path)
        clone = PerformanceModel.load(path)
        assert clone.platform_name == model560.platform_name
        assert clone.chunk_mcu_rows == model560.chunk_mcu_rows
        assert clone.workgroup_blocks == model560.workgroup_blocks
        for args in ((512, 512), (1333, 777)):
            assert clone.p_cpu(*args) == pytest.approx(model560.p_cpu(*args))
            assert clone.p_gpu(*args) == pytest.approx(model560.p_gpu(*args))
        assert clone.t_huff(640, 480, 0.22) == pytest.approx(
            model560.t_huff(640, 480, 0.22))

    def test_missing_field_rejected(self):
        with pytest.raises(ModelError):
            PerformanceModel.from_dict({"platform_name": "x"})


class TestReport:
    def test_records_cover_training(self, report560):
        assert len(report560.records) == len(default_training_grid())

    def test_workgroup_sweep_has_all_candidates(self, report560):
        assert set(report560.workgroup_sweep) == {4, 8, 16, 32}
        assert report560.model.workgroup_blocks in (16, 32, 64, 128)

    def test_chunk_selected_from_ladder(self, report560):
        assert report560.model.chunk_mcu_rows >= 1
        assert report560.chunk_sweep  # entries recorded

    def test_prediction_r2_high(self, report560):
        """The fitted closed forms explain the profiled data (R^2 > 0.99)."""
        model = report560.model
        for attr, predict in (
            ("p_cpu_simd_us", lambda r: model.p_cpu(r.width, r.height)),
            ("p_gpu_us", lambda r: model.p_gpu(r.width, r.height)),
        ):
            actual = np.array([getattr(r, attr) for r in report560.records])
            pred = np.array([predict(r) for r in report560.records])
            ss_res = ((actual - pred) ** 2).sum()
            ss_tot = ((actual - actual.mean()) ** 2).sum()
            assert 1 - ss_res / ss_tot > 0.99


class TestCrossPlatform:
    def test_gpu_ordering_matches_hardware(self):
        m430 = profile_platform(platforms.GT430, "4:2:2")
        m680 = profile_platform(platforms.GTX680, "4:2:2")
        assert m430.p_gpu(2048, 2048) > m680.p_gpu(2048, 2048)

    def test_444_vs_422_cpu_cost(self):
        m422 = profile_platform(platforms.GTX560, "4:2:2")
        m444 = profile_platform(platforms.GTX560, "4:4:4")
        # 4:4:4 has 1.5x the IDCT samples but no upsampling; both near each
        # other, 4:4:4 slightly heavier on the CPU in our calibration
        a = m444.p_cpu(1024, 1024)
        b = m422.p_cpu(1024, 1024)
        assert a == pytest.approx(b, rel=0.35)
