"""Speculative self-synchronizing parallel Huffman decode: the
bit-identity + hostile-input proof matrix.

The speculative path (:mod:`repro.jpeg.speculative`) must be
*invisible* except for speed: every decode — converged, misspeculated
and repaired, or fully fallen back — returns coefficients bit-identical
to the sequential oracle, and hostile bytes raise the oracle's exact
error.  These tests prove that over a randomized image matrix
(generators x subsamplings x qualities x chunk counts), targeted
convergence-failure injection, and property-based hostile-input fuzzing
where the fast and reference engines must agree error-for-error.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.synth import GENERATORS, marker_free_corpus
from repro.jpeg import (
    DecodeOptions,
    EncoderSettings,
    decode_jpeg,
    encode_jpeg,
    parse_jpeg,
)
from repro.jpeg.decoder import component_tables_from_info
from repro.jpeg.fast_entropy import FastEntropyDecoder, destuff_scan
from repro.jpeg.parallel_huffman import SpeculativeEntropyDecoder
from repro.jpeg.speculative import (
    MIN_CHUNK_BYTES,
    SpeculativeChunk,
    chunk_mcu_budget,
    decode_coefficients_speculative,
    decode_speculative_chunk,
    make_repairer,
    plan_chunks,
    speculative_eligible,
    stitch_chunks,
)


def encode(rgb, sub="4:2:0", quality=85, dri=0) -> bytes:
    return encode_jpeg(rgb, EncoderSettings(
        quality=quality, subsampling=sub, restart_interval=dri))


def oracle_coefficients(info):
    """The sequential fast-engine decode — the bit-identity reference."""
    decoder = FastEntropyDecoder(
        info.geometry, component_tables_from_info(info),
        info.restart_interval)
    decoder.start(info.entropy_data)
    decoder.decode_mcu_rows(info.geometry.mcu_rows)
    return decoder.coefficients


def assert_identical(got, want, context=""):
    for ci, (g, w) in enumerate(zip(got.planes, want.planes)):
        assert np.array_equal(g, w), (
            f"component {ci} diverges from the sequential oracle "
            f"({np.count_nonzero(np.any(g != w, axis=(1, 2)))} blocks) "
            f"{context}")


# ---------------------------------------------------------------------------
# Chunk planning invariants.
# ---------------------------------------------------------------------------

class TestPlanChunks:
    @given(n=st.integers(1, 50_000), count=st.integers(1, 32),
           overlap=st.integers(8, 4096))
    @settings(max_examples=150, deadline=None)
    def test_partition_invariants(self, n, count, overlap):
        chunks = plan_chunks(n, count, overlap)
        assert chunks[0].start == 0
        assert chunks[-1].stop == n
        assert chunks[-1].last and chunks[-1].slice_stop == n
        for a, b in zip(chunks, chunks[1:]):
            assert a.stop == b.start, "chunks must tile the payload"
            assert not a.last
            # The stitcher's ordering invariant: chunk k's convergence
            # window closes before chunk k+1's does.
            assert a.window_stop <= b.window_stop
            assert a.stop <= a.window_stop <= a.slice_stop <= n
        if len(chunks) > 1:
            assert all(c.stop - c.start >= MIN_CHUNK_BYTES for c in chunks)

    def test_count_clamped_by_min_bytes(self):
        chunks = plan_chunks(MIN_CHUNK_BYTES * 3 + 1, 64)
        assert len(chunks) == 3

    def test_single_chunk_degenerates(self):
        (c,) = plan_chunks(10, 1)
        assert (c.start, c.stop, c.window_stop, c.slice_stop) == (0, 10, 10, 10)
        assert c.last

    def test_budget_bounds(self, jpeg_422):
        info = parse_jpeg(jpeg_422)
        total = info.geometry.total_mcus
        scan = destuff_scan(info.entropy_data)
        for chunk in plan_chunks(len(scan.payload), 4):
            budget = chunk_mcu_budget(chunk, info.geometry)
            assert 1 <= budget <= total + 2


# ---------------------------------------------------------------------------
# Eligibility gate.
# ---------------------------------------------------------------------------

class TestEligibility:
    def test_marker_free_eligible(self, small_rgb):
        info = parse_jpeg(encode(small_rgb))
        assert speculative_eligible(
            info.restart_interval, destuff_scan(info.entropy_data))

    def test_dri_scan_ineligible(self, small_rgb):
        info = parse_jpeg(encode(small_rgb, dri=4))
        assert not speculative_eligible(
            info.restart_interval, destuff_scan(info.entropy_data))

    def test_stray_rst_marker_ineligible(self):
        # A DRI=0 scan containing an RSTn byte pair would shift every
        # speculative offset: the prescan's marker index must veto it.
        scan = destuff_scan(b"\x12\x34\xff\xd0\x56\x78")
        assert scan.restart_count == 1
        assert not speculative_eligible(0, scan)

    def test_ineligible_falls_back(self, small_rgb):
        info = parse_jpeg(encode(small_rgb, dri=4))
        out, report = decode_coefficients_speculative(info, 4)
        assert report.fallback and report.chunks == 1
        assert_identical(out, oracle_coefficients(info))


# ---------------------------------------------------------------------------
# The bit-identity matrix.
# ---------------------------------------------------------------------------

class TestBitIdentity:
    @pytest.mark.parametrize("kind", ["photo", "detail", "smooth", "gray"])
    @pytest.mark.parametrize("sub", ["4:2:0", "4:2:2", "4:4:4"])
    def test_generator_matrix(self, kind, sub):
        rgb = GENERATORS[kind](96, 80, seed=7)
        info = parse_jpeg(encode(rgb, sub=sub))
        want = oracle_coefficients(info)
        for chunk_count in (2, 3, 5, 9):
            out, report = decode_coefficients_speculative(info, chunk_count)
            assert_identical(out, want,
                            f"[{kind} {sub} chunks={chunk_count}]")

    def test_randomized_200_image_matrix(self):
        """The acceptance matrix: >= 200 randomized images, every one
        bit-identical at a randomized chunk count — misspeculations and
        whole-scan fallbacks included (they must be invisible)."""
        rng = np.random.default_rng(2014)
        kinds = list(GENERATORS)
        subs = ["4:2:0", "4:2:2", "4:4:4"]
        converged = misspeculated = fallbacks = 0
        for trial in range(200):
            kind = kinds[rng.integers(len(kinds))]
            h = 8 * int(rng.integers(4, 13))
            w = 8 * int(rng.integers(4, 13))
            rgb = GENERATORS[kind](h, w, seed=int(rng.integers(1 << 30)))
            data = encode(rgb, sub=subs[rng.integers(3)],
                          quality=int(rng.choice([70, 85, 95])))
            info = parse_jpeg(data)
            chunk_count = int(rng.integers(2, 9))
            # Occasionally starve the overlap to force misspeculation.
            overlap = int(rng.choice([24, 128, 512]))
            out, report = decode_coefficients_speculative(
                info, chunk_count, overlap=overlap)
            assert_identical(
                out, oracle_coefficients(info),
                f"[trial {trial} {kind} {h}x{w} chunks={chunk_count} "
                f"overlap={overlap}]")
            converged += report.converged
            misspeculated += len(report.misspeculated)
            fallbacks += report.fallback
        # The matrix must actually exercise all three outcomes.
        assert converged > 200, "speculation never converged — path dead"
        assert misspeculated > 0, "matrix never exercised a misspeculation"
        # Repairs keep fallbacks rare even with starved overlaps.
        assert fallbacks < 40

    def test_pixel_identity_through_facade(self, small_rgb):
        data = encode(small_rgb, sub="4:2:2")
        info = parse_jpeg(data)
        out, report = decode_coefficients_speculative(info, 5)
        assert report.ok
        from repro.jpeg.decoder import pixels_from_coefficients

        rgb = pixels_from_coefficients(info, out, DecodeOptions())
        assert np.array_equal(rgb, decode_jpeg(data).rgb)

    def test_marker_free_corpus_members(self):
        # The generated corpus is the speculative decoder's home turf:
        # every member DRI=0 and bit-identical under fan-out.
        for name, data in marker_free_corpus(sizes=((160, 120),)):
            info = parse_jpeg(data)
            assert info.restart_interval == 0, name
            out, _ = decode_coefficients_speculative(info, 4)
            assert_identical(out, oracle_coefficients(info), f"[{name}]")

    def test_modeled_speedup(self, small_rgb):
        info = parse_jpeg(encode(small_rgb))
        dec = SpeculativeEntropyDecoder(
            info.geometry, component_tables_from_info(info))
        r = dec.decode(info.entropy_data, cores=4)
        assert_identical(r.coefficients, oracle_coefficients(info))
        assert r.speedup > 1.0
        assert r.cores == 4 and len(r.chunks) == 4


# ---------------------------------------------------------------------------
# Convergence-failure injection: misspeculation must degrade, not break.
# ---------------------------------------------------------------------------

class TestConvergenceFailure:
    def _traces(self, info, chunk_count):
        scan = destuff_scan(info.entropy_data)
        chunks = plan_chunks(len(scan.payload), chunk_count)
        geo = info.geometry
        tables = component_tables_from_info(info)
        geo_args = (geo.width, geo.height, geo.mode)
        traces = [
            decode_speculative_chunk(
                c, scan.payload[c.start:c.slice_stop], geo_args, tables,
                "fast",
                scan.terminator if c.slice_stop == len(scan.payload)
                else None)
            for c in chunks
        ]
        return scan, chunks, geo, tables, traces

    def test_dead_chunk_is_repaired(self, small_rgb):
        # A missing trace (worker crashed past its retry budget) is
        # repaired sequentially from the trusted frontier.
        info = parse_jpeg(encode(small_rgb))
        scan, chunks, geo, tables, traces = self._traces(info, 5)
        traces[2] = None
        out, report = stitch_chunks(
            traces, chunks, geo, repair=make_repairer(scan, geo, tables))
        assert out is not None and 2 in report.misspeculated
        assert report.repaired >= 1
        assert_identical(out, oracle_coefficients(info))

    def test_dead_chunk_without_repair_falls_back(self, small_rgb):
        info = parse_jpeg(encode(small_rgb))
        scan, chunks, geo, tables, traces = self._traces(info, 5)
        traces[2] = None
        out, report = stitch_chunks(traces, chunks, geo, repair=None)
        assert out is None and report.fallback
        assert report.reason is not None

    def test_dead_first_chunk_falls_back(self, small_rgb):
        # Chunk 0 is the exactness anchor; without it there is no
        # trusted frontier to repair from.
        info = parse_jpeg(encode(small_rgb))
        scan, chunks, geo, tables, traces = self._traces(info, 4)
        traces[0] = None
        out, report = stitch_chunks(
            traces, chunks, geo, repair=make_repairer(scan, geo, tables))
        assert out is None and report.fallback and 0 in report.misspeculated

    def test_all_later_chunks_dead(self, small_rgb):
        # Worst case short of total loss: everything past chunk 0 is
        # repaired sequentially; identity still holds.
        info = parse_jpeg(encode(small_rgb))
        scan, chunks, geo, tables, traces = self._traces(info, 4)
        for k in range(1, len(traces)):
            traces[k] = None
        out, report = stitch_chunks(
            traces, chunks, geo, repair=make_repairer(scan, geo, tables))
        assert out is not None
        assert report.misspeculated == [1, 2, 3]
        assert_identical(out, oracle_coefficients(info))

    def test_facade_heals_misspeculation_without_error(self, small_rgb):
        # Starved overlap at the facade level: some boundary misses,
        # nothing raises, identity holds.
        info = parse_jpeg(encode(GENERATORS["detail"](96, 96, seed=3),
                                 quality=95))
        out, report = decode_coefficients_speculative(info, 6, overlap=16)
        assert_identical(out, oracle_coefficients(info))
        assert report.chunks == 6


# ---------------------------------------------------------------------------
# Hostile inputs: error identity with the sequential oracle.
# ---------------------------------------------------------------------------

def _outcome(data, engine):
    """(error_type, error) of a decode, or None when it succeeds."""
    try:
        decode_jpeg(data, DecodeOptions(entropy_engine=engine))
        return None
    except Exception as exc:
        return type(exc).__name__, str(exc)


@pytest.fixture(scope="module")
def hostile_base() -> bytes:
    return encode(GENERATORS["photo"](64, 80, seed=11), quality=80)


class TestHostileInputs:
    """Property-based hostile-input matrix (satellite: the fast engine
    — and the speculative path above it — must raise the *reference*
    engine's exact error type and message, or agree on the pixels)."""

    @given(cut=st.integers(2, 2000), keep_eoi=st.booleans())
    @settings(max_examples=60, deadline=None)
    def test_truncated_scans_error_parity(self, hostile_base, cut,
                                          keep_eoi):
        data = hostile_base
        blob = data[:max(2, len(data) - 2 - cut % (len(data) - 4))]
        if keep_eoi:
            blob += data[-2:]
        fast, ref = _outcome(blob, "fast"), _outcome(blob, "reference")
        assert fast == ref, (
            f"engines disagree on truncated scan: fast={fast} ref={ref}")

    @given(pos=st.integers(0, 1 << 30), bits=st.integers(1, 255))
    @settings(max_examples=60, deadline=None)
    def test_flipped_bytes_error_parity(self, hostile_base, pos, bits):
        data = bytearray(hostile_base)
        # Mutate inside the back half (the entropy-coded segment).
        pos = len(data) // 2 + pos % (len(data) // 2 - 2)
        data[pos] ^= bits
        blob = bytes(data)
        fast, ref = _outcome(blob, "fast"), _outcome(blob, "reference")
        if fast is None and ref is None:
            assert np.array_equal(
                decode_jpeg(blob, DecodeOptions(entropy_engine="fast")).rgb,
                decode_jpeg(blob,
                            DecodeOptions(entropy_engine="reference")).rgb)
        else:
            assert fast == ref, (
                f"engines disagree on corrupt byte at {pos}: "
                f"fast={fast} ref={ref}")

    @given(cut_mcus=st.integers(1, 40))
    @settings(max_examples=30, deadline=None)
    def test_speculative_error_identity(self, hostile_base, cut_mcus):
        """A hostile stream routed through the speculative API raises
        the sequential oracle's exact error (mid-MCU endings included:
        arbitrary truncation usually lands inside an MCU)."""
        info = parse_jpeg(hostile_base)
        scan = destuff_scan(info.entropy_data)
        cut = max(8, len(scan.payload) - 7 * cut_mcus)
        hostile = scan.payload[:cut] + b"\xff\xd9"
        try:
            blob_info = parse_jpeg(
                hostile_base.replace(info.entropy_data, hostile))
        except Exception:
            return  # truncation broke the container: nothing to compare
        try:
            oracle_coefficients(blob_info)
            want = None
        except Exception as exc:
            want = (type(exc).__name__, str(exc))
        try:
            out, report = decode_coefficients_speculative(blob_info, 4)
            got = None
        except Exception as exc:
            got = (type(exc).__name__, str(exc))
        assert got == want, (
            f"speculative path diverges from oracle: got={got} want={want}")
        if want is None:
            assert_identical(out, oracle_coefficients(blob_info))

    def test_stuffed_bytes_at_chunk_boundaries(self):
        """Chunk boundaries are planned on the *destuffed* payload, so
        no boundary can split an FF00 pair; an image dense in stuffed
        bytes must stay bit-identical at every chunk count."""
        rgb = GENERATORS["detail"](96, 96, seed=9)
        data = encode(rgb, quality=97)
        info = parse_jpeg(data)
        assert b"\xff\x00" in info.entropy_data, "fixture lost its 0xFFs"
        scan = destuff_scan(info.entropy_data)
        want = oracle_coefficients(info)
        for chunk_count in range(2, 9):
            for chunk in plan_chunks(len(scan.payload), chunk_count):
                # Boundary positions index destuffed bytes: each maps to
                # a real data byte of the original stream, never to a
                # stuffing zero or marker byte.
                if chunk.start < len(scan.payload):
                    orig = scan.orig_offset(chunk.start)
                    assert info.entropy_data[orig] == \
                        scan.payload[chunk.start]
            out, _ = decode_coefficients_speculative(info, chunk_count)
            assert_identical(out, want, f"[chunks={chunk_count}]")

    def test_eob_runs_spanning_chunks(self):
        """Smooth images are EOB-dominated: long runs of near-empty
        blocks cross every chunk boundary and must still converge (or
        repair) to identity."""
        rgb = GENERATORS["smooth"](120, 120, seed=4)
        info = parse_jpeg(encode(rgb, quality=60))
        want = oracle_coefficients(info)
        for chunk_count in (2, 4, 7):
            out, _ = decode_coefficients_speculative(info, chunk_count)
            assert_identical(out, want, f"[smooth chunks={chunk_count}]")


# ---------------------------------------------------------------------------
# Prescan offset round-tripping (restart markers + stuffing).
# ---------------------------------------------------------------------------

class TestOrigOffsetRoundTrip:
    def test_payload_positions_map_to_real_bytes(self, small_rgb):
        """Every destuffed payload byte round-trips to the identical
        original-stream byte — across restart markers and FF00 pairs —
        so no speculative start offset can land inside a stuffing pair
        or an RSTn marker."""
        data = encode(small_rgb, quality=95, dri=3)
        info = parse_jpeg(data)
        raw = info.entropy_data
        assert b"\xff\x00" in raw
        scan = destuff_scan(raw)
        assert scan.restart_count > 0
        offs = [scan.orig_offset(p) for p in range(len(scan.payload))]
        assert all(a < b for a, b in zip(offs, offs[1:])), \
            "payload->original mapping must be strictly increasing"
        for p, o in enumerate(offs):
            assert raw[o] == scan.payload[p], f"payload byte {p} diverges"
            # Never the dropped 0x00 of a stuffing pair.
            assert not (raw[o] == 0x00 and o > 0 and raw[o - 1] == 0xFF)

    def test_marker_offsets_bracket_the_markers(self, small_rgb):
        data = encode(small_rgb, dri=4)
        info = parse_jpeg(data)
        raw = info.entropy_data
        scan = destuff_scan(raw)
        for pay_off, val, orig_off in zip(scan.marker_payload_offsets,
                                          scan.marker_values,
                                          scan.marker_orig_offsets):
            assert raw[orig_off] == 0xFF and raw[orig_off + 1] == val
            # The payload position at the marker maps to the byte
            # *after* the two-byte RSTn, never inside it.
            if pay_off < len(scan.payload):
                assert scan.orig_offset(pay_off) >= orig_off + 2

    def test_decoder_bit_positions_round_trip(self, small_rgb):
        """Exact MCU-end bit positions (the speculative sync currency)
        map back through ``orig_offset`` onto real scan bytes."""
        data = encode(small_rgb)
        info = parse_jpeg(data)
        scan = destuff_scan(info.entropy_data)
        geo = info.geometry
        decoder = FastEntropyDecoder(
            geo, component_tables_from_info(info), 0)
        decoder.start_prescanned(scan, 0)
        last = -1
        for _ in range(geo.mcu_rows):
            decoder.decode_mcu_rows(1)
            bit = decoder.bit_position
            assert bit > last, "bit positions must advance"
            last = bit
            byte = bit // 8
            if byte < len(scan.payload):
                orig = scan.orig_offset(byte)
                assert info.entropy_data[orig] == scan.payload[byte]
        assert last <= len(scan.payload) * 8
