"""HTTP shim: real socket round-trips against DecodeHTTPServer —
PPM/metadata decode responses, stats endpoint, backpressure as 429,
error mapping, and the ``repro serve`` CLI driving the same stack."""

from __future__ import annotations

import json
import socket
import threading
import time
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.jpeg import EncoderSettings, decode_jpeg, encode_jpeg
from repro.service import DecodeHTTPServer, DecodeSession, ppm_bytes


@pytest.fixture(scope="module")
def blob(small_rgb):
    return encode_jpeg(small_rgb, EncoderSettings(
        quality=85, subsampling="4:2:2"))


@pytest.fixture(scope="module")
def oracle(blob):
    return decode_jpeg(blob).rgb


@pytest.fixture()
def server():
    """A live server on an ephemeral port, torn down after the test."""
    srv = DecodeHTTPServer(port=0, backend="thread", workers=2,
                           max_batch=4, max_delay_ms=1.0)
    thread = threading.Thread(target=srv.serve_forever, daemon=True)
    thread.start()
    yield srv
    srv.shutdown()
    thread.join(timeout=30)
    srv.close()


def _post(url: str, data: bytes, timeout: float = 60):
    req = urllib.request.Request(url, data=data, method="POST")
    return urllib.request.urlopen(req, timeout=timeout)


def _parse_ppm(body: bytes) -> np.ndarray:
    magic, dims, maxval, pixels = body.split(b"\n", 3)
    assert magic == b"P6" and maxval == b"255"
    w, h = map(int, dims.split())
    return np.frombuffer(pixels, dtype=np.uint8).reshape(h, w, 3)


class TestDecodeEndpoint:
    def test_post_decode_returns_bit_identical_ppm(self, server, blob,
                                                   oracle):
        with _post(server.url + "/decode", blob) as resp:
            assert resp.status == 200
            assert resp.headers["Content-Type"] == "image/x-portable-pixmap"
            assert resp.headers["X-Width"] == str(oracle.shape[1])
            assert resp.headers["X-Height"] == str(oracle.shape[0])
            assert float(resp.headers["X-Latency-Ms"]) > 0
            body = resp.read()
        assert body == ppm_bytes(oracle)
        assert np.array_equal(_parse_ppm(body), oracle)

    def test_metadata_format(self, server, blob, oracle):
        with _post(server.url + "/decode?format=json", blob) as resp:
            assert resp.status == 200
            meta = json.loads(resp.read())
        assert meta["ok"] is True
        assert (meta["width"], meta["height"]) == (oracle.shape[1],
                                                   oracle.shape[0])
        assert meta["latency_ms"] > 0

    def test_concurrent_posts_batch_together(self, server, blob, oracle):
        """Several in-flight requests ride the same pump; all answers
        are correct and /stats shows a multi-image batch formed."""
        bodies: list[bytes | None] = [None] * 4

        def fetch(i: int) -> None:
            with _post(server.url + "/decode", blob) as resp:
                bodies[i] = resp.read()

        threads = [threading.Thread(target=fetch, args=(i,))
                   for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        expected = ppm_bytes(oracle)
        assert all(b == expected for b in bodies)
        with urllib.request.urlopen(server.url + "/stats",
                                    timeout=30) as resp:
            stats = json.loads(resp.read())
        assert stats["images_ok"] == 4
        # Batching actually happened: fewer batches than images.
        assert stats["batches"] < 4

    def test_malformed_jpeg_maps_to_400(self, server):
        with pytest.raises(urllib.error.HTTPError) as err:
            _post(server.url + "/decode", b"junk bytes, not a jpeg")
        assert err.value.code == 400
        meta = json.loads(err.value.read())
        assert meta["ok"] is False
        assert meta["error_type"]

    def test_empty_body_maps_to_400(self, server):
        req = urllib.request.Request(server.url + "/decode", data=b"",
                                     method="POST")
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(req, timeout=30)
        assert err.value.code == 400

    def test_unknown_paths_404(self, server, blob):
        for method, path, data in (("GET", "/nope", None),
                                   ("POST", "/nope", blob)):
            req = urllib.request.Request(server.url + path, data=data,
                                         method=method)
            with pytest.raises(urllib.error.HTTPError) as err:
                urllib.request.urlopen(req, timeout=30)
            assert err.value.code == 404


class TestBackpressureAndStats:
    def test_queue_full_maps_to_429(self, blob):
        """A pump-less session never drains, so capacity-1 fills after
        one direct submit; the HTTP submit then fails fast as 429."""
        session = DecodeSession(queue_capacity=1, backend="serial",
                                pump=False)
        srv = DecodeHTTPServer(session=session, port=0)
        thread = threading.Thread(target=srv.serve_forever, daemon=True)
        thread.start()
        try:
            session.submit(blob)     # occupies the only slot
            with pytest.raises(urllib.error.HTTPError) as err:
                _post(srv.url + "/decode", blob, timeout=30)
            assert err.value.code == 429
            assert err.value.headers["Retry-After"] == "1"
            assert "full" in json.loads(err.value.read())["error"]
        finally:
            srv.shutdown()
            thread.join(timeout=30)
            srv.close()
            session.close(drain=False)

    def test_cancelled_request_maps_to_503(self, blob):
        """Closing an externally-owned session with drain=False while a
        POST is waiting answers 503 — never a dropped connection."""
        session = DecodeSession(queue_capacity=4, backend="serial",
                                pump=False)
        srv = DecodeHTTPServer(session=session, port=0)
        thread = threading.Thread(target=srv.serve_forever, daemon=True)
        thread.start()
        codes: list[int] = []

        def post() -> None:
            try:
                with _post(srv.url + "/decode", blob, timeout=60) as resp:
                    codes.append(resp.status)
            except urllib.error.HTTPError as err:
                codes.append(err.code)

        poster = threading.Thread(target=post)
        try:
            poster.start()
            # Wait for the handler to have submitted (queue non-empty),
            # then cancel everything pending.
            deadline = time.monotonic() + 30
            while session.pending == 0:
                assert time.monotonic() < deadline
                time.sleep(0.005)
            session.close(drain=False)
            poster.join(timeout=60)
            assert codes == [503]
        finally:
            srv.shutdown()
            thread.join(timeout=30)
            srv.close()

    def test_stats_and_healthz(self, server, blob):
        with _post(server.url + "/decode", blob) as resp:
            resp.read()
        with urllib.request.urlopen(server.url + "/stats",
                                    timeout=30) as resp:
            stats = json.loads(resp.read())
        assert stats["images_ok"] >= 1
        assert stats["queue_capacity"] == 32
        assert stats["closed"] is False
        assert stats["latency_ms"]["p50"] > 0
        with urllib.request.urlopen(server.url + "/healthz",
                                    timeout=30) as resp:
            assert json.loads(resp.read())["status"] == "ok"


class TestServeCli:
    def test_serve_answers_real_http_round_trip(self, blob, oracle,
                                                capsys):
        """`repro serve` end to end: bounded to three connections so
        main() returns on its own, driven over a real socket."""
        from repro.cli import main

        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()

        rc: list[int] = []
        thread = threading.Thread(target=lambda: rc.append(main(
            ["serve", "--port", str(port), "--backend", "thread",
             "--workers", "2", "--max-delay-ms", "1",
             "--max-requests", "3"])))
        thread.start()
        base = f"http://127.0.0.1:{port}"
        deadline = time.monotonic() + 30
        while True:       # connection #1: readiness probe
            try:
                with urllib.request.urlopen(base + "/healthz",
                                            timeout=1) as resp:
                    assert resp.status == 200
                break
            except OSError:
                assert time.monotonic() < deadline, "server never came up"
                time.sleep(0.02)
        with _post(base + "/decode", blob) as resp:           # 2
            assert resp.status == 200
            assert np.array_equal(_parse_ppm(resp.read()), oracle)
        with urllib.request.urlopen(base + "/stats",
                                    timeout=30) as resp:      # 3
            assert json.loads(resp.read())["images_ok"] == 1
        thread.join(timeout=60)
        assert not thread.is_alive()
        assert rc == [0]
        out = capsys.readouterr().out
        assert "listening on" in out
        assert "summary:" in out
