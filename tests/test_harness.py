"""Evaluation harness: corpus measurement, summaries, figure series."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import DecodeMode, PreparedImage
from repro.data import CorpusSpec, build_corpus
from repro.evaluation import (
    amdahl_series,
    balance_series,
    breakdown_for,
    format_breakdown,
    format_series,
    format_speedup_table,
    format_table,
    measure_corpus,
    prepare_corpus,
    speedup_series,
    summarize_speedups,
    platforms,
)


@pytest.fixture(scope="module")
def tiny_corpus():
    spec = CorpusSpec(sizes=((64, 64), (128, 96)), seeds=(21,),
                      detail_levels=(0.5,))
    return prepare_corpus(build_corpus(spec))


@pytest.fixture(scope="module")
def measurements(tiny_corpus):
    # pricing-mode replays keep this fast
    virt = [p.as_virtual() for p in tiny_corpus]
    return measure_corpus(platforms.GTX560, virt)


class TestMeasurement:
    def test_all_modes_measured(self, measurements):
        for m in measurements:
            assert set(m.times_us) == set(DecodeMode)
            assert all(t > 0 for t in m.times_us.values())

    def test_speedup_definition(self, measurements):
        m = measurements[0]
        assert m.speedup(DecodeMode.SIMD) == pytest.approx(1.0)
        assert m.speedup(DecodeMode.SEQUENTIAL) < 1.0


class TestSummaries:
    def test_summary_stats(self, measurements):
        summaries = summarize_speedups(measurements)
        pps = summaries[DecodeMode.PPS]
        assert pps.n == len(measurements)
        assert pps.mean > 0
        assert np.isfinite(pps.cov_percent)
        assert "±" in str(pps)

    def test_series_sorted_by_pixels(self, measurements):
        series = speedup_series(measurements)
        for pts in series.values():
            pixels = [p for p, _ in pts]
            assert pixels == sorted(pixels)


class TestFigureSeries:
    def test_amdahl_series_bounded(self, tiny_corpus):
        series = amdahl_series(platforms.GTX680,
                               [p.as_virtual() for p in tiny_corpus])
        assert all(0 < pct <= 100.0 + 1e-6 for _, pct in series)

    def test_balance_series_shape(self, tiny_corpus):
        series = balance_series(platforms.GTX560,
                                [p.as_virtual() for p in tiny_corpus])
        assert set(series) == {DecodeMode.SPS, DecodeMode.PPS}
        for pts in series.values():
            for px, cpu_us, gpu_us in pts:
                assert px > 0 and cpu_us >= 0 and gpu_us >= 0

    def test_breakdown_normalized_to_simd(self, tiny_corpus):
        bd = breakdown_for(platforms.GTX560, tiny_corpus[0].as_virtual())
        assert bd[DecodeMode.SIMD]["total"] == pytest.approx(1.0)
        assert bd[DecodeMode.SEQUENTIAL]["total"] > 1.0


class TestFormatting:
    def test_format_table_aligns(self):
        out = format_table(["a", "bb"], [["1", "2"], ["333", "4"]], title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert all(len(l) == len(lines[1]) for l in lines[1:])

    def test_format_speedup_table(self, measurements):
        summaries = {"GTX 560": summarize_speedups(measurements)}
        out = format_speedup_table(summaries, "Table 2")
        assert "PPS" in out and "GTX 560" in out

    def test_format_series(self):
        out = format_series([(100, 1.5), (200, 2.5)],
                            ["Pixels", "Speedup"], title="Fig")
        assert "100" in out and "2.500" in out

    def test_format_breakdown(self, tiny_corpus):
        bd = breakdown_for(platforms.GTX560, tiny_corpus[0].as_virtual())
        out = format_breakdown(bd, title="Figure 9")
        assert "huffman" in out and "total" in out
