"""Cross-image batch scheduler: pricing, LPT vs round-robin placement,
dominant-image split fallback, throughput feedback, and bit-identity of
scheduled decodes (ISSUE 3 tentpole + edge-case satellite)."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.data import synthetic_photo
from repro.errors import ModelError, ServiceError
from repro.evaluation import platforms
from repro.jpeg import EncoderSettings, decode_jpeg, encode_jpeg
from repro.service import (
    BatchDecoder,
    DecodeService,
    ModelScheduler,
    ThroughputFeedback,
    default_executors,
    schedule_lpt,
    schedule_roundrobin,
)
from repro.service.scheduler import ExecutorLane, ImagePricing


def encode(w, h, sub="4:2:2", dri=0, seed=7, detail=0.6, quality=85):
    rgb = synthetic_photo(h, w, seed=seed, detail=detail)
    return encode_jpeg(rgb, EncoderSettings(
        quality=quality, subsampling=sub, restart_interval=dri))


def fake_pricing(index, costs, has_restarts=False, w=64, h=64):
    return ImagePricing(
        index=index, width=w, height=h, density=0.2,
        subsampling="4:2:2", has_restarts=has_restarts, costs=dict(costs))


def lanes(*names):
    return tuple(ExecutorLane(name=n, kind="simd", platform=platforms.GTX560)
                 for n in names)


# ---------------------------------------------------------------------------
# Pure scheduling logic (no profiling, synthetic costs).
# ---------------------------------------------------------------------------

class TestLptPlacement:
    def test_single_image_goes_to_cheapest_lane(self):
        ex = lanes("a", "b")
        sched = schedule_lpt(
            [fake_pricing(0, {"a": 100.0, "b": 40.0})], ex)
        (a,) = sched.assignments
        assert a.executor.name == "b"
        assert a.predicted_us == 40.0
        assert sched.makespan_us == 40.0

    def test_identical_images_balance_across_ties(self):
        ex = lanes("a", "b")
        pricings = [fake_pricing(i, {"a": 50.0, "b": 50.0})
                    for i in range(4)]
        sched = schedule_lpt(pricings, ex)
        assert sched.loads == {"a": 100.0, "b": 100.0}
        # Deterministic: replanning the same batch gives the same result.
        again = schedule_lpt(pricings, ex)
        assert [a.executor.name for a in again.assignments] \
            == [a.executor.name for a in sched.assignments]

    def test_lpt_beats_roundrobin_on_skewed_costs(self):
        ex = lanes("a", "b")
        # Round-robin alternates blindly: both heavy images land on "a".
        pricings = [
            fake_pricing(0, {"a": 100.0, "b": 100.0}),
            fake_pricing(1, {"a": 10.0, "b": 10.0}),
            fake_pricing(2, {"a": 100.0, "b": 100.0}),
            fake_pricing(3, {"a": 10.0, "b": 10.0}),
        ]
        lpt = schedule_lpt(pricings, ex)
        rr = schedule_roundrobin(pricings, ex)
        assert lpt.makespan_us == 110.0
        assert rr.makespan_us == 200.0

    def test_ineligible_lane_never_assigned(self):
        ex = lanes("cpu", "gpu")
        pricings = [fake_pricing(i, {"cpu": 10.0, "gpu": math.inf})
                    for i in range(3)]
        sched = schedule_lpt(pricings, ex)
        assert all(a.executor.name == "cpu" for a in sched.assignments)
        assert sched.loads["gpu"] == 0.0

    def test_near_zero_throughput_lane_is_starved(self):
        # A lane whose model predicts ~zero throughput (astronomic cost
        # per image) must never win a placement over a healthy lane.
        ex = lanes("healthy", "stalled")
        pricings = [fake_pricing(i, {"healthy": 50.0, "stalled": 1e12})
                    for i in range(5)]
        sched = schedule_lpt(pricings, ex)
        assert sched.loads["stalled"] == 0.0
        assert sched.loads["healthy"] == 250.0

    def test_dominant_restart_image_splits(self):
        ex = lanes("a", "b")
        pricings = [
            fake_pricing(0, {"a": 1000.0, "b": 900.0}, has_restarts=True),
            fake_pricing(1, {"a": 10.0, "b": 10.0}),
            fake_pricing(2, {"a": 10.0, "b": 12.0}),
        ]
        sched = schedule_lpt(pricings, ex, split_dominant=True)
        dominant = sched.assignments[0]
        assert dominant.split and dominant.executor is None
        assert sched.split_count == 1
        # Without restart markers the image must be placed whole.
        pricings[0].has_restarts = False
        sched2 = schedule_lpt(pricings, ex, split_dominant=True)
        assert sched2.split_count == 0
        assert sched2.assignments[0].executor is not None

    def test_roundrobin_skips_ineligible_lanes(self):
        ex = lanes("a", "b")
        pricings = [
            fake_pricing(0, {"a": 10.0, "b": math.inf}),
            fake_pricing(1, {"a": 10.0, "b": 10.0}),
        ]
        rr = schedule_roundrobin(pricings, ex)
        assert rr.assignments[0].executor.name == "a"
        assert rr.assignments[1].executor.name == "b"

    def test_empty_batch(self):
        sched = schedule_lpt([], lanes("a"))
        assert sched.assignments == [] and sched.makespan_us == 0.0

    def test_feedback_scales_sort_and_dominance(self):
        # Lane "a" learned a 100x slowdown; the image whose unscaled
        # best is on "a" must be treated as the batch's biggest job and,
        # carrying restart markers, split rather than placed whole.
        ex = lanes("a", "b")
        fb = ThroughputFeedback(alpha=1.0)
        fb.observe("a", 10.0, 1000.0)  # scale("a") = 100
        pricings = [
            fake_pricing(0, {"a": 5.0, "b": 600.0}, has_restarts=True),
            fake_pricing(1, {"a": 100.0, "b": 100.0}),
        ]
        sched = schedule_lpt(pricings, ex, feedback=fb)
        # scaled best of image 0 is min(500, 600)=500 > ideal
        # (500+100)/2=300 -> dominant, split.
        assert sched.assignments[0].split
        assert sched.assignments[0].predicted_us == pytest.approx(500.0)

    def test_lane_subset_leaves_unpriceable_image_unassigned(self):
        # Pricings priced against lanes not in the executor set must not
        # crash the greedy; the image comes back unassigned.
        (only,) = lanes("other")
        sched = schedule_lpt(
            [fake_pricing(0, {"a": 10.0, "b": 20.0})], (only,))
        (a,) = sched.assignments
        assert a.executor is None and not a.split


class TestFeedback:
    def test_ewma_converges_toward_observed_ratio(self):
        fb = ThroughputFeedback(alpha=0.3)
        assert fb.scale("lane") == 1.0
        fb.observe("lane", 100.0, 200.0)
        assert fb.scale("lane") == pytest.approx(2.0)
        fb.observe("lane", 100.0, 100.0)
        assert fb.scale("lane") == pytest.approx(0.7 * 2.0 + 0.3 * 1.0)
        assert fb.observations == 2

    def test_degenerate_observations_ignored(self):
        fb = ThroughputFeedback()
        fb.observe("lane", 0.0, 50.0)
        fb.observe("lane", 50.0, 0.0)
        fb.observe("lane", math.inf, 50.0)
        assert fb.scale("lane") == 1.0 and fb.observations == 0

    def test_invalid_alpha_rejected(self):
        with pytest.raises(ServiceError):
            ThroughputFeedback(alpha=0.0)

    def test_feedback_redirects_schedule(self):
        # After observing that lane "a" runs 100x slower than predicted,
        # the scheduler routes the next batch to "b".
        ex = lanes("a", "b")
        fb = ThroughputFeedback(alpha=1.0)
        pricings = [fake_pricing(i, {"a": 10.0, "b": 15.0})
                    for i in range(4)]
        before = schedule_lpt(pricings, ex, feedback=fb)
        assert any(a.executor.name == "a" for a in before.assignments)
        fb.observe("a", 10.0, 1000.0)
        after = schedule_lpt(pricings, ex, feedback=fb)
        assert all(a.executor.name == "b" for a in after.assignments)


# ---------------------------------------------------------------------------
# Pricing through the fitted models.
# ---------------------------------------------------------------------------

class TestPricing:
    def test_perfmodel_price_kinds(self):
        sched = ModelScheduler(platform=platforms.GTX560)
        model = sched._model_for(platforms.GTX560, "4:2:2")
        w, h, d = 640, 480, 0.2
        assert model.price("simd", w, h, d) == pytest.approx(
            model.total_cpu(w, h, d, simd=True))
        assert model.price("seq", w, h, d) == pytest.approx(
            model.total_cpu(w, h, d, simd=False))
        assert model.price("gpu", w, h, d) == pytest.approx(
            model.total_gpu(w, h, d) + model.t_dispatch(w, h))
        with pytest.raises(ModelError):
            model.price("fpga", w, h, d)

    def test_price_batch_matches_scalar(self):
        sched = ModelScheduler(platform=platforms.GTX560)
        model = sched._model_for(platforms.GTX560, "4:2:2")
        images = [(640, 480, 0.2), (128, 128, 0.35)]
        assert model.price_batch("gpu", images) == [
            model.price("gpu", w, h, d) for (w, h, d) in images]

    def test_gpu_lane_ineligible_for_420(self):
        sched = ModelScheduler(platform=platforms.GTX560)
        blob = encode(96, 96, sub="4:2:0")
        (p,) = sched.price([blob])
        gpu = next(l for l in sched.executors if l.kind == "gpu")
        simd = next(l for l in sched.executors if l.kind == "simd")
        assert math.isinf(p.costs[gpu.name])
        assert math.isfinite(p.costs[simd.name])

    def test_progressive_scan_surcharge(self):
        sched = ModelScheduler(platform=platforms.GTX560)
        model = sched._model_for(platforms.GTX560, "4:2:2")
        w, h, d = 640, 480, 0.2
        base = model.price("simd", w, h, d)
        for scans in (6, 14, 18):
            assert model.price("simd", w, h, d, scans=scans) == \
                pytest.approx(base + (scans - 1) * model.scan_pass_factor
                              * model.t_huff(w, h, d))

    def test_progressive_priced_with_scans_not_splittable(self):
        rgb = synthetic_photo(96, 96, seed=7, detail=0.6)
        prog = encode_jpeg(rgb, EncoderSettings(
            quality=85, subsampling="4:2:2", progressive=True))
        sched = ModelScheduler(platform=platforms.GTX560)
        p_base, p_prog = sched.price([encode(96, 96), prog])
        assert p_base.scans == 1 and p_prog.scans == 14
        assert not p_prog.splittable
        simd = next(l for l in sched.executors if l.kind == "simd")
        assert p_prog.costs[simd.name] > p_base.costs[simd.name]

    def test_default_executors_shape(self):
        ex = default_executors(platforms.GTX680)
        assert [l.kind for l in ex] == ["simd", "gpu"]
        assert all(l.platform is platforms.GTX680 for l in ex)
        assert ex[0].mode == "simd" and ex[1].mode == "gpu"

    def test_unknown_policy_rejected(self):
        with pytest.raises(ServiceError):
            ModelScheduler(policy="fifo")
        with pytest.raises(ServiceError):
            ModelScheduler(executors=())


# ---------------------------------------------------------------------------
# Speculative splittability (marker-free images).
# ---------------------------------------------------------------------------

class TestSpeculativeSplittability:
    def test_marker_free_priced_splittable(self):
        sched = ModelScheduler(platform=platforms.GTX560)
        free, dri = encode(96, 96), encode(96, 96, dri=4)
        p_free, p_dri = sched.price([free, dri])
        assert not p_free.has_restarts and p_free.splittable
        assert p_dri.has_restarts and p_dri.splittable

    def test_speculative_off_restores_dri_gate(self):
        sched = ModelScheduler(platform=platforms.GTX560,
                               speculative=False)
        free, dri = encode(96, 96), encode(96, 96, dri=4)
        p_free, p_dri = sched.price([free, dri])
        assert not p_free.splittable
        assert p_dri.splittable

    def test_dominant_marker_free_image_splits(self):
        # The PR-7 point: a dominant DRI=0 image no longer serializes
        # the batch — splittable (via speculation) is enough to fan out.
        ex = lanes("a", "b")
        pricings = [
            fake_pricing(0, {"a": 1000.0, "b": 900.0}),
            fake_pricing(1, {"a": 10.0, "b": 10.0}),
            fake_pricing(2, {"a": 10.0, "b": 12.0}),
        ]
        pricings[0].splittable = True
        sched = schedule_lpt(pricings, ex, split_dominant=True)
        dominant = sched.assignments[0]
        assert dominant.split and dominant.executor is None
        # Flag off: the same image is placed whole (pre-PR behavior).
        pricings[0].splittable = False
        sched2 = schedule_lpt(pricings, ex, split_dominant=True)
        assert sched2.split_count == 0
        assert sched2.assignments[0].executor is not None

    def test_breaker_limits_still_cap_splittable_batches(self):
        # Every image splittable must not defeat LaneBreakerBoard caps:
        # with lane "a" open (limit 0) all placements land on "b".
        ex = lanes("a", "b")
        pricings = [fake_pricing(i, {"a": 10.0, "b": 11.0})
                    for i in range(4)]
        for p in pricings:
            p.splittable = True
        sched = schedule_lpt(pricings, ex, split_dominant=True,
                             lane_limits={"a": 0, "b": None})
        placed = [a for a in sched.assignments if a.executor is not None]
        assert placed and all(a.executor.name == "b" for a in placed)
        # All lanes open -> nothing placeable, nothing split either.
        starved = schedule_lpt(pricings, ex, split_dominant=True,
                               lane_limits={"a": 0, "b": 0})
        assert all(a.executor is None and not a.split
                   for a in starved.assignments)


# ---------------------------------------------------------------------------
# End-to-end scheduled decodes.
# ---------------------------------------------------------------------------

class TestScheduledDecode:
    def _mixed_blobs(self):
        return [
            encode(320, 240, "4:2:2", seed=1),
            encode(96, 96, "4:2:0", seed=2),
            encode(160, 160, "4:4:4", seed=3),
            encode(128, 96, "4:2:2", dri=8, seed=4),
        ]

    @pytest.mark.parametrize("policy", ["model", "roundrobin"])
    def test_bit_identity_vs_sequential(self, policy):
        blobs = self._mixed_blobs()
        with BatchDecoder(backend="thread", workers=2,
                          scheduler=policy) as dec:
            batch = dec.decode_batch(blobs)
        assert batch.schedule is not None
        assert batch.schedule.policy == policy
        for i, res in enumerate(batch):
            assert res.ok, res.error
            assert np.array_equal(res.rgb, decode_jpeg(blobs[i]).rgb)

    def test_single_image_batch(self):
        blob = encode(160, 120, seed=5)
        with BatchDecoder(backend="serial", scheduler="model") as dec:
            batch = dec.decode_batch([blob])
        (res,) = batch.results
        assert res.ok
        assert np.array_equal(res.rgb, decode_jpeg(blob).rgb)
        assert len(batch.schedule.assignments) == 1
        assert batch.schedule.assignments[0].executor is not None

    def test_batch_larger_than_worker_count(self):
        blobs = [encode(96 + 16 * i, 96, seed=i) for i in range(6)]
        with BatchDecoder(backend="thread", workers=2,
                          scheduler="model") as dec:
            batch = dec.decode_batch(blobs)
        assert len(batch) == 6 and batch.ok
        assert [r.request_id for r in batch] == list(range(6))
        for i, res in enumerate(batch):
            assert np.array_equal(res.rgb, decode_jpeg(blobs[i]).rgb)

    def test_lane_placed_images_report_simulated_time(self):
        blobs = self._mixed_blobs()
        with BatchDecoder(backend="serial", scheduler="model") as dec:
            batch = dec.decode_batch(blobs)
        for a, res in zip(batch.schedule.assignments, batch.results):
            if a.executor is not None:
                assert res.simulated_us is not None
                assert res.simulated_us > 0

    def test_dominant_dri_image_runs_split(self):
        # One large DRI image plus one tiny image: the large one's best
        # lane cost exceeds the balanced ideal, so it must fan out by
        # restart segments (reference path) and still match bit-exactly.
        blobs = [encode(640, 480, dri=16, seed=6), encode(64, 64, seed=7)]
        with BatchDecoder(backend="thread", workers=2,
                          scheduler="model") as dec:
            batch = dec.decode_batch(blobs)
        assert batch.schedule.split_count == 1
        big = batch.results[0]
        assert big.ok and big.segments > 1
        assert np.array_equal(big.rgb, decode_jpeg(blobs[0]).rgb)

    def test_corrupt_image_fails_alone(self):
        blobs = [encode(128, 96, seed=8), b"\xff\xd8garbage"]
        with BatchDecoder(backend="serial", scheduler="model") as dec:
            batch = dec.decode_batch(blobs)
        assert batch.results[0].ok
        assert not batch.results[1].ok
        assert batch.results[1].error_type is not None

    def test_schedule_format_mentions_lanes(self):
        with BatchDecoder(backend="serial", scheduler="model") as dec:
            batch = dec.decode_batch([encode(128, 96, seed=9)])
        text = batch.schedule.format()
        assert "schedule[model]" in text and "makespan=" in text


class TestServiceFeedbackLoop:
    def test_run_once_feeds_observations_and_stats(self):
        blobs = [encode(160, 120, seed=i) for i in range(3)]
        sched = ModelScheduler(policy="model", platform=platforms.GTX560)
        with DecodeService(batch_size=8, backend="serial",
                           scheduler=sched) as svc:
            for b in blobs:
                svc.submit(b)
            result = svc.run_once()
        assert result.schedule is not None
        assert sched.feedback.observations == 3
        assert sum(u.images for u in svc.stats.per_executor.values()) == 3
        for usage in svc.stats.per_executor.values():
            assert usage.predicted_us > 0 and usage.observed_us > 0
            assert usage.bias > 0
        assert "scheduled placements" in svc.stats.format()

    def test_scales_adapt_across_batches(self):
        blobs = [encode(160, 120, seed=i) for i in range(3)]
        sched = ModelScheduler(policy="model", platform=platforms.GTX560)
        with DecodeService(batch_size=8, backend="serial",
                           scheduler=sched) as svc:
            for b in blobs:
                svc.submit(b)
            svc.run_once()
            scales = sched.feedback.scales()
            assert scales  # at least one lane observed
            for b in blobs:
                svc.submit(b)
            svc.run_once()
        assert sched.feedback.observations == 6

    def test_roundrobin_rotation_persists_across_batches(self):
        # A stream of single-image batches must still cycle the lanes.
        blob = encode(128, 96, seed=10)
        sched = ModelScheduler(policy="roundrobin",
                               platform=platforms.GTX560)
        with DecodeService(batch_size=1, backend="serial",
                           scheduler=sched) as svc:
            for _ in range(4):
                svc.submit(blob)
            names = []
            while (result := svc.run_once()) is not None:
                (a,) = result.schedule.assignments
                names.append(a.executor.name)
        assert len(set(names)) == 2  # both lanes saw traffic
