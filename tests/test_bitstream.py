"""Bit-level I/O: stuffing, MSB order, marker handling, error paths."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import BitstreamError
from repro.jpeg.bitstream import BitReader, BitWriter


class TestBitWriter:
    def test_single_byte(self):
        w = BitWriter()
        w.write_bits(0xA5, 8)
        assert w.getvalue() == b"\xa5"

    def test_msb_first_within_byte(self):
        w = BitWriter()
        w.write_bits(0b1, 1)
        w.write_bits(0b0, 1)
        w.write_bits(0b111111, 6)
        assert w.getvalue() == bytes([0b10111111])

    def test_byte_stuffing_on_ff(self):
        w = BitWriter()
        w.write_bits(0xFF, 8)
        assert w.getvalue() == b"\xff\x00"

    def test_stuffing_across_boundary(self):
        w = BitWriter()
        w.write_bits(0b1111, 4)
        w.write_bits(0b1111, 4)   # completes an 0xFF byte
        w.write_bits(0x12, 8)
        assert w.getvalue() == b"\xff\x00\x12"

    def test_flush_pads_with_ones(self):
        w = BitWriter()
        w.write_bits(0b0, 1)
        w.flush()
        assert w.getvalue() == bytes([0b01111111])

    def test_flush_on_boundary_is_noop(self):
        w = BitWriter()
        w.write_bits(0x42, 8)
        w.flush()
        assert w.getvalue() == b"\x42"

    def test_zero_bits_is_noop(self):
        w = BitWriter()
        w.write_bits(0, 0)
        assert w.getvalue() == b""

    def test_rejects_value_too_wide(self):
        w = BitWriter()
        with pytest.raises(BitstreamError):
            w.write_bits(4, 2)

    def test_rejects_negative(self):
        w = BitWriter()
        with pytest.raises(BitstreamError):
            w.write_bits(-1, 4)

    def test_rejects_over_32_bits(self):
        w = BitWriter()
        with pytest.raises(BitstreamError):
            w.write_bits(0, 33)

    def test_bit_length_counts_payload_not_stuffing(self):
        w = BitWriter()
        w.write_bits(0xFF, 8)
        w.write_bits(0xFF, 8)
        assert w.bit_length == 16


class TestBitReader:
    def test_read_across_bytes(self):
        r = BitReader(b"\xa5\x3c")
        assert r.read_bits(4) == 0xA
        assert r.read_bits(8) == 0x53
        assert r.read_bits(4) == 0xC

    def test_destuffing(self):
        r = BitReader(b"\xff\x00\x12")
        assert r.read_bits(8) == 0xFF
        assert r.read_bits(8) == 0x12

    def test_peek_does_not_consume(self):
        r = BitReader(b"\xcafe".replace(b"fe", b"\xfe"))
        assert r.peek_bits(4) == r.peek_bits(4)
        assert r.read_bits(4) == 0xC

    def test_peek_zero_pads_at_end(self):
        r = BitReader(b"\x80")
        r.read_bits(8)
        assert r.peek_bits(8) == 0

    def test_skip_bits(self):
        r = BitReader(b"\xf0")
        r.peek_bits(8)
        r.skip_bits(4)
        assert r.read_bits(4) == 0

    def test_skip_more_than_buffered_raises(self):
        r = BitReader(b"\xf0")
        with pytest.raises(BitstreamError):
            r.skip_bits(4)

    def test_exhausted_raises(self):
        r = BitReader(b"\x01")
        r.read_bits(8)
        with pytest.raises(BitstreamError):
            r.read_bits(1)

    def test_marker_sets_flag_and_feeds_zeros(self):
        r = BitReader(b"\x81\xff\xd9")
        assert r.read_bits(8) == 0x81
        assert not r.hit_marker
        assert r.read_bits(8) == 0  # zero-fed past the marker
        assert r.hit_marker

    def test_truncated_after_ff_raises(self):
        r = BitReader(b"\xff")
        with pytest.raises(BitstreamError):
            r.read_bits(8)

    def test_find_restart_marker(self):
        r = BitReader(b"\xaa\xff\xd3\x55")
        r.read_bits(4)
        assert r.find_restart_marker() == 3
        assert r.read_bits(8) == 0x55

    def test_find_restart_rejects_non_rst(self):
        r = BitReader(b"\xff\xd9")
        with pytest.raises(BitstreamError):
            r.find_restart_marker()

    def test_find_restart_missing_raises(self):
        r = BitReader(b"\x01\x02")
        with pytest.raises(BitstreamError):
            r.find_restart_marker()

    def test_ndarray_input(self):
        r = BitReader(np.array([0xAB], dtype=np.uint8))
        assert r.read_bits(8) == 0xAB

    def test_ndarray_wrong_dtype_rejected(self):
        with pytest.raises(BitstreamError):
            BitReader(np.array([1.0]))

    def test_byte_position_tracks_consumption(self):
        r = BitReader(b"\x12\x34\x56")
        r.read_bits(8)
        assert r.byte_position == 1
        r.read_bits(4)
        assert r.byte_position == 2


@settings(max_examples=60, deadline=None)
@given(st.lists(
    st.tuples(st.integers(min_value=0, max_value=2**16 - 1),
              st.integers(min_value=1, max_value=16)),
    min_size=1, max_size=120,
))
def test_roundtrip_bits_property(pairs):
    """Anything written MSB-first reads back identically after stuffing."""
    w = BitWriter()
    normalized = [(v & ((1 << n) - 1), n) for v, n in pairs]
    for v, n in normalized:
        w.write_bits(v, n)
    w.flush()
    r = BitReader(w.getvalue())
    for v, n in normalized:
        assert r.read_bits(n) == v


@settings(max_examples=30, deadline=None)
@given(st.binary(min_size=0, max_size=200))
def test_stuffed_stream_never_contains_bare_marker(data):
    """The writer's output cannot embed an accidental marker byte pair."""
    w = BitWriter()
    for byte in data:
        w.write_bits(byte, 8)
    w.flush()
    out = w.getvalue()
    for i in range(len(out) - 1):
        if out[i] == 0xFF:
            assert out[i + 1] == 0x00
