"""Full encoder -> decoder paths: quality, equivalences, failure modes."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import JpegError
from repro.data import synthetic_photo, synthetic_smooth
from repro.jpeg import (
    DecodeOptions,
    EncoderSettings,
    decode_jpeg,
    decode_jpeg_rowwise,
    encode_jpeg,
    parse_jpeg,
)


def psnr(a: np.ndarray, b: np.ndarray) -> float:
    mse = np.mean((a.astype(np.float64) - b.astype(np.float64)) ** 2)
    if mse == 0:
        return np.inf
    return 10 * np.log10(255.0 ** 2 / mse)


class TestQuality:
    @pytest.mark.parametrize("mode", ["4:4:4", "4:2:2", "4:2:0"])
    def test_high_quality_high_psnr(self, small_rgb, mode):
        data = encode_jpeg(small_rgb, EncoderSettings(quality=95,
                                                      subsampling=mode))
        out = decode_jpeg(data).rgb
        assert out.shape == small_rgb.shape
        # chroma subsampling on noisy synthetic content caps PSNR near 28
        assert psnr(out, small_rgb) > 26

    def test_quality_monotone_in_psnr(self, small_rgb):
        scores = []
        for q in (30, 60, 90):
            data = encode_jpeg(small_rgb, EncoderSettings(quality=q))
            scores.append(psnr(decode_jpeg(data).rgb, small_rgb))
        assert scores[0] < scores[1] < scores[2]

    def test_quality_monotone_in_size(self, small_rgb):
        sizes = [len(encode_jpeg(small_rgb, EncoderSettings(quality=q)))
                 for q in (30, 60, 90)]
        assert sizes[0] < sizes[1] < sizes[2]

    def test_smooth_compresses_better_than_photo(self):
        smooth = synthetic_smooth(96, 96, seed=1)
        photo = synthetic_photo(96, 96, seed=1, detail=0.9)
        s = EncoderSettings(quality=85)
        assert len(encode_jpeg(smooth, s)) < len(encode_jpeg(photo, s))


class TestEquivalences:
    def test_optimized_tables_same_pixels_smaller_file(self, small_rgb):
        s1 = EncoderSettings(quality=80)
        s2 = EncoderSettings(quality=80, optimize_huffman=True)
        d1, d2 = encode_jpeg(small_rgb, s1), encode_jpeg(small_rgb, s2)
        assert len(d2) < len(d1)
        assert np.array_equal(decode_jpeg(d1).rgb, decode_jpeg(d2).rgb)

    def test_restart_markers_same_pixels(self, small_rgb):
        d1 = encode_jpeg(small_rgb, EncoderSettings(quality=80))
        d2 = encode_jpeg(small_rgb, EncoderSettings(quality=80,
                                                    restart_interval=2))
        assert np.array_equal(decode_jpeg(d1).rgb, decode_jpeg(d2).rgb)

    def test_aan_equals_matrix_idct(self, jpeg_422):
        a = decode_jpeg(jpeg_422, DecodeOptions(idct_method="aan")).rgb
        m = decode_jpeg(jpeg_422, DecodeOptions(idct_method="matrix")).rgb
        assert np.array_equal(a, m)

    @pytest.mark.parametrize("step", [1, 3, 5])
    def test_rowwise_equals_whole(self, jpeg_422, step):
        whole = decode_jpeg(jpeg_422).rgb
        rows = decode_jpeg_rowwise(jpeg_422, rows_per_step=step).rgb
        assert np.array_equal(whole, rows)

    def test_444_rowwise_equals_whole(self, jpeg_444):
        whole = decode_jpeg(jpeg_444).rgb
        rows = decode_jpeg_rowwise(jpeg_444, rows_per_step=2).rgb
        assert np.array_equal(whole, rows)

    def test_decoder_returns_row_offsets(self, jpeg_422):
        dec = decode_jpeg(jpeg_422)
        assert len(dec.row_byte_offsets) == dec.info.geometry.mcu_rows + 1


class TestOddSizes:
    @pytest.mark.parametrize("size", [(1, 1), (7, 5), (8, 8), (9, 17),
                                      (16, 16), (33, 31)])
    @pytest.mark.parametrize("mode", ["4:4:4", "4:2:2"])
    def test_non_aligned_dimensions(self, size, mode):
        h, w = size
        rgb = synthetic_photo(h, w, seed=h * 100 + w)
        data = encode_jpeg(rgb, EncoderSettings(quality=90, subsampling=mode))
        out = decode_jpeg(data)
        assert out.rgb.shape == (h, w, 3)
        info = parse_jpeg(data)
        assert (info.width, info.height) == (w, h)


class TestErrors:
    def test_non_rgb_input_rejected(self):
        with pytest.raises(JpegError):
            encode_jpeg(np.zeros((10, 10), dtype=np.uint8))

    def test_grayscale_array_rejected(self):
        with pytest.raises(JpegError):
            encode_jpeg(np.zeros((10, 10, 1), dtype=np.uint8))

    def test_fancy_vs_simple_upsampling_differ(self, small_rgb):
        data = encode_jpeg(small_rgb, EncoderSettings(subsampling="4:2:2"))
        fancy = decode_jpeg(data, DecodeOptions(fancy_upsampling=True)).rgb
        simple = decode_jpeg(data, DecodeOptions(fancy_upsampling=False)).rgb
        assert not np.array_equal(fancy, simple)
