"""The hostile-input scenario matrix (PR 8 headline).

A differential harness sweeping the full decode scenario space —
``{baseline, progressive} x {gray, 3-comp YCbCr, 4-comp YCCK} x
{4:4:4, 4:2:2, 4:2:0, 4:1:1, 4:4:0} x {valid, truncated, bit-flipped,
stray-marker}`` — across entropy engines, batch backends and the
salvage path, asserting:

- **valid** cells decode pixel-identically everywhere: progressive
  streams match their baseline twin (same quantized coefficients, so
  the reconstruction must agree bit-for-bit), both entropy engines
  agree, and the batch service reproduces the sequential oracle;
- **hostile** cells fail identically across engines (same exception
  type and message) or agree on the pixels — and under salvage resolve
  deterministically to a best-effort image plus an error-region map,
  never a hang, a worker crash, or a silent divergence.

Satellites live here too: the named unsupported-SOF matrix (one case
per marker 0xC0-0xCF) and ``peek_dimensions`` property tests over every
SOF flavor and component count with junk segments fuzzed before SOF.
"""

from __future__ import annotations

import struct

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import scenario_corpus
from repro.errors import (
    JpegError,
    JpegFormatError,
    JpegUnsupportedError,
)
from repro.jpeg import (
    DecodeOptions,
    EncoderSettings,
    decode_jpeg,
    encode_jpeg,
    parse_jpeg,
)
from repro.jpeg import constants as C
from repro.service import BatchDecoder, ImageRequest
from repro.service.transport import peek_dimensions

# ---------------------------------------------------------------------------
# The corpus: every valid cell of the scenario space, plus hostile
# mutators applied per-cell.  96x64 keeps a full sweep cheap.
# ---------------------------------------------------------------------------

ENGINES = ("fast", "reference")
HOSTILE_KINDS = ("truncated", "bit-flipped", "stray-marker")


@pytest.fixture(scope="module")
def corpus() -> dict[str, bytes]:
    return dict(scenario_corpus(size=(96, 64)))


@pytest.fixture(scope="module")
def oracles(corpus) -> dict[str, np.ndarray]:
    """Sequential fast-engine decode of every valid member."""
    return {name: decode_jpeg(blob).rgb for name, blob in corpus.items()}


def _entropy_start(blob: bytes) -> int:
    """Offset of the first entropy-coded byte (just past the first SOS)."""
    sos = blob.find(bytes([0xFF, C.SOS]))
    assert sos > 0
    length = struct.unpack(">H", blob[sos + 2:sos + 4])[0]
    return sos + 2 + length


def hostile_variant(blob: bytes, kind: str) -> bytes:
    """Deterministically corrupt *blob* inside its entropy-coded data."""
    start = _entropy_start(blob)
    if kind == "truncated":
        cut = start + (len(blob) - start) * 3 // 5
        return blob[:cut]
    if kind == "bit-flipped":
        pos = start + (len(blob) - start) // 3
        mutated = bytearray(blob)
        mutated[pos] ^= 0x40
        return bytes(mutated)
    if kind == "stray-marker":
        pos = start + (len(blob) - start) // 2
        return blob[:pos] + bytes([0xFF, 0xD3]) + blob[pos:]
    raise AssertionError(kind)


def outcome(blob: bytes, engine: str):
    """Decode result as comparable data: pixels or (type, message)."""
    try:
        return decode_jpeg(blob, DecodeOptions(entropy_engine=engine)).rgb
    except JpegError as exc:
        return (type(exc).__name__, str(exc))


def assert_same_outcome(a, b, context: str) -> None:
    if isinstance(a, np.ndarray) and isinstance(b, np.ndarray):
        assert np.array_equal(a, b), f"pixel divergence: {context}"
    else:
        assert a == b, f"outcome divergence: {context}: {a} vs {b}"


# ---------------------------------------------------------------------------
# Valid cells.
# ---------------------------------------------------------------------------

class TestValidMatrix:
    def test_corpus_covers_the_matrix(self, corpus):
        """11 layout cells x 2 codings, with gray collapsed to 4:4:4."""
        assert len(corpus) == 22
        for coding in ("baseline", "progressive"):
            for cs, subs in (("gray", ["4:4:4"]),
                             ("ycbcr", ["4:4:4", "4:2:2", "4:2:0",
                                        "4:1:1", "4:4:0"]),
                             ("ycck", ["4:4:4", "4:2:2", "4:2:0",
                                       "4:1:1", "4:4:0"])):
                for sub in subs:
                    assert f"{coding}-{cs}-{sub}-96x64-q85" in corpus

    def test_header_facts_match_the_recipe(self, corpus):
        ncomp = {"gray": 1, "ycbcr": 3, "ycck": 4}
        for name, blob in corpus.items():
            coding, cs, sub = name.split("-")[:3]
            info = parse_jpeg(blob)
            assert info.progressive == (coding == "progressive"), name
            assert len(info.frame.components) == ncomp[cs], name
            assert info.subsampling_mode == sub, name
            assert len(info.scans) == (1 if coding == "baseline"
                                       else 2 + 4 * ncomp[cs]), name
            assert peek_dimensions(blob) == (96, 64), name

    def test_progressive_matches_baseline_twin(self, corpus, oracles):
        """The tentpole contract: a progressive re-encode carries the
        same quantized coefficients as its baseline twin, so the two
        decodes must agree on every pixel."""
        for name, rgb in oracles.items():
            if not name.startswith("progressive-"):
                continue
            twin = oracles["baseline" + name[len("progressive"):]]
            assert np.array_equal(rgb, twin), name

    def test_engine_parity(self, corpus, oracles):
        for name, blob in corpus.items():
            ref = decode_jpeg(
                blob, DecodeOptions(entropy_engine="reference")).rgb
            assert np.array_equal(ref, oracles[name]), name

    def test_salvage_is_a_no_op_on_valid_input(self, corpus, oracles):
        for name, blob in corpus.items():
            decoded = decode_jpeg(blob, DecodeOptions(salvage=True))
            assert not decoded.salvaged, name
            assert not decoded.errors, name
            assert np.array_equal(decoded.rgb, oracles[name]), name

    def test_batch_backends_reproduce_the_oracle(self, corpus, oracles):
        names = sorted(corpus)
        for backend in ("serial", "thread"):
            with BatchDecoder(workers=2, backend=backend) as dec:
                batch = dec.decode_batch(
                    [ImageRequest(data=corpus[n], request_id=n)
                     for n in names])
            for res in batch:
                assert res.ok, (backend, res.request_id, res.error)
                assert res.segments == 1  # nothing in the matrix splits
                assert np.array_equal(res.rgb, oracles[res.request_id]), \
                    (backend, res.request_id)

    def test_process_pool_with_transport(self, corpus, oracles):
        """One process-backed sweep over a cross-coding subset: the
        worker boundary (pickle or shm transport) must not disturb any
        scenario's pixels."""
        names = ["baseline-ycck-4:1:1-96x64-q85",
                 "progressive-ycck-4:1:1-96x64-q85",
                 "progressive-gray-4:4:4-96x64-q85",
                 "progressive-ycbcr-4:4:0-96x64-q85"]
        with BatchDecoder(workers=2, backend="process") as dec:
            batch = dec.decode_batch(
                [ImageRequest(data=corpus[n], request_id=n) for n in names])
        for res in batch:
            assert res.ok, (res.request_id, res.error)
            assert np.array_equal(res.rgb, oracles[res.request_id]), \
                res.request_id


# ---------------------------------------------------------------------------
# Hostile cells.
# ---------------------------------------------------------------------------

class TestHostileMatrix:
    @pytest.mark.parametrize("kind", HOSTILE_KINDS)
    def test_engines_agree_on_every_hostile_cell(self, corpus, kind):
        """Each hostile cell either fails with the identical exception
        in both engines or decodes to identical pixels."""
        for name, blob in corpus.items():
            bad = hostile_variant(blob, kind)
            assert_same_outcome(outcome(bad, "fast"),
                                outcome(bad, "reference"),
                                f"{name}/{kind}")

    @pytest.mark.parametrize("kind", HOSTILE_KINDS)
    def test_hostile_outcomes_are_deterministic(self, corpus, kind):
        for name, blob in corpus.items():
            bad = hostile_variant(blob, kind)
            assert_same_outcome(outcome(bad, "fast"), outcome(bad, "fast"),
                                f"{name}/{kind} (repeat)")

    def test_truncation_salvage_recovers_leading_rows(self, corpus):
        """Truncated streams strict-fail but salvage to a full-size
        image with a deterministic error report; the error map condemns
        a (possibly empty) trailing region, never the whole frame's
        leading rows."""
        for name, blob in corpus.items():
            bad = hostile_variant(blob, "truncated")
            with pytest.raises(JpegError):
                decode_jpeg(bad)
            first = decode_jpeg(bad, DecodeOptions(salvage=True))
            again = decode_jpeg(bad, DecodeOptions(salvage=True))
            info = parse_jpeg(blob)
            geo = info.geometry
            assert first.salvaged, name
            assert first.rgb.shape == (64, 96, 3), name
            assert first.error_map.shape == (geo.mcu_rows,
                                             geo.mcus_per_row), name
            assert first.errors == again.errors, name
            assert np.array_equal(first.error_map, again.error_map), name
            assert np.array_equal(first.rgb, again.rgb), name

    @pytest.mark.parametrize("kind", ("bit-flipped", "stray-marker"))
    def test_salvage_never_raises_on_entropy_damage(self, corpus, kind):
        """In-scan corruption always resolves under salvage: full-size
        pixels plus either a clean map (the flip landed harmlessly) or
        recorded errors."""
        for name, blob in corpus.items():
            bad = hostile_variant(blob, kind)
            decoded = decode_jpeg(bad, DecodeOptions(salvage=True))
            assert decoded.rgb.shape == (64, 96, 3), name
            assert decoded.salvaged == bool(decoded.errors), name

    def test_hostile_cells_fail_alone_in_a_batch(self, corpus, oracles):
        """One corrupt member never disturbs its batchmates."""
        good = "baseline-ycbcr-4:2:0-96x64-q85"
        prog = "progressive-ycck-4:2:2-96x64-q85"
        bad = hostile_variant(corpus[prog], "truncated")
        with BatchDecoder(workers=2, backend="thread") as dec:
            batch = dec.decode_batch([
                ImageRequest(data=corpus[good], request_id="good"),
                ImageRequest(data=bad, request_id="bad"),
                ImageRequest(data=corpus[prog], request_id="prog"),
            ])
        by_id = {r.request_id: r for r in batch}
        assert by_id["good"].ok and by_id["prog"].ok
        assert not by_id["bad"].ok
        assert by_id["bad"].error_type and by_id["bad"].error
        assert not by_id["bad"].infra_failure  # bad bytes, not bad lanes
        assert np.array_equal(by_id["good"].rgb, oracles[good])
        assert np.array_equal(by_id["prog"].rgb, oracles[prog])


# ---------------------------------------------------------------------------
# Satellite: the named unsupported-SOF matrix, one case per 0xC0-0xCF.
# ---------------------------------------------------------------------------

def _with_sof_marker(blob: bytes, marker: int) -> bytes:
    idx = blob.find(bytes([0xFF, C.SOF0]))
    assert idx > 0
    mutated = bytearray(blob)
    mutated[idx + 1] = marker
    return bytes(mutated)


class TestSofMarkerMatrix:
    @pytest.fixture(scope="class")
    def baseline(self, tiny_rgb) -> bytes:
        return encode_jpeg(tiny_rgb, EncoderSettings(quality=80))

    def test_c0_baseline_accepted(self, baseline):
        assert parse_jpeg(baseline).progressive is False

    def test_c2_progressive_marker_demands_progressive_scans(self, baseline):
        """SOF2 is supported, but stamping it onto a baseline stream
        leaves an SOS whose spectral band is illegal for progressive."""
        with pytest.raises(JpegFormatError,
                           match="mixes DC and AC coefficients"):
            parse_jpeg(_with_sof_marker(baseline, C.SOF2))

    def test_c4_dht_in_sof_position_is_a_format_error(self, baseline):
        """0xC4 is DHT: the frame header bytes misparse as a Huffman
        table (or the stream ends frameless) — a format error, never an
        'unsupported mode' claim."""
        with pytest.raises(JpegFormatError):
            parse_jpeg(_with_sof_marker(baseline, C.DHT))

    def test_c8_jpg_reserved_marker_rejected(self, baseline):
        with pytest.raises(JpegFormatError, match="0xFFC8"):
            parse_jpeg(_with_sof_marker(baseline, C.JPG))

    def test_cc_dac_named_arithmetic_conditioning(self, baseline):
        with pytest.raises(JpegUnsupportedError,
                           match="arithmetic coding conditioning"):
            parse_jpeg(_with_sof_marker(baseline, C.DAC))

    @pytest.mark.parametrize("marker", sorted(C.UNSUPPORTED_SOF))
    def test_unsupported_sof_errors_are_named(self, baseline, marker):
        """Every refused SOF says *what* mode was refused and which
        marker carried it."""
        with pytest.raises(JpegUnsupportedError) as exc_info:
            parse_jpeg(_with_sof_marker(baseline, marker))
        message = str(exc_info.value)
        assert C.SOF_MODE_NAMES[marker] in message
        assert f"0xFF{marker:02X}" in message


# ---------------------------------------------------------------------------
# Satellite: peek_dimensions property tests (every SOF flavor, 1/3/4
# components, junk segments fuzzed in front of the frame header).
# ---------------------------------------------------------------------------

PEEK_SOF_MARKERS = sorted(frozenset(range(0xC0, 0xD0)) - {0xC4, 0xC8, 0xCC})


def _sof_segment(marker: int, width: int, height: int, ncomp: int) -> bytes:
    payload = struct.pack(">BHHB", 8, height, width, ncomp)
    for i in range(ncomp):
        payload += bytes([i + 1, 0x11, 0])
    return bytes([0xFF, marker]) + struct.pack(">H", 2 + len(payload)) \
        + payload


def _junk_segments(blobs: list[bytes]) -> bytes:
    """APPn/COM segments wrapping arbitrary payloads."""
    out = b""
    for i, payload in enumerate(blobs):
        marker = 0xE0 + (i % 16) if i % 2 else 0xFE  # APPn / COM
        out += bytes([0xFF, marker]) \
            + struct.pack(">H", 2 + len(payload)) + payload
    return out


class TestPeekDimensionsProperties:
    @settings(max_examples=40, deadline=None)
    @given(marker=st.sampled_from(PEEK_SOF_MARKERS),
           width=st.integers(1, 0xFFFF), height=st.integers(1, 0xFFFF),
           ncomp=st.sampled_from([1, 3, 4]),
           junk=st.lists(st.binary(max_size=64), max_size=4))
    def test_every_sof_flavor_peeks(self, marker, width, height, ncomp,
                                    junk):
        """The peek is marker-level: any SOFn (supported or not), any
        component count, any pile of junk segments in front."""
        blob = b"\xff\xd8" + _junk_segments(junk) \
            + _sof_segment(marker, width, height, ncomp)
        assert peek_dimensions(blob) == (width, height)

    @settings(max_examples=40, deadline=None)
    @given(junk=st.lists(st.binary(max_size=64), max_size=4))
    def test_no_sof_means_none(self, junk):
        blob = b"\xff\xd8" + _junk_segments(junk) + b"\xff\xd9"
        assert peek_dimensions(blob) is None

    @settings(max_examples=60, deadline=None)
    @given(data=st.binary(max_size=256))
    def test_arbitrary_bytes_never_raise(self, data):
        result = peek_dimensions(data)
        assert result is None or (result[0] > 0 and result[1] > 0)

    @settings(max_examples=40, deadline=None)
    @given(marker=st.sampled_from(PEEK_SOF_MARKERS),
           cut=st.integers(0, 16))
    def test_truncated_header_is_none_not_an_exception(self, marker, cut):
        blob = b"\xff\xd8" + _sof_segment(marker, 96, 64, 3)
        assert peek_dimensions(blob[:len(blob) - 1 - cut]) is None

    def test_table_markers_are_not_frames(self):
        """0xC4/0xC8/0xCC carry tables, not frame headers: a stream
        holding only those yields None rather than bogus dimensions."""
        for marker in (0xC4, 0xC8, 0xCC):
            blob = b"\xff\xd8" + _sof_segment(marker, 96, 64, 3)
            assert peek_dimensions(blob) is None

    def test_corpus_members_peek_their_size(self, corpus):
        for name, blob in corpus.items():
            assert peek_dimensions(blob) == (96, 64), name


# ---------------------------------------------------------------------------
# Satellite: salvage under FaultPlan chaos.  A corrupt-but-salvageable
# image is a property of the *bytes*: it must resolve ok (with its
# error map) on the first attempt, consume no retry budget, and leave
# every lane breaker closed — while injected worker crashes around it
# still retry and recover as usual.
# ---------------------------------------------------------------------------

class TestSalvageUnderChaos:
    def test_salvage_result_is_not_an_infrastructure_failure(self, corpus):
        from repro.service import FaultPlan

        bad = hostile_variant(corpus["baseline-ycbcr-4:2:2-96x64-q85"],
                              "truncated")
        plan = FaultPlan(kill_at=(0,))  # first dispatch's worker "dies"
        requests = [
            ImageRequest(data=corpus["baseline-ycbcr-4:4:4-96x64-q85"],
                         request_id="victim"),
            ImageRequest(data=bad, request_id="salvage", salvage=True),
            ImageRequest(data=bad, request_id="strict"),
        ]
        with BatchDecoder(workers=2, backend="thread", faults=plan,
                          retry_budget=2) as dec:
            batch = dec.decode_batch(requests)
        by_id = {r.request_id: r for r in batch}

        salvaged = by_id["salvage"]
        assert salvaged.ok and salvaged.salvaged
        assert salvaged.error_regions is not None
        assert salvaged.error_regions.any()
        assert salvaged.salvage_errors
        assert salvaged.attempts == 1          # no retry budget burned
        assert not salvaged.infra_failure

        strict = by_id["strict"]               # same bytes, no salvage
        assert not strict.ok and not strict.infra_failure
        assert strict.attempts == 1            # decode errors never retry

        victim = by_id["victim"]               # the injected crash retried
        assert victim.ok and victim.attempts > 1
        assert plan.injected["kill"] == 1

    def test_breakers_stay_closed_for_salvage_results(self, corpus):
        from repro.evaluation import platforms
        from repro.service import LaneBreakerBoard, ModelScheduler

        board = LaneBreakerBoard(threshold=1)  # hair-trigger on purpose
        sched = ModelScheduler(policy="model", platform=platforms.GTX560,
                               breakers=board)
        bad = hostile_variant(corpus["baseline-ycbcr-4:2:2-96x64-q85"],
                              "truncated")
        requests = [
            ImageRequest(data=bad, request_id=f"salvage-{i}", salvage=True)
            for i in range(3)
        ] + [
            ImageRequest(data=corpus["baseline-ycbcr-4:2:2-96x64-q85"],
                         request_id="clean"),
        ]
        with BatchDecoder(workers=2, backend="thread",
                          scheduler=sched) as dec:
            batch = dec.decode_batch(requests)
        for res in batch:
            assert res.ok, (res.request_id, res.error)
        assert board.trips() == 0
        assert all(b["state"] == "closed"
                   for b in board.snapshot().values())
