"""Property tests: fast entropy engine == reference oracle, bit for bit.

The fused fast-path engine (repro.jpeg.fast_entropy) must be
indistinguishable from the historical per-symbol decoder on *every*
stream: identical coefficient planes on valid data across randomized
images x subsampling modes x restart intervals, and identical exception
types and messages on adversarial streams (long codes > 8 bits, ZRL
runs, truncated payloads, tampered restart markers, stray markers).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import EntropyError, JpegError
from repro.jpeg import (
    EncoderSettings,
    DecodeOptions,
    create_entropy_decoder,
    decode_jpeg,
    destuff_scan,
    encode_jpeg,
    parse_jpeg,
)
from repro.jpeg import constants as C
from repro.jpeg.blocks import ImageGeometry
from repro.jpeg.decoder import component_tables_from_info
from repro.jpeg.entropy import (
    CoefficientBuffers,
    ComponentTables,
    EntropyDecoder,
    EntropyEncoder,
)
from repro.jpeg.fast_entropy import FastEntropyDecoder, fused_tables
from repro.jpeg.huffman import HuffmanSpec
from repro.data import synthetic_photo


def std_tables() -> list[ComponentTables]:
    dc_l = HuffmanSpec(C.STD_DC_LUMINANCE_BITS, C.STD_DC_LUMINANCE_VALUES)
    ac_l = HuffmanSpec(C.STD_AC_LUMINANCE_BITS, C.STD_AC_LUMINANCE_VALUES)
    dc_c = HuffmanSpec(C.STD_DC_CHROMINANCE_BITS, C.STD_DC_CHROMINANCE_VALUES)
    ac_c = HuffmanSpec(C.STD_AC_CHROMINANCE_BITS, C.STD_AC_CHROMINANCE_VALUES)
    return [ComponentTables(dc_l, ac_l), ComponentTables(dc_c, ac_c),
            ComponentTables(dc_c, ac_c)]


def random_coefficients(geo: ImageGeometry, seed: int, spread: int = 60,
                        density: float = 0.08) -> CoefficientBuffers:
    rng = np.random.default_rng(seed)
    coeffs = CoefficientBuffers.empty(geo)
    for plane in coeffs.planes:
        plane[:, 0, 0] = rng.integers(-spread, spread, plane.shape[0])
        mask = rng.random(plane.shape) < density
        vals = rng.integers(-30, 31, plane.shape).astype(np.int16)
        plane += (mask * vals).astype(np.int16)
    return coeffs


def decode_outcome(engine: str, geo: ImageGeometry,
                   tables: list[ComponentTables], restart_interval: int,
                   data: bytes):
    """Decode fully; return ("ok", planes) or ("err", type, message)."""
    dec = create_entropy_decoder(engine, geo, tables, restart_interval)
    try:
        dec.decode_all(data)
    except JpegError as exc:  # Bitstream/Huffman/EntropyError
        return ("err", type(exc), str(exc))
    return ("ok", dec.coefficients.planes)


def assert_engines_agree(geo, tables, restart_interval, data):
    ref = decode_outcome("reference", geo, tables, restart_interval, data)
    fast = decode_outcome("fast", geo, tables, restart_interval, data)
    assert ref[0] == fast[0], (ref, fast)
    if ref[0] == "ok":
        for a, b in zip(ref[1], fast[1]):
            assert np.array_equal(a, b)
    else:
        assert ref[1:] == fast[1:]


class TestBitExactnessRandomized:
    @pytest.mark.parametrize("mode", ["4:4:4", "4:2:2", "4:2:0"])
    @pytest.mark.parametrize("interval", [0, 1, 3, 7])
    def test_random_coefficients_roundtrip(self, mode, interval):
        geo = ImageGeometry(72, 56, mode)
        tables = std_tables()
        for seed in (1, 2, 3):
            coeffs = random_coefficients(geo, seed=seed)
            data = EntropyEncoder(geo, tables, interval).encode(coeffs)
            ref = EntropyDecoder(geo, tables, interval)
            ref.decode_all(data)
            fast = FastEntropyDecoder(geo, tables, interval)
            fast.decode_all(data)
            for orig, a, b in zip(coeffs.planes, ref.coefficients.planes,
                                  fast.coefficients.planes):
                assert np.array_equal(orig, a)
                assert np.array_equal(a, b)

    @pytest.mark.parametrize("mode", ["4:4:4", "4:2:2"])
    def test_real_jpegs_decode_identically(self, mode):
        rgb = synthetic_photo(88, 120, seed=31, detail=0.8)
        for interval in (0, 5):
            data = encode_jpeg(rgb, EncoderSettings(
                quality=90, subsampling=mode, restart_interval=interval))
            info = parse_jpeg(data)
            assert_engines_agree(info.geometry,
                                 component_tables_from_info(info),
                                 info.restart_interval, info.entropy_data)

    def test_decode_jpeg_engine_knob(self):
        rgb = synthetic_photo(40, 56, seed=5, detail=0.6)
        data = encode_jpeg(rgb, EncoderSettings(quality=85,
                                                subsampling="4:2:2"))
        fast = decode_jpeg(data, DecodeOptions(entropy_engine="fast"))
        ref = decode_jpeg(data, DecodeOptions(entropy_engine="reference"))
        assert np.array_equal(fast.rgb, ref.rgb)
        assert fast.row_byte_offsets[0] == 0
        assert all(b >= a for a, b in zip(fast.row_byte_offsets,
                                          fast.row_byte_offsets[1:]))
        assert fast.row_byte_offsets[-1] <= ref.row_byte_offsets[-1]

    def test_unknown_engine_rejected(self):
        geo = ImageGeometry(16, 16, "4:4:4")
        with pytest.raises(EntropyError):
            create_entropy_decoder("warp", geo, std_tables(), 0)


class TestAdversarialStreams:
    """Long codes, ZRL runs, magnitude widths beyond the fused window."""

    def _geometry(self):
        return ImageGeometry(32, 16, "4:4:4")

    def test_long_codes_and_wide_magnitudes(self):
        geo = self._geometry()
        tables = std_tables()
        coeffs = CoefficientBuffers.empty(geo)
        rng = np.random.default_rng(7)
        for plane in coeffs.planes:
            # category-10 ACs force 16-bit codes in the Annex-K tables,
            # far outside the 8-bit fused window
            plane[:, 0, 0] = rng.integers(-1000, 1000, plane.shape[0])
            plane[:, 7, 7] = rng.integers(-1000, 1000, plane.shape[0])
            plane[:, 3, 5] = rng.integers(-1000, 1000, plane.shape[0])
        data = EntropyEncoder(geo, tables).encode(coeffs)
        assert_engines_agree(geo, tables, 0, data)
        fast = FastEntropyDecoder(geo, tables)
        fast.decode_all(data)
        for orig, got in zip(coeffs.planes, fast.coefficients.planes):
            assert np.array_equal(orig, got)

    def test_zrl_runs(self):
        geo = self._geometry()
        tables = std_tables()
        coeffs = CoefficientBuffers.empty(geo)
        for plane in coeffs.planes:
            # zig-zag position 63 after 62 zeros: needs 3 ZRL escapes
            plane[:, 7, 7] = 5
            plane[:, 0, 0] = -3
        data = EntropyEncoder(geo, tables).encode(coeffs)
        assert_engines_agree(geo, tables, 0, data)
        fast = FastEntropyDecoder(geo, tables)
        fast.decode_all(data)
        for orig, got in zip(coeffs.planes, fast.coefficients.planes):
            assert np.array_equal(orig, got)

    def test_truncated_streams_raise_identically(self):
        geo = ImageGeometry(48, 48, "4:2:2")
        tables = std_tables()
        coeffs = random_coefficients(geo, seed=11, spread=200, density=0.2)
        data = EntropyEncoder(geo, tables).encode(coeffs)
        cuts = sorted(set(
            list(range(0, min(32, len(data))))
            + list(range(0, len(data), max(1, len(data) // 40)))
        ))
        for cut in cuts:
            assert_engines_agree(geo, tables, 0, data[:cut])

    def test_truncated_with_restarts_raise_identically(self):
        geo = ImageGeometry(48, 32, "4:2:2")
        tables = std_tables()
        coeffs = random_coefficients(geo, seed=13)
        data = EntropyEncoder(geo, tables, restart_interval=2).encode(coeffs)
        for cut in range(0, len(data), max(1, len(data) // 30)):
            assert_engines_agree(geo, tables, 2, data[:cut])

    def test_tampered_restart_sequence(self):
        geo = ImageGeometry(48, 32, "4:2:2")
        tables = std_tables()
        coeffs = random_coefficients(geo, seed=17)
        data = EntropyEncoder(geo, tables, restart_interval=2).encode(coeffs)
        markers = destuff_scan(data).marker_orig_offsets
        assert markers, "tampering test needs at least one RSTn"
        # flip RST0 -> RST5: both engines must report the same sequence error
        bad = bytearray(data)
        bad[markers[0] + 1] = 0xD5
        assert_engines_agree(geo, tables, 2, bytes(bad))
        # replace the RSTn with a non-restart marker (EOI)
        bad = bytearray(data)
        bad[markers[0] + 1] = 0xD9
        assert_engines_agree(geo, tables, 2, bytes(bad))

    def test_trailing_lone_ff(self):
        geo = ImageGeometry(48, 48, "4:2:2")
        tables = std_tables()
        coeffs = random_coefficients(geo, seed=19, spread=200, density=0.2)
        data = EntropyEncoder(geo, tables).encode(coeffs)
        for cut in (len(data) // 5, len(data) // 2):
            assert_engines_agree(geo, tables, 0, data[:cut] + b"\xff")

    def test_wide_ac_magnitudes_on_long_codes(self):
        """AC size up to 15 on a 16-bit code = 31 bits in one symbol.

        The refill threshold must cover it: the reference decoder
        accepts such tables (no AC size cap), so the fast engine has to
        decode — or fail — identically rather than underflow its bit
        buffer.  Regression test for a ValueError('negative shift
        count') found in review.
        """
        geo = ImageGeometry(8, 8, "4:4:4")
        dc = HuffmanSpec((0, 2) + (0,) * 14, (0, 4))
        # 2-bit EOB, then 16-bit codes for (0,1) and the size-15 symbol
        ac = HuffmanSpec((0, 1) + (0,) * 13 + (2,), (0x00, 0x01, 0x0F))
        tables = [ComponentTables(dc, ac)] * 3
        rng = np.random.default_rng(41)
        # 0x10007FFE: DC "00" (2 bits) then the 16-bit code 0x4001 for
        # the size-15 symbol with its magnitude cut short — with a
        # too-small refill threshold the fast engine underflowed nbits
        # (ValueError) where the reference raises BitstreamError
        streams = [bytes([0x10, 0x00, 0x7F, 0xFE]),
                   b"\x20\x00\x3f\xfe", b"\x00" * 8, b"\xff\x00" * 4]
        streams += [rng.bytes(int(n)) for n in rng.integers(1, 24, 30)]
        for data in streams:
            assert_engines_agree(geo, tables, 0, data)

    def test_random_streams_fuzz(self):
        """Arbitrary bytes: both engines agree on result or exact error."""
        geo = ImageGeometry(24, 16, "4:2:2")
        tables = std_tables()
        rng = np.random.default_rng(43)
        for _ in range(60):
            data = rng.bytes(int(rng.integers(0, 120)))
            assert_engines_agree(geo, tables, 0, data)
            assert_engines_agree(geo, tables, 2, data)

    def test_stray_marker_mid_stream(self):
        geo = ImageGeometry(48, 48, "4:2:2")
        tables = std_tables()
        coeffs = random_coefficients(geo, seed=23)
        data = EntropyEncoder(geo, tables).encode(coeffs)
        cut = len(data) // 3
        assert_engines_agree(geo, tables, 0,
                             data[:cut] + b"\xff\xd9" + data[cut:])


class TestPrescan:
    def test_destuff_removes_stuffing_and_indexes_markers(self):
        raw = b"\x12\xff\x00\x34" + b"\xff\xd0" + b"\x56\xff\x00"
        scan = destuff_scan(raw)
        assert scan.payload == b"\x12\xff\x34\x56\xff"
        assert scan.marker_payload_offsets == [3]
        assert scan.marker_values == [0xD0]
        assert scan.marker_orig_offsets == [4]
        assert scan.terminator is None
        # payload offsets map back through stuffing and marker gaps
        assert scan.orig_offset(0) == 0
        assert scan.orig_offset(3) == 6   # just past the RST0 pair
        assert scan.orig_offset(5) == 9   # just past the final stuffed pair

    def test_terminating_marker_ends_payload(self):
        raw = b"\xaa\xbb\xff\xd9\xcc\xcc"
        scan = destuff_scan(raw)
        assert scan.payload == b"\xaa\xbb"
        assert scan.terminator == 0xD9

    def test_fused_tables_cover_short_codes(self):
        spec = HuffmanSpec(C.STD_AC_LUMINANCE_BITS, C.STD_AC_LUMINANCE_VALUES)
        tab = fused_tables(spec, "ac")
        # (run 0, size 1) has a 2-bit code: every prefix with that code and
        # any magnitude bit must be fused (3 consumed bits)
        fused_hits = sum(1 for e in tab.fused if e)
        assert fused_hits > 128  # most of the probe space is one-shot
        entry = tab.fused[0]     # prefix 00000000 -> symbol 0x01, bit 0
        assert entry >> 16 == 3  # 2 code bits + 1 magnitude bit
        assert (entry & 0xFFF) - 2048 == -1  # EXTEND(0, 1) == -1
