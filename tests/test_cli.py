"""CLI commands, driven through main() with temp files."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cli import main
from repro.jpeg import decode_jpeg, parse_jpeg


@pytest.fixture()
def jpeg_file(tmp_path, jpeg_422):
    path = tmp_path / "img.jpg"
    path.write_bytes(jpeg_422)
    return path


class TestInfo:
    def test_prints_header_facts(self, jpeg_file, capsys):
        assert main(["info", str(jpeg_file)]) == 0
        out = capsys.readouterr().out
        assert "144 x 96" in out
        assert "4:2:2" in out
        assert "bytes/pixel" in out


class TestSynth:
    def test_generates_valid_jpeg(self, tmp_path, capsys):
        out_path = tmp_path / "gen.jpg"
        assert main(["synth", str(out_path), "--width", "96", "--height",
                     "64", "--seed", "3"]) == 0
        info = parse_jpeg(out_path.read_bytes())
        assert (info.width, info.height) == (96, 64)

    def test_restart_interval_flag(self, tmp_path):
        out_path = tmp_path / "rst.jpg"
        main(["synth", str(out_path), "--width", "64", "--height", "64",
              "--restart-interval", "2"])
        assert parse_jpeg(out_path.read_bytes()).restart_interval == 2

    def test_kinds(self, tmp_path):
        for kind in ("smooth", "detail", "skewed"):
            out_path = tmp_path / f"{kind}.jpg"
            assert main(["synth", str(out_path), "--kind", kind,
                         "--width", "48", "--height", "48"]) == 0


def _read_ppm(path):
    with open(path, "rb") as f:
        assert f.readline().strip() == b"P6"
        w, h = map(int, f.readline().split())
        assert f.readline().strip() == b"255"
        return np.frombuffer(f.read(), dtype=np.uint8).reshape(h, w, 3)


class TestDecode:
    def test_reference_decode_to_ppm(self, jpeg_file, tmp_path, jpeg_422):
        out_path = tmp_path / "out.ppm"
        assert main(["decode", str(jpeg_file), str(out_path)]) == 0
        assert np.array_equal(_read_ppm(out_path), decode_jpeg(jpeg_422).rgb)

    def test_pps_decode_matches_reference(self, jpeg_file, tmp_path,
                                          jpeg_422, capsys):
        out_path = tmp_path / "out.ppm"
        assert main(["decode", str(jpeg_file), str(out_path),
                     "--mode", "pps", "--platform", "GTX 560"]) == 0
        assert "simulated pps decode" in capsys.readouterr().out
        assert np.array_equal(_read_ppm(out_path), decode_jpeg(jpeg_422).rgb)


class TestProfileEvaluate:
    def test_profile_saves_model(self, tmp_path, capsys):
        out_path = tmp_path / "model.json"
        assert main(["profile", "--platform", "GTX 560",
                     "--output", str(out_path)]) == 0
        from repro.core import PerformanceModel
        model = PerformanceModel.load(out_path)
        assert model.platform_name == "GTX 560"

    def test_evaluate_lists_all_modes(self, jpeg_file, capsys):
        assert main(["evaluate", str(jpeg_file)]) == 0
        out = capsys.readouterr().out
        for mode in ("sequential", "simd", "gpu", "pipeline", "sps", "pps"):
            assert mode in out


class TestServeBatch:
    def test_scheduled_serve_batch(self, jpeg_file, tmp_path, jpeg_422,
                                   capsys):
        out_dir = tmp_path / "out"
        assert main(["serve-batch", str(jpeg_file), "--schedule", "model",
                     "--backend", "serial", "--batch-size", "4",
                     "--out-dir", str(out_dir)]) == 0
        out = capsys.readouterr().out
        assert "schedule=model" in out
        assert "schedule[model]" in out and "makespan=" in out
        assert "scheduled placements" in out
        (ppm,) = sorted(out_dir.glob("*.ppm"))
        assert np.array_equal(_read_ppm(ppm), decode_jpeg(jpeg_422).rgb)

    def test_roundrobin_schedule_flag(self, jpeg_file, capsys):
        assert main(["serve-batch", str(jpeg_file), "--schedule",
                     "roundrobin", "--backend", "serial"]) == 0
        assert "schedule[roundrobin]" in capsys.readouterr().out
