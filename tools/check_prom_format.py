#!/usr/bin/env python3
"""Validate Prometheus text exposition format (version 0.0.4).

A tiny dependency-free parser for CI and tests: reads an exposition
document from a file argument (or stdin) and checks the invariants a
real Prometheus scraper enforces:

- every sample line parses as ``name{labels} value [timestamp]`` with a
  legal metric name, legal label names, properly quoted/escaped label
  values, and a float-parsable value;
- ``# TYPE`` declares a known type (counter/gauge/histogram/summary/
  untyped) and appears at most once per metric family, *before* any of
  that family's samples;
- a family's samples are contiguous — a family is never "reopened"
  after another family's samples started (the format forbids it);
- counter sample names end in ``_total`` (``_bucket``/``_sum``/
  ``_count`` suffixes attach histogram/summary series to their family);
- histograms carry an ``le="+Inf"`` bucket with cumulative,
  non-decreasing bucket counts consistent with ``_count``;
- no duplicate sample (same name + label set).

Usage::

    python tools/check_prom_format.py metrics.txt
    curl -s localhost:8077/metrics | python tools/check_prom_format.py

Exit status 0 when the document is valid, 1 with one line per
violation otherwise.  Importable: :func:`validate` returns the list of
violations, :func:`parse_samples` the parsed samples.
"""

from __future__ import annotations

import re
import sys
from dataclasses import dataclass, field

METRIC_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
LABEL_NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
TYPES = ("counter", "gauge", "histogram", "summary", "untyped")

#: Sample-name suffixes that attach to a histogram/summary family.
FAMILY_SUFFIXES = ("_bucket", "_sum", "_count", "_total")


@dataclass
class Sample:
    """One parsed sample line."""

    name: str
    labels: dict = field(default_factory=dict)
    value: float = 0.0
    line_no: int = 0


def family_of(sample_name: str, types: dict) -> str:
    """The metric family a sample line belongs to.

    Histogram/summary series (``x_bucket``/``x_sum``/``x_count``) fold
    into family ``x`` when ``x`` was TYPE-declared; otherwise the
    sample name is its own family.
    """
    for suffix in ("_bucket", "_sum", "_count"):
        if sample_name.endswith(suffix):
            base = sample_name[: -len(suffix)]
            if types.get(base) in ("histogram", "summary"):
                return base
    return sample_name


def _parse_labels(text: str, line_no: int,
                  errors: list) -> "dict | None":
    """Parse the ``{...}`` label block; None on malformed input."""
    labels: dict = {}
    i = 0
    while i < len(text):
        match = re.match(r'\s*([a-zA-Z_][a-zA-Z0-9_]*)\s*=\s*"', text[i:])
        if not match:
            errors.append(f"line {line_no}: malformed label pair at "
                          f"{text[i:][:30]!r}")
            return None
        name = match.group(1)
        i += match.end()
        value_chars: list = []
        closed = False
        while i < len(text):
            ch = text[i]
            if ch == "\\":
                if i + 1 >= len(text):
                    break
                esc = text[i + 1]
                if esc not in ('"', "\\", "n"):
                    errors.append(f"line {line_no}: bad escape "
                                  f"\\{esc} in label {name}")
                    return None
                value_chars.append({"n": "\n"}.get(esc, esc))
                i += 2
                continue
            if ch == '"':
                closed = True
                i += 1
                break
            value_chars.append(ch)
            i += 1
        if not closed:
            errors.append(f"line {line_no}: unterminated label value "
                          f"for {name}")
            return None
        if name in labels:
            errors.append(f"line {line_no}: duplicate label {name}")
            return None
        labels[name] = "".join(value_chars)
        rest = text[i:].lstrip()
        if rest.startswith(","):
            i = len(text) - len(rest) + 1
            continue
        if rest == "":
            return labels
        errors.append(f"line {line_no}: trailing garbage in label "
                      f"block: {rest!r}")
        return None
    return labels


def parse_samples(text: str) -> "tuple[list[Sample], list[str]]":
    """Parse an exposition document; returns (samples, violations)."""
    errors: list = []
    samples: list = []
    types: dict = {}
    helped: set = set()
    family_order: list = []
    closed_families: set = set()
    current_family: "str | None" = None

    for line_no, raw in enumerate(text.splitlines(), start=1):
        line = raw.rstrip("\n")
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) < 3 or parts[1] not in ("HELP", "TYPE"):
                continue  # plain comment: legal, skipped
            kind, name = parts[1], parts[2]
            if not METRIC_NAME_RE.match(name):
                errors.append(f"line {line_no}: illegal metric name "
                              f"{name!r} in # {kind}")
                continue
            if kind == "TYPE":
                declared = parts[3].strip() if len(parts) > 3 else ""
                if declared not in TYPES:
                    errors.append(f"line {line_no}: unknown TYPE "
                                  f"{declared!r} for {name}")
                if name in types:
                    errors.append(f"line {line_no}: duplicate TYPE for "
                                  f"{name}")
                if name in closed_families or any(
                        family_of(s.name, types) == name for s in samples):
                    errors.append(f"line {line_no}: TYPE for {name} after "
                                  f"its samples")
                types[name] = declared
            else:
                if name in helped:
                    errors.append(f"line {line_no}: duplicate HELP for "
                                  f"{name}")
                helped.add(name)
            continue
        match = re.match(r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{(.*)\})?\s+(\S+)"
                         r"(\s+-?\d+)?\s*$", line)
        if not match:
            errors.append(f"line {line_no}: unparsable sample: {line!r}")
            continue
        name, _, label_text, value_text = match.group(1, 2, 3, 4)
        labels = {}
        if label_text is not None:
            parsed = _parse_labels(label_text, line_no, errors)
            if parsed is None:
                continue
            labels = parsed
        for label in labels:
            if not LABEL_NAME_RE.match(label) or label.startswith("__"):
                errors.append(f"line {line_no}: illegal label name "
                              f"{label!r}")
        try:
            if value_text in ("NaN", "+Inf", "-Inf"):
                value = float(value_text.replace("Inf", "inf"))
            else:
                value = float(value_text)
        except ValueError:
            errors.append(f"line {line_no}: unparsable value "
                          f"{value_text!r}")
            continue
        family = family_of(name, types)
        if family != current_family:
            if family in closed_families:
                errors.append(f"line {line_no}: family {family} reopened "
                              f"(its samples must be contiguous)")
            if current_family is not None:
                closed_families.add(current_family)
            current_family = family
            family_order.append(family)
        if types.get(family) == "counter" and not name.endswith("_total"):
            errors.append(f"line {line_no}: counter sample {name} does "
                          f"not end in _total")
        samples.append(Sample(name=name, labels=labels, value=value,
                              line_no=line_no))

    seen: set = set()
    for sample in samples:
        key = (sample.name, tuple(sorted(sample.labels.items())))
        if key in seen:
            errors.append(f"line {sample.line_no}: duplicate sample "
                          f"{sample.name}{sorted(sample.labels.items())}")
        seen.add(key)

    errors.extend(_check_histograms(samples, types))
    return samples, errors


def _check_histograms(samples: "list[Sample]", types: dict) -> "list[str]":
    """Histogram invariants: +Inf bucket, cumulative counts, _count."""
    errors: list = []
    for family, declared in types.items():
        if declared != "histogram":
            continue
        buckets = [s for s in samples if s.name == f"{family}_bucket"]
        if not buckets:
            continue

        def group_key(s: Sample) -> tuple:
            return tuple(sorted((k, v) for k, v in s.labels.items()
                                if k != "le"))

        groups: dict = {}
        for s in buckets:
            groups.setdefault(group_key(s), []).append(s)
        for key, group in groups.items():
            les = [s.labels.get("le") for s in group]
            if "+Inf" not in les:
                errors.append(f"histogram {family}{dict(key)}: no "
                              f"le=\"+Inf\" bucket")
                continue
            counts = [s.value for s in group]
            if any(b > a for a, b in zip(counts[1:], counts)):
                errors.append(f"histogram {family}{dict(key)}: bucket "
                              f"counts are not cumulative")
            total = [s for s in samples if s.name == f"{family}_count"
                     and group_key(s) == key]
            if total and total[0].value != group[les.index("+Inf")].value:
                errors.append(f"histogram {family}{dict(key)}: _count "
                              f"!= +Inf bucket")
    return errors


def validate(text: str) -> "list[str]":
    """All format violations in *text* (empty list = valid)."""
    _, errors = parse_samples(text)
    return errors


def main(argv: "list[str] | None" = None) -> int:
    """CLI entry: validate a file argument or stdin."""
    argv = sys.argv[1:] if argv is None else argv
    if argv:
        with open(argv[0], encoding="utf-8") as f:
            text = f.read()
    else:
        text = sys.stdin.read()
    if not text.strip():
        print("empty exposition document", file=sys.stderr)
        return 1
    errors = validate(text)
    for error in errors:
        print(error, file=sys.stderr)
    if errors:
        print(f"INVALID: {len(errors)} violation(s)", file=sys.stderr)
        return 1
    samples, _ = parse_samples(text)
    print(f"OK: {len(samples)} samples")
    return 0


if __name__ == "__main__":
    sys.exit(main())
