"""D1-style docstring lint, stdlib-only (no pydocstyle/ruff available
offline).

Enforces the "missing docstring" family of pydocstyle checks over a
scoped set of modules:

- D100: public module must have a docstring
- D101: public class must have a docstring
- D102: public method must have a docstring (``__init__`` included,
  other dunders exempt)
- D103: public function must have a docstring

A name is public unless it starts with ``_``.  Nested (function-local)
definitions are exempt, matching pydocstyle.

Usage::

    python tools/check_docstrings.py [FILE_OR_DIR ...]

With no arguments, checks the modules this repo scopes the rule to:
``repro.jpeg.fast_entropy``, ``repro.jpeg.parallel_huffman``, every
module of ``repro.service`` — which as of ISSUE 4 includes the serving
front ends ``service/session.py``, ``service/aio.py`` and
``service/http.py``, and as of ISSUE 5 the lane-bound executor pools
``service/executors.py`` and the shared-memory transport
``service/transport.py`` — and the partitioning core
(``repro.core.partition``, ``repro.core.perfmodel``).  Exit status 1
when any violation is found.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Modules the docstring rule is scoped to (ISSUE 2 satellite; widened
#: to the partitioning core by ISSUE 3 — the modules docs/partitioning.md
#: maps the paper onto must stay documented — and, via the service
#: directory target, to the ISSUE-4 serving front ends
#: session.py/aio.py/http.py; tests/test_docstrings.py pins them).
DEFAULT_TARGETS = (
    REPO_ROOT / "src" / "repro" / "jpeg" / "fast_entropy.py",
    REPO_ROOT / "src" / "repro" / "jpeg" / "parallel_huffman.py",
    REPO_ROOT / "src" / "repro" / "service",
    REPO_ROOT / "src" / "repro" / "core" / "partition.py",
    REPO_ROOT / "src" / "repro" / "core" / "perfmodel.py",
)

#: Dunder methods that still require a docstring.
DOCUMENTED_DUNDERS = {"__init__"}


def _is_public(name: str) -> bool:
    """Public = not underscore-prefixed (dunders handled separately)."""
    if name.startswith("__") and name.endswith("__"):
        return name in DOCUMENTED_DUNDERS
    return not name.startswith("_")


def _check_body(path: Path, parent: str, body: list[ast.stmt],
                inside_class: bool, problems: list[str]) -> None:
    """Walk one definition body, recording missing-docstring findings."""
    for node in body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if not _is_public(node.name):
                continue
            if ast.get_docstring(node) is None:
                code = "D102" if inside_class else "D103"
                kind = "method" if inside_class else "function"
                problems.append(
                    f"{path}:{node.lineno}: {code} missing docstring on "
                    f"public {kind} {parent}{node.name}")
        elif isinstance(node, ast.ClassDef):
            if not _is_public(node.name):
                continue
            if ast.get_docstring(node) is None:
                problems.append(
                    f"{path}:{node.lineno}: D101 missing docstring on "
                    f"public class {node.name}")
            _check_body(path, f"{node.name}.", node.body, True, problems)


def check_file(path: Path) -> list[str]:
    """Return every D1 violation in one Python source file."""
    tree = ast.parse(path.read_text(), filename=str(path))
    problems: list[str] = []
    if ast.get_docstring(tree) is None:
        problems.append(f"{path}:1: D100 missing module docstring")
    _check_body(path, "", tree.body, False, problems)
    return problems


def collect(targets: list[Path]) -> list[Path]:
    """Expand files/directories into the list of .py files to check."""
    files: list[Path] = []
    for target in targets:
        if target.is_dir():
            files.extend(sorted(target.rglob("*.py")))
        else:
            files.append(target)
    return files


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; prints violations and returns the exit status."""
    args = argv if argv is not None else sys.argv[1:]
    targets = [Path(a) for a in args] or list(DEFAULT_TARGETS)
    missing = [t for t in targets if not t.exists()]
    if missing:
        for t in missing:
            print(f"error: no such target: {t}", file=sys.stderr)
        return 2
    problems: list[str] = []
    files = collect(targets)
    for path in files:
        problems.extend(check_file(path))
    for problem in problems:
        print(problem)
    if problems:
        print(f"\n{len(problems)} docstring problem(s) in "
              f"{len(files)} file(s)", file=sys.stderr)
        return 1
    print(f"docstring lint OK: {len(files)} file(s) clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
