"""Markdown link checker, stdlib-only.

Scans the repo's user-facing Markdown (``README.md``, ``docs/*.md``,
plus any extra paths given on the command line) for inline links and
images ``[text](target)`` and verifies that every *relative* target
resolves to an existing file or directory (anchors are stripped;
``http(s)://`` and ``mailto:`` targets are skipped — no network access
in CI).

Usage::

    python tools/check_docs_links.py [FILE ...]

Exit status 1 when any link is broken.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Inline Markdown link/image: [text](target) — no nested parens.
LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")

#: Schemes that are not local files and are never checked.
SKIP_PREFIXES = ("http://", "https://", "mailto:", "ftp://")


def default_targets() -> list[Path]:
    """README plus every Markdown file under docs/."""
    targets = [REPO_ROOT / "README.md"]
    targets.extend(sorted((REPO_ROOT / "docs").glob("*.md")))
    return targets


def check_file(path: Path) -> list[str]:
    """Return one message per broken relative link in *path*."""
    problems = []
    for lineno, line in enumerate(path.read_text().splitlines(), start=1):
        for match in LINK_RE.finditer(line):
            target = match.group(1)
            if target.startswith(SKIP_PREFIXES):
                continue
            local = target.split("#", 1)[0]
            if not local:        # pure in-page anchor
                continue
            resolved = (path.parent / local).resolve()
            if not resolved.exists():
                problems.append(
                    f"{path}:{lineno}: broken link -> {target}")
    return problems


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; prints broken links and returns the exit status."""
    args = argv if argv is not None else sys.argv[1:]
    targets = [Path(a) for a in args] or default_targets()
    missing = [t for t in targets if not t.exists()]
    if missing:
        for t in missing:
            print(f"error: no such file: {t}", file=sys.stderr)
        return 2
    problems = []
    for path in targets:
        problems.extend(check_file(path))
    for problem in problems:
        print(problem)
    if problems:
        print(f"\n{len(problems)} broken link(s)", file=sys.stderr)
        return 1
    print(f"docs link check OK: {len(targets)} file(s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
