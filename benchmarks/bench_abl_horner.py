"""A5 — ablation: Horner-form vs naive polynomial evaluation
(paper Section 5.1: "we rearranged all polynomials in Horner form to
reduce the number of multiplications").

This is the one benchmark where *wall-clock* matters (prediction runs
on the real critical path), so pytest-benchmark times the Horner
evaluator directly and the table reports operation counts."""

import timeit

from repro.core.horner import (
    HornerPolynomial,
    horner_mult_count,
    naive_evaluate,
    naive_mult_count,
)
from repro.evaluation import format_table

from common import decoder_for, write_result


def render() -> str:
    model = decoder_for("GTX 560").model_for("4:2:2")
    rows = []
    for name, poly in (
        ("THuffPerPixel(d)", model.huff_rate_fit),
        ("PCPU(w,h)", model.cpu_simd_fit),
        ("PGPU(w,h)", model.gpu_fit),
        ("Tdisp(w,h)", model.disp_fit),
    ):
        h = HornerPolynomial(poly)
        hm, nm = horner_mult_count(h), naive_mult_count(poly)
        args = (0.2,) if poly.n_vars == 1 else (1024.0, 768.0)
        t_h = timeit.timeit(lambda: h.evaluate(*args), number=2000) / 2000
        t_n = timeit.timeit(lambda: naive_evaluate(poly, *args),
                            number=2000) / 2000
        rows.append([name, str(poly.degree), str(hm), str(nm),
                     f"{t_h * 1e6:.2f}", f"{t_n * 1e6:.2f}"])
        assert hm <= nm
    return format_table(
        ["Polynomial", "Degree", "Horner mults", "Naive mults",
         "Horner (us)", "Naive (us)"],
        rows, title="Ablation A5: Horner-form evaluation of the closed forms")


def test_abl_horner(benchmark):
    model = decoder_for("GTX 560").model_for("4:2:2")
    h = HornerPolynomial(model.gpu_fit)
    benchmark(lambda: h.evaluate(1024.0, 768.0))
    write_result("abl_horner", render())
