"""F7 — Figure 7: Huffman decoding rate (ns/pixel) vs entropy density,
with the best-fit line the performance model uses (Eq 4)."""

import numpy as np

from repro.core import DecodeMode, PreparedImage
from repro.evaluation import format_table

from common import decoder_for, write_result

DENSITIES = (0.02, 0.05, 0.08, 0.12, 0.16, 0.20, 0.25, 0.30, 0.35, 0.40, 0.45)
SIDE = 1024


def collect():
    dec = decoder_for("GTX 560")
    rows = []
    for d in DENSITIES:
        prep = PreparedImage.virtual(SIDE, SIDE, "4:2:2", d)
        res = dec.decode(prep, DecodeMode.SIMD)
        rate = res.breakdown["huffman"] * 1e3 / (SIDE * SIDE)  # ns/pixel
        rows.append((d, rate))
    return rows


def render() -> str:
    rows = collect()
    d = np.array([r[0] for r in rows])
    rate = np.array([r[1] for r in rows])
    slope, intercept = np.polyfit(d, rate, 1)
    model = decoder_for("GTX 560").model_for("4:2:2")
    model_rates = [model.t_huff(SIDE, SIDE, x) * 1e3 / (SIDE * SIDE)
                   for x in d]
    table = format_table(
        ["Density (B/px)", "Rate (ns/px)", "Model fit (ns/px)"],
        [[f"{a:.2f}", f"{b:.3f}", f"{c:.3f}"]
         for a, b, c in zip(d, rate, model_rates)],
        title=(f"Figure 7: Huffman rate vs entropy density, GTX 560 "
               f"(fit: rate = {intercept:.3f} + {slope:.3f} * d)"),
    )
    # the paper's observation: a linear relationship in the 1-6 ns band
    assert rate.min() > 0.5 and rate.max() < 7.0
    assert abs(np.corrcoef(d, rate)[0, 1]) > 0.999
    # the fitted model must agree with the measurements it was trained on
    assert np.allclose(model_rates, rate, rtol=0.05)
    return table


def test_fig07(benchmark):
    out = benchmark(render)
    write_result("fig07_huffman_rate", out)
