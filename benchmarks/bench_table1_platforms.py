"""T1 — Table 1: hardware specifications of the three machines."""

from repro.evaluation import format_table, table1_rows

from common import write_result


def render_table1() -> str:
    rows = table1_rows()
    headers = list(rows[0])
    return format_table(headers, [[r[h] for h in headers] for r in rows],
                        title="Table 1: Hardware Specifications")


def test_table1(benchmark):
    out = benchmark(render_table1)
    write_result("table1_platforms", out)
    assert "GTX 680" in out
