"""S2 — cross-image batch partitioning: model-guided (LPT) vs
round-robin makespan on a heterogeneous mixed batch.

The paper's models price a whole image on either device (Eq 5/6); the
cross-image scheduler (:mod:`repro.service.scheduler`) uses those
prices to place whole images across the platform's SIMD and GPU lanes.
This benchmark builds a deliberately mixed batch — small and large
images across 4:2:0 / 4:2:2 / 4:4:4, some carrying restart markers —
prices it once, and compares the predicted makespan of the two
policies.  Both makespans come from the same fitted model, so the
comparison is deterministic and machine-independent.

Acceptance: round-robin's makespan must exceed the model-guided one by
at least ``BATCH_PARTITION_MIN_RATIO`` (default 1.10, env-overridable).
Before any schedule is trusted, the whole batch is decoded through a
scheduler-attached :class:`~repro.service.BatchDecoder` and every
output asserted bit-identical to the sequential
:func:`repro.jpeg.decode_jpeg` result — placement must never change
pixels.

**Lane-bound pools mode** (ISSUE 5): the same policy comparison is
additionally run for real — each lane bound to its own process pool
(:class:`~repro.service.ExecutorRegistry`), a feedback warm-up batch so
the EWMA scales learn each lane's wall-per-simulated-us factor, then a
timed batch per policy.  The model-vs-roundrobin win is then measured
in *wall-clock*, not simulated, time.  The wall ratio is asserted
against ``LANE_POOL_MIN_RATIO`` (default 1.0 — model at least parity)
only on multi-core hosts; a single core timeshares the pools, so both
policies degenerate to the same total work and the row is report-only.
"""

import os
from time import perf_counter

import numpy as np

from repro.data import synthetic_photo
from repro.evaluation import format_table, platforms
from repro.jpeg import EncoderSettings, decode_jpeg, encode_jpeg
from repro.service import BatchDecoder, ExecutorRegistry, ModelScheduler
from repro.service.scheduler import schedule_lpt, schedule_roundrobin

from common import write_result

#: (seed, width, height, subsampling, restart_interval) — a mixed batch:
#: two large images that want the GPU, a mid tier, and a tail of small
#: images (including 4:2:0, which only the CPU lane may take).
CORPUS = (
    (21, 1024, 768, "4:2:2", 16),
    (22, 768, 576, "4:4:4", 0),
    (23, 512, 384, "4:2:2", 0),
    (24, 448, 336, "4:4:4", 8),
    (25, 320, 240, "4:2:0", 0),
    (26, 256, 192, "4:2:2", 0),
    (27, 192, 144, "4:2:0", 0),
    (28, 160, 120, "4:2:2", 0),
    (29, 160, 120, "4:4:4", 0),
    (30, 128, 128, "4:2:2", 8),
)

#: Acceptance floor: round-robin makespan / model-guided makespan.
MIN_RATIO = float(os.environ.get("BATCH_PARTITION_MIN_RATIO", "1.10"))

#: Lane-bound pools: wall-clock round-robin/model floor (multi-core
#: hosts only; 1.0 = the model policy must at least reach parity).
LANE_POOL_MIN_RATIO = float(os.environ.get("LANE_POOL_MIN_RATIO", "1.0"))


def build_corpus() -> list[bytes]:
    """Encode the mixed synthetic batch."""
    blobs = []
    for seed, w, h, sub, dri in CORPUS:
        rgb = synthetic_photo(h, w, seed=seed, detail=0.6)
        blobs.append(encode_jpeg(rgb, EncoderSettings(
            quality=85, subsampling=sub, restart_interval=dri)))
    return blobs


def assert_bit_identity(blobs: list[bytes]) -> int:
    """Decode under the model scheduler; outputs must equal the
    sequential decoder's exactly.  Returns the split-image count.

    Two batches run: the full mixed corpus, and a two-image skewed
    batch (the 1024x768 DRI image plus the smallest image) where the
    large image dominates — its best single-lane cost exceeds the ideal
    balanced makespan — and must fall back to restart-segment fan-out.
    """
    scheduler = ModelScheduler(policy="model", platform=platforms.GTX560)
    splits = 0
    with BatchDecoder(backend="thread", workers=2,
                      scheduler=scheduler) as dec:
        for batch_blobs in (blobs, [blobs[0], blobs[-1]]):
            batch = dec.decode_batch(batch_blobs)
            for i, res in enumerate(batch):
                assert res.ok, f"image {i}: {res.error_type}: {res.error}"
                assert np.array_equal(res.rgb,
                                      decode_jpeg(batch_blobs[i]).rgb), (
                    f"image {i}: scheduled decode differs from sequential")
            splits += batch.schedule.split_count
    assert splits >= 1, "skewed batch should split its dominant DRI image"
    return splits


def measure_lane_bound(blobs: list[bytes]) -> dict[str, float]:
    """Wall-clock seconds per policy with lanes bound to real pools.

    Each policy gets a fresh scheduler and its own two process pools
    (GPU lane alone, SIMD lane alone — the heterogeneous shape), one
    un-timed warm-up batch that forks the pools and feeds the EWMA
    feedback real wall-clock observations, then one timed batch.
    """
    walls: dict[str, float] = {}
    for policy in ("model", "roundrobin"):
        scheduler = ModelScheduler(policy=policy, platform=platforms.GTX560)
        with ExecutorRegistry(
                scheduler.executors,
                layout="gpu=process:1,cpu=process:1") as registry, \
                BatchDecoder(backend="serial", scheduler=scheduler,
                             lane_pools=registry) as dec:
            warm = dec.decode_batch(blobs)
            assert warm.ok, [(r.error_type, r.error) for r in warm]
            assert warm.schedule.wall_time, "lane-bound run must observe wall"
            scheduler.observe(warm.schedule, warm.results)
            t0 = perf_counter()
            batch = dec.decode_batch(blobs)
            walls[policy] = perf_counter() - t0
            assert batch.ok, [(r.error_type, r.error) for r in batch]
    return walls


def render() -> str:
    """Price the batch, compare the two policies, format the table."""
    blobs = build_corpus()
    scheduler = ModelScheduler(policy="model", platform=platforms.GTX560)
    pricings = scheduler.price(blobs)

    # Makespan study on identical pricings, whole-image placements only.
    model = schedule_lpt(pricings, scheduler.executors, split_dominant=False)
    rr = schedule_roundrobin(pricings, scheduler.executors)
    lane_of = {a.index: a for a in model.assignments}
    rr_of = {a.index: a for a in rr.assignments}

    rows = []
    for p in pricings:
        m, r = lane_of[p.index], rr_of[p.index]
        rows.append([
            f"{p.width}x{p.height}", p.subsampling,
            "yes" if p.has_restarts else "no",
            m.executor.kind if m.executor else "-",
            f"{m.predicted_us / 1e3:.2f}",
            r.executor.kind if r.executor else "-",
        ])

    ratio = rr.makespan_us / model.makespan_us
    assert ratio >= MIN_RATIO, (
        f"model-guided scheduling must beat round-robin makespan by "
        f">= {MIN_RATIO}x; got {ratio:.3f} "
        f"({model.makespan_us / 1e3:.2f}ms vs {rr.makespan_us / 1e3:.2f}ms)")

    splits = assert_bit_identity(blobs)

    walls = measure_lane_bound(blobs)
    wall_ratio = walls["roundrobin"] / walls["model"]
    multicore = (os.cpu_count() or 1) >= 2
    if multicore:
        assert wall_ratio >= LANE_POOL_MIN_RATIO, (
            f"lane-bound pools: model policy wall-clock must beat "
            f"round-robin by >= {LANE_POOL_MIN_RATIO}x on a multi-core "
            f"host; got {wall_ratio:.3f} ({walls['model'] * 1e3:.0f}ms vs "
            f"{walls['roundrobin'] * 1e3:.0f}ms)")

    note = (
        f"makespan: model {model.makespan_us / 1e3:.2f}ms vs round-robin "
        f"{rr.makespan_us / 1e3:.2f}ms = {ratio:.2f}x (floor {MIN_RATIO}x); "
        f"bit-identity OK, {splits} dominant image(s) split\n"
        f"lane-bound pools (wall-clock): model {walls['model'] * 1e3:.0f}ms "
        f"vs round-robin {walls['roundrobin'] * 1e3:.0f}ms = "
        f"{wall_ratio:.2f}x "
        + (f"(floor {LANE_POOL_MIN_RATIO}x)" if multicore
           else "(single core: report-only)"))
    return format_table(
        ["Image", "Subsampling", "DRI", "LPT lane", "pred ms", "RR lane"],
        rows,
        title=(f"S2: cross-image batch partitioning on {platforms.GTX560.name} "
               f"(SIMD + GPU lanes)\n{note}"))


def test_batch_partition():
    """Pytest entry point: run the comparison and persist the table."""
    write_result("batch_partition", render())


if __name__ == "__main__":
    write_result("batch_partition", render())
