"""T2 — Table 2: average speedup (± coefficient of variation) over SIMD
for 4:2:2 images, per machine — measured over a *real* encoded corpus
whose per-row entropy offsets drive the simulated Huffman stage."""

from repro.core import DecodeMode
from repro.evaluation import format_speedup_table, measure_corpus, platforms, summarize_speedups

from common import real_corpus, write_result


def render() -> str:
    corpus = list(real_corpus("4:2:2"))
    summaries = {}
    for plat in platforms.ALL_PLATFORMS:
        ms = measure_corpus(plat, corpus)
        summaries[plat.name] = summarize_speedups(ms)
    out = format_speedup_table(
        summaries, "Table 2: speedup over SIMD, 4:2:2 subsampling")
    # paper shape: PPS best on every machine; GPU-only < 1 on GT 430
    for name, s in summaries.items():
        best = max(s.values(), key=lambda v: v.mean)
        assert s[DecodeMode.PPS].mean >= best.mean * 0.97, name
    assert summaries["GT 430"][DecodeMode.GPU].mean < 1.0
    assert summaries["GT 430"][DecodeMode.PPS].mean > 1.0
    assert (summaries["GTX 680"][DecodeMode.PPS].mean
            >= summaries["GT 430"][DecodeMode.PPS].mean)
    return out


def test_table2(benchmark):
    out = benchmark(render)
    write_result("table2_speedup_422", out)
