"""A4 — ablation: OpenCL work-group size sweep, 4 to 32 MCUs
(paper Section 5.1's profiling step)."""

from repro.core.profiling import profile_platform
from repro.evaluation import format_table, platforms

from common import write_result


def render() -> str:
    parts = []
    for plat in platforms.ALL_PLATFORMS:
        report = profile_platform(plat, "4:2:2", full_report=True)
        rows = [[str(m), f"{t / 1e3:.3f}" if t != float("inf") else "infeasible"]
                for m, t in sorted(report.workgroup_sweep.items())]
        best = report.model.workgroup_blocks // 4
        parts.append(format_table(
            ["Work-group (MCUs)", "PGPU 2048^2 (ms)"], rows,
            title=f"Ablation A4 [{plat.name}]: WG sweep (selected: {best} MCUs)"))
    return "\n\n".join(parts)


def test_abl_workgroup(benchmark):
    out = benchmark(render)
    write_result("abl_workgroup", out)
