"""S7 — extension scenario: progressive (SOF2) decode cost + salvage.

PR-8 added the progressive multi-scan coder and the hostile-input
scenario matrix (tests/test_scenario_matrix.py).  This bench puts
numbers on the two claims the matrix only asserts qualitatively:

1. **Exactness** — every progressive member of the scenario corpus
   decodes pixel-identical to its baseline twin (same quantized
   coefficients, different entropy layout), so the multi-scan cost is
   a pure re-walk, never a quality trade.
2. **Cost** — the multi-scan re-walk makes progressive decode slower
   than baseline; the measured baseline/progressive wall-clock ratio
   must stay above ``PROGRESSIVE_MIN_RATIO`` (i.e. progressive must
   not be pathologically slow), and the scheduler's per-scan pricing
   surcharge (``PerformanceModel.price(..., scans=N)`` =
   ``(N-1) * scan_pass_factor * THuff`` on top of the base price) must
   be monotone in the scan count so the cross-image LPT placement sees
   progressive streams as the heavier work they are.

A salvage probe rounds it out: a progressive stream truncated inside
its entropy data must still return a full-size image with a non-empty
damaged-region map under ``DecodeOptions(salvage=True)`` — the
degraded-not-dead contract the hostile matrix enforces per cell.

Env: PROGRESSIVE_MIN_RATIO overrides the asserted floor on
baseline_time / progressive_time (local default 0.2 — progressive may
cost up to 5x baseline; CI smoke uses the same conservative value).
"""

import os
import time
from functools import lru_cache

import numpy as np

from repro.data import scenario_corpus
from repro.evaluation import format_table, platforms
from repro.jpeg import DecodeOptions, decode_jpeg, parse_jpeg

from common import decoder_for, write_result

MIN_RATIO = float(os.environ.get("PROGRESSIVE_MIN_RATIO", "0.2"))

#: One scenario per colorspace: (colorspace, subsampling) cells whose
#: baseline/progressive twins the cost table reports.
CELLS = (("gray", "4:4:4"), ("ycbcr", "4:2:2"), ("ycck", "4:4:4"))

PRICING_DENSITY = 0.20


@lru_cache(maxsize=1)
def corpus() -> dict[str, bytes]:
    return dict(scenario_corpus(size=(256, 192), quality=85, seed=7))


def _best_of(data: bytes, repeats: int = 3) -> tuple[float, np.ndarray]:
    """Minimum wall-clock seconds over *repeats* fast-engine decodes."""
    best = float("inf")
    pixels = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        decoded = decode_jpeg(data, DecodeOptions(entropy_engine="fast"))
        best = min(best, time.perf_counter() - t0)
        pixels = decoded.rgb
    return best, pixels


def render() -> str:
    members = corpus()
    model = decoder_for(platforms.GTX560.name).model_for("4:2:2")
    rows = []
    worst_ratio = float("inf")
    for cs, sub in CELLS:
        base_name = f"baseline-{cs}-{sub}-256x192-q85"
        prog_name = f"progressive-{cs}-{sub}-256x192-q85"
        base_s, base_px = _best_of(members[base_name])
        prog_s, prog_px = _best_of(members[prog_name])
        assert np.array_equal(base_px, prog_px), (
            f"progressive twin diverged from baseline for {cs}/{sub}")
        info = parse_jpeg(members[prog_name])
        scans = len(info.scans)
        priced_1 = model.price("simd", 256, 192, PRICING_DENSITY)
        priced_n = model.price("simd", 256, 192, PRICING_DENSITY,
                               scans=scans)
        assert priced_n > priced_1, (
            f"scans={scans} pricing must exceed the single-scan price")
        ratio = base_s / prog_s
        worst_ratio = min(worst_ratio, ratio)
        rows.append([
            f"{cs}/{sub}", str(scans),
            f"{base_s * 1e3:.2f}", f"{prog_s * 1e3:.2f}",
            f"{ratio:.2f}x",
            f"+{(priced_n - priced_1) / priced_1 * 100:.0f}%",
        ])
    assert worst_ratio >= MIN_RATIO, (
        f"baseline/progressive ratio {worst_ratio:.2f}x below the "
        f"{MIN_RATIO:.2f}x floor — progressive decode pathologically slow")

    # Pricing surcharge is monotone in scan count.
    prices = [model.price("simd", 256, 192, PRICING_DENSITY, scans=s)
              for s in (1, 6, 14, 18)]
    assert all(b > a for a, b in zip(prices, prices[1:])), \
        "per-scan pricing surcharge must be monotone in scan count"

    # Salvage probe: truncated progressive stream degrades, never dies.
    blob = members["progressive-ycbcr-4:2:2-256x192-q85"]
    cut = blob[:len(blob) * 3 // 5]
    salvaged = decode_jpeg(cut, DecodeOptions(salvage=True))
    intact = decode_jpeg(blob)
    assert salvaged.salvaged and salvaged.errors
    assert salvaged.rgb.shape == intact.rgb.shape
    assert salvaged.error_map is not None
    damaged = int(salvaged.error_map.sum())
    assert damaged > 0

    return format_table(
        ["Scenario", "Scans", "Baseline (ms)", "Progressive (ms)",
         "Base/Prog", "Price surcharge"],
        rows,
        title=("Scenario S7 (extension): progressive (SOF2) decode cost, "
               f"256x192 q85; truncated-stream salvage: {damaged} "
               "damaged MCU(s)"))


def test_progressive(benchmark):
    out = benchmark(render)
    write_result("progressive", out)
