"""A8 — ablation: fused fast-path entropy engine vs reference decoder.

The paper's pipeline is bounded by sequential Huffman decoding
(Section 1, Eq 19); every executor pays that stage for real.  This
bench measures actual wall-clock (not simulated time) of the two
entropy engines on the synthetic corpus — 4:2:2 and 4:4:4, with and
without restart markers — and reports the speedup delivered by the
destuffing prescan + word-buffered reader + single-probe fused tables.
"""

import os
from functools import lru_cache
from time import perf_counter

from repro.data import synthetic_photo
from repro.evaluation import format_table
from repro.jpeg import EncoderSettings, encode_jpeg, parse_jpeg
from repro.jpeg.decoder import component_tables_from_info
from repro.jpeg.fast_entropy import create_entropy_decoder

from common import write_result

#: (label, subsampling, restart_interval)
CONFIGS = (
    ("4:2:2 DRI=0", "4:2:2", 0),
    ("4:2:2 DRI=8", "4:2:2", 8),
    ("4:4:4 DRI=0", "4:4:4", 0),
    ("4:4:4 DRI=8", "4:4:4", 8),
)

SIDE = 384
REPEATS = 5

#: Acceptance floor for the overall speedup.  3x on an unloaded machine;
#: shared CI runners can override with a looser smoke-test bound, e.g.
#: ``ENTROPY_BENCH_MIN_SPEEDUP=1.5``.
MIN_SPEEDUP = float(os.environ.get("ENTROPY_BENCH_MIN_SPEEDUP", "3.0"))


@lru_cache(maxsize=8)
def corpus_image(subsampling: str, restart_interval: int) -> bytes:
    rgb = synthetic_photo(SIDE, SIDE, seed=29, detail=0.7)
    return encode_jpeg(rgb, EncoderSettings(
        quality=85, subsampling=subsampling,
        restart_interval=restart_interval))


def time_engines(info) -> dict[str, float]:
    """Best-of-N wall-clock seconds per engine for one full decode.

    The engines are interleaved within each round so load/frequency
    drift during the measurement hits both equally instead of biasing
    whichever engine ran last.
    """
    tables = component_tables_from_info(info)
    decoders = {}
    for engine in ("reference", "fast"):
        dec = create_entropy_decoder(engine, info.geometry, tables,
                                     info.restart_interval)
        dec.decode_all(info.entropy_data)   # warm-up (table/cache build)
        decoders[engine] = dec
    best = {engine: float("inf") for engine in decoders}
    for _ in range(REPEATS):
        for engine, dec in decoders.items():
            t0 = perf_counter()
            dec.decode_all(info.entropy_data)
            best[engine] = min(best[engine], perf_counter() - t0)
    return best


def render() -> str:
    rows = []
    total_ref = total_fast = 0.0
    planes_checked = 0
    for label, subsampling, interval in CONFIGS:
        info = parse_jpeg(corpus_image(subsampling, interval))
        best = time_engines(info)
        t_ref, t_fast = best["reference"], best["fast"]
        total_ref += t_ref
        total_fast += t_fast
        planes_checked += 1
        rows.append([label, f"{len(info.entropy_data)}",
                     f"{t_ref * 1e3:.1f}", f"{t_fast * 1e3:.1f}",
                     f"{t_ref / t_fast:.2f}x"])
    overall = total_ref / total_fast
    rows.append(["overall", "-", f"{total_ref * 1e3:.1f}",
                 f"{total_fast * 1e3:.1f}", f"{overall:.2f}x"])
    assert planes_checked == len(CONFIGS)
    assert overall >= MIN_SPEEDUP, (
        f"fast engine must beat the reference by >= {MIN_SPEEDUP}x, "
        f"got {overall:.2f}x")
    return format_table(
        ["Config", "Scan bytes", "Reference (ms)", "Fast (ms)", "Speedup"],
        rows,
        title=(f"Ablation A8: fused fast-path entropy engine, "
               f"{SIDE}x{SIDE} synthetic photo, q85 (real wall-clock)"))


def test_abl_entropy_engine(benchmark):
    out = benchmark(render)
    write_result("abl_entropy_engine", out)
