"""T3 — Table 3: average speedup (± CoV) over SIMD for 4:4:4 images."""

from repro.core import DecodeMode
from repro.evaluation import format_speedup_table, measure_corpus, platforms, summarize_speedups

from common import real_corpus, write_result


def render() -> str:
    corpus = list(real_corpus("4:4:4"))
    summaries = {}
    for plat in platforms.ALL_PLATFORMS:
        ms = measure_corpus(plat, corpus)
        summaries[plat.name] = summarize_speedups(ms)
    out = format_speedup_table(
        summaries, "Table 3: speedup over SIMD, 4:4:4 subsampling")
    for name, s in summaries.items():
        assert s[DecodeMode.PPS].mean > 0.95, name
    # "a similar trend was observed for 4:2:2": orderings match Table 2
    assert summaries["GT 430"][DecodeMode.GPU].mean < 1.0
    assert (summaries["GTX 560"][DecodeMode.PIPELINE].mean
            > summaries["GTX 560"][DecodeMode.GPU].mean)
    return out


def test_table3(benchmark):
    out = benchmark(render)
    write_result("table3_speedup_444", out)
