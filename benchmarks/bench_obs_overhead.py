"""S9 — observability overhead: tracing off / sampled / on vs an
unobserved control.

Re-runs the S1-style throughput loop through a :class:`DecodeSession`
under the four trace modes.  The contract the PR 10 layer makes is
that observability is *off the hot path*: with ``tracing="off"`` the
only added work per request is one ``is None`` check and one histogram
observe, so S1-style throughput must stay within
``TRACE_OVERHEAD_MAX_RATIO`` (default 3%) of the ``unobserved``
control arm, which skips even the latency histogram.

The sampled and full-tracing arms are reported for scale (they pay for
span records, the trace store, and — full tracing — per-stage decode
hooks) but carry no floor: their cost is the price of the feature, not
overhead on users who did not ask for it.

Reconciliation: the deterministic 1-in-N counter sampler (not a PRNG)
lets span counts reconcile *exactly* — ``traces == ceil(images / N)``
for the sampled arm, ``traces == images`` for the full arm, and every
started trace must have produced at least the request-level span.
"""

import math
from time import perf_counter

import numpy as np

from repro.data import synthetic_photo
from repro.evaluation import format_table
from repro.jpeg import EncoderSettings, decode_jpeg, encode_jpeg
from repro.service import DecodeSession
from repro.service.obs import TRACE_OVERHEAD_ENV, trace_overhead_budget

from common import write_result

#: (seed, width, height, subsampling, restart_interval)
CORPUS = (
    (11, 320, 240, "4:2:2", 0),
    (12, 320, 240, "4:2:2", 8),
    (13, 256, 256, "4:4:4", 0),
    (14, 256, 256, "4:4:4", 8),
    (15, 384, 256, "4:2:2", 0),
    (16, 384, 256, "4:2:2", 0),
    (17, 320, 320, "4:4:4", 0),
    (18, 320, 320, "4:2:2", 8),
)

ROUNDS = 4          # corpus passes per timed repetition
REPEATS = 3         # best-of repetitions per arm
SAMPLE_RATE = 0.1   # the "sampled" arm's 1-in-10 gate

#: The four arms, in reporting order.  ``unobserved`` is the control.
ARMS = ("unobserved", "off", "sample", "on")


def build_corpus() -> list[bytes]:
    """Encode the eight-image synthetic corpus."""
    blobs = []
    for seed, w, h, sub, dri in CORPUS:
        rgb = synthetic_photo(h, w, seed=seed, detail=0.6)
        blobs.append(encode_jpeg(rgb, EncoderSettings(
            quality=85, subsampling=sub, restart_interval=dri)))
    return blobs


def time_arm(blobs: list[bytes], oracle: list[np.ndarray],
             mode: str) -> tuple[float, dict]:
    """Best-of-N images/sec for one trace mode, plus trace counters.

    One long-lived session per arm (thread backend — no fork noise),
    warm-up pass excluded from timing, first-round outputs checked
    bit-identical to the sequential oracle.  Counters are read after
    the timed reps so the reconciliation covers every decoded image.
    """
    session = DecodeSession(backend="thread", workers=2, max_batch=8,
                            tracing=mode, trace_sample=SAMPLE_RATE,
                            pump=False)
    try:
        warm = [session.submit(b) for b in blobs]
        session.run_once()
        for handle in warm:
            assert handle.result(timeout=120).ok
        best = float("inf")
        decoded = 0
        for rep in range(REPEATS):
            t0 = perf_counter()
            for _ in range(ROUNDS):
                handles = [session.submit(b) for b in blobs]
                session.run_once()
                results = [h.result(timeout=120) for h in handles]
                decoded += len(results)
                if rep == 0:
                    for idx, res in enumerate(results):
                        assert res.ok, f"image {idx}: {res.error}"
                        assert np.array_equal(res.rgb, oracle[idx]), (
                            f"image {idx}: traced output differs from "
                            f"sequential decode (mode={mode})")
            best = min(best, perf_counter() - t0)
        counters = dict(session.obs.counters())
        counters["images"] = decoded + len(blobs)  # + warm-up pass
    finally:
        session.close(drain=False)
    return (ROUNDS * len(blobs)) / best, counters


def reconcile(mode: str, counters: dict) -> None:
    """Span counts must reconcile exactly with decoded-image counts."""
    images = counters["images"]
    traces = counters["traces_started"]
    if mode in ("unobserved", "off"):
        assert traces == 0, (mode, counters)
        assert counters["spans_recorded"] == 0, (mode, counters)
        return
    if mode == "on":
        expected = images
    else:  # deterministic 1-in-N counter gate over every submit
        expected = math.ceil(images * SAMPLE_RATE)
    assert traces == expected, (
        f"{mode}: traces_started={traces}, expected exactly {expected} "
        f"for {images} images (deterministic sampler)")
    # Each started trace produced at least its request-level span.
    assert counters["spans_recorded"] >= traces, counters


def render() -> str:
    """Run the four arms, assert the overhead floor, format the table."""
    budget = trace_overhead_budget()
    blobs = build_corpus()
    oracle = [decode_jpeg(b).rgb for b in blobs]

    throughput: dict[str, float] = {}
    counters: dict[str, dict] = {}
    for mode in ARMS:
        throughput[mode], counters[mode] = time_arm(blobs, oracle, mode)
        reconcile(mode, counters[mode])

    control = throughput["unobserved"]
    rows = []
    for mode in ARMS:
        ips = throughput[mode]
        rows.append([mode, f"{ips:.2f}", f"{ips / control:.3f}x",
                     f"{counters[mode]['traces_started']}",
                     f"{counters[mode]['spans_recorded']}"])

    ratio = throughput["off"] / control
    assert ratio >= 1.0 - budget, (
        f"tracing=off throughput is {(1.0 - ratio) * 100:.1f}% below the "
        f"unobserved control — exceeds the {budget * 100:.0f}% budget "
        f"({TRACE_OVERHEAD_ENV} tunes the floor)")
    note = (f"off-mode overhead {(1.0 - min(ratio, 1.0)) * 100:.1f}% "
            f"(budget {budget * 100:.0f}%); spans reconcile exactly")
    return format_table(
        ["Tracing", "img/s", "vs unobserved", "traces", "spans"], rows,
        title=(f"S9: observability overhead, {len(blobs)}-image corpus x "
               f"{ROUNDS} rounds, thread pool ({note})"))


def test_obs_overhead():
    """Pytest entry point: run the arms and persist the table."""
    write_result("obs_overhead", render())


if __name__ == "__main__":
    write_result("obs_overhead", render())
