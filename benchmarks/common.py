"""Shared benchmark infrastructure.

Each benchmark module regenerates one table or figure of the paper:
the *measured* quantity is the simulated decode schedule (replayed in
pricing mode — identical timings to the full decode, no pixel math, see
tests/test_executors.py::TestPricingParity), and the module writes the
paper-shaped rows/series to ``benchmarks/results/<id>.txt``.

Real corpora (actual JPEG bytes with per-row entropy offsets) feed the
table benchmarks; virtual (w, h, density) sweeps feed the figure
benchmarks whose x-axes are size or density.
"""

from __future__ import annotations

from functools import lru_cache
from pathlib import Path

from repro.core import DecodeMode, HeterogeneousDecoder, PreparedImage
from repro.data import CorpusSpec, build_corpus
from repro.evaluation import platforms, prepare_corpus

RESULTS_DIR = Path(__file__).parent / "results"

#: Geometric size ladder used by the figure sweeps (pixels on the x-axis).
SWEEP_SIDES = (256, 384, 512, 768, 1024, 1536, 2048)

#: Mid-range entropy density (Figure 7's typical region).
TYPICAL_DENSITY = 0.20


def write_result(name: str, text: str) -> None:
    """Persist one artifact's text output and echo it."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print()
    print(text)


@lru_cache(maxsize=8)
def decoder_for(platform_name: str) -> HeterogeneousDecoder:
    plat = {p.name: p for p in platforms.ALL_PLATFORMS}[platform_name]
    return HeterogeneousDecoder.for_platform(plat)


def virtual_sweep(subsampling: str, density: float = TYPICAL_DENSITY,
                  sides=SWEEP_SIDES) -> list[PreparedImage]:
    """Square-image size ladder as pricing-mode descriptors."""
    return [PreparedImage.virtual(s, s, subsampling, density) for s in sides]


@lru_cache(maxsize=4)
def real_corpus(subsampling: str) -> tuple[PreparedImage, ...]:
    """A small real corpus (encoded + entropy-decoded once per session),
    then converted to pricing replays with the *actual* per-row entropy
    offsets — the quantity Tables 2/3 and the re-partitioning ablation
    depend on."""
    spec = CorpusSpec(
        sizes=((192, 144), (256, 192), (320, 320), (448, 336), (512, 384),
               (768, 576), (1024, 768)),
        subsampling=subsampling, quality=85,
        seeds=(101,), detail_levels=(0.3, 0.7),
    )
    prepared = prepare_corpus(build_corpus(spec))
    return tuple(p.as_virtual() for p in prepared)


def run_modes(decoder: HeterogeneousDecoder, prep: PreparedImage,
              modes=tuple(DecodeMode)) -> dict[DecodeMode, float]:
    """Simulated total time (us) per mode for one image."""
    return {m: decoder.decode(prep, m).total_us for m in modes}
