"""S1 — batched decode service throughput: images/sec vs batch size
and worker count.

Measures *real wall-clock* throughput of :mod:`repro.service` against
the sequential single-image loop it replaces.  The corpus is eight
synthetic photos (4:2:2 and 4:4:4, with and without restart markers);
every batched output is asserted bit-identical to the sequential
:func:`repro.jpeg.decode_jpeg` result before any timing is trusted.

Acceptance: on a multi-core host, the best (batch >= 4, workers >= 2)
process-pool configuration must reach at least
``SERVICE_BENCH_MIN_RATIO`` (default 1.05) times the sequential
throughput — entropy decoding is pure Python, so the scaling must come
from real process parallelism.  On a single-core host the sweep still
runs and reports, but the ratio assertion is skipped (the paper's
amortization argument needs hardware to amortize onto).
"""

import os
from time import perf_counter

import numpy as np

from repro.data import synthetic_photo
from repro.evaluation import format_table
from repro.jpeg import EncoderSettings, encode_jpeg, decode_jpeg
from repro.service import BatchDecoder

from common import write_result

#: (seed, width, height, subsampling, restart_interval)
CORPUS = (
    (11, 320, 240, "4:2:2", 0),
    (12, 320, 240, "4:2:2", 8),
    (13, 256, 256, "4:4:4", 0),
    (14, 256, 256, "4:4:4", 8),
    (15, 384, 256, "4:2:2", 0),
    (16, 384, 256, "4:2:2", 0),
    (17, 320, 320, "4:4:4", 0),
    (18, 320, 320, "4:2:2", 8),
)

BATCH_SIZES = (1, 2, 4, 8)
REPEATS = 3

#: Multi-core acceptance floor for best-batched vs sequential throughput.
MIN_RATIO = float(os.environ.get("SERVICE_BENCH_MIN_RATIO", "1.05"))


def build_corpus() -> list[bytes]:
    """Encode the eight-image synthetic corpus."""
    blobs = []
    for seed, w, h, sub, dri in CORPUS:
        rgb = synthetic_photo(h, w, seed=seed, detail=0.6)
        blobs.append(encode_jpeg(rgb, EncoderSettings(
            quality=85, subsampling=sub, restart_interval=dri)))
    return blobs


def time_sequential(blobs: list[bytes]) -> tuple[float, list[np.ndarray]]:
    """Best-of-N images/sec for the plain single-image decode loop."""
    outputs = [decode_jpeg(b).rgb for b in blobs]  # warm-up + oracle
    best = float("inf")
    for _ in range(REPEATS):
        t0 = perf_counter()
        for b in blobs:
            decode_jpeg(b)
        best = min(best, perf_counter() - t0)
    return len(blobs) / best, outputs


def time_batched(blobs: list[bytes], oracle: list[np.ndarray],
                 batch_size: int, workers: int) -> float:
    """Best-of-N images/sec decoding the corpus in *batch_size* chunks.

    Pool startup is excluded (a service's pool is long-lived); outputs
    of the first round are checked bit-identical to the oracle.
    """
    chunks = [list(range(i, min(i + batch_size, len(blobs))))
              for i in range(0, len(blobs), batch_size)]
    with BatchDecoder(workers=workers, backend="process") as dec:
        dec.decode_batch([blobs[0]])  # warm the pool (fork + imports)
        best = float("inf")
        for rep in range(REPEATS):
            t0 = perf_counter()
            for chunk in chunks:
                result = dec.decode_batch([blobs[i] for i in chunk])
                if rep == 0:
                    for idx, res in zip(chunk, result):
                        assert res.ok, f"image {idx}: {res.error}"
                        assert np.array_equal(res.rgb, oracle[idx]), (
                            f"image {idx}: batched output differs from "
                            f"sequential decode")
            best = min(best, perf_counter() - t0)
    return len(blobs) / best


def render() -> str:
    """Run the sweep, assert the acceptance bar, format the table."""
    cpus = os.cpu_count() or 1
    worker_counts = sorted({1, min(2, cpus), min(4, cpus)})
    blobs = build_corpus()
    seq_ips, oracle = time_sequential(blobs)

    rows = [["sequential loop", "-", f"{seq_ips:.2f}", "1.00x"]]
    best_batched = 0.0
    for workers in worker_counts:
        for batch in BATCH_SIZES:
            ips = time_batched(blobs, oracle, batch, workers)
            rows.append([f"batch={batch}", f"{workers}",
                         f"{ips:.2f}", f"{ips / seq_ips:.2f}x"])
            if batch >= 4 and workers >= 2:
                best_batched = max(best_batched, ips)

    note = f"host cores: {cpus}"
    if cpus >= 2:
        assert best_batched >= MIN_RATIO * seq_ips, (
            f"batched (batch>=4, workers>=2) must reach >= {MIN_RATIO}x "
            f"sequential throughput on a {cpus}-core host; got "
            f"{best_batched:.2f} vs {seq_ips:.2f} img/s")
        note += (f"; best batched {best_batched / seq_ips:.2f}x "
                 f"sequential (floor {MIN_RATIO}x)")
    else:
        note += "; single-core host - ratio assertion skipped"
    return format_table(
        ["Config", "Workers", "img/s", "vs sequential"], rows,
        title=(f"S1: batched service throughput, {len(blobs)}-image "
               f"synthetic corpus, process pool ({note})"))


def test_service_throughput():
    """Pytest entry point: run the sweep and persist the table."""
    write_result("service_throughput", render())


if __name__ == "__main__":
    write_result("service_throughput", render())
