"""F6 — Figure 6: the parallel phase scales linearly with image size.

SIMD (CPU) and GPU parallel-phase times vs. pixels on the GTX 560
machine, for 4:2:2 and 4:4:4, with a linear-fit R^2 printed per series.
The paper's claim is linearity — that is what the assertion checks.
"""

import numpy as np

from repro.core import DecodeMode
from repro.evaluation import format_table

from common import decoder_for, virtual_sweep, write_result


def collect_series(subsampling: str):
    dec = decoder_for("GTX 560")
    rows = []
    for prep in virtual_sweep(subsampling):
        simd = dec.decode(prep, DecodeMode.SIMD)
        gpu = dec.decode(prep, DecodeMode.GPU)
        simd_par = simd.total_us - simd.breakdown["huffman"]
        b = gpu.breakdown
        gpu_par = b.get("kernel", 0) + b.get("write", 0) + b.get("read", 0)
        rows.append((prep.geometry.width * prep.geometry.height,
                     simd_par / 1e3, gpu_par / 1e3))
    return rows


def r_squared(x, y):
    x, y = np.asarray(x, float), np.asarray(y, float)
    coef = np.polyfit(x, y, 1)
    pred = np.polyval(coef, x)
    ss_res = ((y - pred) ** 2).sum()
    ss_tot = ((y - y.mean()) ** 2).sum()
    return 1 - ss_res / ss_tot


def render() -> str:
    parts = []
    for mode in ("4:2:2", "4:4:4"):
        rows = collect_series(mode)
        px = [r[0] for r in rows]
        r2_simd = r_squared(px, [r[1] for r in rows])
        r2_gpu = r_squared(px, [r[2] for r in rows])
        table = format_table(
            ["Pixels", "SIMD (ms)", "GPU (ms)"],
            [[str(p), f"{s:.3f}", f"{g:.3f}"] for p, s, g in rows],
            title=(f"Figure 6 [{mode}]: parallel-phase time vs pixels, "
                   f"GTX 560  (linear R^2: SIMD={r2_simd:.5f}, "
                   f"GPU={r2_gpu:.5f})"),
        )
        parts.append(table)
        assert r2_simd > 0.999, "SIMD parallel phase must scale linearly"
        assert r2_gpu > 0.995, "GPU parallel phase must scale linearly"
    return "\n\n".join(parts)


def test_fig06(benchmark):
    out = benchmark(render)
    write_result("fig06_parallel_scaling", out)
