"""S5 — chaos benchmark: decode service under injected worker crashes.

Measures what fault tolerance costs and what it buys.  Three runs over
the same synthetic corpus on a process pool:

1. **fault-free** — baseline throughput and p99 latency;
2. **1% crash rate** — every dispatch has a seeded 1% chance its
   worker is SIGKILLed (:class:`repro.service.FaultPlan`'s
   ``kill_rate``); the self-healing pool rebuilds and the retry budget
   redispatches, so *every* request must still decode bit-identically —
   the run reports the surviving throughput and p99;
3. **recovery probe** — one deterministic worker kill
   (``kill_at={0}``); the time to the batch's completion minus the
   fault-free single-batch time approximates the rebuild + redispatch
   recovery cost.

Acceptance: with crashes injected, all results are ok (the recovery
machinery hides the faults) and chaos throughput reaches at least
``CHAOS_MIN_RATIO`` (default 0.35) times the fault-free throughput —
pool rebuilds are expensive, but a 1% crash rate must degrade, not
collapse, the service.  Single-core hosts skip the ratio (the process
pool cannot amortize there).
"""

import os
from time import perf_counter

import numpy as np

from repro.data import synthetic_photo
from repro.evaluation import format_table
from repro.jpeg import EncoderSettings, decode_jpeg, encode_jpeg
from repro.service import BatchDecoder, FaultPlan, percentile

from common import write_result

#: (seed, width, height, subsampling) of the cycled corpus images.
CORPUS = (
    (21, 192, 144, "4:2:2"),
    (22, 192, 144, "4:4:4"),
    (23, 256, 192, "4:2:2"),
    (24, 224, 160, "4:4:4"),
)

#: Total decode requests per run (the corpus is cycled).
TOTAL_IMAGES = int(os.environ.get("CHAOS_BENCH_IMAGES", "64"))
BATCH_SIZE = 8

#: Seeded so ~2 of the run's dispatches are killed (1% rate, seed 9
#: kills dispatch ordinals 4 and 49 within the first 96 draws).
CRASH_RATE, CRASH_SEED = 0.01, 9

#: Chaos-vs-fault-free throughput acceptance floor.
MIN_RATIO = float(os.environ.get("CHAOS_MIN_RATIO", "0.35"))


def build_corpus() -> tuple[list[bytes], list[np.ndarray]]:
    """Encode the corpus and its bit-identity oracles."""
    blobs, oracles = [], []
    for seed, w, h, sub in CORPUS:
        rgb = synthetic_photo(h, w, seed=seed, detail=0.5)
        blob = encode_jpeg(rgb, EncoderSettings(quality=85, subsampling=sub))
        blobs.append(blob)
        oracles.append(decode_jpeg(blob).rgb)
    return blobs, oracles


def run_once(blobs: list[bytes], oracles: list[np.ndarray],
             workers: int, faults: FaultPlan | None) -> dict:
    """Decode TOTAL_IMAGES cycled requests; return run metrics.

    Every result must be ok and bit-identical to the sequential oracle
    — with faults injected that *is* the recovery contract.
    """
    stream = [i % len(blobs) for i in range(TOTAL_IMAGES)]
    latencies: list[float] = []
    with BatchDecoder(workers=workers, backend="process",
                      retry_backoff_s=0.0, faults=faults) as dec:
        dec.decode_batch([blobs[0]])  # warm the pool (fork + imports)
        t0 = perf_counter()
        for start in range(0, len(stream), BATCH_SIZE):
            chunk = stream[start:start + BATCH_SIZE]
            batch = dec.decode_batch([blobs[i] for i in chunk])
            for i, res in zip(chunk, batch.results):
                assert res.ok, (
                    f"image {i} failed under chaos: "
                    f"{res.error_type}: {res.error}")
                assert np.array_equal(res.rgb, oracles[i]), (
                    f"image {i}: output differs from sequential decode")
                latencies.append(res.latency_s)
        elapsed = perf_counter() - t0
        return {
            "ips": len(stream) / elapsed,
            "p99_ms": percentile([s * 1e3 for s in latencies], 99),
            "retries": dec.retries_total,
            "rebuilds": dec.rebuilds,
            "kills": faults.injected["kill"] if faults is not None else 0,
        }


def recovery_probe(blobs: list[bytes], workers: int) -> float:
    """Extra wall-clock one worker kill adds to a single batch: the
    rebuild + redispatch recovery time, in seconds."""
    with BatchDecoder(workers=workers, backend="process",
                      retry_backoff_s=0.0) as dec:
        dec.decode_batch([blobs[0]])
        t0 = perf_counter()
        dec.decode_batch([blobs[0]])
        clean = perf_counter() - t0
    plan = FaultPlan(kill_at={0})
    with BatchDecoder(workers=workers, backend="process",
                      retry_backoff_s=0.0, faults=plan) as dec:
        # No warm-up decode: it would consume dispatch ordinal 0.  The
        # pool itself is started by the submit, like a fresh lane.
        t0 = perf_counter()
        batch = dec.decode_batch([blobs[0]])
        faulted = perf_counter() - t0
        assert batch.ok and dec.rebuilds >= 1
    return max(0.0, faulted - clean)


def render() -> str:
    """Run the three probes, assert acceptance, format the table."""
    cpus = os.cpu_count() or 1
    workers = min(4, cpus)
    blobs, oracles = build_corpus()

    clean = run_once(blobs, oracles, workers, faults=None)
    chaos = run_once(blobs, oracles, workers,
                     faults=FaultPlan(kill_rate=CRASH_RATE, seed=CRASH_SEED))
    recovery_s = recovery_probe(blobs, workers)

    assert chaos["kills"] >= 1, "the seeded crash rate injected no kills"
    assert chaos["retries"] >= chaos["kills"]
    assert chaos["rebuilds"] >= 1

    rows = [
        ["fault-free", f"{clean['ips']:.2f}", f"{clean['p99_ms']:.1f}",
         "0", "0", "0"],
        [f"{CRASH_RATE:.0%} crash rate", f"{chaos['ips']:.2f}",
         f"{chaos['p99_ms']:.1f}", str(chaos["kills"]),
         str(chaos["retries"]), str(chaos["rebuilds"])],
    ]
    ratio = chaos["ips"] / clean["ips"] if clean["ips"] else 0.0
    note = (f"host cores: {cpus}; {TOTAL_IMAGES} images, "
            f"batch={BATCH_SIZE}, workers={workers}; "
            f"chaos/clean throughput {ratio:.2f}x; "
            f"lane-kill recovery {recovery_s * 1e3:.0f} ms")
    if cpus >= 2:
        assert ratio >= MIN_RATIO, (
            f"chaos throughput must reach >= {MIN_RATIO}x fault-free; "
            f"got {ratio:.2f}x ({chaos['ips']:.2f} vs "
            f"{clean['ips']:.2f} img/s)")
        note += f" (floor {MIN_RATIO}x)"
    else:
        note += "; single-core host - ratio assertion skipped"
    return format_table(
        ["Run", "img/s", "p99 ms", "kills", "retries", "rebuilds"], rows,
        title=f"S5: decode service under injected worker crashes ({note})")


def test_chaos():
    """Pytest entry point: run the chaos probes and persist the table."""
    write_result("chaos", render())


if __name__ == "__main__":
    write_result("chaos", render())
