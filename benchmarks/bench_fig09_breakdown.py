"""F9 — Figure 9: execution-time breakdown of sequential CPU, SIMD and
GPU modes on a 2048x2048 4:2:2 image, normalized to the SIMD total,
for all three machines.  Checks the paper's Section 6.1 observations:
GPU helps on GTX 560/680 but *hurts* on GT 430."""

from repro.core import DecodeMode, PreparedImage
from repro.evaluation import breakdown_for, format_breakdown, platforms

from common import write_result


def render() -> str:
    prep = PreparedImage.virtual(2048, 2048, "4:2:2", 0.22)
    parts = []
    totals = {}
    for plat in platforms.ALL_PLATFORMS:
        bd = breakdown_for(plat, prep)
        parts.append(format_breakdown(
            bd, title=f"Figure 9 [{plat.name}]: normalized to SIMD total"))
        totals[plat.name] = {m: v["total"] for m, v in bd.items()}
    # paper shapes: sequential ~2x SIMD; GPU < SIMD on 560/680, > on 430
    for name, t in totals.items():
        assert 1.7 < t[DecodeMode.SEQUENTIAL] < 2.4, name
    assert totals["GTX 560"][DecodeMode.GPU] < 0.75
    assert totals["GTX 680"][DecodeMode.GPU] < 0.70
    assert totals["GT 430"][DecodeMode.GPU] > 1.10
    return "\n\n".join(parts)


def test_fig09(benchmark):
    out = benchmark(render)
    write_result("fig09_breakdown", out)
