"""A1 — ablation: GPU kernel merging (paper Section 4.4).

Compares the GPU parallel phase with merged kernels (IDCT+color for
4:4:4, upsample+color for 4:2:2) against fully separate kernels, and
quantifies the occupancy penalty of the all-merged kernel the paper
rejects."""

import numpy as np

from repro.core import DecodeMode, ExecutionConfig, PreparedImage
from repro.core.executors import execute_gpu
from repro.evaluation import format_table, platforms
from repro.gpusim import GTX560TI, occupancy
from repro.kernels import GpuProgramOptions, MergedAllKernel, MergedIdctColorKernel
from repro.jpeg.quantization import luminance_table

from common import write_result

SIDES = (512, 1024, 2048)


def gpu_parallel_us(prep, merge: bool) -> float:
    cfg = ExecutionConfig(
        platform=platforms.GTX560,
        gpu_options=GpuProgramOptions(merge_kernels=merge))
    res = execute_gpu(cfg, prep)
    b = res.breakdown
    return b.get("kernel", 0) + b.get("write", 0) + b.get("read", 0)


def render() -> str:
    rows = []
    for mode in ("4:4:4", "4:2:2"):
        for side in SIDES:
            prep = PreparedImage.virtual(side, side, mode, 0.2)
            merged = gpu_parallel_us(prep, True)
            separate = gpu_parallel_us(prep, False)
            rows.append([mode, str(side * side), f"{merged / 1e3:.3f}",
                         f"{separate / 1e3:.3f}",
                         f"{separate / merged:.2f}x"])
            assert merged < separate, (mode, side)
    # the rejected all-merged kernel: occupancy collapse
    coeffs = np.zeros((4096, 8, 8), dtype=np.int16)
    q = luminance_table(80)
    all_launch = MergedAllKernel().describe_launch(
        y_coeffs=coeffs, cb_coeffs=coeffs, cr_coeffs=coeffs, quants=[q] * 3)
    two_launch = MergedIdctColorKernel().describe_launch(
        y_coeffs=coeffs, cb_coeffs=coeffs, cr_coeffs=coeffs, quants=[q] * 3)
    occ_all = occupancy(all_launch.ndrange, GTX560TI,
                        all_launch.registers_per_item,
                        all_launch.traffic.local_bytes_per_group)
    occ_two = occupancy(two_launch.ndrange, GTX560TI,
                        two_launch.registers_per_item,
                        two_launch.traffic.local_bytes_per_group)
    assert occ_all < 0.6 * occ_two
    table = format_table(
        ["Subsampling", "Pixels", "Merged (ms)", "Separate (ms)", "Saving"],
        rows,
        title=("Ablation A1: kernel merging on the GPU parallel phase "
               f"(GTX 560).  All-merged kernel occupancy: {occ_all:.2f} vs "
               f"{occ_two:.2f} two-stage — the paper's rejection, measured."))
    return table


def test_abl_kernel_merging(benchmark):
    out = benchmark(render)
    write_result("abl_kernel_merging", out)
