"""Benchmark-suite configuration: make `python -m pytest benchmarks/`
work from the repo root and echo result tables."""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
