"""F10 — Figure 10: speedup over SIMD vs image size for the four
GPU-involving modes on all three machines (4:4:4, as the paper plots)."""

from repro.core import DecodeMode
from repro.core.modes import EVALUATED_MODES
from repro.evaluation import format_table, platforms

from common import decoder_for, virtual_sweep, write_result


def collect(platform_name: str):
    dec = decoder_for(platform_name)
    rows = []
    for prep in virtual_sweep("4:4:4"):
        times = {m: dec.decode(prep, m).total_us
                 for m in (DecodeMode.SIMD,) + EVALUATED_MODES}
        simd = times[DecodeMode.SIMD]
        rows.append((prep.geometry.width * prep.geometry.height,
                     [simd / times[m] for m in EVALUATED_MODES]))
    return rows


def render() -> str:
    parts = []
    final = {}
    for plat in platforms.ALL_PLATFORMS:
        rows = collect(plat.name)
        table = format_table(
            ["Pixels"] + [m.value.upper() for m in EVALUATED_MODES],
            [[str(px)] + [f"{s:.2f}" for s in sps] for px, sps in rows],
            title=f"Figure 10 [{plat.name}]: speedup over SIMD vs pixels (4:4:4)",
        )
        parts.append(table)
        final[plat.name] = dict(zip(EVALUATED_MODES, rows[-1][1]))
    # shape checks at the largest size
    for name, sp in final.items():
        assert sp[DecodeMode.PPS] >= sp[DecodeMode.SPS] * 0.98, name
        assert sp[DecodeMode.PIPELINE] >= sp[DecodeMode.GPU] * 0.98, name
        assert sp[DecodeMode.PPS] > 1.0, name
    assert final["GT 430"][DecodeMode.GPU] < 1.0       # weak GPU loses alone
    assert final["GTX 680"][DecodeMode.PPS] > 1.8
    return "\n\n".join(parts)


def test_fig10(benchmark):
    out = benchmark(render)
    write_result("fig10_speedups", out)
