"""S4 — result transport: shared-memory planes vs pickle on a
large-image process-backend batch.

The paper's dispatch term (Tdisp, Eq 5/6) is the cost of moving decoded
planes between devices; the service's process backend pays its own
version of that term when workers return full RGB arrays through the
executor's pickle pipe.  This benchmark measures both layers:

- **Transport phase** (the Tdisp isolation, and the acceptance
  quantity): each worker holds a decoded large image resident and the
  parent gathers it repeatedly — once over the pickle pipe, once as a
  :class:`~repro.service.transport.PlaneRef` into a
  :class:`~repro.service.transport.PlaneArena` segment resolved
  zero-copy.  This is images-moved-per-second with the decode cost
  held at zero, exactly the hop the shm subsystem replaces.  Floor:
  ``shm >= TRANSPORT_MIN_RATIO x pickle`` (default 1.2).
- **End-to-end**: the same large-image batch decoded for real through
  :class:`~repro.service.BatchDecoder` with ``transport=pickle`` vs
  ``transport=shm``.  Decode is pure-Python and dominates wall-clock,
  so the honest end-to-end delta is small; it is reported, and guarded
  only against regression (``TRANSPORT_E2E_MIN_RATIO``, default 0.85).

Bit-identity is asserted on both paths before any timing is trusted:
every transported image must equal the sequential
:func:`repro.jpeg.decode_jpeg` output exactly.
"""

import os
from time import perf_counter

import numpy as np

from repro.data import synthetic_smooth
from repro.evaluation import format_table
from repro.jpeg import EncoderSettings, decode_jpeg, encode_jpeg
from repro.service import BatchDecoder, PlaneArena, WorkerPool
from repro.service.transport import publish_plane

from common import write_result

#: Large, low-entropy images: the RGB payload (5.5 MB each) dwarfs the
#: compressed bytes, which is the regime where transport matters.
CORPUS_SPECS = ((5, 1600, 1200), (6, 1536, 1152), (7, 1440, 1080))

#: Transported gathers per image in the transport-phase measurement.
PHASE_ROUNDS = 8

#: Acceptance floor on the transport-phase ratio (shm/pickle img/s).
MIN_RATIO = float(os.environ.get("TRANSPORT_MIN_RATIO", "1.2"))

#: Regression guard on the end-to-end ratio (shm must not cost more
#: than this fraction of pickle throughput; decode noise dominates).
E2E_MIN_RATIO = float(os.environ.get("TRANSPORT_E2E_MIN_RATIO", "0.85"))


def build_corpus() -> list[bytes]:
    """Encode the large smooth corpus (4:2:0, quality 40)."""
    blobs = []
    for seed, w, h in CORPUS_SPECS:
        rgb = synthetic_smooth(h, w, seed=seed)
        blobs.append(encode_jpeg(rgb, EncoderSettings(
            quality=40, subsampling="4:2:0")))
    return blobs


# ---------------------------------------------------------------------------
# Transport-phase tasks (module-level: pickled by reference).  The
# worker decodes each image once and keeps it resident, so the measured
# loop contains nothing but the worker→parent hop.
# ---------------------------------------------------------------------------

_RESIDENT: dict = {}


def _decode_resident(key, blob: bytes) -> np.ndarray:
    """Decode *blob* once per worker process; serve it from memory."""
    rgb = _RESIDENT.get(key)
    if rgb is None:
        rgb = decode_jpeg(blob).rgb
        _RESIDENT[key] = rgb
    return rgb


def serve_pickle(key, blob: bytes) -> np.ndarray:
    """Return the resident image over the executor's pickle pipe."""
    return _decode_resident(key, blob)


def serve_shm(key, blob: bytes, slot):
    """Publish the resident image into the leased shm slot."""
    return publish_plane(slot, _decode_resident(key, blob))


def measure_transport_phase(blobs, oracles) -> tuple[float, float]:
    """img/s of the pure worker→parent hop for both transports."""
    with WorkerPool(workers=1, backend="process") as pool, PlaneArena() \
            as arena:
        # Warm: fork the worker, decode every image resident, touch the
        # shm ring once so segment creation is off the clock.
        for key, blob in enumerate(blobs):
            nbytes = oracles[key].nbytes
            slot = arena.lease(nbytes)
            ref = pool.submit(serve_shm, key, blob, slot).result()
            assert np.array_equal(arena.resolve(ref), oracles[key]), (
                f"shm transport corrupted image {key}")
            arena.release(slot)
            got = pool.submit(serve_pickle, key, blob).result()
            assert np.array_equal(got, oracles[key]), (
                f"pickle transport corrupted image {key}")

        t0 = perf_counter()
        for _ in range(PHASE_ROUNDS):
            for key, blob in enumerate(blobs):
                arr = pool.submit(serve_pickle, key, blob).result()
                assert arr.shape == oracles[key].shape
        pickle_ips = PHASE_ROUNDS * len(blobs) / (perf_counter() - t0)

        t0 = perf_counter()
        for _ in range(PHASE_ROUNDS):
            for key, blob in enumerate(blobs):
                slot = arena.lease(oracles[key].nbytes)
                ref = pool.submit(serve_shm, key, blob, slot).result()
                view = arena.resolve(ref, copy=False)
                assert view.shape == oracles[key].shape
                arena.release(slot)
        shm_ips = PHASE_ROUNDS * len(blobs) / (perf_counter() - t0)
        assert arena.leaked() == []
    return pickle_ips, shm_ips


def measure_end_to_end(blobs, oracles, transport: str) -> float:
    """img/s of a real decode batch under the given transport."""
    with BatchDecoder(workers=2, backend="process",
                      transport=transport) as dec:
        t0 = perf_counter()
        batch = dec.decode_batch(blobs)
        wall = perf_counter() - t0
        assert batch.ok, [(r.error_type, r.error) for r in batch]
        for res, want in zip(batch, oracles):
            assert np.array_equal(res.rgb, want), (
                f"{transport} end-to-end decode differs from sequential")
        if transport == "shm":
            assert dec.transport == "shm"
            assert batch.stats.bytes_shm > 0
            assert dec.arena.leaked() == []
    return len(blobs) / wall


def render() -> str:
    """Run both measurements and format the S4 table."""
    blobs = build_corpus()
    oracles = [decode_jpeg(b).rgb for b in blobs]
    mbytes = sum(o.nbytes for o in oracles) / 1e6

    pickle_ips, shm_ips = measure_transport_phase(blobs, oracles)
    ratio = shm_ips / pickle_ips

    e2e_pickle = measure_end_to_end(blobs, oracles, "pickle")
    e2e_shm = measure_end_to_end(blobs, oracles, "shm")
    e2e_ratio = e2e_shm / e2e_pickle

    rows = [
        ["transport phase (Tdisp)", f"{pickle_ips:.1f}", f"{shm_ips:.1f}",
         f"{ratio:.2f}x"],
        ["end-to-end decode", f"{e2e_pickle:.2f}", f"{e2e_shm:.2f}",
         f"{e2e_ratio:.2f}x"],
    ]
    assert ratio >= MIN_RATIO, (
        f"shm transport must move images >= {MIN_RATIO}x faster than "
        f"pickle on the isolated hop; got {ratio:.3f} "
        f"({shm_ips:.1f} vs {pickle_ips:.1f} img/s)")
    assert e2e_ratio >= E2E_MIN_RATIO, (
        f"shm end-to-end must not regress below {E2E_MIN_RATIO}x of "
        f"pickle; got {e2e_ratio:.3f}")

    note = (
        f"{len(blobs)} large smooth images, {mbytes:.1f} MB of RGB per "
        f"pass, process pool; bit-identity OK on both transports; "
        f"floors: phase >= {MIN_RATIO}x, end-to-end >= {E2E_MIN_RATIO}x")
    return format_table(
        ["Measurement", "pickle img/s", "shm img/s", "shm/pickle"],
        rows,
        title=f"S4: result transport, shared-memory planes vs pickle\n{note}")


def test_transport():
    """Pytest entry point: run the comparison and persist the table."""
    write_result("transport", render())


if __name__ == "__main__":
    write_result("transport", render())
