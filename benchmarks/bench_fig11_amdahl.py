"""F11 — Figure 11: PPS speedup as a percentage of the theoretically
attainable maximum (Ttotal/THuff, Eq 19) on the GTX 680, vs image size.

The paper reports stabilization around 88% with a 95% peak, and lower
percentages for small images (few pipeline chunks)."""

from repro.evaluation import amdahl_series, format_series, platforms

from common import virtual_sweep, write_result


def render() -> str:
    series = amdahl_series(platforms.GTX680, virtual_sweep("4:4:4"))
    table = format_series(
        series, ["Pixels", "% of max speedup"],
        title="Figure 11: PPS vs theoretical bound, GTX 680 (4:4:4)",
        fmt="{:.1f}",
    )
    pcts = [pct for _, pct in series]
    large = pcts[len(pcts) // 2:]
    assert all(p <= 100.0 + 1e-6 for p in pcts)
    assert min(large) > 70.0, "large images should approach the bound"
    assert pcts[0] <= max(large) + 1e-9, "small images lag the bound"
    return table


def test_fig11(benchmark):
    out = benchmark(render)
    write_result("fig11_amdahl", out)
