"""A3 — ablation: pipeline chunk-size sweep (paper Section 4.5).

"The decoding speed tends to be faster as the number of chunks
increases.  However, as chunks become too small, GPU utilization
becomes low."  The sweep reproduces that U-shape and the selection
rule (largest per-image winner)."""

from repro.core import DecodeMode, ExecutionConfig, PreparedImage
from repro.core.chunking import candidate_chunk_rows, profile_chunk_sizes
from repro.core.executors import execute_pipeline
from repro.evaluation import format_table, platforms

from common import decoder_for, write_result


def render() -> str:
    prep = PreparedImage.virtual(1536, 1536, "4:2:2", 0.2)
    rows_total = prep.geometry.mcu_rows
    records = []
    times = {}
    for c in candidate_chunk_rows(rows_total):
        cfg = ExecutionConfig(platform=platforms.GTX560, chunk_mcu_rows=c)
        t = execute_pipeline(cfg, prep).total_us
        times[c] = t
        records.append([str(c), str(c * prep.geometry.mcu_height),
                        f"{t / 1e3:.3f}"])
    best = min(times, key=times.get)
    full = max(times)
    # the full-height "chunk" (plain GPU mode) must not be the winner
    assert best < rows_total
    # selection across two image sizes picks the largest winner
    selected, _ = profile_chunk_sizes(
        platforms.GTX560,
        [PreparedImage.virtual(1024, 1024, "4:2:2", 0.2),
         PreparedImage.virtual(1536, 1536, "4:2:2", 0.2)])
    table = format_table(
        ["Chunk (MCU rows)", "Chunk (px rows)", "Pipeline total (ms)"],
        records,
        title=(f"Ablation A3: chunk-size sweep, 1536x1536 4:2:2, GTX 560 "
               f"(best={best} rows; cross-image selection={selected} rows)"))
    return table


def test_abl_chunk_size(benchmark):
    out = benchmark(render)
    write_result("abl_chunk_size", out)
