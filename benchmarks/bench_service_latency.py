"""S3 — futures-based session latency under open-loop load: p50/p99
submit-to-completion latency vs offered arrival rate.

The S1 throughput sweep drives the batch decoder *closed-loop* (the
next batch waits for the previous one).  This bench measures what a
serving front end actually exposes: an **open-loop** arrival process —
requests submitted on a fixed schedule regardless of completions, the
way independent clients hit ``repro serve`` — against a pumped
:class:`repro.service.DecodeSession`, reading each request's
submit-to-completion latency off its
:class:`~repro.service.session.DecodeHandle`.  As the offered rate
crosses the service's capacity, queueing delay (bounded by the
submission queue + blocking backpressure) shows up in p99 long before
p50 — the knee every latency-vs-load curve has.

Acceptance: on a multi-core host the session's *closed-loop* throughput
(submit everything, wait for all handles) must reach at least
``SERVICE_LATENCY_MIN_RATIO`` (default: ``SERVICE_BENCH_MIN_RATIO``'s
default, 1.05) times the sequential decode loop — the pump and the
futures layer must not eat the process-parallel win S1 established.
Bit-identity of every session output is asserted before any timing is
trusted.  On a single-core host the sweep reports but the floor is
skipped.
"""

import os
from time import perf_counter, sleep

import numpy as np

from repro.data import synthetic_photo
from repro.evaluation import format_table
from repro.jpeg import EncoderSettings, decode_jpeg, encode_jpeg
from repro.service import DecodeSession

from common import write_result

#: (seed, width, height, subsampling, restart_interval)
CORPUS = (
    (21, 320, 240, "4:2:2", 0),
    (22, 320, 240, "4:2:0", 8),
    (23, 256, 256, "4:4:4", 0),
    (24, 384, 256, "4:2:2", 8),
    (25, 256, 192, "4:2:0", 0),
    (26, 320, 320, "4:4:4", 0),
)

#: Offered load as multiples of the measured sequential rate.
LOAD_FACTORS = (0.5, 1.0, 2.0)

#: Requests per open-loop level (the corpus cycled).
REQUESTS_PER_LEVEL = 18

#: Closed-loop floor: session throughput vs the sequential loop.
MIN_RATIO = float(os.environ.get(
    "SERVICE_LATENCY_MIN_RATIO",
    os.environ.get("SERVICE_BENCH_MIN_RATIO", "1.05")))


def build_corpus() -> list[bytes]:
    """Encode the six-image synthetic corpus."""
    blobs = []
    for seed, w, h, sub, dri in CORPUS:
        rgb = synthetic_photo(h, w, seed=seed, detail=0.6)
        blobs.append(encode_jpeg(rgb, EncoderSettings(
            quality=85, subsampling=sub, restart_interval=dri)))
    return blobs


def time_sequential(blobs: list[bytes]) -> tuple[float, list[np.ndarray]]:
    """Sequential images/sec plus the bit-identity oracle."""
    outputs = [decode_jpeg(b).rgb for b in blobs]   # warm-up + oracle
    t0 = perf_counter()
    for b in blobs:
        decode_jpeg(b)
    return len(blobs) / (perf_counter() - t0), outputs


def _session(workers: int) -> DecodeSession:
    """The configuration under test: a pumped process-pool session."""
    return DecodeSession(max_batch=4, max_delay_ms=2.0,
                         queue_capacity=32, workers=workers,
                         backend="process")


def time_session_closed_loop(blobs: list[bytes],
                             oracle: list[np.ndarray],
                             workers: int, rounds: int = 3) -> float:
    """Closed-loop session throughput (img/s): submit all, await all."""
    with _session(workers) as sess:
        sess.submit(blobs[0]).result(timeout=120)   # warm the pool
        t0 = perf_counter()
        handles = [sess.submit(b, timeout=None)
                   for _ in range(rounds) for b in blobs]
        results = [h.result(timeout=300) for h in handles]
        wall = perf_counter() - t0
    for i, res in enumerate(results):
        assert res.ok, f"request {i}: {res.error}"
        assert np.array_equal(res.rgb, oracle[i % len(blobs)]), (
            f"request {i}: session output differs from sequential decode")
    return len(results) / wall


def run_open_loop(blobs: list[bytes], offered_ips: float,
                  workers: int) -> tuple[float, float, float]:
    """One open-loop level: submit on a fixed schedule, return
    (achieved img/s, p50 ms, p99 ms) of submit-to-completion latency."""
    from repro.service import percentile

    interarrival = 1.0 / offered_ips
    with _session(workers) as sess:
        sess.submit(blobs[0]).result(timeout=120)   # warm the pool
        handles = []
        t0 = perf_counter()
        for i in range(REQUESTS_PER_LEVEL):
            target = t0 + i * interarrival
            delay = target - perf_counter()
            if delay > 0:
                sleep(delay)
            # Blocking put: when the service is saturated the *queue*
            # bounds memory and the producer absorbs the backpressure.
            handles.append(sess.submit(blobs[i % len(blobs)], timeout=None))
        results = [h.result(timeout=300) for h in handles]
        wall = perf_counter() - t0
    assert all(r.ok for r in results)
    lat_ms = [r.latency_s * 1e3 for r in results]
    return (len(results) / wall, percentile(lat_ms, 50),
            percentile(lat_ms, 99))


def render() -> str:
    """Run floor check + open-loop sweep; format the table."""
    cpus = os.cpu_count() or 1
    workers = max(1, min(4, cpus))
    blobs = build_corpus()
    seq_ips, oracle = time_sequential(blobs)
    closed_ips = time_session_closed_loop(blobs, oracle, workers)

    rows = [["sequential loop", "closed", f"{seq_ips:.2f}", "-", "-"],
            ["session (all-at-once)", "closed",
             f"{closed_ips:.2f} ({closed_ips / seq_ips:.2f}x)", "-", "-"]]
    for factor in LOAD_FACTORS:
        offered = factor * seq_ips
        achieved, p50, p99 = run_open_loop(blobs, offered, workers)
        rows.append([f"session @ {factor:.1f}x seq rate",
                     f"{offered:.2f} offered",
                     f"{achieved:.2f}", f"{p50:.1f}", f"{p99:.1f}"])

    note = f"host cores: {cpus}, workers: {workers}"
    if cpus >= 2:
        assert closed_ips >= MIN_RATIO * seq_ips, (
            f"batched session must reach >= {MIN_RATIO}x sequential "
            f"throughput on a {cpus}-core host; got {closed_ips:.2f} vs "
            f"{seq_ips:.2f} img/s")
        note += (f"; session {closed_ips / seq_ips:.2f}x sequential "
                 f"(floor {MIN_RATIO}x)")
    else:
        note += "; single-core host - ratio assertion skipped"
    return format_table(
        ["Config", "img/s in", "img/s out", "p50 ms", "p99 ms"], rows,
        title=(f"S3: open-loop session latency vs offered load, "
               f"{len(blobs)}-image mixed corpus x "
               f"{REQUESTS_PER_LEVEL} requests/level ({note})"))


def test_service_latency():
    """Pytest entry point: run the sweep and persist the table."""
    write_result("service_latency", render())


if __name__ == "__main__":
    write_result("service_latency", render())
