"""A2 — ablation: vec4 stores and divergence-free work-item layout.

The paper vectorizes interleaved RGB output into 4-byte stores
(Figure 4, 4x fewer store transactions) and arranges upsampling
work-items so whole warsp take one branch (Section 4.2).  This bench
prices the GPU parallel phase with those optimizations disabled."""

from repro.core import ExecutionConfig, PreparedImage
from repro.core.executors import execute_gpu
from repro.evaluation import format_table, platforms
from repro.kernels import GpuProgramOptions

from common import write_result

SIDES = (512, 1024, 2048)


def gpu_parallel_us(prep, vectorized: bool, divergence_free: bool) -> float:
    cfg = ExecutionConfig(
        platform=platforms.GTX560,
        gpu_options=GpuProgramOptions(vectorized=vectorized,
                                      divergence_free=divergence_free))
    b = execute_gpu(cfg, prep).breakdown
    return b.get("kernel", 0) + b.get("write", 0) + b.get("read", 0)


def render() -> str:
    rows = []
    for side in SIDES:
        prep = PreparedImage.virtual(side, side, "4:2:2", 0.2)
        tuned = gpu_parallel_us(prep, True, True)
        no_vec = gpu_parallel_us(prep, False, True)
        divergent = gpu_parallel_us(prep, True, False)
        rows.append([str(side * side), f"{tuned / 1e3:.3f}",
                     f"{no_vec / 1e3:.3f}", f"{divergent / 1e3:.3f}"])
        assert tuned <= no_vec, side
        assert tuned <= divergent, side
    return format_table(
        ["Pixels", "Tuned (ms)", "Scalar stores (ms)", "Divergent (ms)"],
        rows,
        title=("Ablation A2: vec4 stores (Figure 4) and divergence-free "
               "upsampling (Section 4.2), GTX 560, 4:2:2"))


def test_abl_vectorization(benchmark):
    out = benchmark(render)
    write_result("abl_vectorization", out)
