"""A7 — extension ablation: restart-marker parallel Huffman decoding.

The paper's Amdahl ceiling is set by sequential Huffman decoding
(Eq 19).  With DRI restart markers, entropy decoding parallelizes across
segments on the CPU cores (repro.jpeg.parallel_huffman).  This bench
quantifies how much of the ceiling that recovers — i.e. what the paper's
"future work" would buy — as a function of core count."""

from functools import lru_cache

from repro.data import synthetic_photo
from repro.evaluation import format_table
from repro.jpeg import EncoderSettings, encode_jpeg, parse_jpeg
from repro.jpeg.decoder import component_tables_from_info
from repro.jpeg.parallel_huffman import ParallelEntropyDecoder

from common import write_result


@lru_cache(maxsize=1)
def restart_image():
    rgb = synthetic_photo(256, 256, seed=41, detail=0.6)
    data = encode_jpeg(rgb, EncoderSettings(quality=85, subsampling="4:2:2",
                                            restart_interval=8))
    return data


def render() -> str:
    data = restart_image()
    info = parse_jpeg(data)
    dec = ParallelEntropyDecoder(info.geometry,
                                 component_tables_from_info(info),
                                 info.restart_interval)
    rows = []
    speedups = {}
    for cores in (1, 2, 4, 8):
        r = dec.decode(info.entropy_data, cores=cores)
        speedups[cores] = r.speedup
        rows.append([str(cores), f"{r.sequential_us / 1e3:.3f}",
                     f"{r.parallel_us / 1e3:.3f}", f"{r.speedup:.2f}x",
                     str(len(r.segments))])
    assert abs(speedups[1] - 1.0) < 1e-9
    assert speedups[4] > speedups[2] > 1.3
    assert speedups[8] <= 8.0
    return format_table(
        ["Cores", "Sequential (ms)", "Parallel (ms)", "Speedup", "Segments"],
        rows,
        title=("Ablation A7 (extension): restart-segment parallel Huffman "
               "decoding, 256x256 4:2:2, DRI=8"))


def test_abl_parallel_huffman(benchmark):
    out = benchmark(render)
    write_result("abl_parallel_huffman", out)
