"""F12 — Figure 12: CPU vs GPU busy time during the parallel execution
of SPS and PPS on all three machines — the load-balance evidence.

The paper's claim: "GPU and CPU shared similar execution times
indicating well-balanced loads."  On machines where the partitioner
sends (nearly) everything to one device, balance is trivially absent,
so the assertion targets the weak-GPU machine where both devices get
substantial work."""

from repro.core import DecodeMode
from repro.evaluation import balance_series, format_table, platforms

from common import virtual_sweep, write_result


def render() -> str:
    parts = []
    for plat in platforms.ALL_PLATFORMS:
        series = balance_series(plat, virtual_sweep("4:2:2"))
        rows = []
        for mode in (DecodeMode.SPS, DecodeMode.PPS):
            for px, cpu_us, gpu_us in series[mode]:
                rows.append([mode.value.upper(), str(px),
                             f"{cpu_us / 1e3:.3f}", f"{gpu_us / 1e3:.3f}"])
        parts.append(format_table(
            ["Mode", "Pixels", "CPU time (ms)", "GPU time (ms)"],
            rows, title=f"Figure 12 [{plat.name}]: parallel-execution balance"))
        if plat.name == "GT 430":
            # both devices loaded, same order of magnitude (SPS, largest)
            px, cpu_us, gpu_us = series[DecodeMode.SPS][-1]
            assert cpu_us > 0 and gpu_us > 0
            ratio = cpu_us / gpu_us
            assert 0.3 < ratio < 3.0, f"unbalanced: {ratio:.2f}"
    return "\n\n".join(parts)


def test_fig12(benchmark):
    out = benchmark(render)
    write_result("fig12_balance", out)
