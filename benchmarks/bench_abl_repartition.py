"""A6 — ablation: PPS re-partitioning (Eq 16/17) on skewed-entropy
images.

The Huffman-time model assumes uniformly distributed entropy (Eq 4);
images with detail concentrated in one band violate it, and the paper
compensates by re-solving the split before the last GPU chunk.  This
bench encodes real images with back- and front-loaded detail and
compares PPS with re-partitioning on vs off."""

from functools import lru_cache

from repro.core import ExecutionConfig, PreparedImage
from repro.core.executors import execute_pps
from repro.data import synthetic_skewed
from repro.evaluation import format_table, platforms
from repro.jpeg import EncoderSettings, encode_jpeg

from common import decoder_for, write_result


@lru_cache(maxsize=1)
def skewed_corpus():
    out = []
    for name, kwargs in (
        ("dense-bottom", dict(dense_at_top=False)),
        ("dense-top", dict(dense_at_top=True)),
    ):
        img = synthetic_skewed(384, 384, seed=31, dense_fraction=0.45, **kwargs)
        data = encode_jpeg(img, EncoderSettings(quality=85,
                                                subsampling="4:2:2"))
        out.append((name, PreparedImage.from_bytes(data).as_virtual()))
    return out


def render() -> str:
    model = decoder_for("GTX 560").model_for("4:2:2")
    rows = []
    for name, prep in skewed_corpus():
        on = execute_pps(ExecutionConfig(platform=platforms.GTX560,
                                         model=model, repartition=True), prep)
        off = execute_pps(ExecutionConfig(platform=platforms.GTX560,
                                          model=model, repartition=False), prep)
        rows.append([name, f"{on.total_us / 1e3:.3f}",
                     f"{off.total_us / 1e3:.3f}",
                     str(on.partition.cpu_rows), str(off.partition.cpu_rows)])
        assert on.total_us <= off.total_us * 1.05, name
    return format_table(
        ["Image", "PPS+repart (ms)", "PPS fixed (ms)",
         "CPU rows (repart)", "CPU rows (fixed)"],
        rows,
        title="Ablation A6: Eq 16/17 re-partitioning on skewed entropy, GTX 560")


def test_abl_repartition(benchmark):
    out = benchmark(render)
    write_result("abl_repartition", out)
