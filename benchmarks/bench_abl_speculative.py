"""S6 — extension ablation: speculative marker-free parallel Huffman.

A7 showed restart markers recover the Amdahl ceiling — but most wild
JPEGs carry no markers, so PR-7's speculative self-synchronizing decode
(repro.jpeg.speculative) is the path that matters.  This bench sweeps
chunk count on a marker-free 4:2:2 image and reports the modeled
multi-core speedup (LPT makespan over per-chunk costs, misspeculated
chunks re-charged serially as repairs) plus the misspeculation rate.

Every configuration is verified bit-identical to the sequential decode
before its row is emitted: the speedup is only worth reporting if the
answer is exact.

Env: SPECULATIVE_MIN_RATIO overrides the asserted 4-core speedup floor
(CI smoke uses a conservative value; the local default is 1.5x per the
PR acceptance bar).
"""

import os
from functools import lru_cache

import numpy as np

from repro.data import synthetic_photo
from repro.evaluation import format_table
from repro.jpeg import EncoderSettings, encode_jpeg, parse_jpeg
from repro.jpeg.decoder import component_tables_from_info
from repro.jpeg.fast_entropy import FastEntropyDecoder
from repro.jpeg.parallel_huffman import SpeculativeEntropyDecoder

from common import write_result

MIN_RATIO = float(os.environ.get("SPECULATIVE_MIN_RATIO", "1.5"))


@lru_cache(maxsize=1)
def marker_free_image() -> bytes:
    rgb = synthetic_photo(256, 256, seed=41, detail=0.6)
    return encode_jpeg(rgb, EncoderSettings(
        quality=85, subsampling="4:2:2", restart_interval=0))


def sequential_planes(info):
    dec = FastEntropyDecoder(info.geometry,
                             component_tables_from_info(info), 0)
    dec.start(info.entropy_data)
    dec.decode_mcu_rows(info.geometry.mcu_rows)
    return dec.coefficients.planes


def render() -> str:
    data = marker_free_image()
    info = parse_jpeg(data)
    assert info.restart_interval == 0
    oracle = sequential_planes(info)
    rows = []
    speedup_at = {}
    for chunks in (1, 2, 4, 8, 16):
        dec = SpeculativeEntropyDecoder(
            info.geometry, component_tables_from_info(info),
            chunk_count=chunks)
        r = dec.decode(info.entropy_data, cores=min(chunks, 8))
        for got, want in zip(r.coefficients.planes, oracle):
            assert np.array_equal(got, want), \
                f"speculative decode diverged at chunks={chunks}"
        rep = r.report
        miss = len(rep.misspeculated)
        speedup_at[chunks] = r.speedup
        rows.append([
            str(chunks), str(r.cores),
            f"{r.sequential_us / 1e3:.3f}", f"{r.parallel_us / 1e3:.3f}",
            f"{r.speedup:.2f}x",
            f"{miss}/{max(1, rep.chunks - 1)}",
            "yes" if rep.fallback else "no",
        ])
    assert abs(speedup_at[1] - 1.0) < 1e-9
    assert speedup_at[4] >= MIN_RATIO, (
        f"4-chunk modeled speedup {speedup_at[4]:.2f}x below the "
        f"{MIN_RATIO:.2f}x floor")
    assert speedup_at[8] <= 8.0
    return format_table(
        ["Chunks", "Cores", "Sequential (ms)", "Parallel (ms)",
         "Speedup", "Misspec", "Fallback"],
        rows,
        title=("Ablation S6 (extension): speculative self-synchronizing "
               "Huffman decode, 256x256 4:2:2, DRI=0"))


def test_abl_speculative(benchmark):
    out = benchmark(render)
    write_result("abl_speculative", out)
