"""S8 — sharded serving: aggregate throughput scaling across worker
hosts, and priority-class shedding under overload.

Spawns real ``repro serve-worker`` subprocesses on localhost (each its
own Python process, so host-side decode genuinely runs in parallel)
and drives them through :class:`repro.service.ShardedDecodeSession`:

1. **scaling** — the same cycled corpus decoded through 1 host, then
   through ``HOST_COUNT`` hosts, every image asserted bit-identical to
   the sequential oracle; reports aggregate img/s and p99 per tier
   width.
2. **shedding probe** — a one-host front tier with a small submission
   queue flooded with alternating low/high-priority requests at
   ``timeout=0``: weighted shedding must admit a larger share of the
   high class than the low class (low sees 50% of the queue, high all
   of it), and every admitted request still decodes.

Acceptance: aggregate throughput through ``HOST_COUNT`` hosts reaches
at least ``SHARDED_MIN_RATIO`` (default 1.5) times the one-host
throughput — skipped on hosts with fewer cores than worker processes,
where the "hosts" time-share CPUs — and the shed probe admits
proportionally more high- than low-priority traffic while high-class
p99 stays finite (admitted high requests complete).
"""

import os
import re
import subprocess
import sys
from pathlib import Path
from time import perf_counter

import numpy as np

from repro.data import synthetic_photo
from repro.errors import QueueFullError
from repro.evaluation import format_table
from repro.jpeg import EncoderSettings, decode_jpeg, encode_jpeg
from repro.service import (
    PRIORITY_HIGH,
    PRIORITY_LOW,
    ImageRequest,
    ShardedDecodeSession,
    percentile,
)

from common import write_result

REPO_ROOT = Path(__file__).resolve().parent.parent

#: (seed, width, height, subsampling) of the cycled corpus images.
CORPUS = (
    (31, 192, 144, "4:2:2"),
    (32, 192, 144, "4:4:4"),
    (33, 256, 192, "4:2:2"),
    (34, 224, 160, "4:4:4"),
)

#: Total decode requests per scaling run (the corpus is cycled).
TOTAL_IMAGES = int(os.environ.get("SHARDED_BENCH_IMAGES", "48"))
BATCH_SIZE = 8

#: Worker-host processes in the wide tier.
HOST_COUNT = int(os.environ.get("SHARDED_BENCH_HOSTS", "3"))

#: N-host vs 1-host aggregate throughput acceptance floor.
MIN_RATIO = float(os.environ.get("SHARDED_MIN_RATIO", "1.5"))

#: Flooded submissions in the shedding probe.
FLOOD = 40
SHED_QUEUE = 8


def build_corpus() -> tuple[list[bytes], list[np.ndarray]]:
    """Encode the corpus and its bit-identity oracles."""
    blobs, oracles = [], []
    for seed, w, h, sub in CORPUS:
        rgb = synthetic_photo(h, w, seed=seed, detail=0.5)
        blob = encode_jpeg(rgb, EncoderSettings(quality=85, subsampling=sub))
        blobs.append(blob)
        oracles.append(decode_jpeg(blob).rgb)
    return blobs, oracles


def spawn_workers(count: int) -> list[tuple[subprocess.Popen, int]]:
    """Start *count* ``repro serve-worker`` subprocesses on ephemeral
    ports; returns (process, port) pairs."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    workers = []
    try:
        for _ in range(count):
            proc = subprocess.Popen(
                [sys.executable, "-m", "repro", "serve-worker",
                 "--port", "0", "--backend", "serial"],
                env=env, stdout=subprocess.PIPE,
                stderr=subprocess.STDOUT, text=True)
            line = proc.stdout.readline()
            match = re.search(r"listening on [\d.]+:(\d+)", line)
            assert match, f"no listening line from serve-worker: {line!r}"
            workers.append((proc, int(match.group(1))))
    except BaseException:
        stop_workers(workers)
        raise
    return workers


def stop_workers(workers) -> None:
    """Terminate the worker subprocesses (hard-kill stragglers)."""
    for proc, _port in workers:
        if proc.poll() is None:
            proc.terminate()
    for proc, _port in workers:
        try:
            proc.wait(timeout=10)
        except subprocess.TimeoutExpired:
            proc.kill()
            proc.wait(timeout=10)
        proc.stdout.close()


def run_tier(ports: list[int], blobs: list[bytes],
             oracles: list[np.ndarray]) -> dict:
    """Decode TOTAL_IMAGES cycled requests through the hosts at
    *ports*; every result must be ok and bit-identical."""
    stream = [i % len(blobs) for i in range(TOTAL_IMAGES)]
    latencies: list[float] = []
    session = ShardedDecodeSession(
        hosts=[("127.0.0.1", p) for p in ports],
        policy="roundrobin", max_batch=BATCH_SIZE, pump=False,
        queue_capacity=max(32, BATCH_SIZE))
    try:
        # Warm every host link (connection + first-decode caches).
        warm = [session.submit(blobs[0]) for _ in range(len(ports))]
        session.run_once()
        assert all(h.result(timeout=120).ok for h in warm)
        t0 = perf_counter()
        for start in range(0, len(stream), BATCH_SIZE):
            chunk = stream[start:start + BATCH_SIZE]
            handles = [session.submit(blobs[i]) for i in chunk]
            session.run_once()
            for i, handle in zip(chunk, handles):
                res = handle.result(timeout=120)
                assert res.ok, (f"image {i} failed through the tier: "
                                f"{res.error_type}: {res.error}")
                assert np.array_equal(res.rgb, oracles[i]), (
                    f"image {i}: sharded output differs from "
                    f"sequential decode")
                latencies.append(res.latency_s)
        elapsed = perf_counter() - t0
    finally:
        session.close(drain=False)
    return {
        "ips": len(stream) / elapsed,
        "p99_ms": percentile([s * 1e3 for s in latencies], 99),
    }


def shed_probe(port: int, blobs: list[bytes]) -> dict:
    """Flood a small-queue one-host tier with alternating low/high
    requests; returns per-class admission counts and high-class p99."""
    session = ShardedDecodeSession(
        hosts=[("127.0.0.1", port)], policy="roundrobin",
        max_batch=BATCH_SIZE, queue_capacity=SHED_QUEUE)
    admitted = {PRIORITY_LOW: [], PRIORITY_HIGH: []}
    shed = {PRIORITY_LOW: 0, PRIORITY_HIGH: 0}
    try:
        for i in range(FLOOD):
            priority = PRIORITY_LOW if i % 2 == 0 else PRIORITY_HIGH
            try:
                admitted[priority].append(session.submit(
                    ImageRequest(data=blobs[i % len(blobs)],
                                 priority=priority)))
            except QueueFullError:
                shed[priority] += 1
        high_lat = [h.result(timeout=120).latency_s * 1e3
                    for h in admitted[PRIORITY_HIGH]]
        for h in admitted[PRIORITY_LOW]:
            assert h.result(timeout=120).ok
    finally:
        session.close(drain=True)
    return {
        "low_in": len(admitted[PRIORITY_LOW]),
        "low_shed": shed[PRIORITY_LOW],
        "high_in": len(admitted[PRIORITY_HIGH]),
        "high_shed": shed[PRIORITY_HIGH],
        "high_p99_ms": percentile(high_lat or [0.0], 99),
    }


def render() -> str:
    """Run the scaling tiers and the shed probe, assert acceptance,
    format the table."""
    cpus = os.cpu_count() or 1
    blobs, oracles = build_corpus()
    workers = spawn_workers(HOST_COUNT)
    try:
        ports = [port for _proc, port in workers]
        narrow = run_tier(ports[:1], blobs, oracles)
        wide = run_tier(ports, blobs, oracles)
        shed = shed_probe(ports[0], blobs)
    finally:
        stop_workers(workers)

    rows = [
        ["1 host", f"{narrow['ips']:.2f}", f"{narrow['p99_ms']:.1f}"],
        [f"{HOST_COUNT} hosts", f"{wide['ips']:.2f}",
         f"{wide['p99_ms']:.1f}"],
    ]
    ratio = wide["ips"] / narrow["ips"] if narrow["ips"] else 0.0
    note = (f"host cores: {cpus}; {TOTAL_IMAGES} images, "
            f"batch={BATCH_SIZE}; {HOST_COUNT}-host/1-host throughput "
            f"{ratio:.2f}x; shed probe: low {shed['low_in']} in / "
            f"{shed['low_shed']} shed, high {shed['high_in']} in / "
            f"{shed['high_shed']} shed, high p99 "
            f"{shed['high_p99_ms']:.1f} ms")

    # Weighted shedding must privilege the high class under overload.
    assert shed["low_shed"] > 0, "the flood never overloaded the queue"
    assert shed["high_in"] >= shed["low_in"], (
        f"high class admitted {shed['high_in']} <= low class "
        f"{shed['low_in']} under overload")

    if cpus >= HOST_COUNT:
        assert ratio >= MIN_RATIO, (
            f"{HOST_COUNT}-host aggregate throughput must reach >= "
            f"{MIN_RATIO}x one host; got {ratio:.2f}x "
            f"({wide['ips']:.2f} vs {narrow['ips']:.2f} img/s)")
        note += f" (floor {MIN_RATIO}x)"
    else:
        note += (f"; fewer cores than hosts - scaling assertion "
                 f"skipped")
    return format_table(
        ["Tier", "img/s", "p99 ms"], rows,
        title=f"S8: sharded serving scaling ({note})")


def test_sharded():
    """Pytest entry point: run the sharded probes and persist the
    table."""
    write_result("sharded", render())


if __name__ == "__main__":
    write_result("sharded", render())
