"""Thin setup.py shim.

All metadata lives in pyproject.toml; this file exists so that editable
installs work on environments whose setuptools lacks PEP 660 support
(no `wheel` package available offline).
"""

from setuptools import setup

setup()
