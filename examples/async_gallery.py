#!/usr/bin/env python3
"""Async gallery: an asyncio producer streaming a mixed-subsampling
corpus through :class:`repro.service.AsyncDecodeSession`.

The producer coroutine submits JPEGs one by one (as a web frontend
would, requests trickling in) while the consumer iterates the
completion stream concurrently — submission and completion overlap,
which the pull-driven ``DecodeService`` could never do.  Underneath,
the session's pump thread forms cross-request batches by size/age and
fans them out over the worker pool.

Run:  python examples/async_gallery.py
"""

from __future__ import annotations

import asyncio

import numpy as np

from repro.data import synthetic_photo
from repro.jpeg import EncoderSettings, decode_jpeg, encode_jpeg
from repro.service import AsyncDecodeSession

#: (name, (height, width), subsampling, restart_interval)
GALLERY = [
    ("portrait-420", (120, 90), "4:2:0", 0),
    ("landscape-422", (90, 160), "4:2:2", 4),
    ("screenshot-444", (96, 96), "4:4:4", 0),
    ("banner-422", (64, 192), "4:2:2", 0),
    ("thumb-420", (48, 64), "4:2:0", 2),
    ("square-444", (80, 80), "4:4:4", 4),
]


def build_gallery() -> list[tuple[str, bytes]]:
    """Encode the mixed 4:2:0/4:2:2/4:4:4 corpus."""
    images = []
    for i, (name, (h, w), sub, dri) in enumerate(GALLERY):
        rgb = synthetic_photo(h, w, seed=i, detail=0.6)
        data = encode_jpeg(rgb, EncoderSettings(
            quality=85, subsampling=sub, restart_interval=dri))
        images.append((name, data))
        print(f"  {name:<16} {w}x{h} {sub:<6} dri={dri} "
              f"-> {len(data):>5} bytes")
    return images


async def main() -> None:
    print("building gallery:")
    gallery = build_gallery()
    oracle = {name: decode_jpeg(data).rgb for name, data in gallery}

    async with AsyncDecodeSession(max_batch=4, max_delay_ms=2.0,
                                  backend="thread") as session:
        async def produce() -> None:
            # Trickle submissions in like live traffic; the session's
            # age deadline keeps latency bounded while the pump still
            # batches whatever overlaps.
            for name, data in gallery:
                await session.submit(data)
                print(f"  submitted {name}")
                await asyncio.sleep(0.003)

        producer = asyncio.create_task(produce())
        print("\ncompletions (in completion order):")
        async for result in session.completed(count=len(gallery)):
            name = GALLERY[result.request_id][0]
            assert result.ok, f"{name}: {result.error}"
            assert np.array_equal(result.rgb, oracle[name]), name
            print(f"  {name:<16} {result.width}x{result.height} "
                  f"in {result.latency_s * 1e3:6.1f} ms "
                  f"({result.segments} segment(s))")
        await producer

        snap = session.stats_snapshot()
        print(f"\n{snap['batches']} batches for {snap['images_ok']} images "
              f"(pump batched {snap['images_ok'] / snap['batches']:.1f} "
              f"images/dispatch), "
              f"p50/p99 latency {snap['latency_ms']['p50']:.1f}/"
              f"{snap['latency_ms']['p99']:.1f} ms")
    print("all outputs bit-identical to decode_jpeg")


if __name__ == "__main__":
    asyncio.run(main())
