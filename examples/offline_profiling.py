#!/usr/bin/env python3
"""The offline profiling step (paper Section 5.1), end to end:

1. profile a CPU-GPU combination over a (w, h, density) training grid,
2. inspect the work-group sweep and chunk-size selection,
3. fit the polynomial closed forms (AIC-selected degrees),
4. save the model to JSON and verify predictions against fresh
   measurements (the paper's "new set of images that does not share any
   images with the training set").

Run:  python examples/offline_profiling.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro.core import DecodeMode, HeterogeneousDecoder, PerformanceModel, PreparedImage
from repro.core.profiling import profile_platform
from repro.evaluation import format_table, platforms


def main() -> None:
    plat = platforms.GTX560
    print(f"profiling {plat} ...")
    report = profile_platform(plat, "4:2:2", full_report=True)
    model = report.model

    print(f"\ntraining corpus: {len(report.records)} virtual images")
    print("work-group sweep (PGPU on 2048x2048):")
    for mcus, t in sorted(report.workgroup_sweep.items()):
        mark = " <- selected" if mcus * 4 == model.workgroup_blocks else ""
        print(f"  {mcus:>2} MCUs: {t / 1e3:8.3f} ms{mark}")
    print(f"pipeline chunk size: {model.chunk_mcu_rows} MCU rows "
          f"({model.chunk_mcu_rows * 8} pixel rows)")

    print("\nfitted closed forms (AIC-selected degree):")
    for name, poly in (
        ("THuffPerPixel(d)", model.huff_rate_fit),
        ("PCPU(w,h) SIMD", model.cpu_simd_fit),
        ("PCPU(w,h) seq", model.cpu_seq_fit),
        ("PGPU(w,h)", model.gpu_fit),
        ("Tdisp(w,h)", model.disp_fit),
    ):
        print(f"  {name:<18} degree {poly.degree}, "
              f"{poly.n_params} terms, RSS {poly.rss:.3e}")

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "gtx560_422.json"
        model.save(path)
        reloaded = PerformanceModel.load(path)
        print(f"\nsaved + reloaded model from {path.name} "
              f"({path.stat().st_size} bytes)")

    # verify against a disjoint evaluation set
    decoder = HeterogeneousDecoder.for_platform(plat)
    rows = []
    for (w, h, d) in ((640, 480, 0.10), (1280, 720, 0.22), (1920, 1080, 0.33)):
        prep = PreparedImage.virtual(w, h, "4:2:2", d)
        measured = decoder.decode(prep, DecodeMode.SIMD).total_us
        predicted = reloaded.total_cpu(w, h, d)
        rows.append([f"{w}x{h}", f"{d:.2f}", f"{measured / 1e3:.3f}",
                     f"{predicted / 1e3:.3f}",
                     f"{100 * abs(predicted - measured) / measured:.2f}%"])
    print()
    print(format_table(
        ["Image", "Density", "Measured (ms)", "Predicted (ms)", "Error"],
        rows, title="SIMD-mode prediction on unseen images"))


if __name__ == "__main__":
    main()
