#!/usr/bin/env python3
"""Photo-gallery workload: the use case the paper's introduction
motivates (browsers and photo apps decoding many JPEGs).

Decodes a mixed gallery (different sizes, detail levels and subsampling
modes) on all three Table-1 machines and prints per-machine mean
speedups over libjpeg-turbo's SIMD baseline.

Run:  python examples/photo_gallery.py
"""

from __future__ import annotations

import numpy as np

from repro.core import DecodeMode, HeterogeneousDecoder
from repro.core.modes import EVALUATED_MODES
from repro.data import synthetic_detail, synthetic_photo, synthetic_smooth
from repro.evaluation import format_table, platforms
from repro.jpeg import EncoderSettings, encode_jpeg

GALLERY = [
    ("portrait", synthetic_photo, (480, 360), "4:2:2", 0.5),
    ("landscape", synthetic_photo, (360, 640), "4:2:2", 0.7),
    ("screenshot", synthetic_smooth, (400, 400), "4:4:4", None),
    ("texture", synthetic_detail, (320, 320), "4:2:2", None),
    ("thumbnail", synthetic_photo, (160, 160), "4:2:2", 0.4),
]


def build_gallery() -> list[tuple[str, bytes]]:
    images = []
    for name, gen, (h, w), mode, detail in GALLERY:
        kwargs = {"detail": detail} if detail is not None else {}
        rgb = gen(h, w, seed=len(name), **kwargs)
        data = encode_jpeg(rgb, EncoderSettings(quality=85, subsampling=mode))
        images.append((name, data))
        print(f"  {name:<11} {w}x{h} {mode} -> {len(data):>7} bytes")
    return images


def main() -> None:
    print("building gallery:")
    gallery = build_gallery()

    for plat in platforms.ALL_PLATFORMS:
        decoder = HeterogeneousDecoder.for_platform(plat)
        rows = []
        sums = {m: 0.0 for m in (DecodeMode.SIMD,) + EVALUATED_MODES}
        for name, data in gallery:
            prepared = decoder.prepare(data)
            times = {m: decoder.decode(prepared, m).total_us
                     for m in sums}
            for m in sums:
                sums[m] += times[m]
            rows.append(
                [name]
                + [f"{times[DecodeMode.SIMD] / times[m]:.2f}x"
                   for m in EVALUATED_MODES])
        rows.append(
            ["GALLERY TOTAL"]
            + [f"{sums[DecodeMode.SIMD] / sums[m]:.2f}x"
               for m in EVALUATED_MODES])
        print()
        print(format_table(
            ["Image"] + [m.value.upper() for m in EVALUATED_MODES],
            rows, title=f"{plat} — speedup over SIMD"))


if __name__ == "__main__":
    main()
