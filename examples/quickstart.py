#!/usr/bin/env python3
"""Quickstart: encode a synthetic photo, decode it under every execution
mode on the simulated GTX 560 machine, and verify the pixels agree.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro.core import DecodeMode, HeterogeneousDecoder
from repro.data import synthetic_photo
from repro.evaluation import platforms
from repro.jpeg import EncoderSettings, decode_jpeg, encode_jpeg


def main() -> None:
    # 1. Make a JPEG.  Any baseline 4:4:4/4:2:2/4:2:0 JPEG bytes work;
    #    we generate one so the example is self-contained.
    rgb = synthetic_photo(480, 640, seed=7, detail=0.6)
    data = encode_jpeg(rgb, EncoderSettings(quality=85, subsampling="4:2:2"))
    print(f"encoded {rgb.shape[1]}x{rgb.shape[0]} -> {len(data)} bytes "
          f"({len(data) / rgb[..., 0].size:.2f} B/px entropy density)")

    # 2. Build a decoder for a platform.  The first decode triggers the
    #    offline profiling step (Section 5.1) and caches the fitted
    #    performance model for the process.
    decoder = HeterogeneousDecoder.for_platform(platforms.GTX560)

    # 3. Decode once per mode; entropy decoding is shared via prepare().
    prepared = decoder.prepare(data)
    reference = decode_jpeg(data).rgb
    print(f"\n{'mode':<12} {'simulated time':>16} {'speedup vs SIMD':>16}")
    simd_us = None
    for mode in DecodeMode:
        result = decoder.decode(prepared, mode)
        assert np.array_equal(result.rgb, reference), "pixel mismatch!"
        if mode is DecodeMode.SIMD:
            simd_us = result.total_us
        speedup = f"{simd_us / result.total_us:.2f}x" if simd_us else "-"
        print(f"{mode.value:<12} {result.total_time_ms:>13.3f} ms {speedup:>16}")

    # 4. Or let the performance model pick the mode (the paper's runtime).
    auto = decoder.decode(prepared, "auto")
    print(f"\nauto mode chose: {auto.mode.value} "
          f"({auto.total_time_ms:.3f} ms)")
    if auto.partition:
        print(f"partition: {auto.partition.cpu_rows} rows -> CPU, "
              f"{auto.partition.gpu_rows} rows -> GPU")


if __name__ == "__main__":
    main()
