#!/usr/bin/env python3
"""PPS re-partitioning on skewed entropy (paper Section 5.2.2).

The Huffman-time model assumes entropy is uniformly distributed over
the image (Eq 4).  This example builds an image whose detail is
concentrated in the bottom half, shows the per-chunk mismatch between
predicted and actual Huffman times, and demonstrates the Eq 16/17
correction shifting the CPU/GPU split.

Run:  python examples/skewed_entropy.py
"""

from __future__ import annotations

import numpy as np

from repro.core import DecodeMode, HeterogeneousDecoder, PreparedImage
from repro.core.executors import ExecutionConfig, execute_pps
from repro.data import synthetic_skewed
from repro.evaluation import platforms
from repro.jpeg import EncoderSettings, encode_jpeg


def main() -> None:
    rgb = synthetic_skewed(448, 448, seed=11, dense_fraction=0.45)
    data = encode_jpeg(rgb, EncoderSettings(quality=85, subsampling="4:2:2"))
    decoder = HeterogeneousDecoder.for_platform(platforms.GTX560)
    prepared = decoder.prepare(data)
    plat = platforms.GTX560

    # per-MCU-row entropy profile
    huff = prepared.huff_row_us(plat)
    half = len(huff) // 2
    print(f"image: 448x448 4:2:2, {len(data)} bytes")
    print(f"Huffman time, top half:    {huff[:half].sum() / 1e3:8.3f} ms")
    print(f"Huffman time, bottom half: {huff[half:].sum() / 1e3:8.3f} ms")
    print(f"(uniform model would predict both halves equal — the skew is "
          f"{huff[half:].sum() / huff[:half].sum():.2f}x)")

    model = decoder.model_for("4:2:2")
    on = execute_pps(ExecutionConfig(platform=plat, model=model,
                                     repartition=True), prepared)
    off = execute_pps(ExecutionConfig(platform=plat, model=model,
                                      repartition=False), prepared)

    print(f"\nPPS with re-partitioning:    {on.total_time_ms:8.3f} ms "
          f"(CPU rows: {on.partition.cpu_rows})")
    print(f"PPS without re-partitioning: {off.total_time_ms:8.3f} ms "
          f"(CPU rows: {off.partition.cpu_rows})")
    simd = decoder.decode(prepared, DecodeMode.SIMD)
    print(f"SIMD baseline:               {simd.total_time_ms:8.3f} ms")

    # pixels are identical either way
    assert np.array_equal(on.rgb, off.rgb)
    print("\npixel output identical with and without re-partitioning: OK")


if __name__ == "__main__":
    main()
