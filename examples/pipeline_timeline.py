#!/usr/bin/env python3
"""Render the paper's execution-model figures as ASCII Gantt charts.

Reproduces Figure 5 (normal vs pipelined GPU execution) and Figure 8
(SPS vs PPS) for one image on the simulated GTX 560: the CPU row shows
Huffman (H), dispatch (d) and SIMD parallel work (C); the GPU row shows
host-to-device writes (w), kernels (K) and read-backs (r).

Run:  python examples/pipeline_timeline.py
"""

from __future__ import annotations

from repro.core import DecodeMode, HeterogeneousDecoder
from repro.data import synthetic_photo
from repro.evaluation import platforms
from repro.jpeg import EncoderSettings, encode_jpeg

CAPTIONS = {
    DecodeMode.GPU: "Figure 5(a): GPU execution after full Huffman decoding",
    DecodeMode.PIPELINE: "Figure 5(b): pipelined Huffman/GPU execution",
    DecodeMode.SPS: "Figure 8(a): simple partitioning scheme (SPS)",
    DecodeMode.PPS: "Figure 8(c): pipelined partitioning scheme (PPS)",
}


def main() -> None:
    rgb = synthetic_photo(512, 512, seed=3, detail=0.6)
    data = encode_jpeg(rgb, EncoderSettings(quality=85, subsampling="4:2:2"))
    decoder = HeterogeneousDecoder.for_platform(platforms.GTX560)
    prepared = decoder.prepare(data)

    for mode, caption in CAPTIONS.items():
        result = decoder.decode(prepared, mode)
        print(f"\n=== {caption} ===")
        print(f"total: {result.total_time_ms:.3f} ms")
        if result.partition:
            print(f"partition: CPU {result.partition.cpu_rows} rows / "
                  f"GPU {result.partition.gpu_rows} rows")
        print(result.timeline.render(width=76))

    simd = decoder.decode(prepared, DecodeMode.SIMD)
    pps = decoder.decode(prepared, DecodeMode.PPS)
    print(f"\nSIMD baseline: {simd.total_time_ms:.3f} ms -> "
          f"PPS speedup {simd.total_us / pps.total_us:.2f}x")


if __name__ == "__main__":
    main()
