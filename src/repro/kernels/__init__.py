"""The paper's GPU kernels: real math, modeled cost (Sections 4.1-4.4)."""

from .color_kernel import ColorConvertKernel
from .idct_kernel import IdctKernel
from .layout import (
    PlanarBlockLayout,
    deinterleave_rgb_vectors,
    interleave_rgb_vectors,
    pack_span,
)
from .merged import MergedAllKernel, MergedIdctColorKernel, MergedUpsampleColorKernel
from .program import GpuDecodeProgram, GpuProgramOptions, SpanResult
from .upsample_kernel import UpsampleKernel

__all__ = [
    "ColorConvertKernel",
    "GpuDecodeProgram",
    "GpuProgramOptions",
    "IdctKernel",
    "MergedAllKernel",
    "MergedIdctColorKernel",
    "MergedUpsampleColorKernel",
    "PlanarBlockLayout",
    "SpanResult",
    "UpsampleKernel",
    "deinterleave_rgb_vectors",
    "interleave_rgb_vectors",
    "pack_span",
]
