"""GPU IDCT kernel (paper Section 4.1).

Eight work-items per block: each work-item owns one column through the
column pass (registers only), shares the intermediate through local
memory, then owns one row for the row pass and vectorizes its eight
8-bit results into two 4-byte stores.  Work-groups cover a multiple of
four blocks so the group size is a warp multiple.

The *math* delegates to the vectorized AAN implementation shared with
the CPU path — identical results by construction; the *cost* reflects
the kernel's per-item geometry above.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import KernelError
from ..gpusim.kernel import KernelLaunch, SimKernel
from ..gpusim.memory import MemoryTraffic
from ..gpusim.ndrange import NDRange
from ..jpeg.idct import idct_2d_aan, samples_from_idct
from ..jpeg.quantization import dequantize_blocks

#: Work-items assigned per 8x8 block (one per column).
ITEMS_PER_BLOCK = 8

#: Flops one work-item spends: dequantize+prescale its column (16), AAN
#: column pass (~34), AAN row pass share (~34).
FLOPS_PER_ITEM = 84.0

#: Registers per work-item: 8 column values + temporaries.
REGISTERS_PER_ITEM = 20


@dataclass
class IdctKernel(SimKernel):
    """Dequantization + 2D IDCT over a batch of blocks.

    Parameters
    ----------
    workgroup_blocks : blocks per work-group; must be a multiple of 4 so
        the group is a warp multiple (paper Section 4.1).  The best value
        is platform-specific and found by offline profiling (Section 5).
    vectorized : model the two vec4 stores per item (True) or eight
        scalar byte stores (False) — the A2 ablation.
    """

    workgroup_blocks: int = 16
    vectorized: bool = True
    name: str = "idct"

    def __post_init__(self) -> None:
        if self.workgroup_blocks <= 0 or self.workgroup_blocks % 4:
            raise KernelError(
                "work-group must cover a positive multiple of 4 blocks"
            )

    def describe_launch(self, *, coeffs: np.ndarray,
                        quant: np.ndarray) -> KernelLaunch:
        n_blocks = coeffs.shape[0]
        if n_blocks == 0:
            raise KernelError("empty launch")
        wg_blocks = min(self.workgroup_blocks, max(4, n_blocks - n_blocks % 4))
        global_items = -(-n_blocks // wg_blocks) * wg_blocks * ITEMS_PER_BLOCK
        ndr = NDRange(global_size=global_items,
                      local_size=wg_blocks * ITEMS_PER_BLOCK)
        if self.vectorized:
            write_txn = n_blocks * ITEMS_PER_BLOCK * 2   # two vec4 per item
        else:
            write_txn = n_blocks * ITEMS_PER_BLOCK * 8   # scalar byte stores
        traffic = MemoryTraffic(
            global_read_bytes=n_blocks * 64 * 2,          # int16 coefficients
            global_write_bytes=n_blocks * 64,             # uint8 samples
            local_bytes_per_group=wg_blocks * 64 * 4,     # float intermediate
            read_transactions=n_blocks * 64 * 2 // 128,
            write_transactions=write_txn,
            coalesced=True,
        )
        return KernelLaunch(
            ndrange=ndr,
            flops_per_item=FLOPS_PER_ITEM,
            traffic=traffic,
            registers_per_item=REGISTERS_PER_ITEM,
        )

    def execute(self, *, coeffs: np.ndarray, quant: np.ndarray) -> np.ndarray:
        """Dequantize + AAN IDCT + level shift; returns (n, 8, 8) uint8."""
        deq = dequantize_blocks(coeffs, quant)
        return samples_from_idct(idct_2d_aan(deq))
