"""GPU fancy-upsampling kernel for 4:2:2 (paper Section 4.2, Algorithm 1).

Sixteen work-items per block, two per 8-pixel row: the even-ID item reads
In[0..4] and produces Out[0..7], the odd-ID item reads In[3..7] and
produces Out[8..15].  End pixels take a different equation, so a naive
work-item arrangement diverges; the paper sizes work-groups so all 16
items of a block take the same branch (``divergence_free=True``).  The
A2-style ablation can disable that to model the divergent variant.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import KernelError
from ..gpusim.kernel import KernelLaunch, SimKernel
from ..gpusim.memory import MemoryTraffic
from ..gpusim.ndrange import NDRange
from ..jpeg.sampling import upsample_h2v1_fancy

ITEMS_PER_BLOCK = 16

#: ~4 ops per produced pixel, 8 pixels per item.
FLOPS_PER_ITEM = 32.0

REGISTERS_PER_ITEM = 12


@dataclass
class UpsampleKernel(SimKernel):
    """Horizontal 2x fancy upsampling over a batch of chroma blocks."""

    workgroup_blocks: int = 8
    divergence_free: bool = True
    name: str = "upsample"

    def __post_init__(self) -> None:
        if self.workgroup_blocks <= 0 or self.workgroup_blocks % 2:
            raise KernelError(
                "work-group must cover a positive multiple of 2 blocks "
                "(16 items/block, warp multiple)"
            )

    def describe_launch(self, *, plane: np.ndarray) -> KernelLaunch:
        h, w = plane.shape
        if h % 8 or w % 8:
            raise KernelError("plane must be block-aligned")
        n_blocks = (h // 8) * (w // 8)
        wg_blocks = min(self.workgroup_blocks, max(2, n_blocks - n_blocks % 2))
        global_items = -(-n_blocks // wg_blocks) * wg_blocks * ITEMS_PER_BLOCK
        ndr = NDRange(global_size=global_items,
                      local_size=wg_blocks * ITEMS_PER_BLOCK)
        traffic = MemoryTraffic(
            global_read_bytes=n_blocks * 64,      # uint8 chroma in
            global_write_bytes=n_blocks * 128,    # 2x wider out
            read_transactions=n_blocks * 64 // 128 + 1,
            write_transactions=n_blocks * ITEMS_PER_BLOCK * 2,
            coalesced=True,
        )
        return KernelLaunch(
            ndrange=ndr,
            flops_per_item=FLOPS_PER_ITEM,
            traffic=traffic,
            registers_per_item=REGISTERS_PER_ITEM,
            divergence_factor=1.0 if self.divergence_free else 2.0,
        )

    def execute(self, *, plane: np.ndarray) -> np.ndarray:
        """Upsample a (h, w) chroma plane to (h, 2w), Algorithm 1."""
        return upsample_h2v1_fancy(plane)
