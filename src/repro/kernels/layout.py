"""Device buffer layouts (paper Sections 3-4, Figures 3-4).

The whole-image coefficient buffer sent to the GPU stores all Y blocks,
then all Cb blocks, then all Cr blocks — "this buffer layout avoids
interleaving block access, and thus, improves coalesced memory access"
(Section 4).  The color-conversion output switches from the block-based
pattern to the row-major pixel pattern (Figure 3), and interleaved RGB
bytes are grouped into vec4 stores (Figure 4).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..jpeg.blocks import ImageGeometry
from ..jpeg.entropy import CoefficientBuffers


@dataclass(frozen=True)
class PlanarBlockLayout:
    """Describes the Y|Cb|Cr block ordering of a device buffer for a
    span of MCU rows."""

    geometry: ImageGeometry
    mcu_row_start: int
    mcu_row_stop: int

    @property
    def mcu_rows(self) -> int:
        return self.mcu_row_stop - self.mcu_row_start

    def component_block_counts(self) -> tuple[int, ...]:
        """Blocks per component within the span."""
        return tuple(
            c.blocks_wide * c.v_factor * self.mcu_rows
            for c in self.geometry.components
        )

    @property
    def total_blocks(self) -> int:
        return sum(self.component_block_counts())

    @property
    def total_samples(self) -> int:
        return self.total_blocks * 64

    @property
    def coefficient_nbytes(self) -> int:
        """Host->device transfer size: one int16 per coefficient."""
        return self.total_samples * 2

    def output_pixels(self) -> int:
        """Pixels the span contributes to the final image (unclamped
        bottom spans include block padding rows)."""
        geo = self.geometry
        row_px = geo.mcu_height
        start_px = self.mcu_row_start * row_px
        stop_px = min(self.mcu_row_stop * row_px, geo.height)
        return max(0, stop_px - start_px) * geo.width

    @property
    def rgb_nbytes(self) -> int:
        """Device->host transfer size: 3 bytes per output pixel."""
        return self.output_pixels() * 3


def pack_span(coeffs: CoefficientBuffers, mcu_row_start: int,
              mcu_row_stop: int) -> tuple[PlanarBlockLayout, list[np.ndarray]]:
    """Extract the Y|Cb|Cr per-component block views for an MCU-row span.

    Views, not copies: the "transfer" is priced by the layout's byte
    count while the kernel math reads the host arrays directly.
    """
    layout = PlanarBlockLayout(coeffs.geometry, mcu_row_start, mcu_row_stop)
    span = coeffs.rows_slice(mcu_row_start, mcu_row_stop)
    return layout, span.planes


def interleave_rgb_vectors(rgb_rows: np.ndarray) -> np.ndarray:
    """Regroup an (..., 8, 3) row of pixels into six 4-byte vectors
    (Figure 4).  Pure data-movement; exists so tests can check the
    vectorized store pattern is a bijection."""
    flat = np.ascontiguousarray(rgb_rows).reshape(*rgb_rows.shape[:-2], 24)
    return flat.reshape(*rgb_rows.shape[:-2], 6, 4)


def deinterleave_rgb_vectors(vectors: np.ndarray) -> np.ndarray:
    """Inverse of :func:`interleave_rgb_vectors`."""
    flat = vectors.reshape(*vectors.shape[:-2], 24)
    return flat.reshape(*vectors.shape[:-2], 8, 3)
