"""GPU decode program: the parallel phase of one MCU-row span on the GPU.

Chains write -> kernel(s) -> read on a simulated command queue, following
the paper's buffer layout (Y|Cb|Cr blocks in, row-major RGB out) and the
kernel-merging strategy of Section 4.4:

- 4:4:4: one fused IDCT+color kernel (or IDCT then color when merging is
  disabled for ablation);
- 4:2:2: IDCT kernel, then fused upsample+color (or three separate
  kernels when merging is disabled).

Everything is asynchronous: the caller's host clock only pays dispatch
overheads, and the returned events carry the device timeline.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import JpegUnsupportedError
from ..gpusim.queue import CommandQueue, Event
from ..jpeg.blocks import ImageGeometry, blocks_to_plane
from ..jpeg.entropy import CoefficientBuffers
from .color_kernel import ColorConvertKernel
from .idct_kernel import IdctKernel
from .layout import PlanarBlockLayout, pack_span
from .merged import MergedIdctColorKernel, MergedUpsampleColorKernel
from .upsample_kernel import UpsampleKernel


@dataclass
class GpuProgramOptions:
    """Kernel-level knobs (the profiling sweep and the ablations)."""

    merge_kernels: bool = True
    vectorized: bool = True
    divergence_free: bool = True
    workgroup_blocks: int = 16       # IDCT work-group size, in blocks
    workgroup_items: int = 128       # upsample+color work-group size


@dataclass
class SpanResult:
    """Output of one span's GPU execution."""

    rgb: np.ndarray                  # (rows, width, 3) uint8, cropped
    pixel_row_start: int
    pixel_row_stop: int
    events: list[Event] = field(default_factory=list)

    @property
    def done_at(self) -> float:
        return self.events[-1].end if self.events else 0.0


class GpuDecodeProgram:
    """Executes parallel-phase spans for one image on one queue."""

    def __init__(self, queue: CommandQueue, geometry: ImageGeometry,
                 quants: list[np.ndarray],
                 options: GpuProgramOptions | None = None) -> None:
        if geometry.mode not in ("4:4:4", "4:2:2"):
            raise JpegUnsupportedError(
                f"GPU kernels cover 4:4:4 and 4:2:2; {geometry.mode} "
                "decodes via the CPU paths (the paper's scope, Section 6)"
            )
        self.queue = queue
        self.geometry = geometry
        self.quants = quants
        self.options = options or GpuProgramOptions()
        o = self.options
        self._idct = IdctKernel(workgroup_blocks=o.workgroup_blocks,
                                vectorized=o.vectorized)
        self._color = ColorConvertKernel(workgroup_items=o.workgroup_items,
                                         vectorized=o.vectorized)
        self._upsample = UpsampleKernel(divergence_free=o.divergence_free)
        self._merged_ic = MergedIdctColorKernel(
            workgroup_blocks=o.workgroup_blocks, vectorized=o.vectorized)
        self._merged_uc = MergedUpsampleColorKernel(
            workgroup_items=o.workgroup_items, vectorized=o.vectorized,
            divergence_free=o.divergence_free)

    # -- helpers ----------------------------------------------------------

    def _span_planes(self, samples: list[np.ndarray], layout: PlanarBlockLayout
                     ) -> list[np.ndarray]:
        """Assemble per-component sample planes from block batches."""
        planes = []
        for comp, blocks in zip(self.geometry.components, samples):
            rows = layout.mcu_rows * comp.v_factor
            planes.append(blocks_to_plane(blocks, comp.blocks_wide, rows))
        return planes

    # -- main entry point --------------------------------------------------

    def run_span(self, coeffs: CoefficientBuffers, mcu_row_start: int,
                 mcu_row_stop: int, host_time: float,
                 label: str = "") -> tuple[float, SpanResult]:
        """Enqueue the full parallel phase for the span; returns the new
        host time and the (already computed) span result.

        The RGB array is the *final* data; its availability time on the
        host is the last event's ``end``.
        """
        geo = self.geometry
        layout, comp_blocks = pack_span(coeffs, mcu_row_start, mcu_row_stop)
        tag = label or f"rows[{mcu_row_start}:{mcu_row_stop}]"
        events: list[Event] = []

        host_time, ev = self.queue.enqueue_write(
            f"write {tag}", layout.coefficient_nbytes, host_time)
        events.append(ev)

        if geo.mode == "4:4:4":
            rgb_blocks, host_time, kevents = self._run_444(comp_blocks, host_time, tag)
        else:
            rgb_blocks, host_time, kevents = self._run_422(
                comp_blocks, layout, host_time, tag)
        events.extend(kevents)

        host_time, ev = self.queue.enqueue_read(
            f"read {tag}", layout.rgb_nbytes, host_time)
        events.append(ev)

        # crop the block-padded output to real image rows/columns
        px0 = mcu_row_start * geo.mcu_height
        px1 = min(mcu_row_stop * geo.mcu_height, geo.height)
        rgb = rgb_blocks[: px1 - px0, : geo.width]
        return host_time, SpanResult(
            rgb=rgb, pixel_row_start=px0, pixel_row_stop=px1, events=events)

    def price_span(self, mcu_row_start: int, mcu_row_stop: int,
                   host_time: float, label: str = "") -> tuple[float, list[Event]]:
        """Enqueue the span's commands *without executing any math*.

        Used by offline profiling and the schedule simulators: kernel
        cost depends only on launch geometry, so shape-only arrays
        suffice.  Timing is identical to :meth:`run_span`.
        """
        geo = self.geometry
        layout = PlanarBlockLayout(geo, mcu_row_start, mcu_row_stop)
        tag = label or f"rows[{mcu_row_start}:{mcu_row_stop}]"
        nrows = layout.mcu_rows
        events: list[Event] = []

        host_time, ev = self.queue.enqueue_write(
            f"write {tag}", layout.coefficient_nbytes, host_time)
        events.append(ev)

        comps = geo.components
        shapes = [
            np.empty((c.blocks_wide * c.v_factor * nrows, 8, 8), dtype=np.int16)
            for c in comps
        ]
        if geo.mode == "4:4:4":
            if self.options.merge_kernels:
                host_time, ev, _ = self.queue.enqueue_kernel(
                    self._merged_ic, host_time, execute=False,
                    label=f"idct+color {tag}", y_coeffs=shapes[0],
                    cb_coeffs=shapes[1], cr_coeffs=shapes[2],
                    quants=self.quants)
                events.append(ev)
            else:
                for name, arr, quant in zip("Y Cb Cr".split(), shapes, self.quants):
                    host_time, ev, _ = self.queue.enqueue_kernel(
                        self._idct, host_time, execute=False,
                        label=f"idct[{name}] {tag}", coeffs=arr, quant=quant)
                    events.append(ev)
                plane = np.empty((nrows * geo.mcu_height, comps[0].blocks_wide * 8),
                                 dtype=np.uint8)
                host_time, ev, _ = self.queue.enqueue_kernel(
                    self._color, host_time, execute=False,
                    label=f"color {tag}", y=plane, cb=plane, cr=plane)
                events.append(ev)
        else:  # 4:2:2
            for name, arr, quant in zip("Y Cb Cr".split(), shapes, self.quants):
                host_time, ev, _ = self.queue.enqueue_kernel(
                    self._idct, host_time, execute=False,
                    label=f"idct[{name}] {tag}", coeffs=arr, quant=quant)
                events.append(ev)
            y_plane = np.empty((nrows * geo.mcu_height, comps[0].blocks_wide * 8),
                               dtype=np.uint8)
            c_plane = np.empty((nrows * geo.mcu_height, comps[1].blocks_wide * 8),
                               dtype=np.uint8)
            if self.options.merge_kernels:
                host_time, ev, _ = self.queue.enqueue_kernel(
                    self._merged_uc, host_time, execute=False,
                    label=f"upsample+color {tag}", y_plane=y_plane,
                    cb_plane=c_plane, cr_plane=c_plane)
                events.append(ev)
            else:
                for name in ("Cb", "Cr"):
                    host_time, ev, _ = self.queue.enqueue_kernel(
                        self._upsample, host_time, execute=False,
                        label=f"upsample[{name}] {tag}", plane=c_plane)
                    events.append(ev)
                host_time, ev, _ = self.queue.enqueue_kernel(
                    self._color, host_time, execute=False,
                    label=f"color {tag}", y=y_plane, cb=y_plane, cr=y_plane)
                events.append(ev)

        host_time, ev = self.queue.enqueue_read(
            f"read {tag}", layout.rgb_nbytes, host_time)
        events.append(ev)
        return host_time, events

    # -- per-mode kernel chains ---------------------------------------------

    def _run_444(self, comp_blocks: list[np.ndarray], host_time: float,
                 tag: str) -> tuple[np.ndarray, float, list[Event]]:
        events: list[Event] = []
        yb, cbb, crb = comp_blocks
        layout_rows = None
        if self.options.merge_kernels:
            host_time, ev, rgb_blocks = self.queue.enqueue_kernel(
                self._merged_ic, host_time, label=f"idct+color {tag}",
                y_coeffs=yb, cb_coeffs=cbb, cr_coeffs=crb,
                quants=[self.quants[0], self.quants[1], self.quants[2]])
            events.append(ev)
            samples = None
            rgb_plane = self._assemble_rgb_blocks(rgb_blocks)
            return rgb_plane, host_time, events
        samples = []
        for name, blocks, quant in (
            ("Y", yb, self.quants[0]),
            ("Cb", cbb, self.quants[1]),
            ("Cr", crb, self.quants[2]),
        ):
            host_time, ev, out = self.queue.enqueue_kernel(
                self._idct, host_time, label=f"idct[{name}] {tag}",
                coeffs=blocks, quant=quant)
            events.append(ev)
            samples.append(out)
        comp0 = self.geometry.components[0]
        rows = samples[0].shape[0] // comp0.blocks_wide
        planes = [
            blocks_to_plane(s, c.blocks_wide, s.shape[0] // c.blocks_wide)
            for s, c in zip(samples, self.geometry.components)
        ]
        host_time, ev, rgb = self.queue.enqueue_kernel(
            self._color, host_time, label=f"color {tag}",
            y=planes[0], cb=planes[1], cr=planes[2])
        events.append(ev)
        return rgb, host_time, events

    def _assemble_rgb_blocks(self, rgb_blocks: np.ndarray) -> np.ndarray:
        """(n, 8, 8, 3) block batch -> (rows, cols, 3) plane."""
        comp = self.geometry.components[0]
        n = rgb_blocks.shape[0]
        bh = n // comp.blocks_wide
        grid = rgb_blocks.reshape(bh, comp.blocks_wide, 8, 8, 3)
        return grid.transpose(0, 2, 1, 3, 4).reshape(bh * 8, comp.blocks_wide * 8, 3)

    def _run_422(self, comp_blocks: list[np.ndarray], layout: PlanarBlockLayout,
                 host_time: float, tag: str) -> tuple[np.ndarray, float, list[Event]]:
        events: list[Event] = []
        samples = []
        for name, blocks, quant in (
            ("Y", comp_blocks[0], self.quants[0]),
            ("Cb", comp_blocks[1], self.quants[1]),
            ("Cr", comp_blocks[2], self.quants[2]),
        ):
            host_time, ev, out = self.queue.enqueue_kernel(
                self._idct, host_time, label=f"idct[{name}] {tag}",
                coeffs=blocks, quant=quant)
            events.append(ev)
            samples.append(out)
        planes = self._span_planes(samples, layout)

        if self.options.merge_kernels:
            host_time, ev, rgb = self.queue.enqueue_kernel(
                self._merged_uc, host_time, label=f"upsample+color {tag}",
                y_plane=planes[0], cb_plane=planes[1], cr_plane=planes[2])
            events.append(ev)
            return rgb, host_time, events

        ups = []
        for name, plane in (("Cb", planes[1]), ("Cr", planes[2])):
            host_time, ev, up = self.queue.enqueue_kernel(
                self._upsample, host_time, label=f"upsample[{name}] {tag}",
                plane=plane)
            events.append(ev)
            ups.append(up)
        host_time, ev, rgb = self.queue.enqueue_kernel(
            self._color, host_time, label=f"color {tag}",
            y=planes[0], cb=ups[0], cr=ups[1])
        events.append(ev)
        return rgb, host_time, events
