"""Merged GPU kernels (paper Section 4.4).

Intermediate results stored to global memory between kernel invocations
are pure overhead, so the paper fuses stages:

- **4:4:4**: color conversion merges into the IDCT kernel.  Each
  work-item repeats the IDCT for all three components (3x compute) but
  converts its row from registers — the Y/Cb/Cr sample round-trip
  through global memory disappears.
- **4:2:2**: upsampling merges with color conversion (two work-items
  hold a full chroma row in registers after upsampling and only load the
  matching Y row).  A 128-item work-group processes two groups of four
  blocks, 16 output blocks, with all 16 items of a block taking the same
  branch — no divergence.

Merging everything (IDCT+upsample+color) is *not* done: register
pressure would cut active work-groups per SM (the paper's stated
reason), which the occupancy model here reproduces — see the A1 ablation
benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import KernelError
from ..gpusim.kernel import KernelLaunch, SimKernel
from ..gpusim.memory import MemoryTraffic
from ..gpusim.ndrange import NDRange
from ..jpeg.color import ycbcr_to_rgb_float
from ..jpeg.idct import idct_2d_aan, samples_from_idct
from ..jpeg.quantization import dequantize_blocks
from ..jpeg.sampling import upsample_h2v1_fancy
from . import color_kernel, idct_kernel, upsample_kernel


@dataclass
class MergedIdctColorKernel(SimKernel):
    """IDCT + color conversion in one kernel — the 4:4:4 fusion.

    Work-items triple their IDCT work (Y, Cb, Cr) and keep rows in
    registers through Algorithm 2; intermediate global traffic vanishes.
    """

    workgroup_blocks: int = 16
    vectorized: bool = True
    name: str = "idct+color"

    def __post_init__(self) -> None:
        if self.workgroup_blocks <= 0 or self.workgroup_blocks % 4:
            raise KernelError("work-group must cover a multiple of 4 blocks")

    def describe_launch(self, *, y_coeffs: np.ndarray, cb_coeffs: np.ndarray,
                        cr_coeffs: np.ndarray, quants: list[np.ndarray]) -> KernelLaunch:
        n_blocks = y_coeffs.shape[0]  # items follow the Y grid; 3x work each
        if not (n_blocks == cb_coeffs.shape[0] == cr_coeffs.shape[0]):
            raise KernelError("4:4:4 components must have equal block counts")
        wg_blocks = min(self.workgroup_blocks, max(4, n_blocks - n_blocks % 4))
        items = -(-n_blocks // wg_blocks) * wg_blocks * idct_kernel.ITEMS_PER_BLOCK
        ndr = NDRange(global_size=items,
                      local_size=wg_blocks * idct_kernel.ITEMS_PER_BLOCK)
        write_txn_per_item = 6 if self.vectorized else 24
        traffic = MemoryTraffic(
            global_read_bytes=3 * n_blocks * 64 * 2,  # all three coefficient sets
            global_write_bytes=n_blocks * 64 * 3,     # interleaved RGB out
            local_bytes_per_group=wg_blocks * 64 * 4,
            read_transactions=3 * n_blocks * 64 * 2 // 128,
            write_transactions=n_blocks * idct_kernel.ITEMS_PER_BLOCK
            * write_txn_per_item,
            coalesced=True,
        )
        return KernelLaunch(
            ndrange=ndr,
            # 3x the IDCT work plus Algorithm 2 on an 8-pixel row
            flops_per_item=3 * idct_kernel.FLOPS_PER_ITEM + 12.0 * 8,
            traffic=traffic,
            registers_per_item=idct_kernel.REGISTERS_PER_ITEM + 14,
        )

    def execute(self, *, y_coeffs: np.ndarray, cb_coeffs: np.ndarray,
                cr_coeffs: np.ndarray, quants: list[np.ndarray]) -> np.ndarray:
        """Returns per-block RGB samples, (n, 8, 8, 3) uint8."""
        outs = []
        for coeffs, quant in zip((y_coeffs, cb_coeffs, cr_coeffs), quants):
            outs.append(samples_from_idct(idct_2d_aan(dequantize_blocks(coeffs, quant))))
        return ycbcr_to_rgb_float(outs[0], outs[1], outs[2])


@dataclass
class MergedUpsampleColorKernel(SimKernel):
    """Upsampling + color conversion in one kernel — the 4:2:2 fusion.

    128 work-items per group process two groups of four blocks; 16 items
    per block; upsampled chroma stays in registers, only the Y row is
    re-loaded from global memory.
    """

    workgroup_items: int = 128
    vectorized: bool = True
    divergence_free: bool = True
    name: str = "upsample+color"

    def __post_init__(self) -> None:
        if self.workgroup_items <= 0 or self.workgroup_items % 32:
            raise KernelError("work-group must be a positive warp multiple")

    def describe_launch(self, *, y_plane: np.ndarray, cb_plane: np.ndarray,
                        cr_plane: np.ndarray) -> KernelLaunch:
        if cb_plane.shape != cr_plane.shape:
            raise KernelError("chroma planes must share a shape")
        h, w = cb_plane.shape
        if y_plane.shape != (h, 2 * w):
            raise KernelError(
                "4:2:2 luma plane must be twice the chroma width"
            )
        n_blocks = (h // 8) * (w // 8)            # chroma blocks driving items
        items_needed = n_blocks * upsample_kernel.ITEMS_PER_BLOCK
        global_items = -(-items_needed // self.workgroup_items) * self.workgroup_items
        ndr = NDRange(global_size=global_items, local_size=self.workgroup_items)
        out_pixels = y_plane.size
        write_txn_per_row_item = 12 if self.vectorized else 48  # 16-px row out
        traffic = MemoryTraffic(
            global_read_bytes=y_plane.size + cb_plane.size + cr_plane.size,
            global_write_bytes=out_pixels * 3,
            read_transactions=(y_plane.size + 2 * cb_plane.size) // 128 + 1,
            write_transactions=items_needed * write_txn_per_row_item,
            coalesced=True,
        )
        return KernelLaunch(
            ndrange=ndr,
            # Algorithm 1 on both chroma rows (2 x 32) + Algorithm 2 on
            # a 16-pixel output row
            flops_per_item=2 * upsample_kernel.FLOPS_PER_ITEM + 12.0 * 16,
            traffic=traffic,
            registers_per_item=upsample_kernel.REGISTERS_PER_ITEM + 20,
        )

    def execute(self, *, y_plane: np.ndarray, cb_plane: np.ndarray,
                cr_plane: np.ndarray) -> np.ndarray:
        """Returns (h, 2w, 3) uint8 RGB."""
        cb_up = upsample_h2v1_fancy(cb_plane)
        cr_up = upsample_h2v1_fancy(cr_plane)
        return ycbcr_to_rgb_float(y_plane, cb_up, cr_up)


@dataclass
class MergedAllKernel(SimKernel):
    """IDCT + upsample + color in one kernel — the fusion the paper
    *rejects* (register pressure kills occupancy).  Exists for the A1
    ablation so the rejection is measurable, not asserted."""

    workgroup_blocks: int = 16
    name: str = "idct+upsample+color"

    def describe_launch(self, *, y_coeffs: np.ndarray, cb_coeffs: np.ndarray,
                        cr_coeffs: np.ndarray, quants: list[np.ndarray]) -> KernelLaunch:
        n_blocks = cb_coeffs.shape[0]
        wg_blocks = min(self.workgroup_blocks, max(4, n_blocks - n_blocks % 4))
        items = -(-n_blocks // wg_blocks) * wg_blocks * idct_kernel.ITEMS_PER_BLOCK
        ndr = NDRange(global_size=items,
                      local_size=wg_blocks * idct_kernel.ITEMS_PER_BLOCK)
        total_coef_bytes = (y_coeffs.shape[0] + 2 * n_blocks) * 64 * 2
        out_bytes = y_coeffs.shape[0] * 64 * 3
        traffic = MemoryTraffic(
            global_read_bytes=total_coef_bytes,
            global_write_bytes=out_bytes,
            local_bytes_per_group=wg_blocks * 64 * 4 * 3,
            read_transactions=total_coef_bytes // 128,
            write_transactions=items * 12,
            coalesced=True,
        )
        return KernelLaunch(
            ndrange=ndr,
            flops_per_item=4 * idct_kernel.FLOPS_PER_ITEM
            + 2 * upsample_kernel.FLOPS_PER_ITEM + 12.0 * 16,
            # the point of this kernel: register pressure tanks occupancy
            registers_per_item=63,
            traffic=traffic,
        )

    def execute(self, *, y_coeffs: np.ndarray, cb_coeffs: np.ndarray,
                cr_coeffs: np.ndarray, quants: list[np.ndarray]) -> None:
        raise NotImplementedError(
            "the all-merged kernel exists only for cost-model ablation"
        )
