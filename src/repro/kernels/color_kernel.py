"""GPU color-conversion kernel (paper Section 4.3, Algorithm 2).

One work-item converts an eight-pixel row: three global reads (Y, Cb,
Cr) per pixel, then the 24 interleaved RGB bytes are grouped into six
4-byte vector stores (Figure 4), cutting store transactions 4x versus
scalar bytes.  Output switches from the block-based to the row-major
pixel layout (Figure 3) via an indexing function that steps one image
width between vertical neighbours — data movement that is free in NumPy
but whose coalescing the launch description captures.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import KernelError
from ..gpusim.kernel import KernelLaunch, SimKernel
from ..gpusim.memory import MemoryTraffic
from ..gpusim.ndrange import NDRange
from ..jpeg.color import ycbcr_to_rgb_float

PIXELS_PER_ITEM = 8

#: Algorithm 2 is ~12 flops per pixel.
FLOPS_PER_ITEM = 12.0 * PIXELS_PER_ITEM

REGISTERS_PER_ITEM = 18


@dataclass
class ColorConvertKernel(SimKernel):
    """YCbCr -> interleaved RGB over full-resolution planes."""

    workgroup_items: int = 128
    vectorized: bool = True
    name: str = "color_convert"

    def __post_init__(self) -> None:
        if self.workgroup_items <= 0 or self.workgroup_items % 32:
            raise KernelError("work-group must be a positive warp multiple")

    def describe_launch(self, *, y: np.ndarray, cb: np.ndarray,
                        cr: np.ndarray) -> KernelLaunch:
        if y.shape != cb.shape or y.shape != cr.shape:
            raise KernelError("component planes must share a shape")
        pixels = y.size
        items = -(-pixels // PIXELS_PER_ITEM)
        global_items = -(-items // self.workgroup_items) * self.workgroup_items
        ndr = NDRange(global_size=global_items, local_size=self.workgroup_items)
        if self.vectorized:
            write_txn = items * 6        # six vec4 stores per 8-pixel item
        else:
            write_txn = items * 24       # scalar byte stores
        traffic = MemoryTraffic(
            global_read_bytes=pixels * 3,
            global_write_bytes=pixels * 3,
            read_transactions=pixels * 3 // 128 + 1,
            write_transactions=write_txn,
            coalesced=True,
        )
        return KernelLaunch(
            ndrange=ndr,
            flops_per_item=FLOPS_PER_ITEM,
            traffic=traffic,
            registers_per_item=REGISTERS_PER_ITEM,
        )

    def execute(self, *, y: np.ndarray, cb: np.ndarray,
                cr: np.ndarray) -> np.ndarray:
        """Convert full-resolution planes to (h, w, 3) uint8 RGB."""
        return ycbcr_to_rgb_float(y, cb, cr)
