"""The paper's contribution: performance model, dynamic partitioning and
pipelined heterogeneous execution."""

from .amdahl import max_speedup, parallel_fraction, percent_of_max
from .decoder import HeterogeneousDecoder, clear_model_cache
from .executors import (
    DecodeResult,
    ExecutionConfig,
    PreparedImage,
    cpu_parallel_span,
)
from .horner import HornerPolynomial, naive_evaluate
from .modes import EVALUATED_MODES, DecodeMode
from .newton import newton_solve, round_rows_to_mcu
from .partition import (
    PartitionDecision,
    corrected_density,
    partition_pps,
    partition_sps,
    repartition_pps,
)
from .perfmodel import PerformanceModel
from .platform import Platform
from .profiling import (
    ProfilingReport,
    TrainingImage,
    default_training_grid,
    profile_platform,
)
from .regression import PolynomialModel, fit_best_polynomial, fit_polynomial
from .timeline import Span, Timeline

__all__ = [
    "DecodeMode",
    "DecodeResult",
    "EVALUATED_MODES",
    "ExecutionConfig",
    "HeterogeneousDecoder",
    "HornerPolynomial",
    "PartitionDecision",
    "PerformanceModel",
    "Platform",
    "PolynomialModel",
    "PreparedImage",
    "ProfilingReport",
    "Span",
    "Timeline",
    "TrainingImage",
    "clear_model_cache",
    "corrected_density",
    "cpu_parallel_span",
    "default_training_grid",
    "fit_best_polynomial",
    "fit_polynomial",
    "max_speedup",
    "naive_evaluate",
    "newton_solve",
    "parallel_fraction",
    "partition_pps",
    "partition_sps",
    "percent_of_max",
    "profile_platform",
    "repartition_pps",
    "round_rows_to_mcu",
]
