"""Pipeline chunk-size selection (paper Section 4.5).

"The most efficient chunk size is determined through static profiling on
large images.  Chunk sizes are varied from the full height down to an
eight pixel stripe. ... The best sizes from each image are selected.
The final partition size is chosen as the largest size on the best list
to prevent from choosing a size that is too small wrt. GPU utilization."

Chunks are counted in MCU rows (8 or 16 pixel stripes depending on
subsampling); candidates halve from the full height down to one row.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ProfilingError
from .executors import ExecutionConfig, PreparedImage, execute_pipeline
from .platform import Platform


def candidate_chunk_rows(total_mcu_rows: int) -> list[int]:
    """Halving ladder from the full height down to a single MCU row."""
    if total_mcu_rows <= 0:
        raise ProfilingError("image has no MCU rows")
    sizes = []
    c = total_mcu_rows
    while c >= 1:
        sizes.append(c)
        if c == 1:
            break
        c //= 2
    return sizes


@dataclass(frozen=True)
class ChunkProfileEntry:
    """Result of one (image, chunk size) pipeline simulation."""

    width: int
    height: int
    chunk_mcu_rows: int
    total_us: float


def profile_chunk_sizes(
    platform: Platform,
    images: list[PreparedImage],
    gpu_options=None,
) -> tuple[int, list[ChunkProfileEntry]]:
    """Sweep candidate chunk sizes over *images*; return the selected
    chunk size (largest of the per-image winners) and the full record."""
    if not images:
        raise ProfilingError("chunk profiling needs at least one image")
    entries: list[ChunkProfileEntry] = []
    best_per_image: list[int] = []
    for img in images:
        rows = img.geometry.mcu_rows
        best_rows, best_time = None, float("inf")
        for c in candidate_chunk_rows(rows):
            cfg_kwargs = {"platform": platform, "chunk_mcu_rows": c}
            if gpu_options is not None:
                cfg_kwargs["gpu_options"] = gpu_options
            cfg = ExecutionConfig(**cfg_kwargs)
            result = execute_pipeline(cfg, img)
            entries.append(ChunkProfileEntry(
                width=img.geometry.width, height=img.geometry.height,
                chunk_mcu_rows=c, total_us=result.total_us))
            if result.total_us < best_time:
                best_rows, best_time = c, result.total_us
        best_per_image.append(best_rows)
    # largest winner guards against starving the GPU on big images
    return max(best_per_image), entries
