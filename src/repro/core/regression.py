"""Multivariate polynomial regression with AIC model selection (Section 5.1).

The paper fits each decoding phase with polynomials "up to a degree of
seven" and picks the best fit "by comparing Akaike information criteria".
This module implements exactly that: a monomial design matrix over any
number of variables, ordinary least squares, and degree selection by AIC
(with the small-sample correction available, since training grids can be
modest).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import combinations_with_replacement

import numpy as np

from ..errors import ModelError

#: The paper's maximum fitted degree.
MAX_DEGREE = 7


def monomial_exponents(n_vars: int, degree: int) -> list[tuple[int, ...]]:
    """All exponent tuples of total degree <= *degree* over *n_vars*
    variables, constant term first, graded-lexicographic order."""
    if n_vars <= 0:
        raise ModelError("need at least one variable")
    if degree < 0:
        raise ModelError("degree must be non-negative")
    exps: list[tuple[int, ...]] = []
    for total in range(degree + 1):
        for combo in combinations_with_replacement(range(n_vars), total):
            e = [0] * n_vars
            for v in combo:
                e[v] += 1
            exps.append(tuple(e))
    return exps


def design_matrix(x: np.ndarray, exponents: list[tuple[int, ...]]) -> np.ndarray:
    """Evaluate the monomial basis at rows of *x* ((n, k) array)."""
    x = np.atleast_2d(np.asarray(x, dtype=np.float64))
    n, k = x.shape
    cols = np.empty((n, len(exponents)), dtype=np.float64)
    for j, exp in enumerate(exponents):
        col = np.ones(n)
        for v, p in enumerate(exp):
            if p:
                col = col * x[:, v] ** p
        cols[:, j] = col
    return cols


@dataclass
class PolynomialModel:
    """A fitted multivariate polynomial: sum_j c_j * prod_v x_v^e_jv."""

    n_vars: int
    degree: int
    exponents: list[tuple[int, ...]]
    coefficients: np.ndarray
    rss: float = 0.0
    n_samples: int = 0
    scale: np.ndarray = field(default_factory=lambda: np.array([1.0]))

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Evaluate at rows of *x*; accepts (k,) or (n, k)."""
        x = np.atleast_2d(np.asarray(x, dtype=np.float64)) / self.scale
        return design_matrix(x, self.exponents) @ self.coefficients

    def predict_one(self, *values: float) -> float:
        """Scalar convenience evaluation."""
        return float(self.predict(np.array(values))[0])

    @property
    def n_params(self) -> int:
        return len(self.coefficients)

    def aic(self) -> float:
        """Akaike information criterion of the fit (Gaussian residuals)."""
        return aic_score(self.rss, self.n_samples, self.n_params)

    # -- (de)serialization ------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "n_vars": self.n_vars,
            "degree": self.degree,
            "exponents": [list(e) for e in self.exponents],
            "coefficients": self.coefficients.tolist(),
            "rss": self.rss,
            "n_samples": self.n_samples,
            "scale": self.scale.tolist(),
        }

    @classmethod
    def from_dict(cls, d: dict) -> "PolynomialModel":
        return cls(
            n_vars=int(d["n_vars"]),
            degree=int(d["degree"]),
            exponents=[tuple(e) for e in d["exponents"]],
            coefficients=np.asarray(d["coefficients"], dtype=np.float64),
            rss=float(d["rss"]),
            n_samples=int(d["n_samples"]),
            scale=np.asarray(d.get("scale", [1.0] * int(d["n_vars"]))),
        )


def aic_score(rss: float, n: int, k: int, corrected: bool = True) -> float:
    """AIC for a least-squares fit; AICc correction when n/k is small."""
    if n <= 0:
        raise ModelError("AIC needs at least one sample")
    rss = max(rss, 1e-300)  # guard the log for (near-)exact fits
    score = n * np.log(rss / n) + 2 * k
    if corrected and n - k - 1 > 0:
        score += 2.0 * k * (k + 1) / (n - k - 1)
    return float(score)


def fit_polynomial(x: np.ndarray, y: np.ndarray, degree: int) -> PolynomialModel:
    """Least-squares fit of one fixed-degree polynomial.

    Inputs are rescaled to unit order of magnitude before fitting so that
    degree-7 monomials of pixel-scale inputs (w, h up to thousands) stay
    numerically sane; the scale is stored and reapplied in predict().
    """
    x = np.atleast_2d(np.asarray(x, dtype=np.float64))
    y = np.asarray(y, dtype=np.float64).reshape(-1)
    if x.shape[0] != y.shape[0]:
        raise ModelError("x and y sample counts differ")
    if x.shape[0] < 1:
        raise ModelError("cannot fit with zero samples")
    scale = np.maximum(np.abs(x).max(axis=0), 1e-12)
    xs = x / scale
    exps = monomial_exponents(x.shape[1], degree)
    if x.shape[0] < len(exps):
        raise ModelError(
            f"degree {degree} needs >= {len(exps)} samples, have {x.shape[0]}"
        )
    a = design_matrix(xs, exps)
    coef, _, _, _ = np.linalg.lstsq(a, y, rcond=None)
    resid = y - a @ coef
    rss = float(resid @ resid)
    return PolynomialModel(
        n_vars=x.shape[1], degree=degree, exponents=exps,
        coefficients=coef, rss=rss, n_samples=x.shape[0], scale=scale,
    )


def fit_best_polynomial(
    x: np.ndarray, y: np.ndarray,
    max_degree: int = MAX_DEGREE,
    min_degree: int = 1,
) -> PolynomialModel:
    """Fit degrees min..max and return the AIC-best model (Section 5.1).

    Degrees whose parameter count exceeds the sample count are skipped;
    at least one degree must be feasible.
    """
    x = np.atleast_2d(np.asarray(x, dtype=np.float64))
    best: PolynomialModel | None = None
    best_aic = np.inf
    for degree in range(min_degree, max_degree + 1):
        try:
            model = fit_polynomial(x, y, degree)
        except ModelError:
            continue
        score = model.aic()
        if score < best_aic:
            best, best_aic = model, score
    if best is None:
        raise ModelError(
            f"no degree in [{min_degree}, {max_degree}] is fittable with "
            f"{x.shape[0]} samples"
        )
    return best
