"""Amdahl's-law speedup bound (paper Section 6.2, Equations 18-19).

The only truly sequential stage is Huffman decoding, so with infinitely
many processors the best attainable speedup over the SIMD baseline is
``Ttotal(SIMD) / THuff`` (Eq 19).  Figure 11 reports the fraction of
that bound PPS achieves.
"""

from __future__ import annotations

from ..errors import ModelError


def max_speedup(total_time: float, sequential_time: float) -> float:
    """Eq 18/19: bound given the sequential portion's absolute time."""
    if total_time <= 0:
        raise ModelError("total time must be positive")
    if sequential_time <= 0:
        raise ModelError("sequential portion must be positive")
    if sequential_time > total_time:
        raise ModelError("sequential portion exceeds total time")
    return total_time / sequential_time


def parallel_fraction(total_time: float, sequential_time: float) -> float:
    """P of Eq 18: the parallelizable fraction of the program."""
    max_speedup(total_time, sequential_time)  # validates inputs
    return 1.0 - sequential_time / total_time


def percent_of_max(actual_speedup: float, total_time: float,
                   sequential_time: float) -> float:
    """Figure 11's y-axis: achieved speedup / attainable bound * 100."""
    bound = max_speedup(total_time, sequential_time)
    if actual_speedup < 0:
        raise ModelError("speedup cannot be negative")
    return 100.0 * actual_speedup / bound
