"""The six decoder execution modes evaluated in the paper (Section 6)."""

from __future__ import annotations

from enum import Enum


class DecodeMode(str, Enum):
    """Execution modes, in the paper's naming.

    - SEQUENTIAL: libjpeg-turbo's plain C path, one CPU thread.
    - SIMD: libjpeg-turbo's SIMD path — the paper's main yardstick.
    - GPU: Huffman on the CPU, then one GPU pass over the whole image.
    - PIPELINE: Huffman chunks streamed to the GPU as they decode
      (Section 4.5, "pipelined GPU").
    - SPS: simple partitioning scheme — full Huffman, then the parallel
      phase split between CPU and GPU by Newton's method (Section 5.2.1).
    - PPS: pipelined partitioning scheme — GPU chunks overlap Huffman,
      re-partitioning corrects the split before the last chunk
      (Section 5.2.2).
    """

    SEQUENTIAL = "sequential"
    SIMD = "simd"
    GPU = "gpu"
    PIPELINE = "pipeline"
    SPS = "sps"
    PPS = "pps"

    @property
    def uses_gpu(self) -> bool:
        return self not in (DecodeMode.SEQUENTIAL, DecodeMode.SIMD)

    @property
    def is_partitioned(self) -> bool:
        """True for the heterogeneous (CPU+GPU cooperative) modes."""
        return self in (DecodeMode.SPS, DecodeMode.PPS)

    @property
    def is_pipelined(self) -> bool:
        return self in (DecodeMode.PIPELINE, DecodeMode.PPS)


#: The four modes Figure 10 / Tables 2-3 report speedups for.
EVALUATED_MODES = (DecodeMode.GPU, DecodeMode.PIPELINE, DecodeMode.SPS, DecodeMode.PPS)
