"""Offline profiling (paper Section 5.1).

Runs the instrumented decoder — in pricing mode, so no pixel math — over
a training corpus spanning the (width, height, density) space, collects
per-stage times for every mode, sweeps the OpenCL work-group size from
4 to 32 MCUs, selects the pipeline chunk size, and fits the polynomial
closed forms by AIC.  One call per CPU-GPU combination and subsampling,
exactly the paper's "required only once for a given CPU-GPU combination".
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import KernelError, ProfilingError
from ..gpusim import calibrate
from ..gpusim.queue import CommandQueue
from ..jpeg.blocks import ImageGeometry
from ..kernels.program import GpuDecodeProgram, GpuProgramOptions
from .chunking import profile_chunk_sizes
from .executors import PreparedImage
from .perfmodel import PerformanceModel
from .platform import Platform
from .regression import fit_best_polynomial

#: Paper sweep: "work-group sizes are alternated from 4 MCUs to 32 MCUs".
#: An MCU is 4 blocks in both 4:2:2 (2Y+Cb+Cr) and 4:4:4 (interleaved
#: batches of 4 for warp alignment), so candidates are in blocks.
WORKGROUP_CANDIDATES_MCUS = (4, 8, 16, 32)
BLOCKS_PER_MCU = 4


@dataclass(frozen=True)
class TrainingImage:
    """A virtual training-corpus member (the model only sees w, h, d)."""

    width: int
    height: int
    density: float


def default_training_grid(
    widths: tuple[int, ...] = (128, 192, 256, 384, 512, 768, 1024, 1536, 2048),
    heights: tuple[int, ...] = (128, 256, 384, 512, 768, 1024, 1536, 2048),
    densities: tuple[float, ...] = (0.05, 0.08, 0.12, 0.18, 0.25, 0.35, 0.45),
) -> list[TrainingImage]:
    """Cropped-grid corpus mirroring the paper's methodology: base
    images cropped to all width x height combinations (Section 5.1), at
    laptop scale.  Densities rotate across the grid so every dimension
    pair appears with several entropy levels."""
    images = []
    i = 0
    for w in widths:
        for h in heights:
            images.append(TrainingImage(w, h, densities[i % len(densities)]))
            i += 1
    return images


@dataclass
class ProfileRecord:
    """Raw per-image measurements collected during profiling."""

    width: int
    height: int
    density: float
    t_huff_us: float
    p_cpu_simd_us: float
    p_cpu_seq_us: float
    p_gpu_us: float
    t_disp_us: float


@dataclass
class ProfilingReport:
    """Everything profiling produced, for inspection and EXPERIMENTS.md."""

    model: PerformanceModel
    records: list[ProfileRecord] = field(default_factory=list)
    workgroup_sweep: dict[int, float] = field(default_factory=dict)
    chunk_sweep: list = field(default_factory=list)


def _price_gpu_full(platform: Platform, geo: ImageGeometry,
                    options: GpuProgramOptions) -> tuple[float, float]:
    """(PGPU, Tdisp) for a whole-image span: device span per Eq 7 and
    host-side dispatch cost."""
    queue = CommandQueue(platform.gpu)
    quants = [np.ones((8, 8), dtype=np.uint16)] * 3
    program = GpuDecodeProgram(queue, geo, quants, options)
    host_end, events = program.price_span(0, geo.mcu_rows, 0.0)
    p_gpu = events[-1].end - events[0].start
    return p_gpu, host_end


def profile_platform(
    platform: Platform,
    subsampling: str = "4:2:2",
    training: list[TrainingImage] | None = None,
    max_degree: int = 7,
    gpu_options: GpuProgramOptions | None = None,
    chunk_profile_sizes: tuple[tuple[int, int], ...] = ((1536, 1536), (2048, 2048)),
    full_report: bool = False,
) -> PerformanceModel | ProfilingReport:
    """Profile one platform and fit its :class:`PerformanceModel`.

    Set ``full_report=True`` to also get the raw records and sweeps.
    """
    if subsampling not in ("4:4:4", "4:2:2"):
        raise ProfilingError(
            f"profiling covers the paper's modes (4:4:4/4:2:2), not {subsampling}"
        )
    if training is not None and not training:
        raise ProfilingError("empty training corpus")
    if training is None:
        training = default_training_grid()
    base_options = gpu_options or GpuProgramOptions()

    # -- work-group size sweep (Section 5.1) -----------------------------
    # Candidates whose resource demand exceeds the device (the OpenCL
    # CL_OUT_OF_RESOURCES case) are observed as failures and skipped.
    sweep_geo = ImageGeometry(2048, 2048, subsampling)
    wg_sweep: dict[int, float] = {}
    for mcus in WORKGROUP_CANDIDATES_MCUS:
        opts = GpuProgramOptions(
            merge_kernels=base_options.merge_kernels,
            vectorized=base_options.vectorized,
            divergence_free=base_options.divergence_free,
            workgroup_blocks=mcus * BLOCKS_PER_MCU,
            workgroup_items=base_options.workgroup_items,
        )
        try:
            wg_sweep[mcus], _ = _price_gpu_full(platform, sweep_geo, opts)
        except KernelError:
            wg_sweep[mcus] = float("inf")
    best_mcus = min(wg_sweep, key=wg_sweep.get)
    if not np.isfinite(wg_sweep[best_mcus]):
        raise ProfilingError("no feasible work-group size for this device")
    options = GpuProgramOptions(
        merge_kernels=base_options.merge_kernels,
        vectorized=base_options.vectorized,
        divergence_free=base_options.divergence_free,
        workgroup_blocks=best_mcus * BLOCKS_PER_MCU,
        workgroup_items=base_options.workgroup_items,
    )

    # -- per-image stage measurements -------------------------------------
    records: list[ProfileRecord] = []
    for img in training:
        geo = ImageGeometry(img.width, img.height, subsampling)
        pixels = img.width * img.height
        entropy_bytes = int(img.density * pixels)
        t_huff = calibrate.huffman_time_us(pixels, entropy_bytes, platform.cpu)
        p_simd = calibrate.cpu_parallel_time_us(
            img.width, img.height, subsampling, platform.cpu, simd=True)
        p_seq = calibrate.cpu_parallel_time_us(
            img.width, img.height, subsampling, platform.cpu, simd=False)
        p_gpu, t_disp = _price_gpu_full(platform, geo, options)
        records.append(ProfileRecord(
            width=img.width, height=img.height, density=img.density,
            t_huff_us=t_huff, p_cpu_simd_us=p_simd, p_cpu_seq_us=p_seq,
            p_gpu_us=p_gpu, t_disp_us=t_disp))

    # -- regression fits (AIC-selected degree, Section 5.1) ----------------
    d = np.array([[r.density] for r in records])
    rate = np.array([r.t_huff_us / (r.width * r.height) for r in records])
    wh = np.array([[r.width, r.height] for r in records], dtype=np.float64)

    huff_fit = fit_best_polynomial(d, rate, max_degree=max_degree)
    cpu_simd_fit = fit_best_polynomial(
        wh, [r.p_cpu_simd_us for r in records], max_degree=max_degree)
    cpu_seq_fit = fit_best_polynomial(
        wh, [r.p_cpu_seq_us for r in records], max_degree=max_degree)
    gpu_fit = fit_best_polynomial(
        wh, [r.p_gpu_us for r in records], max_degree=max_degree)
    disp_fit = fit_best_polynomial(
        wh, [r.t_disp_us for r in records], max_degree=max_degree)

    model = PerformanceModel(
        platform_name=platform.name,
        subsampling=subsampling,
        huff_rate_fit=huff_fit,
        cpu_simd_fit=cpu_simd_fit,
        cpu_seq_fit=cpu_seq_fit,
        gpu_fit=gpu_fit,
        disp_fit=disp_fit,
        workgroup_blocks=best_mcus * BLOCKS_PER_MCU,
    )

    # -- chunk-size selection (Section 4.5) --------------------------------
    typical_density = float(np.median([r.density for r in records]))
    chunk_images = [
        PreparedImage.virtual(w, h, subsampling, typical_density)
        for (w, h) in chunk_profile_sizes
    ]
    chunk_rows, chunk_entries = profile_chunk_sizes(
        platform, chunk_images, gpu_options=options)
    model.chunk_mcu_rows = chunk_rows

    if full_report:
        return ProfilingReport(model=model, records=records,
                               workgroup_sweep=wg_sweep,
                               chunk_sweep=chunk_entries)
    return model
