"""Execution engines for the six decode modes (paper Figures 5 and 8).

Every executor produces two things from one compressed image:

1. **Real pixels** — bit-identical to the reference sequential decoder
   (the math always runs through the same stage primitives, whether a
   span executes "on the CPU" or "on the GPU").
2. **A simulated timeline** — host clock + device command queue, priced
   by the calibrated platform model.  The host enqueues asynchronously
   and only pays dispatch overhead, exactly the OpenCL semantics the
   paper's schemes exploit.

Executors also run in *pricing mode* (PreparedImage.virtual or
coefficients=None): all scheduling logic executes, no pixel math — this
is what offline profiling and chunk-size selection use.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import JpegUnsupportedError, PartitionError
from ..gpusim import calibrate
from ..gpusim.queue import CommandQueue
from ..jpeg.blocks import ImageGeometry, blocks_to_plane
from ..jpeg.color import ycbcr_to_rgb_float
from ..jpeg.decoder import (
    DecodeOptions,
    component_tables_from_info,
    quant_tables_from_info,
)
from ..jpeg.entropy import CoefficientBuffers
from ..jpeg.fast_entropy import create_entropy_decoder
from ..jpeg.idct import idct_2d_aan, samples_from_idct
from ..jpeg.markers import JpegImageInfo, parse_jpeg
from ..jpeg.quantization import dequantize_blocks
from ..jpeg.sampling import upsample_plane
from ..kernels.program import GpuDecodeProgram, GpuProgramOptions
from .modes import DecodeMode
from .partition import (
    PartitionDecision,
    corrected_density,
    partition_pps,
    partition_sps,
    repartition_pps,
)
from .perfmodel import PerformanceModel
from .platform import Platform
from .timeline import Timeline


# ---------------------------------------------------------------------------
# Input wrapper.
# ---------------------------------------------------------------------------

@dataclass
class PreparedImage:
    """One image, entropy-decoded once and shared across executors.

    ``coefficients is None`` marks a *virtual* image used for pricing:
    scheduling runs, pixel math is skipped, density is uniform.
    """

    geometry: ImageGeometry
    density: float                       # entropy bytes / pixel (Eq 3 input)
    info: JpegImageInfo | None = None
    coefficients: CoefficientBuffers | None = None
    row_byte_offsets: list[int] = field(default_factory=list)
    quants: list[np.ndarray] = field(default_factory=list)

    @classmethod
    def from_bytes(cls, data: bytes,
                   entropy_engine: str = "fast") -> "PreparedImage":
        """Parse + fully entropy-decode a real JPEG (the expensive step).

        *entropy_engine* selects the Huffman decode path ("fast" or
        "reference"); both are bit-exact, the fast engine is the default
        so every pipeline benchmark rides the fused decode tables.
        """
        info = parse_jpeg(data)
        if info.progressive:
            raise JpegUnsupportedError(
                "progressive streams are not supported by the simulated "
                "executors; decode on the reference path")
        if len(info.frame.components) != 3:
            raise JpegUnsupportedError(
                "simulated executors model 3-component YCbCr decoding "
                "only; decode on the reference path")
        geo = info.geometry
        dec = create_entropy_decoder(entropy_engine, geo,
                                     component_tables_from_info(info),
                                     info.restart_interval)
        dec.start(info.entropy_data)
        dec.decode_mcu_rows(geo.mcu_rows)
        return cls(
            geometry=geo,
            density=info.file_density,
            info=info,
            coefficients=dec.coefficients,
            row_byte_offsets=dec.row_byte_offsets,
            quants=quant_tables_from_info(info),
        )

    @classmethod
    def virtual(cls, width: int, height: int, mode: str,
                density: float) -> "PreparedImage":
        """A descriptor-only image for profiling/scheduling studies."""
        geo = ImageGeometry(width, height, mode)
        per_row = density * width * geo.mcu_height
        offsets = [int(round(per_row * r)) for r in range(geo.mcu_rows + 1)]
        return cls(geometry=geo, density=density, row_byte_offsets=offsets)

    @property
    def is_virtual(self) -> bool:
        return self.coefficients is None

    def as_virtual(self) -> "PreparedImage":
        """A pricing-only copy: same geometry/density/row offsets, no
        coefficient data.  Executors then skip all pixel math while
        producing *identical* simulated timings — the benchmark harness
        replays schedules through these."""
        return PreparedImage(
            geometry=self.geometry, density=self.density, info=self.info,
            coefficients=None, row_byte_offsets=list(self.row_byte_offsets),
            quants=list(self.quants),
        )

    def huff_row_us(self, platform: Platform) -> np.ndarray:
        """Simulated Huffman time per MCU row, from real byte deltas."""
        geo = self.geometry
        offsets = np.asarray(self.row_byte_offsets, dtype=np.float64)
        if len(offsets) != geo.mcu_rows + 1:
            raise PartitionError("row byte offsets do not match geometry")
        deltas = np.diff(offsets)
        row_px = np.full(geo.mcu_rows, geo.width * geo.mcu_height, dtype=np.float64)
        # bottom row may be partial in pixel terms; Huffman still decodes
        # the full MCU row of blocks, so no correction is applied
        ns = (calibrate.HUFFMAN_BASE_NS_PER_PIXEL * row_px
              + calibrate.HUFFMAN_SLOPE_NS_PER_BYTE * deltas)
        return ns / (1e3 * platform.cpu.speed_factor)


# ---------------------------------------------------------------------------
# Result type.
# ---------------------------------------------------------------------------

@dataclass
class DecodeResult:
    """Pixels + simulated performance record of one decode."""

    mode: DecodeMode
    rgb: np.ndarray | None
    geometry: ImageGeometry
    timeline: Timeline
    total_us: float
    breakdown: dict[str, float] = field(default_factory=dict)
    partition: PartitionDecision | None = None
    info: JpegImageInfo | None = None

    @property
    def total_time_ms(self) -> float:
        return self.total_us / 1e3

    def speedup_over(self, other: "DecodeResult") -> float:
        return other.total_us / self.total_us


# ---------------------------------------------------------------------------
# Shared configuration.
# ---------------------------------------------------------------------------

@dataclass
class ExecutionConfig:
    """Everything an executor needs besides the image."""

    platform: Platform
    model: PerformanceModel | None = None
    gpu_options: GpuProgramOptions = field(default_factory=GpuProgramOptions)
    chunk_mcu_rows: int | None = None   # pipeline chunk size; defaults to model's
    repartition: bool = True            # PPS re-partitioning (A6 ablation)
    fancy_upsampling: bool = True

    def resolve_chunk_rows(self) -> int:
        if self.chunk_mcu_rows is not None:
            return max(1, self.chunk_mcu_rows)
        if self.model is not None:
            return max(1, self.model.chunk_mcu_rows)
        return 8

    def require_model(self, mode: DecodeMode) -> PerformanceModel:
        if self.model is None:
            raise PartitionError(
                f"{mode.value} mode needs a fitted PerformanceModel "
                "(run repro.core.profiling.profile_platform first)"
            )
        return self.model


# ---------------------------------------------------------------------------
# CPU parallel phase (real math + simulated cost).
# ---------------------------------------------------------------------------

def cpu_parallel_span(geometry: ImageGeometry, coeffs: CoefficientBuffers,
                      quants: list[np.ndarray], mcu_row_start: int,
                      mcu_row_stop: int, fancy: bool = True) -> np.ndarray:
    """Dequant + IDCT + upsample + color for an MCU-row span, on the CPU.

    Identical primitives to the GPU program, so pixels match exactly.
    4:2:0's vertical fancy upsampling needs cross-span context, which the
    paper's partitioned modes never require (they cover 4:4:4/4:2:2);
    partial 4:2:0 spans are therefore rejected.
    """
    geo = geometry
    whole = mcu_row_start == 0 and mcu_row_stop == geo.mcu_rows
    if geo.mode == "4:2:0" and not whole:
        raise JpegUnsupportedError(
            "partial spans are not defined for 4:2:0 (no vertical context)"
        )
    span = coeffs.rows_slice(mcu_row_start, mcu_row_stop)
    nrows = mcu_row_stop - mcu_row_start
    planes = []
    for comp, plane_coeffs, quant in zip(geo.components, span.planes, quants):
        deq = dequantize_blocks(plane_coeffs, quant)
        samples = samples_from_idct(idct_2d_aan(deq))
        planes.append(blocks_to_plane(samples, comp.blocks_wide,
                                      nrows * comp.v_factor))
    y = planes[0]
    cb = upsample_plane(planes[1], geo.mode, fancy)
    cr = upsample_plane(planes[2], geo.mode, fancy)
    px0 = mcu_row_start * geo.mcu_height
    px1 = min(mcu_row_stop * geo.mcu_height, geo.height)
    h_px = px1 - px0
    return ycbcr_to_rgb_float(
        y[:h_px, : geo.width], cb[:h_px, : geo.width], cr[:h_px, : geo.width]
    )


def cpu_span_time_us(config: ExecutionConfig, geometry: ImageGeometry,
                     pixel_rows: int, simd: bool) -> float:
    """Simulated CPU time for the parallel phase over *pixel_rows*."""
    if pixel_rows <= 0:
        return 0.0
    return calibrate.cpu_parallel_time_us(
        geometry.width, pixel_rows, geometry.mode, config.platform.cpu, simd)


def _cpu_stage_spans(config: ExecutionConfig, geometry: ImageGeometry,
                     timeline: Timeline, t0: float, simd: bool) -> float:
    """Add per-stage CPU spans (idct, upsample, color) from t0; return end."""
    costs = calibrate.SIMD_COSTS if simd else calibrate.SEQUENTIAL_COSTS
    idct_samples, up_samples, pixels = calibrate.stage_counts(
        geometry.width, geometry.height, geometry.mode)
    speed = 1e3 * config.platform.cpu.speed_factor
    t = t0
    for label, units, cost in (
        ("idct", idct_samples, costs.idct_ns_per_sample),
        ("upsample", up_samples, costs.upsample_ns_per_sample),
        ("color", pixels, costs.color_ns_per_pixel),
    ):
        dur = units * cost / speed
        if dur > 0:
            timeline.add("cpu", label, "cpu-parallel", t, t + dur)
            t += dur
    return t


def _make_program(config: ExecutionConfig,
                  prepared: PreparedImage) -> tuple[GpuDecodeProgram, CommandQueue]:
    queue = CommandQueue(config.platform.gpu)
    quants = prepared.quants or [np.ones((8, 8), dtype=np.uint16)] * 3
    program = GpuDecodeProgram(queue, prepared.geometry, quants,
                               config.gpu_options)
    return program, queue


def _gpu_span(program: GpuDecodeProgram, prepared: PreparedImage,
              r0: int, r1: int, host: float):
    """Run (or price) one GPU span; returns (host', events, rgb|None)."""
    if prepared.is_virtual:
        host, events = program.price_span(r0, r1, host)
        return host, events, None
    host, res = program.run_span(prepared.coefficients, r0, r1, host)
    return host, res.events, res.rgb


# ---------------------------------------------------------------------------
# Mode executors.
# ---------------------------------------------------------------------------

def execute_cpu_only(config: ExecutionConfig, prepared: PreparedImage,
                     mode: DecodeMode) -> DecodeResult:
    """SEQUENTIAL and SIMD modes: Huffman then the CPU parallel phase."""
    if mode not in (DecodeMode.SEQUENTIAL, DecodeMode.SIMD):
        raise ValueError(f"not a CPU-only mode: {mode}")
    simd = mode is DecodeMode.SIMD
    geo = prepared.geometry
    timeline = Timeline()
    huff = prepared.huff_row_us(config.platform)
    t_h = float(huff.sum())
    timeline.add("cpu", "huffman", "huffman", 0.0, t_h)
    t_end = _cpu_stage_spans(config, geo, timeline, t_h, simd)

    rgb = None
    if not prepared.is_virtual:
        rgb = cpu_parallel_span(geo, prepared.coefficients, prepared.quants,
                                0, geo.mcu_rows, config.fancy_upsampling)
    return DecodeResult(
        mode=mode, rgb=rgb, geometry=geo, timeline=timeline,
        total_us=t_end, breakdown=timeline.stage_breakdown(),
        info=prepared.info,
    )


def execute_gpu(config: ExecutionConfig, prepared: PreparedImage) -> DecodeResult:
    """GPU mode: full Huffman on the CPU, one GPU pass (Figure 5a)."""
    geo = prepared.geometry
    program, queue = _make_program(config, prepared)
    timeline = Timeline()
    huff = prepared.huff_row_us(config.platform)
    t_h = float(huff.sum())
    timeline.add("cpu", "huffman", "huffman", 0.0, t_h)

    host, events, rgb = _gpu_span(program, prepared, 0, geo.mcu_rows, t_h)
    timeline.add("cpu", "dispatch", "dispatch", t_h, host)
    timeline.add_events(events)
    total = queue.finish(host)
    return DecodeResult(
        mode=DecodeMode.GPU, rgb=rgb, geometry=geo, timeline=timeline,
        total_us=total, breakdown=timeline.stage_breakdown(),
        info=prepared.info,
    )


def _chunk_spans(total_rows: int, chunk_rows: int) -> list[tuple[int, int]]:
    """Split [0, total_rows) into chunk-sized MCU-row spans."""
    spans = []
    r = 0
    while r < total_rows:
        spans.append((r, min(r + chunk_rows, total_rows)))
        r += chunk_rows
    return spans


def execute_pipeline(config: ExecutionConfig,
                     prepared: PreparedImage) -> DecodeResult:
    """Pipelined GPU mode (Section 4.5, Figure 5b): Huffman chunks
    stream to the GPU; kernels overlap subsequent Huffman decoding."""
    geo = prepared.geometry
    chunk_rows = config.resolve_chunk_rows()
    program, queue = _make_program(config, prepared)
    timeline = Timeline()
    huff = prepared.huff_row_us(config.platform)

    host = 0.0
    parts: list[np.ndarray] = []
    for (r0, r1) in _chunk_spans(geo.mcu_rows, chunk_rows):
        dt = float(huff[r0:r1].sum())
        timeline.add("cpu", f"huffman[{r0}:{r1}]", "huffman", host, host + dt)
        host += dt
        t_before = host
        host, events, rgb = _gpu_span(program, prepared, r0, r1, host)
        timeline.add("cpu", f"dispatch[{r0}:{r1}]", "dispatch", t_before, host)
        timeline.add_events(events)
        if rgb is not None:
            parts.append(rgb)
    total = queue.finish(host)
    out = np.vstack(parts) if parts else None
    return DecodeResult(
        mode=DecodeMode.PIPELINE, rgb=out, geometry=geo, timeline=timeline,
        total_us=total, breakdown=timeline.stage_breakdown(),
        info=prepared.info,
    )


def execute_sps(config: ExecutionConfig, prepared: PreparedImage) -> DecodeResult:
    """SPS (Section 5.2.1, Figure 8a): full Huffman, then the parallel
    phase split between GPU (top rows) and CPU (bottom rows)."""
    geo = prepared.geometry
    model = config.require_model(DecodeMode.SPS)
    timeline = Timeline()
    huff = prepared.huff_row_us(config.platform)
    t_h = float(huff.sum())
    timeline.add("cpu", "huffman", "huffman", 0.0, t_h)

    decision = partition_sps(model, geo.width, geo.height, geo.mcu_height)
    gpu_mcu_rows = geo.pixel_rows_to_mcu_rows(decision.gpu_rows)
    host = t_h
    parts: list[np.ndarray] = []

    queue = None
    if gpu_mcu_rows > 0:
        program, queue = _make_program(config, prepared)
        t_before = host
        host, events, rgb = _gpu_span(program, prepared, 0, gpu_mcu_rows, host)
        timeline.add("cpu", "dispatch", "dispatch", t_before, host)
        timeline.add_events(events)
        if rgb is not None:
            parts.append(rgb)

    cpu_pixel_rows = geo.height - min(gpu_mcu_rows * geo.mcu_height, geo.height)
    cpu_end = host
    if cpu_pixel_rows > 0:
        dt = cpu_span_time_us(config, geo, cpu_pixel_rows, simd=True)
        timeline.add("cpu", f"simd[{gpu_mcu_rows}:{geo.mcu_rows}]",
                     "cpu-parallel", host, host + dt)
        cpu_end = host + dt
        if not prepared.is_virtual:
            parts.append(cpu_parallel_span(
                geo, prepared.coefficients, prepared.quants,
                gpu_mcu_rows, geo.mcu_rows, config.fancy_upsampling))

    total = max(cpu_end, queue.finish(host) if queue is not None else cpu_end)
    out = np.vstack(parts) if parts and not prepared.is_virtual else None
    return DecodeResult(
        mode=DecodeMode.SPS, rgb=out, geometry=geo, timeline=timeline,
        total_us=total, breakdown=timeline.stage_breakdown(),
        partition=decision, info=prepared.info,
    )


def execute_pps(config: ExecutionConfig, prepared: PreparedImage) -> DecodeResult:
    """PPS (Section 5.2.2, Figure 8c): GPU chunks overlap Huffman; the
    split is re-solved before the last GPU chunk (Eq 16/17)."""
    geo = prepared.geometry
    model = config.require_model(DecodeMode.PPS)
    chunk_rows = config.resolve_chunk_rows()
    timeline = Timeline()
    huff = prepared.huff_row_us(config.platform)

    decision = partition_pps(
        model, geo.width, geo.height, prepared.density,
        chunk_rows * geo.mcu_height, geo.mcu_height)
    gpu_mcu_rows = geo.pixel_rows_to_mcu_rows(decision.gpu_rows)

    program, queue = (None, None)
    if gpu_mcu_rows > 0:
        program, queue = _make_program(config, prepared)

    spans = _chunk_spans(gpu_mcu_rows, chunk_rows)
    est_total_huff = model.t_huff(geo.width, geo.height, prepared.density)

    host = 0.0
    parts: list[np.ndarray] = []
    consumed_huff = 0.0
    final_decision = decision

    for i, (r0, r1) in enumerate(spans):
        is_last = i == len(spans) - 1
        if is_last and config.repartition:
            # Eq 16/17: one GPU chunk + the CPU partition remain
            remaining_mcu_rows = geo.mcu_rows - r0
            remaining_px = min(remaining_mcu_rows * geo.mcu_height,
                               geo.height - r0 * geo.mcu_height)
            d_corr = corrected_density(
                max(est_total_huff, 1e-9), consumed_huff,
                remaining_px, geo.height, prepared.density)
            backlog = max(0.0, queue.device_free_at - host) if queue else 0.0
            re_dec = repartition_pps(model, geo.width, remaining_px,
                                     d_corr, backlog, geo.mcu_height)
            new_gpu_px = re_dec.gpu_rows
            new_gpu_rows = geo.pixel_rows_to_mcu_rows(new_gpu_px)
            r1 = min(r0 + new_gpu_rows, geo.mcu_rows)
            gpu_mcu_rows = r1
            final_decision = PartitionDecision(
                cpu_rows=geo.height - min(r1 * geo.mcu_height, geo.height),
                gpu_rows=min(r1 * geo.mcu_height, geo.height),
                x_unrounded=re_dec.x_unrounded,
                iterations=decision.iterations + re_dec.iterations,
                converged=re_dec.converged,
                predicted_cpu_us=re_dec.predicted_cpu_us,
                predicted_gpu_us=re_dec.predicted_gpu_us,
            )
            if r1 <= r0:
                gpu_mcu_rows = r0
                break
        dt = float(huff[r0:r1].sum())
        timeline.add("cpu", f"huffman[{r0}:{r1}]", "huffman", host, host + dt)
        host += dt
        consumed_huff += dt
        t_before = host
        host, events, rgb = _gpu_span(program, prepared, r0, r1, host)
        timeline.add("cpu", f"dispatch[{r0}:{r1}]", "dispatch", t_before, host)
        timeline.add_events(events)
        if rgb is not None:
            parts.append(rgb)
        if is_last:
            break

    # CPU partition: Huffman for the remaining rows, then SIMD
    cpu_end = host
    if gpu_mcu_rows < geo.mcu_rows:
        dt_h = float(huff[gpu_mcu_rows:].sum())
        timeline.add("cpu", f"huffman[{gpu_mcu_rows}:{geo.mcu_rows}]",
                     "huffman", host, host + dt_h)
        host += dt_h
        cpu_px = geo.height - min(gpu_mcu_rows * geo.mcu_height, geo.height)
        dt_c = cpu_span_time_us(config, geo, cpu_px, simd=True)
        timeline.add("cpu", f"simd[{gpu_mcu_rows}:{geo.mcu_rows}]",
                     "cpu-parallel", host, host + dt_c)
        cpu_end = host + dt_c
        if not prepared.is_virtual:
            parts.append(cpu_parallel_span(
                geo, prepared.coefficients, prepared.quants,
                gpu_mcu_rows, geo.mcu_rows, config.fancy_upsampling))

    gpu_end = queue.finish(host) if queue is not None else cpu_end
    total = max(cpu_end, gpu_end)
    out = np.vstack(parts) if parts and not prepared.is_virtual else None
    return DecodeResult(
        mode=DecodeMode.PPS, rgb=out, geometry=geo, timeline=timeline,
        total_us=total, breakdown=timeline.stage_breakdown(),
        partition=final_decision, info=prepared.info,
    )


#: Dispatch table used by the public decoder facade.
EXECUTORS = {
    DecodeMode.SEQUENTIAL: lambda cfg, img: execute_cpu_only(cfg, img, DecodeMode.SEQUENTIAL),
    DecodeMode.SIMD: lambda cfg, img: execute_cpu_only(cfg, img, DecodeMode.SIMD),
    DecodeMode.GPU: execute_gpu,
    DecodeMode.PIPELINE: execute_pipeline,
    DecodeMode.SPS: execute_sps,
    DecodeMode.PPS: execute_pps,
}
