"""Horner-form evaluation of fitted polynomials (Section 5.1).

"Evaluating polynomials of high degrees at run-time showed a noticeable
negative impact on the performance of the JPEG decoder.  We rearranged
all polynomials in Horner form to reduce the number of multiplications."

A multivariate polynomial is rearranged recursively: collect by the
power of the first variable — the coefficients are polynomials in the
remaining variables — and evaluate with nested Horner steps.  The
multiplication counters let the A5 ablation benchmark quantify the
saving against naive monomial evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import ModelError
from .regression import PolynomialModel


@dataclass
class OpCount:
    """Multiplication/addition counters for an evaluation strategy."""

    mults: int = 0
    adds: int = 0


@dataclass
class _Node:
    """One level of the nested-Horner tree.

    ``coeffs_by_power[p]`` is the sub-polynomial (over the remaining
    variables) multiplying ``x^p``; a leaf stores a float constant.
    """

    var: int
    coeffs_by_power: list["float | _Node"] = field(default_factory=list)


def _build(terms: dict[tuple[int, ...], float], var: int, n_vars: int) -> "float | _Node":
    if not terms:
        return 0.0
    if var == n_vars:
        # all exponents exhausted: a single constant remains
        return sum(terms.values())
    max_pow = max(e[var] for e in terms)
    groups: list[dict[tuple[int, ...], float]] = [dict() for _ in range(max_pow + 1)]
    for exp, coef in terms.items():
        groups[exp[var]][exp] = coef
    node = _Node(var=var)
    for p in range(max_pow + 1):
        node.coeffs_by_power.append(_build(groups[p], var + 1, n_vars))
    return node


def _eval(node: "float | _Node", x: np.ndarray, count: OpCount | None) -> float:
    if not isinstance(node, _Node):
        return float(node)
    xv = float(x[node.var])
    # Horner step over powers of x_var, highest power first
    acc = _eval(node.coeffs_by_power[-1], x, count)
    for sub in reversed(node.coeffs_by_power[:-1]):
        acc = acc * xv + _eval(sub, x, count)
        if count is not None:
            count.mults += 1
            count.adds += 1
    return acc


class HornerPolynomial:
    """A :class:`PolynomialModel` rearranged for cheap evaluation."""

    def __init__(self, model: PolynomialModel) -> None:
        self.model = model
        terms = {
            exp: float(c)
            for exp, c in zip(model.exponents, model.coefficients)
        }
        self._root = _build(terms, 0, model.n_vars)

    def evaluate(self, *values: float, count: OpCount | None = None) -> float:
        if len(values) != self.model.n_vars:
            raise ModelError(
                f"expected {self.model.n_vars} values, got {len(values)}"
            )
        x = np.asarray(values, dtype=np.float64) / self.model.scale
        return _eval(self._root, x, count)

    def __call__(self, *values: float) -> float:
        return self.evaluate(*values)


def naive_evaluate(model: PolynomialModel, *values: float,
                   count: OpCount | None = None) -> float:
    """Term-by-term monomial evaluation — the baseline Horner replaces."""
    if len(values) != model.n_vars:
        raise ModelError(f"expected {model.n_vars} values, got {len(values)}")
    x = np.asarray(values, dtype=np.float64) / model.scale
    total = 0.0
    for exp, coef in zip(model.exponents, model.coefficients):
        term = float(coef)
        for v, p in enumerate(exp):
            for _ in range(p):
                term *= float(x[v])
                if count is not None:
                    count.mults += 1
        total += term
        if count is not None:
            count.adds += 1
    return total


def horner_mult_count(poly: HornerPolynomial) -> int:
    """Multiplications one evaluation performs (for the ablation)."""
    count = OpCount()
    poly.evaluate(*([1.0] * poly.model.n_vars), count=count)
    return count.mults


def naive_mult_count(model: PolynomialModel) -> int:
    """Multiplications naive evaluation performs."""
    count = OpCount()
    naive_evaluate(model, *([1.0] * model.n_vars), count=count)
    return count.mults
