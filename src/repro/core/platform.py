"""A heterogeneous platform: one CPU paired with one GPU (Table 1 rows)."""

from __future__ import annotations

from dataclasses import dataclass

from ..gpusim.device import CPUDeviceSpec, GPUDeviceSpec


@dataclass(frozen=True)
class Platform:
    """One CPU-GPU combination, the unit the paper profiles offline."""

    name: str
    cpu: CPUDeviceSpec
    gpu: GPUDeviceSpec

    def __str__(self) -> str:
        return (f"{self.name}: {self.cpu.name} ({self.cpu.cores} cores @ "
                f"{self.cpu.clock_ghz} GHz) + {self.gpu.name} "
                f"({self.gpu.cores} cores @ {self.gpu.core_clock_mhz} MHz)")
