"""The performance model (paper Section 5.1, Equations 3-7).

Closed forms, fitted offline per CPU-GPU combination and subsampling
mode, with image width, height and entropy density as the only inputs:

- ``THuffPerPixel(d)``: Huffman decoding rate (us/pixel) vs. density —
  the Figure 7 relationship; ``THuff = THuffPerPixel(d) * w * h`` (Eq 4).
- ``PCPU(w, h)``: CPU parallel phase (SIMD path), Figure 6 left.
- ``PCPUseq(w, h)``: same for the plain sequential path.
- ``PGPU(w, h)``: GPU parallel phase *including* both PCIe transfers
  (Eq 7: ``PGPU = Ow + Tkernel + Or``), Figure 6 right.
- ``Tdisp(w, h)``: host-side OpenCL dispatch overhead.

All polynomials are evaluated in Horner form at run time (Section 5.1's
optimization); density uses Eq 3: ``d = file_size / (w * h)``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from ..errors import ModelError
from .horner import HornerPolynomial
from .regression import PolynomialModel

#: Executor kinds the batch-pricing API understands.  Each kind maps one
#: whole image onto one device lane: ``"simd"``/``"seq"`` run Huffman
#: plus the CPU parallel phase (Eq 5), ``"gpu"`` runs Huffman plus the
#: GPU pass with transfers and dispatch overhead (Eq 6 + Tdisp).
EXECUTOR_KINDS = ("simd", "seq", "gpu")


@dataclass
class PerformanceModel:
    """Fitted closed forms for one (platform, subsampling) pair."""

    platform_name: str
    subsampling: str
    huff_rate_fit: PolynomialModel    # f(density) -> us/pixel
    cpu_simd_fit: PolynomialModel             # f(w, h) -> us
    cpu_seq_fit: PolynomialModel              # f(w, h) -> us
    gpu_fit: PolynomialModel                  # f(w, h) -> us (Ow + kernel + Or)
    disp_fit: PolynomialModel                 # f(w, h) -> us
    chunk_mcu_rows: int = 8                 # Section 4.5 profiling output
    workgroup_blocks: int = 16              # Section 5.1 WG-size sweep output
    #: Per-extra-scan Huffman surcharge for progressive (SOF2) streams,
    #: as a fraction of the single-scan ``THuff``.  A progressive image
    #: re-walks its entropy data once per scan; each pass is cheaper
    #: than a full baseline decode (one spectral band, no IDCT), so the
    #: surcharge is fractional.  Outside the paper's fitted scope —
    #: a fixed coefficient, not a profiled polynomial.
    scan_pass_factor: float = 0.35
    _horner: dict = field(default_factory=dict, repr=False)

    def _h(self, name: str, model: PolynomialModel) -> HornerPolynomial:
        if name not in self._horner:
            self._horner[name] = HornerPolynomial(model)
        return self._horner[name]

    # -- closed-form evaluations (all return simulated microseconds) -------

    def t_huff(self, width: int, height: int, density: float) -> float:
        """Eq 4: whole-image (or sub-image) Huffman decode time."""
        if height <= 0 or width <= 0:
            return 0.0
        rate = self._h("huff", self.huff_rate_fit).evaluate(density)
        return max(0.0, rate * width * height)

    def p_cpu(self, width: int, rows: int, simd: bool = True) -> float:
        """CPU parallel phase over *rows* pixel rows."""
        if rows <= 0:
            return 0.0
        model = self.cpu_simd_fit if simd else self.cpu_seq_fit
        name = "cpu_simd" if simd else "cpu_seq"
        return max(0.0, self._h(name, model).evaluate(width, rows))

    def p_gpu(self, width: int, rows: int) -> float:
        """GPU parallel phase (transfers included) over *rows* pixel rows."""
        if rows <= 0:
            return 0.0
        return max(0.0, self._h("gpu", self.gpu_fit).evaluate(width, rows))

    def t_dispatch(self, width: int, rows: int) -> float:
        """Host-side dispatch overhead for a GPU execution of *rows*."""
        if rows <= 0:
            return 0.0
        return max(0.0, self._h("disp", self.disp_fit).evaluate(width, rows))

    # -- totals (Eq 5, Eq 6) -------------------------------------------------

    def total_cpu(self, width: int, height: int, density: float,
                  simd: bool = True) -> float:
        """Eq 5: Ttotal = THuff + PCPU."""
        return self.t_huff(width, height, density) + self.p_cpu(width, height, simd)

    def total_gpu(self, width: int, height: int, density: float) -> float:
        """Eq 6: Ttotal = THuff + PGPU."""
        return self.t_huff(width, height, density) + self.p_gpu(width, height)

    # -- batch pricing (cross-image scheduler input) -------------------------

    def price(self, kind: str, width: int, height: int,
              density: float, scans: int = 1) -> float:
        """Predicted whole-image decode time (us) on one executor kind.

        This is the cross-image scheduler's cost function: the same
        closed forms the paper uses to split a *single* image's pixel
        stage (Eq 5/6), evaluated for a whole image routed to one lane.

        - ``"simd"``: Eq 5 with the SIMD parallel-phase fit.
        - ``"seq"``: Eq 5 with the plain sequential fit.
        - ``"gpu"``: Eq 6 plus the host dispatch overhead ``Tdisp`` —
          a lone image on the GPU lane cannot hide the dispatch behind
          another image's Huffman decode, so it pays it in full.

        *scans* > 1 (progressive streams) surcharges the Huffman term:
        each extra scan re-walks entropy data for one spectral band,
        priced at ``scan_pass_factor * THuff`` on top of the base cost.
        """
        if kind == "simd":
            base = self.total_cpu(width, height, density, simd=True)
        elif kind == "seq":
            base = self.total_cpu(width, height, density, simd=False)
        elif kind == "gpu":
            base = (self.total_gpu(width, height, density)
                    + self.t_dispatch(width, height))
        else:
            raise ModelError(
                f"unknown executor kind {kind!r} "
                f"(choose from {EXECUTOR_KINDS})")
        if scans > 1:
            base += (scans - 1) * self.scan_pass_factor \
                * self.t_huff(width, height, density)
        return base

    def price_batch(self, kind: str,
                    images: "list[tuple[int, int, float]]") -> list[float]:
        """Vector form of :meth:`price` over ``(width, height, density)``
        triples — one predicted time per image, same order."""
        return [self.price(kind, w, h, d) for (w, h, d) in images]

    # -- persistence ---------------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-serializable form of the fitted model (see :meth:`save`)."""
        return {
            "platform_name": self.platform_name,
            "subsampling": self.subsampling,
            "huff_rate_fit": self.huff_rate_fit.to_dict(),
            "cpu_simd_fit": self.cpu_simd_fit.to_dict(),
            "cpu_seq_fit": self.cpu_seq_fit.to_dict(),
            "gpu_fit": self.gpu_fit.to_dict(),
            "disp_fit": self.disp_fit.to_dict(),
            "chunk_mcu_rows": self.chunk_mcu_rows,
            "workgroup_blocks": self.workgroup_blocks,
            "scan_pass_factor": self.scan_pass_factor,
        }

    def save(self, path: str | Path) -> None:
        """Write the fitted model to *path* as indented JSON."""
        Path(path).write_text(json.dumps(self.to_dict(), indent=2))

    @classmethod
    def from_dict(cls, d: dict) -> "PerformanceModel":
        """Rebuild a model from :meth:`to_dict` output; raises
        :class:`~repro.errors.ModelError` on missing fields."""
        try:
            return cls(
                platform_name=d["platform_name"],
                subsampling=d["subsampling"],
                huff_rate_fit=PolynomialModel.from_dict(d["huff_rate_fit"]),
                cpu_simd_fit=PolynomialModel.from_dict(d["cpu_simd_fit"]),
                cpu_seq_fit=PolynomialModel.from_dict(d["cpu_seq_fit"]),
                gpu_fit=PolynomialModel.from_dict(d["gpu_fit"]),
                disp_fit=PolynomialModel.from_dict(d["disp_fit"]),
                chunk_mcu_rows=int(d.get("chunk_mcu_rows", 8)),
                workgroup_blocks=int(d.get("workgroup_blocks", 16)),
                scan_pass_factor=float(d.get("scan_pass_factor", 0.35)),
            )
        except KeyError as exc:
            raise ModelError(f"missing field in model file: {exc}") from exc

    @classmethod
    def load(cls, path: str | Path) -> "PerformanceModel":
        """Read a model previously written by :meth:`save`."""
        return cls.from_dict(json.loads(Path(path).read_text()))
