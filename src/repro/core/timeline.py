"""Simulated-time execution timelines (the reproduction's profiler view).

Each decode produces a :class:`Timeline`: labeled spans on named
resources ("cpu", "gpu").  This is what Figures 5 and 8 of the paper
draw; :meth:`Timeline.render` emits the same picture as ASCII Gantt for
the examples, and the utilization/balance metrics feed Figure 12.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..gpusim.queue import Event


@dataclass(frozen=True)
class Span:
    """One busy interval on one resource."""

    resource: str      # "cpu" | "gpu"
    label: str         # e.g. "huffman[0:12]", "idct rows[0:64]"
    kind: str          # "huffman" | "dispatch" | "cpu-parallel" | "write" | ...
    start: float       # us, simulated
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class Timeline:
    """Collection of spans plus the derived metrics the paper reports."""

    spans: list[Span] = field(default_factory=list)

    def add(self, resource: str, label: str, kind: str,
            start: float, end: float) -> None:
        if end < start:
            raise ValueError(f"span {label!r} ends before it starts")
        self.spans.append(Span(resource, label, kind, start, end))

    def add_events(self, events: list[Event], resource: str = "gpu") -> None:
        """Import command-queue events as GPU spans."""
        for ev in events:
            self.spans.append(Span(resource, ev.label, ev.kind, ev.start, ev.end))

    # -- metrics ----------------------------------------------------------

    @property
    def makespan(self) -> float:
        """End-to-end simulated time (us)."""
        return max((s.end for s in self.spans), default=0.0)

    def busy(self, resource: str, kinds: tuple[str, ...] | None = None) -> float:
        """Total busy time of *resource*, optionally filtered by kind."""
        return sum(
            s.duration for s in self.spans
            if s.resource == resource and (kinds is None or s.kind in kinds)
        )

    def stage_breakdown(self) -> dict[str, float]:
        """Total time per span kind — the Figure 9 stacked bars."""
        out: dict[str, float] = {}
        for s in self.spans:
            out[s.kind] = out.get(s.kind, 0.0) + s.duration
        return out

    def parallel_exec_times(self) -> tuple[float, float]:
        """(CPU, GPU) busy time during the *parallel* execution — the
        Figure 12 balance measurement.  Excludes the CPU's sequential
        Huffman spans, as the paper does."""
        cpu = self.busy("cpu", kinds=("cpu-parallel",))
        gpu = self.busy("gpu", kinds=("write", "kernel", "read"))
        return cpu, gpu

    # -- rendering ----------------------------------------------------------

    def render(self, width: int = 78) -> str:
        """ASCII Gantt chart, one row per resource, time left-to-right."""
        if not self.spans:
            return "(empty timeline)"
        t_end = self.makespan
        scale = (width - 1) / t_end if t_end > 0 else 1.0
        glyphs = {
            "huffman": "H", "dispatch": "d", "cpu-parallel": "C",
            "write": "w", "kernel": "K", "read": "r",
        }
        lines = []
        for resource in sorted({s.resource for s in self.spans}):
            row = [" "] * width
            for s in self.spans:
                if s.resource != resource:
                    continue
                a = int(s.start * scale)
                b = max(a + 1, int(s.end * scale))
                g = glyphs.get(s.kind, "#")
                for i in range(a, min(b, width)):
                    row[i] = g
            lines.append(f"{resource:>4} |{''.join(row)}|")
        legend = "  ".join(f"{g}={k}" for k, g in glyphs.items())
        lines.append(f"     0 {'-' * (width - 14)} {t_end / 1e3:.2f} ms")
        lines.append(f"     [{legend}]")
        return "\n".join(lines)
