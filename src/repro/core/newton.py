"""Newton's method for the partition balance equation (Section 5.2, Eq 11).

The partitioners need the root of ``f(x) = 0`` where x is the number of
pixel rows assigned to the CPU.  Newton iteration with a numerical
derivative converges in a couple of steps on these near-linear closed
forms; when an iterate escapes [lo, hi] or the derivative degenerates,
we fall back to bisection (robustness the paper doesn't need to discuss
but an implementation does).  Results are clamped and rounded to whole
MCU rows, per libjpeg-turbo's decoding convention.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..errors import PartitionError


@dataclass(frozen=True)
class RootResult:
    """Outcome of a root solve."""

    x: float
    iterations: int
    converged: bool
    residual: float


def newton_solve(
    f: Callable[[float], float],
    lo: float,
    hi: float,
    x0: float | None = None,
    tol: float = 1e-3,
    max_iter: int = 40,
    derivative_step: float | None = None,
) -> RootResult:
    """Find x in [lo, hi] with f(x) ~ 0; Newton with bisection fallback.

    ``f`` need not bracket a root: monotone closed forms whose root lies
    outside the interval clamp to the nearer endpoint (all work goes to
    one device — exactly what should happen on wildly mismatched
    hardware).
    """
    if hi <= lo:
        raise PartitionError(f"empty search interval [{lo}, {hi}]")
    step = derivative_step if derivative_step is not None else max((hi - lo) * 1e-4, 1e-6)

    f_lo, f_hi = f(lo), f(hi)
    if f_lo == 0.0:
        return RootResult(lo, 0, True, 0.0)
    if f_hi == 0.0:
        return RootResult(hi, 0, True, 0.0)
    # no sign change: the balanced point lies outside; clamp to the
    # endpoint with the smaller |f| (paper's "larger partition to the CPU"
    # behaviour on GT 430 comes from here)
    if f_lo * f_hi > 0:
        x = lo if abs(f_lo) < abs(f_hi) else hi
        return RootResult(x, 0, False, f(x))

    x = x0 if x0 is not None else 0.5 * (lo + hi)
    x = min(max(x, lo), hi)
    blo, bhi = lo, hi  # maintained bisection bracket

    for it in range(1, max_iter + 1):
        fx = f(x)
        if abs(fx) <= tol:
            return RootResult(x, it, True, fx)
        # update the bracket
        if fx * f_lo < 0:
            bhi = x
        else:
            blo, f_lo = x, fx
        d = (f(x + step) - f(x - step)) / (2.0 * step)
        if d == 0.0 or not (abs(d) > 0):  # degenerate or NaN derivative
            x_new = 0.5 * (blo + bhi)
        else:
            x_new = x - fx / d            # Eq 11
            if not (blo <= x_new <= bhi):
                x_new = 0.5 * (blo + bhi)
        if abs(x_new - x) < tol * 1e-3:
            return RootResult(x_new, it, True, f(x_new))
        x = x_new
    return RootResult(x, max_iter, abs(f(x)) <= tol * 10, f(x))


def round_rows_to_mcu(rows: float, mcu_height: int, total_rows: int) -> int:
    """Clamp to [0, total] and round to the nearest MCU-row multiple.

    "Variable x is rounded to the nearest value evenly divisible by the
    number of rows in an MCU" (Section 5.2).
    """
    if mcu_height <= 0:
        raise PartitionError("MCU height must be positive")
    rows = min(max(rows, 0.0), float(total_rows))
    snapped = int(round(rows / mcu_height)) * mcu_height
    return min(max(snapped, 0), total_rows)
