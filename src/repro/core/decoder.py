"""Public decoder facade: :class:`HeterogeneousDecoder`.

Ties the whole system together the way the paper's runtime does: given a
platform (CPU + GPU), it lazily profiles the platform per subsampling
mode (offline step, cached), then decodes images under any of the six
execution modes — or picks the predicted-fastest mode automatically from
the fitted closed forms.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from ..errors import JpegUnsupportedError, ReproError
from ..jpeg.markers import parse_jpeg
from ..kernels.program import GpuProgramOptions
from .executors import EXECUTORS, DecodeResult, ExecutionConfig, PreparedImage
from .modes import DecodeMode
from .perfmodel import PerformanceModel
from .platform import Platform
from .profiling import profile_platform

#: Process-wide model cache: profiling is "required only once for a given
#: CPU-GPU combination" (Section 5) — keyed by (platform, subsampling).
_MODEL_CACHE: dict[tuple[str, str], PerformanceModel] = {}


def clear_model_cache() -> None:
    """Drop all cached performance models (tests use this)."""
    _MODEL_CACHE.clear()


@dataclass
class HeterogeneousDecoder:
    """JPEG decoder for one CPU-GPU platform.

    Parameters
    ----------
    platform : the CPU+GPU pair to decode on.
    gpu_options : kernel-level knobs (merging, vectorization, work-group
        size); profiling may override the work-group size with its sweep
        winner.
    models : pre-fitted performance models keyed by subsampling; missing
        entries are profiled on first use and cached process-wide.
    """

    platform: Platform
    gpu_options: GpuProgramOptions = field(default_factory=GpuProgramOptions)
    models: dict[str, PerformanceModel] = field(default_factory=dict)
    fancy_upsampling: bool = True
    repartition: bool = True
    #: Huffman decode path used by :meth:`prepare` — "fast" (fused
    #: tables, default) or "reference" (per-symbol oracle); bit-exact.
    entropy_engine: str = "fast"

    @classmethod
    def for_platform(cls, platform: Platform, **kwargs) -> "HeterogeneousDecoder":
        """Construct with default options for *platform*."""
        return cls(platform=platform, **kwargs)

    # -- model management --------------------------------------------------

    def model_for(self, subsampling: str) -> PerformanceModel:
        """Fetch (or lazily fit) the performance model for a mode."""
        if subsampling in self.models:
            return self.models[subsampling]
        key = (self.platform.name, subsampling)
        if key not in _MODEL_CACHE:
            _MODEL_CACHE[key] = profile_platform(
                self.platform, subsampling, gpu_options=self.gpu_options)
        self.models[subsampling] = _MODEL_CACHE[key]
        return self.models[subsampling]

    # -- decoding ------------------------------------------------------------

    def prepare(self, data: bytes) -> PreparedImage:
        """Parse and entropy-decode once; reusable across modes."""
        return PreparedImage.from_bytes(data, self.entropy_engine)

    def _config(self, prepared: PreparedImage) -> ExecutionConfig:
        mode = prepared.geometry.mode
        model = None
        if mode in ("4:4:4", "4:2:2"):
            model = self.model_for(mode)
            options = replace(self.gpu_options,
                              workgroup_blocks=model.workgroup_blocks)
        else:
            options = self.gpu_options
        return ExecutionConfig(
            platform=self.platform, model=model, gpu_options=options,
            repartition=self.repartition,
            fancy_upsampling=self.fancy_upsampling,
        )

    def choose_mode(self, prepared: PreparedImage) -> DecodeMode:
        """Pick the predicted-fastest mode from the closed forms."""
        geo = prepared.geometry
        if geo.mode not in ("4:4:4", "4:2:2"):
            return DecodeMode.SIMD
        model = self.model_for(geo.mode)
        w, h, d = geo.width, geo.height, prepared.density
        t_huff = model.t_huff(w, h, d)
        predictions = {
            DecodeMode.SIMD: t_huff + model.p_cpu(w, h),
            DecodeMode.GPU: t_huff + model.p_gpu(w, h) + model.t_dispatch(w, h),
            # pipelined GPU hides kernels behind Huffman except the last chunk
            DecodeMode.PIPELINE: t_huff + model.p_gpu(
                w, min(h, model.chunk_mcu_rows * geo.mcu_height)),
        }
        # PPS is bounded below by the Huffman time plus the balanced tail;
        # predict via the PPS balance equation's CPU side.
        from .partition import partition_pps

        decision = partition_pps(model, w, h, d,
                                 model.chunk_mcu_rows * geo.mcu_height,
                                 geo.mcu_height)
        predictions[DecodeMode.PPS] = (
            t_huff + model.p_cpu(w, decision.cpu_rows)
            + model.t_dispatch(w, decision.gpu_rows))
        return min(predictions, key=predictions.get)

    def decode(self, data: bytes | PreparedImage,
               mode: DecodeMode | str = "auto") -> DecodeResult:
        """Decode under *mode* ("auto" picks the predicted-fastest).

        Returns a :class:`DecodeResult` with real pixels, the simulated
        timeline, and the partition decision for SPS/PPS.
        """
        prepared = data if isinstance(data, PreparedImage) else self.prepare(data)
        if mode == "auto":
            mode = self.choose_mode(prepared)
        mode = DecodeMode(mode)
        if mode.uses_gpu and prepared.geometry.mode not in ("4:4:4", "4:2:2"):
            raise JpegUnsupportedError(
                f"{mode.value} mode supports 4:4:4/4:2:2 (the paper's "
                f"scope); got {prepared.geometry.mode}"
            )
        config = self._config(prepared)
        try:
            return EXECUTORS[mode](config, prepared)
        except KeyError:
            raise ReproError(f"unknown decode mode {mode!r}") from None

    def decode_all_modes(self, data: bytes | PreparedImage,
                         modes: tuple[DecodeMode, ...] | None = None
                         ) -> dict[DecodeMode, DecodeResult]:
        """Decode once per mode, sharing the entropy-decode work."""
        prepared = data if isinstance(data, PreparedImage) else self.prepare(data)
        modes = modes or tuple(DecodeMode)
        return {m: self.decode(prepared, m) for m in modes}
