"""Dynamic partitioning schemes (paper Section 5.2).

Both schemes split the image horizontally: the *top* ``h - x`` pixel rows
go to the GPU, the *bottom* ``x`` rows to the CPU, with x chosen so both
devices finish together.  SPS balances only the parallel phase (Eq 10);
PPS additionally accounts for pipelined Huffman chunks (Eq 15) and
corrects itself mid-decode via re-partitioning (Eq 16/17).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import PartitionError
from .newton import RootResult, newton_solve, round_rows_to_mcu
from .perfmodel import PerformanceModel


@dataclass(frozen=True)
class PartitionDecision:
    """The outcome of one balance solve."""

    cpu_rows: int          # pixel rows assigned to the CPU (bottom)
    gpu_rows: int          # pixel rows assigned to the GPU (top)
    x_unrounded: float     # Newton's continuous solution
    iterations: int
    converged: bool
    predicted_cpu_us: float = 0.0
    predicted_gpu_us: float = 0.0

    @property
    def total_rows(self) -> int:
        """Pixel rows covered by the split (CPU side + GPU side)."""
        return self.cpu_rows + self.gpu_rows


def partition_sps(model: PerformanceModel, width: int, height: int,
                  mcu_height: int) -> PartitionDecision:
    """Simple partitioning scheme (Section 5.2.1).

    Balance Eq 10: ``f(x) = Tdisp(w, h-x) + PCPU(w, x) - PGPU(w, h-x)``,
    solved with Newton's method (Eq 11) and rounded to MCU rows.
    """
    if height < mcu_height:
        raise PartitionError("image shorter than one MCU row")

    def f(x: float) -> float:
        return (model.t_dispatch(width, int(height - x))
                + model.p_cpu(width, int(x))
                - model.p_gpu(width, int(height - x)))

    res = newton_solve(f, 0.0, float(height))
    x = round_rows_to_mcu(res.x, mcu_height, height)
    return PartitionDecision(
        cpu_rows=x, gpu_rows=height - x, x_unrounded=res.x,
        iterations=res.iterations, converged=res.converged,
        predicted_cpu_us=model.p_cpu(width, x)
        + model.t_dispatch(width, height - x),
        predicted_gpu_us=model.p_gpu(width, height - x),
    )


def partition_pps(model: PerformanceModel, width: int, height: int,
                  density: float, chunk_pixel_rows: int,
                  mcu_height: int) -> PartitionDecision:
    """Pipelined partitioning scheme, initial solve (Section 5.2.2).

    Balance Eq 15: the GPU-side total starts after the first chunk's
    Huffman decode, so the CPU side carries the Huffman time of all but
    the first chunk: ``f(x) = THuff(w, h-c, d) + PCPU(w, x)
    + Tdisp(w, h-x) - PGPU(w, h-x)``.

    One refinement over the printed equation: when the chunk size is not
    smaller than the GPU partition itself (small images), the GPU's
    first chunk is the whole partition, so the effective c is
    ``min(c, h - x)`` — otherwise the equation would credit the GPU with
    overlap that cannot happen and starve the CPU.
    """
    if height < mcu_height:
        raise PartitionError("image shorter than one MCU row")
    c = min(chunk_pixel_rows, height)

    def f(x: float) -> float:
        c_eff = min(c, height - x)
        return (model.t_huff(width, int(height - c_eff), density)
                + model.p_cpu(width, int(x))
                + model.t_dispatch(width, int(height - x))
                - model.p_gpu(width, int(height - x)))

    res = newton_solve(f, 0.0, float(height))
    x = round_rows_to_mcu(res.x, mcu_height, height)
    return PartitionDecision(
        cpu_rows=x, gpu_rows=height - x, x_unrounded=res.x,
        iterations=res.iterations, converged=res.converged,
        predicted_cpu_us=model.t_huff(width, height, density)
        + model.p_cpu(width, x) + model.t_dispatch(width, height - x),
        predicted_gpu_us=model.t_huff(width, c, density)
        + model.p_gpu(width, height - x),
    )


def corrected_density(estimated_total_huff_us: float,
                      consumed_huff_us: float,
                      remaining_rows: int, total_rows: int,
                      density: float) -> float:
    """Eq 17: scale the density by observed/predicted Huffman progress.

    ``d' = (remaining_time_ratio / remaining_height_ratio) * d`` — when
    the remaining share of the predicted time exceeds the remaining share
    of the image, detail is back-loaded and the GPU deserves more rows.
    """
    if estimated_total_huff_us <= 0 or total_rows <= 0:
        raise PartitionError("degenerate totals in density correction")
    remaining_time = max(estimated_total_huff_us - consumed_huff_us, 0.0)
    time_ratio = remaining_time / estimated_total_huff_us
    height_ratio = remaining_rows / total_rows
    if height_ratio <= 0:
        return density
    return max(0.0, time_ratio / height_ratio * density)


def repartition_pps(model: PerformanceModel, width: int,
                    remaining_rows: int, corrected_d: float,
                    gpu_backlog_us: float, mcu_height: int) -> PartitionDecision:
    """Re-partitioning before the last GPU chunk (Eq 16).

    ``remaining_rows`` (h') covers the last GPU chunk plus the CPU
    partition; the split is re-solved with the corrected density and the
    GPU's unfinished backlog (TprevGPU) charged to the GPU side.

    Accounting note: from the re-partition instant, the CPU finishes at
    ``THuff(h') + PCPU(x') + Tdisp`` and the GPU at ``THuff(h'-x')
    + PGPU(h'-x') + backlog`` (its last chunk cannot start before its own
    rows are entropy-decoded).  The Huffman time of the GPU chunk cancels
    across the difference, leaving ``THuff(x')`` on the CPU side — the
    printed Eq 16's ``THuff(h')`` is the same balance when several chunks
    remain but over-feeds the GPU in the single-chunk case.
    """
    if remaining_rows <= 0:
        raise PartitionError("nothing left to re-partition")

    def f(x: float) -> float:
        return (model.t_dispatch(width, int(remaining_rows - x))
                + model.t_huff(width, int(x), corrected_d)
                + model.p_cpu(width, int(x))
                - model.p_gpu(width, int(remaining_rows - x))
                - gpu_backlog_us)

    res = newton_solve(f, 0.0, float(remaining_rows))
    x = round_rows_to_mcu(res.x, mcu_height, remaining_rows)
    return PartitionDecision(
        cpu_rows=x, gpu_rows=remaining_rows - x, x_unrounded=res.x,
        iterations=res.iterations, converged=res.converged,
        predicted_cpu_us=model.t_huff(width, remaining_rows, corrected_d)
        + model.p_cpu(width, x),
        predicted_gpu_us=gpu_backlog_us + model.p_gpu(width, remaining_rows - x),
    )
