"""Exception hierarchy for the :mod:`repro` package.

All library-raised errors derive from :class:`ReproError` so callers can
catch one base class.  Substrate-specific errors subclass further so tests
can assert the precise failure mode (e.g. a truncated bitstream vs. an
ill-formed marker segment).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class JpegError(ReproError):
    """Base class for JPEG codec errors."""


class JpegFormatError(JpegError):
    """The byte stream is not a well-formed baseline JFIF/JPEG file."""


class JpegUnsupportedError(JpegError):
    """Well-formed JPEG, but uses a feature outside baseline scope
    (progressive scans, arithmetic coding, 12-bit precision, ...)."""


class BitstreamError(JpegError):
    """Bit-level I/O failure (truncated stream, over-read, bad stuffing)."""


class HuffmanError(JpegError):
    """Invalid Huffman table or undecodable code word."""


class EntropyError(JpegError):
    """Entropy-coded scan data is inconsistent (coefficient overrun,
    bad restart marker sequence, ...)."""


class GpuSimError(ReproError):
    """Base class for the simulated-GPU substrate."""


class DeviceError(GpuSimError):
    """Invalid device specification or capability violation."""


class QueueError(GpuSimError):
    """Command-queue misuse (reading an incomplete event, double wait...)."""


class KernelError(GpuSimError):
    """Kernel launch geometry or argument error."""


class ModelError(ReproError):
    """Performance-model fitting or evaluation error."""


class PartitionError(ReproError):
    """Partitioning could not produce a valid work split."""


class ProfilingError(ReproError):
    """Offline profiling failed (empty corpus, degenerate fit inputs)."""


class ServiceError(ReproError):
    """Base class for the batched decode service layer."""


class QueueFullError(ServiceError):
    """Bounded submission queue rejected a request (backpressure)."""


class ServiceClosedError(ServiceError):
    """Operation attempted on a closed queue, pool, or service."""


class WorkerCrashError(ServiceError):
    """A pool worker died (or was killed) while decoding; the request's
    retry budget is exhausted.  Raised inside thread/serial workers by
    injected ``kill`` faults to simulate the process-pool crash path."""


class DeadlineExceededError(ServiceError):
    """A request's deadline passed before its decode started; the
    request was shed instead of decoded (HTTP 504)."""


class RemoteHostError(ServiceError):
    """A remote worker host could not serve a request: connection
    refused, connection lost mid-request, or a request timeout.  This
    is the distributed analog of :class:`WorkerCrashError` — an
    infrastructure failure, never a decode verdict — so the front tier
    retries it (on another host when one exists) and charges the lane's
    circuit breaker."""


class RemoteProtocolError(ServiceError):
    """A TCP frame from a remote peer was malformed: truncated
    mid-frame, an oversized header, undecodable JSON, or an unknown
    operation.  Distinct from :class:`RemoteHostError` because it
    signals a software defect or version skew, not host health."""
