"""Integer "islow" IDCT (libjpeg's jidctint.c, vectorized over batches).

libjpeg selects IDCT implementations through function pointers (paper
Section 3 discusses exactly this plugin seam); the slow-but-accurate
integer method is the default.  We reproduce its fixed-point arithmetic
(13-bit constants, PASS1_BITS=2 intermediate scaling) so the library
offers the same sequential/SIMD choice surface as the original.

The result differs from the float AAN path by at most ±1 sample level —
the same relationship the two libjpeg methods have.
"""

from __future__ import annotations

import numpy as np

from .constants import LEVEL_SHIFT, MAX_SAMPLE

CONST_BITS = 13
PASS1_BITS = 2

_F_0_298631336 = 2446
_F_0_390180644 = 3196
_F_0_541196100 = 4433
_F_0_765366865 = 6270
_F_0_899976223 = 7373
_F_1_175875602 = 9633
_F_1_501321110 = 12299
_F_1_847759065 = 15137
_F_1_961570560 = 16069
_F_2_053119869 = 16819
_F_2_562915447 = 20995
_F_3_072711026 = 25172


def _descale(x: np.ndarray, n: int) -> np.ndarray:
    """Right shift with round-half-up, the libjpeg DESCALE macro."""
    return (x + (1 << (n - 1))) >> n


def _pass(data: np.ndarray, shift_out: int, add: int) -> np.ndarray:
    """One 1-D islow pass along axis -2 (column orientation).

    ``shift_out`` is the final descale amount; ``add`` folds the level
    shift into the rounding constant on the second pass (0 on the first).
    """
    in0, in1, in2, in3, in4, in5, in6, in7 = (
        data[..., i, :].astype(np.int64) for i in range(8))

    # even part
    z2, z3 = in2, in6
    z1 = (z2 + z3) * _F_0_541196100
    tmp2 = z1 + z3 * (-_F_1_847759065)
    tmp3 = z1 + z2 * _F_0_765366865
    z2, z3 = in0, in4
    tmp0 = (z2 + z3) << CONST_BITS
    tmp1 = (z2 - z3) << CONST_BITS
    t10 = tmp0 + tmp3
    t13 = tmp0 - tmp3
    t11 = tmp1 + tmp2
    t12 = tmp1 - tmp2

    # odd part
    t0, t1, t2, t3 = in7, in5, in3, in1
    z1 = t0 + t3
    z2 = t1 + t2
    z3 = t0 + t2
    z4 = t1 + t3
    z5 = (z3 + z4) * _F_1_175875602
    t0 = t0 * _F_0_298631336
    t1 = t1 * _F_2_053119869
    t2 = t2 * _F_3_072711026
    t3 = t3 * _F_1_501321110
    z1 = z1 * (-_F_0_899976223)
    z2 = z2 * (-_F_2_562915447)
    z3 = z3 * (-_F_1_961570560) + z5
    z4 = z4 * (-_F_0_390180644) + z5
    t0 += z1 + z3
    t1 += z2 + z4
    t2 += z2 + z3
    t3 += z1 + z4

    out = np.empty_like(data, dtype=np.int64)
    rows = (
        (t10 + t3), (t11 + t2), (t12 + t1), (t13 + t0),
        (t13 - t0), (t12 - t1), (t11 - t2), (t10 - t3),
    )
    for i, (plus_idx, val) in enumerate(zip(range(8), rows)):
        out[..., plus_idx, :] = _descale(val + (add << shift_out), shift_out)
    return out


def idct_2d_islow(blocks: np.ndarray) -> np.ndarray:
    """Integer islow IDCT over (n, 8, 8) dequantized coefficients.

    Returns int64 spatial values *without* level shift (matching the
    float paths' convention); feed to :func:`samples_from_idct_islow`.
    """
    blocks = np.asarray(blocks).astype(np.int64)
    # pass 1: columns, results scaled up by PASS1_BITS
    cols = _pass(blocks, CONST_BITS - PASS1_BITS, 0)
    # pass 2: rows, remove the scaling plus the /8 of the transform
    rows = _pass(cols.swapaxes(-1, -2), CONST_BITS + PASS1_BITS + 3, 0)
    return rows.swapaxes(-1, -2)


def samples_from_idct_islow(spatial: np.ndarray) -> np.ndarray:
    """Level-shift and clamp integer IDCT output to uint8 samples."""
    out = spatial + LEVEL_SHIFT
    return np.clip(out, 0, MAX_SAMPLE).astype(np.uint8)
