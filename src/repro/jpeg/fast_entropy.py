"""Fused fast-path entropy engine — the default Huffman decode path.

The paper's whole pipeline is gated by sequential Huffman decoding
(Section 1), and in this reproduction that stage was the slowest code in
the tree: :class:`~repro.jpeg.bitstream.BitReader` destuffed one byte at
a time, every symbol paid a method call plus three bitstream calls, and
the block loop dispatched per coefficient.  This module applies the
standard libjpeg/GPU-decoder remedy in pure Python:

1. **Destuffing prescan** (:func:`destuff_scan`): one vectorized pass
   converts the byte-stuffed scan into a contiguous marker-free payload
   plus a restart-marker offset index, so the inner loop never tests for
   ``0xFF``.
2. **Word-buffered bit reader**: a Python-int accumulator refilled up
   to eight bytes at a time (``jdhuff`` style) replaces per-byte
   ``_fill`` traffic; the hot loop touches the buffer once per symbol.
3. **Fused decode tables** (:class:`FusedDecodeTables`): the 8-bit
   first-level lookup is extended so that one probe yields
   ``(total_bits_consumed, run, EXTENDed value)`` — symbol decode,
   magnitude read and EXTEND collapsed into a single table hit.  Codes
   longer than 8 bits fall back to the MINCODE/MAXCODE walk over the
   already-buffered bits.
4. **Flattened hot loop**: :meth:`FastEntropyDecoder.decode_mcu_rows`
   binds every table to a local and fills the coefficient planes without
   per-block method dispatch.

:class:`FastEntropyDecoder` is bit-exact with
:class:`~repro.jpeg.entropy.EntropyDecoder` (the retained ``reference``
oracle): identical coefficient planes on valid streams, and identical
exception types *and messages* on adversarial ones (truncated payloads,
bad restart sequences, undecodable codes) — property-tested in
``tests/test_entropy_engine.py``.  Select an engine by name through
:func:`create_entropy_decoder` (the ``entropy_engine=`` knob on
:class:`~repro.jpeg.decoder.DecodeOptions`,
:class:`~repro.core.decoder.HeterogeneousDecoder` and the CLI).
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field

import numpy as np

from ..errors import BitstreamError, EntropyError, HuffmanError
from .blocks import ImageGeometry
from .constants import ZIGZAG_ORDER
from .entropy import CoefficientBuffers, ComponentTables, EntropyDecoder
from .huffman import (
    LOOKUP_BITS,
    MAX_CODE_LENGTH,
    HuffmanEncoder,
    HuffmanSpec,
    extend,
)

#: Sentinel for a scan that ends in a lone 0xFF (truncated stuffing pair).
TRUNCATED_FF = -1

#: Zig-zag order as a plain tuple — tuple indexing is the fastest
#: per-coefficient lookup available to the hot loop.
_ZIGZAG = tuple(int(i) for i in ZIGZAG_ORDER)

#: Width of the fused single-probe window.  Wider than the 8-bit
#: first-level ``lookup`` so that code + magnitude pairs up to 10 bits
#: resolve in one table hit.
FUSED_BITS = 10

#: The hot loop tops up the accumulator whenever fewer than this many
#: bits are buffered; 32 covers the worst fast-path consumption of one
#: symbol (16-bit code + 15-bit AC magnitude = 31 bits).
_REFILL_THRESHOLD = 32


# ---------------------------------------------------------------------------
# Destuffing prescan.
# ---------------------------------------------------------------------------

@dataclass
class ScanPrescan:
    """One-pass digest of a byte-stuffed entropy-coded segment.

    ``payload`` holds the scan bytes with stuffing zeros and marker pairs
    removed — a contiguous buffer the bit reader can consume without any
    0xFF tests.  The marker index records every RSTn boundary (payload
    offset, marker byte, original-stream offset), and the piece tables
    map payload offsets back to original-stream offsets (for the
    row-byte-offset bookkeeping that drives Eq. 16/17).
    """

    payload: bytes
    marker_payload_offsets: list[int] = field(default_factory=list)
    marker_values: list[int] = field(default_factory=list)
    marker_orig_offsets: list[int] = field(default_factory=list)
    #: First non-RST event: a marker byte, TRUNCATED_FF, or None (clean
    #: end of data).  Nothing past it is ever decodable.
    terminator: int | None = None
    piece_payload_starts: list[int] = field(default_factory=lambda: [0])
    piece_orig_starts: list[int] = field(default_factory=lambda: [0])

    def orig_offset(self, payload_pos: int) -> int:
        """Original-stream byte offset equivalent to *payload_pos*."""
        j = bisect_right(self.piece_payload_starts, payload_pos) - 1
        return self.piece_orig_starts[j] + (
            payload_pos - self.piece_payload_starts[j])

    @property
    def restart_count(self) -> int:
        """Number of RSTn markers indexed by the prescan."""
        return len(self.marker_payload_offsets)


def destuff_scan(data: bytes | bytearray | memoryview | np.ndarray) -> ScanPrescan:
    """Destuff a scan in one prescan pass and index its restart markers.

    The 0xFF positions are located vectorized (numpy); only those few
    positions are then classified in Python: ``FF 00`` keeps the 0xFF
    data byte and drops the zero, ``FF D0..D7`` records a restart
    boundary, and any other marker (or a trailing lone 0xFF) terminates
    the payload — per the standard, no entropy data can follow it.
    """
    if isinstance(data, np.ndarray):
        if data.dtype != np.uint8:
            raise BitstreamError("ndarray bitstream must be uint8")
        data = data.tobytes()
    else:
        data = bytes(data)
    n = len(data)
    arr = np.frombuffer(data, dtype=np.uint8)
    scan = ScanPrescan(payload=b"")
    chunks: list[bytes] = []
    pay_len = 0
    prev = 0
    terminated = False
    for pos in np.flatnonzero(arr == 0xFF).tolist():
        if pos < prev:
            continue  # consumed by a previous stuffing/marker skip
        nxt = data[pos + 1] if pos + 1 < n else None
        if nxt == 0x00:
            chunks.append(data[prev:pos + 1])  # 0xFF is data; drop the 0x00
            pay_len += pos + 1 - prev
            prev = pos + 2
        elif nxt is None:
            chunks.append(data[prev:pos])
            pay_len += pos - prev
            scan.terminator = TRUNCATED_FF
            terminated = True
            break
        elif 0xD0 <= nxt <= 0xD7:
            chunks.append(data[prev:pos])
            pay_len += pos - prev
            scan.marker_payload_offsets.append(pay_len)
            scan.marker_values.append(nxt)
            scan.marker_orig_offsets.append(pos)
            prev = pos + 2
        else:
            chunks.append(data[prev:pos])
            pay_len += pos - prev
            scan.terminator = nxt
            terminated = True
            break
        scan.piece_payload_starts.append(pay_len)
        scan.piece_orig_starts.append(prev)
    if not terminated:
        chunks.append(data[prev:n])
    scan.payload = b"".join(chunks)
    return scan


# ---------------------------------------------------------------------------
# Fused decode tables.
# ---------------------------------------------------------------------------

class FusedDecodeTables:
    """Per-(spec, role) decode tables for the fast path.

    ``fused[p]`` for a ``FUSED_BITS``-wide prefix *p* packs the complete
    outcome of decoding one symbol whose code *and* magnitude bits both
    fit in the prefix: ``(total_bits << 16) | (run << 12) | (value + 2048)``.
    A zero entry means "not fully resolvable in one probe" and falls back
    to ``lookup`` (code resolved, magnitude read separately) and then to
    the MINCODE/MAXCODE walk for codes longer than 8 bits.

    For the DC role ``run`` is 0 and ``value`` is the EXTENDed
    difference; for the AC role ``value == 0`` can only mean EOB
    (``run == 0``) or ZRL (``run == 15``) since EXTEND never produces 0
    for a non-zero size.  Symbols the reference decoder would reject
    (DC category > 11, AC size-0 symbols other than EOB/ZRL) are never
    fused, so the fallback path raises the exact reference errors.
    """

    __slots__ = ("fused", "lookup", "mincode", "maxcode", "valptr", "values")

    def __init__(self, spec: HuffmanSpec, role: str) -> None:
        """Build all decode tables for *spec* acting as *role* ("dc"/"ac")."""
        enc = HuffmanEncoder(spec)
        self.fused = [0] * (1 << FUSED_BITS)
        self.lookup = [0] * (1 << LOOKUP_BITS)
        self.mincode = [0] * (MAX_CODE_LENGTH + 1)
        self.maxcode = [-1] * (MAX_CODE_LENGTH + 1)
        self.valptr = [0] * (MAX_CODE_LENGTH + 1)
        self.values = tuple(int(v) for v in spec.values)

        code = 0
        k = 0
        for length in range(1, MAX_CODE_LENGTH + 1):
            count = spec.bits[length - 1]
            if count:
                self.valptr[length] = k
                self.mincode[length] = code
                code += count
                k += count
                self.maxcode[length] = code - 1
            code <<= 1

        for symbol in enc.symbols:
            c, length = enc.code_for(symbol)
            if length > LOOKUP_BITS:
                continue
            shift = LOOKUP_BITS - length
            packed = (length << 8) | symbol
            for p in range(c << shift, (c + 1) << shift):
                self.lookup[p] = packed
            if role == "dc":
                run, size, valid = 0, symbol, symbol <= 11
            else:
                run, size = symbol >> 4, symbol & 0x0F
                valid = size > 0 or symbol in (0x00, 0xF0)
            if not valid or length + size > FUSED_BITS:
                continue
            total = length + size
            shift = FUSED_BITS - total
            for m in range(1 << size):
                entry = (total << 16) | (run << 12) | (extend(m, size) + 2048)
                base = ((c << size) | m) << shift
                for p in range(base, base + (1 << shift)):
                    self.fused[p] = entry


_TABLE_CACHE: dict[tuple[HuffmanSpec, str], FusedDecodeTables] = {}

#: Cache bound: per-image optimized tables would otherwise accumulate
#: without limit in a long-running decode service.
_TABLE_CACHE_MAX = 64


def fused_tables(spec: HuffmanSpec, role: str) -> FusedDecodeTables:
    """Build (or fetch cached) fused tables for *spec* in *role*.

    The cache is FIFO-bounded at ``_TABLE_CACHE_MAX`` entries so unique
    per-image optimized Huffman tables cannot leak memory in long-lived
    processes; the Annex-K standard tables stay resident in practice
    because they are re-inserted on reuse after any eviction.
    """
    key = (spec, role)
    tab = _TABLE_CACHE.get(key)
    if tab is None:
        while len(_TABLE_CACHE) >= _TABLE_CACHE_MAX:
            _TABLE_CACHE.pop(next(iter(_TABLE_CACHE)))
        tab = _TABLE_CACHE[key] = FusedDecodeTables(spec, role)
    return tab


# ---------------------------------------------------------------------------
# Careful (end-of-payload) helpers.
#
# The fast loop only runs while >= _REFILL_THRESHOLD real bits are
# buffered, where the reference reader can neither pad nor raise.  Near
# the end of a segment these helpers emulate BitReader's exact
# peek/read/zero-feed semantics so adversarial streams fail with the
# same exceptions in both engines.
# ---------------------------------------------------------------------------

def _careful_symbol(acc: int, nbits: int, pos: int, seg_end: int,
                    zero_feed: bool, trunc: bool, payload: bytes,
                    tab: FusedDecodeTables):
    """Decode one symbol with reference peek/pad semantics.

    Returns ``(symbol, acc, nbits, pos)``.
    """
    # Drop stale consumed bits so the accumulator stays bounded even
    # when every symbol of a long zero-padded tail passes through here.
    acc &= (1 << nbits) - 1
    # peek_bits(LOOKUP_BITS): fill from payload, zero-feed past a marker,
    # or zero-pad on exhaustion (reference peek catches BitstreamError).
    while nbits < LOOKUP_BITS:
        if pos < seg_end:
            acc = (acc << 8) | payload[pos]
            pos += 1
            nbits += 8
        elif zero_feed:
            acc <<= 8
            nbits += 8
        else:
            acc <<= LOOKUP_BITS - nbits
            nbits = LOOKUP_BITS
            break
    packed = tab.lookup[(acc >> (nbits - LOOKUP_BITS)) & 0xFF]
    if packed:
        return packed & 0xFF, acc, nbits - (packed >> 8), pos
    # slow path: consume the 8 peeked bits, then walk one bit at a time
    code = (acc >> (nbits - LOOKUP_BITS)) & 0xFF
    nbits -= LOOKUP_BITS
    maxcode = tab.maxcode
    for length in range(LOOKUP_BITS + 1, MAX_CODE_LENGTH + 1):
        while nbits < 1:  # read_bits(1) semantics: may raise
            if pos < seg_end:
                acc = (acc << 8) | payload[pos]
                pos += 1
                nbits += 8
            elif zero_feed:
                acc <<= 8
                nbits += 8
            elif trunc:
                raise BitstreamError("truncated stream after 0xFF")
            else:
                raise BitstreamError("bitstream exhausted")
        nbits -= 1
        code = (code << 1) | ((acc >> nbits) & 1)
        if code <= maxcode[length]:
            sym = tab.values[tab.valptr[length] + code - tab.mincode[length]]
            return sym, acc, nbits, pos
    raise HuffmanError("undecodable Huffman code")


def _careful_read_bits(n: int, acc: int, nbits: int, pos: int, seg_end: int,
                       zero_feed: bool, trunc: bool, payload: bytes):
    """read_bits(n) with reference refill/exhaustion semantics.

    Returns ``(value, acc, nbits, pos)``.
    """
    acc &= (1 << nbits) - 1
    while nbits < n:
        if pos < seg_end:
            acc = (acc << 8) | payload[pos]
            pos += 1
            nbits += 8
        elif zero_feed:
            acc <<= 8
            nbits += 8
        elif trunc:
            raise BitstreamError("truncated stream after 0xFF")
        else:
            raise BitstreamError("bitstream exhausted")
    nbits -= n
    return (acc >> nbits) & ((1 << n) - 1), acc, nbits, pos


# ---------------------------------------------------------------------------
# The engine.
# ---------------------------------------------------------------------------

class FastEntropyDecoder:
    """Drop-in fast replacement for :class:`EntropyDecoder`.

    Same constructor, lifecycle and outputs as the reference engine; the
    only intentional difference is that :attr:`row_byte_offsets` reports
    the *minimal* original-stream byte count covering the bits consumed
    (the reference reports its internal fill position, which can run a
    byte or two ahead) — both satisfy the monotonicity and end-of-scan
    bounds the partitioner relies on.
    """

    def __init__(
        self,
        geometry: ImageGeometry,
        tables: list[ComponentTables],
        restart_interval: int = 0,
        *,
        tolerant: bool = False,
    ) -> None:
        """Bind fused tables for *tables* and allocate decode state
        (same signature as the reference :class:`EntropyDecoder`).

        *tolerant* relaxes structural checks for speculative decoding
        (:mod:`~repro.jpeg.speculative`): a mid-stream guess parses
        garbage until it self-synchronizes, and that garbage routinely
        overruns blocks or overflows the int16 DC range.  Tolerant mode
        clamps instead of raising — AC overruns and bad AC symbols end
        the block, out-of-range DC categories decode as empty, and DC
        stores wrap modulo 2**16 (the stitcher's DC-delta patch is also
        modular, so wrapped speculative values still patch to the exact
        sequential result).  Undecodable Huffman codes still raise:
        with no codeword length there is nothing to skip.
        """
        if len(tables) != len(geometry.components):
            raise EntropyError(
                f"{len(geometry.components)} components but "
                f"{len(tables)} table pairs"
            )
        self.geometry = geometry
        self.restart_interval = restart_interval
        self.tolerant = tolerant
        self._dc_tables = [fused_tables(t.dc, "dc") for t in tables]
        self._ac_tables = [fused_tables(t.ac, "ac") for t in tables]
        self._scan: ScanPrescan | None = None
        self._payload = b""
        self._acc = 0
        self._nbits = 0
        self._pos = 0
        #: Phantom (zero-fed) bits currently counted in ``_nbits``: the
        #: reference reader pads past a marker with zeros, and those
        #: bits must not be mistaken for consumed payload when mapping
        #: the reader position back to original-stream offsets.
        self._phantom = 0
        self._seg_end = 0
        self._seg_zero_feed = False
        self._seg_trunc = False
        self._rst_idx = 0
        self._preds = [0] * len(tables)
        self._mcus_done = 0
        self._next_rst = 0
        self._rows_done = 0
        self._row_byte_offsets: list[int] = [0]
        self.coefficients = CoefficientBuffers.empty(geometry)
        self._flat_planes: list[np.ndarray] = []

    # -- lifecycle ------------------------------------------------------

    def start(self, entropy_data: bytes) -> None:
        """Prescan the raw scan bytes and reset all decoding state."""
        self._scan = destuff_scan(entropy_data)
        self._payload = self._scan.payload
        self._acc = 0
        self._nbits = 0
        self._pos = 0
        self._phantom = 0
        self._rst_idx = 0
        self._set_segment_bounds()
        self._preds = [0] * len(self._preds)
        self._mcus_done = 0
        self._next_rst = 0
        self._rows_done = 0
        self._row_byte_offsets = [0]
        self.coefficients = CoefficientBuffers.empty(self.geometry)
        self._flat_planes = [p.reshape(-1) for p in self.coefficients.planes]

    def start_prescanned(self, scan: ScanPrescan, bit_offset: int = 0) -> None:
        """Attach an existing prescan and start decoding at *bit_offset*.

        The speculative engine (:mod:`repro.jpeg.speculative`) shares one
        destuffing prescan across many chunk decoders; feeding a payload
        back through :meth:`start` would destuff it a second time and
        misread destuffed 0xFF data bytes as markers.  *bit_offset* is an
        absolute bit position into ``scan.payload`` — sub-byte offsets
        prime the accumulator with the tail bits of the containing byte,
        so :attr:`bit_position` equals *bit_offset* exactly.  Restart
        sequencing (``RST0..RST7`` modulo checks) is only meaningful from
        offset 0; speculative starts target marker-free scans.
        """
        payload = scan.payload
        if not 0 <= bit_offset <= len(payload) * 8:
            raise EntropyError(
                f"bit offset {bit_offset} outside the "
                f"{len(payload)}-byte payload")
        self._scan = scan
        self._payload = payload
        byte, rem = bit_offset >> 3, bit_offset & 7
        if rem:
            self._acc = payload[byte] & ((1 << (8 - rem)) - 1)
            self._nbits = 8 - rem
            self._pos = byte + 1
        else:
            self._acc = 0
            self._nbits = 0
            self._pos = byte
        self._phantom = 0
        self._rst_idx = 0
        while (self._rst_idx < scan.restart_count
               and scan.marker_payload_offsets[self._rst_idx] * 8
               <= bit_offset):
            self._rst_idx += 1
        self._set_segment_bounds()
        self._preds = [0] * len(self._preds)
        self._mcus_done = 0
        self._next_rst = self._rst_idx & 7
        self._rows_done = 0
        self._row_byte_offsets = [scan.orig_offset(byte)]
        self.coefficients = CoefficientBuffers.empty(self.geometry)
        self._flat_planes = [p.reshape(-1) for p in self.coefficients.planes]

    def _set_segment_bounds(self) -> None:
        """Derive the current segment's end and end-of-segment behavior."""
        scan = self._scan
        if self._rst_idx < scan.restart_count:
            self._seg_end = scan.marker_payload_offsets[self._rst_idx]
            self._seg_zero_feed = True   # reference zero-feeds at a marker
            self._seg_trunc = False
        else:
            self._seg_end = len(self._payload)
            self._seg_zero_feed = (
                scan.terminator is not None and scan.terminator != TRUNCATED_FF
            )
            self._seg_trunc = scan.terminator == TRUNCATED_FF

    @property
    def rows_decoded(self) -> int:
        """Number of complete MCU rows decoded so far."""
        return self._rows_done

    @property
    def finished(self) -> bool:
        """True once every MCU row of the image has been decoded."""
        return self._rows_done >= self.geometry.mcu_rows

    @property
    def row_byte_offsets(self) -> list[int]:
        """``row_byte_offsets[r]`` = compressed bytes consumed after *r*
        complete MCU rows (original-stream units)."""
        return list(self._row_byte_offsets)

    @property
    def bit_position(self) -> int:
        """Exact destuffed-payload bit offset consumed so far.

        Phantom zero-fed bits (marker padding) are excluded, so two
        decoders standing at the same :attr:`bit_position` are in the
        same bitstream state — the convergence predicate the speculative
        engine matches on.
        """
        real = self._nbits - self._phantom
        if real < 0:
            real = 0
        return self._pos * 8 - real

    @property
    def dc_predictors(self) -> tuple[int, ...]:
        """Current per-component DC predictor values.

        The speculative stitcher snapshots these at every MCU boundary:
        after two decoders converge, their predictor difference is the
        constant per-component delta patched onto the speculative
        chunk's DC coefficients.
        """
        return tuple(self._preds)

    # -- core decode ----------------------------------------------------

    def decode_mcu_rows(self, nrows: int) -> int:
        """Decode up to *nrows* further MCU rows; return rows decoded.

        One flat loop: all tables and reader state live in locals, each
        symbol costs one fused probe in the common case, and coefficient
        planes are written through pre-flattened views.
        """
        if self._scan is None:
            raise EntropyError("start() must be called before decoding")
        geo = self.geometry
        target = min(self._rows_done + nrows, geo.mcu_rows)
        interval = self.restart_interval
        scan = self._scan
        payload = self._payload
        zz = _ZIGZAG
        from_bytes = int.from_bytes

        # Reader state -> locals.
        tolerant = self.tolerant
        acc = self._acc
        nbits = self._nbits
        pos = self._pos
        phantom = self._phantom
        seg_end = self._seg_end
        zero_feed = self._seg_zero_feed
        trunc = self._seg_trunc
        rst_idx = self._rst_idx
        next_rst = self._next_rst
        mcus_done = self._mcus_done
        preds = self._preds
        rows_done = self._rows_done
        mcus_per_row = geo.mcus_per_row
        marker_pay = scan.marker_payload_offsets
        marker_val = scan.marker_values
        n_markers = len(marker_pay)

        # Per-component decode plan (tables + plane views bound once).
        plan = [
            (ci, comp.v_factor, comp.h_factor, comp.blocks_wide,
             self._flat_planes[ci], self._dc_tables[ci], self._ac_tables[ci])
            for ci, comp in enumerate(geo.components)
        ]

        while rows_done < target:
            mrow = rows_done
            for mcol in range(mcus_per_row):
                if interval and mcus_done and mcus_done % interval == 0:
                    # --- restart: byte-align, consume RSTn, reset DC ---
                    if rst_idx >= n_markers:
                        term = scan.terminator
                        if term is not None and term != TRUNCATED_FF:
                            raise BitstreamError(
                                f"expected restart marker, found 0xFF{term:02X}"
                            )
                        raise BitstreamError(
                            "no restart marker before end of stream")
                    rst_n = marker_val[rst_idx] - 0xD0
                    if rst_n != next_rst:
                        raise EntropyError(
                            f"restart marker out of sequence: RST{rst_n}, "
                            f"expected RST{next_rst}"
                        )
                    pos = marker_pay[rst_idx]
                    rst_idx += 1
                    acc = 0
                    nbits = 0
                    phantom = 0
                    if rst_idx < n_markers:
                        seg_end = marker_pay[rst_idx]
                        zero_feed, trunc = True, False
                    else:
                        seg_end = len(payload)
                        zero_feed = (scan.terminator is not None
                                     and scan.terminator != TRUNCATED_FF)
                        trunc = scan.terminator == TRUNCATED_FF
                    next_rst = (next_rst + 1) & 7
                    for ci in range(len(preds)):
                        preds[ci] = 0
                for ci, vf, hf, bw, flat, dct, act in plan:
                    pred = preds[ci]
                    d_fused, d_lookup = dct.fused, dct.lookup
                    a_fused, a_lookup = act.fused, act.lookup
                    for v in range(vf):
                        rowbase = (mrow * vf + v) * bw + mcol * hf
                        for h in range(hf):
                            base = (rowbase + h) << 6

                            # ---------------- DC ----------------
                            if nbits < _REFILL_THRESHOLD:
                                while nbits < _REFILL_THRESHOLD and pos < seg_end:
                                    take = seg_end - pos
                                    if take > 8:
                                        take = 8
                                    acc = ((acc & ((1 << nbits) - 1))
                                           << (take << 3)) | from_bytes(
                                               payload[pos:pos + take], "big")
                                    nbits += take << 3
                                    pos += take
                                if nbits < _REFILL_THRESHOLD and zero_feed:
                                    # a marker ends this segment: the
                                    # reference zero-feeds there, so the
                                    # fast path may too (masking keeps
                                    # the accumulator bounded)
                                    acc = (acc & ((1 << nbits) - 1)) << 32
                                    nbits += 32
                                    phantom += 32
                            if nbits >= _REFILL_THRESHOLD:
                                e = d_fused[(acc >> (nbits - 10)) & 0x3FF]
                                if e:
                                    nbits -= e >> 16
                                    pred += (e & 0xFFF) - 2048
                                else:
                                    p2 = d_lookup[(acc >> (nbits - 8)) & 0xFF]
                                    if p2:
                                        nbits -= p2 >> 8
                                        s = p2 & 0xFF
                                    else:
                                        code = (acc >> (nbits - 16)) & 0xFFFF
                                        dmax = dct.maxcode
                                        for ln in range(9, 17):
                                            c = code >> (16 - ln)
                                            if c <= dmax[ln]:
                                                nbits -= ln
                                                s = dct.values[
                                                    dct.valptr[ln] + c
                                                    - dct.mincode[ln]]
                                                break
                                        else:
                                            raise HuffmanError(
                                                "undecodable Huffman code")
                                    if s > 11:
                                        if tolerant:
                                            s = 0
                                        else:
                                            raise EntropyError(
                                                f"DC category {s} out of range")
                                    if s:
                                        nbits -= s
                                        m = (acc >> nbits) & ((1 << s) - 1)
                                        pred += (m - (1 << s) + 1
                                                 if m < (1 << (s - 1)) else m)
                            else:
                                s, acc, nbits, pos = _careful_symbol(
                                    acc, nbits, pos, seg_end, zero_feed,
                                    trunc, payload, dct)
                                if s > 11:
                                    if tolerant:
                                        s = 0
                                    else:
                                        raise EntropyError(
                                            f"DC category {s} out of range")
                                if s:
                                    m, acc, nbits, pos = _careful_read_bits(
                                        s, acc, nbits, pos, seg_end,
                                        zero_feed, trunc, payload)
                                    pred += (m - (1 << s) + 1
                                             if m < (1 << (s - 1)) else m)
                            if tolerant:
                                # Garbage prefixes drift the predictor
                                # past int16; wrap like the modular
                                # DC-delta patch does.
                                flat[base] = ((pred + 0x8000) & 0xFFFF) - 0x8000
                            else:
                                flat[base] = pred

                            # ---------------- AC ----------------
                            k = 1
                            while k < 64:
                                if nbits < _REFILL_THRESHOLD:
                                    while (nbits < _REFILL_THRESHOLD
                                           and pos < seg_end):
                                        take = seg_end - pos
                                        if take > 8:
                                            take = 8
                                        acc = ((acc & ((1 << nbits) - 1))
                                               << (take << 3)) | from_bytes(
                                                   payload[pos:pos + take],
                                                   "big")
                                        nbits += take << 3
                                        pos += take
                                    if nbits < _REFILL_THRESHOLD and zero_feed:
                                        acc = ((acc & ((1 << nbits) - 1))
                                               << 32)
                                        nbits += 32
                                        phantom += 32
                                    if nbits < _REFILL_THRESHOLD:
                                        # careful tail path, one symbol
                                        sym, acc, nbits, pos = _careful_symbol(
                                            acc, nbits, pos, seg_end,
                                            zero_feed, trunc, payload, act)
                                        run, size = sym >> 4, sym & 0x0F
                                        if size == 0:
                                            if sym == 0x00:
                                                break
                                            if sym == 0xF0:
                                                k += 16
                                                continue
                                            if tolerant:
                                                break
                                            raise EntropyError(
                                                f"bad AC symbol {sym:#x}")
                                        k += run
                                        if k > 63:
                                            if tolerant:
                                                _, acc, nbits, pos = \
                                                    _careful_read_bits(
                                                        size, acc, nbits, pos,
                                                        seg_end, zero_feed,
                                                        trunc, payload)
                                                break
                                            raise EntropyError(
                                                "AC coefficient index overran "
                                                "the block")
                                        m, acc, nbits, pos = _careful_read_bits(
                                            size, acc, nbits, pos, seg_end,
                                            zero_feed, trunc, payload)
                                        flat[base + zz[k]] = (
                                            m - (1 << size) + 1
                                            if m < (1 << (size - 1)) else m)
                                        k += 1
                                        continue
                                e = a_fused[(acc >> (nbits - 10)) & 0x3FF]
                                if e:
                                    nbits -= e >> 16
                                    val = (e & 0xFFF) - 2048
                                    if val:
                                        k += (e >> 12) & 0xF
                                        if k > 63:
                                            if tolerant:
                                                break
                                            raise EntropyError(
                                                "AC coefficient index overran "
                                                "the block")
                                        flat[base + zz[k]] = val
                                        k += 1
                                    elif e & 0xF000:   # ZRL (run 15, size 0)
                                        k += 16
                                    else:              # EOB
                                        break
                                    continue
                                p2 = a_lookup[(acc >> (nbits - 8)) & 0xFF]
                                if p2:
                                    nbits -= p2 >> 8
                                    sym = p2 & 0xFF
                                else:
                                    code = (acc >> (nbits - 16)) & 0xFFFF
                                    amax = act.maxcode
                                    for ln in range(9, 17):
                                        c = code >> (16 - ln)
                                        if c <= amax[ln]:
                                            nbits -= ln
                                            sym = act.values[
                                                act.valptr[ln] + c
                                                - act.mincode[ln]]
                                            break
                                    else:
                                        raise HuffmanError(
                                            "undecodable Huffman code")
                                run, size = sym >> 4, sym & 0x0F
                                if size == 0:
                                    if sym == 0x00:
                                        break
                                    if sym == 0xF0:
                                        k += 16
                                        continue
                                    if tolerant:
                                        break
                                    raise EntropyError(
                                        f"bad AC symbol {sym:#x}")
                                k += run
                                if k > 63:
                                    if tolerant:
                                        nbits -= size
                                        break
                                    raise EntropyError(
                                        "AC coefficient index overran the "
                                        "block")
                                nbits -= size
                                m = (acc >> nbits) & ((1 << size) - 1)
                                flat[base + zz[k]] = (
                                    m - (1 << size) + 1
                                    if m < (1 << (size - 1)) else m)
                                k += 1
                    preds[ci] = pred
                mcus_done += 1
            rows_done += 1
            # Only real buffered bits roll the position back: phantom
            # zero-fed padding is not payload, and subtracting it used
            # to under-report rows ending at a restart marker by the
            # padding width (landing mid-tail instead of just past the
            # RSTn pair).
            real = nbits - phantom
            if real < 0:
                real = 0
            off = scan.orig_offset(max(0, pos - (real >> 3)))
            last = self._row_byte_offsets[-1]
            self._row_byte_offsets.append(off if off > last else last)

        # Locals -> state.
        self._acc = acc
        self._nbits = nbits
        self._pos = pos
        self._phantom = phantom
        self._seg_end = seg_end
        self._seg_zero_feed = zero_feed
        self._seg_trunc = trunc
        self._rst_idx = rst_idx
        self._next_rst = next_rst
        self._mcus_done = mcus_done
        self._rows_done = rows_done
        return rows_done

    def decode_all(self, entropy_data: bytes) -> CoefficientBuffers:
        """Convenience: start + decode every MCU row."""
        self.start(entropy_data)
        self.decode_mcu_rows(self.geometry.mcu_rows)
        return self.coefficients


# ---------------------------------------------------------------------------
# Engine selection.
# ---------------------------------------------------------------------------

#: Engine registry: ``fast`` is the default everywhere; ``reference`` is
#: the retained oracle the property tests compare against.
ENTROPY_ENGINES = {
    "fast": FastEntropyDecoder,
    "reference": EntropyDecoder,
}


def create_entropy_decoder(
    engine: str,
    geometry: ImageGeometry,
    tables: list[ComponentTables],
    restart_interval: int = 0,
):
    """Instantiate the entropy engine named *engine*."""
    try:
        cls = ENTROPY_ENGINES[engine]
    except KeyError:
        raise EntropyError(
            f"unknown entropy engine {engine!r} "
            f"(choose from {sorted(ENTROPY_ENGINES)})"
        ) from None
    return cls(geometry, tables, restart_interval)
