"""JPEG constants: marker codes, zig-zag order, Annex-K tables.

Everything in this module is data from the JPEG standard (ITU-T T.81):
marker byte values, the zig-zag scan order of an 8x8 block, the example
luminance/chrominance quantization tables of Annex K, and the "typical"
Huffman tables of Annex K that libjpeg installs by default.
"""

from __future__ import annotations

import numpy as np

#: Width/height of a JPEG block, fixed by the standard.
BLOCK_SIZE = 8

#: Number of samples in a block.
BLOCK_SAMPLES = BLOCK_SIZE * BLOCK_SIZE

#: Center of the 8-bit sample range; added back after the IDCT.
LEVEL_SHIFT = 128

#: Maximum sample value for 8-bit precision.
MAX_SAMPLE = 255

# ---------------------------------------------------------------------------
# Marker codes (the byte following 0xFF).
# ---------------------------------------------------------------------------

MARKER_PREFIX = 0xFF

SOI = 0xD8   #: start of image
EOI = 0xD9   #: end of image
SOS = 0xDA   #: start of scan
DQT = 0xDB   #: define quantization table(s)
DNL = 0xDC   #: define number of lines
DRI = 0xDD   #: define restart interval
DHP = 0xDE   #: define hierarchical progression
EXP = 0xDF   #: expand reference component

SOF0 = 0xC0  #: baseline DCT
SOF1 = 0xC1  #: extended sequential DCT
SOF2 = 0xC2  #: progressive DCT
SOF3 = 0xC3  #: lossless (sequential)
DHT = 0xC4   #: define Huffman table(s)
SOF5 = 0xC5
SOF6 = 0xC6
SOF7 = 0xC7
JPG = 0xC8
SOF9 = 0xC9  #: extended sequential, arithmetic coding
SOF10 = 0xCA
SOF11 = 0xCB
DAC = 0xCC   #: define arithmetic conditioning
SOF13 = 0xCD
SOF14 = 0xCE
SOF15 = 0xCF

RST0 = 0xD0  #: restart marker 0 (RST0..RST7 = 0xD0..0xD7)
RST7 = 0xD7

APP0 = 0xE0  #: application segment 0 (JFIF)
APP14 = 0xEE  #: application segment 14 (Adobe)
APP15 = 0xEF
COM = 0xFE   #: comment

#: SOF markers we refuse (modes beyond baseline + progressive Huffman).
UNSUPPORTED_SOF = frozenset(
    {SOF1, SOF3, SOF5, SOF6, SOF7, SOF9, SOF10, SOF11, SOF13, SOF14, SOF15}
)

#: Human-readable names of every refused compression mode, so the
#: unsupported-SOF error says *what* was refused, not just which byte.
SOF_MODE_NAMES = {
    SOF1: "extended sequential DCT, Huffman coding",
    SOF3: "lossless (sequential), Huffman coding",
    SOF5: "differential sequential DCT, Huffman coding",
    SOF6: "differential progressive DCT, Huffman coding",
    SOF7: "differential lossless (sequential), Huffman coding",
    SOF9: "extended sequential DCT, arithmetic coding",
    SOF10: "progressive DCT, arithmetic coding",
    SOF11: "lossless (sequential), arithmetic coding",
    SOF13: "differential sequential DCT, arithmetic coding",
    SOF14: "differential progressive DCT, arithmetic coding",
    SOF15: "differential lossless (sequential), arithmetic coding",
    DAC: "arithmetic coding conditioning",
}

#: All markers that carry a 2-byte length field.
SEGMENT_MARKERS = frozenset(
    {DQT, DRI, DHT, SOS, COM, DNL}
    | {SOF0, SOF2} | UNSUPPORTED_SOF
    | set(range(APP0, APP15 + 1))
)


def is_rst(marker: int) -> bool:
    """Return True if *marker* is one of the eight restart markers."""
    return RST0 <= marker <= RST7


# ---------------------------------------------------------------------------
# Zig-zag scan order.
# ---------------------------------------------------------------------------

#: ``ZIGZAG_ORDER[k]`` is the natural (row-major) index of the *k*-th
#: coefficient in zig-zag order.
ZIGZAG_ORDER = np.array(
    [
        0, 1, 8, 16, 9, 2, 3, 10,
        17, 24, 32, 25, 18, 11, 4, 5,
        12, 19, 26, 33, 40, 48, 41, 34,
        27, 20, 13, 6, 7, 14, 21, 28,
        35, 42, 49, 56, 57, 50, 43, 36,
        29, 22, 15, 23, 30, 37, 44, 51,
        58, 59, 52, 45, 38, 31, 39, 46,
        53, 60, 61, 54, 47, 55, 62, 63,
    ],
    dtype=np.int32,
)

#: Inverse permutation: ``NATURAL_TO_ZIGZAG[n]`` is the zig-zag position of
#: natural index *n*.
NATURAL_TO_ZIGZAG = np.argsort(ZIGZAG_ORDER).astype(np.int32)


# ---------------------------------------------------------------------------
# Annex K quantization tables (quality 50 baselines).
# ---------------------------------------------------------------------------

STD_LUMINANCE_QUANT = np.array(
    [
        16, 11, 10, 16, 24, 40, 51, 61,
        12, 12, 14, 19, 26, 58, 60, 55,
        14, 13, 16, 24, 40, 57, 69, 56,
        14, 17, 22, 29, 51, 87, 80, 62,
        18, 22, 37, 56, 68, 109, 103, 77,
        24, 35, 55, 64, 81, 104, 113, 92,
        49, 64, 78, 87, 103, 121, 120, 101,
        72, 92, 95, 98, 112, 100, 103, 99,
    ],
    dtype=np.uint16,
).reshape(8, 8)

STD_CHROMINANCE_QUANT = np.array(
    [
        17, 18, 24, 47, 99, 99, 99, 99,
        18, 21, 26, 66, 99, 99, 99, 99,
        24, 26, 56, 99, 99, 99, 99, 99,
        47, 66, 99, 99, 99, 99, 99, 99,
        99, 99, 99, 99, 99, 99, 99, 99,
        99, 99, 99, 99, 99, 99, 99, 99,
        99, 99, 99, 99, 99, 99, 99, 99,
        99, 99, 99, 99, 99, 99, 99, 99,
    ],
    dtype=np.uint16,
).reshape(8, 8)


# ---------------------------------------------------------------------------
# Annex K "typical" Huffman tables, as (BITS, HUFFVAL) pairs.
# BITS[i] = number of codes of length i+1 (16 entries); HUFFVAL lists the
# symbol values in order of increasing code length.
# ---------------------------------------------------------------------------

STD_DC_LUMINANCE_BITS = (0, 1, 5, 1, 1, 1, 1, 1, 1, 0, 0, 0, 0, 0, 0, 0)
STD_DC_LUMINANCE_VALUES = tuple(range(12))

STD_DC_CHROMINANCE_BITS = (0, 3, 1, 1, 1, 1, 1, 1, 1, 1, 1, 0, 0, 0, 0, 0)
STD_DC_CHROMINANCE_VALUES = tuple(range(12))

STD_AC_LUMINANCE_BITS = (0, 2, 1, 3, 3, 2, 4, 3, 5, 5, 4, 4, 0, 0, 1, 0x7D)
STD_AC_LUMINANCE_VALUES = (
    0x01, 0x02, 0x03, 0x00, 0x04, 0x11, 0x05, 0x12,
    0x21, 0x31, 0x41, 0x06, 0x13, 0x51, 0x61, 0x07,
    0x22, 0x71, 0x14, 0x32, 0x81, 0x91, 0xA1, 0x08,
    0x23, 0x42, 0xB1, 0xC1, 0x15, 0x52, 0xD1, 0xF0,
    0x24, 0x33, 0x62, 0x72, 0x82, 0x09, 0x0A, 0x16,
    0x17, 0x18, 0x19, 0x1A, 0x25, 0x26, 0x27, 0x28,
    0x29, 0x2A, 0x34, 0x35, 0x36, 0x37, 0x38, 0x39,
    0x3A, 0x43, 0x44, 0x45, 0x46, 0x47, 0x48, 0x49,
    0x4A, 0x53, 0x54, 0x55, 0x56, 0x57, 0x58, 0x59,
    0x5A, 0x63, 0x64, 0x65, 0x66, 0x67, 0x68, 0x69,
    0x6A, 0x73, 0x74, 0x75, 0x76, 0x77, 0x78, 0x79,
    0x7A, 0x83, 0x84, 0x85, 0x86, 0x87, 0x88, 0x89,
    0x8A, 0x92, 0x93, 0x94, 0x95, 0x96, 0x97, 0x98,
    0x99, 0x9A, 0xA2, 0xA3, 0xA4, 0xA5, 0xA6, 0xA7,
    0xA8, 0xA9, 0xAA, 0xB2, 0xB3, 0xB4, 0xB5, 0xB6,
    0xB7, 0xB8, 0xB9, 0xBA, 0xC2, 0xC3, 0xC4, 0xC5,
    0xC6, 0xC7, 0xC8, 0xC9, 0xCA, 0xD2, 0xD3, 0xD4,
    0xD5, 0xD6, 0xD7, 0xD8, 0xD9, 0xDA, 0xE1, 0xE2,
    0xE3, 0xE4, 0xE5, 0xE6, 0xE7, 0xE8, 0xE9, 0xEA,
    0xF1, 0xF2, 0xF3, 0xF4, 0xF5, 0xF6, 0xF7, 0xF8,
    0xF9, 0xFA,
)

STD_AC_CHROMINANCE_BITS = (0, 2, 1, 2, 4, 4, 3, 4, 7, 5, 4, 4, 0, 1, 2, 0x77)
STD_AC_CHROMINANCE_VALUES = (
    0x00, 0x01, 0x02, 0x03, 0x11, 0x04, 0x05, 0x21,
    0x31, 0x06, 0x12, 0x41, 0x51, 0x07, 0x61, 0x71,
    0x13, 0x22, 0x32, 0x81, 0x08, 0x14, 0x42, 0x91,
    0xA1, 0xB1, 0xC1, 0x09, 0x23, 0x33, 0x52, 0xF0,
    0x15, 0x62, 0x72, 0xD1, 0x0A, 0x16, 0x24, 0x34,
    0xE1, 0x25, 0xF1, 0x17, 0x18, 0x19, 0x1A, 0x26,
    0x27, 0x28, 0x29, 0x2A, 0x35, 0x36, 0x37, 0x38,
    0x39, 0x3A, 0x43, 0x44, 0x45, 0x46, 0x47, 0x48,
    0x49, 0x4A, 0x53, 0x54, 0x55, 0x56, 0x57, 0x58,
    0x59, 0x5A, 0x63, 0x64, 0x65, 0x66, 0x67, 0x68,
    0x69, 0x6A, 0x73, 0x74, 0x75, 0x76, 0x77, 0x78,
    0x79, 0x7A, 0x82, 0x83, 0x84, 0x85, 0x86, 0x87,
    0x88, 0x89, 0x8A, 0x92, 0x93, 0x94, 0x95, 0x96,
    0x97, 0x98, 0x99, 0x9A, 0xA2, 0xA3, 0xA4, 0xA5,
    0xA6, 0xA7, 0xA8, 0xA9, 0xAA, 0xB2, 0xB3, 0xB4,
    0xB5, 0xB6, 0xB7, 0xB8, 0xB9, 0xBA, 0xC2, 0xC3,
    0xC4, 0xC5, 0xC6, 0xC7, 0xC8, 0xC9, 0xCA, 0xD2,
    0xD3, 0xD4, 0xD5, 0xD6, 0xD7, 0xD8, 0xD9, 0xDA,
    0xE2, 0xE3, 0xE4, 0xE5, 0xE6, 0xE7, 0xE8, 0xE9,
    0xEA, 0xF2, 0xF3, 0xF4, 0xF5, 0xF6, 0xF7, 0xF8,
    0xF9, 0xFA,
)

#: EOB (end-of-block) run/size symbol in AC coding.
EOB_SYMBOL = 0x00

#: ZRL (sixteen zeros) run/size symbol in AC coding.
ZRL_SYMBOL = 0xF0
