"""Entropy-coded scan encode/decode — the *sequential* stage of the paper.

Baseline JPEG Huffman-codes each block as a DC size category (coded
differentially against the previous block of the same component) plus AC
(run, size) symbols with EOB/ZRL escapes.  Code words have variable
length, so the start of a symbol is only known once the previous symbol
is decoded — this is the data dependency that makes the stage sequential
(paper Section 1).

:class:`EntropyDecoder` is *restartable at MCU-row granularity*: the
pipelined executors decode one horizontal chunk at a time and need to
know how many compressed bytes each chunk consumed (that byte count
drives the simulated Huffman time and the re-partitioning density
correction of Eq. 16/17).

This per-symbol decoder is the **reference oracle**; the default decode
path is the fused fast-path engine in :mod:`repro.jpeg.fast_entropy`,
which is bit-exact with it (select with ``entropy_engine="reference"``
to run this one).  :class:`EntropyEncoder` here *is* the production
encoder — vectorized zig-zag, precomputed code/length arrays and a
single reused :class:`BitWriter` across restart intervals.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import EntropyError, HuffmanError
from .bitstream import BitReader, BitWriter
from .blocks import ImageGeometry
from .constants import EOB_SYMBOL, ZIGZAG_ORDER, ZRL_SYMBOL
from .huffman import (
    HuffmanDecoder,
    HuffmanEncoder,
    HuffmanSpec,
    extend,
    magnitude_category,
)


@dataclass
class ComponentTables:
    """Huffman table pair assigned to one scan component."""

    dc: HuffmanSpec
    ac: HuffmanSpec


@dataclass
class CoefficientBuffers:
    """Per-component quantized coefficient batches in natural order.

    ``planes[ci]`` has shape (blocks_high * blocks_wide, 8, 8) int16 with
    blocks in row-major grid order — the layout of the whole-image buffer
    the re-engineered libjpeg-turbo keeps below its legacy hierarchy
    (paper Section 3).
    """

    geometry: ImageGeometry
    planes: list[np.ndarray]

    @classmethod
    def empty(cls, geometry: ImageGeometry) -> "CoefficientBuffers":
        planes = [
            np.zeros((c.blocks_total, 8, 8), dtype=np.int16)
            for c in geometry.components
        ]
        return cls(geometry=geometry, planes=planes)

    def rows_slice(self, mcu_row_start: int, mcu_row_stop: int) -> "CoefficientBuffers":
        """A view-based sub-buffer covering [mcu_row_start, mcu_row_stop)."""
        sub_geo = self.geometry
        planes = []
        for comp, plane in zip(sub_geo.components, self.planes):
            per_row = comp.blocks_wide * comp.v_factor
            planes.append(plane[mcu_row_start * per_row: mcu_row_stop * per_row])
        return CoefficientBuffers(geometry=sub_geo, planes=planes)


class EntropyDecoder:
    """Sequential Huffman decoding of one baseline scan.

    Parameters
    ----------
    geometry : MCU-grid geometry of the frame.
    tables : one :class:`ComponentTables` per component, scan order.
    restart_interval : MCUs between restart markers (0 = none).
    """

    def __init__(
        self,
        geometry: ImageGeometry,
        tables: list[ComponentTables],
        restart_interval: int = 0,
    ) -> None:
        if len(tables) != len(geometry.components):
            raise EntropyError(
                f"{len(geometry.components)} components but "
                f"{len(tables)} table pairs"
            )
        self.geometry = geometry
        self.restart_interval = restart_interval
        self._dc_decoders = [HuffmanDecoder(t.dc) for t in tables]
        self._ac_decoders = [HuffmanDecoder(t.ac) for t in tables]
        self._reader: BitReader | None = None
        self._preds = [0] * len(tables)
        self._mcus_done = 0
        self._next_rst = 0
        self._row_byte_offsets: list[int] = [0]
        self.coefficients = CoefficientBuffers.empty(geometry)
        self._rows_done = 0

    # -- lifecycle ------------------------------------------------------

    def start(self, entropy_data: bytes) -> None:
        """Attach the raw scan bytes and reset all decoding state."""
        self._reader = BitReader(entropy_data)
        self._preds = [0] * len(self._preds)
        self._mcus_done = 0
        self._next_rst = 0
        self._rows_done = 0
        self._row_byte_offsets = [0]
        self.coefficients = CoefficientBuffers.empty(self.geometry)

    @property
    def rows_decoded(self) -> int:
        """Number of complete MCU rows decoded so far."""
        return self._rows_done

    @property
    def finished(self) -> bool:
        return self._rows_done >= self.geometry.mcu_rows

    @property
    def row_byte_offsets(self) -> list[int]:
        """``row_byte_offsets[r]`` = compressed bytes consumed after *r*
        complete MCU rows.  Drives chunk timing and Eq. (17)."""
        return list(self._row_byte_offsets)

    # -- core decode ------------------------------------------------------

    def _decode_block(self, ci: int, out: np.ndarray) -> None:
        """Decode one block into *out* (a flat view of 64 int16)."""
        reader = self._reader
        dc_sym = self._dc_decoders[ci].decode(reader)
        if dc_sym > 11:
            raise EntropyError(f"DC category {dc_sym} out of range")
        diff = extend(reader.read_bits(dc_sym), dc_sym) if dc_sym else 0
        self._preds[ci] += diff
        out[0] = self._preds[ci]

        ac = self._ac_decoders[ci]
        zz = ZIGZAG_ORDER
        k = 1
        while k < 64:
            sym = ac.decode(reader)
            run, size = sym >> 4, sym & 0x0F
            if size == 0:
                if sym == EOB_SYMBOL:
                    break
                if sym == ZRL_SYMBOL:
                    k += 16
                    continue
                raise EntropyError(f"bad AC symbol {sym:#x}")
            k += run
            if k > 63:
                raise EntropyError("AC coefficient index overran the block")
            out[zz[k]] = extend(reader.read_bits(size), size)
            k += 1

    def decode_mcu_rows(self, nrows: int) -> int:
        """Decode up to *nrows* further MCU rows; return rows decoded.

        This is the chunk-granular entry point the pipelined executors
        call repeatedly (paper Section 4.5).
        """
        if self._reader is None:
            raise EntropyError("start() must be called before decoding")
        geo = self.geometry
        comps = geo.components
        target = min(self._rows_done + nrows, geo.mcu_rows)
        planes = self.coefficients.planes
        interval = self.restart_interval

        while self._rows_done < target:
            mrow = self._rows_done
            for mcol in range(geo.mcus_per_row):
                if interval and self._mcus_done and self._mcus_done % interval == 0:
                    n = self._reader.find_restart_marker()
                    if n != self._next_rst:
                        raise EntropyError(
                            f"restart marker out of sequence: RST{n}, "
                            f"expected RST{self._next_rst}"
                        )
                    self._next_rst = (self._next_rst + 1) & 7
                    self._preds = [0] * len(self._preds)
                for ci, comp in enumerate(comps):
                    for v in range(comp.v_factor):
                        brow = mrow * comp.v_factor + v
                        for h in range(comp.h_factor):
                            bcol = mcol * comp.h_factor + h
                            idx = brow * comp.blocks_wide + bcol
                            self._decode_block(ci, planes[ci][idx].reshape(-1))
                self._mcus_done += 1
            self._rows_done += 1
            self._row_byte_offsets.append(self._reader.byte_position)
        return self._rows_done

    def decode_all(self, entropy_data: bytes) -> CoefficientBuffers:
        """Convenience: start + decode every MCU row."""
        self.start(entropy_data)
        self.decode_mcu_rows(self.geometry.mcu_rows)
        return self.coefficients


class EntropyEncoder:
    """Huffman-encode quantized coefficient buffers into scan bytes.

    Vectorized form: the zig-zag permutation is applied to each whole
    coefficient plane in one numpy fancy-index, Huffman codes come from
    dense precomputed ``(code, length)`` arrays
    (:meth:`~repro.jpeg.huffman.HuffmanEncoder.code_arrays`), and each
    block is emitted as one batched :meth:`BitWriter.write_pairs` call.
    A single writer lives for the whole scan; restart markers are
    emitted in place via :meth:`BitWriter.emit_marker` instead of
    allocating a fresh writer per interval.  The emitted bytes are
    identical to the historical per-symbol encoder.
    """

    def __init__(
        self,
        geometry: ImageGeometry,
        tables: list[ComponentTables],
        restart_interval: int = 0,
    ) -> None:
        if len(tables) != len(geometry.components):
            raise EntropyError("table/component count mismatch")
        self.geometry = geometry
        self.restart_interval = restart_interval
        self._dc_code_arrays = [HuffmanEncoder(t.dc).code_arrays() for t in tables]
        self._ac_code_arrays = [HuffmanEncoder(t.ac).code_arrays() for t in tables]

    def _block_pairs(self, zzblock: list[int], pred: int,
                     dc_codes: list[int], dc_lens: list[int],
                     ac_codes: list[int], ac_lens: list[int],
                     ) -> tuple[list[tuple[int, int]], int]:
        """(value, nbits) pairs for one zig-zag-ordered block; new pred."""
        pairs: list[tuple[int, int]] = []
        dc = zzblock[0]
        diff = dc - pred
        cat = (-diff if diff < 0 else diff).bit_length()
        length = dc_lens[cat]
        if length == 0:
            raise HuffmanError(f"symbol {cat:#x} not in table")
        pairs.append((dc_codes[cat], length))
        if cat:
            pairs.append((diff + (1 << cat) - 1 if diff < 0 else diff, cat))

        zrl_code, zrl_len = ac_codes[ZRL_SYMBOL], ac_lens[ZRL_SYMBOL]
        run = 0
        for k in range(1, 64):
            val = zzblock[k]
            if val == 0:
                run += 1
                continue
            while run > 15:
                if zrl_len == 0:
                    raise HuffmanError(f"symbol {ZRL_SYMBOL:#x} not in table")
                pairs.append((zrl_code, zrl_len))
                run -= 16
            cat = (-val if val < 0 else val).bit_length()
            if cat > 10:
                raise EntropyError(f"AC coefficient {val} too large to code")
            sym = (run << 4) | cat
            length = ac_lens[sym]
            if length == 0:
                raise HuffmanError(f"symbol {sym:#x} not in table")
            pairs.append((ac_codes[sym], length))
            pairs.append((val + (1 << cat) - 1 if val < 0 else val, cat))
            run = 0
        if run:
            if ac_lens[EOB_SYMBOL] == 0:
                raise HuffmanError(f"symbol {EOB_SYMBOL:#x} not in table")
            pairs.append((ac_codes[EOB_SYMBOL], ac_lens[EOB_SYMBOL]))
        return pairs, dc

    def encode(self, coefficients: CoefficientBuffers) -> bytes:
        """Serialize all MCUs; returns byte-stuffed scan data (no markers
        except interleaved RSTn when a restart interval is configured)."""
        geo = self.geometry
        comps = geo.components
        writer = BitWriter()
        write_pairs = writer.write_pairs
        block_pairs = self._block_pairs
        preds = [0] * len(comps)
        mcus_done = 0
        next_rst = 0
        interval = self.restart_interval

        flat_planes = [p.reshape(-1, 64) for p in coefficients.planes]

        for mrow in range(geo.mcu_rows):
            # One fancy-index per component per MCU row puts its blocks
            # in zig-zag order; .tolist() drops to plain ints for the
            # per-symbol loop.  Row-granular conversion keeps the
            # vectorized permutation without materializing the whole
            # image as Python lists.
            zz_rows = []
            for ci, comp in enumerate(comps):
                start = mrow * comp.v_factor * comp.blocks_wide
                stop = start + comp.v_factor * comp.blocks_wide
                zz_rows.append(
                    flat_planes[ci][start:stop][:, ZIGZAG_ORDER].tolist())
            for mcol in range(geo.mcus_per_row):
                if interval and mcus_done and mcus_done % interval == 0:
                    writer.emit_marker(0xD0 + next_rst)
                    next_rst = (next_rst + 1) & 7
                    preds = [0] * len(comps)
                for ci, comp in enumerate(comps):
                    dc_codes, dc_lens = self._dc_code_arrays[ci]
                    ac_codes, ac_lens = self._ac_code_arrays[ci]
                    zzp = zz_rows[ci]
                    hf, vf = comp.h_factor, comp.v_factor
                    pred = preds[ci]
                    for v in range(vf):
                        row = v * comp.blocks_wide + mcol * hf
                        for h in range(hf):
                            pairs, pred = block_pairs(
                                zzp[row + h], pred,
                                dc_codes, dc_lens, ac_codes, ac_lens)
                            write_pairs(pairs)
                    preds[ci] = pred
                mcus_done += 1
        writer.flush()
        return writer.getvalue()


def collect_symbol_frequencies(
    geometry: ImageGeometry,
    coefficients: CoefficientBuffers,
    restart_interval: int = 0,
) -> tuple[list[dict[int, int]], list[dict[int, int]]]:
    """Count DC and AC symbol frequencies per component.

    Used to build optimized Huffman tables (the encoder's "-optimize"
    mode).  The walk mirrors :meth:`EntropyEncoder.encode` exactly —
    including MCU interleaving and DC-prediction resets at restart
    markers — so the counted symbols are precisely the emitted ones.
    """
    ncomp = len(geometry.components)
    dc_freqs: list[dict[int, int]] = [{} for _ in range(ncomp)]
    ac_freqs: list[dict[int, int]] = [{} for _ in range(ncomp)]
    preds = [0] * ncomp
    mcus_done = 0
    planes = coefficients.planes

    def count_block(ci: int, coefs: np.ndarray) -> None:
        dcf, acf = dc_freqs[ci], ac_freqs[ci]
        dc = int(coefs[0])
        cat = magnitude_category(dc - preds[ci])
        preds[ci] = dc
        dcf[cat] = dcf.get(cat, 0) + 1
        zz = coefs[ZIGZAG_ORDER]
        nzp = np.nonzero(zz[1:])[0]
        run_start = 1
        for pos in nzp + 1:
            run = int(pos) - run_start
            while run > 15:
                acf[ZRL_SYMBOL] = acf.get(ZRL_SYMBOL, 0) + 1
                run -= 16
            sym = (run << 4) | magnitude_category(int(zz[pos]))
            acf[sym] = acf.get(sym, 0) + 1
            run_start = int(pos) + 1
        if run_start <= 63:
            acf[EOB_SYMBOL] = acf.get(EOB_SYMBOL, 0) + 1

    for mrow in range(geometry.mcu_rows):
        for mcol in range(geometry.mcus_per_row):
            if restart_interval and mcus_done and mcus_done % restart_interval == 0:
                preds = [0] * ncomp
            for ci, comp in enumerate(geometry.components):
                for v in range(comp.v_factor):
                    brow = mrow * comp.v_factor + v
                    for h in range(comp.h_factor):
                        bcol = mcol * comp.h_factor + h
                        idx = brow * comp.blocks_wide + bcol
                        count_block(ci, planes[ci][idx].reshape(-1))
            mcus_done += 1
    return dc_freqs, ac_freqs
