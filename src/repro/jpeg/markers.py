"""JFIF/JPEG marker-segment parsing and serialization (paper Section 2).

A JPEG file is a sequence of marker segments (SOI, APP0, DQT, SOF0, DHT,
optional DRI, SOS) followed by the entropy-coded scan and EOI.  This
module parses that structure into :class:`JpegImageInfo` — including the
raw entropy-coded bytes, whose length drives the paper's entropy-density
model (Eq. 3) — and provides the inverse serializers for the encoder.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

import numpy as np

from ..errors import JpegFormatError, JpegUnsupportedError
from . import constants as C
from .blocks import ImageGeometry
from .huffman import HuffmanSpec
from .quantization import QuantTable, parse_dqt_payload


@dataclass(frozen=True)
class FrameComponent:
    """One component entry of a SOF0 header."""

    component_id: int
    h_factor: int
    v_factor: int
    quant_table_id: int


@dataclass(frozen=True)
class FrameHeader:
    """Parsed SOF0 (baseline) or SOF2 (progressive) DCT header."""

    precision: int
    height: int
    width: int
    components: tuple[FrameComponent, ...]
    #: True for a SOF2 progressive frame (multi-scan entropy data).
    progressive: bool = False

    @property
    def subsampling_mode(self) -> str:
        """Infer the JFIF subsampling notation from sampling factors."""
        if len(self.components) == 1:
            return "4:4:4"  # grayscale decodes like unsubsampled
        if len(self.components) not in (3, 4):
            raise JpegUnsupportedError(
                f"{len(self.components)}-component images are unsupported"
            )
        luma = self.components[0]
        chroma = self.components[1:3]
        if any(c.h_factor != 1 or c.v_factor != 1 for c in chroma):
            raise JpegUnsupportedError(
                "chroma sampling factors other than 1x1 are unsupported"
            )
        if len(self.components) == 4:
            k = self.components[3]
            if (k.h_factor, k.v_factor) != (luma.h_factor, luma.v_factor):
                raise JpegUnsupportedError(
                    "fourth-component sampling factors must match luma"
                )
        key = (luma.h_factor, luma.v_factor)
        modes = {(1, 1): "4:4:4", (2, 1): "4:2:2", (2, 2): "4:2:0",
                 (4, 1): "4:1:1", (1, 2): "4:4:0"}
        if key not in modes:
            raise JpegUnsupportedError(f"luma sampling factors {key} unsupported")
        return modes[key]


@dataclass(frozen=True)
class ScanComponent:
    """One component entry of a SOS header."""

    component_id: int
    dc_table_id: int
    ac_table_id: int


@dataclass(frozen=True)
class ScanHeader:
    """Parsed SOS header.

    Baseline scans carry the fixed (Ss, Se, Ah, Al) = (0, 63, 0, 0);
    progressive scans select a spectral band [Ss, Se] and a successive
    approximation stage (Ah = previous point transform, Al = current).
    """

    components: tuple[ScanComponent, ...]
    ss: int = 0
    se: int = 63
    ah: int = 0
    al: int = 0

    @property
    def is_dc(self) -> bool:
        """True for a DC scan (spectral band starts at coefficient 0)."""
        return self.ss == 0

    @property
    def refining(self) -> bool:
        """True for a successive-approximation refinement pass."""
        return self.ah != 0


@dataclass(frozen=True)
class HuffmanTableDef:
    """One table from a DHT segment."""

    table_class: int  # 0 = DC, 1 = AC
    table_id: int
    spec: HuffmanSpec


@dataclass(frozen=True)
class ScanInfo:
    """One entropy-coded scan with the table state active at its SOS.

    Progressive streams may redefine Huffman tables between scans, so
    each scan snapshots the DC/AC table dictionaries as they stood when
    its SOS marker was parsed.
    """

    header: ScanHeader
    entropy: bytes
    dc_tables: "dict[int, HuffmanSpec]"
    ac_tables: "dict[int, HuffmanSpec]"
    restart_interval: int
    #: False when the stream ended mid-scan with no terminating marker
    #: (only reachable via ``parse_jpeg(..., tolerant=True)``): the
    #: entropy data runs to EOF and a decode of it is best-effort.
    terminated: bool = True


@dataclass
class JpegImageInfo:
    """Everything parsed from a baseline JPEG file.

    ``entropy_data`` holds the raw (still byte-stuffed) scan bytes; its
    length is the paper's "entropy data size" and, divided by w*h, the
    entropy density *d* of Eq. (3).
    """

    frame: FrameHeader
    scan: ScanHeader
    quant_tables: dict[int, QuantTable]
    dc_tables: dict[int, HuffmanSpec]
    ac_tables: dict[int, HuffmanSpec]
    restart_interval: int
    entropy_data: bytes
    file_size: int
    comments: list[bytes] = field(default_factory=list)
    #: Every entropy-coded scan in stream order (baseline: exactly one).
    scans: list[ScanInfo] = field(default_factory=list)
    #: Adobe APP14 color-transform code (0 = plain/CMYK, 1 = YCbCr,
    #: 2 = YCCK); None when no Adobe marker is present.
    adobe_transform: int | None = None
    #: Container faults survived by a tolerant parse (empty for strict
    #: parses, which raise instead): the salvage decode path folds
    #: these into :attr:`~repro.jpeg.decoder.DecodedImage.errors`.
    parse_errors: list[str] = field(default_factory=list)

    @property
    def width(self) -> int:
        return self.frame.width

    @property
    def height(self) -> int:
        return self.frame.height

    @property
    def progressive(self) -> bool:
        return self.frame.progressive

    @property
    def subsampling_mode(self) -> str:
        return self.frame.subsampling_mode

    @property
    def geometry(self) -> ImageGeometry:
        return ImageGeometry(self.width, self.height, self.subsampling_mode,
                             ncomponents=len(self.frame.components))

    @property
    def entropy_density(self) -> float:
        """Entropy-coded bytes per pixel — the paper's approximation uses
        file size; we expose both (see :attr:`file_density`)."""
        return len(self.entropy_data) / float(self.width * self.height)

    @property
    def file_density(self) -> float:
        """Eq. (3): d = ImageFileSize / (w * h)."""
        return self.file_size / float(self.width * self.height)


def _read_u16(data: bytes, pos: int) -> int:
    if pos + 2 > len(data):
        raise JpegFormatError("truncated length field")
    return struct.unpack_from(">H", data, pos)[0]


def parse_sof0_payload(payload: bytes,
                       progressive: bool = False) -> FrameHeader:
    """Parse the payload of a SOF0 (or, with *progressive*, SOF2) segment."""
    if len(payload) < 6:
        raise JpegFormatError("SOF0 payload too short")
    precision, height, width, ncomp = struct.unpack_from(">BHHB", payload, 0)
    if precision != 8:
        raise JpegUnsupportedError(f"{precision}-bit precision unsupported")
    if height == 0 or width == 0:
        raise JpegFormatError("zero image dimension in SOF0")
    if len(payload) != 6 + 3 * ncomp:
        raise JpegFormatError("SOF0 component list length mismatch")
    comps = []
    for i in range(ncomp):
        cid, hv, tq = struct.unpack_from(">BBB", payload, 6 + 3 * i)
        comps.append(
            FrameComponent(
                component_id=cid, h_factor=hv >> 4, v_factor=hv & 0x0F,
                quant_table_id=tq,
            )
        )
    return FrameHeader(precision=precision, height=height, width=width,
                       components=tuple(comps), progressive=progressive)


def parse_dht_payload(payload: bytes) -> list[HuffmanTableDef]:
    """Parse a DHT segment payload (may define several tables)."""
    tables: list[HuffmanTableDef] = []
    pos = 0
    while pos < len(payload):
        if pos + 17 > len(payload):
            raise JpegFormatError("truncated DHT header")
        tc_th = payload[pos]
        table_class, table_id = tc_th >> 4, tc_th & 0x0F
        if table_class > 1 or table_id > 3:
            raise JpegFormatError(f"bad DHT class/id {tc_th:#x}")
        bits = tuple(payload[pos + 1: pos + 17])
        nvals = sum(bits)
        pos += 17
        if pos + nvals > len(payload):
            raise JpegFormatError("truncated DHT values")
        values = tuple(payload[pos: pos + nvals])
        pos += nvals
        tables.append(
            HuffmanTableDef(table_class=table_class, table_id=table_id,
                            spec=HuffmanSpec(bits=bits, values=values))
        )
    return tables


def parse_sos_payload(payload: bytes,
                      progressive: bool = False) -> ScanHeader:
    """Parse a SOS header payload.

    Baseline scans must carry (Ss, Se, AhAl) = (0, 63, 0); progressive
    scans are validated against T.81 G.1: a scan covers either the DC
    coefficient alone or a pure AC band of a single component, and a
    refinement pass advances the point transform by exactly one bit.
    """
    if len(payload) < 1:
        raise JpegFormatError("empty SOS payload")
    ncomp = payload[0]
    if len(payload) != 1 + 2 * ncomp + 3:
        raise JpegFormatError("SOS payload length mismatch")
    comps = []
    for i in range(ncomp):
        cid = payload[1 + 2 * i]
        tables = payload[2 + 2 * i]
        comps.append(
            ScanComponent(component_id=cid, dc_table_id=tables >> 4,
                          ac_table_id=tables & 0x0F)
        )
    ss, se, ahal = payload[-3], payload[-2], payload[-1]
    if not progressive:
        if (ss, se, ahal) != (0, 63, 0):
            raise JpegUnsupportedError("non-baseline spectral selection in SOS")
        return ScanHeader(components=tuple(comps))
    ah, al = ahal >> 4, ahal & 0x0F
    if ss == 0:
        if se != 0:
            raise JpegFormatError(
                "progressive scan mixes DC and AC coefficients")
    else:
        if not ss <= se <= 63:
            raise JpegFormatError(
                f"bad progressive spectral band [{ss}, {se}]")
        if ncomp != 1:
            raise JpegFormatError(
                "progressive AC scans must cover exactly one component")
    if al > 13:
        raise JpegFormatError(f"point transform {al} out of range")
    if ah != 0 and ah != al + 1:
        raise JpegFormatError(
            "successive approximation must refine exactly one bit")
    return ScanHeader(components=tuple(comps), ss=ss, se=se, ah=ah, al=al)


def _find_scan_end(data: bytes, start: int,
                   tolerant: bool = False) -> int:
    """Return the index just past the entropy-coded data beginning at
    *start* (i.e. the position of the terminating non-RST marker).

    *tolerant* accepts a stream that simply ends mid-scan (truncation)
    and returns ``len(data)``; the scan is then flagged unterminated
    and a decode of it is best-effort (the salvage path)."""
    pos = start
    n = len(data)
    while pos < n - 1:
        if data[pos] == 0xFF:
            nxt = data[pos + 1]
            if nxt == 0x00 or C.is_rst(nxt):
                pos += 2
                continue
            return pos
        pos += 1
    if tolerant:
        return n
    raise JpegFormatError("entropy-coded data not terminated by a marker")


def parse_jpeg(data: bytes, tolerant: bool = False) -> JpegImageInfo:
    """Parse a baseline or progressive JFIF byte stream.

    *tolerant* parses best-effort for the salvage decode path: entropy
    data that runs to EOF without a terminating marker is accepted (the
    affected :class:`ScanInfo` is flagged unterminated), and damage to
    the container *after* the first complete scan — a corrupted DHT
    between progressive scans, a misparsing SOS — stops the parse there
    instead of raising, returning the scans already recovered with the
    fault recorded in :attr:`JpegImageInfo.parse_errors`."""
    if len(data) < 4 or data[0] != 0xFF or data[1] != C.SOI:
        raise JpegFormatError("missing SOI marker")

    pos = 2
    frame: FrameHeader | None = None
    quant: dict[int, QuantTable] = {}
    dc: dict[int, HuffmanSpec] = {}
    ac: dict[int, HuffmanSpec] = {}
    restart_interval = 0
    comments: list[bytes] = []
    scans: list[ScanInfo] = []
    adobe_transform: int | None = None
    parse_errors: list[str] = []

    while pos < len(data):
        try:
            if data[pos] != 0xFF:
                raise JpegFormatError(f"expected marker at offset {pos}")
            # skip fill bytes (0xFF padding before a marker)
            while pos < len(data) and data[pos] == 0xFF:
                pos += 1
            if pos >= len(data):
                raise JpegFormatError("truncated marker")
            marker = data[pos]
            pos += 1

            if marker == C.EOI:
                break
            if marker == C.SOI:
                raise JpegFormatError("unexpected second SOI")
            if marker in C.UNSUPPORTED_SOF or marker == C.DAC:
                name = C.SOF_MODE_NAMES.get(marker, "non-baseline mode")
                raise JpegUnsupportedError(
                    f"unsupported JPEG mode: {name} (marker 0xFF{marker:02X})"
                )
            if marker not in C.SEGMENT_MARKERS:
                raise JpegFormatError(f"unexpected marker 0xFF{marker:02X}")

            length = _read_u16(data, pos)
            if length < 2 or pos + length > len(data):
                raise JpegFormatError("bad segment length")
            payload = data[pos + 2: pos + length]
            pos += length

            if marker in (C.SOF0, C.SOF2):
                if frame is not None:
                    raise JpegFormatError("multiple SOF0 segments")
                frame = parse_sof0_payload(payload,
                                           progressive=marker == C.SOF2)
            elif marker == C.DQT:
                for t in parse_dqt_payload(payload):
                    quant[t.table_id] = t
            elif marker == C.DHT:
                for t in parse_dht_payload(payload):
                    (dc if t.table_class == 0 else ac)[t.table_id] = t.spec
            elif marker == C.DRI:
                if len(payload) != 2:
                    raise JpegFormatError("bad DRI payload")
                restart_interval = struct.unpack(">H", payload)[0]
            elif marker == C.COM:
                comments.append(payload)
            elif marker == C.APP14 and payload.startswith(b"Adobe") \
                    and len(payload) >= 12:
                adobe_transform = payload[11]
            elif marker == C.SOS:
                if frame is None:
                    raise JpegFormatError("SOS before SOF")
                if scans and not frame.progressive:
                    raise JpegUnsupportedError(
                        "multi-scan sequential JPEGs are unsupported")
                header = parse_sos_payload(payload,
                                           progressive=frame.progressive)
                end = _find_scan_end(data, pos, tolerant=tolerant)
                scans.append(ScanInfo(
                    header=header, entropy=data[pos:end],
                    dc_tables=dict(dc), ac_tables=dict(ac),
                    restart_interval=restart_interval,
                    terminated=end < len(data)))
                pos = end
            # APPn and other segments are skipped
        except (JpegFormatError, JpegUnsupportedError) as exc:
            if not (tolerant and frame is not None and scans):
                raise
            # Best-effort: container damage after the first complete
            # scan ends the parse; everything recovered so far stands.
            parse_errors.append(
                f"header parse stopped at offset {pos}: {exc}")
            break

    if frame is None:
        raise JpegFormatError("missing SOF0")
    if not scans:
        raise JpegFormatError("missing SOS / entropy data")
    for comp in frame.components:
        if comp.quant_table_id not in quant:
            raise JpegFormatError(
                f"component {comp.component_id} references missing "
                f"quant table {comp.quant_table_id}"
            )
    usable: list[ScanInfo] = []
    for si in scans:
        h = si.header
        fault = None
        for sc in h.components:
            needs_dc = h.is_dc and not h.refining
            needs_ac = h.se > 0
            if (needs_dc and sc.dc_table_id not in si.dc_tables) \
                    or (needs_ac and sc.ac_table_id not in si.ac_tables):
                fault = JpegFormatError(
                    f"scan component {sc.component_id} references missing "
                    "Huffman table"
                )
                break
        if fault is not None:
            # Tolerant mode drops this scan and everything after it
            # (later scans refine the same broken table state).
            if not tolerant or not usable:
                raise fault
            parse_errors.append(f"scan {len(usable)} dropped: {fault}")
            break
        usable.append(si)
    scans = usable

    return JpegImageInfo(
        frame=frame, scan=scans[0].header, quant_tables=quant, dc_tables=dc,
        ac_tables=ac, restart_interval=restart_interval,
        entropy_data=b"".join(si.entropy for si in scans),
        file_size=len(data), comments=comments, scans=scans,
        adobe_transform=adobe_transform, parse_errors=parse_errors,
    )


# ---------------------------------------------------------------------------
# Serializers (encoder side).
# ---------------------------------------------------------------------------

def _segment(marker: int, payload: bytes) -> bytes:
    return bytes([0xFF, marker]) + struct.pack(">H", len(payload) + 2) + payload


def build_app0_jfif() -> bytes:
    """Standard JFIF APP0 segment (version 1.1, no thumbnail)."""
    payload = b"JFIF\x00" + bytes([1, 1, 0]) + struct.pack(">HH", 1, 1) + bytes([0, 0])
    return _segment(C.APP0, payload)


def build_dqt(tables: list[QuantTable]) -> bytes:
    payload = b"".join(t.to_dqt_payload() for t in tables)
    return _segment(C.DQT, payload)


def build_sof0(width: int, height: int,
               components: list[FrameComponent],
               progressive: bool = False) -> bytes:
    payload = struct.pack(">BHHB", 8, height, width, len(components))
    for comp in components:
        payload += bytes([
            comp.component_id,
            (comp.h_factor << 4) | comp.v_factor,
            comp.quant_table_id,
        ])
    return _segment(C.SOF2 if progressive else C.SOF0, payload)


def build_app14_adobe(transform: int) -> bytes:
    """Adobe APP14 segment carrying the color-transform code."""
    payload = b"Adobe" + struct.pack(">HHHB", 100, 0, 0, transform)
    return _segment(C.APP14, payload)


def build_dht(tables: list[HuffmanTableDef]) -> bytes:
    payload = b""
    for t in tables:
        payload += bytes([(t.table_class << 4) | t.table_id])
        payload += bytes(t.spec.bits)
        payload += bytes(t.spec.values)
    return _segment(C.DHT, payload)


def build_dri(interval: int) -> bytes:
    return _segment(C.DRI, struct.pack(">H", interval))


def build_sos(components: list[ScanComponent], ss: int = 0, se: int = 63,
              ah: int = 0, al: int = 0) -> bytes:
    payload = bytes([len(components)])
    for sc in components:
        payload += bytes([sc.component_id, (sc.dc_table_id << 4) | sc.ac_table_id])
    payload += bytes([ss, se, (ah << 4) | al])
    return _segment(C.SOS, payload)


def build_com(text: bytes) -> bytes:
    return _segment(C.COM, text)
