"""Block and MCU geometry (paper Section 2).

JPEG processes 8x8 blocks grouped into minimum coded units (MCUs).  For
4:4:4 an MCU is one block per component (8x8 pixels); for 4:2:2 it is two
luma blocks plus one Cb and one Cr block (16x8 pixels); for 4:2:0 four
luma blocks plus one of each chroma (16x16 pixels).

This module computes all derived geometry from (width, height, mode) and
converts between sample planes and block batches with edge-replication
padding, fully vectorized.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

import numpy as np

from ..errors import JpegError
from .constants import BLOCK_SIZE
from .sampling import sampling_factors


def ceil_div(a: int, b: int) -> int:
    """Integer ceiling division for non-negative operands."""
    return -(-a // b)


@dataclass(frozen=True)
class ComponentGeometry:
    """Geometry of one color component within the MCU grid."""

    component_id: int          # 1 = Y, 2 = Cb, 3 = Cr (JFIF convention)
    h_factor: int              # horizontal sampling factor
    v_factor: int              # vertical sampling factor
    width: int                 # subsampled sample width (unpadded)
    height: int                # subsampled sample height (unpadded)
    blocks_wide: int           # padded width in blocks across the MCU grid
    blocks_high: int           # padded height in blocks across the MCU grid

    @property
    def padded_width(self) -> int:
        return self.blocks_wide * BLOCK_SIZE

    @property
    def padded_height(self) -> int:
        return self.blocks_high * BLOCK_SIZE

    @property
    def blocks_total(self) -> int:
        return self.blocks_wide * self.blocks_high

    @property
    def blocks_per_mcu(self) -> int:
        return self.h_factor * self.v_factor


@dataclass(frozen=True)
class ImageGeometry:
    """Full MCU-grid geometry for an image (the decoder's coordinate system)."""

    width: int
    height: int
    mode: str  # "4:4:4" | "4:2:2" | "4:2:0" | "4:1:1" | "4:4:0"
    #: Component count: 1 (grayscale), 3 (YCbCr), or 4 (YCCK/CMYK).
    #: Defaults to 3 so pickled ``(width, height, mode)`` geometry
    #: argument tuples from older workers keep constructing correctly.
    ncomponents: int = 3

    def __post_init__(self) -> None:
        if self.width <= 0 or self.height <= 0:
            raise JpegError(
                f"invalid image dimensions {self.width}x{self.height}"
            )
        if self.ncomponents not in (1, 3, 4):
            raise JpegError(
                f"unsupported component count {self.ncomponents}"
            )
        if self.ncomponents == 1 and self.mode != "4:4:4":
            raise JpegError(
                "grayscale images have no chroma to subsample; "
                "use mode '4:4:4'"
            )
        sampling_factors(self.mode)  # validates the mode string

    @cached_property
    def luma_factors(self) -> tuple[int, int]:
        return sampling_factors(self.mode)

    @property
    def mcu_width(self) -> int:
        """MCU width in pixels (8 * Hmax)."""
        return BLOCK_SIZE * self.luma_factors[0]

    @property
    def mcu_height(self) -> int:
        """MCU height in pixels (8 * Vmax) — the row-partition granularity."""
        return BLOCK_SIZE * self.luma_factors[1]

    @property
    def mcus_per_row(self) -> int:
        return ceil_div(self.width, self.mcu_width)

    @property
    def mcu_rows(self) -> int:
        return ceil_div(self.height, self.mcu_height)

    @property
    def total_mcus(self) -> int:
        return self.mcus_per_row * self.mcu_rows

    @cached_property
    def components(self) -> tuple[ComponentGeometry, ...]:
        """Component geometries: (Y,), (Y, Cb, Cr), or (Y, Cb, Cr, K).

        The fourth (K) component of Adobe YCCK/CMYK streams shares the
        luma sampling factors — black carries edge detail just like
        luminance, which is the convention Adobe encoders follow.
        """
        hmax, vmax = self.luma_factors
        y = ComponentGeometry(
            component_id=1, h_factor=hmax, v_factor=vmax,
            width=self.width, height=self.height,
            blocks_wide=self.mcus_per_row * hmax,
            blocks_high=self.mcu_rows * vmax,
        )
        if self.ncomponents == 1:
            return (y,)
        cw = ceil_div(self.width, hmax)
        ch = ceil_div(self.height, vmax)
        cb = ComponentGeometry(
            component_id=2, h_factor=1, v_factor=1,
            width=cw, height=ch,
            blocks_wide=self.mcus_per_row, blocks_high=self.mcu_rows,
        )
        cr = ComponentGeometry(
            component_id=3, h_factor=1, v_factor=1,
            width=cw, height=ch,
            blocks_wide=self.mcus_per_row, blocks_high=self.mcu_rows,
        )
        if self.ncomponents == 3:
            return y, cb, cr
        k = ComponentGeometry(
            component_id=4, h_factor=hmax, v_factor=vmax,
            width=self.width, height=self.height,
            blocks_wide=self.mcus_per_row * hmax,
            blocks_high=self.mcu_rows * vmax,
        )
        return y, cb, cr, k

    @property
    def blocks_per_mcu(self) -> int:
        """Total blocks in one MCU across all components."""
        return sum(c.blocks_per_mcu for c in self.components)

    def mcu_row_to_pixel_rows(self, mcu_row: int) -> tuple[int, int]:
        """Pixel-row span [start, stop) covered by *mcu_row* (clamped)."""
        start = mcu_row * self.mcu_height
        stop = min(start + self.mcu_height, self.height)
        return start, stop

    def pixel_rows_to_mcu_rows(self, rows: int) -> int:
        """Number of whole MCU rows needed to cover *rows* pixel rows."""
        return ceil_div(rows, self.mcu_height)


def plane_to_blocks(plane: np.ndarray, blocks_wide: int, blocks_high: int) -> np.ndarray:
    """Split a sample plane into a (n, 8, 8) block batch, row-major.

    The plane is padded to the full block grid by edge replication (the
    JPEG convention that avoids ringing at the borders).
    """
    plane = np.asarray(plane)
    h, w = plane.shape
    ph, pw = blocks_high * BLOCK_SIZE, blocks_wide * BLOCK_SIZE
    if h > ph or w > pw:
        raise JpegError(
            f"plane {h}x{w} exceeds block grid {ph}x{pw}"
        )
    if (h, w) != (ph, pw):
        plane = np.pad(plane, ((0, ph - h), (0, pw - w)), mode="edge")
    # (bh, 8, bw, 8) -> (bh, bw, 8, 8) -> (n, 8, 8); reshape keeps C order
    tiled = plane.reshape(blocks_high, BLOCK_SIZE, blocks_wide, BLOCK_SIZE)
    return tiled.transpose(0, 2, 1, 3).reshape(-1, BLOCK_SIZE, BLOCK_SIZE)


def blocks_to_plane(
    blocks: np.ndarray, blocks_wide: int, blocks_high: int,
    width: int | None = None, height: int | None = None,
) -> np.ndarray:
    """Reassemble a (n, 8, 8) block batch into a plane, cropping padding."""
    blocks = np.asarray(blocks)
    n = blocks_wide * blocks_high
    if blocks.shape[0] != n:
        raise JpegError(
            f"expected {n} blocks for a {blocks_high}x{blocks_wide} grid, "
            f"got {blocks.shape[0]}"
        )
    grid = blocks.reshape(blocks_high, blocks_wide, BLOCK_SIZE, BLOCK_SIZE)
    plane = grid.transpose(0, 2, 1, 3).reshape(
        blocks_high * BLOCK_SIZE, blocks_wide * BLOCK_SIZE
    )
    if height is not None or width is not None:
        plane = plane[: height or plane.shape[0], : width or plane.shape[1]]
    return plane


def mcu_interleave_order(geometry: ImageGeometry) -> list[tuple[int, int]]:
    """Return the scan order of blocks within one MCU as
    (component_index, block_index_within_component) pairs.

    Per the standard, components are interleaved per MCU: all of component
    0's blocks (row-major within the MCU), then component 1's, etc.
    """
    order: list[tuple[int, int]] = []
    for ci, comp in enumerate(geometry.components):
        for b in range(comp.blocks_per_mcu):
            order.append((ci, b))
    return order
