"""Baseline JPEG codec substrate (the reproduction's libjpeg-turbo analog).

Public surface:

- :func:`repro.jpeg.encode_jpeg` / :class:`repro.jpeg.EncoderSettings`
- :func:`repro.jpeg.decode_jpeg` / :class:`repro.jpeg.DecodeOptions`
- :func:`repro.jpeg.parse_jpeg` for header-only inspection
- :data:`repro.jpeg.ENTROPY_ENGINES` / the ``entropy_engine=`` knob on
  :class:`DecodeOptions` select the Huffman decode path ("fast" fused
  engine by default, "reference" per-symbol oracle)
- :func:`repro.jpeg.speculative.decode_coefficients_speculative` /
  :class:`repro.jpeg.speculative.SpeculativeReport` — speculative
  self-synchronizing parallel Huffman decode for marker-free scans
- :class:`repro.jpeg.progressive.ProgressiveDecoder` /
  :func:`repro.jpeg.progressive.encode_progressive_scans` — the
  progressive (SOF2) multi-scan coder behind ``decode_jpeg`` and
  ``EncoderSettings(progressive=True)``
- submodules for each decoding stage (bitstream, huffman, quantization,
  dct/idct, sampling, color, blocks, entropy, fast_entropy, markers)
"""

from .blocks import ImageGeometry
from .decoder import (
    DecodedImage,
    DecodeOptions,
    decode_jpeg,
    decode_jpeg_rowwise,
)
from .encoder import EncoderSettings, encode_jpeg
from .fast_entropy import (
    ENTROPY_ENGINES,
    FastEntropyDecoder,
    create_entropy_decoder,
    destuff_scan,
)
from .markers import JpegImageInfo, parse_jpeg
from .speculative import (
    SpeculativeReport,
    decode_coefficients_speculative,
    plan_chunks,
    speculative_eligible,
)

__all__ = [
    "DecodeOptions",
    "DecodedImage",
    "ENTROPY_ENGINES",
    "EncoderSettings",
    "FastEntropyDecoder",
    "ImageGeometry",
    "JpegImageInfo",
    "SpeculativeReport",
    "create_entropy_decoder",
    "decode_coefficients_speculative",
    "decode_jpeg",
    "decode_jpeg_rowwise",
    "destuff_scan",
    "encode_jpeg",
    "parse_jpeg",
    "plan_chunks",
    "speculative_eligible",
]
