"""Baseline JPEG codec substrate (the reproduction's libjpeg-turbo analog).

Public surface:

- :func:`repro.jpeg.encode_jpeg` / :class:`repro.jpeg.EncoderSettings`
- :func:`repro.jpeg.decode_jpeg` / :class:`repro.jpeg.DecodeOptions`
- :func:`repro.jpeg.parse_jpeg` for header-only inspection
- submodules for each decoding stage (bitstream, huffman, quantization,
  dct/idct, sampling, color, blocks, entropy, markers)
"""

from .blocks import ImageGeometry
from .decoder import (
    DecodedImage,
    DecodeOptions,
    decode_jpeg,
    decode_jpeg_rowwise,
)
from .encoder import EncoderSettings, encode_jpeg
from .markers import JpegImageInfo, parse_jpeg

__all__ = [
    "DecodeOptions",
    "DecodedImage",
    "EncoderSettings",
    "ImageGeometry",
    "JpegImageInfo",
    "decode_jpeg",
    "decode_jpeg_rowwise",
    "encode_jpeg",
    "parse_jpeg",
]
