"""Inverse DCT implementations (paper Section 4.1).

Three interchangeable implementations, mirroring libjpeg's pluggable
IDCT methods:

``idct_2d_reference``
    Direct evaluation of the paper's Eq. (1) column pass and Eq. (2) row
    pass — the correctness oracle.

``idct_2d_blocks``
    Vectorized separable transform (``C.T @ X @ C``) over block batches —
    the production CPU path ("SIMD mode" analog).

``idct_2d_aan``
    The AAN fast scaled IDCT (Arai/Agui/Nakajima, reference [26] in the
    paper) exactly as structured in libjpeg's ``jidctflt.c``: dequantized
    coefficients are pre-scaled by the AAN factors, then a 5-multiply
    1D pass runs over columns and rows.  Vectorized over the batch
    dimension, so the flowgraph code below operates on whole arrays.

All functions accept (n, 8, 8) coefficient batches and return float64
sample batches *without* level shift or clamping; see
:func:`samples_from_idct` for the final stage.
"""

from __future__ import annotations

import numpy as np

from .constants import BLOCK_SIZE, LEVEL_SHIFT, MAX_SAMPLE
from .dct import dct_matrix

_C = dct_matrix()


def idct_1d_reference(coeffs: np.ndarray) -> np.ndarray:
    """1D IDCT of the paper's Eq. (1)/(2), on the last axis.

    ``f(x) = sum_u C_u F(u) cos((2x+1) u pi / 2N)`` with C_0 = 1/sqrt(2),
    C_u = 1 otherwise.  Note the paper's normalization omits the global
    sqrt(2/N); we include it so that a round trip with the orthonormal
    forward transform is the identity.
    """
    n = coeffs.shape[-1]
    u = np.arange(n)
    x = np.arange(n)
    cu = np.where(u == 0, 1.0 / np.sqrt(2.0), 1.0)
    basis = np.cos((2 * x[:, None] + 1) * u[None, :] * np.pi / (2 * n))
    return np.sqrt(2.0 / n) * (coeffs * cu) @ basis.T


def idct_2d_reference(block: np.ndarray) -> np.ndarray:
    """2D IDCT of one block: column pass (Eq. 1) then row pass (Eq. 2)."""
    block = np.asarray(block, dtype=np.float64)
    cols = idct_1d_reference(block.T).T   # Eq. (1): IDCT down each column
    return idct_1d_reference(cols)        # Eq. (2): IDCT along each row


def idct_2d_blocks(blocks: np.ndarray) -> np.ndarray:
    """Vectorized separable IDCT over (n, 8, 8) batches: C.T @ X @ C."""
    blocks = np.asarray(blocks, dtype=np.float64)
    return np.einsum("xu,nuv,yv->nxy", _C.T, blocks, _C.T, optimize=True)


# ---------------------------------------------------------------------------
# AAN fast scaled IDCT (jidctflt.c structure, vectorized over batches).
# ---------------------------------------------------------------------------

def aan_scale_factors() -> np.ndarray:
    """Per-coefficient AAN pre-scale matrix ``s[u] * s[v] / 8``.

    libjpeg folds these into the dequantization table; we expose them so
    the GPU IDCT kernel and the CPU path share one definition.
    The 1D factors are ``s[0] = 1``, ``s[k] = cos(k pi / 16) * sqrt(2)``.
    """
    k = np.arange(BLOCK_SIZE)
    s = np.cos(k * np.pi / 16.0) * np.sqrt(2.0)
    s[0] = 1.0
    return np.outer(s, s) / 8.0


_AAN_SCALE = aan_scale_factors()

_SQRT2 = 1.414213562
_C2X2 = 1.847759065      # 2 * cos(pi/8)
_C2MC6 = 1.082392200     # 2 * (cos(pi/8) - cos(3pi/8))
_NC2PC6 = -2.613125930   # -2 * (cos(pi/8) + cos(3pi/8))


def _aan_pass(data: np.ndarray) -> np.ndarray:
    """One AAN 1D IDCT pass along axis -2 of an (n, 8, 8) batch.

    Operating along axis -2 means this is the *column pass*; callers
    transpose around it for the row pass.  Pure ndarray arithmetic so a
    single call handles every column of every block at once.
    """
    in0, in1, in2, in3, in4, in5, in6, in7 = (data[..., i, :] for i in range(8))

    # even part (phases 3, 5-3, 2)
    tmp10 = in0 + in4
    tmp11 = in0 - in4
    tmp13 = in2 + in6
    tmp12 = (in2 - in6) * _SQRT2 - tmp13
    e0 = tmp10 + tmp13
    e3 = tmp10 - tmp13
    e1 = tmp11 + tmp12
    e2 = tmp11 - tmp12

    # odd part (phases 6, 5, 2)
    z13 = in5 + in3
    z10 = in5 - in3
    z11 = in1 + in7
    z12 = in1 - in7
    o7 = z11 + z13
    t11 = (z11 - z13) * _SQRT2
    z5 = (z10 + z12) * _C2X2
    t10 = _C2MC6 * z12 - z5
    t12 = _NC2PC6 * z10 + z5
    o6 = t12 - o7
    o5 = t11 - o6
    o4 = t10 + o5

    out = np.empty_like(data)
    out[..., 0, :] = e0 + o7
    out[..., 7, :] = e0 - o7
    out[..., 1, :] = e1 + o6
    out[..., 6, :] = e1 - o6
    out[..., 2, :] = e2 + o5
    out[..., 5, :] = e2 - o5
    out[..., 4, :] = e3 + o4
    out[..., 3, :] = e3 - o4
    return out


def idct_2d_aan(blocks: np.ndarray) -> np.ndarray:
    """AAN fast scaled IDCT over an (n, 8, 8) coefficient batch.

    Accepts *unscaled* dequantized coefficients; the AAN pre-scale is
    applied here.  Includes the sqrt(8)-per-axis normalization difference
    against the orthonormal convention, so results match
    :func:`idct_2d_blocks` to float precision.
    """
    blocks = np.asarray(blocks, dtype=np.float64)
    scaled = blocks * _AAN_SCALE  # broadcast over the batch axis
    cols = _aan_pass(scaled)                       # column pass, Eq. (1)
    rows = _aan_pass(cols.swapaxes(-1, -2)).swapaxes(-1, -2)  # row pass, Eq. (2)
    return rows


def samples_from_idct(spatial: np.ndarray) -> np.ndarray:
    """Level-shift and clamp IDCT output to uint8 samples."""
    out = np.rint(spatial + LEVEL_SHIFT)
    return np.clip(out, 0, MAX_SAMPLE).astype(np.uint8)
