"""Reference sequential JPEG decoder (the "libjpeg" baseline).

Mirrors the 2-tier controller structure of libjpeg-turbo (paper Figure 2):
a *coefficient controller* owns entropy decoding + dequantization + IDCT,
and a *postprocessing controller* owns upsampling + color conversion.
Both operate over the whole-image buffers introduced by the
re-engineering step (paper Section 3), while row-granular access remains
available for the legacy row-by-row execution style.

This module is the correctness oracle for every parallel execution mode:
all executors must produce bit-identical RGB output to
:func:`decode_jpeg`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter
from typing import Callable

import numpy as np

from ..errors import JpegError, JpegUnsupportedError
from .blocks import ImageGeometry, blocks_to_plane
from .color import (cmyk_inverted_to_rgb, gray_to_rgb, ycbcr_to_rgb_float,
                    ycck_to_rgb)
from .entropy import CoefficientBuffers, ComponentTables
from .fast_entropy import create_entropy_decoder
from .idct import idct_2d_aan, idct_2d_blocks, samples_from_idct
from .idct_int import idct_2d_islow
from .markers import JpegImageInfo, parse_jpeg
from .progressive import ProgressiveDecoder
from .quantization import dequantize_blocks
from .sampling import upsample_plane

#: Pluggable IDCT methods, mirroring libjpeg's jpeg_idct_* selection
#: ("aan" = jidctflt, "islow" = jidctint, "matrix" = orthonormal oracle).
IDCT_METHODS = {
    "aan": idct_2d_aan,
    "matrix": idct_2d_blocks,
    "islow": idct_2d_islow,
}


@dataclass
class DecodeOptions:
    """Decoder knobs (subset of libjpeg's djpeg options).

    ``entropy_engine`` selects the Huffman decode path: ``"fast"`` (the
    fused-table engine of :mod:`repro.jpeg.fast_entropy`, default) or
    ``"reference"`` (the historical per-symbol oracle) — both produce
    bit-identical coefficients.

    ``salvage`` turns hostile-input failures into best-effort output:
    instead of raising on a corrupt scan, the decoder keeps every
    coefficient decoded before the failure, renders the image anyway
    (undeocded blocks stay zero — mid-gray), and reports the damage in
    :attr:`DecodedImage.error_map` / :attr:`DecodedImage.errors`.

    ``stage_hook``, when set, is called as ``hook(stage, t0, t1)`` with
    ``perf_counter`` bounds at each pipeline stage boundary ("parse",
    "entropy", "idct" — dequantize included — "upsample", "color").
    This is the tracing tap of :mod:`repro.service.obs`; it is only
    ever set in-process (never pickled) and costs a single ``None``
    check per stage when unset.
    """

    idct_method: str = "aan"
    fancy_upsampling: bool = True
    entropy_engine: str = "fast"
    salvage: bool = False
    stage_hook: Callable[[str, float, float], None] | None = field(
        default=None, repr=False, compare=False)


@dataclass
class DecodedImage:
    """Decoder output: pixels plus the metadata the partitioner consumes.

    ``error_map`` is only populated by salvage mode: a boolean
    ``(mcu_rows, mcus_per_row)`` grid, True where decoding failed (the
    failure point and everything after it — entropy state is lost from
    the first bad symbol onward).  ``errors`` lists the corresponding
    canonical error messages, one per failed scan.
    """

    rgb: np.ndarray                 # (h, w, 3) uint8
    info: JpegImageInfo
    coefficients: CoefficientBuffers | None = None
    row_byte_offsets: list[int] = field(default_factory=list)
    error_map: np.ndarray | None = None
    errors: list[str] = field(default_factory=list)

    @property
    def width(self) -> int:
        return self.info.width

    @property
    def height(self) -> int:
        return self.info.height

    @property
    def salvaged(self) -> bool:
        """True when salvage mode recovered from at least one error."""
        return bool(self.errors)


def component_tables_from_info(info: JpegImageInfo) -> list[ComponentTables]:
    """Resolve the scan's per-component Huffman table pairs."""
    tables = []
    for sc in info.scan.components:
        tables.append(
            ComponentTables(
                dc=info.dc_tables[sc.dc_table_id],
                ac=info.ac_tables[sc.ac_table_id],
            )
        )
    return tables


def quant_tables_from_info(info: JpegImageInfo) -> list[np.ndarray]:
    """Per-component quantization tables in frame-component order."""
    return [
        info.quant_tables[fc.quant_table_id].values
        for fc in info.frame.components
    ]


class CoefficientController:
    """Tier 1: entropy decode + dequantize + IDCT, over MCU-row spans."""

    def __init__(self, info: JpegImageInfo, options: DecodeOptions) -> None:
        if info.progressive:
            raise JpegUnsupportedError(
                "progressive streams use the progressive decode path"
            )
        self.info = info
        self.geometry = info.geometry
        self.options = options
        self._idct = IDCT_METHODS[options.idct_method]
        self._quants = quant_tables_from_info(info)
        self.entropy = create_entropy_decoder(
            options.entropy_engine,
            self.geometry,
            component_tables_from_info(info),
            info.restart_interval,
        )
        self.entropy.start(info.entropy_data)

    def decode_rows(self, nrows: int) -> int:
        """Entropy-decode *nrows* more MCU rows; return total rows done."""
        return self.entropy.decode_mcu_rows(nrows)

    def idct_rows(self, mcu_row_start: int, mcu_row_stop: int) -> list[np.ndarray]:
        """Dequantize + IDCT the span; returns per-component sample planes
        (padded to the block grid within the span)."""
        span = self.entropy.coefficients.rows_slice(mcu_row_start, mcu_row_stop)
        planes = []
        nrows = mcu_row_stop - mcu_row_start
        for comp, coefs, quant in zip(
            self.geometry.components, span.planes, self._quants
        ):
            deq = dequantize_blocks(coefs, quant)
            spatial = self._idct(deq)
            samples = samples_from_idct(spatial)
            planes.append(
                blocks_to_plane(
                    samples, comp.blocks_wide, nrows * comp.v_factor
                )
            )
        return planes


class PostprocessingController:
    """Tier 2: upsampling + color conversion over pixel-row spans.

    Handles every supported component layout: 1 (grayscale), 3 (JFIF
    YCbCr), 4 (Adobe YCCK when the APP14 transform flag is 2, inverted
    CMYK otherwise).
    """

    def __init__(self, geometry: ImageGeometry, options: DecodeOptions,
                 adobe_transform: int | None = None) -> None:
        self.geometry = geometry
        self.options = options
        self.adobe_transform = adobe_transform

    def process(self, planes: list[np.ndarray],
                out_width: int, out_height: int) -> np.ndarray:
        """Upsample chroma to luma resolution, convert, crop to size."""
        hook = self.options.stage_hook
        mode = self.geometry.mode
        y = planes[0][:out_height, :out_width]
        if len(planes) == 1:
            t0 = perf_counter() if hook else 0.0
            rgb = gray_to_rgb(y)
            if hook:
                hook("color", t0, perf_counter())
            return rgb
        t0 = perf_counter() if hook else 0.0
        cb = upsample_plane(planes[1], mode, self.options.fancy_upsampling)
        cr = upsample_plane(planes[2], mode, self.options.fancy_upsampling)
        cb = cb[:out_height, :out_width]
        cr = cr[:out_height, :out_width]
        if hook:
            hook("upsample", t0, perf_counter())
        t0 = perf_counter() if hook else 0.0
        if len(planes) == 3:
            rgb = ycbcr_to_rgb_float(y, cb, cr)
        else:
            k = planes[3][:out_height, :out_width]
            if self.adobe_transform == 2:
                rgb = ycck_to_rgb(y, cb, cr, k)
            else:
                rgb = cmyk_inverted_to_rgb(y, cb, cr, k)
        if hook:
            hook("color", t0, perf_counter())
        return rgb


def pixels_from_coefficients(
    info: JpegImageInfo,
    coefficients: CoefficientBuffers,
    options: DecodeOptions | None = None,
) -> np.ndarray:
    """Run the pixel stages over already-decoded coefficients.

    Dequantize + IDCT + upsample + color-convert — everything downstream
    of entropy decoding, producing the same RGB as :func:`decode_jpeg`.
    This is the merge point for callers that obtained the coefficient
    planes some other way (e.g. the batched decode service after
    restart-segment-parallel entropy decoding).
    """
    options = options or DecodeOptions()
    hook = options.stage_hook
    geo = info.geometry
    idct = IDCT_METHODS[options.idct_method]
    quants = quant_tables_from_info(info)
    planes = []
    t0 = perf_counter() if hook else 0.0
    for comp, coefs, quant in zip(geo.components, coefficients.planes, quants):
        deq = dequantize_blocks(coefs, quant)
        samples = samples_from_idct(idct(deq))
        planes.append(
            blocks_to_plane(samples, comp.blocks_wide,
                            geo.mcu_rows * comp.v_factor)
        )
    if hook:
        hook("idct", t0, perf_counter())
    post = PostprocessingController(geo, options, info.adobe_transform)
    return post.process(planes, info.width, info.height)


def _decode_progressive(info: JpegImageInfo,
                        options: DecodeOptions) -> DecodedImage:
    """Whole-image progressive decode, optionally salvaging bad scans."""
    dec = ProgressiveDecoder(info)
    geo = dec.geometry
    hook = options.stage_hook
    t_entropy = perf_counter() if hook else 0.0
    errors: list[str] = list(info.parse_errors)
    error_map = None
    if options.salvage:
        error_map = np.zeros((geo.mcu_rows, geo.mcus_per_row), dtype=bool)
        for si in info.scans:
            dec.units_done = 0
            try:
                dec.decode_scan(si)
            except JpegError as exc:
                errors.append(f"scan {dec.scans_done}: {exc}")
                row = dec.failed_mcu_row(si, dec.units_done)
                error_map[row:, :] = True
            else:
                if not si.terminated:
                    # The stream ended mid-scan but the zero-fed tail
                    # happened to decode (EOB-shaped padding).  The
                    # coefficients are only approximate from here on —
                    # record the fault; a truncated refinement scan
                    # degrades gracefully, so no region is condemned.
                    errors.append(f"scan {dec.scans_done}: entropy-coded "
                                  "data not terminated by a marker")
            dec.scans_done += 1
    else:
        dec.decode()
    if hook:
        hook("entropy", t_entropy, perf_counter())
    rgb = pixels_from_coefficients(info, dec.coefficients, options)
    return DecodedImage(
        rgb=rgb,
        info=info,
        coefficients=dec.coefficients,
        error_map=error_map,
        errors=errors,
    )


def _decode_baseline_salvage(info: JpegImageInfo,
                             options: DecodeOptions) -> DecodedImage:
    """Row-at-a-time baseline decode keeping everything before a failure."""
    coef = CoefficientController(info, options)
    geo = coef.geometry
    hook = options.stage_hook
    t_entropy = perf_counter() if hook else 0.0
    error_map = np.zeros((geo.mcu_rows, geo.mcus_per_row), dtype=bool)
    errors: list[str] = list(info.parse_errors)
    try:
        while not coef.entropy.finished:
            coef.decode_rows(1)
    except JpegError as exc:
        errors.append(str(exc))
        error_map[coef.entropy.rows_decoded:, :] = True
    else:
        if not info.scans[-1].terminated:
            # The truncated tail zero-fed through (EOB-shaped padding):
            # every row whose entropy ran to the cut is reconstructed
            # from padding, not data.  Condemn from the first such row.
            errors.append("entropy-coded data not terminated by a marker")
            offsets = coef.entropy.row_byte_offsets
            end = len(info.entropy_data)
            first_bad = geo.mcu_rows - 1
            for i in range(1, len(offsets)):
                if offsets[i] >= end:
                    first_bad = min(first_bad, i - 1)
                    break
            error_map[first_bad:, :] = True
    if hook:
        hook("entropy", t_entropy, perf_counter())
    rgb = pixels_from_coefficients(info, coef.entropy.coefficients, options)
    return DecodedImage(
        rgb=rgb,
        info=info,
        coefficients=coef.entropy.coefficients,
        row_byte_offsets=coef.entropy.row_byte_offsets,
        error_map=error_map,
        errors=errors,
    )


def decode_jpeg(data: bytes, options: DecodeOptions | None = None) -> DecodedImage:
    """Decode JFIF bytes to RGB — whole image, sequential.

    Baseline (SOF0) streams run the two-tier controller pipeline;
    progressive (SOF2) streams accumulate all scans through
    :class:`~repro.jpeg.progressive.ProgressiveDecoder` before the
    shared pixel stages.
    """
    options = options or DecodeOptions()
    hook = options.stage_hook
    # Salvage parses tolerantly: a stream truncated mid-scan still
    # yields headers plus the partial entropy data to recover from.
    t0 = perf_counter() if hook else 0.0
    info = parse_jpeg(data, tolerant=options.salvage)
    if hook:
        hook("parse", t0, perf_counter())
    if info.progressive:
        return _decode_progressive(info, options)
    if options.salvage:
        return _decode_baseline_salvage(info, options)
    coef = CoefficientController(info, options)

    geo = coef.geometry
    t0 = perf_counter() if hook else 0.0
    coef.decode_rows(geo.mcu_rows)
    if hook:
        hook("entropy", t0, perf_counter())
    rgb = pixels_from_coefficients(info, coef.entropy.coefficients, options)
    return DecodedImage(
        rgb=rgb,
        info=info,
        coefficients=coef.entropy.coefficients,
        row_byte_offsets=coef.entropy.row_byte_offsets,
    )


def decode_jpeg_rowwise(data: bytes, options: DecodeOptions | None = None,
                        rows_per_step: int = 1) -> DecodedImage:
    """Decode in MCU-row steps, the legacy libjpeg-turbo execution style.

    Produces output identical to :func:`decode_jpeg`; exists to model (and
    test) the row-granular path whose extra dependencies the paper's
    Section 3 identifies as the obstacle to parallelism.
    """
    options = options or DecodeOptions()
    info = parse_jpeg(data)
    if info.progressive:
        raise JpegUnsupportedError(
            "progressive JPEGs decode whole-image; use decode_jpeg")
    coef = CoefficientController(info, options)
    post = PostprocessingController(coef.geometry, options,
                                    info.adobe_transform)
    geo = coef.geometry

    rgb = np.empty((info.height, info.width, 3), dtype=np.uint8)
    done = 0
    while done < geo.mcu_rows:
        step = min(rows_per_step, geo.mcu_rows - done)
        coef.decode_rows(step)
        planes = coef.idct_rows(done, done + step)
        y0, y1 = geo.mcu_row_to_pixel_rows(done)[0], \
            geo.mcu_row_to_pixel_rows(done + step - 1)[1]
        h_span = y1 - y0
        rgb[y0:y1] = post.process(planes, info.width, h_span)
        done += step
    return DecodedImage(
        rgb=rgb,
        info=info,
        coefficients=coef.entropy.coefficients,
        row_byte_offsets=coef.entropy.row_byte_offsets,
    )
