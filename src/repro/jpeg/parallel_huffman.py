"""Restart-marker-based parallel Huffman decoding (extension).

The paper keeps Huffman decoding strictly sequential because standard
JPEG code words are not self-synchronizing (Section 1, citing Klein &
Wiseman).  There is one standards-compliant escape hatch it leaves on
the table: **restart markers**.  When the encoder emits a DRI interval,
the scan splits into byte-aligned, independently decodable segments
(DC predictions reset at each RSTn) — so a multi-core CPU can entropy-
decode segments in parallel.

This module implements that extension:

- :func:`split_restart_segments` scans the entropy data for RSTn
  boundaries and returns the byte spans;
- :func:`decode_segment_coefficients` / :func:`scatter_segment` decode
  one segment in isolation and place its blocks into the global grid —
  the unit of work :mod:`repro.service` fans out across a real worker
  pool;
- :class:`ParallelEntropyDecoder` decodes every segment independently
  (results are bit-identical to the sequential decoder — tested) and
  models the multi-core schedule: segments are greedily assigned to
  ``cores`` workers (LPT order), giving the simulated speedup;

The executors do not use it by default — the paper's pipeline relies on
*in-order* row availability, which parallel segment decoding breaks —
but the A7 ablation benchmark quantifies the opportunity, and the
batched decode service (:mod:`repro.service`) exploits it for real
wall-clock parallelism across processes.

Marker-free scans get a third fan-out mode: speculative
self-synchronizing decode (:mod:`repro.jpeg.speculative`), wrapped here
by :class:`SpeculativeEntropyDecoder` with the same modeled-schedule
reporting as :class:`ParallelEntropyDecoder`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import EntropyError
from .blocks import ImageGeometry
from .entropy import CoefficientBuffers, ComponentTables
from .fast_entropy import create_entropy_decoder, destuff_scan


@dataclass(frozen=True)
class RestartSegment:
    """One independently decodable span of the entropy-coded data."""

    index: int
    byte_start: int       # offset of the segment's first payload byte
    byte_stop: int        # offset just past the segment (before its RSTn)
    mcu_start: int        # first MCU index covered
    mcu_count: int        # MCUs in this segment

    @property
    def nbytes(self) -> int:
        """Compressed size of the segment in bytes (markers excluded)."""
        return self.byte_stop - self.byte_start


def split_restart_segments(entropy_data: bytes, total_mcus: int,
                           restart_interval: int) -> list[RestartSegment]:
    """Locate RSTn boundaries and derive the per-segment MCU spans.

    Reuses the fast engine's destuffing prescan
    (:func:`repro.jpeg.fast_entropy.destuff_scan`) instead of a
    duplicate byte-at-a-time 0xFF scan: the prescan's marker index
    already holds the original-stream offset of every RSTn pair.
    """
    if restart_interval <= 0:
        raise EntropyError("parallel Huffman decoding needs a DRI interval")
    boundaries = destuff_scan(entropy_data).marker_orig_offsets

    segments: list[RestartSegment] = []
    start = 0
    mcu_start = 0
    for i, b in enumerate(boundaries):
        segments.append(RestartSegment(
            index=i, byte_start=start, byte_stop=b,
            mcu_start=mcu_start, mcu_count=restart_interval))
        start = b + 2
        mcu_start += restart_interval
    last_count = total_mcus - mcu_start
    if last_count <= 0:
        raise EntropyError("restart markers exceed the MCU count")
    segments.append(RestartSegment(
        index=len(boundaries), byte_start=start, byte_stop=len(entropy_data),
        mcu_start=mcu_start, mcu_count=last_count))
    return segments


def decode_segment_coefficients(
    seg: RestartSegment,
    segment_bytes: bytes,
    geometry: ImageGeometry,
    tables: list[ComponentTables],
    entropy_engine: str = "fast",
) -> list[np.ndarray]:
    """Entropy-decode one restart segment in complete isolation.

    Restart segments are byte-aligned and reset their DC predictions, so
    each one decodes with a fresh sequential decoder over a *virtual*
    1-MCU-row image covering exactly its MCUs (the scan order inside an
    MCU is position-independent).  Returns the virtual image's
    coefficient planes, ready for :func:`scatter_segment`.

    This function is self-contained and picklable-argument-only on
    purpose: the batched decode service ships it to process-pool
    workers.
    """
    virt = ImageGeometry(seg.mcu_count * geometry.mcu_width,
                         geometry.mcu_height, geometry.mode)
    vdec = create_entropy_decoder(entropy_engine, virt, tables,
                                  restart_interval=0)
    vdec.start(segment_bytes)
    vdec.decode_mcu_rows(1)
    return vdec.coefficients.planes


def segment_plane_nbytes(seg: RestartSegment,
                         geometry: ImageGeometry) -> list[int]:
    """Byte sizes of the planes :func:`decode_segment_coefficients`
    returns for *seg*, in order.

    Derived from the same virtual single-MCU-row geometry the decode
    uses, so a caller sizing a transport buffer (the batched service's
    shared-memory lease) can never drift out of step with the actual
    payload layout: one int16 8x8 block per ``blocks_total`` entry.
    """
    virt = ImageGeometry(seg.mcu_count * geometry.mcu_width,
                         geometry.mcu_height, geometry.mode)
    block_nbytes = 8 * 8 * np.dtype(np.int16).itemsize
    return [c.blocks_total * block_nbytes for c in virt.components]


def scatter_segment(
    seg: RestartSegment,
    planes: list[np.ndarray],
    geometry: ImageGeometry,
    out: CoefficientBuffers,
) -> None:
    """Place one segment's virtual-image *planes* into the global grid.

    Virtual MCU *j* maps to global MCU ``seg.mcu_start + j``; each
    component block is copied to its row-major position in *out*.
    """
    virt = ImageGeometry(seg.mcu_count * geometry.mcu_width,
                         geometry.mcu_height, geometry.mode)
    for ci, comp in enumerate(geometry.components):
        vcomp = virt.components[ci]
        src = planes[ci]
        dst = out.planes[ci]
        for j in range(seg.mcu_count):
            g = seg.mcu_start + j
            grow, gcol = divmod(g, geometry.mcus_per_row)
            for v in range(comp.v_factor):
                for h in range(comp.h_factor):
                    sidx = v * vcomp.blocks_wide + j * comp.h_factor + h
                    didx = ((grow * comp.v_factor + v) * comp.blocks_wide
                            + gcol * comp.h_factor + h)
                    dst[didx] = src[sidx]


def _lpt_makespan(work: list[float], cores: int) -> float:
    """Longest-processing-time-first schedule length on *cores* workers."""
    loads = [0.0] * max(1, cores)
    for w in sorted(work, reverse=True):
        i = loads.index(min(loads))
        loads[i] += w
    return max(loads)


@dataclass
class ParallelDecodeResult:
    """Output of a parallel entropy decode."""

    coefficients: CoefficientBuffers
    segments: list[RestartSegment]
    sequential_us: float      # simulated single-core time
    parallel_us: float        # simulated LPT makespan on `cores`
    cores: int

    @property
    def speedup(self) -> float:
        """Modeled multi-core speedup (sequential time / LPT makespan)."""
        return self.sequential_us / self.parallel_us


class ParallelEntropyDecoder:
    """Decode restart segments independently; merge into one buffer."""

    def __init__(self, geometry: ImageGeometry,
                 tables: list[ComponentTables],
                 restart_interval: int,
                 entropy_engine: str = "fast") -> None:
        """Validate the DRI interval and bind per-segment decode inputs."""
        if restart_interval <= 0:
            raise EntropyError("parallel Huffman decoding needs a DRI interval")
        self.geometry = geometry
        self.tables = tables
        self.restart_interval = restart_interval
        self.entropy_engine = entropy_engine

    def _decode_segment(self, seg: RestartSegment, data: bytes,
                        out: CoefficientBuffers) -> None:
        """Decode one segment into the right slice of *out*.

        Segments start and end on MCU-row boundaries only if the
        interval divides the row width, so the segment is decoded into a
        scratch buffer in scan order and then scattered into the global
        block grid.
        """
        planes = decode_segment_coefficients(
            seg, data[seg.byte_start: seg.byte_stop], self.geometry,
            self.tables, self.entropy_engine)
        scatter_segment(seg, planes, self.geometry, out)

    def decode(self, entropy_data: bytes, cores: int = 4,
               ns_per_byte: float = 13.0,
               ns_per_mcu: float = 70.0) -> ParallelDecodeResult:
        """Decode all segments; model the multi-core schedule.

        ``ns_per_byte``/``ns_per_mcu`` mirror the sequential Huffman cost
        model (Figure 7's slope and per-pixel base re-expressed per MCU).
        """
        geo = self.geometry
        segments = split_restart_segments(
            entropy_data, geo.total_mcus, self.restart_interval)
        out = CoefficientBuffers.empty(geo)
        for seg in segments:
            self._decode_segment(seg, entropy_data, out)
        work = [
            (seg.nbytes * ns_per_byte + seg.mcu_count * ns_per_mcu) / 1e3
            for seg in segments
        ]
        return ParallelDecodeResult(
            coefficients=out, segments=segments,
            sequential_us=float(sum(work)),
            parallel_us=_lpt_makespan(work, cores),
            cores=cores,
        )


@dataclass
class SpeculativeDecodeResult:
    """Output of a speculative (marker-free) parallel entropy decode."""

    coefficients: CoefficientBuffers
    report: "SpeculativeReport"
    chunks: list["SpeculativeChunk"]
    sequential_us: float      # simulated single-core time
    parallel_us: float        # simulated LPT makespan + serial repairs
    cores: int

    @property
    def speedup(self) -> float:
        """Modeled multi-core speedup (sequential time / LPT makespan)."""
        return self.sequential_us / self.parallel_us


class SpeculativeEntropyDecoder:
    """Marker-free fan-out: chunk, decode optimistically, stitch.

    The restart-segment decoder above needs a DRI interval; this one
    does not — it guesses chunk boundaries and relies on Huffman
    self-synchronization (:mod:`repro.jpeg.speculative`).  The modeled
    schedule mirrors :class:`ParallelEntropyDecoder`: chunk costs are
    LPT-packed onto ``cores`` workers, and every misspeculated chunk
    adds its span again as a serial repair on the critical path.
    """

    def __init__(self, geometry: ImageGeometry,
                 tables: list[ComponentTables],
                 chunk_count: int | None = None,
                 overlap: int | None = None) -> None:
        """Bind decode inputs; *chunk_count* None = one chunk per core."""
        self.geometry = geometry
        self.tables = tables
        self.chunk_count = chunk_count
        self.overlap = overlap if overlap is not None else DEFAULT_OVERLAP_BYTES

    def decode(self, entropy_data: bytes, cores: int = 4,
               ns_per_byte: float = 13.0,
               ns_per_mcu: float = 70.0,
               map_fn=map) -> SpeculativeDecodeResult:
        """Decode the whole scan speculatively; model the schedule.

        ``ns_per_byte``/``ns_per_mcu`` mirror the sequential Huffman
        cost model (Figure 7's slope and per-pixel base re-expressed
        per MCU), applied to each chunk's shipped window.
        """
        geo = self.geometry
        scan = destuff_scan(entropy_data)
        n_chunks = self.chunk_count if self.chunk_count else max(1, cores)
        chunks = plan_chunks(len(scan.payload), n_chunks, self.overlap)
        geo_args = (geo.width, geo.height, geo.mode)
        payload = scan.payload
        tasks = [
            (c, payload[c.start:c.slice_stop], geo_args, self.tables,
             "fast", scan.terminator if c.slice_stop == len(payload)
             else None)
            for c in chunks
        ]
        traces = list(map_fn(_decode_chunk_star, tasks))
        out, report = stitch_chunks(
            traces, chunks, geo,
            repair=make_repairer(scan, geo, self.tables))
        mcus_per_chunk = geo.total_mcus / len(chunks)
        work = [
            ((c.window_stop - c.start) * ns_per_byte
             + mcus_per_chunk * ns_per_mcu) / 1e3
            for c in chunks
        ]
        sequential_us = (len(payload) * ns_per_byte
                         + geo.total_mcus * ns_per_mcu) / 1e3
        parallel_us = _lpt_makespan(work, cores)
        if out is None:
            # Whole-scan fallback: the sequential decode IS the path.
            parallel_us = parallel_us + sequential_us
            out = _sequential_oracle(scan, geo, self.tables, 0)
        else:
            parallel_us += sum(work[k] for k in report.misspeculated)
        return SpeculativeDecodeResult(
            coefficients=out, report=report, chunks=chunks,
            sequential_us=sequential_us, parallel_us=parallel_us,
            cores=cores)


# Late imports keep module load order simple: speculative.py imports
# nothing from this module.
from .speculative import (  # noqa: E402
    DEFAULT_OVERLAP_BYTES,
    SpeculativeChunk,
    SpeculativeReport,
    _decode_chunk_star,
    _sequential as _sequential_oracle,
    make_repairer,
    plan_chunks,
    stitch_chunks,
)
