"""Speculative self-synchronizing parallel Huffman decode (extension).

Restart-marker fan-out (:mod:`repro.jpeg.parallel_huffman`) only helps
images whose encoder emitted DRI segments; a marker-free scan — the
common case in the wild — decodes sequentially and defines its batch's
finish line.  Weißenberger & Schmidt (*Accelerating JPEG Decompression
on GPUs*, arXiv 2111.09219) show the escape hatch: Huffman streams
self-synchronize, so a decoder started at a *guessed* bit offset almost
always converges onto the true codeword boundaries within a short
overlap.  The PIM-JPEG port applies the same idea across DPU tasklets
(``synchronise_tasklets`` with per-MCU ``INDEX_OFFSET`` /
``DC_COEFF_OFFSET`` bookkeeping — SNIPPETS.md).

The pipeline here:

1. :func:`plan_chunks` cuts the *destuffed* payload
   (:class:`~repro.jpeg.fast_entropy.ScanPrescan`) into byte-aligned
   chunks, each extended by an overlap window into its successor.
2. :func:`decode_speculative_chunk` runs an optimistic
   :class:`~repro.jpeg.fast_entropy.FastEntropyDecoder` from each chunk
   start (chunk 0 starts at the true origin, so its prefix is exact),
   decoding MCU by MCU through a one-MCU-per-row *virtual* geometry and
   recording the exact payload **bit position** and per-component DC
   predictors after every MCU — the trace convergence is detected on.
3. :func:`stitch_chunks` finds, per adjacent pair, the first common bit
   position inside the overlap window.  Equal bit positions mean equal
   decoder state from there on (Huffman decode is deterministic), so
   everything a chunk decodes past its synchronization point is the
   true stream modulo a constant per-component DC offset — the
   predecessor chain supplies the true predictors and the delta is
   patched onto the chunk's DC coefficients during scatter.
4. Convergence can legitimately fail (overlap too small, decode error
   in the overlap, hostile bytes).  The stitcher then reports
   ``fallback`` and :func:`decode_coefficients_speculative` re-decodes
   the scan sequentially — the retained sequential path stays the
   bit-identity (and error-identity) oracle.

The service integration (:class:`~repro.service.batch.BatchDecoder`)
ships :func:`decode_speculative_chunk` to worker processes as a third
fan-out mode next to whole-image and restart-segment tasks.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import EntropyError
from .blocks import ImageGeometry
from .entropy import CoefficientBuffers, ComponentTables
from .fast_entropy import FastEntropyDecoder, ScanPrescan, destuff_scan

#: Chunks shorter than this are not worth a task dispatch; the planner
#: lowers the chunk count until every chunk clears it.
MIN_CHUNK_BYTES = 64

#: Default overlap window (payload bytes).  Weißenberger & Schmidt
#: observe synchronization within a few dozen codewords; 512 bytes is
#: hundreds of codewords of slack.
DEFAULT_OVERLAP_BYTES = 512

#: Extra payload shipped past the window so the last MCU *started*
#: inside the window can finish: a worst-case baseline MCU (six fully
#: populated blocks) stays under ~8 KB of code+magnitude bits.
TAIL_SLACK_BYTES = 8192

#: Lower bound on one block's bit cost (1-bit DC code + 1-bit EOB with
#: degenerate optimized tables) — bounds how many MCUs a window can
#: possibly contain, which caps the virtual decode geometry.
_MIN_BITS_PER_BLOCK = 2


@dataclass(frozen=True)
class SpeculativeChunk:
    """One speculative decode unit over the destuffed payload."""

    index: int
    #: Total chunks in the plan (workers size budgets from it).
    count: int
    #: Payload byte offset the decoder starts at (byte-aligned guess;
    #: exact for chunk 0).
    start: int
    #: Nominal chunk end — the next chunk's ``start``.
    stop: int
    #: End of the convergence window: ``stop`` + overlap (the region
    #: where the *successor* must meet this chunk's trace).
    window_stop: int
    #: End of the payload slice shipped to the worker (window + slack).
    slice_stop: int
    #: True for the final chunk (decodes through the scan terminator).
    last: bool

    @property
    def nbytes(self) -> int:
        """Payload bytes shipped for this chunk."""
        return self.slice_stop - self.start


@dataclass
class ChunkTrace:
    """What one speculative chunk decode observed.

    ``positions[j]`` is the absolute payload *bit* offset after decoding
    local MCU *j*; ``dc_trace[j]`` the per-component DC predictors at
    that point.  ``planes[ci]`` holds the chunk's decoded blocks in
    virtual one-MCU-per-row order: local MCU *j* owns the contiguous
    block range ``[j * bpm, (j + 1) * bpm)`` of component *ci* where
    ``bpm`` is the component's blocks per MCU.  A decode error inside
    the chunk is *recorded*, never raised — whether it matters depends
    on whether the error fell inside the MCU range the stitcher needs.
    """

    index: int
    start_bit: int
    mcus: int
    positions: np.ndarray
    dc_trace: np.ndarray
    planes: list[np.ndarray] | None
    error_type: str | None = None
    error: str | None = None


@dataclass
class SpeculativeReport:
    """Outcome of one speculative decode attempt."""

    #: Chunks the plan fanned out (1 = effectively sequential).
    chunks: int
    #: Chunk boundaries that converged onto their predecessor's trace.
    converged: int = 0
    #: Chunk indices that failed to converge or cover their MCU range.
    misspeculated: list[int] = field(default_factory=list)
    #: Misspeculated gaps healed by a sequential repair decode (the
    #: rest of the stitch still lands in parallel).
    repaired: int = 0
    #: True when the whole scan fell back to the sequential path.
    fallback: bool = False
    #: Human-readable fallback cause (None when the stitch succeeded).
    reason: str | None = None

    @property
    def ok(self) -> bool:
        """True when the stitched result was used (no fallback)."""
        return not self.fallback


def plan_chunks(payload_len: int, chunk_count: int,
                overlap: int = DEFAULT_OVERLAP_BYTES
                ) -> list[SpeculativeChunk]:
    """Cut a destuffed payload into speculative chunks.

    The count is lowered until every chunk clears ``MIN_CHUNK_BYTES``;
    the overlap is clamped below the chunk stride so chunk *k*'s
    convergence window always ends before chunk *k+1*'s does (the
    stitcher's ordering invariant).  Always returns at least one chunk
    (which degenerates to an exact sequential decode).
    """
    if chunk_count < 1:
        raise EntropyError(f"chunk count must be >= 1, got {chunk_count}")
    n = payload_len
    count = max(1, min(int(chunk_count), n // MIN_CHUNK_BYTES or 1))
    stride = n // count if count else n
    overlap = max(8, min(int(overlap), max(1, stride - 1)))
    bounds = [n * i // count for i in range(count + 1)]
    chunks = []
    for i in range(count):
        last = i == count - 1
        start, stop = bounds[i], bounds[i + 1]
        window_stop = n if last else min(stop + overlap, n)
        slice_stop = n if last else min(window_stop + TAIL_SLACK_BYTES, n)
        chunks.append(SpeculativeChunk(
            index=i, count=count, start=start, stop=stop,
            window_stop=window_stop, slice_stop=slice_stop, last=last))
    return chunks


def chunk_mcu_budget(chunk: SpeculativeChunk,
                     geometry: ImageGeometry) -> int:
    """Upper bound on MCUs one chunk decode can usefully produce.

    A true decode never exceeds the image's MCU total, and a window of
    *b* bits cannot contain more than ``b / (2 * blocks_per_mcu)`` MCUs
    even with degenerate 1-bit Huffman codes; the smaller bound sizes
    the chunk's virtual geometry (and so its plane allocation).
    """
    total = geometry.total_mcus
    bpm = sum(c.h_factor * c.v_factor for c in geometry.components)
    cap = total + 2
    if not chunk.last:
        window_bits = (chunk.window_stop - chunk.start) * 8
        cap = min(cap, window_bits // (_MIN_BITS_PER_BLOCK * bpm) + 2)
    return max(1, cap)


#: Retry budget for chunks whose speculative parse hits an
#: unrecoverable symbol (undecodable Huffman code): each retry restarts
#: just before the misparse point, so the scan makes forward progress.
MAX_RESTARTS = 64

#: Bits to back off from a misparse point when restarting — the wrong
#: codeword began at most one max-length code plus magnitude earlier.
_RESTART_BACKOFF_BITS = 24


def decode_speculative_chunk(
    chunk: SpeculativeChunk,
    slice_bytes: bytes,
    geometry_args: tuple[int, int, str],
    tables: list[ComponentTables],
    engine: str = "fast",
    terminator: int | None = None,
) -> ChunkTrace:
    """Optimistically decode one chunk; never raises on decode errors.

    *slice_bytes* is ``payload[chunk.start:chunk.slice_stop]`` — already
    destuffed, so it attaches via
    :meth:`~repro.jpeg.fast_entropy.FastEntropyDecoder.start_prescanned`
    (re-destuffing would corrupt 0xFF data bytes).  *terminator* is the
    original scan's terminator when the slice reaches the payload end
    (the decoder then zero-feeds exactly like the sequential path) and
    None otherwise (running off the slack raises, which is recorded as
    a chunk error).  Decoding advances one MCU at a time through a
    one-MCU-per-row virtual geometry, recording the exact bit position
    and DC predictors after each MCU; it stops at the window end, the
    MCU budget, or a decode error.

    Chunk 0 starts at the true stream origin and decodes *strictly*
    (its prefix is the oracle's own parse; errors there are real).
    Later chunks decode tolerantly — garbage before the sync point
    routinely overruns blocks — and an unrecoverable symbol restarts
    the attempt just before the misparse point.  Discarding the failed
    attempt's trace loses nothing: a recorded position that matched the
    predecessor would have pinned the suffix to the true parse, which
    cannot hit a structural error — so no discarded position could
    ever have been a sync point.
    """
    if engine != "fast":
        raise EntropyError(
            f"speculative decode requires the 'fast' engine, got {engine!r}"
            " (it alone exposes exact bit positions)")
    geometry = ImageGeometry(*geometry_args)
    budget = chunk_mcu_budget(chunk, geometry)
    virtual = ImageGeometry(geometry.mcu_width,
                            budget * geometry.mcu_height, geometry.mode)
    local = ScanPrescan(payload=bytes(slice_bytes), terminator=terminator)
    limit_bits = (chunk.window_stop - chunk.start) * 8
    base_bit = chunk.start * 8
    exact = chunk.index == 0
    ncomp = len(geometry.components)

    attempt_bit = 0
    restarts = MAX_RESTARTS if not exact else 0
    payload_bits = len(local.payload) * 8
    decoder = None
    positions: list[int] = []
    dcs: list[tuple[int, ...]] = []
    err_type = err_msg = None
    while True:
        decoder = FastEntropyDecoder(virtual, tables, 0, tolerant=not exact)
        decoder.start_prescanned(local, attempt_bit)
        positions, dcs = [], []
        err_type = err_msg = None
        # Past the payload end the final chunk may legitimately
        # zero-feed a few more MCUs (partial-bit tails); grace bounds
        # that overshoot so a bitless tail cannot spin the budget down
        # decoding phantoms.
        grace = geometry.mcus_per_row + 2
        while len(positions) < budget:
            if decoder.bit_position >= limit_bits:
                if not chunk.last or grace == 0:
                    break
                grace -= 1
            try:
                decoder.decode_mcu_rows(1)
            except Exception as exc:  # misspeculation evidence
                if not exact and payload_bits - decoder.bit_position < 64:
                    # Over-decode off the end of the real payload —
                    # expected when the MCU budget exceeds what the
                    # chunk truly holds, not misspeculation.  (An
                    # end-of-data error can report up to an accumulator
                    # of real bits short of the payload end.)
                    break
                err_type, err_msg = type(exc).__name__, str(exc)
                break
            positions.append(base_bit + decoder.bit_position)
            dcs.append(decoder.dc_predictors)
        if err_type is None or restarts == 0:
            break
        # A position that matched the predecessor would pin this
        # attempt's suffix to the true parse, which cannot misparse —
        # so a failed attempt's positions are never sync points and
        # the restart may jump all the way to the misparse.
        restarts -= 1
        nxt = max(attempt_bit + 1,
                  decoder.bit_position - _RESTART_BACKOFF_BITS)
        if nxt >= limit_bits:
            break
        attempt_bit = nxt

    mcus = len(positions)
    planes = []
    for ci, comp in enumerate(virtual.components):
        bpm = comp.h_factor * comp.v_factor
        planes.append(np.array(decoder.coefficients.planes[ci][:mcus * bpm]))
    return ChunkTrace(
        index=chunk.index, start_bit=base_bit + attempt_bit, mcus=mcus,
        positions=np.asarray(positions, dtype=np.int64),
        dc_trace=(np.asarray(dcs, dtype=np.int64)
                  if dcs else np.zeros((0, ncomp), dtype=np.int64)),
        planes=planes, error_type=err_type, error=err_msg)


def scatter_chunk(trace: ChunkTrace, first_local: int, first_global: int,
                  count: int, delta: np.ndarray, geometry: ImageGeometry,
                  out: CoefficientBuffers) -> None:
    """Place *count* MCUs of a chunk into the whole-image grid.

    Local MCUs ``first_local..first_local+count`` map onto global MCUs
    ``first_global..first_global+count``; *delta* (per component) is the
    DC predictor correction added to every placed block's DC term —
    after it, the values equal the sequential decoder's exactly.
    """
    if count <= 0:
        return
    mpr = geometry.mcus_per_row
    g = np.arange(first_global, first_global + count)
    mrow, mcol = g // mpr, g % mpr
    for ci, comp in enumerate(geometry.components):
        vf, hf = comp.v_factor, comp.h_factor
        bw = comp.blocks_wide
        bpm = vf * hf
        dest = ((mrow[:, None] * vf + np.arange(vf)[None, :]) * bw)
        dest = dest[:, :, None] + (mcol[:, None, None] * hf
                                   + np.arange(hf)[None, None, :])
        dest = dest.reshape(-1)
        blocks = trace.planes[ci][first_local * bpm:
                                  (first_local + count) * bpm]
        out.planes[ci][dest] = blocks
        # Tolerant decode stores DC mod 2**16, so the patch is modular
        # too: wrap the delta into int16 range and let the in-place add
        # wrap again — the true value fits int16, so the residue IS the
        # exact sequential value.
        d = ((int(delta[ci]) + 0x8000) & 0xFFFF) - 0x8000
        if d:
            out.planes[ci][dest, 0, 0] += np.int16(d)


def _strictly_increasing(a: np.ndarray) -> bool:
    """True when *a* has no repeated or decreasing entries."""
    return bool(np.all(np.diff(a) > 0)) if len(a) > 1 else True


def _find_sync(prev: ChunkTrace, prev_sync: int, cur: ChunkTrace,
               lo: int, hi: int) -> tuple[int, int] | None:
    """Earliest common bit position of two traces inside ``[lo, hi]``.

    Returns ``(j_prev, i_cur)`` — the predecessor trace index whose MCU
    ends at the sync position, and the successor's *extended*-trace
    index (0 = the successor's own attempt start, i = after its local
    MCU ``i - 1``).  Only predecessor positions at or past its own
    trusted region (*prev_sync*) qualify; ambiguous (non-increasing)
    windows return None.
    """
    p = prev.positions
    # The chunk's own (possibly restarted) attempt start is a candidate
    # sync point too (index 0 in the extended trace = "no MCUs decoded
    # yet, predictors 0").
    q = np.concatenate(([np.int64(cur.start_bit)], cur.positions))
    pw = p[np.searchsorted(p, lo, "left"):np.searchsorted(p, hi, "right")]
    qw = q[np.searchsorted(q, lo, "left"):np.searchsorted(q, hi, "right")]
    if not (_strictly_increasing(pw) and _strictly_increasing(qw)):
        # Repeated positions (zero-feed inside a window) make the trace
        # index ambiguous — treat as non-convergence.
        return None
    for cand in np.intersect1d(pw, qw):
        j_prev = int(np.searchsorted(p, cand, "left"))
        if j_prev >= prev_sync:
            return j_prev, int(np.searchsorted(q, cand, "left"))
    return None


def stitch_chunks(
    traces: list[ChunkTrace | None],
    chunks: list[SpeculativeChunk],
    geometry: ImageGeometry,
    repair=None,
) -> tuple[CoefficientBuffers | None, SpeculativeReport]:
    """Verify convergence and merge chunk traces into the global grid.

    Walks the chunks front to back maintaining a *trusted* trace:
    chunk 0 is exact by construction; each later chunk must share a bit
    position with the trusted trace inside the overlap window.  A match
    fixes the chunk's global MCU base and its per-component DC delta
    (trusted predictors minus speculative predictors at the sync
    point), and the chunk becomes the new trusted trace.

    A chunk that never converges (or is missing, e.g. a crashed worker)
    is *repaired* when a ``repair(start_bit, max_mcus, limit_bit)``
    callback is given: the callback decodes sequentially from the
    trusted frontier — a true MCU boundary — through the failed chunk's
    span, and the walk resumes syncing the next chunk against that
    repair trace.  Misspeculation then costs one chunk's sequential
    decode, not the scan's.  Without a callback, or when coverage still
    cannot be established, the stitch fails — ``(None, report)`` with
    ``fallback`` set — and the caller re-decodes the whole scan
    sequentially.  On success the returned buffers are bit-identical to
    the sequential decode.
    """
    total = geometry.total_mcus
    n_chunks = len(chunks)
    ncomp = len(geometry.components)
    report = SpeculativeReport(chunks=n_chunks)

    def fail(reason: str, *bad: int):
        report.misspeculated.extend(
            b for b in bad if b not in report.misspeculated)
        report.fallback = True
        report.reason = reason
        return None, report

    if traces[0] is None:
        return fail("chunk 0 produced no trace", 0)

    # (trace, first_local, first_global, count, delta) to scatter.
    emissions: list[tuple[ChunkTrace, int, int, int, np.ndarray]] = []
    # Trusted state: trace T, its first trusted local MCU, the global
    # index of that MCU, and its DC correction.
    T = traces[0]
    T_sync = 0
    T_base = 0
    T_delta = np.zeros(ncomp, dtype=np.int64)

    def frontier_after(count: int) -> tuple[int, np.ndarray]:
        """Bit position and true predictors after *count* trusted MCUs."""
        if count > 0:
            j = T_sync + count - 1
            return int(T.positions[j]), T_delta + T.dc_trace[j]
        return T.start_bit, T_delta

    complete = False
    k = 1
    while k < n_chunks:
        cur = traces[k]
        sync = None
        if cur is not None and T.mcus > T_sync:
            lo = chunks[k].start * 8
            hi = int(T.positions[-1])
            sync = _find_sync(T, T_sync, cur, lo, hi)
        if sync is not None:
            j_prev, i_cur = sync
            count = j_prev - T_sync + 1
            emissions.append((T, T_sync, T_base, count, T_delta))
            cur_dc = (cur.dc_trace[i_cur - 1] if i_cur > 0
                      else np.zeros(ncomp, dtype=np.int64))
            # The trusted predictors at the sync point are the
            # predecessor's speculative ones plus its own correction —
            # the corrections chain.
            T, T_sync, T_delta = cur, i_cur, T_delta + T.dc_trace[j_prev] - cur_dc
            T_base = T_base + count
            report.converged += 1
            k += 1
            continue
        # --- misspeculation: repair the gap sequentially -------------
        report.misspeculated.append(k)
        if repair is None:
            return fail(f"chunk {k} never converged in its overlap")
        count = min(T.mcus - T_sync, total - T_base)
        emissions.append((T, T_sync, T_base, count, T_delta))
        frontier_mcu = T_base + count
        if frontier_mcu >= total:
            complete = True
            break
        frontier_bit, frontier_preds = frontier_after(count)
        limit_bit = chunks[k].window_stop * 8
        R = repair(frontier_bit, total - frontier_mcu, limit_bit)
        if R.mcus == 0:
            return fail(
                f"repair of chunk {k} made no progress"
                + (f" ({R.error_type}: {R.error})" if R.error_type else ""))
        report.repaired += 1
        T, T_sync, T_base, T_delta = R, 0, frontier_mcu, frontier_preds
        k += 1

    # --- final coverage through the last MCU -------------------------
    count = total - T_base
    if complete:
        pass
    elif count > T.mcus - T_sync:
        if repair is None:
            return fail(
                f"final chunk covers {T.mcus - T_sync} MCUs of the "
                f"{count} it owns"
                + (f" ({T.error_type}: {T.error})" if T.error_type else ""),
                n_chunks - 1)
        have = T.mcus - T_sync
        emissions.append((T, T_sync, T_base, have, T_delta))
        frontier_bit, frontier_preds = frontier_after(have)
        R = repair(frontier_bit, total - T_base - have, None)
        if R.mcus < total - T_base - have:
            return fail(
                f"tail repair covers {R.mcus} MCUs of the "
                f"{total - T_base - have} missing"
                + (f" ({R.error_type}: {R.error})" if R.error_type else ""),
                n_chunks - 1)
        report.repaired += 1
        if n_chunks - 1 not in report.misspeculated:
            report.misspeculated.append(n_chunks - 1)
        emissions.append((R, 0, T_base + have, total - T_base - have,
                          frontier_preds))
    else:
        emissions.append((T, T_sync, T_base, count, T_delta))

    out = CoefficientBuffers.empty(geometry)
    for trace, first_local, first_global, count, delta in emissions:
        scatter_chunk(trace, first_local, first_global, count, delta,
                      geometry, out)
    return out, report


def speculative_eligible(restart_interval: int,
                         prescan: ScanPrescan) -> bool:
    """True when a scan can take the speculative path.

    Restart-marker scans already have exact parallel decomposition
    (:mod:`~repro.jpeg.parallel_huffman`), and stray RSTn markers in a
    DRI=0 scan would shift every speculative bit offset — both route
    to their existing paths instead.
    """
    return restart_interval == 0 and prescan.restart_count == 0


def decode_coefficients_speculative(
    info,
    chunk_count: int,
    overlap: int = DEFAULT_OVERLAP_BYTES,
    engine: str = "fast",
    map_fn=map,
    prescan: ScanPrescan | None = None,
) -> tuple[CoefficientBuffers, SpeculativeReport]:
    """Speculatively decode a whole scan's coefficients.

    *info* is a parsed :class:`~repro.jpeg.markers.JpegImageInfo`;
    *map_fn* orders the chunk decodes (pass a pool's ``map`` for real
    parallelism — :func:`decode_speculative_chunk` is picklable).
    Misspeculated boundaries are healed by sequential gap repair; only
    when the stitch cannot establish coverage at all is the whole scan
    re-decoded sequentially.  Either way the result is bit-identical to
    the sequential oracle and hostile streams raise the oracle's exact
    errors; the report says which path ran.
    """
    from .decoder import component_tables_from_info

    geometry = info.geometry
    tables = component_tables_from_info(info)
    scan = prescan if prescan is not None else destuff_scan(info.entropy_data)
    if not speculative_eligible(info.restart_interval, scan) \
            or engine != "fast":
        report = SpeculativeReport(chunks=1, fallback=True,
                                   reason="scan not speculative-eligible")
        return _sequential(scan, geometry, tables,
                           info.restart_interval), report
    chunks = plan_chunks(len(scan.payload), chunk_count, overlap)
    geo_args = (geometry.width, geometry.height, geometry.mode)
    payload = scan.payload
    tasks = [
        (c, payload[c.start:c.slice_stop], geo_args, tables, engine,
         scan.terminator if c.slice_stop == len(payload) else None)
        for c in chunks
    ]
    traces = list(map_fn(_decode_chunk_star, tasks))
    out, report = stitch_chunks(traces, chunks, geometry,
                                repair=make_repairer(scan, geometry, tables))
    if out is None:
        return _sequential(scan, geometry, tables,
                           info.restart_interval), report
    return out, report


def _decode_chunk_star(args) -> ChunkTrace:
    """Tuple-splat adapter for ``map``-style executors."""
    return decode_speculative_chunk(*args)


def make_repairer(scan: ScanPrescan, geometry: ImageGeometry,
                  tables: list[ComponentTables]):
    """Build the sequential gap-repair callback for :func:`stitch_chunks`.

    The returned ``repair(start_bit, max_mcus, limit_bit)`` decodes the
    full prescan *strictly* from *start_bit* — always a true MCU
    boundary handed over by the stitcher — for at most *max_mcus* MCUs
    or until *limit_bit* (None = decode all *max_mcus*).  DC predictors
    start at zero like any chunk; the stitcher patches the frontier
    predictors back in as the repair trace's delta.  Decode errors end
    the trace (a short repair fails coverage and falls back to the
    sequential oracle, which reproduces the error for hostile streams).
    """

    def repair(start_bit: int, max_mcus: int,
               limit_bit: int | None) -> ChunkTrace:
        virtual = ImageGeometry(geometry.mcu_width,
                                max(1, max_mcus) * geometry.mcu_height,
                                geometry.mode)
        decoder = FastEntropyDecoder(virtual, tables, 0)
        decoder.start_prescanned(scan, start_bit)
        positions: list[int] = []
        dcs: list[tuple[int, ...]] = []
        err_type = err_msg = None
        while len(positions) < max_mcus:
            if limit_bit is not None and decoder.bit_position >= limit_bit:
                break
            try:
                decoder.decode_mcu_rows(1)
            except Exception as exc:
                err_type, err_msg = type(exc).__name__, str(exc)
                break
            positions.append(decoder.bit_position)
            dcs.append(decoder.dc_predictors)
        mcus = len(positions)
        ncomp = len(geometry.components)
        planes = []
        for ci, comp in enumerate(virtual.components):
            bpm = comp.h_factor * comp.v_factor
            planes.append(np.array(
                decoder.coefficients.planes[ci][:mcus * bpm]))
        return ChunkTrace(
            index=-1, start_bit=start_bit, mcus=mcus,
            positions=np.asarray(positions, dtype=np.int64),
            dc_trace=(np.asarray(dcs, dtype=np.int64)
                      if dcs else np.zeros((0, ncomp), dtype=np.int64)),
            planes=planes, error_type=err_type, error=err_msg)

    return repair


def _sequential(scan: ScanPrescan, geometry: ImageGeometry,
                tables: list[ComponentTables],
                restart_interval: int) -> CoefficientBuffers:
    """The sequential oracle path over an existing prescan.

    Raises the sequential decoder's natural errors — the error-identity
    contract for hostile streams routed through the speculative API.
    """
    decoder = FastEntropyDecoder(geometry, tables, restart_interval)
    decoder.start_prescanned(scan, 0)
    decoder.decode_mcu_rows(geometry.mcu_rows)
    return decoder.coefficients
