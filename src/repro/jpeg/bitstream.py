"""Bit-level I/O for JPEG entropy-coded segments.

JPEG writes entropy-coded data MSB-first and *byte-stuffs* the output: a
literal 0xFF data byte is followed by a 0x00 so decoders can distinguish
data from markers.  :class:`BitWriter` applies stuffing, :class:`BitReader`
removes it and stops cleanly at a marker boundary.

:class:`BitReader` keeps a small Python-int bit buffer and destuffs
incrementally — simple and exactly specified, which is why it anchors
the *reference* entropy engine.  The default decode path instead rides
:mod:`repro.jpeg.fast_entropy`, which destuffs once up front and reads
through a wide word buffer; this module remains the correctness oracle
(and the writer used by the encoder).
"""

from __future__ import annotations

import numpy as np

from ..errors import BitstreamError


class BitWriter:
    """Accumulates bits MSB-first into a byte-stuffed JPEG bitstream."""

    def __init__(self) -> None:
        self._bytes = bytearray()
        self._acc = 0          # bit accumulator, left-aligned within _nbits
        self._nbits = 0        # number of valid bits in _acc
        self._marker_bytes = 0  # raw markers emitted via emit_marker

    def write_bits(self, value: int, nbits: int) -> None:
        """Append the *nbits* low-order bits of *value*, MSB first."""
        if nbits < 0 or nbits > 32:
            raise BitstreamError(f"cannot write {nbits} bits at once")
        if nbits == 0:
            return
        if value < 0 or value >= (1 << nbits):
            raise BitstreamError(
                f"value {value} does not fit in {nbits} bits"
            )
        self._acc = (self._acc << nbits) | value
        self._nbits += nbits
        while self._nbits >= 8:
            self._nbits -= 8
            byte = (self._acc >> self._nbits) & 0xFF
            self._bytes.append(byte)
            if byte == 0xFF:
                self._bytes.append(0x00)  # byte stuffing
        self._acc &= (1 << self._nbits) - 1

    def write_pairs(self, pairs) -> None:
        """Append an iterable of ``(value, nbits)`` pairs in one call.

        Fast path for the vectorized entropy encoder: the accumulator
        and the stuffing loop run once per batch instead of paying a
        method call (and argument validation) per symbol.  The emitted
        bytes are identical to repeated :meth:`write_bits` calls.
        """
        acc = self._acc
        nbits = self._nbits
        out = self._bytes
        for value, n in pairs:
            acc = (acc << n) | value
            nbits += n
            while nbits >= 8:
                nbits -= 8
                byte = (acc >> nbits) & 0xFF
                out.append(byte)
                if byte == 0xFF:
                    out.append(0x00)  # byte stuffing
        self._acc = acc & ((1 << nbits) - 1)
        self._nbits = nbits

    def flush(self) -> None:
        """Pad the final partial byte with 1-bits (per the standard)."""
        if self._nbits:
            pad = 8 - self._nbits
            self.write_bits((1 << pad) - 1, pad)

    def emit_marker(self, marker: int) -> None:
        """Flush to a byte boundary, then append a raw ``FF xx`` marker.

        Used by the entropy encoder to interleave RSTn markers without
        allocating a fresh writer per restart interval.  Marker bytes
        are not entropy payload and are excluded from :attr:`bit_length`.
        """
        if not 0xD0 <= marker <= 0xD7:
            raise BitstreamError(f"marker 0x{marker:02X} is not RSTn")
        self.flush()
        self._bytes.append(0xFF)
        self._bytes.append(marker)
        self._marker_bytes += 1

    def getvalue(self) -> bytes:
        """Return the stuffed bitstream written so far (without flushing)."""
        return bytes(self._bytes)

    @property
    def bit_length(self) -> int:
        """Total number of bits written (excluding stuffed 0x00 bytes
        and raw RSTn markers)."""
        stuffed = self._bytes.count(0xFF)
        return (len(self._bytes) - stuffed - self._marker_bytes) * 8 + self._nbits


class BitReader:
    """Reads bits MSB-first from a byte-stuffed entropy-coded segment.

    The reader operates on a ``bytes``/``memoryview``/ndarray-of-uint8 and
    treats any 0xFF byte followed by something other than 0x00 as a marker
    boundary: reading past it raises :class:`BitstreamError` unless it is
    a restart marker the caller explicitly consumes via
    :meth:`skip_to_marker`.
    """

    def __init__(self, data: bytes | bytearray | memoryview | np.ndarray) -> None:
        if isinstance(data, np.ndarray):
            if data.dtype != np.uint8:
                raise BitstreamError("ndarray bitstream must be uint8")
            data = data.tobytes()
        self._data = bytes(data)
        self._pos = 0          # next byte index
        self._acc = 0          # bit accumulator
        self._nbits = 0        # bits available in accumulator
        self._at_marker = False

    # -- internal -----------------------------------------------------

    def _fill(self, need: int) -> None:
        """Pull bytes into the accumulator until *need* bits available."""
        while self._nbits < need:
            if self._pos >= len(self._data):
                raise BitstreamError("bitstream exhausted")
            byte = self._data[self._pos]
            if byte == 0xFF:
                nxt = self._data[self._pos + 1] if self._pos + 1 < len(self._data) else None
                if nxt == 0x00:
                    self._pos += 2  # stuffed byte: 0xFF is data
                elif nxt is None:
                    raise BitstreamError("truncated stream after 0xFF")
                else:
                    # A real marker. Per libjpeg behaviour, feed 0 bits so
                    # a decoder that over-reads slightly still terminates;
                    # record the condition for callers that care.
                    self._at_marker = True
                    self._acc = self._acc << 8
                    self._nbits += 8
                    continue
            else:
                self._pos += 1
            self._acc = (self._acc << 8) | byte
            self._nbits += 8

    # -- public -------------------------------------------------------

    def read_bits(self, nbits: int) -> int:
        """Read and return *nbits* bits MSB-first as a non-negative int."""
        if nbits < 0 or nbits > 32:
            raise BitstreamError(f"cannot read {nbits} bits at once")
        if nbits == 0:
            return 0
        self._fill(nbits)
        self._nbits -= nbits
        value = (self._acc >> self._nbits) & ((1 << nbits) - 1)
        self._acc &= (1 << self._nbits) - 1
        return value

    def peek_bits(self, nbits: int) -> int:
        """Return the next *nbits* bits without consuming them.

        Short streams are zero-padded on the right, matching the behaviour
        required for table-driven Huffman decoding at end of stream.
        """
        try:
            self._fill(nbits)
        except BitstreamError:
            # zero-pad: decoder will consume only valid prefix bits
            self._acc <<= max(0, nbits - self._nbits)
            self._nbits = max(self._nbits, nbits)
        return (self._acc >> (self._nbits - nbits)) & ((1 << nbits) - 1)

    def skip_bits(self, nbits: int) -> None:
        """Discard *nbits* bits (they must already be buffered by peek)."""
        if nbits > self._nbits:
            raise BitstreamError("skip beyond buffered bits")
        self._nbits -= nbits
        self._acc &= (1 << self._nbits) - 1

    def align_to_byte(self) -> None:
        """Discard bits up to the next byte boundary."""
        self._nbits -= self._nbits % 8

    @property
    def hit_marker(self) -> bool:
        """True once the reader has zero-fed past a marker boundary."""
        return self._at_marker

    @property
    def byte_position(self) -> int:
        """Index of the next unread byte in the underlying buffer
        (not counting bits still in the accumulator)."""
        return self._pos

    def bits_consumed(self) -> int:
        """Approximate count of payload bits consumed so far."""
        return self._pos * 8 - self._nbits

    def find_restart_marker(self) -> int:
        """Byte-align, then consume an RSTn marker and return ``n``.

        Raises :class:`BitstreamError` if the next marker is not RSTn.
        """
        # Drop buffered bits: restart markers are byte-aligned in the raw
        # stream, and everything in the accumulator before them is padding.
        self._acc = 0
        self._nbits = 0
        self._at_marker = False
        data, n = self._data, len(self._data)
        pos = self._pos
        while pos + 1 < n:
            if data[pos] == 0xFF and data[pos + 1] != 0x00:
                marker = data[pos + 1]
                if 0xD0 <= marker <= 0xD7:
                    self._pos = pos + 2
                    return marker - 0xD0
                raise BitstreamError(
                    f"expected restart marker, found 0xFF{marker:02X}"
                )
            pos += 1
        raise BitstreamError("no restart marker before end of stream")
