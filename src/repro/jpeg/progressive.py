"""Progressive JPEG scan coding (ITU-T T.81 Annex G, Huffman path).

A progressive (SOF2) stream splits the coefficient data over many
scans: a DC scan per successive-approximation stage (interleaved over
components), and per-component AC scans covering a spectral band
[Ss, Se] at one approximation stage.  This module implements both
directions:

- :class:`ProgressiveDecoder` accumulates every scan of a parsed
  :class:`~repro.jpeg.markers.JpegImageInfo` into one
  :class:`~repro.jpeg.entropy.CoefficientBuffers`, reusing the fused
  bit-reader helpers of :mod:`~repro.jpeg.fast_entropy`
  (``_careful_symbol`` / ``_careful_read_bits`` over a destuffed scan
  payload).  DC refinement scans — one raw bit per block, no Huffman
  codes — are decoded fully vectorized over the coefficient planes.
- :func:`encode_progressive_scans` emits the inverse: a deterministic
  scan script (DC first, per-component spectral bands, then one
  refinement pass each) with per-scan optimized Huffman tables, so a
  progressive re-encode of any baseline image carries the *identical*
  quantized coefficients and decodes pixel-identical to its twin.

The algorithms follow the successive-approximation semantics of
libjpeg's jdphuff.c/jcphuff.c, which are the de-facto reading of
Annex G: refinement bits are appended to already-nonzero history
coefficients, EOB runs span up to 32767 blocks, and correction bits
buffered within a block are flushed after the next emitted symbol.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import BitstreamError, EntropyError, JpegFormatError
from .bitstream import BitWriter
from .blocks import ImageGeometry, ceil_div
from .constants import ZIGZAG_ORDER
from .entropy import CoefficientBuffers
from .fast_entropy import (TRUNCATED_FF, _careful_read_bits, _careful_symbol,
                           destuff_scan, fused_tables)
from .huffman import (HuffmanEncoder, encode_magnitude, extend,
                      spec_from_frequencies)
from .markers import (HuffmanTableDef, JpegImageInfo, ScanComponent, ScanInfo)

_ZIGZAG = tuple(int(i) for i in ZIGZAG_ORDER)

#: Largest EOB run one EOBn symbol can carry (T.81 G.1.2.2).
MAX_EOBRUN = 0x7FFF

#: Refinement correction bits buffered per scan before an EOB flush is
#: forced (libjpeg's MAX_CORR_BITS minus one block's worst case).
_MAX_CORR_BITS = 1000 - 64 + 1

#: Spectral bands of the default encoder scan script.  Two bands per
#: component exercise the band-selection logic without exploding the
#: scan count.
DEFAULT_BANDS = ((1, 5), (6, 63))

#: Successive-approximation depth of the default script: first passes
#: send coefficients down-shifted by this many bits, one refinement
#: pass restores them.
DEFAULT_POINT_TRANSFORM = 1


def _wrap16(value: int) -> int:
    """Wrap *value* into int16 range (deterministic hostile-input path)."""
    return ((value + 0x8000) & 0xFFFF) - 0x8000


# ---------------------------------------------------------------------------
# Bit reading over a destuffed scan with restart segments.
# ---------------------------------------------------------------------------

class _SegmentedReader:
    """Careful bit reader over one destuffed scan payload.

    Restart markers split the payload into segments; :meth:`next_segment`
    re-aligns to the next boundary (the byte alignment happened at
    destuff time — marker offsets are byte offsets).  Reads inside a
    segment use the reference-compatible careful helpers from
    :mod:`~repro.jpeg.fast_entropy`, so exhaustion and truncation raise
    the same canonical errors as the baseline engines.
    """

    __slots__ = ("payload", "seg_starts", "seg_ends", "terminator",
                 "seg", "pos", "seg_end", "acc", "nbits",
                 "zero_feed", "trunc")

    def __init__(self, prescan) -> None:
        self.payload = prescan.payload
        self.seg_starts = [0] + list(prescan.marker_payload_offsets)
        self.seg_ends = list(prescan.marker_payload_offsets) \
            + [len(prescan.payload)]
        self.terminator = prescan.terminator
        self.seg = -1
        self.next_segment()

    def next_segment(self) -> None:
        """Advance to the next restart segment, resetting bit state."""
        self.seg += 1
        if self.seg >= len(self.seg_starts):
            raise EntropyError("missing restart marker in progressive scan")
        self.pos = self.seg_starts[self.seg]
        self.seg_end = self.seg_ends[self.seg]
        self.acc = 0
        self.nbits = 0
        last = self.seg == len(self.seg_starts) - 1
        term = self.terminator
        self.zero_feed = (not last) or (
            term is not None and term != TRUNCATED_FF)
        self.trunc = last and term == TRUNCATED_FF

    def symbol(self, tab) -> int:
        """Decode one Huffman symbol with *tab* (a fused table set)."""
        sym, self.acc, self.nbits, self.pos = _careful_symbol(
            self.acc, self.nbits, self.pos, self.seg_end,
            self.zero_feed, self.trunc, self.payload, tab)
        return sym

    def bits(self, n: int) -> int:
        """Read *n* raw bits, MSB first."""
        if n == 0:
            return 0
        val, self.acc, self.nbits, self.pos = _careful_read_bits(
            n, self.acc, self.nbits, self.pos, self.seg_end,
            self.zero_feed, self.trunc, self.payload)
        return val


def _used_grid(cg) -> tuple[int, int]:
    """Blocks the standard actually codes in a non-interleaved scan:
    the component's own ceil(size/8) grid, which can be narrower than
    the MCU-padded plane."""
    return ceil_div(cg.width, 8), ceil_div(cg.height, 8)


def _interleaved_order(geo: ImageGeometry,
                       comps: list[int]) -> list[tuple[int, int]]:
    """Block emission order of an interleaved scan as
    ``(scan_component_index, flat_block_index)`` pairs, MCU-major."""
    order: list[tuple[int, int]] = []
    comp_geos = [geo.components[ci] for ci in comps]
    for mrow in range(geo.mcu_rows):
        for mcol in range(geo.mcus_per_row):
            for k, cg in enumerate(comp_geos):
                for v in range(cg.v_factor):
                    base = (mrow * cg.v_factor + v) * cg.blocks_wide \
                        + mcol * cg.h_factor
                    for h in range(cg.h_factor):
                        order.append((k, base + h))
    return order


def _noninterleaved_order(cg) -> list[int]:
    """Flat block indices of a single-component scan in raster order
    over the component's used grid."""
    uw, uh = _used_grid(cg)
    return [brow * cg.blocks_wide + bcol
            for brow in range(uh) for bcol in range(uw)]


# ---------------------------------------------------------------------------
# Decoder.
# ---------------------------------------------------------------------------

class ProgressiveDecoder:
    """Accumulate every scan of a SOF2 stream into coefficient planes.

    Tracks (scan index, units completed) progress so the salvage path
    can localize a failure to the first undone MCU row.
    """

    def __init__(self, info: JpegImageInfo) -> None:
        self.info = info
        self.geometry = info.geometry
        self.coefficients = CoefficientBuffers.empty(self.geometry)
        self.scans_done = 0
        self.units_done = 0
        self._comp_index = {
            c.component_id: i
            for i, c in enumerate(info.frame.components)
        }

    def decode(self) -> CoefficientBuffers:
        """Decode every scan in stream order; returns the coefficients."""
        for si in self.info.scans:
            self.units_done = 0
            self.decode_scan(si)
            self.scans_done += 1
        return self.coefficients

    # -- per-scan dispatch ----------------------------------------------

    def _scan_components(self, si: ScanInfo) -> list[int]:
        comps = []
        for sc in si.header.components:
            if sc.component_id not in self._comp_index:
                raise JpegFormatError(
                    f"scan references unknown component {sc.component_id}")
            comps.append(self._comp_index[sc.component_id])
        return comps

    def decode_scan(self, si: ScanInfo) -> None:
        """Decode one scan into the accumulated coefficient planes."""
        h = si.header
        comps = self._scan_components(si)
        prescan = destuff_scan(si.entropy)
        if h.is_dc and h.refining:
            self._decode_dc_refine(si, comps, prescan)
            return
        reader = _SegmentedReader(prescan)
        if h.is_dc:
            self._decode_dc_first(si, comps, reader)
        elif h.refining:
            self._decode_ac_refine(si, comps, reader)
        else:
            self._decode_ac_first(si, comps, reader)

    def failed_mcu_row(self, si: ScanInfo, units_done: int) -> int:
        """First MCU row a failed scan did not complete (for salvage)."""
        geo = self.geometry
        comps = [self._comp_index.get(sc.component_id, 0)
                 for sc in si.header.components]
        if len(comps) > 1:
            return min(units_done // geo.mcus_per_row, geo.mcu_rows)
        cg = geo.components[comps[0]]
        uw, _ = _used_grid(cg)
        brow = units_done // max(1, uw)
        vmax = geo.luma_factors[1]
        pixel_row = brow * 8 * (vmax // cg.v_factor)
        return min(pixel_row // geo.mcu_height, geo.mcu_rows)

    # -- DC scans --------------------------------------------------------

    def _decode_dc_first(self, si: ScanInfo, comps: list[int],
                         reader: _SegmentedReader) -> None:
        h = si.header
        al = h.al
        geo = self.geometry
        planes = [self.coefficients.planes[ci].reshape(-1, 64)
                  for ci in comps]
        tabs = [fused_tables(si.dc_tables[sc.dc_table_id], "dc")
                for sc in h.components]
        ri = si.restart_interval
        preds = [0] * len(comps)
        if len(comps) > 1:
            order = _interleaved_order(geo, comps)
            per_unit = len(order) // geo.total_mcus
            for unit in range(geo.total_mcus):
                if ri and unit and unit % ri == 0:
                    reader.next_segment()
                    preds = [0] * len(comps)
                for k, flat in order[unit * per_unit:(unit + 1) * per_unit]:
                    s = reader.symbol(tabs[k])
                    if s > 11:
                        raise EntropyError(f"DC category {s} out of range")
                    if s:
                        preds[k] += extend(reader.bits(s), s)
                    planes[k][flat, 0] = _wrap16(preds[k] << al)
                self.units_done = unit + 1
        else:
            cg = geo.components[comps[0]]
            for unit, flat in enumerate(_noninterleaved_order(cg)):
                if ri and unit and unit % ri == 0:
                    reader.next_segment()
                    preds = [0]
                s = reader.symbol(tabs[0])
                if s > 11:
                    raise EntropyError(f"DC category {s} out of range")
                if s:
                    preds[0] += extend(reader.bits(s), s)
                planes[0][flat, 0] = _wrap16(preds[0] << al)
                self.units_done = unit + 1

    def _decode_dc_refine(self, si: ScanInfo, comps: list[int],
                          prescan) -> None:
        """Vectorized DC refinement: one raw bit per block, no Huffman.

        The whole scan is a packed bit sequence (per restart segment),
        so the plane update is three numpy operations: unpack the
        segment bytes, gather the bits in block-emission order, and OR
        ``bit << Al`` into the DC coefficients (two's complement makes
        the OR correct for negative values too).
        """
        geo = self.geometry
        al = si.header.al
        if len(comps) > 1:
            order = _interleaved_order(geo, comps)
            per_unit = len(order) // geo.total_mcus
            total_units = geo.total_mcus
        else:
            order = [(0, flat) for flat in
                     _noninterleaved_order(geo.components[comps[0]])]
            per_unit = 1
            total_units = len(order)

        ri = si.restart_interval
        seg_starts = [0] + list(prescan.marker_payload_offsets)
        seg_ends = list(prescan.marker_payload_offsets) \
            + [len(prescan.payload)]
        zero_feed_tail = prescan.terminator is not None \
            and prescan.terminator != TRUNCATED_FF

        chunks: list[np.ndarray] = []
        unit = 0
        seg = 0
        while unit < total_units:
            if seg >= len(seg_starts):
                raise EntropyError(
                    "missing restart marker in progressive scan")
            seg_units = min(ri, total_units - unit) if ri \
                else total_units - unit
            need = seg_units * per_unit
            raw = np.frombuffer(
                prescan.payload, dtype=np.uint8,
                count=seg_ends[seg] - seg_starts[seg],
                offset=seg_starts[seg])
            bits = np.unpackbits(raw)
            if len(bits) < need:
                last = seg == len(seg_starts) - 1
                self.units_done = unit + len(bits) // per_unit
                if not last or zero_feed_tail:
                    bits = np.concatenate(
                        [bits, np.zeros(need - len(bits), dtype=np.uint8)])
                elif prescan.terminator == TRUNCATED_FF:
                    raise BitstreamError("truncated stream after 0xFF")
                else:
                    raise BitstreamError("bitstream exhausted")
            chunks.append(bits[:need])
            unit += seg_units
            seg += 1
        seq = np.concatenate(chunks) if chunks else np.zeros(0, np.uint8)

        comp_of = np.array([k for k, _ in order], dtype=np.int64)
        flat_of = np.array([f for _, f in order], dtype=np.int64)
        for k, ci in enumerate(comps):
            plane = self.coefficients.planes[ci].reshape(-1, 64)
            mask = comp_of == k
            add = (seq[mask].astype(np.int16) << al)
            plane[flat_of[mask], 0] |= add
        self.units_done = total_units

    # -- AC scans --------------------------------------------------------

    def _decode_ac_first(self, si: ScanInfo, comps: list[int],
                         reader: _SegmentedReader) -> None:
        h = si.header
        ss, se, al = h.ss, h.se, h.al
        cg = self.geometry.components[comps[0]]
        plane = self.coefficients.planes[comps[0]].reshape(-1, 64)
        tab = fused_tables(si.ac_tables[h.components[0].ac_table_id], "ac")
        ri = si.restart_interval
        eobrun = 0
        for unit, flat in enumerate(_noninterleaved_order(cg)):
            if ri and unit and unit % ri == 0:
                reader.next_segment()
                eobrun = 0
            if eobrun:
                eobrun -= 1
                self.units_done = unit + 1
                continue
            block = plane[flat]
            k = ss
            while k <= se:
                sym = reader.symbol(tab)
                r, s = sym >> 4, sym & 0x0F
                if s:
                    k += r
                    if k > se:
                        raise EntropyError(
                            "AC coefficient index overran the block")
                    block[_ZIGZAG[k]] = _wrap16(
                        extend(reader.bits(s), s) << al)
                    k += 1
                elif r != 15:
                    eobrun = (1 << r) - 1
                    if r:
                        eobrun += reader.bits(r)
                    break
                else:
                    k += 16  # ZRL
            self.units_done = unit + 1

    def _decode_ac_refine(self, si: ScanInfo, comps: list[int],
                          reader: _SegmentedReader) -> None:
        h = si.header
        ss, se, al = h.ss, h.se, h.al
        p1 = 1 << al
        m1 = -p1
        cg = self.geometry.components[comps[0]]
        plane = self.coefficients.planes[comps[0]].reshape(-1, 64)
        tab = fused_tables(si.ac_tables[h.components[0].ac_table_id], "ac")
        ri = si.restart_interval
        eobrun = 0
        for unit, flat in enumerate(_noninterleaved_order(cg)):
            if ri and unit and unit % ri == 0:
                reader.next_segment()
                eobrun = 0
            block = plane[flat]
            k = ss
            if eobrun == 0:
                while k <= se:
                    sym = reader.symbol(tab)
                    r, s = sym >> 4, sym & 0x0F
                    newval = 0
                    if s:
                        if s != 1:
                            raise EntropyError(
                                f"bad AC refinement symbol {sym:#x}")
                        newval = p1 if reader.bits(1) else m1
                    elif r != 15:
                        eobrun = 1 << r
                        if r:
                            eobrun += reader.bits(r)
                        break  # rest of block handled by the EOB tail
                    # Advance over r zero-history coefficients, appending
                    # a correction bit to every nonzero one on the way.
                    while k <= se:
                        zz = _ZIGZAG[k]
                        coef = int(block[zz])
                        if coef != 0:
                            if reader.bits(1) and (coef & p1) == 0:
                                block[zz] = coef + (p1 if coef >= 0 else m1)
                        else:
                            r -= 1
                            if r < 0:
                                break
                        k += 1
                    if newval:
                        if k > se:
                            raise EntropyError(
                                "AC coefficient index overran the block")
                        block[_ZIGZAG[k]] = newval
                    k += 1
            if eobrun > 0:
                # EOB tail: correction bits for the remaining nonzero
                # history coefficients of this block.
                while k <= se:
                    zz = _ZIGZAG[k]
                    coef = int(block[zz])
                    if coef != 0:
                        if reader.bits(1) and (coef & p1) == 0:
                            block[zz] = coef + (p1 if coef >= 0 else m1)
                    k += 1
                eobrun -= 1
            self.units_done = unit + 1


def decode_progressive(info: JpegImageInfo) -> CoefficientBuffers:
    """Decode every scan of a parsed SOF2 stream into coefficients."""
    return ProgressiveDecoder(info).decode()


# ---------------------------------------------------------------------------
# Encoder.
# ---------------------------------------------------------------------------

class _ScanCounter:
    """Symbol-frequency sink for the table-optimization pass."""

    def __init__(self) -> None:
        self.freqs: dict[tuple[str, int], dict[int, int]] = {}

    def emit_symbol(self, key: tuple[str, int], sym: int) -> None:
        table = self.freqs.setdefault(key, {})
        table[sym] = table.get(sym, 0) + 1

    def emit_bits(self, value: int, n: int) -> None:
        pass


class _ScanEmitter:
    """Bit-emitting sink for the second (output) pass."""

    def __init__(self, encoders: dict[tuple[str, int], HuffmanEncoder]) -> None:
        self.writer = BitWriter()
        self.encoders = encoders

    def emit_symbol(self, key: tuple[str, int], sym: int) -> None:
        code, length = self.encoders[key].code_for(sym)
        self.writer.write_bits(code, length)

    def emit_bits(self, value: int, n: int) -> None:
        if n:
            self.writer.write_bits(value & ((1 << n) - 1), n)


class _AcScanState:
    """Per-scan EOB-run and buffered-correction-bit state (jcphuff)."""

    def __init__(self, sink, key: tuple[str, int]) -> None:
        self.sink = sink
        self.key = key
        self.eobrun = 0
        self.be_bits: list[int] = []

    def flush(self) -> None:
        """Emit any pending EOBn symbol plus its deferred correction bits."""
        if self.eobrun > 0:
            nbits = self.eobrun.bit_length() - 1
            self.sink.emit_symbol(self.key, nbits << 4)
            if nbits:
                self.sink.emit_bits(self.eobrun, nbits)
            self.eobrun = 0
            for b in self.be_bits:
                self.sink.emit_bits(b, 1)
            self.be_bits = []


def _encode_dc_first(geo: ImageGeometry, coeffs: CoefficientBuffers,
                     comps: list[int], slots: list[int], al: int,
                     sink) -> None:
    planes = [coeffs.planes[ci].reshape(-1, 64) for ci in comps]
    preds = [0] * len(comps)
    if len(comps) > 1:
        order = _interleaved_order(geo, comps)
    else:
        order = [(0, f) for f in
                 _noninterleaved_order(geo.components[comps[0]])]
    for k, flat in order:
        t = int(planes[k][flat, 0]) >> al
        diff = t - preds[k]
        preds[k] = t
        cat, bits, nbits = encode_magnitude(diff)
        sink.emit_symbol(("dc", slots[k]), cat)
        sink.emit_bits(bits, nbits)


def _encode_dc_refine(geo: ImageGeometry, coeffs: CoefficientBuffers,
                      comps: list[int], al: int, sink) -> None:
    planes = [coeffs.planes[ci].reshape(-1, 64) for ci in comps]
    if len(comps) > 1:
        order = _interleaved_order(geo, comps)
    else:
        order = [(0, f) for f in
                 _noninterleaved_order(geo.components[comps[0]])]
    for k, flat in order:
        sink.emit_bits((int(planes[k][flat, 0]) >> al) & 1, 1)


def _encode_ac_first(cg, plane: np.ndarray, ss: int, se: int, al: int,
                     state: _AcScanState) -> None:
    sink = state.sink
    for flat in _noninterleaved_order(cg):
        block = plane[flat]
        r = 0
        for k in range(ss, se + 1):
            temp = int(block[_ZIGZAG[k]])
            if temp < 0:
                temp = (-temp) >> al
                temp2 = ~temp
            else:
                temp >>= al
                temp2 = temp
            if temp == 0:
                r += 1
                continue
            state.flush()
            while r > 15:
                sink.emit_symbol(state.key, 0xF0)
                r -= 16
            nbits = temp.bit_length()
            sink.emit_symbol(state.key, (r << 4) | nbits)
            sink.emit_bits(temp2 & ((1 << nbits) - 1), nbits)
            r = 0
        if r > 0:
            state.eobrun += 1
            if state.eobrun == MAX_EOBRUN:
                state.flush()


def _encode_ac_refine(cg, plane: np.ndarray, ss: int, se: int, al: int,
                      state: _AcScanState) -> None:
    sink = state.sink
    for flat in _noninterleaved_order(cg):
        block = plane[flat]
        absvals = {}
        eob = ss - 1  # index of the last newly-nonzero coefficient
        for k in range(ss, se + 1):
            t = abs(int(block[_ZIGZAG[k]])) >> al
            absvals[k] = t
            if t == 1:
                eob = k
        r = 0
        br: list[int] = []  # correction bits awaiting the next symbol
        for k in range(ss, se + 1):
            temp = absvals[k]
            if temp == 0:
                r += 1
                continue
            # ZRLs not foldable into the EOB run must flush eagerly.
            while r > 15 and k <= eob:
                state.flush()
                sink.emit_symbol(state.key, 0xF0)
                r -= 16
                for b in br:
                    sink.emit_bits(b, 1)
                br = []
            if temp > 1:
                # History coefficient: contributes only a correction bit.
                br.append(temp & 1)
                continue
            state.flush()
            sink.emit_symbol(state.key, (r << 4) | 1)
            sink.emit_bits(1 if int(block[_ZIGZAG[k]]) >= 0 else 0, 1)
            for b in br:
                sink.emit_bits(b, 1)
            br = []
            r = 0
        if r > 0 or br:
            state.eobrun += 1
            state.be_bits.extend(br)
            if state.eobrun == MAX_EOBRUN \
                    or len(state.be_bits) > _MAX_CORR_BITS:
                state.flush()


@dataclass(frozen=True)
class EncodedScan:
    """One emitted scan: SOS parameters, its DHT tables, entropy bytes."""

    components: tuple[ScanComponent, ...]
    ss: int
    se: int
    ah: int
    al: int
    tables: tuple[HuffmanTableDef, ...]
    data: bytes


def _run_scan(encode, keys) -> tuple[tuple[HuffmanTableDef, ...], bytes]:
    """Two-pass scan emission: count symbols, optimize tables, emit.

    *encode* is called once with each sink; *keys* lists the
    ``("dc"/"ac", slot)`` table keys the scan may use.  Scans that emit
    no symbols at all (pure DC refinement) get no tables.
    """
    counter = _ScanCounter()
    encode(counter)
    encoders: dict[tuple[str, int], HuffmanEncoder] = {}
    tables: list[HuffmanTableDef] = []
    for key in keys:
        freqs = counter.freqs.get(key)
        if not freqs:
            continue
        spec = spec_from_frequencies(freqs)
        encoders[key] = HuffmanEncoder(spec)
        tables.append(HuffmanTableDef(
            table_class=0 if key[0] == "dc" else 1,
            table_id=key[1], spec=spec))
    emitter = _ScanEmitter(encoders)
    encode(emitter)
    emitter.writer.flush()
    return tuple(tables), emitter.writer.getvalue()


def encode_progressive_scans(
    geometry: ImageGeometry,
    coefficients: CoefficientBuffers,
    bands: tuple[tuple[int, int], ...] = DEFAULT_BANDS,
    point_transform: int = DEFAULT_POINT_TRANSFORM,
) -> list[EncodedScan]:
    """Encode quantized coefficients as a progressive scan sequence.

    The script is: one DC first scan (interleaved over every
    component), per-component AC first scans over *bands*, then the
    refinement passes (DC, then per-component AC per band) restoring
    the *point_transform* bits.  Every scan carries its own optimized
    Huffman tables — Annex-K tables lack the EOBn symbols progressive
    coding needs, and per-scan DHT segments exercise the parser's
    table-snapshot path.

    Restart markers are not emitted in progressive mode: the decoder
    supports them, but multi-scan streams gain nothing from segment
    fan-out here (progressive images are routed whole-image).
    """
    comps = list(range(len(geometry.components)))
    al = point_transform
    # Slot assignment: Y and K share DC slot 0 (luma-like statistics),
    # Cb/Cr share DC slot 1; AC scans are single-component on slot 0.
    dc_slots = [0 if i in (0, 3) else 1 for i in comps]
    scan_comps = tuple(
        ScanComponent(component_id=geometry.components[i].component_id,
                      dc_table_id=dc_slots[i], ac_table_id=0)
        for i in comps)
    scans: list[EncodedScan] = []

    def dc_keys():
        return [("dc", s) for s in sorted(set(dc_slots))]

    # DC first scan (Al = point_transform).
    tables, data = _run_scan(
        lambda sink: _encode_dc_first(geometry, coefficients, comps,
                                      dc_slots, al, sink),
        dc_keys())
    scans.append(EncodedScan(components=scan_comps, ss=0, se=0, ah=0,
                             al=al, tables=tables, data=data))

    # Per-component AC first scans, one per spectral band.
    for ci in comps:
        cg = geometry.components[ci]
        plane = coefficients.planes[ci].reshape(-1, 64)
        for (ss, se) in bands:
            def encode(sink, cg=cg, plane=plane, ss=ss, se=se):
                state = _AcScanState(sink, ("ac", 0))
                _encode_ac_first(cg, plane, ss, se, al, state)
                state.flush()
            tables, data = _run_scan(encode, [("ac", 0)])
            scans.append(EncodedScan(
                components=(scan_comps[ci],), ss=ss, se=se, ah=0, al=al,
                tables=tables, data=data))

    if al == 0:
        return scans

    # DC refinement (Ah = Al+1 chain down to 0; one pass for al = 1).
    for cur in range(al - 1, -1, -1):
        emitter = _ScanEmitter({})
        _encode_dc_refine(geometry, coefficients, comps, cur, emitter)
        emitter.writer.flush()
        scans.append(EncodedScan(
            components=scan_comps, ss=0, se=0, ah=cur + 1, al=cur,
            tables=(), data=emitter.writer.getvalue()))

        # AC refinement per component and band at this stage.
        for ci in comps:
            cg = geometry.components[ci]
            plane = coefficients.planes[ci].reshape(-1, 64)
            for (ss, se) in bands:
                def encode(sink, cg=cg, plane=plane, ss=ss, se=se, cur=cur):
                    state = _AcScanState(sink, ("ac", 0))
                    _encode_ac_refine(cg, plane, ss, se, cur, state)
                    state.flush()
                tables, data = _run_scan(encode, [("ac", 0)])
                scans.append(EncodedScan(
                    components=(scan_comps[ci],), ss=ss, se=se,
                    ah=cur + 1, al=cur, tables=tables, data=data))
    return scans
