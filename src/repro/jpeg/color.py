"""Color-space conversion (paper Section 4.3, Algorithm 2).

YCbCr -> RGB per the JFIF equations::

    R = Y + 1.402   (Cr - 128)
    G = Y - 0.34414 (Cb - 128) - 0.71414 (Cr - 128)
    B = Y + 1.772   (Cb - 128)

plus the forward (RGB -> YCbCr) transform used by the encoder, both as
float paths and as the libjpeg-style 16-bit fixed-point paths ("SIMD"
analog).  All functions are fully vectorized over arbitrary leading axes.
"""

from __future__ import annotations

import numpy as np

from .constants import MAX_SAMPLE

#: Fixed-point scale used by the integer conversion path (libjpeg uses 16).
FIX_BITS = 16
_HALF = 1 << (FIX_BITS - 1)


def _fix(x: float) -> int:
    return int(x * (1 << FIX_BITS) + 0.5)


def ycbcr_to_rgb_float(y: np.ndarray, cb: np.ndarray, cr: np.ndarray) -> np.ndarray:
    """Algorithm 2, float arithmetic.

    Inputs are broadcast-compatible sample arrays (typically uint8);
    returns an (..., 3) uint8 RGB array.
    """
    yf = y.astype(np.float64)
    cbf = cb.astype(np.float64) - 128.0
    crf = cr.astype(np.float64) - 128.0
    r = yf + 1.402 * crf
    g = yf - 0.34414 * cbf - 0.71414 * crf
    b = yf + 1.772 * cbf
    rgb = np.stack([r, g, b], axis=-1)
    return np.clip(np.rint(rgb), 0, MAX_SAMPLE).astype(np.uint8)


_FR_CR = _fix(1.402)
_FG_CB = _fix(0.34414)
_FG_CR = _fix(0.71414)
_FB_CB = _fix(1.772)


def ycbcr_to_rgb_int(y: np.ndarray, cb: np.ndarray, cr: np.ndarray) -> np.ndarray:
    """Algorithm 2 in 16-bit fixed point (libjpeg jdcolor.c convention)."""
    yi = y.astype(np.int64) << FIX_BITS
    cbi = cb.astype(np.int64) - 128
    cri = cr.astype(np.int64) - 128
    r = (yi + _FR_CR * cri + _HALF) >> FIX_BITS
    g = (yi - _FG_CB * cbi - _FG_CR * cri + _HALF) >> FIX_BITS
    b = (yi + _FB_CB * cbi + _HALF) >> FIX_BITS
    rgb = np.stack([r, g, b], axis=-1)
    return np.clip(rgb, 0, MAX_SAMPLE).astype(np.uint8)


def rgb_to_ycbcr_float(rgb: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Forward JFIF transform for the encoder; returns (Y, Cb, Cr) uint8."""
    f = rgb.astype(np.float64)
    r, g, b = f[..., 0], f[..., 1], f[..., 2]
    y = 0.299 * r + 0.587 * g + 0.114 * b
    cb = 128.0 - 0.168735892 * r - 0.331264108 * g + 0.5 * b
    cr = 128.0 + 0.5 * r - 0.418687589 * g - 0.081312411 * b
    out = np.stack([y, cb, cr], axis=-1)
    out = np.clip(np.rint(out), 0, MAX_SAMPLE).astype(np.uint8)
    return out[..., 0], out[..., 1], out[..., 2]


def color_convert_interleaved(ycc: np.ndarray) -> np.ndarray:
    """Convenience wrapper: (..., 3) YCbCr -> (..., 3) RGB (float path)."""
    return ycbcr_to_rgb_float(ycc[..., 0], ycc[..., 1], ycc[..., 2])


def gray_to_rgb(y: np.ndarray) -> np.ndarray:
    """Grayscale scan to RGB: replicate luma into all three channels."""
    y = np.asarray(y)
    return np.repeat(
        np.clip(y, 0, MAX_SAMPLE).astype(np.uint8)[..., None], 3, axis=-1)


def cmyk_inverted_to_rgb(c: np.ndarray, m: np.ndarray, y: np.ndarray,
                         k: np.ndarray) -> np.ndarray:
    """Adobe *inverted* CMYK (APP14 transform 0) to RGB.

    Adobe stores CMYK complemented, so the stored samples are already
    ``255 - ink``: ``R = C' * K' / 255`` with C' = stored cyan channel
    and K' = stored black channel (both inverted).
    """
    kf = k.astype(np.uint32)
    rgb = np.stack([
        (c.astype(np.uint32) * kf + 127) // 255,
        (m.astype(np.uint32) * kf + 127) // 255,
        (y.astype(np.uint32) * kf + 127) // 255,
    ], axis=-1)
    return np.clip(rgb, 0, MAX_SAMPLE).astype(np.uint8)


def ycck_to_rgb(y: np.ndarray, cb: np.ndarray, cr: np.ndarray,
                k: np.ndarray) -> np.ndarray:
    """Adobe YCCK (APP14 transform 2) to RGB.

    The first three channels are the YCbCr transform of the inverted
    CMY inks; converting them back yields (C', M', Y') which combine
    with the inverted K plane exactly like transform-0 CMYK.
    """
    cmy_inv = ycbcr_to_rgb_float(y, cb, cr)
    return cmyk_inverted_to_rgb(
        cmy_inv[..., 0], cmy_inv[..., 1], cmy_inv[..., 2], k)


def rgb_to_ycck(rgb: np.ndarray) -> tuple[np.ndarray, np.ndarray,
                                          np.ndarray, np.ndarray]:
    """Forward YCCK transform for the encoder's 4-component path.

    GCR with maximal ink preservation: ``K' = max(R, G, B)`` (inverted
    black), inks normalized by K' then YCbCr-transformed.  Chosen for
    determinism — the decoder inverts it exactly on smooth data, and
    the scenario oracles only require decode determinism, not fidelity
    to any particular printing profile.
    """
    f = rgb.astype(np.float64)
    k_inv = np.max(f, axis=-1)
    scale = 255.0 / np.maximum(k_inv, 1.0)
    cmy_inv = np.clip(np.rint(f * scale[..., None]), 0, MAX_SAMPLE)
    y, cb, cr = rgb_to_ycbcr_float(cmy_inv.astype(np.uint8))
    k = np.clip(np.rint(k_inv), 0, MAX_SAMPLE).astype(np.uint8)
    return y, cb, cr, k
