"""Baseline JPEG encoder (substrate for corpus generation).

The paper evaluates *decoding*; we still need real JFIF byte streams with
controllable entropy density, so this is a complete baseline encoder:
RGB -> YCbCr -> subsample -> blocks -> FDCT -> quantize -> Huffman scan ->
marker assembly.  Supports 4:4:4 / 4:2:2 / 4:2:0, quality scaling,
restart intervals and optionally per-image optimized Huffman tables.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import JpegError
from . import constants as C
from .blocks import ImageGeometry, plane_to_blocks
from .color import rgb_to_ycbcr_float, rgb_to_ycck
from .dct import fdct_2d_blocks
from .entropy import (
    CoefficientBuffers,
    ComponentTables,
    EntropyEncoder,
    collect_symbol_frequencies,
)
from .huffman import HuffmanSpec, spec_from_frequencies
from .markers import (
    FrameComponent,
    HuffmanTableDef,
    ScanComponent,
    build_app0_jfif,
    build_app14_adobe,
    build_dht,
    build_dqt,
    build_dri,
    build_sof0,
    build_sos,
)
from .progressive import encode_progressive_scans
from .quantization import QuantTable, chrominance_table, luminance_table, quantize_blocks
from .sampling import downsample_plane

#: Supported encoder colorspaces and their component counts.
COLORSPACES = {"gray": 1, "ycbcr": 3, "ycck": 4}


@dataclass(frozen=True)
class EncoderSettings:
    """Encoder knobs, mirroring cjpeg's commonly used options.

    ``colorspace`` selects the component layout: ``"ycbcr"`` (3-component
    JFIF, default), ``"gray"`` (single luma component — any requested
    subsampling collapses to 4:4:4 as there is no chroma), or ``"ycck"``
    (4-component Adobe with APP14 transform 2, the inverted-CMYK print
    path).  ``progressive`` emits a SOF2 multi-scan stream carrying the
    *same* quantized coefficients as the baseline twin — spectral bands
    [1, 5] and [6, 63] per component plus one successive-approximation
    refinement pass, each scan with its own optimized Huffman tables.
    Progressive mode ignores ``restart_interval`` and
    ``optimize_huffman`` (per-scan tables are always optimized).
    """

    quality: int = 85
    subsampling: str = "4:2:2"
    restart_interval: int = 0          # MCUs between RSTn markers, 0 = off
    optimize_huffman: bool = False     # per-image tables vs Annex-K tables
    comment: bytes | None = None
    colorspace: str = "ycbcr"
    progressive: bool = False


def _slot_of(ci: int) -> int:
    """Table/quant slot for component index: Y and K are luma-like (0),
    Cb/Cr share the chroma slot (1)."""
    return 0 if ci in (0, 3) else 1


def _standard_tables(ncomp: int = 3) -> list[ComponentTables]:
    """Annex-K "typical" tables: luma pair for Y (and K), chroma for Cb/Cr."""
    dc_l = HuffmanSpec(C.STD_DC_LUMINANCE_BITS, C.STD_DC_LUMINANCE_VALUES)
    ac_l = HuffmanSpec(C.STD_AC_LUMINANCE_BITS, C.STD_AC_LUMINANCE_VALUES)
    dc_c = HuffmanSpec(C.STD_DC_CHROMINANCE_BITS, C.STD_DC_CHROMINANCE_VALUES)
    ac_c = HuffmanSpec(C.STD_AC_CHROMINANCE_BITS, C.STD_AC_CHROMINANCE_VALUES)
    luma = ComponentTables(dc=dc_l, ac=ac_l)
    chroma = ComponentTables(dc=dc_c, ac=ac_c)
    return [luma if _slot_of(ci) == 0 else chroma for ci in range(ncomp)]


def encode_coefficients(rgb: np.ndarray, settings: EncoderSettings) -> tuple[
    ImageGeometry, CoefficientBuffers, QuantTable, QuantTable
]:
    """Front half of the encoder: RGB image -> quantized coefficients."""
    rgb = np.asarray(rgb)
    if rgb.ndim != 3 or rgb.shape[2] != 3:
        raise JpegError(f"expected (h, w, 3) RGB input, got {rgb.shape}")
    if settings.colorspace not in COLORSPACES:
        raise JpegError(f"unknown colorspace {settings.colorspace!r}")
    h, w = rgb.shape[:2]
    ncomp = COLORSPACES[settings.colorspace]
    mode = "4:4:4" if ncomp == 1 else settings.subsampling
    geo = ImageGeometry(width=w, height=h, mode=mode, ncomponents=ncomp)

    lq = QuantTable(0, luminance_table(settings.quality))
    cq = QuantTable(1, chrominance_table(settings.quality))

    if ncomp == 1:
        planes = [rgb_to_ycbcr_float(rgb)[0]]
    elif ncomp == 3:
        y, cb, cr = rgb_to_ycbcr_float(rgb)
        planes = [y, downsample_plane(cb, mode), downsample_plane(cr, mode)]
    else:
        y, cb, cr, k = rgb_to_ycck(rgb)
        planes = [y, downsample_plane(cb, mode), downsample_plane(cr, mode), k]

    coeffs = CoefficientBuffers.empty(geo)
    for ci, plane in enumerate(planes):
        comp = geo.components[ci]
        qt = lq if _slot_of(ci) == 0 else cq
        blocks = plane_to_blocks(plane, comp.blocks_wide, comp.blocks_high)
        raw = fdct_2d_blocks(blocks)
        coeffs.planes[ci][:] = quantize_blocks(raw, qt.values)
    return geo, coeffs, lq, cq


def _optimized_tables(geo: ImageGeometry, coeffs: CoefficientBuffers,
                      restart_interval: int = 0) -> list[ComponentTables]:
    """Per-image Huffman tables; components sharing a slot share a pair."""
    dc_freqs, ac_freqs = collect_symbol_frequencies(geo, coeffs, restart_interval)
    ncomp = len(geo.components)
    # merge statistics per table slot (libjpeg convention for chroma)
    merged_dc: dict[int, dict[int, int]] = {}
    merged_ac: dict[int, dict[int, int]] = {}
    for ci in range(ncomp):
        slot = _slot_of(ci)
        for src, dst in ((dc_freqs[ci], merged_dc.setdefault(slot, {})),
                         (ac_freqs[ci], merged_ac.setdefault(slot, {}))):
            for k, v in src.items():
                dst[k] = dst.get(k, 0) + v
    pairs = {
        slot: ComponentTables(
            dc=spec_from_frequencies(merged_dc[slot]),
            ac=spec_from_frequencies(merged_ac[slot]),
        )
        for slot in merged_dc
    }
    return [pairs[_slot_of(ci)] for ci in range(ncomp)]


def _frame_components(geo: ImageGeometry) -> list[FrameComponent]:
    return [
        FrameComponent(component_id=cg.component_id, h_factor=cg.h_factor,
                       v_factor=cg.v_factor, quant_table_id=_slot_of(ci))
        for ci, cg in enumerate(geo.components)
    ]


def _header_parts(geo: ImageGeometry, settings: EncoderSettings,
                  lq: QuantTable, cq: QuantTable) -> list[bytes]:
    """Markers common to both modes: SOI, APPn, COM, DQT."""
    ncomp = len(geo.components)
    # JFIF permits 1 or 3 components; 4-component files are Adobe-tagged
    # instead (transform 2 = YCCK, what our color path emits).
    app = build_app14_adobe(2) if ncomp == 4 else build_app0_jfif()
    parts = [bytes([0xFF, C.SOI]), app]
    if settings.comment:
        from .markers import build_com

        parts.append(build_com(settings.comment))
    parts.append(build_dqt([lq] if ncomp == 1 else [lq, cq]))
    return parts


def encode_jpeg(rgb: np.ndarray, settings: EncoderSettings | None = None) -> bytes:
    """Encode an (h, w, 3) uint8 RGB array to JFIF/Adobe JPEG bytes."""
    settings = settings or EncoderSettings()
    geo, coeffs, lq, cq = encode_coefficients(rgb, settings)
    ncomp = len(geo.components)

    if settings.progressive:
        parts = _header_parts(geo, settings, lq, cq)
        parts.append(build_sof0(geo.width, geo.height,
                                _frame_components(geo), progressive=True))
        for scan in encode_progressive_scans(geo, coeffs):
            if scan.tables:
                parts.append(build_dht(list(scan.tables)))
            parts.append(build_sos(list(scan.components),
                                   scan.ss, scan.se, scan.ah, scan.al))
            parts.append(scan.data)
        parts.append(bytes([0xFF, C.EOI]))
        return b"".join(parts)

    tables = (
        _optimized_tables(geo, coeffs, settings.restart_interval)
        if settings.optimize_huffman
        else _standard_tables(ncomp)
    )

    entropy = EntropyEncoder(geo, tables, settings.restart_interval)
    scan_bytes = entropy.encode(coeffs)

    # components sharing a slot share a DHT pair, optimized or not
    dht_tables = []
    for slot in sorted({_slot_of(ci) for ci in range(ncomp)}):
        ci = [c for c in range(ncomp) if _slot_of(c) == slot][0]
        dht_tables.append(HuffmanTableDef(0, slot, tables[ci].dc))
        dht_tables.append(HuffmanTableDef(1, slot, tables[ci].ac))
    scan_components = [
        ScanComponent(component_id=cg.component_id,
                      dc_table_id=_slot_of(ci), ac_table_id=_slot_of(ci))
        for ci, cg in enumerate(geo.components)
    ]

    parts = _header_parts(geo, settings, lq, cq)
    parts.append(build_sof0(geo.width, geo.height, _frame_components(geo)))
    parts.append(build_dht(dht_tables))
    if settings.restart_interval:
        parts.append(build_dri(settings.restart_interval))
    parts.append(build_sos(scan_components))
    parts.append(scan_bytes)
    parts.append(bytes([0xFF, C.EOI]))
    return b"".join(parts)
