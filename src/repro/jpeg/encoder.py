"""Baseline JPEG encoder (substrate for corpus generation).

The paper evaluates *decoding*; we still need real JFIF byte streams with
controllable entropy density, so this is a complete baseline encoder:
RGB -> YCbCr -> subsample -> blocks -> FDCT -> quantize -> Huffman scan ->
marker assembly.  Supports 4:4:4 / 4:2:2 / 4:2:0, quality scaling,
restart intervals and optionally per-image optimized Huffman tables.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import JpegError
from . import constants as C
from .blocks import ImageGeometry, plane_to_blocks
from .color import rgb_to_ycbcr_float
from .dct import fdct_2d_blocks
from .entropy import (
    CoefficientBuffers,
    ComponentTables,
    EntropyEncoder,
    collect_symbol_frequencies,
)
from .huffman import HuffmanSpec, spec_from_frequencies
from .markers import (
    FrameComponent,
    HuffmanTableDef,
    ScanComponent,
    build_app0_jfif,
    build_dht,
    build_dqt,
    build_dri,
    build_sof0,
    build_sos,
)
from .quantization import QuantTable, chrominance_table, luminance_table, quantize_blocks
from .sampling import downsample_plane, sampling_factors


@dataclass(frozen=True)
class EncoderSettings:
    """Encoder knobs, mirroring cjpeg's commonly used options."""

    quality: int = 85
    subsampling: str = "4:2:2"
    restart_interval: int = 0          # MCUs between RSTn markers, 0 = off
    optimize_huffman: bool = False     # per-image tables vs Annex-K tables
    comment: bytes | None = None


def _standard_tables() -> list[ComponentTables]:
    """Annex-K "typical" tables: luma pair for Y, chroma pair for Cb/Cr."""
    dc_l = HuffmanSpec(C.STD_DC_LUMINANCE_BITS, C.STD_DC_LUMINANCE_VALUES)
    ac_l = HuffmanSpec(C.STD_AC_LUMINANCE_BITS, C.STD_AC_LUMINANCE_VALUES)
    dc_c = HuffmanSpec(C.STD_DC_CHROMINANCE_BITS, C.STD_DC_CHROMINANCE_VALUES)
    ac_c = HuffmanSpec(C.STD_AC_CHROMINANCE_BITS, C.STD_AC_CHROMINANCE_VALUES)
    return [
        ComponentTables(dc=dc_l, ac=ac_l),
        ComponentTables(dc=dc_c, ac=ac_c),
        ComponentTables(dc=dc_c, ac=ac_c),
    ]


def encode_coefficients(rgb: np.ndarray, settings: EncoderSettings) -> tuple[
    ImageGeometry, CoefficientBuffers, QuantTable, QuantTable
]:
    """Front half of the encoder: RGB image -> quantized coefficients."""
    rgb = np.asarray(rgb)
    if rgb.ndim != 3 or rgb.shape[2] != 3:
        raise JpegError(f"expected (h, w, 3) RGB input, got {rgb.shape}")
    h, w = rgb.shape[:2]
    geo = ImageGeometry(width=w, height=h, mode=settings.subsampling)

    y, cb, cr = rgb_to_ycbcr_float(rgb)
    cb = downsample_plane(cb, settings.subsampling)
    cr = downsample_plane(cr, settings.subsampling)

    lq = QuantTable(0, luminance_table(settings.quality))
    cq = QuantTable(1, chrominance_table(settings.quality))

    coeffs = CoefficientBuffers.empty(geo)
    for ci, (plane, qt) in enumerate(((y, lq), (cb, cq), (cr, cq))):
        comp = geo.components[ci]
        blocks = plane_to_blocks(plane, comp.blocks_wide, comp.blocks_high)
        raw = fdct_2d_blocks(blocks)
        coeffs.planes[ci][:] = quantize_blocks(raw, qt.values)
    return geo, coeffs, lq, cq


def _optimized_tables(geo: ImageGeometry, coeffs: CoefficientBuffers,
                      restart_interval: int = 0) -> list[ComponentTables]:
    """Per-image Huffman tables; chroma components share one pair."""
    dc_freqs, ac_freqs = collect_symbol_frequencies(geo, coeffs, restart_interval)
    # merge the chroma components' statistics (libjpeg convention)
    dc_chroma: dict[int, int] = {}
    ac_chroma: dict[int, int] = {}
    for d in dc_freqs[1:]:
        for k, v in d.items():
            dc_chroma[k] = dc_chroma.get(k, 0) + v
    for d in ac_freqs[1:]:
        for k, v in d.items():
            ac_chroma[k] = ac_chroma.get(k, 0) + v
    luma = ComponentTables(
        dc=spec_from_frequencies(dc_freqs[0]),
        ac=spec_from_frequencies(ac_freqs[0]),
    )
    chroma = ComponentTables(
        dc=spec_from_frequencies(dc_chroma),
        ac=spec_from_frequencies(ac_chroma),
    )
    return [luma, chroma, chroma]


def encode_jpeg(rgb: np.ndarray, settings: EncoderSettings | None = None) -> bytes:
    """Encode an (h, w, 3) uint8 RGB array to baseline JFIF bytes."""
    settings = settings or EncoderSettings()
    geo, coeffs, lq, cq = encode_coefficients(rgb, settings)
    tables = (
        _optimized_tables(geo, coeffs, settings.restart_interval)
        if settings.optimize_huffman
        else _standard_tables()
    )

    entropy = EntropyEncoder(geo, tables, settings.restart_interval)
    scan_bytes = entropy.encode(coeffs)

    hf, vf = sampling_factors(settings.subsampling)
    frame_components = [
        FrameComponent(component_id=1, h_factor=hf, v_factor=vf, quant_table_id=0),
        FrameComponent(component_id=2, h_factor=1, v_factor=1, quant_table_id=1),
        FrameComponent(component_id=3, h_factor=1, v_factor=1, quant_table_id=1),
    ]
    # chroma shares DHT slot 1 whether or not tables are optimized
    dht_tables = [
        HuffmanTableDef(0, 0, tables[0].dc),
        HuffmanTableDef(1, 0, tables[0].ac),
        HuffmanTableDef(0, 1, tables[1].dc),
        HuffmanTableDef(1, 1, tables[1].ac),
    ]
    scan_components = [
        ScanComponent(component_id=1, dc_table_id=0, ac_table_id=0),
        ScanComponent(component_id=2, dc_table_id=1, ac_table_id=1),
        ScanComponent(component_id=3, dc_table_id=1, ac_table_id=1),
    ]

    parts = [bytes([0xFF, C.SOI]), build_app0_jfif()]
    if settings.comment:
        from .markers import build_com

        parts.append(build_com(settings.comment))
    parts.append(build_dqt([lq, cq]))
    parts.append(build_sof0(geo.width, geo.height, frame_components))
    parts.append(build_dht(dht_tables))
    if settings.restart_interval:
        parts.append(build_dri(settings.restart_interval))
    parts.append(build_sos(scan_components))
    parts.append(scan_bytes)
    parts.append(bytes([0xFF, C.EOI]))
    return b"".join(parts)
