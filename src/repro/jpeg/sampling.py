"""Chroma subsampling and upsampling (paper Section 4.2, Algorithm 1).

The encoder downsamples chrominance; the decoder restores it.  The
decoder's "fancy" (triangular-filter) horizontal upsampler is exactly
Algorithm 1 of the paper: each input pixel expands to two outputs that
weight the pixel 3:1 against its left/right neighbour, with the two edge
pixels copied.  All paths are vectorized over whole planes.
"""

from __future__ import annotations

import numpy as np

from ..errors import JpegError

#: Supported subsampling modes, named after the JFIF convention.
SUBSAMPLING_MODES = ("4:4:4", "4:2:2", "4:2:0", "4:1:1", "4:4:0")


def sampling_factors(mode: str) -> tuple[int, int]:
    """Return (horizontal, vertical) luma sampling factors for *mode*.

    Chroma components always use factor (1, 1); the MCU geometry follows
    from the ratio, e.g. 4:2:2 -> (2, 1) -> 16x8-pixel MCUs.
    """
    if mode == "4:4:4":
        return 1, 1
    if mode == "4:2:2":
        return 2, 1
    if mode == "4:2:0":
        return 2, 2
    if mode == "4:1:1":
        return 4, 1
    if mode == "4:4:0":
        return 1, 2
    raise JpegError(f"unsupported subsampling mode {mode!r}")


def downsample_h2v1(plane: np.ndarray) -> np.ndarray:
    """Average horizontal pairs (4:2:2 encoder path).

    Odd-width planes replicate the final column first, matching libjpeg.
    """
    plane = np.asarray(plane)
    if plane.shape[1] % 2:
        plane = np.concatenate([plane, plane[:, -1:]], axis=1)
    pairs = plane.reshape(plane.shape[0], -1, 2).astype(np.uint16)
    return ((pairs[:, :, 0] + pairs[:, :, 1] + 1) // 2).astype(plane.dtype)


def downsample_h2v2(plane: np.ndarray) -> np.ndarray:
    """Average 2x2 neighbourhoods (4:2:0 encoder path)."""
    plane = np.asarray(plane)
    if plane.shape[0] % 2:
        plane = np.concatenate([plane, plane[-1:, :]], axis=0)
    if plane.shape[1] % 2:
        plane = np.concatenate([plane, plane[:, -1:]], axis=1)
    q = plane.astype(np.uint16)
    s = q[0::2, 0::2] + q[0::2, 1::2] + q[1::2, 0::2] + q[1::2, 1::2]
    return ((s + 2) // 4).astype(plane.dtype)


def downsample_h4v1(plane: np.ndarray) -> np.ndarray:
    """Average horizontal quads (4:1:1 encoder path).

    Widths not divisible by four replicate the final column, matching
    the pair-averaging edge policy of :func:`downsample_h2v1`.
    """
    plane = np.asarray(plane)
    pad = (-plane.shape[1]) % 4
    if pad:
        plane = np.concatenate([plane] + [plane[:, -1:]] * pad, axis=1)
    quads = plane.reshape(plane.shape[0], -1, 4).astype(np.uint16)
    return ((quads.sum(axis=2) + 2) // 4).astype(plane.dtype)


def downsample_h1v2(plane: np.ndarray) -> np.ndarray:
    """Average vertical pairs (4:4:0 encoder path)."""
    plane = np.asarray(plane)
    if plane.shape[0] % 2:
        plane = np.concatenate([plane, plane[-1:, :]], axis=0)
    pairs = plane.reshape(-1, 2, plane.shape[1]).astype(np.uint16)
    return ((pairs[:, 0] + pairs[:, 1] + 1) // 2).astype(plane.dtype)


def upsample_h2v1_fancy(plane: np.ndarray) -> np.ndarray:
    """Fancy 2x horizontal upsampling — Algorithm 1 vectorized.

    For input row ``In[0..w-1]`` the output row has ``2w`` pixels::

        Out[0]      = In[0]
        Out[2i]     = (3 In[i] + In[i-1] + 1) / 4     (i > 0)
        Out[2i+1]   = (3 In[i] + In[i+1] + 2) / 4     (i < w-1)
        Out[2w-1]   = In[w-1]

    which reproduces lines 1-16 of the paper's Algorithm 1 for w = 8.
    """
    plane = np.asarray(plane)
    h, w = plane.shape
    src = plane.astype(np.uint32)
    out = np.empty((h, 2 * w), dtype=np.uint32)
    # even outputs: weight 3:1 with the left neighbour
    out[:, 2::2] = (3 * src[:, 1:] + src[:, :-1] + 1) >> 2
    # odd outputs: weight 3:1 with the right neighbour
    out[:, 1:-1:2] = (3 * src[:, :-1] + src[:, 1:] + 2) >> 2
    out[:, 0] = src[:, 0]
    out[:, -1] = src[:, -1]
    return out.astype(plane.dtype)


def upsample_h2v1_simple(plane: np.ndarray) -> np.ndarray:
    """Pixel-replication 2x horizontal upsampling (non-fancy baseline)."""
    return np.repeat(np.asarray(plane), 2, axis=1)


def upsample_h2v2_fancy(plane: np.ndarray) -> np.ndarray:
    """Fancy 2x2 upsampling: triangular filter in both directions.

    Implemented as the separable composition libjpeg uses: a vertical
    3:1 expansion followed by the horizontal Algorithm-1 pass, with
    rounding matched to jdsample.c (vertical adds happen at 16x scale).
    """
    plane = np.asarray(plane)
    src = plane.astype(np.uint32)
    h, w = src.shape
    # vertical pass at 4x precision: rows weight 3:1 with up/down neighbour
    vert = np.empty((2 * h, w), dtype=np.uint32)
    vert[2::2] = 3 * src[1:] + src[:-1]
    vert[1:-1:2] = 3 * src[:-1] + src[1:]
    vert[0] = 4 * src[0]
    vert[-1] = 4 * src[-1]
    # horizontal pass consumes the 4x-scaled rows, total scale 16
    out = np.empty((2 * h, 2 * w), dtype=np.uint32)
    out[:, 2::2] = (3 * vert[:, 1:] + vert[:, :-1] + 8) >> 4
    out[:, 1:-1:2] = (3 * vert[:, :-1] + vert[:, 1:] + 7) >> 4
    out[:, 0] = (vert[:, 0] + 2) >> 2
    out[:, -1] = (vert[:, -1] + 2) >> 2
    return out.astype(plane.dtype)


def upsample_h4v1_fancy(plane: np.ndarray) -> np.ndarray:
    """Fancy 4x horizontal upsampling: Algorithm 1 applied twice.

    Two triangular-filter doublings compose to the 4x expansion, the
    same cascade libjpeg's h2v1 upsampler performs when chained.
    """
    return upsample_h2v1_fancy(upsample_h2v1_fancy(plane))


def upsample_h1v2_fancy(plane: np.ndarray) -> np.ndarray:
    """Fancy 2x vertical upsampling: Algorithm 1 on the transpose."""
    return upsample_h2v1_fancy(np.asarray(plane).T).T


def upsample_plane(plane: np.ndarray, mode: str, fancy: bool = True) -> np.ndarray:
    """Upsample a chroma plane according to the subsampling *mode*."""
    if mode == "4:4:4":
        return np.asarray(plane)
    if mode == "4:2:2":
        return upsample_h2v1_fancy(plane) if fancy else upsample_h2v1_simple(plane)
    if mode == "4:2:0":
        if fancy:
            return upsample_h2v2_fancy(plane)
        return np.repeat(np.repeat(plane, 2, axis=0), 2, axis=1)
    if mode == "4:1:1":
        if fancy:
            return upsample_h4v1_fancy(plane)
        return np.repeat(np.asarray(plane), 4, axis=1)
    if mode == "4:4:0":
        if fancy:
            return upsample_h1v2_fancy(plane)
        return np.repeat(np.asarray(plane), 2, axis=0)
    raise JpegError(f"unsupported subsampling mode {mode!r}")


def downsample_plane(plane: np.ndarray, mode: str) -> np.ndarray:
    """Downsample a chroma plane according to the subsampling *mode*."""
    if mode == "4:4:4":
        return np.asarray(plane)
    if mode == "4:2:2":
        return downsample_h2v1(plane)
    if mode == "4:2:0":
        return downsample_h2v2(plane)
    if mode == "4:1:1":
        return downsample_h4v1(plane)
    if mode == "4:4:0":
        return downsample_h1v2(plane)
    raise JpegError(f"unsupported subsampling mode {mode!r}")
