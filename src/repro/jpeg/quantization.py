"""Quantization tables and (de)quantization.

Implements the IJG quality-scaling convention (quality 1..100 scales the
Annex-K tables), DQT segment payload encode/decode, and vectorized
quantize/dequantize over batches of blocks.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import JpegFormatError
from .constants import (
    BLOCK_SAMPLES,
    STD_CHROMINANCE_QUANT,
    STD_LUMINANCE_QUANT,
    ZIGZAG_ORDER,
)


def scale_quant_table(base: np.ndarray, quality: int) -> np.ndarray:
    """Scale an Annex-K table to an IJG quality factor in [1, 100].

    Quality 50 returns the base table; higher is finer (smaller steps).
    """
    if not 1 <= quality <= 100:
        raise ValueError(f"quality must be in [1, 100], got {quality}")
    if quality < 50:
        scale = 5000 // quality
    else:
        scale = 200 - quality * 2
    table = (base.astype(np.int64) * scale + 50) // 100
    return np.clip(table, 1, 255).astype(np.uint16)


def luminance_table(quality: int) -> np.ndarray:
    """Quality-scaled luminance quantization table (8x8, uint16)."""
    return scale_quant_table(STD_LUMINANCE_QUANT, quality)


def chrominance_table(quality: int) -> np.ndarray:
    """Quality-scaled chrominance quantization table (8x8, uint16)."""
    return scale_quant_table(STD_CHROMINANCE_QUANT, quality)


@dataclass(frozen=True)
class QuantTable:
    """A quantization table with its DQT slot id (0..3)."""

    table_id: int
    values: np.ndarray  # (8, 8) uint16, natural order

    def __post_init__(self) -> None:
        if not 0 <= self.table_id <= 3:
            raise JpegFormatError(f"bad quant table id {self.table_id}")
        if self.values.shape != (8, 8):
            raise JpegFormatError("quant table must be 8x8")
        if np.any(self.values < 1):
            raise JpegFormatError("quant steps must be >= 1")

    def to_dqt_payload(self) -> bytes:
        """Serialize as one table of a DQT segment payload (8-bit precision)."""
        zz = self.values.reshape(-1)[ZIGZAG_ORDER]
        if np.any(zz > 255):
            raise JpegFormatError("8-bit DQT cannot hold steps > 255")
        return bytes([self.table_id]) + bytes(int(v) for v in zz)


def parse_dqt_payload(payload: bytes) -> list[QuantTable]:
    """Parse a DQT segment payload (may define several tables)."""
    tables: list[QuantTable] = []
    pos = 0
    while pos < len(payload):
        pq_tq = payload[pos]
        precision = pq_tq >> 4
        table_id = pq_tq & 0x0F
        pos += 1
        if precision == 0:
            if pos + 64 > len(payload):
                raise JpegFormatError("truncated 8-bit DQT")
            zz = np.frombuffer(payload[pos: pos + 64], dtype=np.uint8)
            pos += 64
        elif precision == 1:
            if pos + 128 > len(payload):
                raise JpegFormatError("truncated 16-bit DQT")
            zz = np.frombuffer(payload[pos: pos + 128], dtype=">u2")
            pos += 128
        else:
            raise JpegFormatError(f"bad DQT precision {precision}")
        natural = np.empty(BLOCK_SAMPLES, dtype=np.uint16)
        natural[ZIGZAG_ORDER] = zz
        tables.append(QuantTable(table_id=table_id, values=natural.reshape(8, 8)))
    return tables


def quantize_blocks(coeffs: np.ndarray, table: np.ndarray) -> np.ndarray:
    """Quantize a batch of DCT blocks.

    Parameters
    ----------
    coeffs : (n, 8, 8) float or int array of raw DCT coefficients.
    table : (8, 8) quantization steps.

    Returns
    -------
    (n, 8, 8) int16 quantized coefficients, rounded to nearest.
    """
    q = table.astype(np.float64)
    out = np.rint(coeffs.astype(np.float64) / q)
    return out.astype(np.int16)


def dequantize_blocks(coeffs: np.ndarray, table: np.ndarray) -> np.ndarray:
    """Dequantize a batch of quantized blocks to int32 DCT coefficients."""
    return coeffs.astype(np.int32) * table.astype(np.int32)
