"""Canonical Huffman coding for baseline JPEG.

A JPEG Huffman table is transmitted as a (BITS, HUFFVAL) pair: BITS[i]
counts the codes of length i+1, HUFFVAL lists symbol values by increasing
code length.  Codes are assigned canonically (numerically increasing
within a length, doubling between lengths).

Decoding uses the classic two-level strategy libjpeg uses: a dense
lookup table indexed by the next ``LOOKUP_BITS`` bits resolves short
codes in one step; longer codes fall back to the MINCODE/MAXCODE walk.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import HuffmanError
from .bitstream import BitReader, BitWriter

#: Number of bits resolved by the first-level decode table.
LOOKUP_BITS = 8

#: Maximum JPEG Huffman code length.
MAX_CODE_LENGTH = 16


@dataclass(frozen=True)
class HuffmanSpec:
    """Transmitted form of a Huffman table: (BITS, HUFFVAL)."""

    bits: tuple[int, ...]       # 16 counts, bits[i] = #codes of length i+1
    values: tuple[int, ...]     # symbols in canonical order

    def __post_init__(self) -> None:
        if len(self.bits) != MAX_CODE_LENGTH:
            raise HuffmanError("BITS must have exactly 16 entries")
        if sum(self.bits) != len(self.values):
            raise HuffmanError(
                f"BITS sums to {sum(self.bits)} but {len(self.values)} "
                "values supplied"
            )
        if sum(self.bits) == 0:
            raise HuffmanError("empty Huffman table")
        if len(set(self.values)) != len(self.values):
            raise HuffmanError("duplicate symbols in Huffman table")
        # Kraft inequality check: the canonical assignment must not overflow.
        code = 0
        for length in range(1, MAX_CODE_LENGTH + 1):
            code += self.bits[length - 1]
            if code > (1 << length):
                raise HuffmanError("BITS describes an over-full code")
            code <<= 1


def spec_from_frequencies(freqs: dict[int, int]) -> HuffmanSpec:
    """Build a JPEG-legal Huffman spec from symbol frequencies.

    Follows the Annex-K procedure: build an optimal code, then limit code
    lengths to 16 bits by moving symbols up the tree.  JPEG additionally
    reserves the all-ones code, which the standard procedure guarantees by
    adding a pseudo-symbol with frequency 1.
    """
    if not freqs:
        raise HuffmanError("cannot build a table from no symbols")
    if any(f <= 0 for f in freqs.values()):
        raise HuffmanError("frequencies must be positive")

    # Work arrays per Annex K.2: 257 slots, 256 is the reserved pseudo-symbol.
    freq = np.zeros(257, dtype=np.int64)
    for sym, f in freqs.items():
        if not 0 <= sym <= 255:
            raise HuffmanError(f"symbol {sym} out of byte range")
        freq[sym] = f
    freq[256] = 1  # reserve the all-ones code

    codesize = np.zeros(257, dtype=np.int64)
    others = np.full(257, -1, dtype=np.int64)

    while True:
        nz = np.nonzero(freq)[0]
        if len(nz) == 1:
            break
        # find the two least-frequent symbols (ties -> larger index first,
        # matching libjpeg's "smallest value of code size" bias)
        order = nz[np.lexsort((-nz, freq[nz]))]
        c1, c2 = int(order[0]), int(order[1])
        freq[c1] += freq[c2]
        freq[c2] = 0
        codesize[c1] += 1
        while others[c1] >= 0:
            c1 = int(others[c1])
            codesize[c1] += 1
        others[c1] = c2
        codesize[c2] += 1
        while others[c2] >= 0:
            c2 = int(others[c2])
            codesize[c2] += 1

    bits = np.zeros(33, dtype=np.int64)
    for size in codesize[codesize > 0]:
        bits[min(int(size), 32)] += 1

    # Limit code lengths to 16 bits (Annex K.3 adjustment).
    for i in range(32, 16, -1):
        while bits[i] > 0:
            j = i - 2
            while bits[j] == 0:
                j -= 1
            bits[i] -= 2
            bits[i - 1] += 1
            bits[j + 1] += 2
            bits[j] -= 1

    # Remove the reserved pseudo-symbol from the longest non-empty length.
    for i in range(16, 0, -1):
        if bits[i] > 0:
            bits[i] -= 1
            break

    # Sort symbols by (code size, symbol value); drop the pseudo-symbol.
    syms = [s for s in range(256) if codesize[s] > 0]
    syms.sort(key=lambda s: (codesize[s], s))
    return HuffmanSpec(bits=tuple(int(b) for b in bits[1:17]), values=tuple(syms))


@dataclass
class HuffmanEncoder:
    """Symbol -> (code, length) mapping derived from a spec."""

    spec: HuffmanSpec
    _codes: dict[int, tuple[int, int]] = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self._codes = {}
        code = 0
        k = 0
        for length in range(1, MAX_CODE_LENGTH + 1):
            for _ in range(self.spec.bits[length - 1]):
                self._codes[self.spec.values[k]] = (code, length)
                code += 1
                k += 1
            code <<= 1

    def encode(self, writer: BitWriter, symbol: int) -> None:
        """Write the code for *symbol* to *writer*."""
        try:
            code, length = self._codes[symbol]
        except KeyError:
            raise HuffmanError(f"symbol {symbol:#x} not in table") from None
        writer.write_bits(code, length)

    def code_for(self, symbol: int) -> tuple[int, int]:
        """Return (code, length) for *symbol* (for tests/inspection)."""
        if symbol not in self._codes:
            raise HuffmanError(f"symbol {symbol:#x} not in table")
        return self._codes[symbol]

    def code_length(self, symbol: int) -> int:
        """Length in bits of the code for *symbol*."""
        return self.code_for(symbol)[1]

    def code_arrays(self) -> tuple[list[int], list[int]]:
        """Dense symbol-indexed ``(codes, lengths)`` lists (256 entries).

        A zero length marks a symbol absent from the table.  This is the
        precomputed form the vectorized :class:`~repro.jpeg.entropy.
        EntropyEncoder` indexes in its hot loop instead of paying a dict
        lookup and a method call per symbol.
        """
        codes = [0] * 256
        lengths = [0] * 256
        for sym, (code, length) in self._codes.items():
            codes[sym] = code
            lengths[sym] = length
        return codes, lengths

    @property
    def symbols(self) -> tuple[int, ...]:
        return tuple(self._codes)


class HuffmanDecoder:
    """Table-driven decoder for one Huffman table.

    ``lookup[p]`` for an 8-bit prefix p packs (length << 8 | symbol) when a
    complete code of length <= 8 starts with p, else 0.  Longer codes use
    MINCODE/MAXCODE/VALPTR arrays (F.2.2.3 of the standard).
    """

    def __init__(self, spec: HuffmanSpec) -> None:
        self.spec = spec
        enc = HuffmanEncoder(spec)

        self._mincode = np.zeros(MAX_CODE_LENGTH + 1, dtype=np.int64)
        self._maxcode = np.full(MAX_CODE_LENGTH + 1, -1, dtype=np.int64)
        self._valptr = np.zeros(MAX_CODE_LENGTH + 1, dtype=np.int64)

        code = 0
        k = 0
        for length in range(1, MAX_CODE_LENGTH + 1):
            count = spec.bits[length - 1]
            if count:
                self._valptr[length] = k
                self._mincode[length] = code
                code += count
                k += count
                self._maxcode[length] = code - 1
            code <<= 1

        self._lookup = np.zeros(1 << LOOKUP_BITS, dtype=np.int32)
        for symbol in enc.symbols:
            c, length = enc.code_for(symbol)
            if length <= LOOKUP_BITS:
                shift = LOOKUP_BITS - length
                base = c << shift
                packed = (length << 8) | symbol
                self._lookup[base: base + (1 << shift)] = packed

    def decode(self, reader: BitReader) -> int:
        """Decode and return the next symbol from *reader*."""
        prefix = reader.peek_bits(LOOKUP_BITS)
        packed = int(self._lookup[prefix])
        if packed:
            reader.skip_bits(packed >> 8)
            return packed & 0xFF
        # slow path: walk code lengths > LOOKUP_BITS
        code = reader.read_bits(LOOKUP_BITS)
        for length in range(LOOKUP_BITS + 1, MAX_CODE_LENGTH + 1):
            code = (code << 1) | reader.read_bits(1)
            if code <= self._maxcode[length]:
                idx = self._valptr[length] + code - self._mincode[length]
                return int(self.spec.values[int(idx)])
        raise HuffmanError("undecodable Huffman code")


# ---------------------------------------------------------------------------
# Magnitude ("EXTEND") coding of DC differences and AC coefficients.
# ---------------------------------------------------------------------------

def magnitude_category(value: int) -> int:
    """Return the JPEG size category SSSS of *value* (0 for 0)."""
    return int(abs(value)).bit_length()


def encode_magnitude(value: int) -> tuple[int, int, int]:
    """Return (category, bits, nbits) for coding *value*'s magnitude.

    Negative values are stored as the one's complement of their absolute
    value over *category* bits, per the EXTEND procedure of the standard.
    """
    cat = magnitude_category(value)
    if cat == 0:
        return 0, 0, 0
    if value < 0:
        bits = value + (1 << cat) - 1
    else:
        bits = value
    return cat, bits, cat


def extend(bits: int, cat: int) -> int:
    """Inverse of :func:`encode_magnitude` (the EXTEND procedure)."""
    if cat == 0:
        return 0
    if bits < (1 << (cat - 1)):
        return bits - (1 << cat) + 1
    return bits
