"""Forward DCT for the encoder substrate.

The encoder only needs a correct, fast forward transform; the paper's
interest is the *inverse* path (see :mod:`repro.jpeg.idct`).  We provide a
textbook definition for testing and a vectorized matrix-product fast path
(the 2D DCT factors as ``C @ X @ C.T``) used for whole-image batches.
"""

from __future__ import annotations

import numpy as np

from .constants import BLOCK_SIZE, LEVEL_SHIFT


def dct_matrix(n: int = BLOCK_SIZE) -> np.ndarray:
    """Return the orthonormal DCT-II matrix C with C @ C.T = I.

    ``C[u, x] = c(u) * cos((2x+1) u pi / 2n)``, c(0)=sqrt(1/n),
    c(u)=sqrt(2/n) otherwise.
    """
    x = np.arange(n)
    u = x[:, None]
    c = np.full(n, np.sqrt(2.0 / n))
    c[0] = np.sqrt(1.0 / n)
    return c[:, None] * np.cos((2 * x + 1) * u * np.pi / (2 * n))


_C = dct_matrix()


def fdct_2d_reference(block: np.ndarray) -> np.ndarray:
    """Forward 2D DCT of one level-shifted block, direct O(n^4) definition.

    Input is an (8, 8) array of samples in [0, 255]; the level shift is
    applied here.  Output uses the JPEG normalization (DC = 8 * mean of
    shifted samples when all frequencies share the orthonormal scale
    factors of :func:`dct_matrix` times 8... concretely: the same scaling
    as ``C @ X @ C.T`` multiplied by 1, matching :func:`fdct_2d_blocks`).
    """
    shifted = block.astype(np.float64) - LEVEL_SHIFT
    return _C @ shifted @ _C.T


def fdct_2d_blocks(blocks: np.ndarray) -> np.ndarray:
    """Vectorized forward DCT over a batch of blocks.

    Parameters
    ----------
    blocks : (n, 8, 8) samples in [0, 255] (any real dtype).

    Returns
    -------
    (n, 8, 8) float64 DCT coefficients (orthonormal scaling).
    """
    shifted = blocks.astype(np.float64) - LEVEL_SHIFT
    # einsum keeps everything in one fused pass: C X C^T per block
    return np.einsum("ux,nxy,vy->nuv", _C, shifted, _C, optimize=True)
