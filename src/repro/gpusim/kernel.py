"""Kernel abstraction and launch cost model.

A :class:`SimKernel` bundles the *real computation* (vectorized NumPy over
whole buffers — results are bit-exact against the reference decoder) with
a *launch description*: NDRange geometry, per-item flop count, memory
traffic and divergence.  :func:`kernel_time_us` converts a description
into simulated microseconds using the device's calibrated throughputs:

``t = launch_overhead + max(compute_time, memory_time)``

with compute throttled by occupancy and warp divergence, and memory
throttled by coalescing and per-transaction overhead.  The overlap-max
follows the usual roofline argument: a kernel is bound by whichever
pipe saturates.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Any

from ..errors import KernelError
from .device import GPUDeviceSpec
from .memory import MemoryTraffic
from .ndrange import NDRange, occupancy

#: Fixed cost per memory transaction (us); penalizes scalar stores.
TRANSACTION_OVERHEAD_US = 2.0e-4

#: Bandwidth penalty applied to non-coalesced access patterns.
UNCOALESCED_PENALTY = 4.0


@dataclass(frozen=True)
class KernelLaunch:
    """Everything the cost model needs to price one launch."""

    ndrange: NDRange
    flops_per_item: float
    traffic: MemoryTraffic
    registers_per_item: int = 16
    divergence_factor: float = 1.0   # >= 1; 2.0 = half the warp idles

    def __post_init__(self) -> None:
        if self.flops_per_item < 0:
            raise KernelError("negative flops per item")
        if self.divergence_factor < 1.0:
            raise KernelError("divergence factor must be >= 1")


def kernel_time_us(launch: KernelLaunch, device: GPUDeviceSpec) -> float:
    """Simulated execution time of one kernel launch in microseconds."""
    occ = occupancy(
        launch.ndrange, device,
        launch.registers_per_item, launch.traffic.local_bytes_per_group,
    )
    # occupancy below ~50% stops hiding latency; above that extra warps
    # give diminishing returns.  Standard piecewise-linear approximation.
    throughput_scale = min(1.0, occ / 0.5)

    total_flops = launch.ndrange.global_size * launch.flops_per_item
    compute_us = (
        launch.divergence_factor * total_flops
        / (device.effective_gflops * throughput_scale * 1e3)
    )

    bw = device.effective_bandwidth_gbps * 1e3  # bytes / us
    if not launch.traffic.coalesced:
        bw /= UNCOALESCED_PENALTY
    memory_us = launch.traffic.total_bytes / bw
    memory_us += (
        launch.traffic.read_transactions + launch.traffic.write_transactions
    ) * TRANSACTION_OVERHEAD_US

    return device.kernel_launch_us + max(compute_us, memory_us)


class SimKernel(ABC):
    """Base class for simulated GPU kernels.

    Subclasses implement :meth:`execute` (the real math, whole-buffer
    NumPy) and :meth:`describe_launch` (geometry + cost inputs).  The
    command queue calls both: execute for data, describe_launch for time.
    """

    #: Human-readable kernel name (appears in timelines/profiles).
    name: str = "kernel"

    @abstractmethod
    def describe_launch(self, **args: Any) -> KernelLaunch:
        """Return the launch description for the given arguments."""

    @abstractmethod
    def execute(self, **args: Any) -> Any:
        """Run the kernel's computation and return its outputs."""

    def time_us(self, device: GPUDeviceSpec, **args: Any) -> float:
        """Convenience: price a launch without executing it."""
        return kernel_time_us(self.describe_launch(**args), device)
