"""Simulated device buffers and host<->device transfer accounting.

Buffers hold *real* NumPy arrays (kernel math operates on them), while
size/pinnedness feed the PCIe cost model.  The whole-image input and
output buffers the re-engineered decoder introduces (paper Section 3)
are allocated pinned, as the paper does for faster transfers (Eq. 7).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from ..errors import GpuSimError


@dataclass
class DeviceBuffer:
    """A named device-global allocation backed by a host ndarray."""

    name: str
    array: np.ndarray | None = None
    nbytes: int = 0

    def __post_init__(self) -> None:
        if self.array is not None:
            self.nbytes = int(self.array.nbytes)
        if self.nbytes < 0:
            raise GpuSimError("buffer size cannot be negative")

    def write(self, data: np.ndarray) -> None:
        """Host -> device copy (the data part; timing is the queue's job)."""
        self.array = np.array(data, copy=True)
        self.nbytes = int(self.array.nbytes)

    def read(self) -> np.ndarray:
        """Device -> host copy."""
        if self.array is None:
            raise GpuSimError(f"reading unwritten buffer {self.name!r}")
        return np.array(self.array, copy=True)


@dataclass
class PinnedHostBuffer:
    """Page-locked host allocation; transfers from it run at full PCIe rate."""

    name: str
    array: np.ndarray
    pinned: bool = True

    @property
    def nbytes(self) -> int:
        return int(self.array.nbytes)


@dataclass
class MemoryTraffic:
    """Global-memory traffic of one kernel launch, for the cost model.

    ``write_transactions`` matters for the vectorization ablation: the
    paper's vec4 RGB stores cut store instructions 4x (Figure 4); a
    scalar-store variant models as 4x the write transaction count with
    the per-transaction overhead charged in the cost model.
    """

    global_read_bytes: int = 0
    global_write_bytes: int = 0
    local_bytes_per_group: int = 0
    read_transactions: int = 0
    write_transactions: int = 0
    coalesced: bool = True

    def __add__(self, other: "MemoryTraffic") -> "MemoryTraffic":
        return MemoryTraffic(
            global_read_bytes=self.global_read_bytes + other.global_read_bytes,
            global_write_bytes=self.global_write_bytes + other.global_write_bytes,
            local_bytes_per_group=max(
                self.local_bytes_per_group, other.local_bytes_per_group
            ),
            read_transactions=self.read_transactions + other.read_transactions,
            write_transactions=self.write_transactions + other.write_transactions,
            coalesced=self.coalesced and other.coalesced,
        )

    @property
    def total_bytes(self) -> int:
        return self.global_read_bytes + self.global_write_bytes
