"""Asynchronous in-order command queue with simulated-time events.

Reproduces the OpenCL semantics the paper's execution models rely on
(Figures 5 and 8):

- the *host* enqueues commands and continues immediately — each enqueue
  charges only a dispatch overhead to the host clock;
- the *device* executes commands in order on its own timeline;
- every command yields an :class:`Event` carrying OpenCL-profiler-style
  timestamps (queued / start / end, in simulated microseconds);
- ``finish()`` joins the host to the device timeline.

The executors drive one queue per decode and read the event list back as
the GPU half of the Gantt timeline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from ..errors import QueueError
from .device import GPUDeviceSpec
from .kernel import SimKernel, kernel_time_us

#: Host-side cost of enqueueing any command (part of the paper's Tdisp).
DISPATCH_OVERHEAD_US = 5.0


@dataclass
class Event:
    """Completion event of one enqueued command (simulated clocks, us)."""

    label: str
    kind: str              # "write" | "kernel" | "read" | "marker"
    queued_at: float
    start: float
    end: float
    nbytes: int = 0

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class CommandQueue:
    """In-order simulated command queue bound to one GPU device."""

    device: GPUDeviceSpec
    dispatch_overhead_us: float = DISPATCH_OVERHEAD_US
    events: list[Event] = field(default_factory=list)
    _device_free_at: float = 0.0

    def _schedule(self, label: str, kind: str, host_time: float,
                  duration_us: float, nbytes: int = 0) -> Event:
        if duration_us < 0:
            raise QueueError("negative command duration")
        start = max(host_time, self._device_free_at)
        end = start + duration_us
        self._device_free_at = end
        ev = Event(label=label, kind=kind, queued_at=host_time,
                   start=start, end=end, nbytes=nbytes)
        self.events.append(ev)
        return ev

    # -- commands -------------------------------------------------------
    # Every enqueue_* returns (new_host_time, event): the host clock
    # advances by the dispatch overhead only; the device runs async.

    def enqueue_write(self, label: str, nbytes: int, host_time: float,
                      pinned: bool = True) -> tuple[float, Event]:
        """Host -> device transfer of *nbytes* (paper's Ow)."""
        duration = self.device.transfer_time_us(nbytes, pinned)
        ev = self._schedule(label, "write", host_time + self.dispatch_overhead_us,
                            duration, nbytes)
        return host_time + self.dispatch_overhead_us, ev

    def enqueue_kernel(self, kernel: SimKernel, host_time: float,
                       label: str | None = None,
                       execute: bool = True, **args: Any) -> tuple[float, Event, Any]:
        """Launch *kernel*; returns (host_time', event, kernel outputs)."""
        launch = kernel.describe_launch(**args)
        duration = kernel_time_us(launch, self.device)
        ev = self._schedule(label or kernel.name, "kernel",
                            host_time + self.dispatch_overhead_us, duration)
        result = kernel.execute(**args) if execute else None
        return host_time + self.dispatch_overhead_us, ev, result

    def enqueue_read(self, label: str, nbytes: int, host_time: float,
                     pinned: bool = True) -> tuple[float, Event]:
        """Device -> host transfer of *nbytes* (paper's Or)."""
        duration = self.device.transfer_time_us(nbytes, pinned)
        ev = self._schedule(label, "read", host_time + self.dispatch_overhead_us,
                            duration, nbytes)
        return host_time + self.dispatch_overhead_us, ev

    # -- synchronization --------------------------------------------------

    def finish(self, host_time: float) -> float:
        """Block the host until the device drains; returns the join time."""
        return max(host_time, self._device_free_at)

    @property
    def device_free_at(self) -> float:
        """When the device's in-order stream goes idle (current schedule)."""
        return self._device_free_at

    # -- profiling --------------------------------------------------------

    def total_busy_us(self) -> float:
        """Sum of device-busy time across all commands."""
        return sum(e.duration for e in self.events)

    def busy_between(self, t0: float, t1: float) -> float:
        """Device-busy time clipped to window [t0, t1]."""
        busy = 0.0
        for e in self.events:
            busy += max(0.0, min(e.end, t1) - max(e.start, t0))
        return busy
