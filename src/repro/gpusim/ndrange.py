"""NDRange and work-group geometry for simulated kernel launches.

Mirrors the OpenCL execution model the paper's kernels target: a global
index space partitioned into work-groups, executed warp-wise.  The
occupancy estimator follows the usual NVIDIA rules-of-thumb (limits from
warps, registers and local memory per SM) and feeds the kernel cost
model: a launch that cannot fill the machine loses throughput
proportionally.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import KernelError
from .device import GPUDeviceSpec

#: Maximum resident warps per SM for the compute capabilities we model.
_MAX_WARPS_PER_SM = {(2, 0): 48, (2, 1): 48, (3, 0): 64}


@dataclass(frozen=True)
class NDRange:
    """A 1-D launch geometry (the paper's kernels are 1-D over blocks)."""

    global_size: int
    local_size: int

    def __post_init__(self) -> None:
        if self.global_size <= 0 or self.local_size <= 0:
            raise KernelError("NDRange sizes must be positive")
        if self.global_size % self.local_size:
            raise KernelError(
                f"global size {self.global_size} not divisible by "
                f"local size {self.local_size}"
            )

    @property
    def num_groups(self) -> int:
        return self.global_size // self.local_size

    def warps_per_group(self, warp_size: int) -> int:
        return -(-self.local_size // warp_size)

    def total_warps(self, warp_size: int) -> int:
        return self.num_groups * self.warps_per_group(warp_size)


def occupancy(
    ndrange: NDRange,
    device: GPUDeviceSpec,
    registers_per_item: int,
    local_bytes_per_group: int,
) -> float:
    """Fraction of the device's resident-warp capacity this launch fills.

    Combines three per-SM limits (warps, registers, local memory) with
    the launch's total parallelism: a launch with fewer warps than the
    machine can host is tail-limited regardless of per-SM resources.
    """
    if ndrange.local_size > device.max_workgroup_size:
        raise KernelError(
            f"work-group of {ndrange.local_size} exceeds device limit "
            f"{device.max_workgroup_size}"
        )
    max_warps = _MAX_WARPS_PER_SM.get(device.compute_capability, 48)
    wpg = ndrange.warps_per_group(device.warp_size)

    groups_by_warps = max_warps // wpg
    if registers_per_item > 0:
        regs_per_group = registers_per_item * ndrange.local_size
        groups_by_regs = device.registers_per_sm // max(regs_per_group, 1)
    else:
        groups_by_regs = groups_by_warps
    if local_bytes_per_group > 0:
        groups_by_local = int(
            device.local_mem_per_sm_kb * 1024 // local_bytes_per_group
        )
    else:
        groups_by_local = groups_by_warps

    groups_per_sm = max(0, min(groups_by_warps, groups_by_regs, groups_by_local))
    if groups_per_sm == 0:
        raise KernelError(
            "work-group exhausts per-SM resources "
            f"(regs/item={registers_per_item}, local={local_bytes_per_group}B)"
        )
    resident_warps = groups_per_sm * wpg
    per_sm_occ = resident_warps / max_warps

    # tail effect: not enough groups to occupy every SM at that level
    capacity_groups = groups_per_sm * device.sm_count
    fill = min(1.0, ndrange.num_groups / capacity_groups)
    return per_sm_occ * fill
