"""Calibration constants for the simulated CPU timing model.

The GPU side is priced from first principles (flops + bytes + occupancy,
see :mod:`repro.gpusim.kernel`) with per-device efficiency factors in
:mod:`repro.gpusim.device`.  The CPU side uses calibrated per-sample
stage costs.  All constants were chosen to land on the stage-ratio
anchors the paper reports, *not* to match its absolute milliseconds:

- libjpeg-turbo's SIMD decoder runs ~2x faster end-to-end than its
  sequential decoder on an i7 (paper Section 1); with Huffman common to
  both, the parallel phase is ~3x faster under SIMD.
- Huffman decoding takes roughly 35-50% of SIMD-mode decode time
  depending on entropy density (Sections 4.5, 6; Figure 7's 1-6 ns/pixel
  rate span).
- On a 2048x2048 4:2:2 image: GPU kernels alone are ~10x (GTX 560) /
  ~13.7x (GTX 680) faster than the SIMD parallel phase, dropping to
  2.6x / 4.3x once PCIe transfers are included; the GT 430 is ~23%
  *slower* end-to-end than SIMD (Section 6.1, Figure 9).

With the constants below the simulated platform reproduces those ratios
to within a few percent (see tests/test_calibration_anchors.py).
"""

from __future__ import annotations

from dataclasses import dataclass

from .device import CPUDeviceSpec

# ---------------------------------------------------------------------------
# Huffman (entropy) decoding — sequential, CPU only.
#
# time/pixel = HUFFMAN_BASE_NS + HUFFMAN_SLOPE_NS * density   (Figure 7)
# where density is entropy bytes / pixel.  Equivalently:
# time = HUFFMAN_BASE_NS * pixels + HUFFMAN_SLOPE_NS * entropy_bytes.
# ---------------------------------------------------------------------------

HUFFMAN_BASE_NS_PER_PIXEL = 0.55
HUFFMAN_SLOPE_NS_PER_BYTE = 13.0


def huffman_time_us(pixels: int, entropy_bytes: int, cpu: CPUDeviceSpec) -> float:
    """Simulated sequential Huffman decode time (microseconds)."""
    ns = (HUFFMAN_BASE_NS_PER_PIXEL * pixels
          + HUFFMAN_SLOPE_NS_PER_BYTE * entropy_bytes)
    return ns / (1e3 * cpu.speed_factor)


# ---------------------------------------------------------------------------
# CPU parallel phase (dequantize+IDCT, upsample, color conversion).
#
# Costs are per *work unit* of each stage so that 4:4:4 and 4:2:2 price
# correctly from their differing sample counts:
#   - IDCT: per decoded sample (all components, subsampled sizes)
#   - upsample: per produced chroma sample
#   - color conversion: per output pixel
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class CPUStageCosts:
    """Per-unit costs (nanoseconds) of the CPU parallel-phase stages."""

    idct_ns_per_sample: float
    upsample_ns_per_sample: float
    color_ns_per_pixel: float


#: libjpeg-turbo SIMD path (SSE2) on the i7-2600K baseline.
SIMD_COSTS = CPUStageCosts(
    idct_ns_per_sample=1.05,
    upsample_ns_per_sample=0.50,
    color_ns_per_pixel=1.00,
)

#: Plain sequential C path; ~3x the SIMD stage costs (see module docstring).
SEQUENTIAL_FACTOR = 3.0

SEQUENTIAL_COSTS = CPUStageCosts(
    idct_ns_per_sample=SIMD_COSTS.idct_ns_per_sample * SEQUENTIAL_FACTOR,
    upsample_ns_per_sample=SIMD_COSTS.upsample_ns_per_sample * SEQUENTIAL_FACTOR,
    color_ns_per_pixel=SIMD_COSTS.color_ns_per_pixel * SEQUENTIAL_FACTOR,
)


def stage_counts(width: int, height: int, mode: str) -> tuple[int, int, int]:
    """(idct_samples, upsampled_chroma_samples, pixels) for an image.

    Counts follow the padded block grids only loosely — the paper's
    linear-in-pixels observation (Figure 6) holds either way, and the
    partitioner slices at MCU-row granularity where padding is uniform.
    """
    pixels = width * height
    if mode == "4:4:4":
        return 3 * pixels, 0, pixels
    if mode == "4:2:2":
        # Y full + two half-width chroma planes; both chroma upsampled 2x
        return 2 * pixels, 2 * pixels, pixels
    if mode == "4:2:0":
        return pixels + pixels // 2, 2 * pixels, pixels
    raise ValueError(f"unknown subsampling mode {mode!r}")


def cpu_parallel_time_us(width: int, height: int, mode: str,
                         cpu: CPUDeviceSpec, simd: bool = True) -> float:
    """Simulated CPU time for the parallel phase over a w x h region."""
    costs = SIMD_COSTS if simd else SEQUENTIAL_COSTS
    idct_samples, up_samples, pixels = stage_counts(width, height, mode)
    ns = (costs.idct_ns_per_sample * idct_samples
          + costs.upsample_ns_per_sample * up_samples
          + costs.color_ns_per_pixel * pixels)
    return ns / (1e3 * cpu.speed_factor)
