"""Device specifications for the simulated heterogeneous platform.

The three GPU presets follow Table 1 of the paper exactly (core counts,
clock frequencies, memory sizes, compute capabilities); throughput
*efficiency* factors are calibration constants documented in
:mod:`repro.gpusim.calibrate`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import DeviceError


@dataclass(frozen=True)
class GPUDeviceSpec:
    """Static description of one simulated OpenCL GPU device."""

    name: str
    cores: int                     # scalar processors ("CUDA cores")
    core_clock_mhz: float
    sm_count: int                  # multiprocessors
    memory_mb: int
    compute_capability: tuple[int, int]
    mem_bandwidth_gbps: float      # device-global memory
    pcie_bandwidth_gbps: float     # host <-> device, pinned buffers
    pcie_latency_us: float = 10.0
    kernel_launch_us: float = 8.0
    warp_size: int = 32
    max_workgroup_size: int = 1024
    local_mem_per_sm_kb: float = 48.0
    registers_per_sm: int = 32768
    compute_efficiency: float = 0.4   # fraction of peak flops sustained
    memory_efficiency: float = 0.6    # fraction of peak bandwidth sustained

    def __post_init__(self) -> None:
        if self.cores <= 0 or self.sm_count <= 0:
            raise DeviceError("core/SM counts must be positive")
        if self.cores % self.sm_count:
            raise DeviceError("cores must divide evenly among SMs")
        if not 0 < self.compute_efficiency <= 1:
            raise DeviceError("compute_efficiency must be in (0, 1]")
        if not 0 < self.memory_efficiency <= 1:
            raise DeviceError("memory_efficiency must be in (0, 1]")

    @property
    def cores_per_sm(self) -> int:
        return self.cores // self.sm_count

    @property
    def peak_gflops(self) -> float:
        """Peak single-precision throughput at 1 op/core/clock."""
        return self.cores * self.core_clock_mhz / 1e3

    @property
    def effective_gflops(self) -> float:
        return self.peak_gflops * self.compute_efficiency

    @property
    def effective_bandwidth_gbps(self) -> float:
        return self.mem_bandwidth_gbps * self.memory_efficiency

    def transfer_time_us(self, nbytes: int, pinned: bool = True) -> float:
        """PCIe transfer time in microseconds (paper Eq. 7's Ow/Or).

        Pageable buffers pay an extra staging copy; the paper pins its
        whole-image buffers, so pinned is the default.
        """
        if nbytes < 0:
            raise DeviceError("negative transfer size")
        bandwidth = self.pcie_bandwidth_gbps * (1.0 if pinned else 0.55)
        return self.pcie_latency_us + nbytes / (bandwidth * 1e3)


@dataclass(frozen=True)
class CPUDeviceSpec:
    """Static description of the host CPU.

    ``speed_factor`` scales every calibrated per-pixel cost; 1.0 is the
    i7-2600K baseline of the paper's first two machines.
    """

    name: str
    cores: int
    clock_ghz: float
    simd_width_bits: int = 128      # SSE2, what libjpeg-turbo uses
    speed_factor: float = 1.0

    def __post_init__(self) -> None:
        if self.cores <= 0:
            raise DeviceError("CPU must have at least one core")
        if self.speed_factor <= 0:
            raise DeviceError("speed_factor must be positive")


# ---------------------------------------------------------------------------
# Table 1 presets.
# ---------------------------------------------------------------------------

INTEL_I7_2600K = CPUDeviceSpec(
    name="Intel i7-2600K", cores=4, clock_ghz=3.4, speed_factor=1.0,
)

INTEL_I7_3770K = CPUDeviceSpec(
    name="Intel i7-3770K", cores=4, clock_ghz=3.5, speed_factor=1.06,
)

GT430 = GPUDeviceSpec(
    name="NVIDIA GT 430",
    cores=96, core_clock_mhz=700.0, sm_count=2, memory_mb=1024,
    compute_capability=(2, 1),
    mem_bandwidth_gbps=28.8, pcie_bandwidth_gbps=5.0,
    compute_efficiency=0.15, memory_efficiency=0.50,
)

GTX560TI = GPUDeviceSpec(
    name="NVIDIA GTX 560Ti",
    cores=384, core_clock_mhz=822.0, sm_count=8, memory_mb=1024,
    compute_capability=(2, 1),
    mem_bandwidth_gbps=128.0, pcie_bandwidth_gbps=8.0,
    compute_efficiency=0.45, memory_efficiency=0.60,
)

GTX680 = GPUDeviceSpec(
    name="NVIDIA GTX 680",
    cores=1536, core_clock_mhz=1006.0, sm_count=8, memory_mb=2048,
    compute_capability=(3, 0),
    mem_bandwidth_gbps=192.3, pcie_bandwidth_gbps=12.0,
    compute_efficiency=0.20, memory_efficiency=0.60,
    registers_per_sm=65536, local_mem_per_sm_kb=48.0,
)
