"""OpenCL-style simulated GPU substrate.

Real math on NumPy buffers, simulated time from a calibrated cost model.
See DESIGN.md §2 for why this substitution preserves the paper's
scheduling behaviour.
"""

from .calibrate import (
    SEQUENTIAL_COSTS,
    SIMD_COSTS,
    cpu_parallel_time_us,
    huffman_time_us,
)
from .device import (
    GT430,
    GTX560TI,
    GTX680,
    INTEL_I7_2600K,
    INTEL_I7_3770K,
    CPUDeviceSpec,
    GPUDeviceSpec,
)
from .kernel import KernelLaunch, SimKernel, kernel_time_us
from .memory import DeviceBuffer, MemoryTraffic, PinnedHostBuffer
from .ndrange import NDRange, occupancy
from .queue import DISPATCH_OVERHEAD_US, CommandQueue, Event

__all__ = [
    "CommandQueue",
    "CPUDeviceSpec",
    "DeviceBuffer",
    "DISPATCH_OVERHEAD_US",
    "Event",
    "GPUDeviceSpec",
    "GT430",
    "GTX560TI",
    "GTX680",
    "INTEL_I7_2600K",
    "INTEL_I7_3770K",
    "KernelLaunch",
    "MemoryTraffic",
    "NDRange",
    "PinnedHostBuffer",
    "SEQUENTIAL_COSTS",
    "SIMD_COSTS",
    "SimKernel",
    "cpu_parallel_time_us",
    "huffman_time_us",
    "kernel_time_us",
    "occupancy",
]
