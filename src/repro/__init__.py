"""repro — Dynamic partitioning-based JPEG decompression on heterogeneous
multicore architectures.

A production-quality Python reproduction of Sodsong et al. (PMAM/PPoPP
2014).  The package bundles:

- :mod:`repro.jpeg` — a complete baseline JPEG codec (the libjpeg-turbo
  substrate),
- :mod:`repro.gpusim` — an OpenCL-style simulated GPU with asynchronous
  command queues and a calibrated cost model,
- :mod:`repro.kernels` — the paper's GPU kernels (IDCT, upsampling, color
  conversion, merged variants) with real math + modeled cost,
- :mod:`repro.core` — the contribution: offline profiling, polynomial
  performance models, Newton-based dynamic partitioning (SPS/PPS) and the
  pipelined heterogeneous executors,
- :mod:`repro.data` — deterministic synthetic corpora,
- :mod:`repro.evaluation` — the experiment harness regenerating every
  table and figure of the paper.

Quickstart::

    from repro import HeterogeneousDecoder, DecodeMode, platforms
    from repro.data import synthetic_photo
    from repro.jpeg import encode_jpeg

    data = encode_jpeg(synthetic_photo(512, 512, seed=7))
    dec = HeterogeneousDecoder.for_platform(platforms.GTX560)
    result = dec.decode(data, mode=DecodeMode.PPS)
    print(result.total_time_ms, result.rgb.shape)
"""

from .version import __version__

__all__ = ["__version__"]


def __getattr__(name):  # lazy top-level API to keep import light
    if name in {"HeterogeneousDecoder", "DecodeMode", "DecodeResult"}:
        from . import core

        return getattr(core, name)
    if name == "platforms":
        from .evaluation import platforms

        return platforms
    if name in {"AsyncDecodeSession", "BatchDecoder", "DecodeHTTPServer",
                "DecodeService", "DecodeSession", "ImageRequest"}:
        from . import service

        return getattr(service, name)
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
