"""Lane-bound heterogeneous executor pools.

The scheduler (:mod:`repro.service.scheduler`) decides *where* each
image of a batch should run — a GPU lane, a SIMD CPU lane — but until
this module every placement funnelled into one undifferentiated worker
pool, so the predicted makespan win stayed simulated.
:class:`ExecutorRegistry` makes lanes physical: each
:class:`~repro.service.scheduler.ExecutorLane` is bound to its own
execution pool, mirroring the paper's premise that the GPU and the CPU
SIMD path are *separate* resources that fill concurrently:

- every ``gpu`` lane gets a dedicated pool (one worker by default —
  the simulated device executes one image at a time, like the real
  card's in-order queue);
- all CPU lanes (``simd``/``seq``) share one sized pool (default: the
  host's remaining cores).

:class:`~repro.service.batch.BatchDecoder` dispatches each placed
image to its lane's pool and gathers across all pools concurrently, so
the busiest lane — not the sum of lanes — sets the batch's wall-clock,
which is exactly the makespan objective Eq 15's partitioning minimizes
within one image.  Observed per-lane times then feed the scheduler's
EWMA correction (:class:`~repro.service.scheduler.ThroughputFeedback`)
with *real* heterogeneous wall-clock, the cross-batch analog of the
paper's Eq 16/17 runtime repartitioning.

Layouts are configurable per lane *kind* via :func:`parse_lane_pools`
(the CLI's ``--lane-pools``), e.g. ``"gpu=1,simd=process:3"``.
"""

from __future__ import annotations

from typing import Sequence

from ..errors import ServiceError
from .scheduler import ExecutorLane
from .workers import BACKENDS, WorkerPool, default_worker_count

#: Lane-kind keys a layout spec may configure.  ``cpu`` addresses both
#: CPU kinds (``simd`` and ``seq``) at once.
LAYOUT_KINDS = ("gpu", "simd", "seq", "cpu")

#: Pool key the CPU lanes share in the registry.
CPU_POOL = "cpu"


def parse_lane_pools(spec: str) -> dict[str, tuple[str | None, int]]:
    """Parse a ``--lane-pools`` layout spec.

    Grammar: comma-separated ``kind=workers`` or
    ``kind=backend:workers`` entries, e.g. ``"gpu=1,simd=3"`` or
    ``"gpu=process:1,cpu=thread:2"``.  Returns
    ``{kind: (backend_or_None, workers)}``; an empty or ``"auto"`` spec
    returns ``{}`` (the default layout).
    """
    layout: dict[str, tuple[str | None, int]] = {}
    spec = (spec or "").strip()
    if spec in ("", "auto"):
        return layout
    for entry in spec.split(","):
        entry = entry.strip()
        if not entry:
            continue
        if "=" not in entry:
            raise ServiceError(
                f"bad lane-pool entry {entry!r} (want kind=workers or "
                f"kind=backend:workers)")
        kind, _, value = entry.partition("=")
        kind = kind.strip()
        if kind not in LAYOUT_KINDS:
            raise ServiceError(
                f"unknown lane kind {kind!r} in lane-pool spec "
                f"(choose from {list(LAYOUT_KINDS)})")
        backend: str | None = None
        if ":" in value:
            backend, _, value = value.partition(":")
            backend = backend.strip()
            if backend not in BACKENDS:
                raise ServiceError(
                    f"unknown backend {backend!r} in lane-pool spec "
                    f"(choose from {list(BACKENDS)})")
        try:
            workers = int(value.strip())
        except ValueError:
            raise ServiceError(
                f"bad worker count {value!r} in lane-pool spec") from None
        if workers <= 0:
            raise ServiceError(
                f"lane-pool workers must be positive, got {workers}")
        if kind in layout:
            raise ServiceError(f"duplicate lane kind {kind!r} in spec")
        layout[kind] = (backend, workers)
    return layout


class ExecutorRegistry:
    """Binds scheduler lanes to dedicated worker pools.

    Construct with the scheduler's lane set and an optional *layout*
    (a spec string for :func:`parse_lane_pools`, or its parsed dict).
    *backend* is the fallback pool backend for kinds the layout leaves
    unset (default: process on multi-core hosts, serial otherwise —
    the same heuristic as
    :func:`~repro.service.workers.default_backend`).
    """

    def __init__(self, executors: Sequence[ExecutorLane],
                 layout: "str | dict | None" = None,
                 backend: str | None = None) -> None:
        """Build one pool per GPU lane plus the shared CPU pool."""
        if not executors:
            raise ServiceError("executor registry needs at least one lane")
        if isinstance(layout, str):
            layout = parse_lane_pools(layout)
        layout = dict(layout or {})
        from .workers import default_backend
        fallback = backend or default_backend()
        self.executors = tuple(executors)
        self._pools: dict[str, WorkerPool] = {}
        self._pool_of: dict[str, str] = {}   # lane name -> pool key

        cpu_keys = [k for k in ("cpu", "simd", "seq") if k in layout]
        if len(cpu_keys) > 1:
            raise ServiceError(
                f"lane-pool spec names multiple CPU kinds {cpu_keys} but "
                f"all CPU lanes share one pool — configure exactly one of "
                f"cpu/simd/seq")

        gpu_lanes = [ln for ln in self.executors if ln.kind == "gpu"]
        cpu_lanes = [ln for ln in self.executors if ln.kind != "gpu"]

        gpu_backend, gpu_workers = layout.get("gpu", (None, 1))
        for lane in gpu_lanes:
            self._pools[lane.name] = WorkerPool(
                workers=gpu_workers, backend=gpu_backend or fallback,
                name=lane.name)
            self._pool_of[lane.name] = lane.name

        if cpu_lanes:
            cpu_spec = layout[cpu_keys[0]] if cpu_keys else (
                None, max(1, default_worker_count() - len(gpu_lanes)))
            cpu_backend, cpu_workers = cpu_spec
            pool = WorkerPool(workers=cpu_workers,
                              backend=cpu_backend or fallback, name=CPU_POOL)
            self._pools[CPU_POOL] = pool
            for lane in cpu_lanes:
                self._pool_of[lane.name] = CPU_POOL
        self._closed = False

    # -- lookup ---------------------------------------------------------

    def pool_for(self, lane_name: str) -> "WorkerPool | None":
        """The pool bound to *lane_name* (None for unknown lanes)."""
        key = self._pool_of.get(lane_name)
        return self._pools.get(key) if key is not None else None

    def failover_pool(self, lane_name: str) -> "WorkerPool | None":
        """An alternative pool for redispatch after *lane_name*'s pool
        failed a task.  Local registries have no cross-host redundancy
        — a crashed pool heals in place and the task retries on it —
        so the base answer is None; the sharded
        :class:`~repro.service.remote.ShardRegistry` overrides this to
        rotate the retry onto a surviving host."""
        return None

    @property
    def pools(self) -> dict[str, WorkerPool]:
        """Distinct pools keyed by pool name (gpu lane name or "cpu")."""
        return dict(self._pools)

    @property
    def backends(self) -> set[str]:
        """Backend names across all pools (transport resolution input)."""
        return {pool.backend for pool in self._pools.values()}

    @property
    def total_workers(self) -> int:
        """Worker count summed over every pool."""
        return sum(pool.workers for pool in self._pools.values())

    @property
    def rebuilds(self) -> int:
        """Self-heal rebuild count summed over every pool."""
        return sum(pool.rebuilds for pool in self._pools.values())

    def describe(self) -> dict:
        """JSON-ready lane→pool binding map (stats / ``GET /stats``)."""
        out = {}
        for lane in self.executors:
            key = self._pool_of[lane.name]
            pool = self._pools[key]
            out[lane.name] = {
                "pool": key,
                "backend": pool.backend,
                "workers": pool.workers,
                "kind": lane.kind,
                "rebuilds": pool.rebuilds,
            }
        return out

    def metric_labels(self) -> "list[dict]":
        """Stable per-lane label sets for the Prometheus exporter: one
        ``{lane, pool, backend, kind}`` dict per lane, sorted by lane
        name so scraped series never flap order between polls."""
        described = self.describe()
        return [{"lane": name, "pool": info["pool"],
                 "backend": info["backend"], "kind": info["kind"]}
                for name, info in sorted(described.items())]

    # -- lifecycle ------------------------------------------------------

    def close(self) -> None:
        """Shut every pool down (waits for in-flight tasks)."""
        if self._closed:
            return
        self._closed = True
        for pool in self._pools.values():
            pool.close()

    def __enter__(self) -> "ExecutorRegistry":
        """Context-manager entry: the registry itself."""
        return self

    def __exit__(self, *exc_info) -> None:
        """Context-manager exit: close every pool."""
        self.close()
