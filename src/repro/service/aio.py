"""Asyncio front end over :class:`~repro.service.session.DecodeSession`.

:class:`AsyncDecodeSession` adapts the thread-world session to an
asyncio application without adding any decoding machinery of its own:

- ``await submit(...)`` returns an :class:`asyncio.Future` resolving to
  an :class:`~repro.service.batch.ImageResult`.  Blocking submission
  (``timeout=None`` or positive — the backpressure path) runs in the
  loop's default executor so the event loop never stalls on a full
  queue; the fail-fast mode (``timeout=0``) submits inline and raises
  :class:`~repro.errors.QueueFullError` immediately.
- Completions cross from the pump thread into the loop via
  ``loop.call_soon_threadsafe`` — the only sanctioned way to touch an
  asyncio loop from another thread.
- ``async for result in session.completed(count=n)`` streams results in
  *completion* order (not submission order), which is how an asyncio
  producer overlaps submission with consumption.

One session binds to one running event loop (the loop of the first
``submit``); using it from a second loop raises.  Lifecycle mirrors the
sync session: ``await close(drain=...)`` (the blocking close runs in
the executor), ``async with`` drains on exit.
"""

from __future__ import annotations

import asyncio
from functools import partial
from typing import Any, AsyncIterator

from ..errors import ServiceError
from .batch import ImageRequest, ImageResult
from .session import DecodeHandle, DecodeSession


class AsyncDecodeSession:
    """Asyncio adapter: async submit, asyncio futures, completion stream.

    Constructor keyword arguments are forwarded verbatim to
    :class:`~repro.service.session.DecodeSession` (``max_batch``,
    ``max_delay_ms``, ``queue_capacity``, ``workers``, ``backend``,
    ``defaults``, ``scheduler``) — the pump thread always runs; a
    pull-driven async session would defeat the point.
    """

    def __init__(self, **session_kwargs: Any) -> None:
        """Create the underlying pumped session; no loop is bound yet."""
        session_kwargs.pop("pump", None)
        self._session = DecodeSession(pump=True, **session_kwargs)
        self._loop: asyncio.AbstractEventLoop | None = None
        self._done_q: asyncio.Queue | None = None
        self._submitted = 0
        self._delivered = 0

    # -- loop binding ---------------------------------------------------

    def _bind_loop(self) -> asyncio.AbstractEventLoop:
        """Bind to (and validate against) the running event loop."""
        loop = asyncio.get_running_loop()
        if self._loop is None:
            self._loop = loop
            self._done_q = asyncio.Queue()
        elif self._loop is not loop:
            raise ServiceError(
                "AsyncDecodeSession is bound to a different event loop")
        return loop

    # -- submission -----------------------------------------------------

    async def submit(self, item: bytes | ImageRequest,
                     timeout: float | None = None) -> "asyncio.Future[ImageResult]":
        """Submit one image; returns an asyncio future for its result.

        *timeout* is the queue-space timeout: ``None`` (default) applies
        backpressure by waiting — in the loop's default executor, so
        other coroutines keep running — until the bounded queue has
        space; ``0`` fails fast with
        :class:`~repro.errors.QueueFullError`.  The returned future
        resolves to the :class:`~repro.service.batch.ImageResult`
        (``ok=False`` results resolve normally, matching the sync
        session's error-isolation contract) and is cancelled when the
        session closes with ``drain=False``.
        """
        loop = self._bind_loop()
        if timeout == 0:
            handle = self._session.submit(item, timeout=0)
        else:
            handle = await loop.run_in_executor(
                None, partial(self._session.submit, item, timeout))
        future: asyncio.Future[ImageResult] = loop.create_future()
        self._submitted += 1
        handle.add_done_callback(partial(self._on_done, loop, future))
        return future

    def _on_done(self, loop: asyncio.AbstractEventLoop,
                 future: "asyncio.Future[ImageResult]",
                 handle: DecodeHandle) -> None:
        """Pump-thread side: marshal one completion onto the loop."""
        loop.call_soon_threadsafe(self._deliver, future, handle)

    def _deliver(self, future: "asyncio.Future[ImageResult]",
                 handle: DecodeHandle) -> None:
        """Loop side: resolve the asyncio future and feed the stream."""
        self._delivered += 1
        if handle.cancelled():
            if not future.done():
                future.cancel()
            self._done_q.put_nowait(None)
            return
        exc = handle.exception(timeout=0)
        if exc is not None:
            if not future.done():
                future.set_exception(exc)
            self._done_q.put_nowait(None)
            return
        result = handle.result(timeout=0)
        if not future.done():
            future.set_result(result)
        self._done_q.put_nowait(result)

    # -- completion stream ----------------------------------------------

    async def completed(self, count: int | None = None
                        ) -> AsyncIterator[ImageResult]:
        """Stream results in completion order.

        Yields each successfully *resolved*
        :class:`~repro.service.batch.ImageResult` (including
        ``ok=False`` decode failures) as it arrives.  *count* bounds the
        number of **completions** consumed — cancellations and
        infrastructure failures count toward it but are not yielded, so
        a producer/consumer pair can run concurrently with a known
        request total.  With ``count=None`` the stream ends once every
        request submitted so far has completed and the session is idle.
        """
        self._bind_loop()
        consumed = 0
        while True:
            if count is not None:
                if consumed >= count:
                    return
            elif self._delivered >= self._submitted and self._done_q.empty():
                return
            item = await self._done_q.get()
            consumed += 1
            if item is not None:
                yield item

    def __aiter__(self) -> AsyncIterator[ImageResult]:
        """``async for result in session`` — the unbounded stream."""
        return self.completed()

    # -- observability ---------------------------------------------------

    @property
    def pending(self) -> int:
        """Requests accepted but not yet dispatched to a batch."""
        return self._session.pending

    @property
    def closed(self) -> bool:
        """True once :meth:`close` has begun."""
        return self._session.closed

    def stats_snapshot(self) -> dict:
        """JSON-ready statistics snapshot (see
        :meth:`~repro.service.session.DecodeSession.stats_snapshot`)."""
        return self._session.stats_snapshot()

    # -- lifecycle -------------------------------------------------------

    async def close(self, drain: bool = True) -> None:
        """Close the underlying session without blocking the loop.

        ``drain=True`` completes all accepted work first;
        ``drain=False`` cancels pending handles (their asyncio futures
        are cancelled too).  Idempotent.
        """
        loop = self._bind_loop()
        await loop.run_in_executor(
            None, partial(self._session.close, drain))

    async def __aenter__(self) -> "AsyncDecodeSession":
        """Async context-manager entry: the session itself."""
        return self

    async def __aexit__(self, *exc_info: Any) -> None:
        """Async context-manager exit: close with a full drain."""
        await self.close(drain=True)
