"""Low-overhead observability for the decode service (PR 10).

Three pieces, all stdlib-only:

1. **Trace spans** — a :class:`TraceContext` (trace id + span id) is
   created at ``DecodeSession.submit`` and rides the
   :class:`~repro.service.batch.ImageRequest` through queue wait,
   scheduler placement, lane dispatch, the worker-side decode stages
   (entropy / IDCT / upsample / color, the same boundaries
   ``core/profiling`` instruments), shm publish and — across the PR 9
   TCP wire — remote worker hosts, whose spans are mapped back into
   the client's clock domain.  Workers record :class:`SpanRecord`\\ s
   into a bounded drop-oldest :class:`SpanRing` and ship them back
   piggybacked on the result, so the hot path never blocks on I/O.

2. **Metrics** — :class:`Histogram` (explicit buckets) plus counters
   aggregated by :class:`ObsHub`; :func:`render_prometheus` turns a
   ``stats_snapshot()`` dict into Prometheus text exposition format
   for the HTTP server's ``GET /metrics``.

3. **Timeline reconstruction** — :func:`spans_to_timeline` replays
   collected spans through the simulated-schedule
   :class:`~repro.core.timeline.Timeline` ASCII-Gantt renderer
   (the paper's Figure 5/8 view, measured instead of simulated), and
   :func:`read_trace_log` feeds it from the rotation-safe JSON-lines
   event log (``--trace-log``).

The whole layer is gated on ``request.trace is not None``: with
tracing off (the default) the per-image cost is a single attribute
check, enforced by ``benchmarks/bench_obs_overhead.py``.
"""

from __future__ import annotations

import json
import os
import threading
import uuid
from bisect import bisect_right
from collections import OrderedDict, deque
from dataclasses import dataclass, field
from pathlib import Path
from time import perf_counter, time

from ..core.timeline import Timeline
from ..errors import ServiceError

#: Trace modes accepted by :class:`ObsHub` / ``DecodeSession(tracing=...)``.
#: ``off`` records nothing but keeps the metrics histogram live;
#: ``on`` traces every request; ``sample`` traces a deterministic
#: 1-in-N subset; ``unobserved`` additionally skips the metrics
#: histogram — the benchmark control arm that stands in for the
#: pre-observability build.
TRACE_MODES = ("unobserved", "off", "on", "sample")

#: Explicit latency histogram buckets (seconds), Prometheus-style.
LATENCY_BUCKETS_S = (0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
                     0.25, 0.5, 1.0, 2.5, 5.0, 10.0)

#: Default bound on the worker-side span ring (drop-oldest beyond it).
RING_CAPACITY = 2048

#: Default bound on the number of traces the in-memory store retains.
TRACE_CAPACITY = 256


def parse_trace_mode(mode: str) -> str:
    """Validate a tracing mode string, returning it normalized."""
    normalized = str(mode).strip().lower()
    if normalized not in TRACE_MODES:
        raise ServiceError(
            f"unknown tracing mode {mode!r}; expected one of {TRACE_MODES}")
    return normalized


def _new_id(nbytes: int = 8) -> str:
    """A random lowercase-hex identifier (*nbytes* bytes of entropy)."""
    return uuid.uuid4().hex[: nbytes * 2]


@dataclass(frozen=True)
class TraceContext:
    """Identity of one span within one trace, propagated on requests.

    Frozen, picklable and JSON-friendly: it crosses process-pool
    pickling and the PR 9 TCP header unchanged.  ``child()`` derives
    the context a sub-operation should record under.
    """

    trace_id: str
    span_id: str
    parent_id: str | None = None

    @classmethod
    def new_root(cls) -> "TraceContext":
        """Start a fresh trace (new trace id, root span, no parent)."""
        return cls(trace_id=_new_id(), span_id=_new_id(), parent_id=None)

    def child(self) -> "TraceContext":
        """A context for a sub-operation parented to this span."""
        return TraceContext(trace_id=self.trace_id, span_id=_new_id(),
                            parent_id=self.span_id)

    def to_dict(self) -> dict:
        """JSON-safe form for the remote wire header."""
        return {"trace_id": self.trace_id, "span_id": self.span_id,
                "parent_id": self.parent_id}

    @classmethod
    def from_dict(cls, payload: dict) -> "TraceContext":
        """Rebuild a context from :meth:`to_dict` output."""
        return cls(trace_id=str(payload["trace_id"]),
                   span_id=str(payload["span_id"]),
                   parent_id=(None if payload.get("parent_id") is None
                              else str(payload["parent_id"])))


@dataclass
class SpanRecord:
    """One completed operation inside a trace.

    Timestamps are ``time.perf_counter()`` seconds — system-wide
    monotonic on Linux, so spans recorded by forked pool workers are
    directly comparable with the parent's; spans from *remote* hosts
    live in a foreign clock domain until
    :func:`map_remote_spans` shifts them into the client's.
    """

    trace_id: str
    span_id: str
    parent_id: str | None
    name: str          # "request", "queue", "entropy", "shm_publish", ...
    resource: str      # "client", lane name, worker name, endpoint/worker
    kind: str          # a Timeline glyph kind: huffman/dispatch/...
    start: float       # perf_counter seconds (client clock domain)
    end: float
    attrs: dict = field(default_factory=dict)

    @property
    def duration_s(self) -> float:
        """Span length in seconds."""
        return self.end - self.start

    def to_dict(self) -> dict:
        """JSON-safe form (one object per line in the trace log)."""
        out = {"trace_id": self.trace_id, "span_id": self.span_id,
               "parent_id": self.parent_id, "name": self.name,
               "resource": self.resource, "kind": self.kind,
               "start": self.start, "end": self.end}
        if self.attrs:
            out["attrs"] = self.attrs
        return out

    @classmethod
    def from_dict(cls, payload: dict) -> "SpanRecord":
        """Rebuild a span from :meth:`to_dict` output."""
        return cls(trace_id=str(payload["trace_id"]),
                   span_id=str(payload["span_id"]),
                   parent_id=payload.get("parent_id"),
                   name=str(payload["name"]),
                   resource=str(payload.get("resource", "?")),
                   kind=str(payload.get("kind", "dispatch")),
                   start=float(payload["start"]),
                   end=float(payload["end"]),
                   attrs=dict(payload.get("attrs") or {}))


def make_span(ctx: TraceContext, name: str, resource: str, kind: str,
              start: float, end: float, **attrs) -> SpanRecord:
    """Build a :class:`SpanRecord` carrying *ctx*'s own span identity."""
    return SpanRecord(trace_id=ctx.trace_id, span_id=ctx.span_id,
                      parent_id=ctx.parent_id, name=name, resource=resource,
                      kind=kind, start=start, end=end, attrs=attrs)


def child_span(ctx: TraceContext, name: str, resource: str, kind: str,
               start: float, end: float, **attrs) -> SpanRecord:
    """Build a span for a sub-operation parented to *ctx*'s span."""
    return SpanRecord(trace_id=ctx.trace_id, span_id=_new_id(),
                      parent_id=ctx.span_id, name=name, resource=resource,
                      kind=kind, start=start, end=end, attrs=attrs)


class SpanRing:
    """Bounded drop-oldest span buffer for one worker process.

    Built on :class:`collections.deque` with ``maxlen``: ``append`` is
    atomic under the GIL, so recording never takes a lock — the only
    synchronization is the drain, which swaps the visible batch out.
    """

    def __init__(self, capacity: int = RING_CAPACITY):
        """Create a ring holding at most *capacity* spans."""
        self._ring: deque[SpanRecord] = deque(maxlen=capacity)
        self._recorded = 0
        self._drained = 0

    def record(self, span: SpanRecord) -> None:
        """Append one span, silently evicting the oldest when full."""
        self._ring.append(span)
        self._recorded += 1

    def drain(self) -> list[SpanRecord]:
        """Remove and return every buffered span (oldest first)."""
        out: list[SpanRecord] = []
        while True:
            try:
                out.append(self._ring.popleft())
            except IndexError:
                self._drained += len(out)
                return out

    def drain_trace(self, trace_id: str) -> list[SpanRecord]:
        """Remove and return the buffered spans of one trace only."""
        keep, out = [], []
        for span in self.drain():
            (out if span.trace_id == trace_id else keep).append(span)
        for span in keep:
            self._ring.append(span)
        self._drained -= len(keep)
        return out

    @property
    def dropped(self) -> int:
        """Spans evicted by the drop-oldest bound since creation."""
        return max(0, self._recorded - self._drained - len(self._ring))

    def __len__(self) -> int:
        """Number of spans currently buffered."""
        return len(self._ring)


#: Per-process worker ring.  Module-level so picklable task functions
#: (``decode_image_task`` and friends) reach it without carrying state.
_WORKER_RING = SpanRing()


def worker_ring() -> SpanRing:
    """This process's span ring (one per pool worker after fork)."""
    return _WORKER_RING


def record_worker_span(span: SpanRecord) -> None:
    """Record *span* into this process's ring (lock-free append)."""
    _WORKER_RING.record(span)


def drain_worker_spans(trace_id: str) -> list[SpanRecord]:
    """Pull the current process's buffered spans for *trace_id*."""
    return _WORKER_RING.drain_trace(trace_id)


class Histogram:
    """Prometheus-style histogram with explicit upper bounds.

    ``observe`` is a bisect plus two adds under a lock — cheap against
    millisecond-scale decode latencies.  ``snapshot`` returns
    *cumulative* bucket counts, ready for text exposition.
    """

    def __init__(self, buckets: tuple[float, ...] = LATENCY_BUCKETS_S):
        """Create a histogram over ascending *buckets* (seconds)."""
        self.buckets = tuple(sorted(buckets))
        self._counts = [0] * (len(self.buckets) + 1)  # last = +Inf
        self._sum = 0.0
        self._count = 0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        """Record one observation."""
        idx = bisect_right(self.buckets, value)
        with self._lock:
            self._counts[idx] += 1
            self._sum += value
            self._count += 1

    def snapshot(self) -> dict:
        """Cumulative ``{le: count}`` buckets plus sum and count."""
        with self._lock:
            counts = list(self._counts)
            total, n = self._sum, self._count
        cumulative: list[tuple[str, int]] = []
        running = 0
        for bound, count in zip(self.buckets, counts):
            running += count
            cumulative.append((repr(bound), running))
        cumulative.append(("+Inf", n))
        return {"buckets": cumulative, "sum": total, "count": n}


class TraceStore:
    """Bounded in-memory map of ``trace_id -> spans`` (drop-oldest)."""

    def __init__(self, capacity: int = TRACE_CAPACITY):
        """Retain at most *capacity* traces, evicting the oldest."""
        self.capacity = capacity
        self._traces: OrderedDict[str, list[SpanRecord]] = OrderedDict()
        self._lock = threading.Lock()

    def add(self, spans: list[SpanRecord]) -> None:
        """File *spans* under their trace ids, evicting old traces."""
        with self._lock:
            for span in spans:
                bucket = self._traces.get(span.trace_id)
                if bucket is None:
                    bucket = self._traces[span.trace_id] = []
                bucket.append(span)
            while len(self._traces) > self.capacity:
                self._traces.popitem(last=False)

    def get(self, trace_id: str) -> list[SpanRecord]:
        """Spans of one trace (empty when unknown or evicted)."""
        with self._lock:
            return list(self._traces.get(trace_id, ()))

    def last(self, n: int) -> list[tuple[str, list[SpanRecord]]]:
        """The *n* most recently started traces, oldest first."""
        with self._lock:
            ids = list(self._traces.keys())[-n:]
            return [(tid, list(self._traces[tid])) for tid in ids]

    def __len__(self) -> int:
        """Number of retained traces."""
        return len(self._traces)


class TraceLog:
    """Rotation-safe JSON-lines span log (one object per span).

    Every flush reopens the file in append mode, so an external
    ``mv`` + recreate rotation is picked up on the next batch without
    signal handling, and concurrent writers interleave whole lines
    (O_APPEND semantics).
    """

    def __init__(self, path: str | Path):
        """Append spans to *path* (created on first write)."""
        self.path = Path(path)
        self._lock = threading.Lock()
        self.written = 0

    def append(self, spans: list[SpanRecord]) -> None:
        """Serialize and append *spans*, one JSON object per line."""
        if not spans:
            return
        payload = "".join(
            json.dumps(s.to_dict(), separators=(",", ":")) + "\n"
            for s in spans)
        with self._lock:
            with open(self.path, "a", encoding="utf-8") as fh:
                fh.write(payload)
            self.written += len(spans)


def read_trace_log(path: str | Path) -> "OrderedDict[str, list[SpanRecord]]":
    """Parse a :class:`TraceLog` file into ``trace_id -> spans``.

    Tolerates a torn final line (a writer mid-append or mid-rotation):
    undecodable lines are skipped, never fatal.
    """
    traces: OrderedDict[str, list[SpanRecord]] = OrderedDict()
    log_path = Path(path)
    if not log_path.exists():
        return traces
    with open(log_path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                span = SpanRecord.from_dict(json.loads(line))
            except (ValueError, KeyError, TypeError):
                continue
            traces.setdefault(span.trace_id, []).append(span)
    return traces


class ObsHub:
    """Per-session observability root: sampler, metrics, trace sinks.

    Owned by ``DecodeSession``.  ``maybe_start_trace`` implements the
    mode gate (``off`` / ``on`` / ``sample``); ``record_spans`` files
    completed spans into the bounded :class:`TraceStore` and, when
    configured, the JSON-lines :class:`TraceLog`.  The latency
    :class:`Histogram` stays live in every mode except ``unobserved``
    (the benchmark control arm).
    """

    def __init__(self, mode: str = "off", sample_rate: float = 0.1,
                 log_path: str | Path | None = None,
                 trace_capacity: int = TRACE_CAPACITY):
        """Configure the hub; *sample_rate* applies to ``sample`` mode."""
        self.mode = parse_trace_mode(mode)
        if not (0.0 < sample_rate <= 1.0):
            raise ServiceError(
                f"trace sample rate must be in (0, 1], got {sample_rate}")
        self.sample_period = max(1, round(1.0 / sample_rate))
        self.latency = Histogram()
        self.store = TraceStore(capacity=trace_capacity)
        self.log = TraceLog(log_path) if log_path else None
        self.started_at = time()
        self._seq = 0
        self._lock = threading.Lock()
        self._counters = {"traces_started": 0, "spans_recorded": 0}

    @property
    def enabled(self) -> bool:
        """True when any request may be traced (``on`` or ``sample``)."""
        return self.mode in ("on", "sample")

    def maybe_start_trace(self) -> TraceContext | None:
        """A fresh root context per the mode gate, or ``None``.

        ``sample`` mode uses a deterministic 1-in-N counter (not a
        PRNG) so benchmark span counts reconcile exactly.
        """
        if self.mode == "on":
            return self.start_trace()
        if self.mode == "sample":
            with self._lock:
                seq = self._seq
                self._seq += 1
            if seq % self.sample_period == 0:
                return self.start_trace()
        return None

    def start_trace(self) -> TraceContext:
        """Unconditionally start a trace (e.g. HTTP ``X-Trace: 1``)."""
        with self._lock:
            self._counters["traces_started"] += 1
        return TraceContext.new_root()

    def observe_latency(self, seconds: float) -> None:
        """Feed the decode-latency histogram (no-op when unobserved)."""
        if self.mode != "unobserved":
            self.latency.observe(seconds)

    def record_spans(self, spans: list[SpanRecord]) -> None:
        """File completed spans into the store and the optional log."""
        if not spans:
            return
        self.store.add(spans)
        if self.log is not None:
            self.log.append(spans)
        with self._lock:
            self._counters["spans_recorded"] += len(spans)

    def counters(self) -> dict:
        """Current counter values (copied)."""
        with self._lock:
            return dict(self._counters)


def map_remote_spans(spans: list[SpanRecord], endpoint: str,
                     t0: float, t1: float, host_recv: float,
                     host_send: float) -> list[SpanRecord]:
    """Shift remote-host spans into the client's clock domain.

    The offset is estimated from the request/response pair the same
    way NTP does: the midpoint of the client window ``[t0, t1]`` is
    assumed simultaneous with the midpoint of the host's
    ``[host_recv, host_send]`` service window.  Mapped timestamps are
    then clamped into ``[t0, t1]`` so a skewed host clock can never
    make a stitched timeline show negative queue waits.  Resources are
    prefixed with ``endpoint/`` so Gantt rows name the host.
    """
    offset = ((t0 + t1) / 2.0) - ((host_recv + host_send) / 2.0)
    mapped = []
    for span in spans:
        start = min(max(span.start + offset, t0), t1)
        end = min(max(span.end + offset, start), t1)
        mapped.append(SpanRecord(
            trace_id=span.trace_id, span_id=span.span_id,
            parent_id=span.parent_id, name=span.name,
            resource=f"{endpoint}/{span.resource}", kind=span.kind,
            start=start, end=end,
            attrs={**span.attrs, "clock_offset_s": offset}))
    return mapped


# ---------------------------------------------------------------------------
# Timeline reconstruction (the measured Figure 5/8 view).
# ---------------------------------------------------------------------------

def spans_to_timeline(spans: list[SpanRecord]) -> Timeline:
    """Replay collected spans through the ASCII-Gantt renderer.

    Times are normalized to the trace start and expressed in
    microseconds, matching :class:`~repro.core.timeline.Timeline`'s
    simulated-time units so its renderer and metrics apply unchanged.
    """
    timeline = Timeline()
    if not spans:
        return timeline
    origin = min(s.start for s in spans)
    for span in sorted(spans, key=lambda s: s.start):
        start_us = (span.start - origin) * 1e6
        end_us = max(start_us, (span.end - origin) * 1e6)
        timeline.add(span.resource, span.name, span.kind, start_us, end_us)
    return timeline


def format_trace(trace_id: str, spans: list[SpanRecord],
                 width: int = 78) -> str:
    """Render one trace: Gantt chart plus an indented span tree."""
    if not spans:
        return f"trace {trace_id}: no spans"
    lines = [f"trace {trace_id} — {len(spans)} span(s), "
             f"{(max(s.end for s in spans) - min(s.start for s in spans)) * 1e3:.2f} ms",
             "", spans_to_timeline(spans).render(width=width), ""]
    by_parent: dict[str | None, list[SpanRecord]] = {}
    known = {s.span_id for s in spans}
    for span in spans:
        parent = span.parent_id if span.parent_id in known else None
        by_parent.setdefault(parent, []).append(span)
    origin = min(s.start for s in spans)

    def walk(parent: str | None, depth: int) -> None:
        """Append one tree level, sorted by start time."""
        for span in sorted(by_parent.get(parent, ()), key=lambda s: s.start):
            attrs = " ".join(f"{k}={v}" for k, v in span.attrs.items()
                             if k != "clock_offset_s")
            lines.append(
                f"  {'  ' * depth}{span.name:<14} "
                f"+{(span.start - origin) * 1e3:8.2f} ms "
                f"{span.duration_s * 1e3:8.2f} ms  "
                f"[{span.resource}]{'  ' + attrs if attrs else ''}")
            walk(span.span_id, depth + 1)

    walk(None, 0)
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Prometheus text exposition (dependency-free).
# ---------------------------------------------------------------------------

def _escape_label(value: object) -> str:
    """Escape a label value per the exposition format."""
    return (str(value).replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n"))


class _PromWriter:
    """Accumulates one exposition document with HELP/TYPE headers."""

    def __init__(self):
        """Start an empty document."""
        self.lines: list[str] = []

    def header(self, name: str, kind: str, help_text: str) -> None:
        """Emit the ``# HELP`` / ``# TYPE`` pair for a metric family."""
        self.lines.append(f"# HELP {name} {help_text}")
        self.lines.append(f"# TYPE {name} {kind}")

    def sample(self, name: str, labels: dict | None, value: object) -> None:
        """Emit one sample line."""
        try:
            numeric = float(value)
        except (TypeError, ValueError):
            return
        if labels:
            body = ",".join(f'{k}="{_escape_label(v)}"'
                            for k, v in labels.items())
            self.lines.append(f"{name}{{{body}}} {numeric:g}")
        else:
            self.lines.append(f"{name} {numeric:g}")

    def render(self) -> str:
        """The finished document (trailing newline included)."""
        return "\n".join(self.lines) + "\n"


def render_prometheus(snapshot: dict, hub: ObsHub | None = None) -> str:
    """Render a session ``stats_snapshot()`` as Prometheus text.

    Defensive against shape drift: every section is optional, so the
    exporter keeps working if a stats key disappears.  Produces
    counters (``_total``), gauges, and the decode-latency histogram
    with explicit buckets; per-lane and per-host series carry
    ``lane`` / ``host`` labels.
    """
    w = _PromWriter()

    w.header("repro_images_total", "counter", "Images decoded (lifetime).")
    w.sample("repro_images_total", {"outcome": "ok"},
             snapshot.get("images_ok", 0))
    w.sample("repro_images_total", {"outcome": "failed"},
             snapshot.get("images_failed", 0))
    w.sample("repro_images_total", {"outcome": "split"},
             snapshot.get("images_split", 0))
    w.header("repro_batches_total", "counter", "Batches decoded (lifetime).")
    w.sample("repro_batches_total", None, snapshot.get("batches", 0))

    w.header("repro_queue_depth", "gauge", "Requests waiting in the queue.")
    w.sample("repro_queue_depth", None, snapshot.get("pending", 0))
    w.header("repro_queue_capacity", "gauge", "Bounded queue capacity.")
    w.sample("repro_queue_capacity", None, snapshot.get("queue_capacity", 0))

    faults = snapshot.get("faults", {})
    w.header("repro_retries_total", "counter", "Per-image dispatch retries.")
    w.sample("repro_retries_total", None, faults.get("retries", 0))
    w.header("repro_infra_failures_total", "counter",
             "Worker crashes / infrastructure failures.")
    w.sample("repro_infra_failures_total", None,
             faults.get("infra_failures", 0))
    w.header("repro_deadline_expired_total", "counter",
             "Requests shed by deadline.")
    w.sample("repro_deadline_expired_total", None,
             faults.get("deadline_expired", 0))
    w.header("repro_pool_rebuilds_total", "counter",
             "Broken worker pools rebuilt in place.")
    w.sample("repro_pool_rebuilds_total", None, faults.get("pool_rebuilds", 0))
    w.header("repro_shed_total", "counter",
             "Admissions refused, by priority class.")
    for priority, count in sorted(
            (faults.get("shed_by_priority") or {}).items()):
        w.sample("repro_shed_total", {"priority": priority}, count)

    transport = snapshot.get("transport", {})
    w.header("repro_transport_bytes_total", "counter",
             "Result plane bytes by transport mode.")
    w.sample("repro_transport_bytes_total", {"mode": "shm"},
             transport.get("shm_bytes", 0))
    w.sample("repro_transport_bytes_total", {"mode": "pickle"},
             transport.get("pickle_bytes", 0))

    per_executor = {lane: usage for lane, usage
                    in sorted((snapshot.get("per_executor") or {}).items())
                    if isinstance(usage, dict)}
    # One family's header must precede ALL its samples (the exposition
    # format forbids reopening a family), so the lane loop runs once
    # per family rather than once with interleaved samples.
    w.header("repro_lane_images_total", "counter",
             "Images decoded per executor lane.")
    for lane, usage in per_executor.items():
        w.sample("repro_lane_images_total", {"lane": lane},
                 usage.get("images", 0))
    w.header("repro_lane_busy_seconds_total", "counter",
             "Busy wall-clock per executor lane.")
    for lane, usage in per_executor.items():
        w.sample("repro_lane_busy_seconds_total", {"lane": lane},
                 usage.get("busy_s", usage.get("wall_s", 0)))

    scheduler = snapshot.get("scheduler") or {}
    feedback = scheduler.get("feedback") or {}
    scales = (feedback.get("scales") if isinstance(feedback, dict) else None) \
        or scheduler.get("scales") or {}
    w.header("repro_lane_ewma_scale", "gauge",
             "EWMA feedback scale per scheduler lane.")
    if isinstance(scales, dict):
        for lane, scale in sorted(scales.items()):
            w.sample("repro_lane_ewma_scale", {"lane": lane}, scale)
    breakers = scheduler.get("breakers") or {}
    w.header("repro_lane_breaker_state", "gauge",
             "Circuit breaker state per lane (1 = in this state).")
    states = ("closed", "open", "half_open")
    if isinstance(breakers, dict):
        for lane, info in sorted(breakers.items()):
            current = info.get("state") if isinstance(info, dict) else info
            for state in states:
                w.sample("repro_lane_breaker_state",
                         {"lane": lane, "state": state},
                         1 if current == state else 0)

    per_host = {entry.get("endpoint", lane): entry for lane, entry
                in sorted((snapshot.get("per_host") or {}).items())
                if isinstance(entry, dict)}
    w.header("repro_host_requests_total", "counter",
             "Requests dispatched per remote host.")
    for host, entry in per_host.items():
        w.sample("repro_host_requests_total", {"host": host},
                 entry.get("requests", 0))
    w.header("repro_host_failures_total", "counter",
             "Failed dispatches per remote host.")
    for host, entry in per_host.items():
        w.sample("repro_host_failures_total", {"host": host},
                 entry.get("failures", 0))
    w.header("repro_host_bytes_total", "counter",
             "Wire bytes per remote host, by direction.")
    for host, entry in per_host.items():
        w.sample("repro_host_bytes_total", {"host": host, "direction": "tx"},
                 entry.get("bytes_tx", 0))
        w.sample("repro_host_bytes_total", {"host": host, "direction": "rx"},
                 entry.get("bytes_rx", 0))

    if hub is not None:
        hist = hub.latency.snapshot()
        w.header("repro_decode_latency_seconds", "histogram",
                 "End-to-end decode latency (submit to result).")
        for le, count in hist["buckets"]:
            w.sample("repro_decode_latency_seconds_bucket", {"le": le}, count)
        w.sample("repro_decode_latency_seconds_sum", None, hist["sum"])
        w.sample("repro_decode_latency_seconds_count", None, hist["count"])
        counters = hub.counters()
        w.header("repro_traces_started_total", "counter",
                 "Trace contexts created by the sampler gate.")
        w.sample("repro_traces_started_total", None,
                 counters.get("traces_started", 0))
        w.header("repro_spans_recorded_total", "counter",
                 "Spans filed into the trace store.")
        w.sample("repro_spans_recorded_total", None,
                 counters.get("spans_recorded", 0))
        w.header("repro_obs_uptime_seconds", "gauge",
                 "Seconds since the observability hub started.")
        w.sample("repro_obs_uptime_seconds", None,
                 max(0.0, time() - hub.started_at))

    w.header("repro_process_start_unixtime", "gauge",
             "Unix time this process's exporter first rendered.")
    w.sample("repro_process_start_unixtime", None, _PROCESS_EPOCH)
    return w.render()


#: Stamped at import so repeated scrapes expose a stable start marker.
_PROCESS_EPOCH = time()

#: Re-exported so worker tasks can stamp spans without importing time.
now = perf_counter

#: Environment knob honored by the S9 benchmark and the CI obs job.
TRACE_OVERHEAD_ENV = "TRACE_OVERHEAD_MAX_RATIO"


def trace_overhead_budget(default: float = 0.03) -> float:
    """The allowed tracing-off throughput overhead fraction."""
    return float(os.environ.get(TRACE_OVERHEAD_ENV, str(default)))
