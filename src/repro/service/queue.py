"""Bounded submission queue with backpressure.

The service's ingress: producers :meth:`~SubmissionQueue.put` requests
and a consumer — the pull-driven batch loop of
:class:`~repro.service.batch.DecodeService`, or the
:class:`~repro.service.session.DecodeSession` pump thread — drains them
with :meth:`~SubmissionQueue.get_batch`.  Both ends are safe under
concurrency: any number of producer threads may block in ``put`` while
the consumer drains (one condition variable serializes slot claims, so
no request is ever lost or duplicated).  Capacity is a hard bound —
when the queue is full, ``put`` either blocks (bounded by *timeout*) or
fails fast with :class:`~repro.errors.QueueFullError`, which is the
backpressure signal a front end propagates to its clients (HTTP 429,
drop, retry-after).

Implemented on a ``collections.deque`` + ``threading.Condition`` rather
than ``queue.Queue`` so that close semantics and batch draining are
first-class: closing wakes all blocked producers/consumers, and
``get_batch`` returns up to *max_items* in one lock acquisition.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Any

from ..errors import QueueFullError, ServiceClosedError


class SubmissionQueue:
    """Thread-safe bounded FIFO of pending decode requests."""

    def __init__(self, capacity: int = 32) -> None:
        """Create a queue holding at most *capacity* pending requests."""
        if capacity <= 0:
            raise ValueError(f"queue capacity must be positive, got {capacity}")
        self._capacity = capacity
        self._items: deque[Any] = deque()
        self._cond = threading.Condition()
        self._closed = False

    @property
    def capacity(self) -> int:
        """Maximum number of pending requests."""
        return self._capacity

    @property
    def closed(self) -> bool:
        """True once :meth:`close` has been called."""
        return self._closed

    @property
    def space(self) -> int:
        """Free request slots (advisory under concurrent producers —
        another thread may claim a slot between reading this and
        :meth:`put`; the ``put`` return path is the authority)."""
        with self._cond:
            return max(0, self._capacity - len(self._items))

    def __len__(self) -> int:
        """Number of requests currently pending."""
        return len(self._items)

    def put(self, item: Any, timeout: float | None = None,
            limit: int | None = None) -> None:
        """Enqueue *item*, applying backpressure when full.

        ``timeout=None`` blocks until space frees up (or the queue
        closes); ``timeout=0`` never blocks; a positive timeout blocks at
        most that long.  Raises :class:`QueueFullError` when the bound
        holds at the deadline and :class:`ServiceClosedError` when the
        queue is (or becomes) closed.

        *limit*, when given, caps this ``put``'s view of the capacity at
        ``min(capacity, limit)`` — the weighted-shedding hook: a
        low-priority producer admitting only into half the queue starts
        seeing :class:`QueueFullError` while higher classes still have
        headroom.
        """
        capacity = self._capacity if limit is None \
            else max(1, min(self._capacity, limit))
        with self._cond:
            if timeout == 0:
                if self._closed:
                    raise ServiceClosedError("submission queue is closed")
                if len(self._items) >= capacity:
                    raise QueueFullError(
                        f"submission queue full ({capacity} pending)")
            else:
                ok = self._cond.wait_for(
                    lambda: self._closed
                    or len(self._items) < capacity,
                    timeout=timeout,
                )
                if self._closed:
                    raise ServiceClosedError("submission queue is closed")
                if not ok:
                    raise QueueFullError(
                        f"submission queue full ({capacity} pending, "
                        f"timed out after {timeout}s)")
            self._items.append(item)
            self._cond.notify_all()

    def get_batch(self, max_items: int, timeout: float | None = 0) -> list[Any]:
        """Dequeue up to *max_items* requests in arrival order.

        Returns fewer than *max_items* when the queue holds fewer, and
        ``[]`` when empty at the deadline (``timeout=0`` polls, ``None``
        waits until at least one request or close).
        """
        if max_items <= 0:
            raise ValueError(f"max_items must be positive, got {max_items}")
        with self._cond:
            if timeout != 0:
                self._cond.wait_for(
                    lambda: self._closed or self._items, timeout=timeout)
            batch = []
            while self._items and len(batch) < max_items:
                batch.append(self._items.popleft())
            if batch:
                self._cond.notify_all()
            return batch

    def close(self) -> None:
        """Refuse further ``put`` calls and wake every blocked waiter.

        Already-queued requests remain drainable via :meth:`get_batch`.
        """
        with self._cond:
            self._closed = True
            self._cond.notify_all()
