"""Stdlib-only HTTP shim over the futures-based decode session.

:class:`DecodeHTTPServer` turns a
:class:`~repro.service.session.DecodeSession` into a network service
(``repro serve`` on the CLI) using nothing beyond
:mod:`http.server` — no framework, no event loop, one handler thread
per connection (``ThreadingHTTPServer``), each blocking on its own
:class:`~repro.service.session.DecodeHandle` while the shared pump
forms cross-request batches underneath.  That is the serving shape the
ROADMAP's "async/streaming front end" item asks for: concurrent
producers exercising the bounded queue for real.

Endpoints:

- ``POST /decode`` — body is one JPEG; responds ``200`` with the
  decoded image as binary PPM (``image/x-portable-pixmap``) plus
  ``X-Request-Id``/``X-Width``/``X-Height``/``X-Segments``/
  ``X-Latency-Ms`` headers.  ``POST /decode?format=json`` responds with
  the metadata only (no pixels).  Malformed images answer ``400`` with
  a JSON error body (per-request isolation: one bad upload never
  disturbs another request's decode).
- ``GET /stats`` — JSON snapshot of the running
  :class:`~repro.service.stats.ServiceStats` (plus queue occupancy and
  scheduler feedback when attached).
- ``GET /metrics`` — the same state in Prometheus text exposition
  format (``text/plain; version=0.0.4``), rendered by
  :func:`~repro.service.obs.render_prometheus`: queue depth, shed /
  retry / deadline counters, per-lane EWMA scale and breaker state,
  per-host link counters, and the decode-latency histogram.
- ``GET /healthz`` — liveness probe.

Tracing: an ``X-Trace: 1`` request header forces a trace for that
request regardless of the session's sampling mode; traced responses
carry the trace id in an ``X-Trace-Id`` header (feed it to
``repro trace <id>``).

Backpressure: a full submission queue maps to ``429 Too Many
Requests`` with a ``Retry-After`` header — the HTTP spelling of
:class:`~repro.errors.QueueFullError`; a closed session maps to
``503``.  ``Retry-After`` on 429/503/504 scales with the current
backlog (pending requests over observed throughput, clamped to
[1, 30] s) instead of a fixed constant.  Priorities: an ``X-Priority``
request header (``low``/``normal``/``high`` or an integer class)
selects the request's load-shedding class — under overload low
classes are shed (429) while the queue still admits higher ones
(weighted shedding; see
:data:`~repro.service.session.DEFAULT_SHED_FRACTIONS`).  Deadlines:
an ``X-Deadline-Ms`` request header bounds how long the request may
wait before its decode starts; a request shed at its deadline
(:class:`~repro.errors.DeadlineExceededError`) answers ``504`` with
``Retry-After`` — the client should back off, the service is
load-shedding.  Salvage: an ``X-Salvage: 1`` request header asks for
best-effort decode of corrupt streams — the response carries
``X-Salvaged: 1`` (and ``salvaged``/``salvage_errors``/``damaged_mcus``
in JSON metadata) when rows were recovered past an error.
"""

from __future__ import annotations

import json
from concurrent.futures import CancelledError
from dataclasses import replace
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any
from urllib.parse import parse_qs, urlparse

import numpy as np

from ..errors import (
    DeadlineExceededError,
    QueueFullError,
    ServiceClosedError,
    ServiceError,
)
from .batch import ImageResult, parse_priority
from .obs import render_prometheus
from .session import DecodeSession


def ppm_bytes(rgb: np.ndarray) -> bytes:
    """Serialize an ``(h, w, 3)`` uint8 array as a binary PPM (P6)."""
    h, w = rgb.shape[:2]
    return b"P6\n%d %d\n255\n" % (w, h) + np.ascontiguousarray(rgb).tobytes()


def result_metadata(result: ImageResult) -> dict:
    """JSON-ready metadata of one decode outcome (no pixel payload)."""
    meta = {
        "request_id": result.request_id,
        "ok": result.ok,
        "width": result.width,
        "height": result.height,
        "segments": result.segments,
        "latency_ms": round(result.latency_s * 1e3, 3),
        "error_type": result.error_type,
        "error": result.error,
    }
    if result.salvaged:
        meta["salvaged"] = True
        meta["salvage_errors"] = list(result.salvage_errors)
        if result.error_regions is not None:
            meta["damaged_mcus"] = int(result.error_regions.sum())
    if result.trace_spans:
        meta["trace_id"] = result.trace_spans[0].trace_id
    return meta


class _DecodeRequestHandler(BaseHTTPRequestHandler):
    """One HTTP request: submit to the shared session, await the handle."""

    server: "_SessionHTTPServer"

    # -- plumbing -------------------------------------------------------

    def log_message(self, format: str, *args: Any) -> None:
        """Suppress per-request stderr chatter unless the server is
        constructed with ``quiet=False``."""
        if not self.server.quiet:
            super().log_message(format, *args)

    def _send(self, status: int, body: bytes, content_type: str,
              extra_headers: dict[str, str] | None = None) -> None:
        """Write one complete response."""
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        for name, value in (extra_headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _send_json(self, status: int, payload: dict,
                   extra_headers: dict[str, str] | None = None) -> None:
        """Write a JSON response."""
        self._send(status, json.dumps(payload, indent=2).encode() + b"\n",
                   "application/json", extra_headers)

    def _retry_after(self) -> str:
        """``Retry-After`` header value scaled to the session's current
        backlog (see :meth:`~repro.service.session.DecodeSession.\
retry_after_s`)."""
        return str(self.server.session.retry_after_s())

    # -- endpoints ------------------------------------------------------

    def do_GET(self) -> None:
        """``/stats``, ``/metrics`` and ``/healthz``."""
        path = urlparse(self.path).path
        if path == "/stats":
            self._send_json(200, self.server.session.stats_snapshot())
        elif path == "/metrics":
            body = render_prometheus(self.server.session.stats_snapshot(),
                                     self.server.session.obs)
            self._send(200, body.encode(),
                       "text/plain; version=0.0.4; charset=utf-8")
        elif path == "/healthz":
            self._send_json(200, {"status": "ok",
                                  "closed": self.server.session.closed})
        else:
            self._send_json(404, {"error": f"no such resource: {path}"})

    def do_POST(self) -> None:
        """``/decode``: body in, PPM (or metadata JSON) out."""
        url = urlparse(self.path)
        if url.path != "/decode":
            self._send_json(404, {"error": f"no such resource: {url.path}"})
            return
        length = int(self.headers.get("Content-Length", 0) or 0)
        if length <= 0:
            self._send_json(400, {"error": "empty request body "
                                           "(POST the JPEG bytes)"})
            return
        data = self.rfile.read(length)
        overrides: dict[str, Any] = {}
        deadline_header = self.headers.get("X-Deadline-Ms")
        if deadline_header is not None:
            try:
                overrides["deadline_ms"] = float(deadline_header)
            except ValueError:
                self._send_json(400, {
                    "error": f"invalid X-Deadline-Ms header: "
                             f"{deadline_header!r} (want a positive "
                             f"number of milliseconds)"})
                return
        salvage_header = self.headers.get("X-Salvage")
        if salvage_header is not None:
            overrides["salvage"] = (
                salvage_header.strip().lower() not in ("", "0", "false", "no"))
        priority_header = self.headers.get("X-Priority")
        if priority_header is not None:
            try:
                overrides["priority"] = parse_priority(priority_header)
            except ServiceError as exc:
                self._send_json(400, {
                    "error": f"invalid X-Priority header: {exc}"})
                return
        trace_header = self.headers.get("X-Trace")
        if trace_header is not None and trace_header.strip().lower() \
                not in ("", "0", "false", "no"):
            # Force a trace for this request, bypassing the sampler.
            overrides["trace"] = self.server.session.obs.start_trace()
        item: "bytes | Any" = data
        if overrides:
            item = replace(self.server.session.decoder.defaults,
                           data=data, **overrides)
        try:
            handle = self.server.session.submit(item, timeout=0)
        except QueueFullError as exc:
            # Retry-After scales with the actual backlog: a client told
            # to come back in N seconds should find queue space then.
            self._send_json(429, {"error": str(exc)},
                            {"Retry-After": self._retry_after()})
            return
        except ServiceClosedError as exc:
            self._send_json(503, {"error": str(exc)},
                            {"Retry-After": self._retry_after()})
            return
        except ServiceError as exc:
            # Invalid per-request knob (e.g. non-positive deadline).
            self._send_json(400, {"error": str(exc)})
            return
        try:
            result = handle.result(timeout=self.server.result_timeout_s)
        except DeadlineExceededError as exc:
            # The request expired before a worker picked it up: the
            # service is shedding load, tell the client to back off.
            self._send_json(504, {
                "error": str(exc),
                "request_id": handle.request_id},
                {"Retry-After": self._retry_after()})
            return
        except TimeoutError:
            self._send_json(504, {
                "error": f"decode did not complete within "
                         f"{self.server.result_timeout_s}s",
                "request_id": handle.request_id})
            return
        except CancelledError:
            # The session closed with drain=False under this request
            # (externally-owned session); answer, don't drop the socket.
            self._send_json(503, {
                "error": "request cancelled: session closing",
                "request_id": handle.request_id})
            return
        except Exception as exc:
            # Infrastructure failure (dead pool): 500 beats a handler
            # traceback and a reset connection.
            self._send_json(500, {
                "error": f"{type(exc).__name__}: {exc}",
                "request_id": handle.request_id})
            return
        meta = result_metadata(result)
        if not result.ok:
            self._send_json(400, meta)
            return
        fmt = parse_qs(url.query).get("format", ["ppm"])[0]
        if fmt == "json":
            self._send_json(200, meta)
            return
        headers = {
            "X-Request-Id": str(result.request_id),
            "X-Width": str(result.width),
            "X-Height": str(result.height),
            "X-Segments": str(result.segments),
            "X-Latency-Ms": f"{result.latency_s * 1e3:.3f}",
        }
        if result.salvaged:
            headers["X-Salvaged"] = "1"
        if result.trace_spans:
            headers["X-Trace-Id"] = result.trace_spans[0].trace_id
        self._send(200, ppm_bytes(result.rgb), "image/x-portable-pixmap",
                   headers)


class _SessionHTTPServer(ThreadingHTTPServer):
    """ThreadingHTTPServer carrying the shared session reference."""

    #: Non-daemon handler threads: ``server_close`` then joins every
    #: in-flight request before the session shuts down, so a response
    #: already being decoded can never observe a closed session.
    daemon_threads = False

    session: DecodeSession
    result_timeout_s: float
    quiet: bool

    #: Connections accepted so far (bounded serve_forever counts these,
    #: not accept-timeout ticks).
    handled = 0

    def process_request(self, request: Any, client_address: Any) -> None:
        """Count the accepted connection, then dispatch as usual."""
        self.handled += 1
        super().process_request(request, client_address)


class DecodeHTTPServer:
    """The decode session, served over HTTP.

    Either wrap an existing session (``DecodeHTTPServer(session=s)``)
    or pass :class:`~repro.service.session.DecodeSession` keyword
    arguments and let the server own one (closed with the server).
    ``port=0`` binds an ephemeral port; read :attr:`port` after
    construction.
    """

    def __init__(self, session: DecodeSession | None = None,
                 host: str = "127.0.0.1", port: int = 8077,
                 result_timeout_s: float = 120.0, quiet: bool = True,
                 **session_kwargs: Any) -> None:
        """Bind the listening socket and attach (or build) the session."""
        self._owns_session = session is None
        self._stopping = False
        self.session = session or DecodeSession(**session_kwargs)
        self._httpd = _SessionHTTPServer((host, port), _DecodeRequestHandler)
        self._httpd.session = self.session
        self._httpd.result_timeout_s = result_timeout_s
        self._httpd.quiet = quiet

    @property
    def host(self) -> str:
        """Bound interface."""
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        """Bound port (the ephemeral one when constructed with 0)."""
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        """Base URL clients target."""
        return f"http://{self.host}:{self.port}"

    def serve_forever(self, max_requests: int | None = None) -> None:
        """Serve until :meth:`shutdown` (``max_requests=None``) or until
        *max_requests* connections have been accepted — the bounded mode
        tests and demos use so the call returns on its own."""
        if max_requests is None:
            self._httpd.serve_forever(poll_interval=0.05)
        else:
            # Short accept timeout so a shutdown() from another thread
            # (the graceful-drain signal path) stops this loop too.
            self._httpd.timeout = 0.05
            target = self._httpd.handled + max_requests
            while not self._stopping and self._httpd.handled < target:
                self._httpd.handle_request()

    def shutdown(self) -> None:
        """Stop a :meth:`serve_forever` loop running in another thread."""
        self._stopping = True
        self._httpd.shutdown()

    def close(self) -> None:
        """Close the socket; drain and close the session if owned."""
        self._httpd.server_close()
        if self._owns_session:
            self.session.close(drain=True)

    def __enter__(self) -> "DecodeHTTPServer":
        """Context-manager entry: the server itself."""
        return self

    def __exit__(self, *exc_info: Any) -> None:
        """Context-manager exit: close socket (and owned session)."""
        self.close()
