"""Model-guided cross-image batch scheduler.

The paper partitions a *single* image's pixel stage across CPU and GPU
with fitted closed forms (SPS/PPS, Section 5.2).  This module applies
the same models one level up: given a whole **batch** of images, price
every image on every available executor lane and assign whole images to
lanes so the predicted makespan — the busiest lane's total — is
minimized.  That is the ROADMAP's "cross-image partitioning" study, and
the batch-scale counterpart of Weißenberger & Schmidt's whole-image GPU
routing (arXiv:2111.09219).

Three cooperating pieces:

- **Pricing** — :meth:`repro.core.perfmodel.PerformanceModel.price`
  evaluates Eq 5/6 (+ dispatch) per ``(width, height, density)`` triple;
  :func:`price_images` maps a batch over a lane set, marking lanes that
  cannot run an image (e.g. GPU lanes on 4:2:0, outside the paper's
  kernel scope) as ineligible (``inf``).
- **Assignment** — :func:`schedule_lpt` runs the classic
  longest-processing-time greedy: images sorted by descending best-lane
  cost, each placed on the lane minimizing ``load + cost * scale``.
  :func:`schedule_roundrobin` is the cost-blind baseline the benchmark
  compares against.  An image whose best single-lane cost exceeds the
  batch's ideal balanced makespan *dominates* the batch — no whole-image
  placement can hide it — so when it carries restart markers the
  scheduler falls back to restart-segment fan-out
  (:mod:`repro.jpeg.parallel_huffman`) instead of assigning it whole.
- **Feedback** — :class:`ThroughputFeedback` keeps one EWMA correction
  factor per lane from observed vs. predicted per-image times, so the
  schedule adapts across batches the way PPS re-partitioning (Eq 16/17)
  adapts within an image.

:class:`ModelScheduler` ties the pieces together behind the two calls
:class:`~repro.service.batch.BatchDecoder` makes: :meth:`ModelScheduler.plan`
before submission and :meth:`ModelScheduler.observe` after completion.
"""

from __future__ import annotations

import math
import threading
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Sequence

from ..core.modes import DecodeMode
from ..core.perfmodel import PerformanceModel
from ..core.platform import Platform
from ..errors import ReproError, ServiceError
from ..jpeg.markers import JpegImageInfo, parse_jpeg

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (batch imports us)
    from .batch import ImageRequest, ImageResult

#: Subsampling modes the GPU kernels (and the fitted models) cover.
MODELED_SUBSAMPLINGS = ("4:4:4", "4:2:2")

#: Scheduling policies :class:`ModelScheduler` implements.
POLICIES = ("model", "roundrobin")

#: Circuit-breaker states a lane can be in.
BREAKER_STATES = ("closed", "open", "half_open")


@dataclass(frozen=True)
class ExecutorLane:
    """One schedulable device lane of a platform.

    A lane is what the scheduler assigns whole images to: the platform's
    CPU running the SIMD parallel phase (``kind="simd"``), its plain
    sequential path (``"seq"``), or its GPU (``"gpu"``).  The *kind*
    doubles as the pricing key for
    :meth:`repro.core.perfmodel.PerformanceModel.price`.
    """

    name: str
    kind: str
    platform: Platform

    @property
    def mode(self) -> str:
        """The :class:`~repro.core.modes.DecodeMode` value this lane's
        images execute under inside a worker."""
        return {
            "simd": DecodeMode.SIMD.value,
            "seq": DecodeMode.SEQUENTIAL.value,
            "gpu": DecodeMode.GPU.value,
        }[self.kind]

    def eligible(self, subsampling: str) -> bool:
        """GPU lanes cover only the paper's kernel scope (4:4:4/4:2:2);
        CPU lanes decode everything."""
        if self.kind == "gpu":
            return subsampling in MODELED_SUBSAMPLINGS
        return True


def default_executors(platform: Platform) -> tuple[ExecutorLane, ...]:
    """The natural lane set for one platform: its SIMD CPU and its GPU.

    Multi-platform deployments concatenate the lanes of several
    platforms; names are prefixed with the platform so feedback scales
    stay distinct.
    """
    slug = platform.name.lower().replace(" ", "")
    return (
        ExecutorLane(name=f"{slug}-simd", kind="simd", platform=platform),
        ExecutorLane(name=f"{slug}-gpu", kind="gpu", platform=platform),
    )


@dataclass
class ImagePricing:
    """One image's scheduler-relevant facts and per-lane predictions."""

    index: int                    # position in the submitted batch
    width: int
    height: int
    density: float
    subsampling: str
    has_restarts: bool
    #: True when the image can be decomposed for parallel decode at
    #: all: restart-segment fan-out where DRI permits, speculative
    #: chunk fan-out (:mod:`repro.jpeg.speculative`) for marker-free
    #: scans when the scheduler runs with speculation enabled.  The
    #: dominant-image fallback consults this, not :attr:`has_restarts`.
    #: Progressive streams are never splittable: multi-scan coefficient
    #: accumulation has no per-segment decomposition.
    splittable: bool = False
    #: Entropy scans in the stream (1 = baseline, > 1 = progressive).
    scans: int = 1
    #: True when only the whole-image reference path can decode this
    #: image (progressive, or a component layout the simulated
    #: executors don't model).  Every lane prices as ``inf``; the
    #: scheduler pins these to ``mode="reference"`` instead.
    reference_only: bool = False
    #: Predicted decode time (us) per lane name; ``inf`` = ineligible.
    costs: dict[str, float] = field(default_factory=dict)

    @property
    def best_us(self) -> float:
        """Cheapest predicted time across eligible lanes."""
        return min(self.costs.values(), default=math.inf)


@dataclass
class Assignment:
    """Where one image of the batch was placed."""

    index: int
    #: Lane the image runs on; None when it falls back to
    #: restart-segment fan-out (or could not be priced).
    executor: ExecutorLane | None
    #: Model-predicted decode time on that lane (us), feedback-scaled.
    predicted_us: float = 0.0
    #: True when the image is decoded via restart-segment fan-out
    #: instead of a whole-image lane placement.
    split: bool = False


@dataclass
class BatchSchedule:
    """The outcome of planning one batch: placements + predicted loads."""

    policy: str
    assignments: list[Assignment]
    #: Predicted total busy time per lane name (us).
    loads: dict[str, float] = field(default_factory=dict)
    pricings: list[ImagePricing] = field(default_factory=list)
    #: Round-robin only: lane index where the next batch's rotation
    #: resumes, so streams of small batches keep cycling lanes.
    rr_next_cursor: int = 0
    #: Per-lane placement caps the batch was planned under
    #: (:meth:`LaneBreakerBoard.limits`); empty = no breakers active.
    lane_limits: dict = field(default_factory=dict)
    #: Lane names excluded from this plan by an open circuit breaker
    #: (limit 0) — surfaced so traced requests can record a
    #: ``lane_excluded`` event.
    excluded: tuple = ()
    #: True when the batch executed on lane-bound pools
    #: (:mod:`repro.service.executors`): observed per-lane times are
    #: then real wall-clock (``ImageResult.wall_us``) rather than the
    #: executor simulation's microseconds.
    wall_time: bool = False

    @property
    def makespan_us(self) -> float:
        """Predicted batch completion time: the busiest lane's load."""
        return max(self.loads.values(), default=0.0)

    @property
    def split_count(self) -> int:
        """Images routed to restart-segment fan-out instead of a lane."""
        return sum(a.split for a in self.assignments)

    def format(self) -> str:
        """One-line operator summary (CLI/benchmark output)."""
        lanes = " ".join(
            f"{name}={us / 1e3:.1f}ms" for name, us in sorted(self.loads.items()))
        extra = f" split={self.split_count}" if self.split_count else ""
        return (f"schedule[{self.policy}] makespan="
                f"{self.makespan_us / 1e3:.1f}ms {lanes}{extra}")


class ThroughputFeedback:
    """Per-lane EWMA correction of the model's predictions.

    After each batch the service reports ``(predicted_us, observed_us)``
    pairs per lane; the scheduler multiplies future predictions for that
    lane by the smoothed observed/predicted ratio.  This is the
    cross-batch analog of the paper's Eq 17 density correction: the
    fitted polynomials stay fixed, a single scalar absorbs what the fit
    got wrong for the traffic actually seen.
    """

    def __init__(self, alpha: float = 0.3) -> None:
        """*alpha* is the EWMA weight of the newest observation."""
        if not 0.0 < alpha <= 1.0:
            raise ServiceError(f"alpha must be in (0, 1], got {alpha}")
        self.alpha = alpha
        self._scales: dict[str, float] = {}
        self.observations = 0

    def scale(self, lane_name: str) -> float:
        """Current multiplier for *lane_name* (1.0 until observed)."""
        return self._scales.get(lane_name, 1.0)

    def scales(self) -> dict[str, float]:
        """Snapshot of every lane's current multiplier."""
        return dict(self._scales)

    def observe(self, lane_name: str, predicted_us: float,
                observed_us: float) -> None:
        """Fold one completed image's prediction error into the lane."""
        if predicted_us <= 0 or observed_us <= 0 \
                or not math.isfinite(predicted_us) \
                or not math.isfinite(observed_us):
            return
        ratio = observed_us / predicted_us
        prev = self._scales.get(lane_name)
        if prev is None:
            self._scales[lane_name] = ratio
        else:
            self._scales[lane_name] = (1 - self.alpha) * prev \
                + self.alpha * ratio
        self.observations += 1

    def reset(self, lane_name: str) -> None:
        """Forget one lane's learned scale (back to 1.0).

        Called when that lane's circuit breaker trips: the EWMA was
        shaped by a device that is now failing, so after the lane heals
        the scale must re-learn from scratch rather than anchor on the
        sick-lane history.
        """
        self._scales.pop(lane_name, None)


@dataclass
class _LaneBreaker:
    """Per-lane circuit-breaker state (see :class:`LaneBreakerBoard`)."""

    state: str = "closed"
    #: Consecutive infrastructure failures while closed.
    consecutive_failures: int = 0
    #: Monotonic clock reading when the breaker last tripped open.
    tripped_at: float = 0.0
    #: Times the breaker tripped open (lifetime).
    trips: int = 0
    #: Times a half-open canary closed the breaker again (lifetime).
    recoveries: int = 0


class LaneBreakerBoard:
    """Circuit breakers for executor lanes, one per lane name.

    The paper's scheduler assumes every lane completes its work; a lane
    whose pool keeps crashing (GPU driver wedged, its processes OOMing)
    violates that silently — the LPT greedy would keep routing images
    into the failure.  The board runs the classic three-state breaker
    per lane:

    - **closed** — normal service.  *threshold* consecutive
      infrastructure failures (``ImageResult.infra_failure``; decode
      errors are properties of the bytes and never count) trip the lane
      **open**.
    - **open** — the lane is excluded from placement
      (:meth:`limits` reports 0, the schedulers treat every cost as
      ``inf``).  After *cooldown_s* the next :meth:`limits` call moves
      it to **half_open**.
    - **half_open** — exactly one canary image may be placed
      (:meth:`limits` reports 1).  A successful canary closes the
      breaker; another infrastructure failure re-trips it open for a
      fresh cooldown.

    *clock* defaults to :func:`time.monotonic`; tests inject a fake to
    step through cooldowns deterministically.  All methods are
    thread-safe.
    """

    def __init__(self, threshold: int = 3, cooldown_s: float = 5.0,
                 clock: Callable[[], float] | None = None) -> None:
        """Build an empty board; breakers materialize per lane on first
        :meth:`record`/:meth:`limits` touch."""
        if threshold < 1:
            raise ServiceError(
                f"breaker threshold must be >= 1, got {threshold}")
        if cooldown_s < 0:
            raise ServiceError(
                f"breaker cooldown must be >= 0, got {cooldown_s}")
        self.threshold = threshold
        self.cooldown_s = cooldown_s
        self._clock = clock or time.monotonic
        self._lock = threading.Lock()
        self._breakers: dict[str, _LaneBreaker] = {}

    def _get(self, lane_name: str) -> _LaneBreaker:
        """Fetch-or-create one lane's breaker (lock held by caller)."""
        breaker = self._breakers.get(lane_name)
        if breaker is None:
            breaker = self._breakers[lane_name] = _LaneBreaker()
        return breaker

    def record(self, lane_name: str, ok: bool) -> bool:
        """Fold one lane-placed image's infrastructure outcome.

        *ok* is False only for infrastructure failures (worker crashed
        past its retry budget), True for any completed decode — a
        corrupt JPEG proves the lane *works*.  Returns True when this
        very record tripped the breaker open (callers use the edge to
        reset the lane's feedback scale exactly once per trip).
        """
        with self._lock:
            breaker = self._get(lane_name)
            if ok:
                if breaker.state == "half_open":
                    breaker.recoveries += 1
                breaker.state = "closed"
                breaker.consecutive_failures = 0
                return False
            if breaker.state == "half_open":
                breaker.state = "open"
                breaker.tripped_at = self._clock()
                breaker.trips += 1
                breaker.consecutive_failures = 0
                return True
            breaker.consecutive_failures += 1
            if (breaker.state == "closed"
                    and breaker.consecutive_failures >= self.threshold):
                breaker.state = "open"
                breaker.tripped_at = self._clock()
                breaker.trips += 1
                breaker.consecutive_failures = 0
                return True
            return False

    def state(self, lane_name: str) -> str:
        """Current state name for *lane_name* (untracked lanes are
        closed); advances open→half_open when the cooldown elapsed."""
        self.limit(lane_name)  # advance open→half_open when due
        with self._lock:
            breaker = self._breakers.get(lane_name)
            return breaker.state if breaker is not None else "closed"

    def limit(self, lane_name: str) -> int | None:
        """Placement cap for one lane this batch.

        ``None`` = unlimited (closed), ``0`` = excluded (open, cooling
        down), ``1`` = a single canary (half-open).  An open breaker
        whose cooldown has elapsed transitions to half-open here — the
        read is the probe trigger, so no background timer is needed.
        """
        with self._lock:
            breaker = self._breakers.get(lane_name)
            if breaker is None or breaker.state == "closed":
                return None
            if breaker.state == "open":
                if self._clock() - breaker.tripped_at >= self.cooldown_s:
                    breaker.state = "half_open"
                    return 1
                return 0
            return 1  # half_open: one canary at a time

    def limits(self, lane_names: "Sequence[str]") -> dict[str, int | None]:
        """Placement caps for a lane set (see :meth:`limit`), suitable
        for :func:`schedule_lpt`'s ``lane_limits`` argument."""
        return {name: self.limit(name) for name in lane_names}

    def trips(self) -> int:
        """Lifetime count of breaker trips across every lane."""
        with self._lock:
            return sum(b.trips for b in self._breakers.values())

    def snapshot(self) -> dict:
        """JSON-ready per-lane breaker state for ``GET /stats``."""
        with self._lock:
            now = self._clock()
            out: dict[str, dict] = {}
            for name, b in self._breakers.items():
                entry = {
                    "state": b.state,
                    "consecutive_failures": b.consecutive_failures,
                    "trips": b.trips,
                    "recoveries": b.recoveries,
                }
                if b.state == "open":
                    entry["cooldown_remaining_s"] = max(
                        0.0, self.cooldown_s - (now - b.tripped_at))
                out[name] = entry
            return out


def price_images(
    infos: Sequence[tuple[int, JpegImageInfo]],
    executors: Sequence[ExecutorLane],
    model_for: "callable",
    speculative: bool = False,
) -> list[ImagePricing]:
    """Price parsed images on every lane.

    *infos* holds ``(batch_index, JpegImageInfo)`` pairs; *model_for* is
    ``f(platform, subsampling) -> PerformanceModel`` (the scheduler's
    lazily-profiled cache).  Lanes ineligible for an image's subsampling
    price as ``inf``; CPU lanes on 4:2:0 fall back to the platform's
    4:2:2 model — the closest fitted surface, since 4:2:0 is outside the
    paper's profiling scope.

    With *speculative* set, marker-free images price as splittable too:
    the speculative chunk fan-out (:mod:`repro.jpeg.speculative`) can
    decompose any DRI=0 scan, so the dominant-image fallback is no
    longer gated on restart markers.
    """
    pricings = []
    for index, info in infos:
        sub = info.subsampling_mode
        scans = max(1, len(info.scans))
        reference_only = info.progressive \
            or len(info.frame.components) != 3
        pricing = ImagePricing(
            index=index, width=info.width, height=info.height,
            density=info.file_density, subsampling=sub,
            has_restarts=info.restart_interval > 0,
            splittable=((info.restart_interval > 0 or speculative)
                        and not info.progressive),
            scans=scans, reference_only=reference_only)
        if reference_only:
            # The simulated executor lanes model 3-component baseline
            # decoding only; these images route whole to the reference
            # path (see ModelScheduler.apply).
            for lane in executors:
                pricing.costs[lane.name] = math.inf
            pricings.append(pricing)
            continue
        model_sub = sub if sub in MODELED_SUBSAMPLINGS else "4:2:2"
        for lane in executors:
            if not lane.eligible(sub):
                pricing.costs[lane.name] = math.inf
                continue
            model: PerformanceModel = model_for(lane.platform, model_sub)
            pricing.costs[lane.name] = model.price(
                lane.kind, info.width, info.height, info.file_density,
                scans=scans)
        pricings.append(pricing)
    return pricings


def _scaled_cost(pricing: ImagePricing, lane: ExecutorLane,
                 feedback: ThroughputFeedback | None) -> float:
    """Model cost for (image, lane), corrected by the feedback scale."""
    cost = pricing.costs.get(lane.name, math.inf)
    if feedback is not None and math.isfinite(cost):
        cost *= feedback.scale(lane.name)
    return cost


def schedule_lpt(
    pricings: Sequence[ImagePricing],
    executors: Sequence[ExecutorLane],
    feedback: ThroughputFeedback | None = None,
    split_dominant: bool = True,
    lane_limits: "dict[str, int | None] | None" = None,
) -> BatchSchedule:
    """Makespan-minimizing greedy (LPT) over the priced batch.

    Images are placed in descending order of their best-lane cost, each
    onto the lane minimizing ``current load + scaled cost`` (ties break
    toward the earlier lane in *executors*, so identical batches
    schedule identically).  Every cost — the sort key, the dominance
    threshold, and the placement — is feedback-scaled, so the greedy
    keeps optimizing the *corrected* makespan once observations drift
    the scales away from 1.0.  LPT is the classic 4/3-approximation for
    minimum-makespan scheduling on unrelated machines' restricted
    cousin; cost-aware placement is what the round-robin baseline lacks.

    When *split_dominant* is set, an image whose best single-lane cost
    exceeds the ideal balanced makespan (total best-cost work divided by
    the lane count) *and* that is splittable — it carries restart
    markers, or the scheduler priced it with speculative chunk fan-out
    available — is routed to parallel fan-out instead: the one case
    where whole-image placement cannot avoid that image defining the
    batch's finish line.

    An image none of *executors* can take (every scaled cost ``inf`` —
    e.g. a lane subset excluding its only eligible lanes) is returned
    unassigned rather than raising, matching :meth:`ModelScheduler.plan`'s
    contract for unpriceable images.

    *lane_limits* (from
    :meth:`LaneBreakerBoard.limits`) caps placements per lane: ``0``
    excludes a tripped lane entirely, ``1`` admits the half-open canary,
    ``None``/absent is unlimited.  Images no admissible lane can take
    degrade to unassigned (decoded as submitted on the default pool)
    rather than being forced onto a tripped lane.
    """
    limits = lane_limits or {}
    placed: dict[str, int] = {lane.name: 0 for lane in executors}
    assignments: list[Assignment] = []
    loads: dict[str, float] = {lane.name: 0.0 for lane in executors}

    def admissible(lane: ExecutorLane) -> bool:
        cap = limits.get(lane.name)
        return cap is None or placed[lane.name] < cap

    def scaled_best(pricing: ImagePricing) -> float:
        return min((_scaled_cost(pricing, lane, feedback)
                    for lane in executors if admissible(lane)),
                   default=math.inf)

    best = {p.index: scaled_best(p) for p in pricings}
    placeable = [p for p in pricings if math.isfinite(best[p.index])]
    lanes_open = sum(1 for lane in executors if admissible(lane))
    ideal = (sum(best[p.index] for p in placeable) / max(1, lanes_open)
             if placeable else 0.0)

    for pricing in sorted(pricings, key=lambda p: -best[p.index]):
        if not math.isfinite(best[pricing.index]):
            # No lane can take it — leave it unassigned, decoded as-is.
            assignments.append(Assignment(index=pricing.index, executor=None))
            continue
        if (split_dominant and len(placeable) > 1
                and (pricing.splittable or pricing.has_restarts)
                and best[pricing.index] > ideal):
            assignments.append(Assignment(
                index=pricing.index, executor=None,
                predicted_us=best[pricing.index], split=True))
            continue
        best_lane, best_total, best_cost = None, math.inf, math.inf
        for lane in executors:
            if not admissible(lane):
                continue
            cost = _scaled_cost(pricing, lane, feedback)
            total = loads[lane.name] + cost
            if total < best_total:
                best_lane, best_total, best_cost = lane, total, cost
        if best_lane is None or not math.isfinite(best_cost):
            # Capacity (breaker caps) ran out mid-batch: degrade.
            assignments.append(Assignment(index=pricing.index, executor=None))
            continue
        assignments.append(Assignment(
            index=pricing.index, executor=best_lane, predicted_us=best_cost))
        loads[best_lane.name] += best_cost
        placed[best_lane.name] += 1

    assignments.sort(key=lambda a: a.index)
    return BatchSchedule(policy="model", assignments=assignments,
                         loads=loads, pricings=list(pricings),
                         lane_limits=dict(limits))


def schedule_roundrobin(
    pricings: Sequence[ImagePricing],
    executors: Sequence[ExecutorLane],
    feedback: ThroughputFeedback | None = None,
    start: int = 0,
    lane_limits: "dict[str, int | None] | None" = None,
) -> BatchSchedule:
    """Cost-blind baseline: cycle lanes in batch order.

    Each image goes to the next lane in rotation (skipping lanes
    ineligible for its subsampling and lanes at their *lane_limits*
    breaker cap — see :func:`schedule_lpt`), beginning at lane index
    *start* — :class:`ModelScheduler` threads the previous batch's end
    position through so a stream of small batches still rotates every
    lane.  Loads are accounted with the model's prices so the two
    policies' makespans are comparable.
    """
    limits = lane_limits or {}
    placed: dict[str, int] = {lane.name: 0 for lane in executors}
    assignments: list[Assignment] = []
    loads: dict[str, float] = {lane.name: 0.0 for lane in executors}
    cursor = start % len(executors) if executors else 0
    for pricing in pricings:
        lane = None
        for probe in range(len(executors)):
            candidate = executors[(cursor + probe) % len(executors)]
            cap = limits.get(candidate.name)
            if cap is not None and placed[candidate.name] >= cap:
                continue
            if math.isfinite(pricing.costs.get(candidate.name, math.inf)):
                lane = candidate
                cursor = (cursor + probe + 1) % len(executors)
                break
        if lane is None:
            assignments.append(Assignment(index=pricing.index, executor=None))
            continue
        cost = _scaled_cost(pricing, lane, feedback)
        assignments.append(Assignment(
            index=pricing.index, executor=lane, predicted_us=cost))
        loads[lane.name] += cost
        placed[lane.name] += 1
    return BatchSchedule(policy="roundrobin", assignments=assignments,
                         loads=loads, pricings=list(pricings),
                         rr_next_cursor=cursor, lane_limits=dict(limits))


def lane_outcomes(schedule: BatchSchedule, results: "Sequence[ImageResult]"
                  ) -> "list[tuple[Assignment, float]]":
    """Pair lane-placed assignments with their observed decode times.

    Returns ``(assignment, observed_us)`` for every successfully decoded
    image the schedule placed on a lane.  The observed quantity depends
    on how the batch executed: on one shared pool it is the executor's
    own simulated time (``ImageResult.simulated_us`` — the same
    model-world microseconds the predictions are in), but when the
    schedule ran on lane-bound pools (``schedule.wall_time``) it is the
    *real* worker wall-clock (``ImageResult.wall_us``), so the EWMA
    scales converge to each lane's genuine hardware throughput and the
    LPT greedy starts optimizing the measured makespan — the cross-batch
    analog of the paper's Eq 16/17 runtime repartitioning.  Images
    decoded outside a lane (split fallbacks, unassigned) have no
    comparable observation and are excluded, as are failures.  Both the
    feedback loop (:meth:`ModelScheduler.observe`) and the service stats
    (:meth:`~repro.service.stats.ServiceStats.record_schedule`) consume
    this one definition, so they can never silently diverge.
    """
    by_index = {a.index: a for a in schedule.assignments}
    outcomes = []
    for i, result in enumerate(results):
        a = by_index.get(i)
        if a is None or a.executor is None or not result.ok \
                or result.failed_over:
            # failed_over: the image decoded on a different pool than
            # its scheduled lane — its wall time describes the rescue
            # host, not the lane that was priced.
            continue
        observed = result.wall_us if schedule.wall_time \
            else result.simulated_us
        if observed is None or observed <= 0:
            continue
        outcomes.append((a, observed))
    return outcomes


class ModelScheduler:
    """Cross-image batch scheduler: price, place, execute, adapt.

    Construct with a *policy* (``"model"`` = LPT, ``"roundrobin"`` =
    the baseline) and either a lane set or a platform whose
    :func:`default_executors` lanes are used.  Performance models are
    profiled lazily per (platform, subsampling) through the process-wide
    cache :class:`~repro.core.decoder.HeterogeneousDecoder` maintains.

    :class:`~repro.service.batch.BatchDecoder` calls :meth:`plan` with
    the normalized batch; the returned rewritten requests pin each image
    to its lane's decode mode/platform (or to restart-segment fan-out).
    :class:`~repro.service.batch.DecodeService` calls :meth:`observe`
    with the completed results, closing the feedback loop.
    """

    def __init__(self, policy: str = "model",
                 executors: Sequence[ExecutorLane] | None = None,
                 platform: Platform | None = None,
                 split_dominant: bool = True,
                 feedback: ThroughputFeedback | None = None,
                 breakers: LaneBreakerBoard | None = None,
                 speculative: bool = True) -> None:
        """Build the lane set and the feedback state for one scheduler.

        *breakers* is the lane circuit-breaker board consulted at every
        :meth:`plan` and fed by every :meth:`observe`; the default board
        trips a lane after 3 consecutive infrastructure failures and
        probes it again after a 5 s cooldown.  Pass a configured
        :class:`LaneBreakerBoard` to tune (the CLI's
        ``--breaker-threshold`` does).

        With *speculative* (the default), every image is priced as
        splittable — marker-free scans decompose via speculative chunk
        fan-out (:mod:`repro.jpeg.speculative`), so the dominant-image
        fallback no longer serializes a big DRI=0 image on one lane.
        Pass False to restore the DRI-gated behavior.
        """
        if policy not in POLICIES:
            raise ServiceError(
                f"unknown scheduling policy {policy!r} "
                f"(choose from {list(POLICIES)})")
        if executors is None:
            if platform is None:
                from ..evaluation import platforms
                platform = platforms.GTX560
            executors = default_executors(platform)
        if not executors:
            raise ServiceError("scheduler needs at least one executor lane")
        self.policy = policy
        self.executors = tuple(executors)
        self.split_dominant = split_dominant
        self.speculative = speculative
        self.feedback = feedback or ThroughputFeedback()
        self.breakers = breakers or LaneBreakerBoard()
        self._decoders: dict[str, "object"] = {}
        self._rr_cursor = 0

    # -- model access ---------------------------------------------------

    def _model_for(self, platform: Platform,
                   subsampling: str) -> PerformanceModel:
        """Fetch (lazily profile) the model for one lane's platform."""
        from ..core.decoder import HeterogeneousDecoder

        dec = self._decoders.get(platform.name)
        if dec is None:
            dec = HeterogeneousDecoder.for_platform(platform)
            self._decoders[platform.name] = dec
        return dec.model_for(subsampling)

    # -- planning -------------------------------------------------------

    def price(self, blobs: Sequence[bytes]) -> list[ImagePricing]:
        """Parse and price raw JPEG bytes on this scheduler's lanes.

        The pricing half of :meth:`plan` without the placement — the
        public entry point for benchmarks and offline what-if studies
        (feed the result to :func:`schedule_lpt` /
        :func:`schedule_roundrobin` directly).  Unlike :meth:`plan`,
        parse errors propagate: a what-if study over broken bytes is a
        caller bug, not traffic to route around.
        """
        infos = [(i, parse_jpeg(b)) for i, b in enumerate(blobs)]
        return price_images(infos, self.executors, self._model_for,
                            speculative=self.speculative)

    def plan(self, requests: "Sequence[ImageRequest]") -> BatchSchedule:
        """Parse, price and place one batch; returns the schedule.

        Images whose headers fail to parse get an unassigned
        :class:`Assignment` (``executor=None``) and are left for the
        worker to fail with the precise decode error — the scheduler
        never swallows an error the decoder would report.
        """
        infos: list[tuple[int, JpegImageInfo]] = []
        unparsable: list[int] = []
        for i, req in enumerate(requests):
            try:
                infos.append((i, parse_jpeg(req.data)))
            except (ReproError, ValueError):
                unparsable.append(i)
        pricings = price_images(infos, self.executors, self._model_for,
                                speculative=self.speculative)
        limits = self.breakers.limits([l.name for l in self.executors])
        if self.policy == "model":
            schedule = schedule_lpt(pricings, self.executors, self.feedback,
                                    self.split_dominant, lane_limits=limits)
        else:
            schedule = schedule_roundrobin(pricings, self.executors,
                                           self.feedback,
                                           start=self._rr_cursor,
                                           lane_limits=limits)
            self._rr_cursor = schedule.rr_next_cursor
        for i in unparsable:
            schedule.assignments.append(Assignment(index=i, executor=None))
        schedule.assignments.sort(key=lambda a: a.index)
        schedule.excluded = tuple(
            sorted(name for name, cap in limits.items() if cap == 0))
        return schedule

    def apply(self, requests: "list[ImageRequest]",
              schedule: BatchSchedule) -> "list[ImageRequest]":
        """Rewrite each request to execute where the schedule placed it.

        Lane placements pin the request to the lane's decode mode and
        platform (whole-image task, no segment splitting); dominant-image
        fallbacks pin the reference pixel path with the fan-out that
        fits the image forced on — restart-segment splitting where DRI
        permits, speculative chunk fan-out for marker-free scans.
        Images only the reference path can decode (progressive streams,
        grayscale/4-component layouts) are pinned to ``mode="reference"``
        whole-image.  Unassigned images pass through untouched.
        """
        from dataclasses import replace

        restarts = {p.index: p.has_restarts for p in schedule.pricings}
        ref_only = {p.index for p in schedule.pricings if p.reference_only}
        rewritten = list(requests)
        for a in schedule.assignments:
            req = rewritten[a.index]
            if a.index in ref_only:
                rewritten[a.index] = replace(
                    req, mode="reference", split_segments=False,
                    speculative=False)
            elif a.split:
                if restarts.get(a.index):
                    rewritten[a.index] = replace(
                        req, mode="reference", split_segments=True)
                else:
                    rewritten[a.index] = replace(
                        req, mode="reference", split_segments=False,
                        speculative=True)
            elif a.executor is not None:
                rewritten[a.index] = replace(
                    req, mode=a.executor.mode,
                    platform=a.executor.platform.name,
                    split_segments=False)
        return rewritten

    # -- observability --------------------------------------------------

    def snapshot(self) -> dict:
        """JSON-ready view of the scheduler's adaptive state.

        Exposed through ``GET /stats`` on the HTTP front end: the
        policy, the lane set, and the per-lane EWMA correction scales
        with how many observations shaped them.
        """
        return {
            "policy": self.policy,
            "executors": [lane.name for lane in self.executors],
            "feedback": {
                "scales": self.feedback.scales(),
                "observations": self.feedback.observations,
            },
            "breakers": self.breakers.snapshot(),
        }

    # -- feedback -------------------------------------------------------

    def observe(self, schedule: BatchSchedule,
                results: "Sequence[ImageResult]",
                lane_failures: "dict[str, int] | None" = None) -> None:
        """Close the loop: refine lane scales from a batch's outcomes.

        Every successfully decoded lane-placed image contributes its
        observed vs. predicted time (see :func:`lane_outcomes` for the
        exact definition); split fallbacks, unassigned images, failures
        and failed-over rescues teach the feedback nothing and are
        skipped.

        The breaker board additionally sees every lane-placed image's
        *infrastructure* outcome: completed decodes (ok or decode
        error) count as lane successes, ``infra_failure`` results count
        against the lane, and the trip edge resets the lane's feedback
        scale — a sick lane's EWMA history describes the failure, not
        the device it becomes after recovery.

        *lane_failures* (``BatchResult.lane_failures``) carries the
        per-dispatch infrastructure failures of remote lanes — failures
        a failover redispatch may have hidden from the results.  When
        present, breaker accounting runs two-pass: per-image successes
        first, then every dispatch failure, so a lane whose images were
        all rescued by siblings still trips its breaker and cannot have
        the trip masked by a success recorded after it.  Failed-over
        results never credit their original lane.
        """
        for a, observed in lane_outcomes(schedule, results):
            self.feedback.observe(a.executor.name, a.predicted_us, observed)
        by_index = {a.index: a for a in schedule.assignments}
        if lane_failures:
            for i, result in enumerate(results):
                a = by_index.get(i)
                if a is None or a.executor is None or result.failed_over:
                    continue
                if result.ok or not result.infra_failure:
                    self.breakers.record(a.executor.name, ok=True)
            for lane, count in lane_failures.items():
                for _ in range(count):
                    if self.breakers.record(lane, ok=False):
                        self.feedback.reset(lane)
            return
        for i, result in enumerate(results):
            a = by_index.get(i)
            if a is None or a.executor is None:
                continue
            lane = a.executor.name
            if result.ok or not result.infra_failure:
                self.breakers.record(lane, ok=True)
            elif self.breakers.record(lane, ok=False):
                self.feedback.reset(lane)
