"""Batched multi-image decode service atop the fast entropy engine.

This package scales the single-image pipeline to traffic: batches of
JPEG bytes fan out across a process/thread worker pool, each image
riding the PR-1 fused fast-path entropy engine (restart-segment
parallelism via :mod:`repro.jpeg.parallel_huffman` where DRI permits,
speculative chunk fan-out via :mod:`repro.jpeg.speculative` for
marker-free scans, whole-scan tasks otherwise), with a bounded
submission queue for backpressure and per-batch statistics.

Public surface (serving front ends first — the recommended entry
points):

- :class:`~repro.service.session.DecodeSession` — futures-based
  sessions: ``submit`` returns a per-request
  :class:`~repro.service.session.DecodeHandle`, a background pump forms
  batches by size/age
- :class:`~repro.service.aio.AsyncDecodeSession` — the asyncio adapter
  (async submit, completion stream)
- :class:`~repro.service.http.DecodeHTTPServer` — stdlib HTTP shim
  (``POST /decode``, ``GET /stats``, 429 backpressure, ``X-Priority``
  weighted shedding classes, backlog-scaled ``Retry-After``)
- :mod:`~repro.service.remote` — the sharded serving tier:
  :class:`~repro.service.remote.DecodeWorkerHost` (``repro
  serve-worker``, one session behind a length-prefixed TCP protocol),
  :class:`~repro.service.remote.RemoteLane` /
  :class:`~repro.service.remote.RemoteLanePool` (scheduler lanes that
  live across a socket, bounded in-flight depth as backpressure) and
  :class:`~repro.service.remote.ShardedDecodeSession` (``repro serve
  --hosts``, Eq 5/6 + EWMA placement across hosts with failover and
  breaker-guarded re-admission)
- :class:`BatchDecoder` — decode one batch across a worker pool
- :class:`DecodeService` — the legacy pull-driven front end, now a thin
  facade over :class:`~repro.service.session.DecodeSession`
- :class:`ImageRequest` / :class:`ImageResult` / :class:`BatchResult`
- :class:`~repro.service.scheduler.ModelScheduler` — model-guided
  cross-image batch scheduling (LPT over per-lane predicted costs,
  round-robin baseline, EWMA throughput feedback)
- :class:`~repro.service.executors.ExecutorRegistry` — lane-bound
  heterogeneous executor pools (GPU lane = its own pool, CPU lanes =
  a sized shared pool), making the scheduler's makespan win wall-clock
- :class:`~repro.service.transport.PlaneArena` /
  :class:`~repro.service.transport.PlaneRef` — zero-copy shared-memory
  plane transport for process-backend results (``transport="shm"``)
- :class:`~repro.service.queue.SubmissionQueue` — the backpressure ingress
- :class:`~repro.service.workers.WorkerPool` — serial/thread/process pools
  (self-healing: a broken process pool is rebuilt in place)
- :class:`~repro.service.faults.FaultPlan` — deterministic fault
  injection (worker kills, decode exceptions, shm-publish failures,
  lane delays) for chaos tests and ``benchmarks/bench_chaos.py``
- :class:`~repro.service.scheduler.LaneBreakerBoard` — per-lane circuit
  breakers (closed → open → half-open) feeding the scheduler
- :class:`~repro.service.stats.BatchStats` /
  :class:`~repro.service.stats.ServiceStats` — latency percentiles,
  images/sec, worker utilization, per-lane placement totals
- :mod:`~repro.service.obs` — the observability layer (PR 10):
  :class:`~repro.service.obs.TraceContext` /
  :class:`~repro.service.obs.SpanRecord` per-request trace spans
  threaded submit → queue → scheduler → lane dispatch → worker stages
  (and across the TCP wire into remote hosts),
  :class:`~repro.service.obs.ObsHub` (sampler + trace store + JSON-lines
  log + latency histogram) and
  :func:`~repro.service.obs.render_prometheus` behind ``GET /metrics``

CLI: ``repro serve`` (HTTP front end) and ``repro serve-batch``
(pull-driven batch loop; ``--schedule model|roundrobin`` turns the
scheduler on).  Benchmarks:
``benchmarks/bench_service_throughput.py`` (throughput sweep),
``benchmarks/bench_service_latency.py`` (open-loop latency vs offered
load against a session) and ``benchmarks/bench_batch_partition.py``
(model-guided vs round-robin makespan).
"""

from .aio import AsyncDecodeSession
from .batch import (
    PRIORITIES,
    PRIORITY_HIGH,
    PRIORITY_LOW,
    PRIORITY_NORMAL,
    BatchDecoder,
    BatchResult,
    DecodeService,
    ImageRequest,
    ImageResult,
    parse_priority,
)
from .executors import ExecutorRegistry, parse_lane_pools
from .faults import FaultDirective, FaultPlan, apply_dispatch_fault
from .http import DecodeHTTPServer, ppm_bytes
from .obs import (
    TRACE_MODES,
    ObsHub,
    SpanRecord,
    SpanRing,
    TraceContext,
    TraceLog,
    TraceStore,
    format_trace,
    map_remote_spans,
    read_trace_log,
    render_prometheus,
    spans_to_timeline,
)
from .queue import SubmissionQueue
from .remote import (
    DecodeWorkerHost,
    RemoteLane,
    RemoteLanePool,
    ShardRegistry,
    ShardedDecodeSession,
    parse_hosts,
    remote_executors,
)
from .transport import (
    TRANSPORTS,
    PlaneArena,
    PlaneRef,
    resolve_transport,
    shm_available,
)
from .scheduler import (
    BatchSchedule,
    ExecutorLane,
    LaneBreakerBoard,
    ModelScheduler,
    ThroughputFeedback,
    default_executors,
    schedule_lpt,
    schedule_roundrobin,
)
from .session import DecodeHandle, DecodeSession
from .stats import BatchStats, ExecutorUsage, ServiceStats, percentile
from .workers import BACKENDS, WorkerPool

__all__ = [
    "BACKENDS",
    "PRIORITIES",
    "PRIORITY_HIGH",
    "PRIORITY_LOW",
    "PRIORITY_NORMAL",
    "TRANSPORTS",
    "AsyncDecodeSession",
    "BatchDecoder",
    "BatchResult",
    "BatchSchedule",
    "BatchStats",
    "DecodeHTTPServer",
    "DecodeHandle",
    "DecodeService",
    "DecodeSession",
    "DecodeWorkerHost",
    "ExecutorLane",
    "ExecutorRegistry",
    "ExecutorUsage",
    "FaultDirective",
    "FaultPlan",
    "ImageRequest",
    "ImageResult",
    "LaneBreakerBoard",
    "ModelScheduler",
    "ObsHub",
    "PlaneArena",
    "PlaneRef",
    "RemoteLane",
    "RemoteLanePool",
    "ServiceStats",
    "ShardRegistry",
    "ShardedDecodeSession",
    "SpanRecord",
    "SpanRing",
    "SubmissionQueue",
    "TRACE_MODES",
    "ThroughputFeedback",
    "TraceContext",
    "TraceLog",
    "TraceStore",
    "WorkerPool",
    "apply_dispatch_fault",
    "default_executors",
    "format_trace",
    "map_remote_spans",
    "parse_hosts",
    "parse_lane_pools",
    "parse_priority",
    "percentile",
    "ppm_bytes",
    "read_trace_log",
    "remote_executors",
    "render_prometheus",
    "resolve_transport",
    "schedule_lpt",
    "schedule_roundrobin",
    "shm_available",
    "spans_to_timeline",
]
