"""Batched multi-image decode service atop the fast entropy engine.

This package scales the single-image pipeline to traffic: batches of
JPEG bytes fan out across a process/thread worker pool, each image
riding the PR-1 fused fast-path entropy engine (restart-segment
parallelism via :mod:`repro.jpeg.parallel_huffman` where DRI permits,
whole-scan tasks otherwise), with a bounded submission queue for
backpressure and per-batch statistics.

Public surface:

- :class:`BatchDecoder` — decode one batch across a worker pool
- :class:`DecodeService` — bounded queue + batch decoder + running stats
- :class:`ImageRequest` / :class:`ImageResult` / :class:`BatchResult`
- :class:`~repro.service.queue.SubmissionQueue` — the backpressure ingress
- :class:`~repro.service.workers.WorkerPool` — serial/thread/process pools
- :class:`~repro.service.stats.BatchStats` /
  :class:`~repro.service.stats.ServiceStats` — latency percentiles,
  images/sec, worker utilization

CLI: ``repro serve-batch`` (see :mod:`repro.cli`).  Throughput sweep:
``benchmarks/bench_service_throughput.py``.
"""

from .batch import (
    BatchDecoder,
    BatchResult,
    DecodeService,
    ImageRequest,
    ImageResult,
)
from .queue import SubmissionQueue
from .stats import BatchStats, ServiceStats, percentile
from .workers import BACKENDS, WorkerPool

__all__ = [
    "BACKENDS",
    "BatchDecoder",
    "BatchResult",
    "BatchStats",
    "DecodeService",
    "ImageRequest",
    "ImageResult",
    "ServiceStats",
    "SubmissionQueue",
    "WorkerPool",
    "percentile",
]
