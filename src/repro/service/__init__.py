"""Batched multi-image decode service atop the fast entropy engine.

This package scales the single-image pipeline to traffic: batches of
JPEG bytes fan out across a process/thread worker pool, each image
riding the PR-1 fused fast-path entropy engine (restart-segment
parallelism via :mod:`repro.jpeg.parallel_huffman` where DRI permits,
whole-scan tasks otherwise), with a bounded submission queue for
backpressure and per-batch statistics.

Public surface:

- :class:`BatchDecoder` — decode one batch across a worker pool
- :class:`DecodeService` — bounded queue + batch decoder + running stats
- :class:`ImageRequest` / :class:`ImageResult` / :class:`BatchResult`
- :class:`~repro.service.scheduler.ModelScheduler` — model-guided
  cross-image batch scheduling (LPT over per-lane predicted costs,
  round-robin baseline, EWMA throughput feedback)
- :class:`~repro.service.queue.SubmissionQueue` — the backpressure ingress
- :class:`~repro.service.workers.WorkerPool` — serial/thread/process pools
- :class:`~repro.service.stats.BatchStats` /
  :class:`~repro.service.stats.ServiceStats` — latency percentiles,
  images/sec, worker utilization, per-lane placement totals

CLI: ``repro serve-batch`` (see :mod:`repro.cli`; ``--schedule
model|roundrobin`` turns the scheduler on).  Benchmarks:
``benchmarks/bench_service_throughput.py`` (throughput sweep) and
``benchmarks/bench_batch_partition.py`` (model-guided vs round-robin
makespan).
"""

from .batch import (
    BatchDecoder,
    BatchResult,
    DecodeService,
    ImageRequest,
    ImageResult,
)
from .queue import SubmissionQueue
from .scheduler import (
    BatchSchedule,
    ExecutorLane,
    ModelScheduler,
    ThroughputFeedback,
    default_executors,
    schedule_lpt,
    schedule_roundrobin,
)
from .stats import BatchStats, ExecutorUsage, ServiceStats, percentile
from .workers import BACKENDS, WorkerPool

__all__ = [
    "BACKENDS",
    "BatchDecoder",
    "BatchResult",
    "BatchSchedule",
    "BatchStats",
    "DecodeService",
    "ExecutorLane",
    "ExecutorUsage",
    "ImageRequest",
    "ImageResult",
    "ModelScheduler",
    "ServiceStats",
    "SubmissionQueue",
    "ThroughputFeedback",
    "WorkerPool",
    "default_executors",
    "percentile",
    "schedule_lpt",
    "schedule_roundrobin",
]
